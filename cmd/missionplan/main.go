// Command missionplan designs a complete SµDC-backed Earth-observation
// mission from a handful of requirements.
//
// Usage:
//
//	missionplan -app FD -res 1 -discard 0.95 -sats 64
//	missionplan -app UED -res 0.3 -revisit 1h -device ai100
//	missionplan -app OSM -res 1 -discard 0.7 -sats 64 -placement geo -years 15
package main

import (
	"flag"
	"fmt"
	"os"

	"spacedc/internal/apps"
	"spacedc/internal/core"
	"spacedc/internal/gpusim"
	"spacedc/internal/isl"
	"spacedc/internal/mission"
	"spacedc/internal/units"
)

func main() {
	app := flag.String("app", "FD", "application ID (APP, CM, FD, AD, FQE, UED, PS, OSM, TM, LSC)")
	res := flag.Float64("res", 1, "spatial resolution, meters")
	ed := flag.Float64("discard", 0.95, "early discard rate [0, 1)")
	sats := flag.Int("sats", 0, "fixed constellation size (or use -revisit)")
	revisit := flag.Duration("revisit", 0, "revisit target (e.g. 1h, 30m); sizes the fleet")
	device := flag.String("device", "rtx3090", "compute device: xavier | rtx3090 | a100 | h100 | ai100")
	budget := flag.Float64("budget", 4000, "SµDC compute budget, watts")
	placement := flag.String("placement", "leo", "SµDC placement: leo | leo-high | geo")
	islTech := flag.String("isl", "optical10g", "ISL: rf | optical10g | optical100g")
	years := flag.Float64("years", 5, "mission duration, years")
	flag.Parse()

	devices := map[string]gpusim.Device{
		"xavier": gpusim.JetsonXavier, "rtx3090": gpusim.RTX3090,
		"a100": gpusim.A100, "h100": gpusim.H100, "ai100": gpusim.CloudAI100,
	}
	dev, ok := devices[*device]
	if !ok {
		fatal(fmt.Errorf("unknown device %q", *device))
	}
	placements := map[string]core.Placement{
		"leo": core.LEOInPlane, "leo-high": core.LEOHigher, "geo": core.GEO,
	}
	pl, ok := placements[*placement]
	if !ok {
		fatal(fmt.Errorf("unknown placement %q", *placement))
	}
	links := map[string]isl.LinkTech{
		"rf": isl.RFKaBand, "optical10g": isl.Optical10G, "optical100g": isl.Optical100G,
	}
	link, ok := links[*islTech]
	if !ok {
		fatal(fmt.Errorf("unknown ISL tech %q", *islTech))
	}

	spec := mission.Spec{
		App:           apps.ID(*app),
		SpatialResM:   *res,
		EarlyDiscard:  *ed,
		Satellites:    *sats,
		RevisitTarget: *revisit,
		Device:        dev,
		SuDCBudget:    units.Power(*budget),
		Placement:     pl,
		ISLTech:       link,
		MissionYears:  *years,
	}
	if spec.Satellites == 0 && spec.RevisitTarget == 0 {
		spec.Satellites = 64 // the paper's study constellation
	}

	design, err := mission.Plan(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Print(design.Summary())

	if design.Bottleneck.String() == "ISL-bottlenecked" {
		fmt.Println("\nwarning: the design remains ISL-bottlenecked at the maximum feasible k;")
		fmt.Println("consider a frame-spaced formation, higher-capacity ISLs, or SµDC splitting.")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "missionplan:", err)
	os.Exit(1)
}
