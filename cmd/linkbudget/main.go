// Command linkbudget computes RF link budgets and optical ISL transmit
// power for satellite communication design.
//
// Usage:
//
//	linkbudget rf -power 5 -dish 5 -dist 600 -freq 8.2
//	linkbudget isl -tech optical10g -dist 680
//	linkbudget scale -target 1e9
package main

import (
	"flag"
	"fmt"
	"os"

	"spacedc/internal/isl"
	"spacedc/internal/rf"
	"spacedc/internal/units"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "rf":
		runRF(os.Args[2:])
	case "isl":
		runISL(os.Args[2:])
	case "scale":
		runScale(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  linkbudget rf    -power W -txgain dBi -dish m -dist km -freq GHz -bw MHz -noise K
  linkbudget isl   -tech rf|optical10g|optical100g -dist km
  linkbudget scale -target bit/s`)
	os.Exit(2)
}

// runRF evaluates a full downlink budget.
func runRF(args []string) {
	fs := flag.NewFlagSet("rf", flag.ExitOnError)
	power := fs.Float64("power", 5, "transmit power, W")
	txGain := fs.Float64("txgain", 6, "transmit antenna gain, dBi")
	dish := fs.Float64("dish", 5, "ground dish diameter, m")
	dist := fs.Float64("dist", 600, "slant range, km")
	freq := fs.Float64("freq", 8.2, "carrier frequency, GHz")
	bw := fs.Float64("bw", 96, "bandwidth, MHz")
	noise := fs.Float64("noise", 290, "system noise temperature, K")
	_ = fs.Parse(args)

	f := units.Frequency(*freq * 1e9)
	lb := rf.LinkBudget{
		TxPower:    units.Power(*power),
		TxGain:     rf.FromDB(*txGain),
		RxGain:     rf.ParabolicGain(*dish, f, 0.6),
		Frequency:  f,
		DistanceM:  *dist * 1e3,
		NoiseTempK: *noise,
		Bandwidth:  units.Frequency(*bw * 1e6),
		Efficiency: rf.DoveEfficiency(),
	}
	if err := lb.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "linkbudget:", err)
		os.Exit(1)
	}
	fmt.Printf("rx gain:        %.1f dBi\n", rf.DB(lb.RxGain))
	fmt.Printf("path loss:      %.1f dB\n", rf.DB(rf.FreeSpacePathLoss(lb.DistanceM, lb.Frequency)))
	fmt.Printf("received power: %.1f dBW\n", rf.DB(float64(lb.ReceivedPower())))
	fmt.Printf("SNR:            %.1f dB (%.1f linear)\n", rf.DB(lb.SNR()), lb.SNR())
	fmt.Printf("capacity:       %v\n", lb.Capacity())
}

// runISL reports optical/RF ISL transmit power vs distance.
func runISL(args []string) {
	fs := flag.NewFlagSet("isl", flag.ExitOnError)
	techName := fs.String("tech", "optical10g", "rf | optical10g | optical100g")
	dist := fs.Float64("dist", 680, "link distance, km")
	_ = fs.Parse(args)

	var tech isl.LinkTech
	switch *techName {
	case "rf":
		tech = isl.RFKaBand
	case "optical10g":
		tech = isl.Optical10G
	case "optical100g":
		tech = isl.Optical100G
	default:
		usage()
	}
	fmt.Printf("%s: capacity %v\n", tech.Name, tech.Capacity)
	fmt.Printf("pointing time:  %.1f s\n", tech.PointingSeconds)
	fmt.Printf("tx power @ %.0f km: %v (∝ distance²)\n", *dist, tech.TxPowerAt(*dist))
}

// runScale answers Fig 7's question: what does it take to reach a target
// capacity by scaling the Dove baseline channel?
func runScale(args []string) {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	target := fs.Float64("target", 1e9, "target capacity, bit/s")
	_ = fs.Parse(args)

	sc := rf.DefaultScaledChannel()
	c := units.DataRate(*target)
	fmt.Printf("target capacity: %v over the regulated 96 MHz X-band channel\n", c)
	fmt.Printf("transmit power needed: %v (baseline %v)\n", sc.PowerForCapacity(c), sc.BasePower)
	fmt.Printf("dish diameter needed:  %.1f m (baseline %.1f m)\n", sc.DishForCapacity(c), sc.BaseDishM)
}
