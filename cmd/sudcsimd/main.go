// Command sudcsimd is the long-running scenario-evaluation service over
// the Space Microdatacenters experiment registry and simulators: the
// sudcsim batch CLI turned into a daemon with request admission, a
// content-addressed result cache, and live metrics streaming.
//
// Usage:
//
//	sudcsimd -addr :8080
//
// Endpoints:
//
//	GET  /v1/experiments     experiment registry listing (ID + description)
//	POST /v1/eval            evaluate a scenario; body is the spec JSON
//	GET  /v1/results/{key}   fetch a cached evaluation by content hash
//	GET  /v1/metrics         daemon metrics (text; ?format=json for JSON)
//	GET  /v1/stream          SSE feed of live run samples (?run=<key> filters)
//	GET  /healthz            liveness + admission/cache counters
//	GET  /debug/pprof/       standard pprof handlers
//
// Examples:
//
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/v1/eval -d '{"experiment":"fig9"}'
//	curl -X POST 'localhost:8080/v1/eval?stream=1' -d '{"netsim":{"sats":16,"per_sat_mbps":1000,"link_outage":0.01}}'
//	curl -X POST localhost:8080/v1/eval -d '{"workload":{"policy":"priority-retry","campaign":"combined","load":2}}'
//	curl -N localhost:8080/v1/stream
//
// SIGINT/SIGTERM drain in-flight evaluations before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spacedc/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxInFlight := flag.Int("max-inflight", 4, "maximum concurrent evaluations; more wait in the queue")
	queueDepth := flag.Int("queue", 16, "maximum queued evaluations before 429 (negative = no queue)")
	cacheSize := flag.Int("cache-size", 256, "content-addressed result cache capacity in entries")
	workers := flag.Int("workers", 0, "experiment-level pool fan-out per evaluation (0 = one slot per CPU; results are bit-identical at any value)")
	evalTimeout := flag.Duration("eval-timeout", 0, "per-evaluation wall-time cap on top of the client deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget for in-flight evaluations")
	flag.Parse()

	srv := serve.New(serve.Config{
		MaxInFlight: *maxInFlight,
		QueueDepth:  *queueDepth,
		CacheSize:   *cacheSize,
		Workers:     *workers,
		EvalTimeout: *evalTimeout,
	})
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
	}
	// Shutdown waits for active requests; open SSE streams must be told
	// to end or they would pin the drain until its timeout.
	httpSrv.RegisterOnShutdown(srv.Drain)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "sudcsimd: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight evaluations (and open
	// SSE streams, which end when their clients see the close) finish.
	fmt.Fprintln(os.Stderr, "sudcsimd: shutting down, draining in-flight evaluations")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		// The drain budget ran out; cut the stragglers loose.
		httpSrv.Close() //nolint:errcheck
		if !errors.Is(err, context.DeadlineExceeded) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sudcsimd:", err)
	os.Exit(1)
}
