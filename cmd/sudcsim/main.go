// Command sudcsim regenerates the tables and figures of the Space
// Microdatacenters study.
//
// Usage:
//
//	sudcsim list                  # list experiment IDs
//	sudcsim fig9                  # run one experiment, print its tables
//	sudcsim all                   # run every experiment (one worker per CPU)
//	sudcsim -workers 8 all        # run every experiment on 8 pool workers
//	sudcsim -workers 1 all        # serial sweep (output is bit-identical)
//	sudcsim -csv fig9             # emit CSV instead of aligned text
//	sudcsim -metrics all          # append the metrics table after the run
//	sudcsim -trace run.jsonl all  # stream metric events to a JSONL file
//	sudcsim -pprof :6060 all      # serve net/http/pprof while running
//
// For a long-running scenario-evaluation service over the same registry,
// see cmd/sudcsimd.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"spacedc/internal/experiments"
	"spacedc/internal/obs"
	"spacedc/internal/report"
)

func main() {
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text")
	metrics := flag.Bool("metrics", false, "print the metrics registry after the run")
	trace := flag.String("trace", "", "stream metric events to this JSONL file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	workers := flag.Int("workers", 0, "experiment-level workers for 'all' (0 = one per CPU, 1 = serial; any count is bit-identical); grid experiments also split into sub-jobs on the shared pool, bounded by a global token budget so total concurrency never oversubscribes the CPUs")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sudcsim [-csv] [-metrics] [-trace file] [-pprof addr] [-workers n] <experiment-id>|all|list\n\nexperiments:\n")
		for _, info := range experiments.List() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", info.ID, info.Description)
		}
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "sudcsim: pprof:", err)
			}
		}()
	}

	// The registry is wall-clock: experiment spans measure real elapsed
	// time, not any single simulator's clock. It stays nil unless an
	// observability flag asks for it, so the default path is untouched.
	var reg *obs.Registry
	var sink *obs.JSONLSink
	if *metrics || *trace != "" {
		opts := []obs.Option{obs.WithWallClock()}
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			sink = obs.NewJSONLSink(f)
			opts = append(opts, obs.WithSink(sink))
		}
		reg = obs.New(opts...)
	}

	arg := flag.Arg(0)
	if arg == "list" {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	// One dispatch for single IDs and the "all" sweep: RunWorkers treats
	// experiments.All as a registry-wide fan-out over the shared pool.
	// Ctrl-C cancels between experiments; in-flight drivers finish first.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	tables, err := experiments.RunWorkers(ctx, reg, arg, *workers)
	if err != nil {
		fatal(err)
	}
	emit(tables, *csvOut)

	if sink != nil {
		if err := sink.Close(); err != nil {
			fatal(fmt.Errorf("trace %s: %w", *trace, err))
		}
	}
	if *metrics {
		fmt.Println()
		if err := reg.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// emit renders the tables to stdout in the selected format.
func emit(tables []report.Table, csvOut bool) {
	for _, t := range tables {
		var err error
		if csvOut {
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			err = t.CSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sudcsim:", err)
	os.Exit(1)
}
