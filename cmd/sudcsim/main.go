// Command sudcsim regenerates the tables and figures of the Space
// Microdatacenters study.
//
// Usage:
//
//	sudcsim list             # list experiment IDs
//	sudcsim fig9             # run one experiment, print its tables
//	sudcsim all              # run every experiment
//	sudcsim -csv fig9        # emit CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"os"

	"spacedc/internal/experiments"
	"spacedc/internal/report"
)

func main() {
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sudcsim [-csv] <experiment-id>|all|list\n\nexperiments:\n")
		for _, id := range experiments.IDs() {
			fmt.Fprintf(os.Stderr, "  %s\n", id)
		}
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	arg := flag.Arg(0)
	switch arg {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	case "all":
		tables, err := experiments.RunAll()
		if err != nil {
			fatal(err)
		}
		emit(tables, *csvOut)
	default:
		tables, err := experiments.Run(arg)
		if err != nil {
			fatal(err)
		}
		emit(tables, *csvOut)
	}
}

// emit renders the tables to stdout in the selected format.
func emit(tables []report.Table, csvOut bool) {
	for _, t := range tables {
		var err error
		if csvOut {
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			err = t.CSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sudcsim:", err)
	os.Exit(1)
}
