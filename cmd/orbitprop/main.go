// Command orbitprop propagates a satellite orbit and reports ground track,
// eclipse, and ground-station contact information.
//
// Usage:
//
//	orbitprop -alt 550 -inc 53 -hours 24            # circular LEO
//	orbitprop -tle satellite.tle -hours 24           # SGP4 from a TLE file
//	orbitprop -alt 550 -inc 97.6 -station 78.2,15.4  # contact windows
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"spacedc/internal/orbit"
)

func main() {
	alt := flag.Float64("alt", 550, "circular orbit altitude, km")
	inc := flag.Float64("inc", 53, "inclination, degrees")
	hours := flag.Float64("hours", 24, "propagation span, hours")
	stepMin := flag.Float64("step", 10, "ground-track output step, minutes")
	tleFile := flag.String("tle", "", "TLE file (overrides -alt/-inc, uses SGP4)")
	station := flag.String("station", "", "ground station lat,lon in degrees for contact windows")
	epochStr := flag.String("epoch", "2026-03-20T00:00:00Z", "propagation start (RFC 3339)")
	flag.Parse()

	epoch, err := time.Parse(time.RFC3339, *epochStr)
	if err != nil {
		fatal(fmt.Errorf("bad -epoch: %w", err))
	}

	var prop orbit.Propagator
	var period time.Duration
	if *tleFile != "" {
		raw, err := os.ReadFile(*tleFile)
		if err != nil {
			fatal(err)
		}
		tle, err := orbit.ParseTLE(string(raw))
		if err != nil {
			fatal(err)
		}
		sgp4, err := orbit.NewSGP4(tle)
		if err != nil {
			fatal(err)
		}
		prop = sgp4
		period = tle.Elements().Period()
		epoch = tle.Epoch
		fmt.Printf("satellite %s (TLE epoch %s)\n", tle.NoradID, tle.Epoch.Format(time.RFC3339))
	} else {
		el := orbit.CircularLEO(*alt, *inc*math.Pi/180, 0, 0, epoch)
		prop = orbit.J2Propagator{Elements: el}
		period = el.Period()
		fmt.Printf("circular orbit: %.0f km, %.1f° inclination, period %s\n",
			*alt, *inc, period.Round(time.Second))
	}

	span := time.Duration(*hours * float64(time.Hour))
	step := time.Duration(*stepMin * float64(time.Minute))

	fmt.Println("\nground track:")
	points, err := orbit.GroundTrack(prop, epoch, span, step)
	if err != nil {
		fatal(err)
	}
	for _, p := range points {
		shadow := ""
		s, err := prop.State(p.Time)
		if err == nil && orbit.Shadow(s.Position, p.Time) != orbit.Sunlit {
			shadow = "  (eclipse)"
		}
		fmt.Printf("  %s  lat %7.2f°  lon %8.2f°  alt %7.1f km%s\n",
			p.Time.Format("15:04:05"), p.LatDeg(), p.LonDeg(), p.AltKm, shadow)
	}

	if *station != "" {
		parts := strings.Split(*station, ",")
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -station %q, want lat,lon", *station))
		}
		lat, err1 := strconv.ParseFloat(parts[0], 64)
		lon, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("bad -station coordinates %q", *station))
		}
		site := orbit.Geodetic{LatRad: lat * math.Pi / 180, LonRad: lon * math.Pi / 180}
		windows, err := orbit.FindWindows(
			orbit.GroundStationVisibility(prop, site, 5*math.Pi/180),
			epoch, span, 30*time.Second, time.Second)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ncontacts above 5° elevation at (%.1f°, %.1f°): %d passes\n", lat, lon, len(windows))
		var total time.Duration
		for _, w := range windows {
			fmt.Printf("  %s → %s  (%s)\n",
				w.Start.Format("15:04:05"), w.End.Format("15:04:05"), w.Duration().Round(time.Second))
			total += w.Duration()
		}
		fmt.Printf("total contact: %s over %v\n", total.Round(time.Second), span)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "orbitprop:", err)
	os.Exit(1)
}
