// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment end-to-end through
// the shared drivers in internal/experiments and reports the headline
// quantity the paper's artifact shows, so `go test -bench=.` both times
// the models and re-derives the results. Run `go run ./cmd/sudcsim all`
// for the full tables.
package spacedc_test

import (
	"context"
	"math"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"spacedc/internal/apps"
	"spacedc/internal/core"
	"spacedc/internal/experiments"
	"spacedc/internal/gpusim"
	"spacedc/internal/isl"
	"spacedc/internal/netsim"
	"spacedc/internal/obs"
	"spacedc/internal/report"
	"spacedc/internal/resilience"
	"spacedc/internal/sched"
	"spacedc/internal/units"
)

// run executes one registered experiment b.N times and returns the last
// result for metric extraction.
func run(b *testing.B, id string) []report.Table {
	b.Helper()
	var tables []report.Table
	var err error
	for i := 0; i < b.N; i++ {
		tables, err = experiments.Run(context.Background(), id)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tables
}

// cellInt parses an integer cell, tolerating the "*" bottleneck marker.
func cellInt(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.Atoi(strings.TrimSuffix(strings.TrimSpace(s), "*"))
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return float64(v)
}

func BenchmarkFig2Resolution(b *testing.B) {
	tables := run(b, "fig2")
	b.ReportMetric(float64(len(tables[0].Rows)), "milestones")
}

func BenchmarkFig3Downlink(b *testing.B) {
	tables := run(b, "fig3")
	b.ReportMetric(float64(len(tables[0].Rows)), "milestones")
}

func BenchmarkFig4DataGenerationAndChannels(b *testing.B) {
	tables := run(b, "fig4")
	if len(tables) != 2 {
		b.Fatal("fig4 should produce the 4a and 4b panels")
	}
	b.ReportMetric(float64(len(tables[0].Rows)*len(tables[0].Columns)), "cells")
}

func BenchmarkFig5DownlinkDeficit(b *testing.B) {
	tables := run(b, "fig5")
	// Headline: deficit at 10 cm with a single channel (last row, first
	// data column of panel a).
	last := tables[0].Rows[len(tables[0].Rows)-1]
	v, err := strconv.ParseFloat(last[1], 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v, "deficit@10cm/1ch")
}

func BenchmarkFig6RequiredECR(b *testing.B) {
	tables := run(b, "fig6")
	b.ReportMetric(float64(len(tables[0].Rows)), "resolutions")
}

func BenchmarkFig7AntennaScaling(b *testing.B) {
	tables := run(b, "fig7")
	if len(tables) != 2 {
		b.Fatal("fig7 should produce power and dish panels")
	}
}

func BenchmarkFig8SatellitePower(b *testing.B) {
	tables := run(b, "fig8")
	if len(tables) != 4 {
		b.Fatal("fig8 sweeps 4 early-discard rates")
	}
}

func BenchmarkFig9SuDCCount(b *testing.B) {
	tables := run(b, "fig9")
	// Headline: PS at 10 cm / 0% — the worst cell.
	var worst float64
	for _, row := range tables[0].Rows {
		for _, c := range row[1:] {
			if v := cellInt(b, c); v > worst {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "worst-case-SµDCs")
}

func BenchmarkFig11ISLBottleneck(b *testing.B) {
	tables := run(b, "fig11")
	if len(tables) != 2 {
		b.Fatal("fig11 has 4 kW and 256 kW panels")
	}
	// Count bottlenecked cells in the 256 kW panel.
	bottlenecked := 0.0
	for _, row := range tables[1].Rows {
		for _, c := range row[2:] {
			if strings.HasSuffix(c, "*") {
				bottlenecked++
			}
		}
	}
	b.ReportMetric(bottlenecked, "bottlenecked-cells-256kW")
}

func BenchmarkFig13KListSplitting(b *testing.B) {
	tables := run(b, "fig13")
	if len(tables) != 2 {
		b.Fatal("fig13 has frame-spaced and orbit-spaced panels")
	}
}

func BenchmarkFig14AI100(b *testing.B) {
	tables := run(b, "fig14")
	var worst float64
	for _, row := range tables[0].Rows {
		for _, c := range row[1:] {
			if v := cellInt(b, c); v > worst {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "worst-case-SµDCs")
}

func BenchmarkFig15GEOCoverage(b *testing.B) {
	tables := run(b, "fig15")
	gaps := 0.0
	for _, row := range tables[0].Rows {
		if row[1] != "0s" {
			gaps++
		}
	}
	b.ReportMetric(gaps, "coverage-gaps")
}

func BenchmarkFig16Hardening(b *testing.B) {
	tables := run(b, "fig16")
	if len(tables) != 3 {
		b.Fatal("fig16 has software/2x/3x panels")
	}
}

func BenchmarkTable1Constellations(b *testing.B) {
	tables := run(b, "table1")
	b.ReportMetric(float64(len(tables[0].Rows)), "constellations")
}

func BenchmarkTable2GroundStations(b *testing.B) {
	tables := run(b, "table2")
	b.ReportMetric(float64(len(tables[0].Rows)), "providers")
}

func BenchmarkTable3EarlyDiscard(b *testing.B) {
	tables := run(b, "table3")
	b.ReportMetric(float64(len(tables[0].Rows)), "criteria")
}

func BenchmarkTable4Compression(b *testing.B) {
	tables := run(b, "table4")
	// Headline: SAR Zip ratio.
	zipCol := -1
	for i, c := range tables[0].Columns {
		if c == "Zip" {
			zipCol = i
		}
	}
	v, err := strconv.ParseFloat(tables[0].Rows[1][zipCol], 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v, "SAR-zip-ratio")
}

func BenchmarkTable5Applications(b *testing.B) {
	tables := run(b, "table5")
	b.ReportMetric(float64(len(tables[0].Rows)), "applications")
}

func BenchmarkTable6DevicePerf(b *testing.B) {
	tables := run(b, "table6")
	b.ReportMetric(float64(len(tables[0].Rows)), "operating-points")
}

func BenchmarkTable7SatelliteClasses(b *testing.B) {
	tables := run(b, "table7")
	b.ReportMetric(float64(len(tables[0].Rows)), "classes")
}

func BenchmarkTable8ISLSupport(b *testing.B) {
	tables := run(b, "table8")
	// Headline cell: 3 m / 0 ED / 1 Gb/s (the paper's 9).
	b.ReportMetric(cellInt(b, tables[0].Rows[0][2]), "sats@3m/0ED/1G")
}

func BenchmarkTable9Strategies(b *testing.B) {
	tables := run(b, "table9")
	b.ReportMetric(float64(len(tables[0].Columns)-1), "strategies")
}

// BenchmarkRunAll times the full experiment sweep — the quantity the
// worker pool exists to shrink — serially and with one worker per CPU,
// and reports the wall-clock speedup. The grid experiments (ext-netsim,
// ext-lossy, table4) decompose into sub-jobs on the same shared pool as
// the experiment workers, which keeps the cores busy past the point where
// one long-pole experiment used to serialize the tail; on ≥4 cores the
// combined schedule must clear 2.5×. Output is bit-identical across
// worker counts (TestRunAllBitIdentity), so the only thing that changes
// is wall time.
func BenchmarkRunAll(b *testing.B) {
	workers := runtime.NumCPU()
	var speedup float64
	var tables []report.Table
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := experiments.RunAllWorkers(1); err != nil {
			b.Fatal(err)
		}
		serial := time.Since(t0)
		var err error
		t1 := time.Now()
		tables, err = experiments.RunAllWorkers(workers)
		if err != nil {
			b.Fatal(err)
		}
		parallel := time.Since(t1)
		speedup = serial.Seconds() / parallel.Seconds()
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(workers), "workers")
	b.ReportMetric(float64(len(tables)), "tables")
	if workers >= 4 && speedup < 2.5 {
		b.Errorf("full-sweep speedup %.2f× on %d cores, want >2.5× with nested sub-job scheduling", speedup, workers)
	}
}

// --- Extension benches: the §8-9 design space beyond the paper's
// figures (SAA pauses, lifetime/boosting, thermal, power, disaggregation,
// scheduling, revisit sizing). ---

func BenchmarkExtSAA(b *testing.B) {
	tables := run(b, "ext-saa")
	b.ReportMetric(float64(len(tables[0].Rows)), "orbits")
}

func BenchmarkExtLifetime(b *testing.B) {
	tables := run(b, "ext-lifetime")
	b.ReportMetric(float64(len(tables[0].Rows)), "placements")
}

func BenchmarkExtThermal(b *testing.B) {
	tables := run(b, "ext-thermal")
	b.ReportMetric(float64(len(tables[0].Rows)), "designs")
}

func BenchmarkExtPower(b *testing.B) {
	tables := run(b, "ext-power")
	b.ReportMetric(float64(len(tables[0].Rows)), "placements")
}

func BenchmarkExtDisaggregation(b *testing.B) {
	tables := run(b, "ext-disagg")
	b.ReportMetric(float64(len(tables[0].Rows)), "missions")
}

func BenchmarkExtScheduler(b *testing.B) {
	tables := run(b, "ext-sched")
	// Headline: J/frame at the calibrated optimal batch (row 3).
	v, err := strconv.ParseFloat(tables[0].Rows[2][4], 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v, "J/frame@b*")
}

func BenchmarkExtFleet(b *testing.B) {
	tables := run(b, "ext-fleet")
	b.ReportMetric(float64(len(tables[0].Rows)), "scenarios")
}

func BenchmarkExtLatency(b *testing.B) {
	tables := run(b, "ext-latency")
	// Headline: the 3 m speedup factor.
	s := strings.TrimSuffix(tables[0].Rows[0][4], "×")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v, "speedup@3m")
}

func BenchmarkExtRevisit(b *testing.B) {
	tables := run(b, "ext-revisit")
	last := tables[0].Rows[len(tables[0].Rows)-1]
	b.ReportMetric(cellInt(b, last[1]), "sats@10min")
}

func BenchmarkExtLossy(b *testing.B) {
	tables := run(b, "ext-lossy")
	// Headline: the best ratio in the sweep (last row).
	last := tables[0].Rows[len(tables[0].Rows)-1]
	v, err := strconv.ParseFloat(last[1], 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v, "best-lossy-ratio")
}

func BenchmarkExtDetect(b *testing.B) {
	tables := run(b, "ext-detect")
	b.ReportMetric(float64(len(tables[0].Rows)), "scenes")
}

// BenchmarkExtNetsimValidation cross-validates the time-stepped network
// simulator against the closed-form Table 8 capacity model: the zero-fault
// max-supportable EO population must land within 10% of K·linkCap/perSatRate
// for both the ring and the 4-list topology.
func BenchmarkExtNetsimValidation(b *testing.B) {
	const (
		linkCap = units.Gbps
		perSat  = 250 * units.Mbps
	)
	for _, topo := range []isl.Topology{isl.Ring, {K: 4, Split: 1}} {
		topo := topo
		b.Run("K"+strconv.Itoa(topo.K), func(b *testing.B) {
			sc := netsim.Scenario{
				Name:     "validate",
				Topology: netsim.TopologySpec{Kind: netsim.ClusterTopology, Sats: topo.K, Cluster: topo, Tech: isl.RFKaBand},
				PerSat:   perSat,
				StepSec:  0.1, DurationSec: 60, WarmupSec: 10, Seed: 1,
			}
			closed := isl.SupportableEOSats(linkCap, perSat, topo.K)
			var got int
			var err error
			for i := 0; i < b.N; i++ {
				got, err = netsim.MaxSupportable(sc, closed+4)
				if err != nil {
					b.Fatal(err)
				}
			}
			if math.Abs(float64(got-closed)) > 0.1*float64(closed) {
				b.Errorf("K=%d: simulated max %d vs closed form %d (>10%% apart)", topo.K, got, closed)
			}
			b.ReportMetric(float64(got), "sim-max-sats")
			b.ReportMetric(float64(closed), "closed-form-sats")
		})
	}
}

// BenchmarkExtResilience validates the resilience layer's acceptance
// criteria on the ISS-orbit scenario: (1) with the hazard forced to zero
// every mitigation policy reproduces the fault-free pipeline bit for bit;
// (2) with SAA-driven upsets on, goodput orders tmr ≥ checkpoint ≥ retry ≥
// none while energy orders the opposite way — protection is paid for in
// joules.
func BenchmarkExtResilience(b *testing.B) {
	sc, err := experiments.ResilienceISSScenario()
	if err != nil {
		b.Fatal(err)
	}
	if f := sc.Env.SAAFraction(); f < 0.01 {
		b.Fatalf("ISS orbit SAA dwell %v — environment trace broken", f)
	}
	baseline, err := sc.Baseline()
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range resilience.StandardPolicies() {
		cfg := sc.Base
		cfg.Faults = &sched.FaultConfig{
			Hazard:        func(float64) float64 { return 0 },
			ResetFraction: 0.1,
			ResetMTTRSec:  30,
			Recovery:      pol.Recovery,
		}
		st, err := sched.Simulate(cfg, sc.Proc)
		if err != nil {
			b.Fatal(err)
		}
		if st != baseline {
			b.Fatalf("%s: zero-hazard run diverged from baseline:\n got %+v\nwant %+v",
				pol.Name, st, baseline)
		}
	}
	var byName map[string]resilience.Report
	for i := 0; i < b.N; i++ {
		reports, err := sc.EvaluateAll(resilience.StandardPolicies())
		if err != nil {
			b.Fatal(err)
		}
		byName = make(map[string]resilience.Report, len(reports))
		for _, r := range reports {
			byName[r.Policy] = r
		}
	}
	ladder := []string{"none", "retry", "checkpoint", "tmr"}
	for i := 1; i < len(ladder); i++ {
		lo, hi := byName[ladder[i-1]], byName[ladder[i]]
		if hi.GoodputFPS < lo.GoodputFPS-1e-9 {
			b.Errorf("goodput(%s)=%v below goodput(%s)=%v",
				ladder[i], hi.GoodputFPS, ladder[i-1], lo.GoodputFPS)
		}
		if hi.Stats.EnergyJ < lo.Stats.EnergyJ-1e-6 {
			b.Errorf("energy(%s)=%v below energy(%s)=%v",
				ladder[i], hi.Stats.EnergyJ, ladder[i-1], lo.Stats.EnergyJ)
		}
	}
	b.ReportMetric(byName["tmr"].GoodputFPS, "tmr-goodput-fps")
	b.ReportMetric(byName["tmr"].EnergyOverhead, "tmr-energy-ovh")
	b.ReportMetric(byName["none"].GoodputFPS, "none-goodput-fps")
}

// --- Observability overhead guards: with no sink attached, the
// instrumented hot loops must stay within 3% of a bare (nil-registry)
// run. Interleaved min-of-N timing keeps scheduler noise out of the
// ratio, and each guard also asserts the instrumented run's result is
// bit-identical to the bare one — observability is write-only. ---

// obsOverheadRounds is the per-variant repetition count; the minimum of
// the rounds is the contended-machine-robust estimate of true cost.
const obsOverheadRounds = 9

// minSecs returns the fastest of rounds executions of f. A forced GC
// before each timed run keeps collector pauses (driven by whatever ran
// before, not by f) from being charged to one variant.
func minSecs(rounds int, f func()) float64 {
	best := math.Inf(1)
	for i := 0; i < rounds; i++ {
		runtime.GC()
		t0 := time.Now()
		f()
		if d := time.Since(t0).Seconds(); d < best {
			best = d
		}
	}
	return best
}

// checkOverhead interleaves bare and instrumented measurements and fails
// the benchmark when the enabled-but-sinkless registry costs more than 3%.
func checkOverhead(b *testing.B, name string, bare, instrumented func()) {
	b.Helper()
	bareBest, instrBest := math.Inf(1), math.Inf(1)
	for i := 0; i < obsOverheadRounds; i++ {
		if d := minSecs(1, bare); d < bareBest {
			bareBest = d
		}
		if d := minSecs(1, instrumented); d < instrBest {
			instrBest = d
		}
	}
	ratio := instrBest / bareBest
	b.ReportMetric(ratio, name+"-obs-ratio")
	if ratio > 1.03 {
		b.Errorf("%s: sinkless observability costs %.1f%% (> 3%% budget): bare %v s, instrumented %v s",
			name, (ratio-1)*100, bareBest, instrBest)
	}
}

func BenchmarkObsOverheadNetsim(b *testing.B) {
	sc := netsim.Scenario{
		Name:     "obs-overhead",
		Topology: netsim.TopologySpec{Kind: netsim.ClusterTopology, Sats: 8, Cluster: isl.Ring, Tech: isl.RFKaBand},
		PerSat:   100 * units.Mbps,
		Faults:   netsim.FaultConfig{LinkOutage: 0.1, LinkMTTRSec: 5},
		StepSec:  0.1, DurationSec: 120, WarmupSec: 20, Seed: 3,
	}
	bareRes, err := netsim.Run(sc)
	if err != nil {
		b.Fatal(err)
	}
	instr := sc
	instr.Obs = obs.New()
	instrRes, err := netsim.Run(instr)
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(bareRes, instrRes) {
		b.Fatalf("instrumented netsim run diverged from bare run:\nbare:  %+v\ninstr: %+v", bareRes, instrRes)
	}
	for i := 0; i < b.N; i++ {
		checkOverhead(b, "netsim",
			func() {
				if _, err := netsim.Run(sc); err != nil {
					b.Fatal(err)
				}
			},
			func() {
				in := sc
				in.Obs = obs.New()
				if _, err := netsim.Run(in); err != nil {
					b.Fatal(err)
				}
			})
	}
}

func BenchmarkObsOverheadSched(b *testing.B) {
	// Long simulated span: each run takes ~100 ms wall, large enough that
	// scheduler noise cannot masquerade as instrumentation overhead.
	cfg := sched.Config{
		Satellites:     16,
		FramePeriodSec: 0.05,
		PixelsPerFrame: 1e6,
		TargetBatch:    8,
		MaxWaitSec:     1,
		DurationSec:    3000,
		Seed:           3,
	}
	bareStats, err := sched.Simulate(cfg, obsBenchProc{})
	if err != nil {
		b.Fatal(err)
	}
	instrCfg := cfg
	instrCfg.Obs = obs.New()
	instrStats, err := sched.Simulate(instrCfg, obsBenchProc{})
	if err != nil {
		b.Fatal(err)
	}
	if bareStats != instrStats {
		b.Fatalf("instrumented sched run diverged from bare run:\nbare:  %+v\ninstr: %+v", bareStats, instrStats)
	}
	for i := 0; i < b.N; i++ {
		checkOverhead(b, "sched",
			func() {
				if _, err := sched.Simulate(cfg, obsBenchProc{}); err != nil {
					b.Fatal(err)
				}
			},
			func() {
				in := cfg
				in.Obs = obs.New()
				if _, err := sched.Simulate(in, obsBenchProc{}); err != nil {
					b.Fatal(err)
				}
			})
	}
}

// obsBenchProc is a fixed-rate synthetic processor for the overhead guard.
type obsBenchProc struct{}

func (obsBenchProc) Process(frames int, pixels float64) (float64, float64) {
	secs := pixels / 5e7
	return secs, secs * 300
}

// --- Ablation benches: the design choices DESIGN.md calls out. ---

// BenchmarkAblationDeviceSweep sizes the same workload across every
// catalog device: the §9 architecture question.
func BenchmarkAblationDeviceSweep(b *testing.B) {
	for _, dev := range gpusim.Catalog() {
		dev := dev
		b.Run(strings.ReplaceAll(dev.Name, " ", "-"), func(b *testing.B) {
			s := experiments.SuDCForDevice(dev)
			var n int
			var err error
			for i := 0; i < b.N; i++ {
				n, err = experiments.SuDCsAt(apps.FloodDetection, s, 0.3, 0.5)
				if err != nil {
					b.Skip("unsupported on this device:", err)
				}
			}
			b.ReportMetric(float64(n), "SµDCs@30cm/50%")
		})
	}
}

// BenchmarkAblationHardeningSweep isolates the hardening-overhead design
// choice at a fine-resolution operating point.
func BenchmarkAblationHardeningSweep(b *testing.B) {
	for _, h := range core.Hardenings() {
		h := h
		b.Run(strings.ReplaceAll(h.String(), " ", "-"), func(b *testing.B) {
			s := core.Default4kW()
			s.Hardening = h
			var n int
			var err error
			for i := 0; i < b.N; i++ {
				n, err = experiments.SuDCsAt(apps.UrbanEmergency, s, 0.3, 0.5)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n), "SµDCs@30cm/50%")
		})
	}
}

// BenchmarkAblationBatchSize shows why the paper picks the
// energy-efficiency-optimal batch: efficiency at fractions/multiples of b*.
func BenchmarkAblationBatchSize(b *testing.B) {
	model, err := gpusim.NewModel(apps.FloodDetection, gpusim.RTX3090)
	if err != nil {
		b.Fatal(err)
	}
	bStar := model.Calibration().BatchStar
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		mult := mult
		b.Run("x"+strconv.FormatFloat(mult, 'g', -1, 64), func(b *testing.B) {
			var eff float64
			for i := 0; i < b.N; i++ {
				eff = model.EnergyEfficiency(bStar * mult)
			}
			b.ReportMetric(eff, "kpixel/s/W")
		})
	}
}
