// Compression study: generate synthetic EO imagery in the statistical
// regimes of the paper's datasets (urban RGB like CrowdAI, quiet maritime
// SAR like xView3), run the full lossless codec suite over it, and show —
// as the paper's §4 argues — that even the best ratios fall orders of
// magnitude short of the ECRs fine resolutions demand.
package main

import (
	"fmt"
	"log"

	"spacedc/internal/compress"
	"spacedc/internal/datagen"
	"spacedc/internal/discard"
	"spacedc/internal/eoimage"
)

func main() {
	// RGB: an urban scene with 30% cloud, the hardest lossless case.
	scene, err := eoimage.Generate(eoimage.Config{
		Width: 384, Height: 384, Seed: 7, Kind: eoimage.Urban, CloudFraction: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("RGB urban scene (384×384, 30% cloud):")
	rgbBest := 0.0
	results, err := compress.MeasureSuite(scene.Width, scene.Height, compress.RGB8, scene.Interleaved())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("  %-10s %6.2f×  (%d → %d bytes, round trip verified)\n",
			r.Codec, r.Ratio, r.OriginalBytes, r.CompressedBytes)
		if r.Ratio > rgbBest {
			rgbBest = r.Ratio
		}
	}

	// SAR: quiet maritime scene — the one place lossless coding shines.
	sar, err := eoimage.GenerateSAR(eoimage.SARConfig{
		Width: 384, Height: 384, Seed: 7, ShipCount: 8,
		NoDataBorder: 110, QuantStep: 64, SpeckleLooks: 32})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSAR maritime scene (384×384, 8 ships):")
	sarResults, err := compress.MeasureSuite(sar.Width, sar.Height, compress.Gray16, sar.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range sarResults {
		fmt.Printf("  %-10s %8.1f×\n", r.Codec, r.Ratio)
	}

	// The §4 verdict: compression × early discard vs required ECR.
	bestED := discard.CombineIndependent(discard.Night, discard.NonBuiltUp)
	combined := rgbBest * bestED.ECR()
	fmt.Printf("\nbest RGB compression: %.1f×; best early discard (%s): %.0f×\n",
		rgbBest, bestED.Name, bestED.ECR())
	fmt.Printf("combined effective compression ratio: ≈%.0f×\n", combined)

	for _, target := range []struct {
		res      float64
		temporal float64
		label    string
	}{
		{1, 86400, "1 m / daily"},
		{0.3, 1800, "30 cm / 30 min"},
		{0.1, 1800, "10 cm / 30 min"},
	} {
		need := datagen.RequiredECR(target.res, target.temporal, datagen.Default4K.BitsPerPixel)
		fmt.Printf("  %-15s needs ECR %8.0f× → shortfall %6.0f×\n",
			target.label, need, need/combined)
	}
	fmt.Println("\nconclusion: data reduction cannot close the gap — move the computation to space (§5).")
}
