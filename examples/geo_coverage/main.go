// GEO coverage verification: place three SµDCs in geostationary orbit 120°
// apart (the paper's Fig 15 architecture) and verify by propagation that
// every satellite of a 64-satellite LEO constellation keeps line of sight
// to at least one SµDC at all times, then report the link geometry the
// LEO-GEO optical ISLs must close.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"spacedc/internal/constellation"
	"spacedc/internal/core"
	"spacedc/internal/isl"
	"spacedc/internal/orbit"
)

func main() {
	epoch := time.Date(2026, 3, 20, 0, 0, 0, 0, time.UTC)
	star := core.NewGEOStar(0, epoch)
	fmt.Println("SµDC placement: GEO slots at 0°, 120°, 240° east")

	ring, err := constellation.Ring(constellation.RingConfig{
		Name: "eo", Count: 64, AltKm: 550, IncRad: 97.6 * math.Pi / 180, // SSO-like
		Spacing: constellation.OrbitSpaced, Epoch: epoch,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify coverage for the whole constellation over a day.
	var els []orbit.Elements
	for _, s := range ring.Satellites {
		els = append(els, s.Elements)
	}
	fmt.Printf("verifying continuous coverage of %d LEO satellites over 24 h…\n", len(els))
	worst, err := star.VerifyContinuousCoverage(els, epoch, 24*time.Hour, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	if worst == 0 {
		fmt.Println("RESULT: continuous coverage — every satellite sees ≥1 SµDC at every sample")
	} else {
		fmt.Printf("RESULT: worst coverage gap %v — Fig 15 guarantee violated!\n", worst)
	}

	// Link geometry: LEO-GEO slant range envelope for one satellite.
	leo := orbit.J2Propagator{Elements: els[0]}
	geos := star.Propagators()
	minR, maxR := math.Inf(1), 0.0
	for dt := time.Duration(0); dt < 24*time.Hour; dt += 2 * time.Minute {
		t := epoch.Add(dt)
		ls, err := leo.State(t)
		if err != nil {
			log.Fatal(err)
		}
		best := math.Inf(1)
		for _, g := range geos {
			gs, err := g.State(t)
			if err != nil {
				log.Fatal(err)
			}
			if !orbit.LineOfSight(ls.Position, gs.Position, orbit.AtmosphereGrazeKm) {
				continue
			}
			if d := ls.Position.DistanceTo(gs.Position); d < best {
				best = d
			}
		}
		if best < minR {
			minR = best
		}
		if !math.IsInf(best, 1) && best > maxR {
			maxR = best
		}
	}
	fmt.Printf("nearest-SµDC slant range: %.0f – %.0f km\n", minR, maxR)

	// What that range costs an optical terminal (power ∝ distance²).
	tech := isl.Optical10G
	fmt.Printf("%s transmit power at that range: %v – %v\n",
		tech.Name, tech.TxPowerAt(minR), tech.TxPowerAt(maxR))

	// Eclipse advantage of GEO (§9): compare array sizing.
	leoSuDC := core.Default4kW()
	geoSuDC := core.Default4kW()
	geoSuDC.Placement = core.GEO
	fmt.Printf("solar array for 4 kW SµDC: LEO %v vs GEO %v\n",
		leoSuDC.SolarArrayPower(), geoSuDC.SolarArrayPower())
}
