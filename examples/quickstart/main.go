// Quickstart: size a space microdatacenter for an Earth-observation
// constellation.
//
// Builds the paper's study constellation (64 EO satellites in one 550 km
// plane), takes its flood-detection workload at 1 m resolution with 95%
// early discard, and answers the paper's central question: how many 4 kW
// SµDCs does it take, and do the inter-satellite links keep up?
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"spacedc/internal/apps"
	"spacedc/internal/constellation"
	"spacedc/internal/core"
	"spacedc/internal/datagen"
	"spacedc/internal/isl"
	"spacedc/internal/units"
)

func main() {
	epoch := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

	// 1. The constellation: 64 EO satellites in a single plane.
	ring, err := constellation.Ring(constellation.RingConfig{
		Name: "eo", Count: 64, AltKm: 550, IncRad: 53 * math.Pi / 180,
		Spacing: constellation.FrameSpaced, Epoch: epoch,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constellation: %d satellites at 550 km (%s)\n",
		ring.Size(), constellation.FrameSpaced)

	// 2. The workload: flood detection at 1 m, 95% early discard.
	mission := datagen.Mission{Frame: datagen.Default4K, Satellites: ring.Size()}
	w := core.Workload{
		App:          apps.FloodDetection,
		Mission:      mission,
		ResolutionM:  1,
		EarlyDiscard: 0.95,
	}
	fmt.Printf("workload: %s at 1 m, 95%% early discard → %.3g pixels/s, %v\n",
		w.App, w.PixelRate(), mission.ConstellationRate(1, 0.95))

	// 3. The SµDC: the paper's 4 kW RTX 3090 baseline.
	sudc := core.Default4kW()
	n, err := core.SuDCsNeeded(w, sudc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compute: %d × %s (%v compute, %v total, %v solar array)\n",
		n, sudc.Name, sudc.ComputeBudget, sudc.TotalPower(), sudc.SolarArrayPower())

	// 4. The links: does a 10 Gbit/s optical ring keep up?
	plan, err := core.PlanClusters(w, sudc, 10*units.Gbps, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("links: ring topology on %s → %d clusters (%v)\n",
		isl.Optical10G.Name, plan.Clusters, plan.Bottleneck)

	if plan.Clusters > n {
		fmt.Printf("co-design: ISLs force %d clusters where compute needs %d — "+
			"consider a k-list or SµDC splitting (see examples/constellation_design)\n",
			plan.Clusters, n)
	} else {
		fmt.Println("co-design: ISL-unconstrained — one ring does it")
	}
}
