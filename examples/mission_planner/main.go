// Mission planner: the whole library in one run. Plans three contrasting
// SµDC-backed missions end to end — fleet sizing from the revisit goal,
// compute and ISL co-design, radiation posture, thermal/power/boost
// budgets, and economics — then simulates a slice of the winning design's
// day: synthetic frames generated, early-discarded, relayed, and processed
// by the scheduled SµDC.
package main

import (
	"fmt"
	"log"
	"time"

	"spacedc/internal/apps"
	"spacedc/internal/core"
	"spacedc/internal/discard"
	"spacedc/internal/eoimage"
	"spacedc/internal/gpusim"
	"spacedc/internal/mission"
	"spacedc/internal/sched"
)

func main() {
	specs := []struct {
		label string
		spec  mission.Spec
	}{
		{"flood watch (FD, 1 m, hourly revisit)", mission.Spec{
			App: apps.FloodDetection, SpatialResM: 1, EarlyDiscard: 0.95,
			RevisitTarget: time.Hour,
		}},
		{"urban emergencies (UED, 30 cm, 64 sats, AI 100)", mission.Spec{
			App: apps.UrbanEmergency, SpatialResM: 0.3, EarlyDiscard: 0.5,
			Satellites: 64, Device: gpusim.CloudAI100,
		}},
		{"oil spill patrol (OSM, 1 m, GEO SµDCs, 15 yr)", mission.Spec{
			App: apps.OilSpill, SpatialResM: 1, EarlyDiscard: 0.7,
			Satellites: 64, Placement: core.GEO, MissionYears: 15,
		}},
	}
	for _, s := range specs {
		design, err := mission.Plan(s.spec)
		if err != nil {
			log.Fatalf("%s: %v", s.label, err)
		}
		fmt.Printf("=== %s ===\n%s\n", s.label, design.Summary())
	}

	// A slice of the first mission's day, end to end.
	fmt.Println("=== day-in-the-life slice (flood watch) ===")

	// 1. On-board early discard on synthetic scenes.
	pipeline := discard.Pipeline{Classifiers: []discard.Classifier{
		discard.NightClassifier{}, discard.OceanClassifier{}, discard.CloudClassifier{},
	}}
	kinds := []eoimage.SceneKind{eoimage.Ocean, eoimage.Rural, eoimage.Urban}
	var frames []*eoimage.Scene
	for i := 0; i < 30; i++ {
		scene, err := eoimage.Generate(eoimage.Config{
			Width: 96, Height: 96, Seed: int64(i),
			Kind:          kinds[i%len(kinds)],
			CloudFraction: float64(i%5) * 0.2,
			Night:         i%4 == 0,
		})
		if err != nil {
			log.Fatal(err)
		}
		frames = append(frames, scene)
	}
	stats := pipeline.Evaluate(frames)
	fmt.Printf("early discard: %d/%d demo frames dropped by the night/ocean/cloud classifiers "+
		"(rate %.2f); the mission adds a flood-region-of-interest filter to reach its planned 95%%\n",
		stats.Discarded, stats.Frames, stats.Rate())

	// 2. The surviving stream through the SµDC scheduler at the planned
	// discard rate.
	proc, err := sched.NewDeviceProcessor(apps.FloodDetection, gpusim.RTX3090, 11) // ~4 kW of 3090s
	if err != nil {
		log.Fatal(err)
	}
	keep := 0.05 // the planned 95% early discard
	cfg := sched.Config{
		Satellites:     64,
		FramePeriodSec: 1.5,
		PixelsPerFrame: 8.85e6 * 9, // 1 m frames
		KeepProb:       func(int, float64) float64 { return keep },
		TargetBatch:    proc.OptimalTargetBatch(),
		MaxWaitSec:     30,
		DurationSec:    1800,
		QueueLimit:     2048,
		Seed:           7,
	}
	st, err := sched.Simulate(cfg, proc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SµDC pipeline (30 min): %d frames processed, %d dropped, "+
		"mean latency %.1f s, utilization %.2f, %.0f J/frame\n",
		st.Processed, st.Dropped, st.MeanLatencySec, st.Utilization, st.EnergyPerFrameJ())
	fmt.Println("\ninsights downlinked; raw pixels never left orbit.")
}
