// Constellation design walk-through: pick an application and resolution,
// sweep early-discard rates, and co-design the SµDC fleet and ISL topology.
//
// This reproduces the reasoning of the paper's §7-8 end to end: compute
// sizing first (Fig 9), then the ISL bottleneck check (Table 8 / Fig 11),
// then mitigation via k-lists and SµDC splitting (Fig 13), with the
// atmospheric-grazing feasibility limit for orbit-spaced formations.
package main

import (
	"fmt"
	"log"

	"spacedc/internal/apps"
	"spacedc/internal/core"
	"spacedc/internal/datagen"
	"spacedc/internal/isl"
	"spacedc/internal/orbit"
	"spacedc/internal/units"
)

func main() {
	const (
		resolution = 0.3 // 30 cm — a Pelican-class target
		altKm      = 550
	)
	app := apps.OilSpill
	mission := datagen.Mission{Frame: datagen.Default4K, Satellites: 64}
	sudc := core.Default4kW()

	fmt.Printf("designing for %s at %s with a 64-satellite constellation\n\n",
		app, datagen.ResolutionLabel(resolution))

	// Step 1: compute sizing across early-discard rates (Fig 9 column).
	fmt.Println("step 1 — compute sizing (4 kW RTX 3090 SµDCs):")
	for _, ed := range datagen.StandardDiscardRates {
		w := core.Workload{App: app, Mission: mission, ResolutionM: resolution, EarlyDiscard: ed}
		n, err := core.SuDCsNeeded(w, sudc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2.0f%% early discard → %3d SµDCs\n", ed*100, n)
	}

	// Step 2: the ISL bottleneck at the chosen operating point.
	const ed = 0.95
	w := core.Workload{App: app, Mission: mission, ResolutionM: resolution, EarlyDiscard: ed}
	perSat := mission.Frame.DataRate(resolution, ed)
	fmt.Printf("\nstep 2 — ISL check at %.0f%% discard (per-satellite stream %v):\n", ed*100, perSat)
	for _, cap := range isl.Table8Capacities {
		plan, err := core.PlanClusters(w, sudc, cap, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10v ring: %2d clusters (compute needs %d) — %v\n",
			cap, plan.Clusters, plan.ComputeSuDCs, plan.Bottleneck)
	}

	// Step 3: mitigate with k-lists and splitting on both formations.
	fmt.Println("\nstep 3 — co-design options (10 Gbit/s optical links):")
	for _, geom := range []struct {
		name string
		g    isl.PlaneGeometry
	}{
		{"frame-spaced", isl.FrameSpacedGeometry(altKm, 12)},
		{"orbit-spaced", isl.OrbitSpacedGeometry(altKm, 64)},
	} {
		maxK := geom.g.MaxK(orbit.AtmosphereGrazeKm)
		fmt.Printf("  %s formation (max usable k = %d):\n", geom.name, maxK)
		for _, k := range []int{2, 4, 8} {
			for _, split := range []int{1, 2} {
				cd := isl.CoDesign{
					Topology:  isl.Topology{K: k, Split: split},
					Geometry:  geom.g,
					Tech:      isl.Optical10G,
					TotalSats: 64,
				}
				pt := cd.Fig13Point(orbit.AtmosphereGrazeKm)
				status := "ok"
				if !pt.Feasible {
					status = "INFEASIBLE (atmospheric grazing)"
				}
				fmt.Printf("    k=%d split=%d: capacity ×%.0f, tx power ×%.0f — %s\n",
					k, split, pt.CapacityNorm, pt.PowerNorm, status)
			}
		}
	}

	// Step 4: the economics.
	cm := core.DefaultCostModel()
	n, err := core.SuDCsNeeded(w, sudc)
	if err != nil {
		log.Fatal(err)
	}
	downlinkPerDay := units.Money(1000 * 60 * 24) // paper: >$1000/min at fine res
	fmt.Printf("\nstep 4 — economics: %d SµDCs cost %v; downlink at $1000/min breaks even in %.0f days\n",
		n, cm.SuDCCapex(n), cm.BreakEvenDays(n, downlinkPerDay))
}
