package sched

import (
	"runtime"
	"testing"

	"spacedc/internal/apps"
	"spacedc/internal/gpusim"
)

func BenchmarkSimulateHour(b *testing.B) {
	proc, err := NewDeviceProcessor(apps.FloodDetection, gpusim.RTX3090, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Satellites:     64,
		FramePeriodSec: 1.5,
		PixelsPerFrame: 8.8e6,
		TargetBatch:    64,
		MaxWaitSec:     10,
		DurationSec:    3600,
		QueueLimit:     512,
		Seed:           1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, proc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateWeekMemoryFlat is the month-scale-mission allocation
// guard: a week of simulated time (~3.2M frames) must allocate O(buckets),
// not O(frames) — the histogram latency accumulator, the typed event heap,
// and the compacting FIFO keep the whole run under a fixed allocation
// budget regardless of duration.
func BenchmarkSimulateWeekMemoryFlat(b *testing.B) {
	cfg := Config{
		Satellites:     8,
		FramePeriodSec: 1.5,
		PixelsPerFrame: 1e6,
		TargetBatch:    16,
		MaxWaitSec:     30,
		DurationSec:    7 * 86400,
		Seed:           1,
	}
	proc := fixedRate{pixelsPerSec: 1e8, watts: 100}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	if _, err := Simulate(cfg, proc); err != nil {
		b.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	if allocs := m1.Mallocs - m0.Mallocs; allocs > 1000 {
		b.Errorf("week-long run made %d allocations, want O(buckets) (≤1000): latency accounting regressed to O(frames)", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, proc); err != nil {
			b.Fatal(err)
		}
	}
}
