package sched

import (
	"testing"

	"spacedc/internal/apps"
	"spacedc/internal/gpusim"
)

func BenchmarkSimulateHour(b *testing.B) {
	proc, err := NewDeviceProcessor(apps.FloodDetection, gpusim.RTX3090, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Satellites:     64,
		FramePeriodSec: 1.5,
		PixelsPerFrame: 8.8e6,
		TargetBatch:    64,
		MaxWaitSec:     10,
		DurationSec:    3600,
		QueueLimit:     512,
		Seed:           1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, proc); err != nil {
			b.Fatal(err)
		}
	}
}
