package sched

import (
	"fmt"

	"spacedc/internal/apps"
	"spacedc/internal/gpusim"
)

// DeviceProcessor adapts a gpusim performance model to the scheduler's
// Processor interface: one queued frame maps to one batch item, so the
// calibrated batch-response curve (efficiency peaks at b*, power saturates)
// directly drives the simulation.
type DeviceProcessor struct {
	Model *gpusim.Model
	// Replicas is the number of identical devices ganged together (a
	// 4 kW SµDC carries ~11 RTX 3090s); throughput scales linearly.
	// Zero means 1.
	Replicas int
}

// NewDeviceProcessor builds a processor for app on dev with the given
// replica count.
func NewDeviceProcessor(app apps.ID, dev gpusim.Device, replicas int) (*DeviceProcessor, error) {
	m, err := gpusim.NewModel(app, dev)
	if err != nil {
		return nil, err
	}
	if replicas < 0 {
		return nil, fmt.Errorf("sched: negative replica count %d", replicas)
	}
	return &DeviceProcessor{Model: m, Replicas: replicas}, nil
}

// replicas returns the effective gang size.
func (d *DeviceProcessor) replicas() float64 {
	if d.Replicas <= 0 {
		return 1
	}
	return float64(d.Replicas)
}

// Process implements Processor: the batch is spread evenly over the gang,
// each device running at the per-device batch's operating point.
func (d *DeviceProcessor) Process(frames int, pixels float64) (seconds, joules float64) {
	if frames <= 0 || pixels <= 0 {
		return 0, 0
	}
	r := d.replicas()
	perDevBatch := float64(frames) / r
	rate := d.Model.PixelRate(perDevBatch) * r
	if rate <= 0 {
		return 0, 0
	}
	seconds = pixels / rate
	joules = seconds * float64(d.Model.Power(perDevBatch)) * r
	return seconds, joules
}

// OptimalTargetBatch returns the gang-wide batch size that hits each
// device's energy-efficiency optimum.
func (d *DeviceProcessor) OptimalTargetBatch() int {
	b := int(d.Model.OptimalBatch() * d.replicas())
	if b < 1 {
		b = 1
	}
	return b
}
