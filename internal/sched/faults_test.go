package sched

import (
	"math"
	"testing"
)

// constHazard returns a time-independent hazard function.
func constHazard(rate float64) func(float64) float64 {
	return func(float64) float64 { return rate }
}

func faultConfig(rate float64) *FaultConfig {
	return &FaultConfig{
		Hazard:        constHazard(rate),
		ResetFraction: 0.1,
		ResetMTTRSec:  30,
	}
}

func TestFaultConfigValidate(t *testing.T) {
	bad := map[string]*FaultConfig{
		"negative reset fraction": {ResetFraction: -0.1},
		"reset fraction above 1":  {ResetFraction: 1.5},
		"negative MTTR":           {ResetMTTRSec: -1},
		"NaN MTTR":                {ResetMTTRSec: math.NaN()},
		"infinite MTTR":           {ResetMTTRSec: math.Inf(1)},
	}
	for name, f := range bad {
		c := baseConfig()
		c.Faults = f
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestZeroHazardMatchesBaseline is the bit-for-bit guarantee the resilience
// layer is built on: enabling the fault machinery with a zero hazard must
// not perturb the simulation at all — same stats, same random draws.
func TestZeroHazardMatchesBaseline(t *testing.T) {
	proc := fixedRate{pixelsPerSec: 2e6, watts: 100}
	c := baseConfig()
	c.KeepProb = func(sat int, tm float64) float64 { return 0.8 } // exercise the shared rng
	base, err := Simulate(c, proc)
	if err != nil {
		t.Fatal(err)
	}
	withFaults := c
	withFaults.Faults = faultConfig(0)
	got, err := Simulate(withFaults, proc)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Errorf("zero-hazard run diverged from baseline:\n got %+v\nwant %+v", got, base)
	}
}

// TestFaultDeterminism: the single injected rng makes fault runs a pure
// function of (Config, Processor).
func TestFaultDeterminism(t *testing.T) {
	proc := fixedRate{pixelsPerSec: 2e6, watts: 100}
	c := baseConfig()
	c.Faults = faultConfig(0.05)
	a, err := Simulate(c, proc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(c, proc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged:\n %+v\n %+v", a, b)
	}
	if a.Upsets == 0 {
		t.Fatal("hazard produced no upsets — test not exercising faults")
	}
	c.Seed = 99
	d, err := Simulate(c, proc)
	if err != nil {
		t.Fatal(err)
	}
	if a == d {
		t.Error("different seeds produced identical fault stats")
	}
}

func TestCorruptionAccounting(t *testing.T) {
	proc := fixedRate{pixelsPerSec: 2e6, watts: 100}
	c := baseConfig()
	c.Faults = &FaultConfig{Hazard: constHazard(0.2)} // silent corruption only
	st, err := Simulate(c, proc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupted == 0 || st.Upsets == 0 {
		t.Fatalf("expected corruption under heavy hazard: %+v", st)
	}
	if st.DeviceResets != 0 || st.DowntimeSec != 0 {
		t.Errorf("zero reset fraction produced resets: %+v", st)
	}
	if st.Arrived != st.Processed+st.Corrupted+st.Dropped+st.LeftOver {
		t.Errorf("conservation violated: %+v", st)
	}
}

func TestResetDowntime(t *testing.T) {
	proc := fixedRate{pixelsPerSec: 2e6, watts: 100}
	c := baseConfig()
	c.Faults = &FaultConfig{Hazard: constHazard(0.2), ResetFraction: 1, ResetMTTRSec: 5}
	st, err := Simulate(c, proc)
	if err != nil {
		t.Fatal(err)
	}
	if st.DeviceResets == 0 {
		t.Fatal("expected device resets at reset fraction 1")
	}
	if st.DeviceResets != st.Upsets {
		t.Errorf("all upsets should reset: %d upsets, %d resets", st.Upsets, st.DeviceResets)
	}
	want := float64(st.DeviceResets) * 5
	if math.Abs(st.DowntimeSec-want) > 1e-9 {
		t.Errorf("downtime %v, want resets×MTTR = %v", st.DowntimeSec, want)
	}
	// Downtime is excluded from busy time.
	if st.BusySec+st.DowntimeSec > c.DurationSec+60 {
		t.Errorf("busy %v + down %v exceed the mission span", st.BusySec, st.DowntimeSec)
	}
}

func TestPauseActiveBlocksLaunches(t *testing.T) {
	proc := fixedRate{pixelsPerSec: 2e6, watts: 100}
	c := baseConfig()
	c.Faults = &FaultConfig{PauseActive: func(float64) bool { return true }}
	st, err := Simulate(c, proc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != 0 || st.Processed != 0 {
		t.Errorf("permanent pause still launched batches: %+v", st)
	}
	if st.Arrived == 0 {
		t.Error("arrivals should continue during a pause")
	}
	// A pause only over the first half defers, not destroys, throughput.
	c.Faults = &FaultConfig{PauseActive: func(tm float64) bool { return tm < c.DurationSec/2 }}
	half, err := Simulate(c, proc)
	if err != nil {
		t.Fatal(err)
	}
	if half.Processed == 0 {
		t.Error("processing should resume when the pause lifts")
	}
}

// stretchHook is a constant-factor thermal hook recording dissipation.
type stretchHook struct {
	factor  float64
	joules  float64
	lastEnd float64
}

func (s *stretchHook) Factor(float64) float64 { return s.factor }
func (s *stretchHook) Dissipated(start, secs, joules float64) {
	s.joules += joules
	s.lastEnd = start + secs
}

func TestThermalThrottleStretchesService(t *testing.T) {
	proc := fixedRate{pixelsPerSec: 2e6, watts: 100}
	c := baseConfig()
	base, err := Simulate(c, proc)
	if err != nil {
		t.Fatal(err)
	}
	hook := &stretchHook{factor: 0.5}
	c.Thermal = hook
	st, err := Simulate(c, proc)
	if err != nil {
		t.Fatal(err)
	}
	if st.ThrottleSec <= 0 {
		t.Fatal("half-capacity hook recorded no throttle time")
	}
	// Service times doubled: throttle share is half the busy time.
	if math.Abs(st.ThrottleSec-st.BusySec/2) > 1e-6 {
		t.Errorf("throttle %v, want half of busy %v", st.ThrottleSec, st.BusySec)
	}
	// Power capping conserves energy per batch: each batch keeps its
	// joules over a longer wall time, so energy per processed frame holds
	// even though the saturated device finishes fewer batches.
	if math.Abs(st.EnergyPerFrameJ()-base.EnergyPerFrameJ()) > 1e-6*base.EnergyPerFrameJ() {
		t.Errorf("throttling changed energy per frame: %v vs %v",
			st.EnergyPerFrameJ(), base.EnergyPerFrameJ())
	}
	if hook.joules <= 0 || hook.lastEnd <= 0 {
		t.Error("hook never saw dissipation")
	}
}

func TestThermalFactorFloorPreventsStall(t *testing.T) {
	proc := fixedRate{pixelsPerSec: 2e6, watts: 100}
	c := baseConfig()
	c.Thermal = &stretchHook{factor: 0} // degenerate: would stretch to infinity
	st, err := Simulate(c, proc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches == 0 {
		t.Error("floored factor should still launch batches")
	}
	for _, v := range []float64{st.BusySec, st.ThrottleSec, st.EnergyJ} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("degenerate factor produced non-finite stats: %+v", st)
		}
	}
}

// TestRunPassZeroHazardDrawsNothing pins the no-draw contract RunPass
// gives recovery policies: with no hazard it must not touch the rng.
func TestRunPassZeroHazardDrawsNothing(t *testing.T) {
	e := BatchExec{Start: 10, Frames: 4, BaseSecs: 2, BaseJoules: 200}
	// Rng is nil: any draw would panic.
	p := e.RunOnce(e.Start)
	if p.Secs != 2 || p.Joules != 200 || p.Upset || p.Reset || p.DownSec != 0 {
		t.Errorf("zero-hazard pass perturbed the operating point: %+v", p)
	}
	e.Hazard = func(tm float64) float64 { return math.NaN() }
	if p := e.RunOnce(e.Start); p.Upset {
		t.Errorf("NaN hazard should sanitize to zero: %+v", p)
	}
}
