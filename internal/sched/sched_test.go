package sched

import (
	"math"
	"testing"

	"spacedc/internal/apps"
	"spacedc/internal/gpusim"
)

// fixedRate is a synthetic processor with constant pixel rate and power.
type fixedRate struct {
	pixelsPerSec float64
	watts        float64
}

func (f fixedRate) Process(frames int, pixels float64) (float64, float64) {
	secs := pixels / f.pixelsPerSec
	return secs, secs * f.watts
}

func baseConfig() Config {
	return Config{
		Satellites:     8,
		FramePeriodSec: 1.5,
		PixelsPerFrame: 1e6,
		TargetBatch:    4,
		MaxWaitSec:     3,
		DurationSec:    300,
		Seed:           1,
	}
}

func TestValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Config){
		"zero sats":        func(c *Config) { c.Satellites = 0 },
		"zero period":      func(c *Config) { c.FramePeriodSec = 0 },
		"zero pixels":      func(c *Config) { c.PixelsPerFrame = 0 },
		"zero duration":    func(c *Config) { c.DurationSec = 0 },
		"zero batch":       func(c *Config) { c.TargetBatch = 0 },
		"max below target": func(c *Config) { c.MaxBatch = 2; c.TargetBatch = 4 },
		"negative wait":    func(c *Config) { c.MaxWaitSec = -1 },
	}
	for name, mut := range mutations {
		c := baseConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := Simulate(baseConfig(), nil); err == nil {
		t.Error("nil processor accepted")
	}
}

func TestConservation(t *testing.T) {
	cfg := baseConfig()
	// Generously fast device: everything processes.
	st, err := Simulate(cfg, fixedRate{pixelsPerSec: 1e9, watts: 100})
	if err != nil {
		t.Fatal(err)
	}
	if st.Arrived != st.Processed+st.Dropped+st.LeftOver {
		t.Errorf("conservation violated: %+v", st)
	}
	// 8 sats / 1.5 s over 300 s ≈ 1600 frames.
	if st.Arrived < 1500 || st.Arrived > 1700 {
		t.Errorf("arrived %d, want ≈1600", st.Arrived)
	}
	if st.Dropped != 0 {
		t.Errorf("fast device dropped %d frames", st.Dropped)
	}
	if st.MeanLatencySec <= 0 || st.MaxLatencySec < st.P95LatencySec || st.P95LatencySec < 0 {
		t.Errorf("latency stats inconsistent: %+v", st)
	}
}

func TestOverloadDropsFrames(t *testing.T) {
	cfg := baseConfig()
	cfg.QueueLimit = 16
	// Device sustains half the offered pixel rate.
	offered := float64(cfg.Satellites) * cfg.PixelsPerFrame / cfg.FramePeriodSec
	st, err := Simulate(cfg, fixedRate{pixelsPerSec: offered / 2, watts: 100})
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped == 0 {
		t.Error("overloaded system should drop frames")
	}
	if st.Utilization < 0.9 {
		t.Errorf("overloaded utilization %v, want ≈1", st.Utilization)
	}
}

func TestUnderloadLowUtilization(t *testing.T) {
	cfg := baseConfig()
	offered := float64(cfg.Satellites) * cfg.PixelsPerFrame / cfg.FramePeriodSec
	st, err := Simulate(cfg, fixedRate{pixelsPerSec: offered * 10, watts: 100})
	if err != nil {
		t.Fatal(err)
	}
	if st.Utilization > 0.2 {
		t.Errorf("10× headroom should idle the device: util %v", st.Utilization)
	}
	// MaxWait bounds latency: 3 s wait + service.
	if st.P95LatencySec > cfg.MaxWaitSec+1 {
		t.Errorf("p95 latency %v exceeds wait bound", st.P95LatencySec)
	}
}

func TestEarlyDiscardReducesArrivals(t *testing.T) {
	cfg := baseConfig()
	cfg.KeepProb = func(int, float64) float64 { return 0.05 } // 95% discard
	st, err := Simulate(cfg, fixedRate{pixelsPerSec: 1e9, watts: 100})
	if err != nil {
		t.Fatal(err)
	}
	full := 8.0 * 300 / 1.5
	if got := float64(st.Arrived); got > 0.12*full || got < 0.01*full {
		t.Errorf("95%% discard arrivals = %v of %v generated", got, full)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	cfg := baseConfig()
	cfg.KeepProb = func(int, float64) float64 { return 0.5 }
	a, err := Simulate(cfg, fixedRate{1e8, 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg, fixedRate{1e8, 100})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed should reproduce identical stats")
	}
	cfg.Seed = 2
	c, err := Simulate(cfg, fixedRate{1e8, 100})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds should differ")
	}
}

func TestBatchingLatencyEnergyTradeoff(t *testing.T) {
	// The §9 trade on a real device model: batching to the efficiency
	// optimum lowers J/frame but raises latency versus tiny batches.
	proc, err := NewDeviceProcessor(apps.FloodDetection, gpusim.RTX3090, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the system underloaded at every batch size so latency isolates
	// the batching delay, not queue buildup: FD at batch 1 still sustains
	// ≈3.5 Mpx/s, and 2 satellites offer ≈1.3 Mpx/s.
	run := func(target int) Stats {
		cfg := Config{
			Satellites:     2,
			FramePeriodSec: 1.5,
			PixelsPerFrame: 1e6,
			TargetBatch:    target,
			MaxBatch:       target,
			MaxWaitSec:     120,
			DurationSec:    600,
			QueueLimit:     1000,
			Seed:           3,
		}
		st, err := Simulate(cfg, proc)
		if err != nil {
			t.Fatal(err)
		}
		if st.Processed == 0 {
			t.Fatalf("target %d processed nothing", target)
		}
		return st
	}
	small := run(1)
	optimal := run(proc.OptimalTargetBatch())
	if optimal.EnergyPerFrameJ() >= small.EnergyPerFrameJ() {
		t.Errorf("optimal batch J/frame %v should beat batch-1 %v",
			optimal.EnergyPerFrameJ(), small.EnergyPerFrameJ())
	}
	if optimal.MeanLatencySec <= small.MeanLatencySec {
		t.Errorf("optimal batch latency %v should exceed batch-1 %v",
			optimal.MeanLatencySec, small.MeanLatencySec)
	}
}

func TestDataIntegratorClaim(t *testing.T) {
	// §6: SµDCs integrate variable per-satellite generation, so the
	// device sized for the average workload handles a constellation where
	// half the satellites generate nothing (ocean) and half generate
	// everything — same aggregate, same outcome as uniform generation.
	cfg := baseConfig()
	cfg.Satellites = 16
	cfg.DurationSec = 600
	cfg.QueueLimit = 200

	offered := float64(cfg.Satellites) * cfg.PixelsPerFrame / cfg.FramePeriodSec
	proc := fixedRate{pixelsPerSec: offered * 0.6, watts: 100} // sized for ~the 50% average

	uniform := cfg
	uniform.KeepProb = func(int, float64) float64 { return 0.5 }
	stU, err := Simulate(uniform, proc)
	if err != nil {
		t.Fatal(err)
	}

	skewed := cfg
	skewed.KeepProb = func(sat int, _ float64) float64 {
		if sat%2 == 0 {
			return 1.0 // land imagers
		}
		return 0.0 // ocean imagers
	}
	stS, err := Simulate(skewed, proc)
	if err != nil {
		t.Fatal(err)
	}

	// Both patterns offer ~the same aggregate and the average-sized
	// device must clear both with negligible loss.
	if stU.Dropped > stU.Arrived/100 || stS.Dropped > stS.Arrived/100 {
		t.Errorf("average-case-sized SµDC dropped frames: uniform %d/%d, skewed %d/%d",
			stU.Dropped, stU.Arrived, stS.Dropped, stS.Arrived)
	}
	ratio := float64(stS.Arrived) / float64(stU.Arrived)
	if math.Abs(ratio-1) > 0.1 {
		t.Errorf("aggregate arrivals differ: skewed/uniform = %v", ratio)
	}
}

func TestDeviceProcessorValidation(t *testing.T) {
	if _, err := NewDeviceProcessor(apps.PanopticSeg, gpusim.JetsonXavier, 1); err == nil {
		t.Error("PS on Xavier accepted")
	}
	if _, err := NewDeviceProcessor(apps.FloodDetection, gpusim.RTX3090, -1); err == nil {
		t.Error("negative replicas accepted")
	}
	p, err := NewDeviceProcessor(apps.FloodDetection, gpusim.RTX3090, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s, j := p.Process(0, 0); s != 0 || j != 0 {
		t.Error("empty batch should be free")
	}
	if b := p.OptimalTargetBatch(); b < 1 {
		t.Errorf("optimal batch %d", b)
	}
}

func TestReplicasScaleThroughput(t *testing.T) {
	one, err := NewDeviceProcessor(apps.OilSpill, gpusim.RTX3090, 1)
	if err != nil {
		t.Fatal(err)
	}
	ten, err := NewDeviceProcessor(apps.OilSpill, gpusim.RTX3090, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Same per-device batch: 10 replicas process 10× the frames in the
	// same time at 10× the energy.
	s1, j1 := one.Process(8, 8e6)
	s10, j10 := ten.Process(80, 80e6)
	if math.Abs(s10-s1)/s1 > 1e-9 {
		t.Errorf("gang time %v vs single %v", s10, s1)
	}
	if math.Abs(j10-10*j1)/j1 > 1e-6 {
		t.Errorf("gang energy %v vs 10× single %v", j10, 10*j1)
	}
}
