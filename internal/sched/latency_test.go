package sched

import (
	"math"
	"testing"

	"spacedc/internal/obs"
	statsutil "spacedc/internal/stats"
)

// latencyBucketWidth returns the width of the obs.LatencyBuckets bucket
// holding v — the documented tolerance of the bucket-derived p95.
func latencyBucketWidth(v float64) float64 {
	b := obs.LatencyBuckets
	i := 0
	for i < len(b) && v > b[i] {
		i++
	}
	if i >= len(b) {
		return math.Inf(1)
	}
	if i == 0 {
		return b[0]
	}
	return b[i] - b[i-1]
}

// TestP95FromBucketsTracksExact runs a long mission, captures every exact
// frame latency through the test tap, and asserts the histogram-backed
// P95LatencySec stays within one LatencyBuckets bucket width of the exact
// sorted-sample percentile the retired O(frames) slice used to report.
// Mean and max must stay exact (the accumulator keeps true running
// sum/count/max).
func TestP95FromBucketsTracksExact(t *testing.T) {
	var exact []float64
	latencyTap = func(l float64) { exact = append(exact, l) }
	defer func() { latencyTap = nil }()

	cfg := Config{
		Satellites:     8,
		FramePeriodSec: 1.5,
		PixelsPerFrame: 1e6,
		KeepProb:       func(int, float64) float64 { return 0.7 },
		TargetBatch:    16,
		MaxWaitSec:     20,
		DurationSec:    100000, // >1 simulated day, ~370k frames offered
		QueueLimit:     256,
		Seed:           11,
	}
	st, err := Simulate(cfg, fixedRate{pixelsPerSec: 4e6, watts: 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != st.Processed {
		t.Fatalf("tap saw %d latencies, stats processed %d", len(exact), st.Processed)
	}
	if st.Processed < 100000 {
		t.Fatalf("mission too short to exercise the accumulator: %d frames", st.Processed)
	}

	wantP95 := statsutil.Percentile(exact, 0.95)
	tol := latencyBucketWidth(wantP95)
	if got := st.P95LatencySec; math.Abs(got-wantP95) > tol {
		t.Errorf("P95LatencySec = %v, exact sorted-sample p95 = %v: off by %v, tolerance one bucket width %v",
			got, wantP95, math.Abs(got-wantP95), tol)
	}

	var sum, max float64
	for _, l := range exact {
		sum += l
		if l > max {
			max = l
		}
	}
	if wantMean := sum / float64(len(exact)); math.Abs(st.MeanLatencySec-wantMean) > 1e-9*wantMean {
		t.Errorf("MeanLatencySec = %v, want exact %v", st.MeanLatencySec, wantMean)
	}
	if st.MaxLatencySec != max {
		t.Errorf("MaxLatencySec = %v, want exact %v", st.MaxLatencySec, max)
	}
}

// TestSimulateAllocsMemoryFlat is the O(buckets)-not-O(frames) guard: a
// 10× longer mission (10× the frames) must not allocate meaningfully more
// than the short one. Before the histogram accumulator and the typed event
// heap, both the latency slice and the event boxing grew allocations
// linearly with frame count.
func TestSimulateAllocsMemoryFlat(t *testing.T) {
	run := func(durationSec float64) func() {
		cfg := Config{
			Satellites:     8,
			FramePeriodSec: 0.5,
			PixelsPerFrame: 1e6,
			TargetBatch:    8,
			MaxWaitSec:     5,
			DurationSec:    durationSec,
			Seed:           5,
		}
		return func() {
			if _, err := Simulate(cfg, fixedRate{pixelsPerSec: 1e8, watts: 100}); err != nil {
				t.Fatal(err)
			}
		}
	}
	short := testing.AllocsPerRun(3, run(2000)) // ~32k frames
	long := testing.AllocsPerRun(3, run(20000)) // ~320k frames
	if long > short+32 {
		t.Errorf("10× frames cost %v allocs vs %v: latency accounting is not memory-flat", long, short)
	}
	// Absolute ceiling: fixed setup (rng, heap, queue, histogram) only.
	if long > 150 {
		t.Errorf("long mission allocated %v times, want O(buckets) setup only (≤150)", long)
	}
}
