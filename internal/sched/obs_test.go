package sched

import (
	"testing"

	"spacedc/internal/obs"
)

// TestObsCountersMirrorStats asserts (1) an instrumented simulation is
// bit-identical to a bare one (observability is write-only) and (2) the
// registry's counters equal the Stats fields they mirror.
func TestObsCountersMirrorStats(t *testing.T) {
	cfg := baseConfig()
	cfg.Faults = &FaultConfig{
		Hazard:        func(float64) float64 { return 0.05 },
		ResetFraction: 0.3,
		ResetMTTRSec:  10,
		Recovery:      nil,
	}
	proc := fixedRate{pixelsPerSec: 1e6, watts: 300}
	bare, err := Simulate(cfg, proc)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.New()
	instr, err := Simulate(cfg, proc)
	if err != nil {
		t.Fatal(err)
	}
	if bare != instr {
		t.Fatalf("instrumented run diverged from bare run:\nbare:  %+v\ninstr: %+v", bare, instr)
	}
	counters := map[string]int64{}
	for _, c := range cfg.Obs.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	want := map[string]int{
		"sched.arrived":          instr.Arrived,
		"sched.dropped":          instr.Dropped,
		"sched.batches":          instr.Batches,
		"sched.upsets":           instr.Upsets,
		"sched.device_resets":    instr.DeviceResets,
		"sched.corrupted_frames": instr.Corrupted,
		"sched.processed_frames": instr.Processed,
	}
	for name, v := range want {
		if counters[name] != int64(v) {
			t.Errorf("%s = %d, want %d (Stats field)", name, counters[name], v)
		}
	}
	if instr.Upsets == 0 || instr.Corrupted == 0 {
		t.Errorf("hazard produced no upsets/corruption; scenario too weak: %+v", instr)
	}
}
