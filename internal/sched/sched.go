// Package sched is a discrete-event simulator of a space microdatacenter's
// processing pipeline: frames arrive from the constellation over ISLs,
// queue on board, are batched, and are processed by a compute device whose
// throughput, power, and batch response come from the gpusim models.
//
// It puts numbers behind two of the paper's qualitative arguments: the §6
// claim that SµDCs act as data integrators (absorbing per-satellite
// generation variation that would force worst-case design on homogeneous
// constellations), and the §9 latency/energy trade — batching harder is
// more energy-efficient but holds frames longer, which only
// latency-insensitive applications can accept.
package sched

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	statsutil "spacedc/internal/stats"
)

// Processor abstracts the compute device: the time and energy to run one
// batch. DeviceProcessor adapts a gpusim model; tests use synthetic ones.
type Processor interface {
	// Process returns the wall-clock seconds and energy in joules to
	// process a batch of `frames` frames totaling `pixels` pixels.
	Process(frames int, pixels float64) (seconds, joules float64)
}

// Config describes one simulation run.
type Config struct {
	// Satellites is the number of EO satellites feeding the SµDC.
	Satellites int
	// FramePeriodSec is the ground-track frame period (paper: 1.5 s).
	FramePeriodSec float64
	// PixelsPerFrame is the size of one frame at the operating
	// resolution.
	PixelsPerFrame float64
	// KeepProb returns the probability that a satellite's frame survives
	// early discard at simulation time t. Nil keeps everything. This is
	// where per-satellite variation (ocean vs land, day vs night) enters.
	KeepProb func(sat int, t float64) float64
	// QueueLimit caps the on-board frame queue; arrivals beyond it are
	// dropped (and counted). Zero means 4× Satellites.
	QueueLimit int
	// TargetBatch is the batch size the scheduler prefers to form.
	TargetBatch int
	// MaxBatch caps a single batch. Zero means TargetBatch.
	MaxBatch int
	// MaxWaitSec bounds how long the oldest queued frame may wait before
	// the scheduler launches a partial batch. Zero means no bound.
	MaxWaitSec float64
	// DurationSec is the simulated span.
	DurationSec float64
	// Seed drives the discard randomness.
	Seed int64
}

// Validate checks the config.
func (c Config) Validate() error {
	if c.Satellites <= 0 {
		return fmt.Errorf("sched: non-positive satellite count %d", c.Satellites)
	}
	if c.FramePeriodSec <= 0 || c.PixelsPerFrame <= 0 || c.DurationSec <= 0 {
		return fmt.Errorf("sched: non-positive period/pixels/duration")
	}
	if c.TargetBatch <= 0 {
		return fmt.Errorf("sched: non-positive target batch %d", c.TargetBatch)
	}
	if c.MaxBatch != 0 && c.MaxBatch < c.TargetBatch {
		return fmt.Errorf("sched: max batch %d below target %d", c.MaxBatch, c.TargetBatch)
	}
	if c.MaxWaitSec < 0 {
		return fmt.Errorf("sched: negative max wait")
	}
	return nil
}

// Stats summarizes one run.
type Stats struct {
	Arrived   int
	Processed int
	Dropped   int
	LeftOver  int // still queued or in flight at the end

	MeanLatencySec float64 // arrival → batch completion, processed frames
	P95LatencySec  float64
	MaxLatencySec  float64

	BusySec     float64 // device busy time
	Utilization float64 // BusySec / duration
	EnergyJ     float64
	MeanBatch   float64 // average formed batch size
	Batches     int
}

// EnergyPerFrameJ returns average energy per processed frame.
func (s Stats) EnergyPerFrameJ() float64 {
	if s.Processed == 0 {
		return 0
	}
	return s.EnergyJ / float64(s.Processed)
}

// event kinds for the simulation heap.
const (
	evArrival = iota
	evServiceDone
)

type event struct {
	time float64
	kind int
	sat  int // arrival source
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].time < h[j].time }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulate runs the discrete-event simulation and returns its statistics.
func Simulate(cfg Config, proc Processor) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	if proc == nil {
		return Stats{}, fmt.Errorf("sched: nil processor")
	}
	maxBatch := cfg.MaxBatch
	if maxBatch == 0 {
		maxBatch = cfg.TargetBatch
	}
	queueLimit := cfg.QueueLimit
	if queueLimit == 0 {
		queueLimit = 4 * cfg.Satellites
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var h eventHeap
	// Stagger satellite frame phases uniformly across the period, as a
	// formation flying over adjacent ground frames would be.
	for s := 0; s < cfg.Satellites; s++ {
		phase := cfg.FramePeriodSec * float64(s) / float64(cfg.Satellites)
		heap.Push(&h, event{time: phase, kind: evArrival, sat: s})
	}

	var (
		stats     Stats
		queue     []float64 // arrival times of queued frames (FIFO)
		busy      bool
		latencies []float64
		batchSum  int
	)

	// startBatch launches processing of up to maxBatch queued frames.
	startBatch := func(now float64) {
		n := len(queue)
		if n > maxBatch {
			n = maxBatch
		}
		if n == 0 {
			return
		}
		secs, joules := proc.Process(n, float64(n)*cfg.PixelsPerFrame)
		if secs < 0 || math.IsNaN(secs) || math.IsInf(secs, 0) {
			secs = 0
		}
		done := now + secs
		for _, arr := range queue[:n] {
			latencies = append(latencies, done-arr)
		}
		queue = queue[n:]
		stats.Processed += n
		stats.EnergyJ += joules
		stats.BusySec += secs
		stats.Batches++
		batchSum += n
		busy = true
		heap.Push(&h, event{time: done, kind: evServiceDone})
	}

	// shouldLaunch applies the batching policy.
	shouldLaunch := func(now float64) bool {
		if len(queue) == 0 {
			return false
		}
		if len(queue) >= cfg.TargetBatch {
			return true
		}
		return cfg.MaxWaitSec > 0 && now-queue[0] >= cfg.MaxWaitSec
	}

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		if ev.time > cfg.DurationSec {
			break
		}
		now := ev.time
		switch ev.kind {
		case evArrival:
			// Schedule this satellite's next frame.
			heap.Push(&h, event{time: now + cfg.FramePeriodSec, kind: evArrival, sat: ev.sat})
			keep := 1.0
			if cfg.KeepProb != nil {
				keep = cfg.KeepProb(ev.sat, now)
			}
			if rng.Float64() >= keep {
				break // early-discarded on the EO satellite
			}
			stats.Arrived++
			if len(queue) >= queueLimit {
				stats.Dropped++
				break
			}
			queue = append(queue, now)
		case evServiceDone:
			busy = false
		}
		if !busy && shouldLaunch(now) {
			startBatch(now)
		}
	}

	stats.LeftOver = stats.Arrived - stats.Processed - stats.Dropped
	stats.Utilization = stats.BusySec / cfg.DurationSec
	if stats.Utilization > 1 {
		stats.Utilization = 1
	}
	if stats.Batches > 0 {
		stats.MeanBatch = float64(batchSum) / float64(stats.Batches)
	}
	if len(latencies) > 0 {
		stats.MeanLatencySec, stats.P95LatencySec, stats.MaxLatencySec = latencyStats(latencies)
	}
	return stats, nil
}

// latencyStats computes mean, p95, and max of a sample via the shared
// stats helper (netsim uses the same convention).
func latencyStats(xs []float64) (mean, p95, max float64) {
	return statsutil.MeanP95Max(xs)
}
