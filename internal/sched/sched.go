// Package sched is a discrete-event simulator of a space microdatacenter's
// processing pipeline: frames arrive from the constellation over ISLs,
// queue on board, are batched, and are processed by a compute device whose
// throughput, power, and batch response come from the gpusim models.
//
// It puts numbers behind two of the paper's qualitative arguments: the §6
// claim that SµDCs act as data integrators (absorbing per-satellite
// generation variation that would force worst-case design on homogeneous
// constellations), and the §9 latency/energy trade — batching harder is
// more energy-efficient but holds frames longer, which only
// latency-insensitive applications can accept.
package sched

import (
	"fmt"
	"math"
	"math/rand"

	"spacedc/internal/obs"
)

// Processor abstracts the compute device: the time and energy to run one
// batch. DeviceProcessor adapts a gpusim model; tests use synthetic ones.
type Processor interface {
	// Process returns the wall-clock seconds and energy in joules to
	// process a batch of `frames` frames totaling `pixels` pixels.
	Process(frames int, pixels float64) (seconds, joules float64)
}

// Config describes one simulation run.
type Config struct {
	// Satellites is the number of EO satellites feeding the SµDC.
	Satellites int
	// FramePeriodSec is the ground-track frame period (paper: 1.5 s).
	FramePeriodSec float64
	// PixelsPerFrame is the size of one frame at the operating
	// resolution.
	PixelsPerFrame float64
	// KeepProb returns the probability that a satellite's frame survives
	// early discard at simulation time t. Nil keeps everything. This is
	// where per-satellite variation (ocean vs land, day vs night) enters.
	KeepProb func(sat int, t float64) float64
	// QueueLimit caps the on-board frame queue; arrivals beyond it are
	// dropped (and counted). Zero means 4× Satellites.
	QueueLimit int
	// TargetBatch is the batch size the scheduler prefers to form.
	TargetBatch int
	// MaxBatch caps a single batch. Zero means TargetBatch.
	MaxBatch int
	// MaxWaitSec bounds how long the oldest queued frame may wait before
	// the scheduler launches a partial batch. Zero means no bound.
	MaxWaitSec float64
	// DurationSec is the simulated span.
	DurationSec float64
	// Seed drives all randomness in the run: early-discard draws and fault
	// sampling share one rand.Rand seeded here, so a (Config, Processor)
	// pair is fully deterministic.
	Seed int64
	// Faults enables radiation-driven fault injection (nil = fault-free;
	// a nil Faults run is bit-for-bit identical to the pre-fault model).
	Faults *FaultConfig
	// Thermal lets a thermal model derate the device (nil = never).
	Thermal ThermalHook
	// Obs, when non-nil, receives per-batch spans, queue-wait and
	// service-time histograms, and upset/recovery counters (see
	// internal/obs). Observability never feeds back into the simulation;
	// instrumented runs are bit-identical to bare ones.
	Obs *obs.Registry
}

// FaultConfig injects radiation-driven upsets into the pipeline: a
// time-varying hazard rate (SEUs per second of busy compute), a split
// between silent batch corruption and hard device resets, and a recovery
// policy that shapes how an upset batch is re-executed.
type FaultConfig struct {
	// Hazard returns the instantaneous upset rate in events per second of
	// busy compute at simulation time t. Nil or non-positive = no upsets.
	Hazard func(t float64) float64
	// ResetFraction is the fraction of upsets that hard-reset the device
	// (aborting the pass and costing ResetMTTRSec of downtime) instead of
	// silently corrupting the batch in flight.
	ResetFraction float64
	// ResetMTTRSec is the reboot time after a device-reset upset.
	ResetMTTRSec float64
	// Recovery is the mitigation policy applied to upset batches. Nil
	// means no mitigation: an upset batch completes but its results are
	// corrupt, and a reset aborts it outright.
	Recovery RecoveryPolicy
	// PauseActive reports whether batch launches are administratively
	// paused at time t (the §9 SAA compute-pause strategy). Nil = never.
	PauseActive func(t float64) bool
}

// validate checks the fault configuration.
func (f *FaultConfig) validate() error {
	if f.ResetFraction < 0 || f.ResetFraction > 1 {
		return fmt.Errorf("sched: reset fraction %v outside [0,1]", f.ResetFraction)
	}
	if f.ResetMTTRSec < 0 || math.IsNaN(f.ResetMTTRSec) || math.IsInf(f.ResetMTTRSec, 0) {
		return fmt.Errorf("sched: invalid reset MTTR %v", f.ResetMTTRSec)
	}
	return nil
}

// ThermalHook lets a thermal model throttle the device. The simulator
// consults Factor at each batch launch and stretches the service time by
// 1/factor (power capping: same energy, longer execution), then reports
// the dissipated heat back through Dissipated.
type ThermalHook interface {
	// Factor returns the device capacity factor in (0, 1] at time t.
	Factor(t float64) float64
	// Dissipated reports joules of heat released over [start, start+secs].
	Dissipated(start, secs, joules float64)
}

// BatchExec hands a RecoveryPolicy everything it needs to execute one
// batch under upsets: the fault-free operating point, the hazard model,
// and the simulation's single injected random source.
type BatchExec struct {
	Start         float64 // launch time
	Frames        int
	BaseSecs      float64 // fault-free service time of one full pass
	BaseJoules    float64
	Hazard        func(t float64) float64
	ResetFraction float64
	ResetMTTRSec  float64
	Rng           *rand.Rand
	// Obs is the simulation's observability registry (nil when disabled),
	// letting recovery policies count their retry/checkpoint/vote outcomes
	// without threading extra state. Policies must only record through it,
	// never read from it.
	Obs *obs.Registry
}

// HazardAt returns the sanitized upset rate at time t.
func (e BatchExec) HazardAt(t float64) float64 {
	if e.Hazard == nil {
		return 0
	}
	r := e.Hazard(t)
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	return r
}

// PassResult is one unprotected execution pass over (part of) a batch.
type PassResult struct {
	Secs    float64 // wall time of the pass, including any reset downtime
	Joules  float64
	Upset   bool    // an SEU struck during the pass
	Reset   bool    // the upset hard-reset the device
	DownSec float64 // reboot share of Secs
}

// RunPass executes a compute slice of secs seconds / joules energy
// starting at start, sampling at most one upset from the hazard rate. No
// randomness is consumed when the hazard is zero, so zero-hazard runs
// reproduce fault-free runs bit for bit. A silent upset lets the pass run
// to completion (the device does not know); a reset truncates it at the
// upset and adds ResetMTTRSec of downtime.
func (e BatchExec) RunPass(start, secs, joules float64) PassResult {
	rate := e.HazardAt(start)
	if rate <= 0 || secs <= 0 {
		return PassResult{Secs: secs, Joules: joules}
	}
	u := e.Rng.ExpFloat64() / rate
	if u >= secs {
		return PassResult{Secs: secs, Joules: joules}
	}
	if e.Rng.Float64() < e.ResetFraction {
		return PassResult{
			Secs:    u + e.ResetMTTRSec,
			Joules:  joules * u / secs,
			Upset:   true,
			Reset:   true,
			DownSec: e.ResetMTTRSec,
		}
	}
	return PassResult{Secs: secs, Joules: joules, Upset: true}
}

// RunOnce is RunPass over the whole batch.
func (e BatchExec) RunOnce(start float64) PassResult {
	return e.RunPass(start, e.BaseSecs, e.BaseJoules)
}

// BatchOutcome is a policy's verdict on one batch execution.
type BatchOutcome struct {
	Secs    float64 // total device occupancy: compute + waits + downtime
	Joules  float64
	Good    bool // results delivered uncorrupted
	Upsets  int
	Resets  int
	DownSec float64
}

// Accumulate folds one pass into the outcome tally.
func (o *BatchOutcome) Accumulate(p PassResult) {
	o.Secs += p.Secs
	o.Joules += p.Joules
	o.DownSec += p.DownSec
	if p.Upset {
		o.Upsets++
	}
	if p.Reset {
		o.Resets++
	}
}

// RecoveryPolicy shapes how a batch executes under upsets. Policies must
// draw randomness only from the BatchExec's Rng (determinism) and must
// return the fault-free operating point untouched when the hazard at
// launch is zero, so that disabled faults leave the pipeline bit-for-bit
// identical to the baseline. Implementations beyond the built-in
// no-mitigation baseline live in internal/resilience.
type RecoveryPolicy interface {
	Name() string
	Execute(e BatchExec) BatchOutcome
}

// noMitigation is the built-in default policy: one pass, corrupt on any
// upset.
type noMitigation struct{}

func (noMitigation) Name() string { return "none" }

func (noMitigation) Execute(e BatchExec) BatchOutcome {
	var o BatchOutcome
	p := e.RunOnce(e.Start)
	o.Accumulate(p)
	o.Good = !p.Upset
	return o
}

// NoMitigation returns the policy that runs every batch unprotected.
func NoMitigation() RecoveryPolicy { return noMitigation{} }

// Validate checks the config.
func (c Config) Validate() error {
	if c.Satellites <= 0 {
		return fmt.Errorf("sched: non-positive satellite count %d", c.Satellites)
	}
	if c.FramePeriodSec <= 0 || c.PixelsPerFrame <= 0 || c.DurationSec <= 0 {
		return fmt.Errorf("sched: non-positive period/pixels/duration")
	}
	if c.TargetBatch <= 0 {
		return fmt.Errorf("sched: non-positive target batch %d", c.TargetBatch)
	}
	if c.MaxBatch != 0 && c.MaxBatch < c.TargetBatch {
		return fmt.Errorf("sched: max batch %d below target %d", c.MaxBatch, c.TargetBatch)
	}
	if c.MaxWaitSec < 0 {
		return fmt.Errorf("sched: negative max wait")
	}
	if c.Faults != nil {
		if err := c.Faults.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes one run.
type Stats struct {
	Arrived   int
	Processed int
	Dropped   int
	LeftOver  int // still queued or in flight at the end

	MeanLatencySec float64 // arrival → batch completion, processed frames
	P95LatencySec  float64
	MaxLatencySec  float64

	BusySec     float64 // device busy time
	Utilization float64 // BusySec / duration
	EnergyJ     float64
	MeanBatch   float64 // average formed batch size
	Batches     int

	// Fault-injection accounting (all zero on fault-free runs).
	Corrupted    int     // frames whose results upsets corrupted beyond recovery
	Upsets       int     // SEUs sampled during busy compute
	DeviceResets int     // upsets that hard-reset the device
	DowntimeSec  float64 // reboot time after device resets
	ThrottleSec  float64 // extra service time from thermal derating
}

// EnergyPerFrameJ returns average energy per processed frame.
func (s Stats) EnergyPerFrameJ() float64 {
	if s.Processed == 0 {
		return 0
	}
	return s.EnergyJ / float64(s.Processed)
}

// minThrottleFactor floors thermal derating so a degenerate hook cannot
// stall the simulation with near-infinite service times.
const minThrottleFactor = 0.01

// event kinds for the simulation heap.
const (
	evArrival = iota
	evServiceDone
)

type event struct {
	time float64
	kind int
	sat  int // arrival source
}

// eventHeap is a typed binary min-heap on event.time. It specializes
// container/heap's sift algorithms verbatim so the pop order — including
// ties — is identical to the interface-based implementation it replaced,
// while avoiding the per-push interface boxing that made the event loop
// allocate O(frames) over a run.
type eventHeap []event

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() event {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	h.down(0, n)
	e := old[n]
	*h = old[:n]
	return e
}

func (h eventHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || h[i].time <= h[j].time {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h eventHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h[j2].time < h[j1].time {
			j = j2 // = 2*i + 2  // right child
		}
		if h[i].time <= h[j].time {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// Simulate runs the discrete-event simulation and returns its statistics.
func Simulate(cfg Config, proc Processor) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	if proc == nil {
		return Stats{}, fmt.Errorf("sched: nil processor")
	}
	maxBatch := cfg.MaxBatch
	if maxBatch == 0 {
		maxBatch = cfg.TargetBatch
	}
	queueLimit := cfg.QueueLimit
	if queueLimit == 0 {
		queueLimit = 4 * cfg.Satellites
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Handles resolve once; with Obs == nil each instrumented site below
	// is a single nil-check.
	reg := cfg.Obs
	runSpan := reg.StartSpan("sched.simulate")
	var (
		hBatchSize  = reg.Histogram("sched.batch_frames", obs.CountBuckets)
		hServiceSec = reg.Histogram("sched.batch_service_secs", obs.TimeBuckets)
		hWaitSec    = reg.Histogram("sched.batch_queue_wait_secs", obs.TimeBuckets)
	)
	throttled := 0

	// Latency accumulator: a fixed-bucket histogram instead of a
	// per-frame slice keeps month-scale missions memory-flat (O(buckets),
	// not O(frames)). Mean and max stay exact from the histogram's running
	// sum/max; P95 is interpolated from the buckets, within one bucket
	// width (~15%) of the old sorted-sample value. The accumulator is
	// run-local — using the registry's copy directly would let a registry
	// shared across sequential runs leak one run's samples into the next
	// run's Stats — and merges into "sched.frame_latency_secs" once at the
	// end, so -metrics runs still expose the full latency distribution.
	lat := obs.NewHistogram(obs.LatencyBuckets)

	var h eventHeap
	// Stagger satellite frame phases uniformly across the period, as a
	// formation flying over adjacent ground frames would be.
	for s := 0; s < cfg.Satellites; s++ {
		phase := cfg.FramePeriodSec * float64(s) / float64(cfg.Satellites)
		h.push(event{time: phase, kind: evArrival, sat: s})
	}

	var (
		stats    Stats
		queue    []float64 // arrival times of queued frames (FIFO)
		busy     bool
		batchSum int
	)

	// startBatch launches processing of up to maxBatch queued frames.
	startBatch := func(now float64) {
		n := len(queue)
		if n > maxBatch {
			n = maxBatch
		}
		if n == 0 {
			return
		}
		secs, joules := proc.Process(n, float64(n)*cfg.PixelsPerFrame)
		if secs < 0 || math.IsNaN(secs) || math.IsInf(secs, 0) {
			secs = 0
		}
		// Thermal derating stretches the service time before fault
		// sampling: a throttled device holds the batch longer, and is
		// exposed to upsets for longer.
		if cfg.Thermal != nil {
			f := cfg.Thermal.Factor(now)
			if f < minThrottleFactor {
				f = minThrottleFactor
			}
			if f < 1 {
				stretched := secs / f
				stats.ThrottleSec += stretched - secs
				secs = stretched
				throttled++
			}
		}
		good := true
		var down float64
		if cfg.Faults != nil {
			pol := cfg.Faults.Recovery
			if pol == nil {
				pol = noMitigation{}
			}
			out := pol.Execute(BatchExec{
				Start:         now,
				Frames:        n,
				BaseSecs:      secs,
				BaseJoules:    joules,
				Hazard:        cfg.Faults.Hazard,
				ResetFraction: cfg.Faults.ResetFraction,
				ResetMTTRSec:  cfg.Faults.ResetMTTRSec,
				Rng:           rng,
				Obs:           reg,
			})
			secs, joules = out.Secs, out.Joules
			good = out.Good
			down = out.DownSec
			stats.Upsets += out.Upsets
			stats.DeviceResets += out.Resets
			stats.DowntimeSec += out.DownSec
			if secs < 0 || math.IsNaN(secs) || math.IsInf(secs, 0) {
				secs = 0
			}
		}
		done := now + secs
		if good {
			for _, arr := range queue[:n] {
				l := done - arr
				lat.Observe(l)
				if latencyTap != nil {
					latencyTap(l)
				}
			}
			stats.Processed += n
		} else {
			stats.Corrupted += n
		}
		if reg != nil {
			reg.SetTime(now)
			hBatchSize.Observe(float64(n))
			hServiceSec.Observe(secs)
			// Per-batch mean queue wait: one observation per launch keeps
			// the instrumented hot loop inside the <3% overhead budget.
			var wait float64
			for _, arr := range queue[:n] {
				wait += now - arr
			}
			hWaitSec.Observe(wait / float64(n))
			reg.Emit("sched.batch", "span", secs)
		}
		// Compact in place rather than re-slicing forward: advancing the
		// base pointer burned one small backing-array allocation per few
		// batches; reusing the array keeps the run's allocations flat.
		rest := copy(queue, queue[n:])
		queue = queue[:rest]
		stats.EnergyJ += joules
		stats.BusySec += secs - down
		stats.Batches++
		batchSum += n
		busy = true
		h.push(event{time: done, kind: evServiceDone})
		if cfg.Thermal != nil {
			cfg.Thermal.Dissipated(now, secs, joules)
		}
	}

	// shouldLaunch applies the batching policy (and the compute pause).
	shouldLaunch := func(now float64) bool {
		if len(queue) == 0 {
			return false
		}
		if cfg.Faults != nil && cfg.Faults.PauseActive != nil && cfg.Faults.PauseActive(now) {
			return false
		}
		if len(queue) >= cfg.TargetBatch {
			return true
		}
		return cfg.MaxWaitSec > 0 && now-queue[0] >= cfg.MaxWaitSec
	}

	for len(h) > 0 {
		ev := h.pop()
		if ev.time > cfg.DurationSec {
			break
		}
		now := ev.time
		switch ev.kind {
		case evArrival:
			// Schedule this satellite's next frame.
			h.push(event{time: now + cfg.FramePeriodSec, kind: evArrival, sat: ev.sat})
			keep := 1.0
			if cfg.KeepProb != nil {
				keep = cfg.KeepProb(ev.sat, now)
			}
			if rng.Float64() >= keep {
				break // early-discarded on the EO satellite
			}
			stats.Arrived++
			if len(queue) >= queueLimit {
				stats.Dropped++
				break
			}
			queue = append(queue, now)
		case evServiceDone:
			busy = false
		}
		if !busy && shouldLaunch(now) {
			startBatch(now)
		}
	}

	stats.LeftOver = stats.Arrived - stats.Processed - stats.Corrupted - stats.Dropped
	stats.Utilization = stats.BusySec / cfg.DurationSec
	if stats.Utilization > 1 {
		stats.Utilization = 1
	}
	if stats.Batches > 0 {
		stats.MeanBatch = float64(batchSum) / float64(stats.Batches)
	}
	if lat.Count() > 0 {
		stats.MeanLatencySec = lat.Mean()
		stats.P95LatencySec = lat.Quantile(0.95)
		stats.MaxLatencySec = lat.Max()
	}
	if reg != nil {
		// Counters flush once from the already-kept Stats fields rather
		// than paying an atomic op inside the event loop: snapshots taken
		// after the run are identical, and the hot path stays within the
		// <3% instrumented-overhead budget.
		reg.SetTime(cfg.DurationSec)
		reg.Histogram("sched.frame_latency_secs", obs.LatencyBuckets).Merge(lat)
		reg.Counter("sched.arrived").Add(stats.Arrived)
		reg.Counter("sched.dropped").Add(stats.Dropped)
		reg.Counter("sched.batches").Add(stats.Batches)
		reg.Counter("sched.upsets").Add(stats.Upsets)
		reg.Counter("sched.device_resets").Add(stats.DeviceResets)
		reg.Counter("sched.corrupted_frames").Add(stats.Corrupted)
		reg.Counter("sched.processed_frames").Add(stats.Processed)
		reg.Counter("sched.throttled_batches").Add(throttled)
		reg.Gauge("sched.utilization").Set(stats.Utilization)
		reg.Gauge("sched.mean_batch").Set(stats.MeanBatch)
		reg.Gauge("sched.energy_j").Set(stats.EnergyJ)
	}
	runSpan.End()
	return stats, nil
}

// latencyTap, when set by a test, receives every processed frame's exact
// latency. It exists so accuracy tests can compare the bucket-derived
// P95LatencySec against the exact sorted-sample percentile the retired
// per-frame slice used to yield; production code never sets it.
var latencyTap func(latencySec float64)
