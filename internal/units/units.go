// Package units provides typed physical quantities used throughout the
// space-microdatacenter models: data rates, data sizes, power, energy,
// lengths, angles, frequencies, and money.
//
// Each quantity is a float64 in a fixed SI base unit (bits, bits/s, watts,
// joules, meters, radians, hertz, USD). The types exist to make interfaces
// self-documenting and to prevent unit mix-ups (e.g. passing a bandwidth
// where a data rate is expected); arithmetic stays ordinary float math.
package units

import (
	"fmt"
	"math"
)

// DataSize is an amount of data in bits.
type DataSize float64

// Data size units.
const (
	Bit      DataSize = 1
	Byte     DataSize = 8
	Kilobit  DataSize = 1e3
	Megabit  DataSize = 1e6
	Gigabit  DataSize = 1e9
	Terabit  DataSize = 1e12
	Petabit  DataSize = 1e15
	Kilobyte DataSize = 8e3
	Megabyte DataSize = 8e6
	Gigabyte DataSize = 8e9
	Terabyte DataSize = 8e12
)

// Bits returns the size in bits.
func (s DataSize) Bits() float64 { return float64(s) }

// Bytes returns the size in bytes.
func (s DataSize) Bytes() float64 { return float64(s) / 8 }

// Over returns the constant data rate that transmits s in duration sec.
func (s DataSize) Over(sec float64) DataRate {
	if sec == 0 {
		return DataRate(math.Inf(1))
	}
	return DataRate(float64(s) / sec)
}

// String formats the size with a binary-free SI prefix, e.g. "199.1 Mbit".
func (s DataSize) String() string {
	return siFormat(float64(s), "bit")
}

// DataRate is a throughput in bits per second.
type DataRate float64

// Data rate units.
const (
	BitPerSecond  DataRate = 1
	Kbps          DataRate = 1e3
	Mbps          DataRate = 1e6
	Gbps          DataRate = 1e9
	Tbps          DataRate = 1e12
	Pbps          DataRate = 1e15
	BytePerSecond DataRate = 8
)

// BitsPerSecond returns the rate in bit/s.
func (r DataRate) BitsPerSecond() float64 { return float64(r) }

// Transmit returns the time in seconds needed to move size at this rate.
func (r DataRate) Transmit(size DataSize) float64 {
	if r == 0 {
		return math.Inf(1)
	}
	return float64(size) / float64(r)
}

// Volume returns the amount of data moved at this rate over sec seconds.
func (r DataRate) Volume(sec float64) DataSize {
	return DataSize(float64(r) * sec)
}

// String formats the rate with an SI prefix, e.g. "220.0 Mbit/s".
func (r DataRate) String() string {
	return siFormat(float64(r), "bit/s")
}

// Power is in watts.
type Power float64

// Power units.
const (
	Watt      Power = 1
	Milliwatt Power = 1e-3
	Kilowatt  Power = 1e3
	Megawatt  Power = 1e6
)

// Watts returns the power in watts.
func (p Power) Watts() float64 { return float64(p) }

// ForDuration returns the energy consumed by running at p for sec seconds.
func (p Power) ForDuration(sec float64) Energy {
	return Energy(float64(p) * sec)
}

// String formats the power with an SI prefix, e.g. "4.0 kW".
func (p Power) String() string { return siFormat(float64(p), "W") }

// Energy is in joules.
type Energy float64

// Energy units.
const (
	Joule        Energy = 1
	Kilojoule    Energy = 1e3
	WattHour     Energy = 3600
	KilowattHour Energy = 3.6e6
)

// Joules returns the energy in joules.
func (e Energy) Joules() float64 { return float64(e) }

// String formats the energy with an SI prefix, e.g. "3.6 MJ".
func (e Energy) String() string { return siFormat(float64(e), "J") }

// Length is in meters.
type Length float64

// Length units.
const (
	Meter      Length = 1
	Centimeter Length = 0.01
	Kilometer  Length = 1e3
)

// Meters returns the length in meters.
func (l Length) Meters() float64 { return float64(l) }

// Kilometers returns the length in kilometers.
func (l Length) Kilometers() float64 { return float64(l) / 1e3 }

// String formats lengths ≥ 1 km in km, sub-meter lengths in cm, else m.
func (l Length) String() string {
	v := float64(l)
	switch {
	case math.Abs(v) >= 1e3:
		return fmt.Sprintf("%.4g km", v/1e3)
	case math.Abs(v) < 1 && v != 0:
		return fmt.Sprintf("%.4g cm", v*100)
	default:
		return fmt.Sprintf("%.4g m", v)
	}
}

// Area is in square meters.
type Area float64

// Area units.
const (
	SquareMeter     Area = 1
	SquareKilometer Area = 1e6
)

// SquareMeters returns the area in m².
func (a Area) SquareMeters() float64 { return float64(a) }

// Angle is in radians.
type Angle float64

// Angle units.
const (
	Radian Angle = 1
	Degree Angle = math.Pi / 180
)

// Radians returns the angle in radians.
func (a Angle) Radians() float64 { return float64(a) }

// Degrees returns the angle in degrees.
func (a Angle) Degrees() float64 { return float64(a) * 180 / math.Pi }

// Normalize returns the angle wrapped into [0, 2π).
func (a Angle) Normalize() Angle {
	const twoPi = 2 * math.Pi
	v := math.Mod(float64(a), twoPi)
	if v < 0 {
		v += twoPi
	}
	return Angle(v)
}

// String formats the angle in degrees.
func (a Angle) String() string { return fmt.Sprintf("%.4g°", a.Degrees()) }

// Frequency is in hertz.
type Frequency float64

// Frequency units.
const (
	Hertz     Frequency = 1
	Kilohertz Frequency = 1e3
	Megahertz Frequency = 1e6
	Gigahertz Frequency = 1e9
	Terahertz Frequency = 1e12
)

// Hz returns the frequency in hertz.
func (f Frequency) Hz() float64 { return float64(f) }

// Wavelength returns the free-space wavelength for this frequency.
func (f Frequency) Wavelength() Length {
	const c = 299792458.0 // speed of light, m/s
	if f == 0 {
		return Length(math.Inf(1))
	}
	return Length(c / float64(f))
}

// String formats the frequency with an SI prefix, e.g. "8.2 GHz".
func (f Frequency) String() string { return siFormat(float64(f), "Hz") }

// Money is in US dollars.
type Money float64

// Money units.
const (
	Dollar  Money = 1
	Million Money = 1e6
	Billion Money = 1e9
)

// Dollars returns the amount in USD.
func (m Money) Dollars() float64 { return float64(m) }

// String formats money, e.g. "$3.2M".
func (m Money) String() string {
	v := float64(m)
	abs := math.Abs(v)
	switch {
	case abs >= 1e9:
		return fmt.Sprintf("$%.3gB", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("$%.3gM", v/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("$%.3gk", v/1e3)
	default:
		return fmt.Sprintf("$%.2f", v)
	}
}

// siPrefixes maps power-of-1000 exponents to SI prefixes.
var siPrefixes = map[int]string{
	-4: "p", -3: "n", -2: "µ", -1: "m",
	0: "", 1: "k", 2: "M", 3: "G", 4: "T", 5: "P", 6: "E",
}

// siFormat renders v with an SI prefix and the given unit suffix.
func siFormat(v float64, unit string) string {
	if v == 0 {
		return "0 " + unit
	}
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fmt.Sprintf("%g %s", v, unit)
	}
	exp := int(math.Floor(math.Log10(math.Abs(v)) / 3))
	if exp < -4 {
		exp = -4
	}
	if exp > 6 {
		exp = 6
	}
	scaled := v / math.Pow(1000, float64(exp))
	return fmt.Sprintf("%.4g %s%s", scaled, siPrefixes[exp], unit)
}
