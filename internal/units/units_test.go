package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestDataSizeConversions(t *testing.T) {
	if got := (2 * Megabyte).Bits(); got != 16e6 {
		t.Errorf("2 MB = %v bits, want 16e6", got)
	}
	if got := (16 * Megabit).Bytes(); got != 2e6 {
		t.Errorf("16 Mbit = %v bytes, want 2e6", got)
	}
}

func TestDataSizeOver(t *testing.T) {
	r := (300 * Megabit).Over(1.5)
	if got := r.BitsPerSecond(); got != 200e6 {
		t.Errorf("300 Mbit over 1.5 s = %v bit/s, want 200e6", got)
	}
	if !math.IsInf(float64((1 * Gigabit).Over(0)), 1) {
		t.Error("size over zero seconds should be +Inf rate")
	}
}

func TestDataRateTransmitRoundTrip(t *testing.T) {
	f := func(bits, rate float64) bool {
		bits = math.Abs(bits)
		rate = math.Abs(rate) + 1 // avoid zero rate
		size := DataSize(bits)
		r := DataRate(rate)
		sec := r.Transmit(size)
		back := r.Volume(sec)
		return almostEqual(float64(back), bits, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataRateTransmitZero(t *testing.T) {
	if !math.IsInf(DataRate(0).Transmit(Gigabit), 1) {
		t.Error("zero rate should take infinite time")
	}
}

func TestPowerEnergy(t *testing.T) {
	e := (2 * Kilowatt).ForDuration(3600)
	if got := e.Joules(); got != 7.2e6 {
		t.Errorf("2 kW for 1 h = %v J, want 7.2e6", got)
	}
	if got := float64(2 * KilowattHour); got != 7.2e6 {
		t.Errorf("2 kWh = %v J, want 7.2e6", got)
	}
}

func TestAngleConversions(t *testing.T) {
	if got := (90 * Degree).Radians(); !almostEqual(got, math.Pi/2, 1e-15) {
		t.Errorf("90° = %v rad, want π/2", got)
	}
	if got := Angle(math.Pi).Degrees(); !almostEqual(got, 180, 1e-15) {
		t.Errorf("π rad = %v°, want 180", got)
	}
}

func TestAngleNormalize(t *testing.T) {
	cases := []struct {
		in, want float64 // degrees
	}{
		{0, 0}, {360, 0}, {-90, 270}, {450, 90}, {720, 0}, {-720, 0},
	}
	for _, c := range cases {
		got := (Angle(c.in) * Degree).Normalize().Degrees()
		if !almostEqual(got, c.want, 1e-9) && !(c.want == 0 && math.Abs(got) < 1e-9) {
			t.Errorf("Normalize(%v°) = %v°, want %v°", c.in, got, c.want)
		}
	}
}

func TestAngleNormalizeRange(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		n := Angle(v).Normalize().Radians()
		return n >= 0 && n < 2*math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrequencyWavelength(t *testing.T) {
	// X-band 8 GHz → ~3.75 cm.
	wl := (8 * Gigahertz).Wavelength()
	if !almostEqual(wl.Meters(), 0.0374740, 1e-4) {
		t.Errorf("8 GHz wavelength = %v m, want ≈0.03747", wl.Meters())
	}
	if !math.IsInf(Frequency(0).Wavelength().Meters(), 1) {
		t.Error("zero frequency should have infinite wavelength")
	}
}

func TestLengthString(t *testing.T) {
	cases := []struct {
		in   Length
		want string
	}{
		{550 * Kilometer, "550 km"},
		{30 * Centimeter, "30 cm"},
		{3 * Meter, "3 m"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%v m).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestSIFormat(t *testing.T) {
	cases := []struct {
		rate DataRate
		want string
	}{
		{220 * Mbps, "220 Mbit/s"},
		{1 * Gbps, "1 Gbit/s"},
		{0, "0 bit/s"},
		{2.5 * Tbps, "2.5 Tbit/s"},
	}
	for _, c := range cases {
		if got := c.rate.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.rate), got, c.want)
		}
	}
}

func TestMoneyString(t *testing.T) {
	cases := []struct {
		in   Money
		want string
	}{
		{3, "$3.00"},
		{4500, "$4.5k"},
		{3.2 * Million, "$3.2M"},
		{1.5 * Billion, "$1.5B"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Money(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestPowerString(t *testing.T) {
	if got := (4 * Kilowatt).String(); got != "4 kW" {
		t.Errorf("4 kW formats as %q", got)
	}
}

func TestSIFormatExtremes(t *testing.T) {
	// Values beyond the prefix table must not panic and must stay finite.
	huge := DataRate(1e30)
	if s := huge.String(); s == "" {
		t.Error("huge rate formatted empty")
	}
	tiny := DataRate(1e-30)
	if s := tiny.String(); s == "" {
		t.Error("tiny rate formatted empty")
	}
	inf := DataRate(math.Inf(1))
	if s := inf.String(); s == "" {
		t.Error("inf rate formatted empty")
	}
}
