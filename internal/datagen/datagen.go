// Package datagen models how much data Earth-observation missions generate
// and what it takes to move it: per-satellite frame rates, constellation
// aggregate rates, global-coverage data rates at arbitrary spatial/temporal
// resolution (Fig 4a), equivalent Dove-channel counts (Fig 4b), and the
// effective compression ratio required to fit a given downlink (Fig 6).
package datagen

import (
	"fmt"
	"math"

	"spacedc/internal/units"
)

// FrameSpec describes the imaging product of one EO satellite. The paper's
// baseline (after [54]): each ground frame at 3 m GSD is a single 4K RGB
// image generated every 1.5 s; finer resolutions keep the ground frame area
// constant and increase the pixel count quadratically.
type FrameSpec struct {
	BaseWidthPx  int     // pixels across at base resolution
	BaseHeightPx int     // pixels down at base resolution
	BitsPerPixel int     // e.g. 24 for RGB
	BaseResM     float64 // ground sample distance of the base frame, meters
	PeriodSec    float64 // seconds between frames ("ground track frame period")
}

// Default4K is the paper's baseline frame: one 4K RGB image at 3 m every
// 1.5 s. The paper's Table 8 counts imply a per-satellite rate of
// ≈212 Mbit/s, which pins the frame down to DCI 4K (4096×2160) at 12 bits
// per channel — standard EO sensor radiometry. With this spec the model
// reproduces Table 8's published cells (9, 18, 1, 10, 2 … satellites)
// exactly or within the paper's own rounding.
var Default4K = FrameSpec{
	BaseWidthPx:  4096,
	BaseHeightPx: 2160,
	BitsPerPixel: 36,
	BaseResM:     3,
	PeriodSec:    1.5,
}

// Validate checks the spec for usability.
func (f FrameSpec) Validate() error {
	if f.BaseWidthPx <= 0 || f.BaseHeightPx <= 0 {
		return fmt.Errorf("datagen: non-positive frame dimensions %dx%d", f.BaseWidthPx, f.BaseHeightPx)
	}
	if f.BitsPerPixel <= 0 {
		return fmt.Errorf("datagen: non-positive bits/pixel %d", f.BitsPerPixel)
	}
	if f.BaseResM <= 0 || f.PeriodSec <= 0 {
		return fmt.Errorf("datagen: non-positive resolution %v or period %v", f.BaseResM, f.PeriodSec)
	}
	return nil
}

// PixelsPerFrame returns the pixel count of one frame at resolution resM,
// holding the imaged ground area constant.
func (f FrameSpec) PixelsPerFrame(resM float64) float64 {
	scale := f.BaseResM / resM
	return float64(f.BaseWidthPx) * float64(f.BaseHeightPx) * scale * scale
}

// FrameSize returns the raw size of one frame at resolution resM.
func (f FrameSpec) FrameSize(resM float64) units.DataSize {
	return units.DataSize(f.PixelsPerFrame(resM) * float64(f.BitsPerPixel))
}

// PixelRate returns pixels per second produced by one satellite at
// resolution resM after earlyDiscard (fraction of frames dropped in [0,1]).
func (f FrameSpec) PixelRate(resM, earlyDiscard float64) float64 {
	return f.PixelsPerFrame(resM) / f.PeriodSec * (1 - earlyDiscard)
}

// DataRate returns the bit rate produced by one satellite at resolution
// resM after earlyDiscard.
func (f FrameSpec) DataRate(resM, earlyDiscard float64) units.DataRate {
	return units.DataRate(f.PixelRate(resM, earlyDiscard) * float64(f.BitsPerPixel))
}

// Mission couples a frame spec with a constellation size.
type Mission struct {
	Frame      FrameSpec
	Satellites int
}

// ConstellationRate returns the aggregate bit rate of all satellites.
func (m Mission) ConstellationRate(resM, earlyDiscard float64) units.DataRate {
	return units.DataRate(float64(m.Frame.DataRate(resM, earlyDiscard)) * float64(m.Satellites))
}

// ConstellationPixelRate returns the aggregate pixel rate of all satellites.
func (m Mission) ConstellationPixelRate(resM, earlyDiscard float64) float64 {
	return m.Frame.PixelRate(resM, earlyDiscard) * float64(m.Satellites)
}

// EarthSurfaceAreaM2 is the total surface area of Earth.
const EarthSurfaceAreaM2 = 5.10072e14

// GlobalCoverageRate returns the data generation rate needed for full-Earth
// coverage at the given spatial resolution (meters) and temporal resolution
// (seconds between revisits), with bitsPerPixel per sample — the paper's
// Fig 4a model: (surface area / res²) · bpp / temporal.
func GlobalCoverageRate(spatialResM, temporalResSec float64, bitsPerPixel int) units.DataRate {
	if spatialResM <= 0 || temporalResSec <= 0 {
		return units.DataRate(math.Inf(1))
	}
	pixels := EarthSurfaceAreaM2 / (spatialResM * spatialResM)
	return units.DataRate(pixels * float64(bitsPerPixel) / temporalResSec)
}

// DoveChannelRate is the capacity of one Dove-like X-band downlink channel.
const DoveChannelRate = 220 * units.Mbps

// ChannelsNeeded returns the number of concurrent, continuous Dove-like
// channels required to carry rate (Fig 4b). Fractional channels round up.
func ChannelsNeeded(rate units.DataRate) float64 {
	return math.Ceil(float64(rate) / float64(DoveChannelRate))
}

// RequiredECR returns the effective compression ratio needed to squeeze
// full-Earth coverage at (spatialResM, temporalResSec) into a downlink that
// is sufficient for the baseline (3 m, 1 day) product — the Fig 6 model.
func RequiredECR(spatialResM, temporalResSec float64, bitsPerPixel int) float64 {
	baseline := GlobalCoverageRate(3, 86400, bitsPerPixel)
	target := GlobalCoverageRate(spatialResM, temporalResSec, bitsPerPixel)
	return float64(target) / float64(baseline)
}

// StandardResolutions are the spatial resolutions the paper sweeps.
var StandardResolutions = []float64{3, 1, 0.3, 0.1}

// StandardDiscardRates are the early-discard rates the paper sweeps.
var StandardDiscardRates = []float64{0, 0.5, 0.95, 0.99}

// ResolutionLabel formats a resolution in the paper's style (3 m, 30 cm).
func ResolutionLabel(resM float64) string {
	if resM < 1 {
		return fmt.Sprintf("%.0f cm", resM*100)
	}
	return fmt.Sprintf("%.0f m", resM)
}
