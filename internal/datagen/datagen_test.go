package datagen

import (
	"math"
	"testing"
	"testing/quick"

	"spacedc/internal/units"
)

func TestDefault4KFrameRate(t *testing.T) {
	// 4096×2160×36 bit / 1.5 s ≈ 212.3 Mbit/s per satellite at 3 m, 0 ED
	// — the rate the paper's Table 8 counts imply.
	r := Default4K.DataRate(3, 0)
	want := 4096.0 * 2160 * 36 / 1.5
	if math.Abs(float64(r)-want) > 1 {
		t.Errorf("3 m data rate = %v, want %v", float64(r), want)
	}
	// One frame is ≈ 318.5 Mbit.
	if sz := Default4K.FrameSize(3); math.Abs(float64(sz)-318.5e6) > 1e5 {
		t.Errorf("frame size = %v bits, want ≈3.18e8", float64(sz))
	}
}

func TestPixelsScaleQuadratically(t *testing.T) {
	base := Default4K.PixelsPerFrame(3)
	if got := Default4K.PixelsPerFrame(1); math.Abs(got/base-9) > 1e-9 {
		t.Errorf("1 m frame = %v× base pixels, want 9×", got/base)
	}
	if got := Default4K.PixelsPerFrame(0.1); math.Abs(got/base-900) > 1e-9 {
		t.Errorf("10 cm frame = %v× base pixels, want 900×", got/base)
	}
}

func TestEarlyDiscardScalesLinearly(t *testing.T) {
	f := func(edRaw float64) bool {
		ed := math.Abs(math.Mod(edRaw, 1))
		full := Default4K.PixelRate(1, 0)
		got := Default4K.PixelRate(1, ed)
		return math.Abs(got-full*(1-ed)) < 1e-6*full
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstellationRate64Sats(t *testing.T) {
	m := Mission{Frame: Default4K, Satellites: 64}
	r := m.ConstellationRate(3, 0)
	want := 64 * 4096.0 * 2160 * 36 / 1.5
	if math.Abs(float64(r)-want)/want > 1e-12 {
		t.Errorf("constellation rate = %v, want %v", float64(r), want)
	}
	// Pixel rate is consistent with data rate / bpp.
	pr := m.ConstellationPixelRate(3, 0)
	if math.Abs(pr-float64(r)/float64(Default4K.BitsPerPixel))/pr > 1e-12 {
		t.Error("pixel rate inconsistent with data rate")
	}
}

func TestGlobalCoverageRateFig4a(t *testing.T) {
	// At 3 m / 1 day: 5.1e14/9 pixels × 24 bit / 86400 s ≈ 15.7 Gbit/s.
	r := GlobalCoverageRate(3, 86400, 24)
	if math.Abs(float64(r)-15.74e9)/15.74e9 > 0.01 {
		t.Errorf("3 m-1 d global rate = %v, want ≈15.7 Gbit/s", float64(r))
	}
	// At fine spatial resolution alone (10 cm / 30 min): hundreds of
	// Tbit/s — the paper's "tens of Tbit/s" regime and beyond.
	fineSpatial := GlobalCoverageRate(0.1, 1800, 24)
	if fineSpatial < 100*units.Tbps || fineSpatial > 1000*units.Tbps {
		t.Errorf("10 cm-30 min global rate = %v, want hundreds of Tbit/s", fineSpatial)
	}
	// At fine spatial AND temporal resolution (10 cm / 1 min): tens of
	// Pbit/s, the paper's extreme.
	fine := GlobalCoverageRate(0.1, 60, 24)
	if fine < 10*units.Pbps || fine > 100*units.Pbps {
		t.Errorf("10 cm-1 min global rate = %v, want tens of Pbit/s", fine)
	}
	// Degenerate inputs.
	if !math.IsInf(float64(GlobalCoverageRate(0, 60, 24)), 1) {
		t.Error("zero resolution should be infinite rate")
	}
}

func TestChannelsNeededFig4b(t *testing.T) {
	// 15.7 Gbit/s needs ~72 Dove channels.
	n := ChannelsNeeded(GlobalCoverageRate(3, 86400, 24))
	if n < 70 || n > 75 {
		t.Errorf("channels for 3 m-1 d = %v, want ≈72", n)
	}
	// At fine resolution the count explodes past any ground network
	// (Table 2 lists ~160 stations with <100 antennas each): 10 cm /
	// 30 min → millions of channels.
	fine := ChannelsNeeded(GlobalCoverageRate(0.1, 1800, 24))
	if fine < 1e6 {
		t.Errorf("channels for 10 cm-30 min = %v, want > 1e6", fine)
	}
	if got := ChannelsNeeded(0); got != 0 {
		t.Errorf("zero rate needs %v channels", got)
	}
	if got := ChannelsNeeded(units.DataRate(1)); got != 1 {
		t.Errorf("tiny rate should need 1 channel, got %v", got)
	}
}

func TestRequiredECRFig6(t *testing.T) {
	// Baseline maps to itself: ECR = 1.
	if got := RequiredECR(3, 86400, 24); math.Abs(got-1) > 1e-12 {
		t.Errorf("baseline ECR = %v, want 1", got)
	}
	// 1 m / 1 day: 9×.
	if got := RequiredECR(1, 86400, 24); math.Abs(got-9) > 1e-9 {
		t.Errorf("1 m-1 d ECR = %v, want 9", got)
	}
	// 30 cm / 30 min: 100 × 2880/... = (3/0.3)² × (86400/1800) = 100×48 = 4800.
	if got := RequiredECR(0.3, 1800, 24); math.Abs(got-4800) > 1 {
		t.Errorf("30 cm-30 min ECR = %v, want 4800", got)
	}
	// 10 cm / 30 min: 900 × 48 = 43200 — "thousands to hundreds of
	// thousands" per the paper.
	if got := RequiredECR(0.1, 1800, 24); math.Abs(got-43200) > 1 {
		t.Errorf("10 cm-30 min ECR = %v, want 43200", got)
	}
}

func TestRequiredECRBeyondAchievable(t *testing.T) {
	// The paper's best-case combined ECR from compression and early
	// discard is ≈400; every sub-meter sub-hour target must exceed it.
	const bestAchievable = 400.0
	for _, res := range []float64{0.3, 0.1} {
		for _, temporal := range []float64{1800, 3600} {
			if got := RequiredECR(res, temporal, 24); got <= bestAchievable {
				t.Errorf("ECR(%v m, %v s) = %v should exceed achievable %v",
					res, temporal, got, bestAchievable)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Default4K.Validate(); err != nil {
		t.Errorf("default spec invalid: %v", err)
	}
	bad := Default4K
	bad.BitsPerPixel = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bpp accepted")
	}
	bad = Default4K
	bad.BaseWidthPx = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative width accepted")
	}
	bad = Default4K
	bad.PeriodSec = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero period accepted")
	}
}

func TestResolutionLabel(t *testing.T) {
	cases := map[float64]string{3: "3 m", 1: "1 m", 0.3: "30 cm", 0.1: "10 cm"}
	for res, want := range cases {
		if got := ResolutionLabel(res); got != want {
			t.Errorf("label(%v) = %q, want %q", res, got, want)
		}
	}
}

func TestStandardSweeps(t *testing.T) {
	if len(StandardResolutions) != 4 || len(StandardDiscardRates) != 4 {
		t.Error("paper sweeps 4 resolutions × 4 discard rates")
	}
	for i := 1; i < len(StandardResolutions); i++ {
		if StandardResolutions[i] >= StandardResolutions[i-1] {
			t.Error("resolutions should be finest-last")
		}
	}
}
