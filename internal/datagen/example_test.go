package datagen_test

import (
	"fmt"

	"spacedc/internal/datagen"
)

// Example shows the data-deluge arithmetic at the heart of the study: one
// satellite's stream, the constellation aggregate, and the compression
// ratio a fine-resolution target would need.
func Example() {
	frame := datagen.Default4K
	fmt.Printf("per-satellite at 3 m: %v\n", frame.DataRate(3, 0))

	mission := datagen.Mission{Frame: frame, Satellites: 64}
	fmt.Printf("64-sat constellation at 30 cm: %v\n", mission.ConstellationRate(0.3, 0))

	fmt.Printf("ECR needed for 10 cm / 30 min: %.0f×\n",
		datagen.RequiredECR(0.1, 1800, frame.BitsPerPixel))
	// Output:
	// per-satellite at 3 m: 212.3 Mbit/s
	// 64-sat constellation at 30 cm: 1.359 Tbit/s
	// ECR needed for 10 cm / 30 min: 43200×
}

func ExampleChannelsNeeded() {
	rate := datagen.GlobalCoverageRate(1, 86400, 36)
	fmt.Printf("1 m daily coverage: %v → %.0f Dove channels\n",
		rate, datagen.ChannelsNeeded(rate))
	// Output:
	// 1 m daily coverage: 212.5 Gbit/s → 967 Dove channels
}
