package netsim

import (
	"math"
	"testing"

	"spacedc/internal/isl"
	"spacedc/internal/units"
)

// ringScenario is the baseline test network: a fault-free ring of n EO
// satellites at 100 Mbit/s each feeding one SµDC over 1 Gbit/s ISLs.
func ringScenario(n int) Scenario {
	return Scenario{
		Name:     "test-ring",
		Topology: TopologySpec{Kind: ClusterTopology, Sats: n, Cluster: isl.Ring, Tech: isl.RFKaBand},
		PerSat:   100 * units.Mbps,
		// Short, fine-grained runs keep the suite fast.
		StepSec: 0.1, DurationSec: 60, WarmupSec: 10, Seed: 1,
	}
}

func TestZeroFaultRingDeliversEverything(t *testing.T) {
	r, err := Run(ringScenario(8))
	if err != nil {
		t.Fatal(err)
	}
	if r.DeliveryRatio < 0.99 || r.DeliveryRatio > 1.01 {
		t.Errorf("fault-free delivery ratio = %v, want ≈1", r.DeliveryRatio)
	}
	if r.LinkDrops != 0 || r.NoRouteDrops != 0 || r.Abandoned != 0 || r.Retransmits != 0 {
		t.Errorf("fault-free run lost data: %+v", r)
	}
	if r.LatencySec.Mean <= 0 {
		t.Error("delivered segments should have positive latency")
	}
	if r.DeliveredSegs == 0 {
		t.Fatal("nothing delivered")
	}
	// 8 sats × 100 Mbit/s offered.
	wantRate := 8 * 100e6
	if got := float64(r.DeliveredRate); math.Abs(got-wantRate)/wantRate > 0.05 {
		t.Errorf("delivered rate %v, want ≈%v", r.DeliveredRate, units.DataRate(wantRate))
	}
}

func TestBottleneckUtilizationMatchesFig11Shape(t *testing.T) {
	// Sweeping the population must trace the closed-form bottleneck
	// curve: the SµDC-adjacent link carries ⌈n/K⌉ satellites' traffic.
	prev := 0.0
	for _, n := range []int{4, 8, 12, 16} {
		sc := ringScenario(n)
		r, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		want := AnalyticBottleneckUtil(n, isl.Ring, sc.PerSat, sc.Topology.Tech.Capacity)
		if math.Abs(r.BottleneckUtil-want) > 0.1*want {
			t.Errorf("n=%d: bottleneck util %v, closed form %v", n, r.BottleneckUtil, want)
		}
		if r.BottleneckUtil < prev {
			t.Errorf("n=%d: bottleneck util %v decreased from %v", n, r.BottleneckUtil, prev)
		}
		prev = r.BottleneckUtil
		if r.BottleneckLink == "" {
			t.Error("bottleneck link unnamed")
		}
	}
}

func TestMaxSupportableMatchesTable8(t *testing.T) {
	// The dynamic simulator must agree with the closed-form Table 8 model
	// (and the static flow graph) within 10% for ring and k-list.
	for _, topo := range []isl.Topology{isl.Ring, {K: 4, Split: 1}} {
		sc := ringScenario(topo.K)
		sc.Topology.Cluster = topo
		closed := isl.SupportableEOSats(sc.Topology.Tech.Capacity, sc.PerSat, topo.K)
		got, err := MaxSupportable(sc, closed+4)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(got-closed)) > 0.1*float64(closed) {
			t.Errorf("K=%d: simulated max %d, closed form %d (>10%% apart)", topo.K, got, closed)
		}
		static, err := isl.MaxSupportableBySimulation(topo, sc.PerSat, sc.Topology.Tech.Capacity, closed+4)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(got-static)) > 0.1*float64(static) {
			t.Errorf("K=%d: dynamic max %d, static flow graph %d (>10%% apart)", topo.K, got, static)
		}
	}
}

func TestOverloadedRingShowsLoss(t *testing.T) {
	sc := ringScenario(8)
	sc.PerSat = 300 * units.Mbps // chain load 4×300M = 1.2 Gbit/s > capacity
	sc.Transport.MaxAttempts = 1
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if Supported(r) {
		t.Errorf("overloaded ring reported stable: %+v", r)
	}
	if r.LinkDrops == 0 {
		t.Error("overload should overflow the bottleneck queue")
	}
	if r.BottleneckUtil < 0.95 {
		t.Errorf("overloaded bottleneck util %v, want ≈1", r.BottleneckUtil)
	}
}

func TestSplitClustersDoubleCapacity(t *testing.T) {
	// Fig 12b: splitting the SµDC doubles the supportable population.
	sc := ringScenario(2)
	mono := isl.SupportableEOSats(sc.Topology.Tech.Capacity, sc.PerSat, 2)
	sc.Topology.Cluster = isl.Topology{K: 2, Split: 2}
	got, err := MaxSupportable(sc, 2*mono+4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got-2*mono)) > 0.1*float64(2*mono) {
		t.Errorf("split-2 max %d, want ≈%d", got, 2*mono)
	}
}

func TestGEOStarLatencyIncludesPropagation(t *testing.T) {
	sc := Scenario{
		Name:     "test-geo",
		Topology: TopologySpec{Kind: GEOStarTopology, Sats: 6, Tech: isl.Optical10G},
		PerSat:   100 * units.Mbps,
		StepSec:  0.1, DurationSec: 30, WarmupSec: 5, Seed: 1,
	}
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.DeliveryRatio < 0.99 {
		t.Errorf("GEO star delivery ratio %v, want ≈1", r.DeliveryRatio)
	}
	// LEO→GEO light time is ≈117 ms; every delivery pays it.
	if r.LatencySec.Mean < 0.1 {
		t.Errorf("GEO latency %v s too small to include the slant light-time", r.LatencySec.Mean)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	sc := ringScenario(8)
	sc.Faults = FaultConfig{LinkOutage: 0.05, SatMTBFSec: 300}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeliveredSegs != b.DeliveredSegs || a.LinkDrops != b.LinkDrops ||
		a.Retransmits != b.Retransmits || a.FaultEvents != b.FaultEvents ||
		a.LatencySec != b.LatencySec {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	sc.Seed = 99
	c, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if c.FaultEvents == a.FaultEvents && c.DeliveredSegs == a.DeliveredSegs {
		t.Log("different seed produced identical run; suspicious but not fatal")
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{},                                 // no topology
		{Topology: TopologySpec{Sats: -1}}, // negative population
		ringScenarioBadRate(),              // zero rate
		ringScenarioBadWarmup(),            // warmup ≥ duration
		ringScenarioBadFaults(),            // outage fraction ≥ 1
	}
	for i, sc := range bad {
		if _, err := Run(sc); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}

func ringScenarioBadRate() Scenario {
	sc := ringScenario(4)
	sc.PerSat = 0
	return sc
}

func ringScenarioBadWarmup() Scenario {
	sc := ringScenario(4)
	sc.WarmupSec = sc.DurationSec
	return sc
}

func ringScenarioBadFaults() Scenario {
	sc := ringScenario(4)
	sc.Faults.LinkOutage = 1
	return sc
}

func TestMaxSupportableRejectsTinyLimit(t *testing.T) {
	sc := ringScenario(4)
	if _, err := MaxSupportable(sc, 1); err == nil {
		t.Error("limit below minimum population accepted")
	}
}
