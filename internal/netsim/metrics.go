package netsim

import (
	"spacedc/internal/stats"
	"spacedc/internal/units"
)

// LinkReport is one link's measurement-window record.
type LinkReport struct {
	Name string
	// Utilization is sent bits over capacity × window, clamped to 1.
	Utilization float64
	SentBits    float64
	// Drops counts segments lost at this link: queue overflow plus
	// buffered data destroyed by a satellite failure.
	Drops         int
	PeakQueueBits float64
}

// Result summarizes one run over its measurement window (after warmup).
type Result struct {
	Name        string
	MeasuredSec float64

	// Offered/Delivered are flow-level rates over the window; the ratio
	// is the delivered fraction (≈1 for a stable, fault-free network).
	OfferedRate   units.DataRate
	DeliveredRate units.DataRate
	DeliveryRatio float64
	OfferedSegs   int
	DeliveredSegs int

	// LatencySec summarizes end-to-end segment delivery latency in
	// seconds, measured from first transmission (retransmissions included).
	LatencySec stats.Summary

	// BottleneckUtil is the highest per-link utilization; BottleneckLink
	// names the link carrying it (the Fig 11 ISL bottleneck).
	BottleneckUtil float64
	BottleneckLink string
	Links          []LinkReport

	// Loss and recovery accounting.
	LinkDrops    int // queue overflow + satellite-failure purges
	NoRouteDrops int // segments emitted while the source was partitioned
	RebuildDrops int // segments queued on links that vanished at an epoch rebuild
	Retransmits  int
	Duplicates   int // copies arriving after an earlier copy already did
	// LateAbandoned counts copies that arrived only after the source
	// exhausted the attempt budget — deliveries the source had written
	// off, previously misfiled as Duplicates.
	LateAbandoned int
	Abandoned     int // segments that exhausted their attempt budget

	// Dynamics accounting. RouteRecomputes counts every routing update
	// (full BFS or incremental); RouteRepairs is the subset triggered by
	// fault/eclipse transitions between epoch rebuilds, which the
	// incremental maintainer services by subtree repair instead of a full
	// recompute.
	FaultEvents      int
	TopologyRebuilds int
	RouteRecomputes  int
	RouteRepairs     int
	PeakQueueBits    float64
}

// finalizeLinks folds per-link counters into the result.
func (r *Result) finalizeLinks(g *Graph) {
	for _, l := range g.Links {
		util := 0.0
		if l.CapacityBps > 0 && r.MeasuredSec > 0 {
			util = l.sentBits / (l.CapacityBps * r.MeasuredSec)
			if util > 1 {
				util = 1
			}
		}
		rep := LinkReport{
			Name:          g.linkName(l),
			Utilization:   util,
			SentBits:      l.sentBits,
			Drops:         l.drops,
			PeakQueueBits: l.peakQBits,
		}
		r.Links = append(r.Links, rep)
		r.LinkDrops += l.drops
		if util > r.BottleneckUtil {
			r.BottleneckUtil = util
			r.BottleneckLink = rep.Name
		}
		if l.peakQBits > r.PeakQueueBits {
			r.PeakQueueBits = l.peakQBits
		}
	}
}
