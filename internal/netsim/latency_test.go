package netsim

import (
	"math"
	"testing"

	"spacedc/internal/obs"
	statsutil "spacedc/internal/stats"
	"spacedc/internal/units"
)

// latencyBucketWidth returns the width of the obs.LatencyBuckets bucket
// holding v — the documented tolerance of the bucket-derived percentiles.
func latencyBucketWidth(v float64) float64 {
	b := obs.LatencyBuckets
	i := 0
	for i < len(b) && v > b[i] {
		i++
	}
	if i >= len(b) {
		return math.Inf(1)
	}
	if i == 0 {
		return b[0]
	}
	return b[i] - b[i-1]
}

// faultHeavyScenario drives heavy retransmission traffic: 5% per-link
// outage on an RF ring keeps segments looping through timeout/backoff, so
// the latency distribution grows a long tail — exactly the regime where
// the retired O(delivered) latency slice grew without bound.
func faultHeavyScenario() Scenario {
	sc := ringScenario(8)
	sc.Faults = FaultConfig{LinkOutage: 0.05, LinkMTTRSec: 10}
	return sc
}

// TestNetsimLatencyHistogramTracksExact captures every measured delivery
// latency through the test tap and asserts Result.LatencySec — now derived
// from the run-local bucket accumulator — matches an exact stats.Summarize
// of the same samples: count and max exact, mean to rounding, p95 within
// one LatencyBuckets bucket width. The registry's merged histogram must
// agree too, proving Merge carries the run-local distribution across
// intact.
func TestNetsimLatencyHistogramTracksExact(t *testing.T) {
	var exact []float64
	latencyTap = func(l float64) { exact = append(exact, l) }
	defer func() { latencyTap = nil }()

	sc := faultHeavyScenario()
	reg := obs.New()
	sc.Obs = reg
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != r.DeliveredSegs {
		t.Fatalf("tap saw %d latencies, result delivered %d", len(exact), r.DeliveredSegs)
	}
	if r.Retransmits == 0 {
		t.Fatal("scenario not fault-heavy: no retransmissions — tail untested")
	}
	if r.LatencySec.Count != len(exact) {
		t.Errorf("LatencySec.Count = %d, want %d", r.LatencySec.Count, len(exact))
	}

	want := statsutil.Summarize(exact)
	if math.Abs(r.LatencySec.Mean-want.Mean) > 1e-9*want.Mean {
		t.Errorf("Mean = %v, want exact %v", r.LatencySec.Mean, want.Mean)
	}
	if r.LatencySec.Max != want.Max {
		t.Errorf("Max = %v, want exact %v", r.LatencySec.Max, want.Max)
	}
	tol := latencyBucketWidth(want.P95)
	if math.Abs(r.LatencySec.P95-want.P95) > tol {
		t.Errorf("P95 = %v, exact sorted-sample p95 = %v: off by %v, tolerance one bucket width %v",
			r.LatencySec.P95, want.P95, math.Abs(r.LatencySec.P95-want.P95), tol)
	}

	// The merged registry histogram must reproduce the run-local one.
	var snap obs.HistogramSnapshot
	found := false
	for _, h := range reg.Snapshot().Histograms {
		if h.Name == "netsim.segment_latency_secs" {
			snap, found = h, true
			break
		}
	}
	if !found {
		t.Fatal("registry missing merged netsim.segment_latency_secs histogram")
	}
	if snap.Count != int64(len(exact)) {
		t.Errorf("merged histogram count = %d, want %d", snap.Count, len(exact))
	}
	if math.Abs(snap.Mean-want.Mean) > 1e-9*want.Mean {
		t.Errorf("merged histogram mean = %v, want %v", snap.Mean, want.Mean)
	}
	if snap.Max != want.Max {
		t.Errorf("merged histogram max = %v, want exact %v", snap.Max, want.Max)
	}
	p50 := statsutil.Percentile(exact, 0.5)
	if math.Abs(snap.P50-p50) > latencyBucketWidth(p50) {
		t.Errorf("merged histogram p50 = %v, exact = %v: beyond one bucket width %v",
			snap.P50, p50, latencyBucketWidth(p50))
	}
}

// TestNetsimRunAllocsFlat is netsim's O(buckets)-not-O(segments) guard,
// mirroring sched's TestSimulateAllocsMemoryFlat: 10× the offered rate
// (10× the segments through the same fault schedule — faults draw only on
// the step clock, not the traffic) must not allocate meaningfully more.
// Before the histogram accumulator, the value-typed outstanding map, and
// in-place queue compaction, the latency slice, per-segment txState
// pointers, and reslice-forward queue all grew allocations linearly with
// offered load.
func TestNetsimRunAllocsFlat(t *testing.T) {
	run := func(rateScale float64) func() {
		sc := faultHeavyScenario()
		sc.PerSat = units.DataRate(float64(sc.PerSat) * rateScale)
		return func() {
			if _, err := Run(sc); err != nil {
				t.Fatal(err)
			}
		}
	}
	low := testing.AllocsPerRun(3, run(1))
	high := testing.AllocsPerRun(3, run(10))
	if high > low*1.5+64 {
		t.Errorf("10× offered load cost %v allocs vs %v: latency/transport accounting is not memory-flat", high, low)
	}
}
