package netsim

import (
	"testing"

	"spacedc/internal/isl"
)

func TestRingGraphStructure(t *testing.T) {
	g, err := BuildGraph(TopologySpec{
		Kind: ClusterTopology, Sats: 8, Cluster: isl.Ring,
		Tech: isl.RFKaBand, QueueSec: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Sinks) != 1 || len(g.Sources) != 8 {
		t.Fatalf("ring has %d sinks / %d sources, want 1/8", len(g.Sinks), len(g.Sources))
	}
	// A ring of 9 positions: every adjacent pair linked in both
	// directions → 18 directed links.
	if len(g.Links) != 18 {
		t.Errorf("ring link count %d, want 18", len(g.Links))
	}
	g.recomputeRoutes(false)
	for _, s := range g.Sources {
		if g.next[s] < 0 {
			t.Errorf("source %d unrouted in a healthy ring", s)
		}
	}
	// The farthest satellite sits ⌈8/2⌉ hops out.
	maxDist := 0
	for _, s := range g.Sources {
		if g.dist[s] > maxDist {
			maxDist = g.dist[s]
		}
	}
	if maxDist != 4 {
		t.Errorf("ring eccentricity %d, want 4", maxDist)
	}
}

func TestRoutingReroutesAroundDownLink(t *testing.T) {
	g, err := BuildGraph(TopologySpec{
		Kind: ClusterTopology, Sats: 6, Cluster: isl.Ring,
		Tech: isl.RFKaBand, QueueSec: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.recomputeRoutes(false)
	// Kill node 1's routed link toward the sink; the ring must still
	// reach the SµDC the long way around.
	li := g.next[1]
	before := g.dist[1]
	g.Links[li].Up = false
	g.recomputeRoutes(false)
	if g.next[1] < 0 {
		t.Fatal("node 1 partitioned by a single link failure in a ring")
	}
	if g.dist[1] <= before {
		t.Errorf("detour distance %d should exceed direct %d", g.dist[1], before)
	}
	if g.next[1] == li {
		t.Error("routing still uses the dead link")
	}
}

func TestKListReceiverCount(t *testing.T) {
	g, err := BuildGraph(TopologySpec{
		Kind: ClusterTopology, Sats: 16, Cluster: isl.Topology{K: 4, Split: 1},
		Tech: isl.RFKaBand, QueueSec: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := g.Sinks[0]
	in := 0
	for _, l := range g.Links {
		if l.To == sink {
			in++
		}
	}
	if in != 4 {
		t.Errorf("4-list sink has %d receiver links, want K=4", in)
	}
}

func TestAdoptStatePreservesQueuesAndFaults(t *testing.T) {
	spec := TopologySpec{
		Kind: ClusterTopology, Sats: 6, Cluster: isl.Ring,
		Tech: isl.RFKaBand, QueueSec: 1,
	}
	old, err := BuildGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	old.Links[0].q = []segment{{flow: 1, seq: 1, bits: 100}}
	old.Links[0].qBits = 100
	old.Links[2].Up = false
	old.nodes[3].Up = false
	fresh, err := BuildGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	fresh.adoptState(old)
	if len(fresh.Links[0].q) != 1 || fresh.Links[0].qBits != 100 {
		t.Error("queue lost across topology rebuild")
	}
	if fresh.Links[2].Up {
		t.Error("link outage state lost across rebuild")
	}
	if fresh.nodes[3].Up {
		t.Error("satellite failure state lost across rebuild")
	}
}

func TestGEOStarAssignsEverySatellite(t *testing.T) {
	g, err := BuildGraph(TopologySpec{
		Kind: GEOStarTopology, Sats: 10, Tech: isl.Optical10G, QueueSec: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Sinks) != 3 {
		t.Fatalf("GEO star has %d sinks, want 3", len(g.Sinks))
	}
	if len(g.Links) != 10 {
		t.Errorf("GEO star has %d links, want one per satellite", len(g.Links))
	}
	g.recomputeRoutes(false)
	for _, s := range g.Sources {
		if g.next[s] < 0 {
			t.Errorf("satellite %d has no GEO uplink", s)
		}
		if g.dist[s] != 1 {
			t.Errorf("satellite %d at distance %d, star should be one hop", s, g.dist[s])
		}
	}
}
