package netsim

import (
	"reflect"
	"testing"

	"spacedc/internal/isl"
	"spacedc/internal/units"
)

// bigGridScenario is a routing-bound constellation-scale run: hundreds of
// satellites under a heavy fault regime with light traffic, so stepping
// cost is dominated by routing updates rather than queue service. It is
// the workload the incremental maintainer exists for.
func bigGridScenario(seed int64, full bool) Scenario {
	return Scenario{
		Name: "big-grid",
		Topology: TopologySpec{
			Kind:    ClusterTopology,
			Sats:    2000,
			Cluster: isl.Topology{K: 8, Split: 8},
			Tech:    isl.Optical10G,
		},
		PerSat: units.Mbps / 10,
		Faults: FaultConfig{
			LinkOutage:    0.05,
			LinkMTTRSec:   10,
			EclipseOutage: true,
		},
		StepSec:       0.1,
		EpochSec:      30,
		DurationSec:   60,
		WarmupSec:     10,
		Seed:          seed,
		FullRecompute: full,
	}
}

func bigGridScenarios(full bool) []Scenario {
	scs := make([]Scenario, 4)
	for i := range scs {
		scs[i] = bigGridScenario(int64(i+1), full)
	}
	return scs
}

// BenchmarkBigGridSweep measures a fault-heavy, routing-bound sweep at
// constellation scale on both routing paths. The incremental/full-bfs
// ratio is the tentpole's speedup claim; CI runs it once (-benchtime 1x)
// as a smoke test that the big-grid workload completes on both paths.
func BenchmarkBigGridSweep(b *testing.B) {
	for _, mode := range []struct {
		name string
		full bool
	}{{"incremental", false}, {"full-bfs", true}} {
		b.Run(mode.name, func(b *testing.B) {
			scs := bigGridScenarios(mode.full)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range Sweep(scs, 1) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// TestBigGridSweepBitIdentityAcrossWorkers pins the acceptance criterion
// behind the benchmark: at constellation scale the incremental sweep's
// Results are byte-identical to the full-BFS sweep's, at any worker count.
func TestBigGridSweepBitIdentityAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("constellation-scale sweep")
	}
	shorten := func(scs []Scenario) []Scenario {
		for i := range scs {
			scs[i].DurationSec = 20
			scs[i].WarmupSec = 5
		}
		return scs
	}
	ref := Sweep(shorten(bigGridScenarios(true)), 1)
	for _, workers := range []int{1, 4} {
		got := Sweep(shorten(bigGridScenarios(false)), workers)
		for i := range got {
			if got[i].Err != nil || ref[i].Err != nil {
				t.Fatalf("scenario %d errored: %v / %v", i, got[i].Err, ref[i].Err)
			}
			if got[i].Result.RouteRepairs == 0 {
				t.Fatalf("scenario %d exercised no incremental repairs", i)
			}
			if !reflect.DeepEqual(got[i].Result, ref[i].Result) {
				t.Fatalf("workers=%d scenario %d diverged from full-BFS reference:\nincremental: %+v\nfull:        %+v",
					workers, i, got[i].Result, ref[i].Result)
			}
		}
	}
}
