package netsim

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"spacedc/internal/units"
)

// sweepScenarios builds a (fault-rate × load) grid for the sweep tests.
func sweepScenarios(durationSec float64) []Scenario {
	var out []Scenario
	for _, outage := range []float64{0, 0.01, 0.05} {
		for _, rate := range []units.DataRate{50 * units.Mbps, 100 * units.Mbps} {
			sc := ringScenario(8)
			sc.Name = fmt.Sprintf("outage=%.2f rate=%v", outage, rate)
			sc.PerSat = rate
			sc.Faults = FaultConfig{LinkOutage: outage, LinkMTTRSec: 10}
			sc.DurationSec = durationSec
			sc.WarmupSec = durationSec / 6
			out = append(out, sc)
		}
	}
	return out
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	scs := sweepScenarios(40)
	serial := Sweep(scs, 1)
	parallel := Sweep(scs, 4)
	if len(serial) != len(scs) || len(parallel) != len(scs) {
		t.Fatal("sweep lost scenarios")
	}
	for i := range scs {
		s, p := serial[i], parallel[i]
		if (s.Err == nil) != (p.Err == nil) {
			t.Fatalf("scenario %d: error mismatch %v vs %v", i, s.Err, p.Err)
		}
		if s.Result.DeliveredSegs != p.Result.DeliveredSegs ||
			s.Result.LinkDrops != p.Result.LinkDrops ||
			s.Result.FaultEvents != p.Result.FaultEvents ||
			s.Result.LatencySec != p.Result.LatencySec {
			t.Errorf("scenario %d (%s): parallel result diverged from serial:\n%+v\n%+v",
				i, scs[i].Name, s.Result, p.Result)
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	good := ringScenario(4)
	good.DurationSec = 10
	good.WarmupSec = 2
	bad := good
	bad.PerSat = 0
	results := Sweep([]Scenario{good, bad, good}, 2)
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("valid scenarios should succeed")
	}
	if results[1].Err == nil {
		t.Error("invalid scenario should carry its error")
	}
}

func TestSweepEmptyAndOversizedPool(t *testing.T) {
	if r := Sweep(nil, 8); len(r) != 0 {
		t.Error("empty sweep should return no results")
	}
	one := []Scenario{func() Scenario { sc := ringScenario(4); sc.DurationSec = 10; sc.WarmupSec = 2; return sc }()}
	r := Sweep(one, 64) // more workers than work
	if len(r) != 1 || r[0].Err != nil {
		t.Errorf("oversized pool mishandled single scenario: %+v", r)
	}
}

// TestSweepNegativeWorkers: any non-positive worker count means "use all
// cores", and the ID-ordered reassembly keeps the output identical to a
// serial sweep regardless.
func TestSweepNegativeWorkers(t *testing.T) {
	scs := sweepScenarios(20)
	serial := Sweep(scs, 1)
	negative := Sweep(scs, -3)
	if len(negative) != len(scs) {
		t.Fatalf("negative-worker sweep returned %d results, want %d", len(negative), len(scs))
	}
	for i := range scs {
		s, n := serial[i].Result, negative[i].Result
		if s.DeliveredSegs != n.DeliveredSegs || s.LinkDrops != n.LinkDrops ||
			s.FaultEvents != n.FaultEvents || s.LatencySec != n.LatencySec {
			t.Errorf("scenario %d (%s): workers=-3 diverged from workers=1:\n%+v\n%+v",
				i, scs[i].Name, s, n)
		}
	}
}

// TestSweepMultipleErrorsStayAtTheirIndex: every failing scenario carries
// its own error at its own slot — errors are never coalesced, reordered,
// or allowed to cancel sibling scenarios.
func TestSweepMultipleErrorsStayAtTheirIndex(t *testing.T) {
	good := ringScenario(4)
	good.DurationSec = 10
	good.WarmupSec = 2
	badRate := good
	badRate.PerSat = 0
	badWarmup := good
	badWarmup.WarmupSec = good.DurationSec
	scs := []Scenario{badRate, good, badWarmup, good, badRate}
	results := Sweep(scs, 3)
	wantErr := []bool{true, false, true, false, true}
	for i, want := range wantErr {
		if got := results[i].Err != nil; got != want {
			t.Errorf("scenario %d: err presence = %v, want %v (err: %v)", i, got, want, results[i].Err)
		}
	}
	// Distinct failures keep distinct causes.
	if results[0].Err != nil && results[2].Err != nil &&
		results[0].Err.Error() == results[2].Err.Error() {
		t.Errorf("different invalid scenarios reported the same error: %v", results[0].Err)
	}
}

// BenchmarkSweepSpeedup times the same scenario grid serially and across
// all cores, reporting the wall-clock speedup. On ≥4 cores the pool must
// clear 2×.
func BenchmarkSweepSpeedup(b *testing.B) {
	scs := sweepScenarios(120)
	workers := runtime.NumCPU()
	var speedup float64
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		Sweep(scs, 1)
		serial := time.Since(t0)
		t1 := time.Now()
		Sweep(scs, workers)
		parallel := time.Since(t1)
		speedup = serial.Seconds() / parallel.Seconds()
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(workers), "workers")
	if workers >= 4 && speedup < 2 {
		b.Errorf("sweep speedup %.2f× on %d cores, want >2×", speedup, workers)
	}
}

// BenchmarkRunRing times one simulator run at the baseline configuration.
func BenchmarkRunRing(b *testing.B) {
	sc := ringScenario(8)
	sc.Faults = FaultConfig{LinkOutage: 0.01, LinkMTTRSec: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}
