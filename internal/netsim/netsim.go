// Package netsim is a time-stepped, flow-level simulator of the
// EO-constellation → SµDC relay network. Where internal/isl checks the
// paper's Table 8 capacity model against a *static* flow-conservation
// graph, netsim runs the network forward in time: a topology driver
// rebuilds the link graph (ring, k-list, split clusters, GEO star) at a
// configurable epoch interval, per-link FIFO queues carry segmented flows
// under shortest-path routing that recomputes whenever the topology or
// fault state changes, a fault layer injects link outages (random pointing
// loss and eclipse sweeps) and whole-satellite failures with MTBF/MTTR
// dynamics, and a transport layer retransmits lost segments with
// exponential backoff. A metrics layer records per-link utilization,
// queue depth, and drops plus per-flow delivered throughput and latency
// percentiles; a worker-pool sweep runner executes many scenarios in
// parallel across cores.
//
// At zero fault rate the simulator's steady state reproduces the
// closed-form models: the max supportable EO-satellite count matches
// isl.SupportableEOSats (Table 8) and the bottleneck-link utilization
// follows the Fig 11 ISL-bottleneck shape.
package netsim

import (
	"fmt"

	"spacedc/internal/obs"
	"spacedc/internal/units"
)

// Default simulation parameters, applied by Scenario.withDefaults.
const (
	DefaultStepSec     = 0.1
	DefaultEpochSec    = 60
	DefaultDurationSec = 300
	DefaultSegmentBits = 1e6
	DefaultQueueSec    = 1.0
	DefaultRTOSec      = 5
	DefaultBackoff     = 2
	DefaultMaxAttempts = 5
)

// TransportConfig tunes the retransmission behaviour of every flow source.
type TransportConfig struct {
	// RTOSec is the initial retransmission timeout after a segment is
	// first sent. Zero means DefaultRTOSec.
	RTOSec float64
	// Backoff multiplies the timeout on every retry (exponential
	// backoff). Zero means DefaultBackoff.
	Backoff float64
	// MaxAttempts is the total number of transmission attempts per
	// segment (1 = fire-and-forget, no retransmission). Zero means
	// DefaultMaxAttempts.
	MaxAttempts int
}

// Scenario is one netsim run: a topology under a load, a fault regime, and
// a transport policy, simulated for DurationSec at StepSec resolution.
type Scenario struct {
	Name     string
	Topology TopologySpec
	// PerSat is each EO satellite's steady generation rate.
	PerSat units.DataRate
	// SegmentBits quantizes each flow into transport segments. Zero means
	// DefaultSegmentBits.
	SegmentBits float64
	Faults      FaultConfig
	Transport   TransportConfig
	// StepSec is the simulation time step. Zero means DefaultStepSec.
	StepSec float64
	// EpochSec is the topology-driver rebuild interval. Zero means
	// DefaultEpochSec.
	EpochSec float64
	// DurationSec is the simulated span. Zero means DefaultDurationSec.
	DurationSec float64
	// WarmupSec excludes the initial transient from every metric. Zero
	// means 10% of DurationSec.
	WarmupSec float64
	// Seed drives the fault and jitter randomness; runs are deterministic
	// given a seed.
	Seed int64
	// FullRecompute is a validation knob: when set, every fault-driven
	// routing update runs the full multi-source BFS instead of the
	// incremental repair path. Both paths produce bit-identical routing
	// tables and Results — the differential tests and the big-grid sweep
	// benchmark run both sides to prove it — so production scenarios leave
	// this false and keep the repair path's speed.
	FullRecompute bool
	// Obs, when non-nil, receives the run's metrics, per-step samples, and
	// spans (see internal/obs). Observability is write-only: it never
	// alters the simulation, so instrumented runs stay bit-identical to
	// bare ones. Scenarios sharing one registry must not run concurrently
	// on a sim-clock registry (the clock would interleave); give parallel
	// sweep scenarios their own registries or leave Obs nil.
	Obs *obs.Registry
}

// withDefaults fills zero fields with the package defaults.
func (sc Scenario) withDefaults() Scenario {
	if sc.StepSec == 0 {
		sc.StepSec = DefaultStepSec
	}
	if sc.EpochSec == 0 {
		sc.EpochSec = DefaultEpochSec
	}
	if sc.DurationSec == 0 {
		sc.DurationSec = DefaultDurationSec
	}
	if sc.WarmupSec == 0 {
		sc.WarmupSec = 0.1 * sc.DurationSec
	}
	if sc.SegmentBits == 0 {
		sc.SegmentBits = DefaultSegmentBits
	}
	if sc.Transport.RTOSec == 0 {
		sc.Transport.RTOSec = DefaultRTOSec
	}
	if sc.Transport.Backoff == 0 {
		sc.Transport.Backoff = DefaultBackoff
	}
	if sc.Transport.MaxAttempts == 0 {
		sc.Transport.MaxAttempts = DefaultMaxAttempts
	}
	if sc.Topology.QueueSec == 0 {
		sc.Topology.QueueSec = DefaultQueueSec
	}
	sc.Faults = sc.Faults.withDefaults()
	return sc
}

// Validate checks the scenario after defaulting.
func (sc Scenario) Validate() error {
	if err := sc.Topology.Validate(); err != nil {
		return err
	}
	if sc.PerSat <= 0 {
		return fmt.Errorf("netsim: non-positive per-satellite rate %v", sc.PerSat)
	}
	if sc.SegmentBits <= 0 {
		return fmt.Errorf("netsim: non-positive segment size %v", sc.SegmentBits)
	}
	if sc.StepSec <= 0 || sc.DurationSec <= 0 || sc.EpochSec <= 0 {
		return fmt.Errorf("netsim: non-positive step/duration/epoch")
	}
	if sc.WarmupSec < 0 || sc.WarmupSec >= sc.DurationSec {
		return fmt.Errorf("netsim: warmup %v outside (0, duration %v)", sc.WarmupSec, sc.DurationSec)
	}
	if sc.Transport.RTOSec <= 0 || sc.Transport.Backoff < 1 || sc.Transport.MaxAttempts < 1 {
		return fmt.Errorf("netsim: invalid transport %+v", sc.Transport)
	}
	return sc.Faults.Validate()
}
