package netsim

import (
	"errors"
	"testing"

	"spacedc/internal/isl"
	"spacedc/internal/units"
)

// TestDesignTopologyRejectsDegenerate is the regression test for the
// candidate-evaluation hole: designs with no ISL budget or impossible
// planes×sats-per-plane bounds must come back as typed *DesignError, not
// as a buildable spec whose empty-fabric run scores 0 goodput at 0 cost.
func TestDesignTopologyRejectsDegenerate(t *testing.T) {
	tech := isl.Optical10G
	cases := []struct {
		name               string
		planes, sats       int
		alt                float64
		k, split, geoSinks int
		field              string
	}{
		{"zero planes", 0, 16, 550, 2, 1, 0, "planes"},
		{"negative planes", -3, 16, 550, 2, 1, 0, "planes"},
		{"zero sats", 2, 0, 550, 2, 1, 0, "sats-per-plane"},
		{"population overflow", 1 << 11, 1 << 11, 550, 2, 1, 0, "planes×sats-per-plane"},
		{"overflow-safe product", 1 << 31, 1 << 31, 550, 2, 1, 0, "planes×sats-per-plane"},
		{"zero altitude", 2, 16, 0, 2, 1, 0, "altitude"},
		{"negative altitude", 2, 16, -550, 2, 1, 0, "altitude"},
		{"NaN-free absurd altitude", 2, 16, 1e9, 2, 1, 0, "altitude"},
		{"zero ISL budget", 2, 16, 550, 0, 1, 0, "isl-budget"},
		{"odd K", 2, 16, 550, 3, 1, 0, "isl-budget"},
		{"negative K", 2, 16, 550, -2, 1, 0, "isl-budget"},
		{"zero split", 2, 16, 550, 4, 0, 0, "split"},
		{"under-populated fabric", 2, 7, 550, 4, 2, 0, "sats-per-plane"},
		{"GEO with cluster fabric", 2, 16, 550, 2, 1, 3, "topology"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DesignTopology(tc.planes, tc.sats, tc.alt, tc.k, tc.split, tc.geoSinks, tech)
			var de *DesignError
			if !errors.As(err, &de) {
				t.Fatalf("got err %v, want *DesignError", err)
			}
			if de.Field != tc.field {
				t.Fatalf("rejected on field %q, want %q (reason: %s)", de.Field, tc.field, de.Reason)
			}
		})
	}

	// Zero-capacity tech is a model error, also typed.
	_, err := DesignTopology(2, 16, 550, 2, 1, 0, isl.LinkTech{})
	var de *DesignError
	if !errors.As(err, &de) || de.Field != "link-tech" {
		t.Fatalf("zero-capacity tech: got %v", err)
	}
}

// TestDesignTopologyBuildsValid asserts accepted designs produce specs
// that validate, build, and actually run with non-degenerate results —
// the other half of the regression: a valid candidate must not be starved
// by the stricter construction path.
func TestDesignTopologyBuildsValid(t *testing.T) {
	tech := isl.Optical10G

	cluster, err := DesignTopology(3, 16, 550, 4, 2, 0, tech)
	if err != nil {
		t.Fatalf("cluster design rejected: %v", err)
	}
	if cluster.Kind != ClusterTopology || cluster.Sats != 16 ||
		cluster.Cluster.K != 4 || cluster.Cluster.Split != 2 || cluster.LowAltKm != 550 {
		t.Fatalf("cluster spec mismatch: %+v", cluster)
	}

	geo, err := DesignTopology(3, 16, 550, 0, 0, 3, tech)
	if err != nil {
		t.Fatalf("GEO design rejected: %v", err)
	}
	if geo.Kind != GEOStarTopology || geo.GEOSinks != 3 || geo.Sats != 16 {
		t.Fatalf("GEO spec mismatch: %+v", geo)
	}

	for name, spec := range map[string]TopologySpec{"cluster": cluster, "geo": geo} {
		sc := Scenario{
			Name:        name,
			Topology:    spec,
			PerSat:      100 * units.Mbps,
			StepSec:     0.2,
			EpochSec:    30,
			DurationSec: 30,
		}
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: run failed: %v", name, err)
		}
		if res.DeliveredRate <= 0 {
			t.Fatalf("%s: degenerate run delivered nothing: %+v", name, res)
		}
	}
}
