package netsim

import (
	"fmt"
	"math"
)

// node is the dynamic state of one spacecraft.
type node struct {
	// Up is false while the whole satellite is failed.
	Up bool
	// eclipsed is true while the satellite is inside the Earth-shadow
	// sweep (matters only to optical links under EclipseOutage).
	eclipsed bool
	// posFrac is the node's angular position around the plane in [0,1),
	// which phases its passage through the shadow arc.
	posFrac float64
	// geo marks GEO sinks, which the LEO eclipse sweep never shadows.
	geo bool
	// nextFlip is the sampled time of the next up/down transition;
	// +Inf when no failure process is attached.
	nextFlip float64
}

// Link is one directed ISL with a FIFO queue.
type Link struct {
	ID             int
	From, To       int
	CapacityBps    float64
	DelaySec       float64
	QueueLimitBits float64

	// Up is false during a link-level outage (pointing loss).
	Up       bool
	nextFlip float64

	// FIFO queue; headDone tracks partially-served bits of q[0].
	q        []segment
	qBits    float64
	headDone float64

	// Measurement-window counters.
	sentBits  float64
	drops     int
	peakQBits float64
}

// key identifies a link across topology rebuilds.
func (l *Link) key() [2]int { return [2]int{l.From, l.To} }

// Graph is the link graph the driver rebuilds every epoch.
type Graph struct {
	nodes []node
	Links []*Link
	// out lists outgoing link IDs per node.
	out [][]int
	// Sinks are SµDC node IDs; Sources are EO satellite node IDs.
	Sinks   []int
	Sources []int
	// next is the routing table: per node, the outgoing link ID on a
	// shortest path toward the nearest reachable sink, or -1.
	next []int
	dist []int
}

// newGraph allocates an empty graph of n nodes, all healthy.
func newGraph(n int) *Graph {
	g := &Graph{
		nodes: make([]node, n),
		out:   make([][]int, n),
		next:  make([]int, n),
		dist:  make([]int, n),
	}
	for i := range g.nodes {
		g.nodes[i].Up = true
		g.nodes[i].nextFlip = math.Inf(1)
	}
	return g
}

// addLink appends a directed link.
func (g *Graph) addLink(from, to int, capBps, delaySec, queueBits float64) *Link {
	l := &Link{
		ID: len(g.Links), From: from, To: to,
		CapacityBps: capBps, DelaySec: delaySec, QueueLimitBits: queueBits,
		Up: true, nextFlip: math.Inf(1),
	}
	g.Links = append(g.Links, l)
	g.out[from] = append(g.out[from], l.ID)
	return l
}

// usable reports whether a link can carry traffic right now: the link
// itself is acquired, both endpoints are alive, and (for optical terminals
// under an eclipse-outage regime) neither endpoint is in shadow.
func (g *Graph) usable(l *Link, eclipseOutage bool) bool {
	if !l.Up || !g.nodes[l.From].Up || !g.nodes[l.To].Up {
		return false
	}
	if eclipseOutage && (g.nodes[l.From].eclipsed || g.nodes[l.To].eclipsed) {
		return false
	}
	return true
}

// isSink reports whether node id is a SµDC.
func (g *Graph) isSink(id int) bool {
	for _, s := range g.Sinks {
		if s == id {
			return true
		}
	}
	return false
}

// recomputeRoutes rebuilds the shortest-path routing table by multi-source
// BFS from every live sink over the currently usable links. Unreachable
// nodes get next = -1; their sources keep generating and their segments
// are dropped at enqueue time, to be recovered by transport retransmission
// once connectivity returns.
func (g *Graph) recomputeRoutes(eclipseOutage bool) {
	const inf = math.MaxInt32
	for i := range g.next {
		g.next[i] = -1
		g.dist[i] = inf
	}
	// in-links per node, lazily derived from the link set.
	in := make([][]int, len(g.nodes))
	for _, l := range g.Links {
		in[l.To] = append(in[l.To], l.ID)
	}
	queue := make([]int, 0, len(g.nodes))
	for _, s := range g.Sinks {
		if g.nodes[s].Up {
			g.dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, li := range in[v] {
			l := g.Links[li]
			if !g.usable(l, eclipseOutage) {
				continue
			}
			u := l.From
			if g.dist[u] > g.dist[v]+1 {
				g.dist[u] = g.dist[v] + 1
				g.next[u] = li
				queue = append(queue, u)
			}
		}
	}
}

// adoptState carries the dynamic state (fault clocks, eclipse flags,
// queues, metrics) from the previous epoch's graph into this freshly
// rebuilt one, matching links by (from, to). Links that ceased to exist
// drop their queued segments — the transport layer's timers recover them.
func (g *Graph) adoptState(old *Graph) {
	if old == nil {
		return
	}
	for i := range g.nodes {
		if i >= len(old.nodes) {
			break
		}
		// Only dynamic state crosses the rebuild; posFrac and geo are
		// structural and belong to the new layout.
		g.nodes[i].Up = old.nodes[i].Up
		g.nodes[i].eclipsed = old.nodes[i].eclipsed
		g.nodes[i].nextFlip = old.nodes[i].nextFlip
	}
	prev := make(map[[2]int]*Link, len(old.Links))
	for _, l := range old.Links {
		prev[l.key()] = l
	}
	for _, l := range g.Links {
		if o, ok := prev[l.key()]; ok {
			l.Up = o.Up
			l.nextFlip = o.nextFlip
			l.q = o.q
			l.qBits = o.qBits
			l.headDone = o.headDone
			l.sentBits = o.sentBits
			l.drops = o.drops
			l.peakQBits = o.peakQBits
		}
	}
}

// linkName renders a link for reports.
func (g *Graph) linkName(l *Link) string {
	from, to := fmt.Sprintf("sat%d", l.From), fmt.Sprintf("sat%d", l.To)
	if g.isSink(l.From) {
		from = fmt.Sprintf("sudc%d", l.From)
	}
	if g.isSink(l.To) {
		to = fmt.Sprintf("sudc%d", l.To)
	}
	return from + "→" + to
}
