package netsim

import (
	"fmt"
	"math"
)

// node is the dynamic state of one spacecraft.
type node struct {
	// Up is false while the whole satellite is failed.
	Up bool
	// eclipsed is true while the satellite is inside the Earth-shadow
	// sweep (matters only to optical links under EclipseOutage).
	eclipsed bool
	// posFrac is the node's angular position around the plane in [0,1),
	// which phases its passage through the shadow arc.
	posFrac float64
	// geo marks GEO sinks, which the LEO eclipse sweep never shadows.
	geo bool
	// shell indexes the node's shell in a multi-shell stack (0 in
	// single-shell graphs), selecting its eclipse geometry.
	shell int
	// nextFlip is the sampled time of the next up/down transition;
	// +Inf when no failure process is attached.
	nextFlip float64
}

// Link is one directed ISL with a FIFO queue.
type Link struct {
	ID             int
	From, To       int
	CapacityBps    float64
	DelaySec       float64
	QueueLimitBits float64

	// Up is false during a link-level outage (pointing loss).
	Up       bool
	nextFlip float64

	// FIFO queue; headDone tracks partially-served bits of q[0].
	q        []segment
	qBits    float64
	headDone float64

	// Measurement-window counters.
	sentBits  float64
	drops     int
	peakQBits float64
}

// key identifies a link across topology rebuilds.
func (l *Link) key() [2]int { return [2]int{l.From, l.To} }

// infDist marks an unreachable node in the routing table.
const infDist = math.MaxInt32

// Graph is the link graph the driver rebuilds every epoch.
type Graph struct {
	nodes []node
	Links []*Link
	// out lists outgoing link IDs per node.
	out [][]int
	// in lists incoming link IDs per node. It is maintained by addLink so
	// neither the full recompute nor the incremental repair re-derives (and
	// re-allocates) it per routing update.
	in [][]int
	// Sinks are SµDC node IDs; Sources are EO satellite node IDs.
	Sinks   []int
	Sources []int
	// crossShell counts directed links whose endpoints sit in different
	// shells; zero for single-shell graphs.
	crossShell int
	// next is the routing table: per node, the outgoing link ID on a
	// shortest path toward the nearest reachable sink, or -1. The choice
	// among equal-length paths is canonical — the lowest-numbered eligible
	// link (see deriveNext) — so the table is a pure function of dist and
	// the usability state, and the incremental repair path reproduces a
	// full recompute bit for bit.
	next []int
	dist []int

	// Busy-link set: the IDs of links with a non-empty queue, maintained by
	// markBusy at enqueue time and pruned by the driver's service loop, so
	// serving and queue-depth sampling walk only the links actually
	// carrying traffic instead of every link every step. The driver sorts
	// busyIDs before each service pass, preserving the ascending-ID service
	// order a full scan had — results are unchanged.
	busy    []bool
	busyIDs []int

	// Pending usability batch: the fault layer records every link whose
	// usability may change this step (noteLink/noteNode, called before the
	// state flip) and repairRoutes folds the whole batch into the table in
	// one pass. noted de-duplicates per link; notedWas keeps the
	// pre-batch usability for the net-change classification.
	noted    []bool
	notedIDs []int
	notedWas []bool

	// Repair scratch, reused across repairs so steady-state fault handling
	// allocates nothing: affected marks the orphaned subtree, best holds
	// tentative distances (infDist when clean, reset via bestSet), levels
	// is the bucket queue of the distance wavefronts, touched/touchIDs
	// collect the nodes whose next-hop must be re-derived, and
	// stack/aNodes/downs/ups are traversal worklists.
	affected []bool
	best     []int
	bestSet  []int
	levels   [][]int
	touched  []bool
	touchIDs []int
	stack    []int
	aNodes   []int
	downs    []int
	ups      []int
}

// newGraph allocates an empty graph of n nodes, all healthy.
func newGraph(n int) *Graph {
	g := &Graph{
		nodes: make([]node, n),
		out:   make([][]int, n),
		in:    make([][]int, n),
		next:  make([]int, n),
		dist:  make([]int, n),
	}
	for i := range g.nodes {
		g.nodes[i].Up = true
		g.nodes[i].nextFlip = math.Inf(1)
	}
	return g
}

// addLink appends a directed link.
func (g *Graph) addLink(from, to int, capBps, delaySec, queueBits float64) *Link {
	l := &Link{
		ID: len(g.Links), From: from, To: to,
		CapacityBps: capBps, DelaySec: delaySec, QueueLimitBits: queueBits,
		Up: true, nextFlip: math.Inf(1),
	}
	g.Links = append(g.Links, l)
	g.out[from] = append(g.out[from], l.ID)
	g.in[to] = append(g.in[to], l.ID)
	return l
}

// usable reports whether a link can carry traffic right now: the link
// itself is acquired, both endpoints are alive, and (for optical terminals
// under an eclipse-outage regime) neither endpoint is in shadow.
func (g *Graph) usable(l *Link, eclipseOutage bool) bool {
	if !l.Up || !g.nodes[l.From].Up || !g.nodes[l.To].Up {
		return false
	}
	if eclipseOutage && (g.nodes[l.From].eclipsed || g.nodes[l.To].eclipsed) {
		return false
	}
	return true
}

// CrossShellLinks reports the number of directed inter-shell links in the
// graph; zero for single-shell topologies.
func (g *Graph) CrossShellLinks() int { return g.crossShell }

// isSink reports whether node id is a SµDC.
func (g *Graph) isSink(id int) bool {
	for _, s := range g.Sinks {
		if s == id {
			return true
		}
	}
	return false
}

// recomputeRoutes rebuilds the shortest-path routing table by multi-source
// BFS from every live sink over the currently usable links. Unreachable
// nodes get next = -1; their sources keep generating and their segments
// are dropped at enqueue time, to be recovered by transport retransmission
// once connectivity returns. Any pending usability batch is discarded — a
// full recompute subsumes it.
func (g *Graph) recomputeRoutes(eclipseOutage bool) {
	g.clearPending()
	for i := range g.dist {
		g.dist[i] = infDist
	}
	queue := g.stack[:0]
	for _, s := range g.Sinks {
		if g.nodes[s].Up {
			g.dist[s] = 0
			queue = append(queue, s)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, li := range g.in[v] {
			l := g.Links[li]
			if !g.usable(l, eclipseOutage) {
				continue
			}
			if u := l.From; g.dist[u] > g.dist[v]+1 {
				g.dist[u] = g.dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	g.stack = queue[:0]
	for u := range g.next {
		g.next[u] = g.deriveNext(u, eclipseOutage)
	}
}

// deriveNext returns the canonical routing choice for node u: the
// lowest-numbered usable out-link whose far end sits exactly one hop
// closer to a sink, or -1 for sinks and unreachable nodes. Because the
// choice depends only on dist and the usability state — never on the
// order route updates happened to run in — the incremental repair path
// and a from-scratch BFS agree on every entry.
func (g *Graph) deriveNext(u int, eclipseOutage bool) int {
	d := g.dist[u]
	if d == 0 || d == infDist {
		return -1
	}
	for _, li := range g.out[u] {
		l := g.Links[li]
		if g.usable(l, eclipseOutage) && g.dist[l.To] == d-1 {
			return li
		}
	}
	return -1
}

// noteLink records link li's usability ahead of a state flip, once per
// batch. The fault layer must call it (directly or via noteNode) before
// every mutation that can change the link's usability, so notedWas always
// holds the pre-batch value.
func (g *Graph) noteLink(li int, eclipseOutage bool) {
	if len(g.noted) != len(g.Links) {
		g.noted = make([]bool, len(g.Links))
	}
	if g.noted[li] {
		return
	}
	g.noted[li] = true
	g.notedIDs = append(g.notedIDs, li)
	g.notedWas = append(g.notedWas, g.usable(g.Links[li], eclipseOutage))
}

// noteNode records every link incident to node id ahead of a node-state
// flip (satellite failure/recovery or an eclipse transition).
func (g *Graph) noteNode(id int, eclipseOutage bool) {
	for _, li := range g.out[id] {
		g.noteLink(li, eclipseOutage)
	}
	for _, li := range g.in[id] {
		g.noteLink(li, eclipseOutage)
	}
}

// markBusy records link li as having queued traffic.
func (g *Graph) markBusy(li int) {
	if len(g.busy) != len(g.Links) {
		g.busy = make([]bool, len(g.Links))
	}
	if !g.busy[li] {
		g.busy[li] = true
		g.busyIDs = append(g.busyIDs, li)
	}
}

// clearPending drops the recorded usability batch.
func (g *Graph) clearPending() {
	for _, li := range g.notedIDs {
		g.noted[li] = false
	}
	g.notedIDs = g.notedIDs[:0]
	g.notedWas = g.notedWas[:0]
}

// ensureScratch sizes the repair scratch to the graph.
func (g *Graph) ensureScratch() {
	if len(g.affected) == len(g.nodes) {
		return
	}
	g.affected = make([]bool, len(g.nodes))
	g.touched = make([]bool, len(g.nodes))
	g.best = make([]int, len(g.nodes))
	for i := range g.best {
		g.best[i] = infDist
	}
}

// touch marks node u for next-hop re-derivation at the end of a repair.
func (g *Graph) touch(u int) {
	if !g.touched[u] {
		g.touched[u] = true
		g.touchIDs = append(g.touchIDs, u)
	}
}

// setBest lowers node u's tentative distance to d and enqueues it on the
// level-d bucket of the wavefront.
func (g *Graph) setBest(u, d int) {
	if g.best[u] == infDist {
		g.bestSet = append(g.bestSet, u)
	}
	g.best[u] = d
	for len(g.levels) <= d {
		g.levels = append(g.levels, nil)
	}
	g.levels[d] = append(g.levels[d], u)
}

// repairRoutes folds the batch of recorded usability transitions into the
// routing table without a full recompute. Links that went down orphan the
// subtree routed over them (delete-and-repair: the subtree is invalidated,
// then re-attached by a boundary wavefront in distance order); links that
// came up seed a relaxation wavefront that lowers distances outward; and
// the canonical next-hop is re-derived for exactly the nodes whose
// distance or eligible-link set changed. dist converges to the same unique
// shortest-distance field a full multi-source BFS computes, and next is a
// pure function of (dist, usability), so the repaired tables are identical
// to recomputeRoutes' — the invariant the differential tests pin down.
//
// It reports whether any recorded link actually changed usability; false
// means the tables were already correct and nothing was touched. Sink
// liveness changes are outside its contract: the fault layer never fails a
// SµDC, and epoch rebuilds take the full-recompute path.
func (g *Graph) repairRoutes(eclipseOutage bool) bool {
	g.ensureScratch()

	// Classify the batch by net usability change; flip-and-flip-back (or a
	// flip shadowed by a still-down endpoint) nets out to nothing.
	downs, ups := g.downs[:0], g.ups[:0]
	for k, li := range g.notedIDs {
		nowUsable := g.usable(g.Links[li], eclipseOutage)
		if g.notedWas[k] == nowUsable {
			continue
		}
		if nowUsable {
			ups = append(ups, li)
		} else {
			downs = append(downs, li)
		}
	}
	g.downs, g.ups = downs, ups
	g.clearPending()
	if len(downs)+len(ups) == 0 {
		return false
	}

	// --- Deletions, phase A: collect the orphaned subtree. A node is
	// orphaned when its tree edge became unusable, and recursively when its
	// tree parent is orphaned. This over-approximates (an orphan may keep
	// its distance through an equal-length alternative); phase B restores
	// such nodes at unchanged dist.
	stack := g.stack[:0]
	for _, li := range downs {
		if u := g.Links[li].From; g.next[u] == li && !g.affected[u] {
			g.affected[u] = true
			stack = append(stack, u)
		}
	}
	aNodes := g.aNodes[:0]
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		aNodes = append(aNodes, u)
		for _, li := range g.in[u] {
			if w := g.Links[li].From; !g.affected[w] && g.next[w] == li {
				g.affected[w] = true
				stack = append(stack, w)
			}
		}
	}
	g.stack = stack[:0]
	g.aNodes = aNodes
	for _, u := range aNodes {
		g.dist[u] = infDist
		g.next[u] = -1
	}

	// --- Deletions, phase B: re-attach the subtree by a bucketed wavefront
	// from its boundary. Each orphan's candidate distance comes from its
	// usable out-links into intact territory; intra-subtree edges relax as
	// the wavefront finalizes nodes in increasing distance order — exactly
	// BFS restricted to the orphaned region.
	minLvl, maxLvl := infDist, 0
	for _, u := range aNodes {
		b := infDist
		for _, li := range g.out[u] {
			l := g.Links[li]
			if !g.usable(l, eclipseOutage) {
				continue
			}
			if d := g.dist[l.To]; d < infDist && d+1 < b {
				b = d + 1
			}
		}
		if b < infDist {
			g.setBest(u, b)
			if b < minLvl {
				minLvl = b
			}
			if b > maxLvl {
				maxLvl = b
			}
		}
	}
	for d := minLvl; d <= maxLvl && d < len(g.levels); d++ {
		lvl := g.levels[d]
		for i := 0; i < len(lvl); i++ {
			u := lvl[i]
			if g.dist[u] != infDist || g.best[u] != d {
				continue // finalized at a lower level, or a stale entry
			}
			g.dist[u] = d
			for _, li := range g.in[u] {
				l := g.Links[li]
				if !g.usable(l, eclipseOutage) {
					continue
				}
				w := l.From
				// w's eligible-link set changed (u's distance moved), even
				// when w sits outside the orphaned subtree.
				g.touch(w)
				if g.affected[w] && g.dist[w] == infDist && d+1 < g.best[w] {
					g.setBest(w, d+1)
					if d+1 > maxLvl {
						maxLvl = d + 1
					}
				}
			}
		}
		g.levels[d] = lvl[:0]
	}
	for _, u := range aNodes {
		g.affected[u] = false
		g.touch(u)
	}
	for _, u := range g.bestSet {
		g.best[u] = infDist
	}
	g.bestSet = g.bestSet[:0]

	// --- Insertions: every newly usable link is a candidate shortcut for
	// its tail; improvements propagate upstream in distance order. A node
	// whose distance drops also invalidates/creates eligibility on its
	// in-neighbors, so they are touched as the wavefront passes.
	minLvl, maxLvl = infDist, 0
	for _, li := range ups {
		l := g.Links[li]
		u := l.From
		g.touch(u) // a new eligible link may beat the current next[u]
		if dv := g.dist[l.To]; dv < infDist && dv+1 < g.dist[u] && dv+1 < g.best[u] {
			g.setBest(u, dv+1)
			if dv+1 < minLvl {
				minLvl = dv + 1
			}
			if dv+1 > maxLvl {
				maxLvl = dv + 1
			}
		}
	}
	for d := minLvl; d <= maxLvl && d < len(g.levels); d++ {
		lvl := g.levels[d]
		for i := 0; i < len(lvl); i++ {
			u := lvl[i]
			if g.best[u] != d || g.dist[u] <= d {
				continue
			}
			g.dist[u] = d
			g.touch(u)
			for _, li := range g.in[u] {
				l := g.Links[li]
				if !g.usable(l, eclipseOutage) {
					continue
				}
				w := l.From
				g.touch(w)
				if d+1 < g.dist[w] && d+1 < g.best[w] {
					g.setBest(w, d+1)
					if d+1 > maxLvl {
						maxLvl = d + 1
					}
				}
			}
		}
		g.levels[d] = lvl[:0]
	}
	for _, u := range g.bestSet {
		g.best[u] = infDist
	}
	g.bestSet = g.bestSet[:0]

	// Re-derive the canonical next-hop for every touched node.
	for _, u := range g.touchIDs {
		g.next[u] = g.deriveNext(u, eclipseOutage)
		g.touched[u] = false
	}
	g.touchIDs = g.touchIDs[:0]
	return true
}

// adoptState carries the dynamic state (fault clocks, eclipse flags,
// queues, metrics) from the previous epoch's graph into this freshly
// rebuilt one, matching links by (from, to). Links that ceased to exist
// drop their queued segments — the transport layer's timers recover them —
// and the number of segments that vanished this way is returned so the
// driver can attribute the delivery-ratio dip (Result.RebuildDrops).
func (g *Graph) adoptState(old *Graph) (vanishedSegs int) {
	if old == nil {
		return 0
	}
	for i := range g.nodes {
		if i >= len(old.nodes) {
			break
		}
		// Only dynamic state crosses the rebuild; posFrac and geo are
		// structural and belong to the new layout.
		g.nodes[i].Up = old.nodes[i].Up
		g.nodes[i].eclipsed = old.nodes[i].eclipsed
		g.nodes[i].nextFlip = old.nodes[i].nextFlip
	}
	prev := make(map[[2]int]*Link, len(old.Links))
	for _, l := range old.Links {
		prev[l.key()] = l
	}
	for _, l := range g.Links {
		if o, ok := prev[l.key()]; ok {
			l.Up = o.Up
			l.nextFlip = o.nextFlip
			l.q = o.q
			l.qBits = o.qBits
			l.headDone = o.headDone
			l.sentBits = o.sentBits
			l.drops = o.drops
			l.peakQBits = o.peakQBits
			if len(l.q) > 0 {
				g.markBusy(l.ID)
			}
			delete(prev, l.key())
		}
	}
	// Whatever is left in prev had no successor in the new topology; its
	// buffered segments vanish with it.
	for _, o := range prev {
		vanishedSegs += len(o.q)
	}
	return vanishedSegs
}

// linkName renders a link for reports.
func (g *Graph) linkName(l *Link) string {
	from, to := fmt.Sprintf("sat%d", l.From), fmt.Sprintf("sat%d", l.To)
	if g.isSink(l.From) {
		from = fmt.Sprintf("sudc%d", l.From)
	}
	if g.isSink(l.To) {
		to = fmt.Sprintf("sudc%d", l.To)
	}
	return from + "→" + to
}
