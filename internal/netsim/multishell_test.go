package netsim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"spacedc/internal/isl"
	"spacedc/internal/units"
)

// twoShellSpec is the reference 2-shell stack for the structure tests:
// a 9-sat ring at 550 km under a 6-sat ring at 800 km, index-aligned
// cross-links at the default one-pair-per-satellite budget.
func twoShellSpec(kind InterShellKind) TopologySpec {
	return TopologySpec{
		Kind: ClusterTopology, Tech: isl.Optical10G, QueueSec: 1,
		Shells: []ShellSpec{
			{Sats: 9, Cluster: isl.Ring, AltKm: 550},
			{Sats: 6, Cluster: isl.Ring, AltKm: 800},
		},
		InterShell: []InterShellRule{{Kind: kind}},
	}
}

// TestMultiShellGraphStructure pins the multi-shell builder's wiring: node
// population, per-shell sinks and sources, cross-link count, and the
// altitude-derived cross-link latency and capacity derate.
func TestMultiShellGraphStructure(t *testing.T) {
	g, err := BuildGraph(twoShellSpec(InterShellAligned))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(g.nodes), (9+1)+(6+1); got != want {
		t.Errorf("nodes = %d, want %d", got, want)
	}
	if got, want := len(g.Sinks), 2; got != want {
		t.Errorf("sinks = %d, want %d", got, want)
	}
	if got, want := len(g.Sources), 15; got != want {
		t.Errorf("sources = %d, want %d", got, want)
	}
	// Default budget: one pair per satellite of the smaller shell (6), two
	// directed links per pair.
	if got, want := g.CrossShellLinks(), 2*6; got != want {
		t.Errorf("CrossShellLinks = %d, want %d", got, want)
	}
	wantDelay := 250.0 / lightSpeedKmS
	wantCap := float64(isl.Optical10G.Capacity) * interShellRefKm / (interShellRefKm + 250)
	for _, l := range g.Links {
		sameShell := g.nodes[l.From].shell == g.nodes[l.To].shell
		if sameShell {
			if l.CapacityBps != float64(isl.Optical10G.Capacity) {
				t.Fatalf("intra-shell link %d→%d capacity %v, want full %v", l.From, l.To, l.CapacityBps, float64(isl.Optical10G.Capacity))
			}
			continue
		}
		if math.Abs(l.DelaySec-wantDelay) > 1e-15 {
			t.Errorf("cross link %d→%d delay %v, want %v (250 km / c)", l.From, l.To, l.DelaySec, wantDelay)
		}
		if math.Abs(l.CapacityBps-wantCap) > 1e-6 {
			t.Errorf("cross link %d→%d capacity %v, want derated %v", l.From, l.To, l.CapacityBps, wantCap)
		}
	}
	// Routing must reach every source from the sinks across both shells.
	g.recomputeRoutes(true)
	for _, s := range g.Sources {
		if g.next[s] < 0 {
			t.Errorf("source %d unroutable in the multi-shell graph", s)
		}
	}
}

// TestNearestCrossLinksPickClosestPhase asserts the nearest rule's
// geometric contract: every cross-link partner is at minimal circular
// phase distance among the far shell's satellites.
func TestNearestCrossLinksPickClosestPhase(t *testing.T) {
	g, err := BuildGraph(twoShellSpec(InterShellNearest))
	if err != nil {
		t.Fatal(err)
	}
	circ := func(a, b float64) float64 {
		d := math.Abs(a - b)
		if d > 0.5 {
			d = 1 - d
		}
		return d
	}
	// Collect the upper shell's satellite phases.
	var hiPhases []float64
	for _, s := range g.Sources {
		if g.nodes[s].shell == 1 {
			hiPhases = append(hiPhases, g.nodes[s].posFrac)
		}
	}
	checked := 0
	for _, l := range g.Links {
		if g.nodes[l.From].shell != 0 || g.nodes[l.To].shell != 1 {
			continue
		}
		got := circ(g.nodes[l.From].posFrac, g.nodes[l.To].posFrac)
		for _, p := range hiPhases {
			if circ(g.nodes[l.From].posFrac, p) < got-1e-12 {
				t.Errorf("cross link %d→%d skipped a closer partner (dist %v vs %v)",
					l.From, l.To, circ(g.nodes[l.From].posFrac, p), got)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no upward cross links found")
	}
}

// TestSingleShellStackMatchesLegacyPath asserts the subset promise: a
// 1-shell stack runs bit-identically to the same plane through the legacy
// single-shell spec, faults, eclipse sweep and all.
func TestSingleShellStackMatchesLegacyPath(t *testing.T) {
	legacy := Scenario{
		Name: "legacy",
		Topology: TopologySpec{
			Kind: ClusterTopology, Sats: 12, Cluster: isl.Topology{K: 4, Split: 1},
			Tech: isl.Optical10G, LowAltKm: 700,
		},
		PerSat:      800 * units.Mbps,
		SegmentBits: 1e6,
		StepSec:     0.1,
		EpochSec:    20,
		DurationSec: 60,
		WarmupSec:   10,
		Faults:      FaultConfig{LinkOutage: 0.05, LinkMTTRSec: 20, EclipseOutage: true},
		Seed:        11,
	}
	stacked := legacy
	stacked.Name = "legacy"
	stacked.Topology = TopologySpec{
		Kind: ClusterTopology, Tech: isl.Optical10G,
		Shells: []ShellSpec{{Sats: 12, Cluster: isl.Topology{K: 4, Split: 1}, AltKm: 700}},
	}
	a, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(stacked)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("1-shell stack diverged from the legacy single-shell path:\nlegacy:  %+v\nstacked: %+v", a, b)
	}
}

// TestSameAltitudeShellsMatchDisjointPlanes is the scaling identity behind
// the optimizer's DeliveredRate × Planes objective: P equal shells at the
// same altitude, index-aligned, behave exactly like P disconnected copies
// of the single plane — cross links join equal-distance nodes, so the
// canonical router never takes them, and under zero faults every per-plane
// quantity multiplies exactly.
func TestSameAltitudeShellsMatchDisjointPlanes(t *testing.T) {
	const planes = 3
	single := Scenario{
		Name: "plane",
		Topology: TopologySpec{
			Kind: ClusterTopology, Sats: 8, Cluster: isl.Ring,
			Tech: isl.Optical10G, LowAltKm: 650,
		},
		PerSat:      units.Gbps,
		SegmentBits: 1e6,
		StepSec:     0.1,
		EpochSec:    15,
		DurationSec: 40,
		WarmupSec:   5,
		Seed:        5,
	}
	multi := single
	multi.Topology = TopologySpec{Kind: ClusterTopology, Tech: isl.Optical10G}
	for i := 0; i < planes; i++ {
		multi.Topology.Shells = append(multi.Topology.Shells,
			ShellSpec{Sats: 8, Cluster: isl.Ring, AltKm: 650})
		if i > 0 {
			multi.Topology.InterShell = append(multi.Topology.InterShell,
				InterShellRule{Kind: InterShellAligned})
		}
	}
	one, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	all, err := Run(multi)
	if err != nil {
		t.Fatal(err)
	}
	if all.DeliveredSegs != planes*one.DeliveredSegs {
		t.Errorf("DeliveredSegs = %d, want exactly %d× the single plane's %d",
			all.DeliveredSegs, planes, one.DeliveredSegs)
	}
	if all.OfferedSegs != planes*one.OfferedSegs {
		t.Errorf("OfferedSegs = %d, want exactly %d× the single plane's %d",
			all.OfferedSegs, planes, one.OfferedSegs)
	}
	scaled := float64(one.DeliveredRate) * planes
	if rel := math.Abs(float64(all.DeliveredRate)-scaled) / scaled; rel > 1e-12 {
		t.Errorf("DeliveredRate = %v, want %v (%d× single plane), rel err %g",
			all.DeliveredRate, scaled, planes, rel)
	}
}

// TestMultiShellEclipsePerShell asserts each shell gets its own eclipse
// geometry: different altitudes mean different orbital periods and shadow
// fractions in the fault layer.
func TestMultiShellEclipsePerShell(t *testing.T) {
	ts := twoShellSpec(InterShellAligned)
	g, err := BuildGraph(ts)
	if err != nil {
		t.Fatal(err)
	}
	fs := newFaultState(FaultConfig{EclipseOutage: true}, ts, g, nil)
	if len(fs.eclipseFrac) != 2 || len(fs.periodSec) != 2 {
		t.Fatalf("per-shell eclipse tables have %d/%d entries, want 2/2", len(fs.eclipseFrac), len(fs.periodSec))
	}
	if fs.periodSec[0] >= fs.periodSec[1] {
		t.Errorf("orbital periods %v not increasing with altitude", fs.periodSec)
	}
	f0, p0 := eclipseFractionAt(550)
	if fs.eclipseFrac[0] != f0 || fs.periodSec[0] != p0 {
		t.Errorf("shell 0 eclipse geometry %v/%v diverges from eclipseFractionAt(550) = %v/%v",
			fs.eclipseFrac[0], fs.periodSec[0], f0, p0)
	}
}

// TestMultiShellRunBitIdentityIncrementalVsFull extends the end-to-end
// repair guarantee across shell boundaries: a fault-heavy 3-shell run on
// the incremental path must be byte-identical to the full-BFS path.
func TestMultiShellRunBitIdentityIncrementalVsFull(t *testing.T) {
	sc := Scenario{
		Name: "3shell-storm",
		Topology: TopologySpec{
			Kind: ClusterTopology, Tech: isl.Optical10G,
			Shells: []ShellSpec{
				{Sats: 12, Cluster: isl.Topology{K: 4, Split: 2}, AltKm: 550},
				{Sats: 9, Cluster: isl.Ring, AltKm: 800},
				{Sats: 6, Cluster: isl.Ring, AltKm: 1100},
			},
			InterShell: []InterShellRule{
				{Kind: InterShellNearest},
				{Kind: InterShellAligned, CrossLinks: 3},
			},
		},
		PerSat:      500 * units.Mbps,
		SegmentBits: 1e6,
		StepSec:     0.1,
		EpochSec:    20,
		DurationSec: 60,
		WarmupSec:   10,
		Faults: FaultConfig{
			LinkOutage: 0.1, LinkMTTRSec: 10,
			SatMTBFSec: 120, SatMTTRSec: 30,
			EclipseOutage: true,
		},
		Seed: 9,
	}
	inc, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if inc.RouteRepairs == 0 {
		t.Fatal("multi-shell fault storm exercised no incremental repairs")
	}
	full := sc
	full.FullRecompute = true
	ref, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inc, ref) {
		t.Fatalf("multi-shell incremental and full-BFS runs diverged:\nincremental: %+v\nfull:        %+v", inc, ref)
	}
}

// FuzzDesignTopology throws arbitrary shell stacks — adversarial counts,
// non-finite altitudes, degenerate K/split combos, hostile inter-shell
// kinds and budgets — at the design construction paths. The contract:
// either a typed *DesignError comes back, or the spec passes Validate and
// (when small enough to build) produces a routable graph. Never a panic.
func FuzzDesignTopology(f *testing.F) {
	f.Add(2, 9, 6, 4, 550.0, 800.0, 1100.0, 2, 1, 0, 0)
	f.Add(3, 16, 12, 8, 550.0, 800.0, 1050.0, 4, 2, 1, 3)
	f.Add(1, 8, 0, 0, math.NaN(), 0.0, -1.0, 2, 1, 0, 0)
	f.Add(2, 8, 8, 8, math.Inf(1), math.Inf(-1), 1e308, 2, 1, 2, -5)
	f.Add(3, 1<<30, 1<<30, 1<<30, 550.0, 550.0, 550.0, 2, 1, 0, 0)
	f.Add(2, 10, 10, 10, 0.0, 100001.0, 550.0, 6, 1, 1, 11)
	f.Add(2, 24, 24, 0, 550.0, 550.0, 0.0, 1<<40, 1<<40, 0, 0)
	f.Fuzz(func(t *testing.T, nShells, sats0, sats1, sats2 int, alt0, alt1, alt2 float64, k, split, interKind, crossLinks int) {
		n := nShells % 4
		if n < 0 {
			n = -n
		}
		sats := []int{sats0, sats1, sats2}
		alts := []float64{alt0, alt1, alt2}
		var shells []ShellParams
		for i := 0; i < n; i++ {
			shells = append(shells, ShellParams{SatsPerPlane: sats[i], AltKm: alts[i], K: k, Split: split})
		}
		ts, err := DesignShells(shells, InterShellKind(interKind), crossLinks, isl.Optical10G)
		if err != nil {
			var de *DesignError
			if !errors.As(err, &de) {
				t.Fatalf("DesignShells rejected with an untyped error: %v", err)
			}
		} else {
			checkBuildable(t, ts)
		}

		// The single-shell construction path honors the same contract;
		// interKind doubles as a hostile geoSinks value here.
		planes := 1 + n
		ts, err = DesignTopology(planes, sats0, alt0, k, split, interKind, isl.Optical10G)
		if err != nil {
			var de *DesignError
			if !errors.As(err, &de) {
				t.Fatalf("DesignTopology rejected with an untyped error: %v", err)
			}
		} else {
			checkBuildable(t, ts)
		}
	})
}

// checkBuildable asserts an accepted design spec validates, and — when
// small enough to instantiate in a fuzz iteration — builds a graph whose
// routing table derives without panicking.
func checkBuildable(t *testing.T, ts TopologySpec) {
	t.Helper()
	if err := ts.Validate(); err != nil {
		t.Fatalf("accepted design fails Validate: %v (spec %+v)", err, ts)
	}
	total := ts.Sats + ts.GEOSinks + ts.Cluster.Split
	for _, sh := range ts.Shells {
		total += sh.Sats + sh.Cluster.Split
	}
	if total > 20000 {
		return
	}
	g, err := BuildGraph(ts)
	if err != nil {
		t.Fatalf("accepted design fails BuildGraph: %v (spec %+v)", err, ts)
	}
	g.recomputeRoutes(true)
	for _, s := range g.Sinks {
		if g.dist[s] != 0 {
			t.Fatalf("sink %d at distance %d after recompute", s, g.dist[s])
		}
	}
}
