package netsim

import (
	"runtime"
	"sync"
)

// SweepResult pairs one scenario with its outcome.
type SweepResult struct {
	Scenario Scenario
	Result   Result
	Err      error
}

// Sweep executes every scenario across a pool of workers and returns the
// results in input order. workers ≤ 0 means one worker per CPU. Each run
// owns all of its state (graph, RNG, queues), so the only sharing is the
// result slot each worker writes — scenario i's result is independent of
// the worker count, and a single-worker sweep is bit-identical to a
// parallel one.
func Sweep(scenarios []Scenario, workers int) []SweepResult {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	results := make([]SweepResult, len(scenarios))
	if len(scenarios) == 0 {
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r, err := Run(scenarios[i])
				results[i] = SweepResult{Scenario: scenarios[i], Result: r, Err: err}
			}
		}()
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}
