package netsim

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"spacedc/internal/obs"
)

// SweepResult pairs one scenario with its outcome.
type SweepResult struct {
	Scenario Scenario
	Result   Result
	Err      error
}

// Sweep executes every scenario across a pool of workers and returns the
// results in input order. workers ≤ 0 means one worker per CPU. Each run
// owns all of its state (graph, RNG, queues), so the only sharing is the
// result slot each worker writes — scenario i's result is independent of
// the worker count, and a single-worker sweep is bit-identical to a
// parallel one.
func Sweep(scenarios []Scenario, workers int) []SweepResult {
	return SweepObs(scenarios, workers, nil)
}

// SweepObs is Sweep with per-worker observability: each worker records its
// wall-clock run timings into "netsim.sweep.workerNN.run_secs" and its
// completed-run count into "netsim.sweep.workerNN.runs", exposing pool
// imbalance. The registry only times the workers; it is not injected into
// the scenarios (set Scenario.Obs per scenario for in-run metrics). A nil
// registry makes SweepObs identical to Sweep.
func SweepObs(scenarios []Scenario, workers int, reg *obs.Registry) []SweepResult {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	results := make([]SweepResult, len(scenarios))
	if len(scenarios) == 0 {
		return results
	}
	sweepSpan := reg.StartSpan("netsim.sweep")
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var (
				hRun    *obs.Histogram
				ctrRuns *obs.Counter
			)
			if reg != nil {
				hRun = reg.Histogram(fmt.Sprintf("netsim.sweep.worker%02d.run_secs", w), obs.TimeBuckets)
				ctrRuns = reg.Counter(fmt.Sprintf("netsim.sweep.worker%02d.runs", w))
			}
			for i := range jobs {
				var t0 time.Time
				if reg != nil {
					t0 = time.Now()
				}
				r, err := Run(scenarios[i])
				results[i] = SweepResult{Scenario: scenarios[i], Result: r, Err: err}
				if reg != nil {
					hRun.Observe(time.Since(t0).Seconds())
					ctrRuns.Inc()
				}
			}
		}(w)
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	sweepSpan.End()
	return results
}
