package netsim

import (
	"spacedc/internal/obs"
	"spacedc/internal/pool"
)

// SweepResult pairs one scenario with its outcome.
type SweepResult struct {
	Scenario Scenario
	Result   Result
	Err      error
}

// Sweep executes every scenario across the shared worker pool and returns
// the results in input order. workers ≤ 0 means one slot per CPU; workers=1
// runs serially on the caller. Each run owns all of its state (graph, RNG,
// queues), so the only sharing is the result slot each job writes —
// scenario i's result is independent of the worker count, and a single-slot
// sweep is bit-identical to a parallel one. Errors are carried per scenario
// in SweepResult.Err, never aggregated, so a failing scenario stays
// attached to its own grid position.
//
// Because the sweep schedules into pool.Shared(), a Sweep nested inside a
// pooled experiment (the ext-netsim sub-jobs) draws on the same global
// token budget as its sibling experiments instead of oversubscribing the
// machine with a private worker set.
func Sweep(scenarios []Scenario, workers int) []SweepResult {
	return SweepObs(scenarios, workers, nil)
}

// SweepObs is Sweep with per-worker observability: each pool slot records
// its wall-clock run timings into "netsim.sweep.workerNN.run_secs" and its
// completed-run count into "netsim.sweep.workerNN.runs", exposing pool
// imbalance. The registry only times the workers; it is not injected into
// the scenarios (set Scenario.Obs per scenario for in-run metrics). A nil
// registry makes SweepObs identical to Sweep.
func SweepObs(scenarios []Scenario, workers int, reg *obs.Registry) []SweepResult {
	results := make([]SweepResult, len(scenarios))
	if len(scenarios) == 0 {
		return results
	}
	sweepSpan := reg.StartSpan("netsim.sweep")
	pool.MapObs(len(scenarios), workers, reg, "netsim.sweep", func(i int) error {
		r, err := Run(scenarios[i])
		results[i] = SweepResult{Scenario: scenarios[i], Result: r, Err: err}
		return nil
	})
	sweepSpan.End()
	return results
}
