package netsim

import "sort"

// segment is the flow-level unit of transfer: a fixed-size slice of one
// satellite's stream.
type segment struct {
	flow int   // source node ID
	seq  int64 // per-flow sequence number
	bits float64
	// born is the first-transmission time of the original copy; delivery
	// latency is measured from it even across retransmissions.
	born float64
}

// txState tracks one unacknowledged segment at its source.
type txState struct {
	seg      segment
	attempts int
	deadline float64
}

// source is one EO satellite's flow endpoint: it quantizes the generation
// rate into segments and retransmits with exponential backoff until a
// copy reaches a SµDC or the attempt budget runs out.
type source struct {
	node        int
	rateBps     float64
	segmentBits float64
	cfg         TransportConfig

	credit      float64
	seq         int64
	outstanding map[int64]*txState
	// expired is expire's scratch buffer, reused across steps so the
	// deterministic sort below costs no steady-state allocation.
	expired []int64
}

// newSource initializes the endpoint.
func newSource(nodeID int, rateBps, segBits float64, cfg TransportConfig) *source {
	return &source{
		node: nodeID, rateBps: rateBps, segmentBits: segBits, cfg: cfg,
		outstanding: make(map[int64]*txState),
	}
}

// generate accrues dt's worth of data, emits the segments it completes,
// and returns how many. A failed satellite generates nothing (its sensor
// is down with it).
func (s *source) generate(now, dt float64, alive bool, emit func(segment)) int {
	if !alive {
		return 0
	}
	s.credit += s.rateBps * dt
	n := 0
	for s.credit >= s.segmentBits {
		s.credit -= s.segmentBits
		s.seq++
		seg := segment{flow: s.node, seq: s.seq, bits: s.segmentBits, born: now}
		s.outstanding[s.seq] = &txState{seg: seg, attempts: 1, deadline: now + s.cfg.RTOSec}
		emit(seg)
		n++
	}
	return n
}

// ack removes a delivered segment; it reports false for a duplicate (an
// earlier copy already arrived).
func (s *source) ack(seq int64) bool {
	if _, ok := s.outstanding[seq]; !ok {
		return false
	}
	delete(s.outstanding, seq)
	return true
}

// expire retransmits every timed-out segment with exponentially backed-off
// deadlines, abandoning those that exhaust the attempt budget. It returns
// the retransmission and abandonment counts.
//
// Timed-out sequence numbers are collected and sorted before any segment
// is emitted: ranging over the outstanding map directly would enqueue
// retransmissions in randomized map-iteration order whenever two or more
// segments expire in the same step (routine after an outage), silently
// breaking the bit-identical determinism Run and Sweep promise.
func (s *source) expire(now float64, alive bool, emit func(segment)) (retransmits, abandoned int) {
	s.expired = s.expired[:0]
	for seq, tx := range s.outstanding {
		if now >= tx.deadline {
			s.expired = append(s.expired, seq)
		}
	}
	if len(s.expired) == 0 {
		return 0, 0
	}
	sort.Slice(s.expired, func(i, j int) bool { return s.expired[i] < s.expired[j] })
	for _, seq := range s.expired {
		tx := s.outstanding[seq]
		if tx.attempts >= s.cfg.MaxAttempts {
			abandoned++
			delete(s.outstanding, seq)
			continue
		}
		if !alive {
			// The satellite is down; push the timer out one RTO and let
			// recovery retry.
			tx.deadline = now + s.cfg.RTOSec
			continue
		}
		tx.attempts++
		rto := s.cfg.RTOSec
		for i := 1; i < tx.attempts; i++ {
			rto *= s.cfg.Backoff
		}
		tx.deadline = now + rto
		retransmits++
		emit(tx.seg)
	}
	return retransmits, abandoned
}
