package netsim

import (
	"math"
	"sort"
)

// segment is the flow-level unit of transfer: a fixed-size slice of one
// satellite's stream.
type segment struct {
	flow int   // source node ID
	seq  int64 // per-flow sequence number
	bits float64
	// born is the first-transmission time of the original copy; delivery
	// latency is measured from it even across retransmissions.
	born float64
}

// txState tracks one unacknowledged segment at its source.
type txState struct {
	seg      segment
	live     bool // false once acked or abandoned
	attempts int
	deadline float64
}

// source is one EO satellite's flow endpoint: it quantizes the generation
// rate into segments and retransmits with exponential backoff until a
// copy reaches a SµDC or the attempt budget runs out.
type source struct {
	node        int
	rateBps     float64
	segmentBits float64
	cfg         TransportConfig

	credit float64
	seq    int64
	// Outstanding segments live in a sliding-window deque: buf[head:]
	// covers consecutive sequence numbers starting at base, with acked and
	// abandoned entries marked dead until the front of the window pops.
	// Sequence numbers are monotone, so this replaces the old
	// map[int64]txState, whose per-segment insert/delete churn forced the
	// runtime into repeated same-size rehashes — an O(offered segments)
	// allocation pattern under fault-heavy load. The deque reallocates only
	// on genuine window growth, keeping transport bookkeeping
	// allocation-flat at steady state, and it yields timeouts in sequence
	// order for free, which the old map needed a per-step sort to
	// guarantee.
	buf  []txState
	head int
	base int64 // sequence number of buf[head]

	// nextDeadline is a conservative lower bound on the earliest live
	// deadline in the window: expire returns immediately while now is
	// before it, instead of walking every outstanding segment every step.
	// push lowers it on emission and expire re-tightens it on every walk;
	// acks can only raise the true minimum, so the stale bound stays a
	// valid lower bound and at worst costs one extra walk. At constellation
	// scale with deep fault-regime windows this turns the per-step timer
	// scan from O(outstanding) into O(1) on the (vast majority of) steps
	// where nothing times out.
	nextDeadline float64

	// abandoned records, in ascending order, the sequence numbers the
	// timeout path gave up on whose copies may still be in flight. It is
	// what lets ack tell a late arrival of an abandoned segment (no
	// earlier copy ever arrived — not a duplicate) from a true duplicate
	// of a delivered one. An entry is removed when its first copy lands;
	// entries whose copies were all dropped persist for the run, so the
	// record grows with the abandoned count (rare, fault-regime-only) —
	// never with offered load, keeping transport memory-flat.
	abandoned []int64
}

// ackResult classifies what a segment's arrival at a sink meant to its
// source.
type ackResult int

const (
	// ackDelivered: first copy to arrive, segment still outstanding.
	ackDelivered ackResult = iota
	// ackDuplicate: an earlier copy already arrived.
	ackDuplicate
	// ackLateAbandoned: first copy to arrive, but only after the source
	// exhausted the attempt budget and abandoned the segment.
	ackLateAbandoned
)

// newSource initializes the endpoint.
func newSource(nodeID int, rateBps, segBits float64, cfg TransportConfig) *source {
	return &source{node: nodeID, rateBps: rateBps, segmentBits: segBits, cfg: cfg, nextDeadline: math.Inf(1)}
}

// slot returns seq's index in buf, or -1 when seq is outside the window.
func (s *source) slot(seq int64) int {
	if s.head >= len(s.buf) || seq < s.base {
		return -1
	}
	i := s.head + int(seq-s.base)
	if i >= len(s.buf) {
		return -1
	}
	return i
}

// push appends a fresh segment to the window, compacting the dead prefix
// in place once it reaches half the backing array so the append can reuse
// capacity instead of growing it.
func (s *source) push(tx txState) {
	if s.head == len(s.buf) {
		s.buf = s.buf[:0]
		s.head = 0
		s.base = tx.seg.seq
	} else if s.head > 0 && s.head*2 >= len(s.buf) {
		n := copy(s.buf, s.buf[s.head:])
		s.buf = s.buf[:n]
		s.head = 0
	}
	s.buf = append(s.buf, tx)
	if tx.deadline < s.nextDeadline {
		s.nextDeadline = tx.deadline
	}
}

// trim pops dead entries off the front of the window.
func (s *source) trim() {
	for s.head < len(s.buf) && !s.buf[s.head].live {
		s.head++
		s.base++
	}
	if s.head == len(s.buf) {
		s.buf = s.buf[:0]
		s.head = 0
	}
}

// generate accrues dt's worth of data, emits the segments it completes,
// and returns how many. A failed satellite generates nothing (its sensor
// is down with it).
func (s *source) generate(now, dt float64, alive bool, emit func(segment)) int {
	if !alive {
		return 0
	}
	s.credit += s.rateBps * dt
	n := 0
	for s.credit >= s.segmentBits {
		s.credit -= s.segmentBits
		s.seq++
		seg := segment{flow: s.node, seq: s.seq, bits: s.segmentBits, born: now}
		s.push(txState{seg: seg, live: true, attempts: 1, deadline: now + s.cfg.RTOSec})
		emit(seg)
		n++
	}
	return n
}

// ack records a copy's arrival at a sink. The first copy of an
// outstanding segment is a delivery; a copy of a segment the timeout path
// already abandoned is a late-after-abandon arrival (no earlier copy made
// it — the old bool API misfiled these as duplicates once trim popped the
// window slot); anything else is a true duplicate. A late-after-abandon
// arrival consumes the abandoned record, so further copies of the same
// segment count as duplicates of it.
func (s *source) ack(seq int64) ackResult {
	if i := s.slot(seq); i >= 0 && s.buf[i].live {
		s.buf[i].live = false
		s.trim()
		return ackDelivered
	}
	if s.dropAbandoned(seq) {
		return ackLateAbandoned
	}
	return ackDuplicate
}

// noteAbandoned inserts seq into the sorted abandoned record.
func (s *source) noteAbandoned(seq int64) {
	i := sort.Search(len(s.abandoned), func(i int) bool { return s.abandoned[i] >= seq })
	s.abandoned = append(s.abandoned, 0)
	copy(s.abandoned[i+1:], s.abandoned[i:])
	s.abandoned[i] = seq
}

// dropAbandoned reports whether seq is in the abandoned record, removing
// it if so.
func (s *source) dropAbandoned(seq int64) bool {
	i := sort.Search(len(s.abandoned), func(i int) bool { return s.abandoned[i] >= seq })
	if i >= len(s.abandoned) || s.abandoned[i] != seq {
		return false
	}
	s.abandoned = append(s.abandoned[:i], s.abandoned[i+1:]...)
	return true
}

// expire retransmits every timed-out segment with exponentially backed-off
// deadlines, abandoning those that exhaust the attempt budget. It returns
// the retransmission and abandonment counts.
//
// The window stores segments in sequence order, so walking it emits
// retransmissions deterministically — the property Run and Sweep's
// bit-identical promise rests on, which the old map-backed version had to
// restore with a collect-and-sort pass every step.
func (s *source) expire(now float64, alive bool, emit func(segment)) (retransmits, abandoned int) {
	if now < s.nextDeadline {
		return 0, 0
	}
	next := math.Inf(1)
	for i := s.head; i < len(s.buf); i++ {
		tx := &s.buf[i]
		if !tx.live {
			continue
		}
		if now < tx.deadline {
			if tx.deadline < next {
				next = tx.deadline
			}
			continue
		}
		if tx.attempts >= s.cfg.MaxAttempts {
			abandoned++
			tx.live = false
			s.noteAbandoned(tx.seg.seq)
			continue
		}
		if !alive {
			// The satellite is down; push the timer out one RTO and let
			// recovery retry.
			tx.deadline = now + s.cfg.RTOSec
		} else {
			tx.attempts++
			rto := s.cfg.RTOSec
			for a := 1; a < tx.attempts; a++ {
				rto *= s.cfg.Backoff
			}
			tx.deadline = now + rto
			retransmits++
			emit(tx.seg)
		}
		if tx.deadline < next {
			next = tx.deadline
		}
	}
	s.nextDeadline = next
	s.trim()
	return retransmits, abandoned
}
