package netsim

import (
	"math/rand"
	"sort"

	"spacedc/internal/obs"
	"spacedc/internal/stats"
	"spacedc/internal/units"
)

// arrival is a segment in flight on a link, due at the far end after the
// propagation delay.
type arrival struct {
	due float64
	seg segment
	to  int
}

// Run executes one scenario to completion and returns its measurement
// record. Runs are deterministic given the scenario (including its seed)
// and share no mutable state, so many can run concurrently. Observability
// (Scenario.Obs) records alongside the run but never feeds back into it,
// so instrumented and bare runs are bit-identical.
func Run(scenario Scenario) (Result, error) {
	sc := scenario.withDefaults()
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	// Metric handles resolve once here; with Obs == nil every handle is
	// nil and each instrumented site below costs a single nil-check. The
	// loss/recovery counters flush once at the end from the Result fields
	// the simulator already keeps (so they cover the measurement window,
	// like the Result); only the per-step samples pay inside the loop.
	reg := sc.Obs
	runSpan := reg.StartSpan("netsim.run")
	var (
		hQBits = reg.Histogram("netsim.step_queue_bits", obs.SizeBuckets)
		hUtil  = reg.Histogram("netsim.step_utilization", obs.RatioBuckets)
	)
	rng := rand.New(rand.NewSource(sc.Seed))
	g, err := BuildGraph(sc.Topology)
	if err != nil {
		return Result{}, err
	}
	fs := newFaultState(sc.Faults, sc.Topology, g, rng)
	eclipseOutage := sc.Faults.EclipseOutage && sc.Topology.Tech.Optical

	sources := make([]*source, 0, len(g.Sources))
	srcByNode := make(map[int]*source, len(g.Sources))
	for _, id := range g.Sources {
		s := newSource(id, float64(sc.PerSat), sc.SegmentBits, sc.Transport)
		sources = append(sources, s)
		srcByNode[id] = s
	}

	res := Result{Name: sc.Name, MeasuredSec: sc.DurationSec - sc.WarmupSec}
	var (
		offeredBits, deliBits float64
		inflight              []arrival
	)

	// Latency accumulator: a run-local fixed-bucket histogram instead of a
	// per-segment slice keeps fault-heavy runs memory-flat (O(buckets), not
	// O(delivered segments) — retransmission storms used to grow the slice
	// without bound). Mean and max stay exact from the running sum/max; P95
	// is interpolated from the buckets, within one bucket width (~15%) of
	// the sorted-sample value, the same trade sched.Simulate already made.
	// The accumulator is local so runs sharing a registry cannot leak
	// samples into each other's Result; it merges into the registry once at
	// the end, where -metrics runs expose the full distribution.
	lat := obs.NewHistogram(obs.LatencyBuckets)

	// enqueue pushes seg onto nodeID's routed out-link, dropping it when
	// the node is partitioned or the queue is full; the source's timer
	// recovers either loss.
	enqueue := func(nodeID int, seg segment, measure bool) {
		li := g.next[nodeID]
		if li < 0 {
			if measure {
				res.NoRouteDrops++
			}
			return
		}
		l := g.Links[li]
		if l.qBits+seg.bits > l.QueueLimitBits {
			if measure {
				l.drops++
			}
			return
		}
		l.q = append(l.q, seg)
		l.qBits += seg.bits
		g.markBusy(li)
	}

	// handleArrival delivers at a sink or forwards one hop onward.
	handleArrival := func(now float64, a arrival, measure bool) {
		if g.isSink(a.to) {
			src := srcByNode[a.seg.flow]
			switch src.ack(a.seg.seq) {
			case ackDelivered:
				if measure {
					res.DeliveredSegs++
					deliBits += a.seg.bits
					l := now - a.seg.born
					lat.Observe(l)
					if latencyTap != nil {
						latencyTap(l)
					}
				}
			case ackLateAbandoned:
				if measure {
					res.LateAbandoned++
				}
			default:
				if measure {
					res.Duplicates++
				}
			}
			return
		}
		enqueue(a.to, a.seg, measure)
	}

	g.recomputeRoutes(eclipseOutage)
	res.RouteRecomputes++

	steps := int(sc.DurationSec/sc.StepSec + 0.5)
	nextEpoch := sc.EpochSec
	for step := 1; step <= steps; step++ {
		now := float64(step) * sc.StepSec
		measure := now > sc.WarmupSec
		reg.SetTime(now)

		// (1) Topology driver: rebuild the link graph each epoch,
		// carrying queue and fault state across. Links and nodes the new
		// topology introduced draw their first fault-clock transition now.
		rebuilt := false
		if now >= nextEpoch {
			ng, err := BuildGraph(sc.Topology)
			if err != nil {
				return Result{}, err
			}
			if dropped := ng.adoptState(g); measure {
				res.RebuildDrops += dropped
			}
			fs.seed(now, ng)
			g = ng
			res.TopologyRebuilds++
			nextEpoch = nextEpochAfter(nextEpoch, now, sc.EpochSec)
			rebuilt = true
		}

		// (2) Fault layer: MTBF/MTTR processes and the eclipse sweep. All
		// of a step's transitions are batched into the graph's pending
		// usability record before any routing work happens.
		changed := fs.update(now, g, measure, eclipseOutage)

		// (3) Routing: an epoch rebuild always takes the full multi-source
		// BFS; fault transitions between rebuilds take the incremental
		// repair path (unless the FullRecompute validation knob forces the
		// full BFS — both paths produce bit-identical tables and Results).
		if rebuilt {
			g.recomputeRoutes(eclipseOutage)
			res.RouteRecomputes++
		} else if changed {
			res.RouteRecomputes++
			res.RouteRepairs++
			if sc.FullRecompute {
				g.recomputeRoutes(eclipseOutage)
			} else {
				g.repairRoutes(eclipseOutage)
			}
		}

		// (4) Deliver segments whose propagation completed.
		kept := inflight[:0]
		for _, a := range inflight {
			if a.due <= now {
				handleArrival(now, a, measure)
			} else {
				kept = append(kept, a)
			}
		}
		inflight = kept

		// (5) Sources: quantize generation into segments.
		for _, s := range sources {
			n := s.generate(now, sc.StepSec, g.nodes[s.node].Up, func(seg segment) {
				enqueue(s.node, seg, measure)
			})
			if measure {
				res.OfferedSegs += n
				offeredBits += float64(n) * sc.SegmentBits
			}
		}

		// (6) Transport timers: retransmit with exponential backoff.
		for _, s := range sources {
			retx, aband := s.expire(now, g.nodes[s.node].Up, func(seg segment) {
				enqueue(s.node, seg, measure)
			})
			if measure {
				res.Retransmits += retx
				res.Abandoned += aband
			}
		}

		// (7) Link service: each busy, usable link drains up to
		// capacity × dt. Walking the busy set instead of every link makes
		// service O(links carrying traffic); sorting it first restores the
		// ascending-ID order a full scan had, so results are unchanged.
		// Links drained empty (or purged by a satellite failure) leave the
		// set; unusable ones stay, holding their queue for recovery.
		var stepServed, stepCap float64
		sort.Ints(g.busyIDs)
		keptBusy := g.busyIDs[:0]
		for _, li := range g.busyIDs {
			l := g.Links[li]
			if len(l.q) == 0 {
				g.busy[li] = false
				continue
			}
			if !g.usable(l, eclipseOutage) {
				keptBusy = append(keptBusy, li)
				continue
			}
			stepServed += l.serve(now, sc.StepSec, measure, func(seg segment, to int, due float64) {
				inflight = append(inflight, arrival{due: due, seg: seg, to: to})
			})
			if len(l.q) == 0 {
				g.busy[li] = false
			} else {
				keptBusy = append(keptBusy, li)
			}
		}
		g.busyIDs = keptBusy

		// (8) Metrics: sample queue depths. Only busy links can move their
		// peak (everything else holds qBits == 0), so the sample walks the
		// busy set too. The utilization denominator — the full usable
		// capacity — is instrumented-only and pays the one whole-link scan.
		if measure {
			for _, li := range g.busyIDs {
				if l := g.Links[li]; l.qBits > l.peakQBits {
					l.peakQBits = l.qBits
				}
			}
		}
		if reg != nil {
			var qb float64
			for _, li := range g.busyIDs {
				qb += g.Links[li].qBits
			}
			for _, l := range g.Links {
				if g.usable(l, eclipseOutage) {
					stepCap += l.CapacityBps * sc.StepSec
				}
			}
			hQBits.Observe(qb)
			if stepCap > 0 {
				hUtil.Observe(stepServed / stepCap)
				reg.Emit("netsim.util", "sample", stepServed/stepCap)
			}
			reg.Emit("netsim.queue_bits", "sample", qb)
		}
	}

	res.FaultEvents = fs.Events
	res.OfferedRate = units.DataRate(offeredBits / res.MeasuredSec)
	res.DeliveredRate = units.DataRate(deliBits / res.MeasuredSec)
	if offeredBits > 0 {
		res.DeliveryRatio = deliBits / offeredBits
	}
	res.LatencySec = stats.Summary{
		Count: int(lat.Count()),
		Mean:  lat.Mean(),
		P95:   lat.Quantile(0.95),
		Max:   lat.Max(),
	}
	res.finalizeLinks(g)
	if reg != nil {
		reg.SetTime(sc.DurationSec)
		reg.Histogram("netsim.segment_latency_secs", obs.LatencyBuckets).Merge(lat)
		reg.Counter("netsim.delivered_segs").Add(res.DeliveredSegs)
		reg.Counter("netsim.duplicates").Add(res.Duplicates)
		reg.Counter("netsim.late_abandoned").Add(res.LateAbandoned)
		reg.Counter("netsim.retransmits").Add(res.Retransmits)
		reg.Counter("netsim.abandoned").Add(res.Abandoned)
		reg.Counter("netsim.noroute_drops").Add(res.NoRouteDrops)
		reg.Counter("netsim.link_drops").Add(res.LinkDrops)
		reg.Counter("netsim.rebuild_drops").Add(res.RebuildDrops)
		reg.Counter("netsim.fault_events").Add(res.FaultEvents)
		reg.Counter("netsim.route_recomputes").Add(res.RouteRecomputes)
		reg.Counter("netsim.route_repairs").Add(res.RouteRepairs)
		reg.Counter("netsim.topology_rebuilds").Add(res.TopologyRebuilds)
		reg.Gauge("netsim.delivery_ratio").Set(res.DeliveryRatio)
		reg.Gauge("netsim.bottleneck_util").Set(res.BottleneckUtil)
	}
	runSpan.End()
	return res, nil
}

// serve drains up to capacity × dt bits from the FIFO head, handing each
// completed segment to deliver with its propagation due time. Partial
// service persists in headDone across steps. It returns the bits actually
// served this step (independent of the measurement window).
//
// Completed segments are popped by compacting the queue in place after the
// drain loop rather than re-slicing the head forward: advancing the base
// pointer shrinks the usable capacity, so the next enqueue burst
// reallocated the whole backing array — an O(segments) allocation pattern
// over fault-heavy runs. Compaction reuses the array, keeping steady-state
// service allocation-free.
func (l *Link) serve(now, dt float64, measure bool, deliver func(seg segment, to int, due float64)) float64 {
	budget := l.CapacityBps * dt
	served := 0.0
	popped := 0
	for budget > 0 && popped < len(l.q) {
		head := l.q[popped]
		need := head.bits - l.headDone
		if need > budget {
			l.headDone += budget
			served += budget
			budget = 0
			break
		}
		budget -= need
		served += need
		popped++
		l.qBits -= head.bits
		if l.qBits < 0 {
			l.qBits = 0
		}
		l.headDone = 0
		if measure {
			l.sentBits += head.bits
		}
		deliver(head, l.To, now+l.DelaySec)
	}
	if popped > 0 {
		l.q = l.q[:copy(l.q, l.q[popped:])]
	}
	return served
}

// nextEpochAfter returns the first epoch boundary strictly after now,
// advancing from the current boundary. Looping the catch-up (rather than
// a single += epochSec) keeps the driver's invariant nextEpoch > now even
// when one step spans several epochs (StepSec > EpochSec): a single
// increment would let nextEpoch fall permanently behind the clock, leaving
// the driver rebuilding on every subsequent step regardless of the
// configured epoch cadence.
func nextEpochAfter(nextEpoch, now, epochSec float64) float64 {
	for nextEpoch <= now {
		nextEpoch += epochSec
	}
	return nextEpoch
}

// latencyTap, when set by a test, receives every measured segment's exact
// delivery latency. It exists so accuracy tests can compare the
// bucket-derived Result.LatencySec against an exact stats.Summarize of the
// same samples; production code never sets it.
var latencyTap func(latencySec float64)
