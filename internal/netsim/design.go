package netsim

import (
	"fmt"

	"spacedc/internal/isl"
)

// MaxDesignNodes caps the node population a design-space candidate may
// instantiate. The optimizer proposes constellations mechanically; without
// a ceiling a mutated planes×sats-per-plane pair can silently overflow or
// ask the simulator for a multi-million-node graph mid-search.
const MaxDesignNodes = 1 << 20

// DesignError is the typed rejection for structurally invalid candidate
// designs. Candidate evaluation must distinguish "this design is
// impossible" (skip it, never score it) from an internal simulator fault,
// so the construction path returns *DesignError for the former.
type DesignError struct {
	// Field names the design axis that failed validation.
	Field string
	// Reason says why.
	Reason string
}

func (e *DesignError) Error() string {
	return fmt.Sprintf("netsim: invalid design: %s: %s", e.Field, e.Reason)
}

func designErrf(field, format string, args ...any) *DesignError {
	return &DesignError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// DesignTopology builds the per-plane TopologySpec for one candidate
// constellation design, validating the planes×sats-per-plane bounds and
// the ISL budget before any graph exists. It is the construction path the
// design-space optimizer evaluates candidates through; unlike the serving
// layer's lenient spec decoding (which clamps a zero K to a ring), it
// REJECTS degenerate designs with a *DesignError. A zero-ISL-budget
// design (k = 0) would otherwise build an empty-fabric graph that ships
// nothing and — at zero marginal cost — scores an infinite
// goodput-per-dollar objective, silently winning the search.
//
// Cluster designs set geoSinks = 0; GEO-star designs set k = 0, split = 0
// and geoSinks ≥ 1. The returned spec describes ONE plane of the design
// (the in-plane cluster formation is per-plane; a GEO star serves each
// plane's block of satellites through its shared sinks), so callers scale
// per-plane results by the plane count.
func DesignTopology(planes, satsPerPlane int, altKm float64, k, split, geoSinks int, tech isl.LinkTech) (TopologySpec, error) {
	if planes < 1 {
		return TopologySpec{}, designErrf("planes", "need ≥ 1, got %d", planes)
	}
	if satsPerPlane < 1 {
		return TopologySpec{}, designErrf("sats-per-plane", "need ≥ 1, got %d", satsPerPlane)
	}
	// Overflow-safe population bound: check with division before
	// multiplying.
	if satsPerPlane > MaxDesignNodes/planes {
		return TopologySpec{}, designErrf("planes×sats-per-plane",
			"%d×%d exceeds the %d-node design ceiling", planes, satsPerPlane, MaxDesignNodes)
	}
	if !(altKm > 0) || altKm > 100e3 {
		return TopologySpec{}, designErrf("altitude", "need 0 < alt ≤ 100000 km, got %v", altKm)
	}
	if tech.Capacity <= 0 {
		return TopologySpec{}, designErrf("link-tech", "non-positive capacity %v", tech.Capacity)
	}

	geo := geoSinks > 0
	if geo {
		if k != 0 || split != 0 {
			return TopologySpec{}, designErrf("topology",
				"GEO-star design cannot also carry a cluster fabric (k=%d split=%d)", k, split)
		}
		return TopologySpec{
			Kind:     GEOStarTopology,
			Sats:     satsPerPlane, // per-plane block; sinks are shared
			Tech:     tech,
			GEOSinks: geoSinks,
			LowAltKm: altKm,
		}, nil
	}

	// Cluster design: the ISL budget must buy a real fabric. k = 0 is the
	// zero-ISL-budget degenerate case this path exists to reject.
	if k < 2 || k%2 != 0 {
		return TopologySpec{}, designErrf("isl-budget",
			"cluster fabric needs an even receiver fan-in K ≥ 2, got %d (a zero-ISL design ships nothing)", k)
	}
	if split < 1 {
		return TopologySpec{}, designErrf("split", "need ≥ 1 SµDC per plane, got %d", split)
	}
	// Division form: k·split can overflow for adversarial values.
	if split > satsPerPlane/k {
		return TopologySpec{}, designErrf("sats-per-plane",
			"%d satellites cannot populate %d sinks × %d receivers", satsPerPlane, split, k)
	}
	return TopologySpec{
		Kind:     ClusterTopology,
		Sats:     satsPerPlane,
		Cluster:  isl.Topology{K: k, Split: split},
		Tech:     tech,
		LowAltKm: altKm,
	}, nil
}

// ShellParams is one shell of a multi-shell candidate design, in the
// vocabulary the optimizer mutates: per-plane satellite population, shell
// altitude, and the intra-shell ISL budget.
type ShellParams struct {
	SatsPerPlane int
	AltKm        float64
	K            int
	Split        int
}

// DesignShells builds the per-plane multi-shell TopologySpec for a
// candidate shell stack, applying DesignTopology's cluster checks to every
// shell plus the stack-level bounds (cumulative node ceiling, cross-link
// budget within the smaller shell). Like DesignTopology it REJECTS
// degenerate stacks with a typed *DesignError — never a panic and never a
// spec whose Validate would fail — which the fuzz suite pins down against
// adversarial counts and non-finite altitudes. All shells share the inter
// rule and crossLinks budget (0 = one pair per satellite of the smaller
// shell of each adjacent pair).
func DesignShells(shells []ShellParams, inter InterShellKind, crossLinks int, tech isl.LinkTech) (TopologySpec, error) {
	if len(shells) < 1 {
		return TopologySpec{}, designErrf("shells", "need ≥ 1 shell, got %d", len(shells))
	}
	if tech.Capacity <= 0 {
		return TopologySpec{}, designErrf("link-tech", "non-positive capacity %v", tech.Capacity)
	}
	if inter != InterShellAligned && inter != InterShellNearest {
		return TopologySpec{}, designErrf("inter-shell", "unknown rule kind %d", int(inter))
	}
	if crossLinks < 0 {
		return TopologySpec{}, designErrf("cross-links", "need ≥ 0, got %d", crossLinks)
	}
	ts := TopologySpec{Kind: ClusterTopology, Tech: tech}
	totalNodes := 0
	for i, sh := range shells {
		field := fmt.Sprintf("shell[%d]", i)
		if sh.SatsPerPlane < 1 {
			return TopologySpec{}, designErrf(field+".sats-per-plane", "need ≥ 1, got %d", sh.SatsPerPlane)
		}
		// Per-shell cap before accumulating, so adversarial counts near
		// MaxInt cannot overflow the running total below.
		if sh.SatsPerPlane > MaxDesignNodes {
			return TopologySpec{}, designErrf(field+".sats-per-plane",
				"%d exceeds the %d-node design ceiling", sh.SatsPerPlane, MaxDesignNodes)
		}
		if !(sh.AltKm > 0) || sh.AltKm > 100e3 {
			return TopologySpec{}, designErrf(field+".altitude", "need 0 < alt ≤ 100000 km, got %v", sh.AltKm)
		}
		if sh.K < 2 || sh.K%2 != 0 {
			return TopologySpec{}, designErrf(field+".isl-budget",
				"cluster fabric needs an even receiver fan-in K ≥ 2, got %d", sh.K)
		}
		if sh.Split < 1 {
			return TopologySpec{}, designErrf(field+".split", "need ≥ 1 SµDC per plane, got %d", sh.Split)
		}
		if sh.Split > sh.SatsPerPlane/sh.K {
			return TopologySpec{}, designErrf(field+".sats-per-plane",
				"%d satellites cannot populate %d sinks × %d receivers", sh.SatsPerPlane, sh.Split, sh.K)
		}
		totalNodes += sh.SatsPerPlane + sh.Split
		if totalNodes > MaxDesignNodes {
			return TopologySpec{}, designErrf("shells",
				"stack exceeds the %d-node design ceiling at shell %d", MaxDesignNodes, i)
		}
		ts.Shells = append(ts.Shells, ShellSpec{
			Sats:    sh.SatsPerPlane,
			Cluster: isl.Topology{K: sh.K, Split: sh.Split},
			AltKm:   sh.AltKm,
		})
	}
	for i := 0; i+1 < len(shells); i++ {
		minSats := shells[i].SatsPerPlane
		if shells[i+1].SatsPerPlane < minSats {
			minSats = shells[i+1].SatsPerPlane
		}
		if crossLinks > minSats {
			return TopologySpec{}, designErrf("cross-links",
				"budget %d exceeds the %d satellites of the smaller shell in pair %d–%d",
				crossLinks, minSats, i, i+1)
		}
		ts.InterShell = append(ts.InterShell, InterShellRule{Kind: inter, CrossLinks: crossLinks})
	}
	return ts, nil
}
