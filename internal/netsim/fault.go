package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// eclipseEpoch anchors the eclipse geometry near an equinox, matching the
// experiments package's reference epoch.
var eclipseEpoch = time.Date(2026, 3, 20, 0, 0, 0, 0, time.UTC)

// FaultConfig describes the failure regime injected into a run.
type FaultConfig struct {
	// LinkOutage is the stationary fraction of time each directed link is
	// independently down from pointing loss (0 disables the process).
	LinkOutage float64
	// LinkMTTRSec is the mean re-acquisition time after a pointing loss.
	// Zero means 30 s (an optical terminal's reacquisition scale).
	LinkMTTRSec float64
	// SatMTBFSec is the mean time between whole-satellite failures
	// (0 disables them). A failed satellite neither generates nor relays,
	// and its buffered segments are lost.
	SatMTBFSec float64
	// SatMTTRSec is the mean satellite recovery time. Zero means 120 s.
	SatMTTRSec float64
	// EclipseOutage drops optical links while either endpoint satellite
	// is inside the Earth-shadow arc that sweeps the plane once per
	// orbit — the pointing-loss-from-thermal-snap regime.
	EclipseOutage bool
}

// withDefaults fills zero repair times.
func (fc FaultConfig) withDefaults() FaultConfig {
	if fc.LinkMTTRSec == 0 {
		fc.LinkMTTRSec = 30
	}
	if fc.SatMTTRSec == 0 {
		fc.SatMTTRSec = 120
	}
	return fc
}

// Validate checks the regime.
func (fc FaultConfig) Validate() error {
	if fc.LinkOutage < 0 || fc.LinkOutage >= 1 {
		return fmt.Errorf("netsim: link outage fraction %v outside [0,1)", fc.LinkOutage)
	}
	if fc.LinkMTTRSec < 0 || fc.SatMTBFSec < 0 || fc.SatMTTRSec < 0 {
		return fmt.Errorf("netsim: negative MTBF/MTTR")
	}
	return nil
}

// linkMTBF derives the mean up-time that yields the configured stationary
// outage fraction: down/(up+down) = f ⇒ up = MTTR·(1−f)/f.
func (fc FaultConfig) linkMTBF() float64 {
	if fc.LinkOutage <= 0 {
		return math.Inf(1)
	}
	return fc.LinkMTTRSec * (1 - fc.LinkOutage) / fc.LinkOutage
}

// expSample draws an exponential holding time with the given mean.
func expSample(rng *rand.Rand, mean float64) float64 {
	if math.IsInf(mean, 1) {
		return math.Inf(1)
	}
	return rng.ExpFloat64() * mean
}

// faultState runs the MTBF/MTTR processes and the eclipse sweep over a
// graph.
type faultState struct {
	cfg     FaultConfig
	rng     *rand.Rand
	optical bool
	// eclipse sweep geometry, indexed by shell: the fraction of each
	// shell's plane in shadow and the period of one sweep. Single-shell
	// specs get one entry. anyEclipse is false when every fraction is 0,
	// disabling the sweep.
	eclipseFrac []float64
	periodSec   []float64
	anyEclipse  bool
	// nextEclipse is the earliest time any node can cross the shadow-arc
	// boundary, derived in closed form from the sweep geometry on every
	// scan. updateEclipse skips its O(nodes) phase scan entirely until
	// then, making the sweep event-driven; zero forces a scan (initially
	// and after every epoch rebuild, whose fresh layout invalidates the
	// bound).
	nextEclipse float64
	// Events counts state transitions (for the run report).
	Events int

	// linkClock and nodeClock index the fault processes by next transition
	// time, so update pops exactly the links and satellites due this step
	// instead of scanning the whole population every step — O(transitions
	// log n) against the old O(links + sats) per step. Due entries are
	// processed in ascending ID order, the order the scan visited them, so
	// the RNG draw sequence (and therefore every Result) is unchanged.
	// seed rebuilds both heaps, re-indexing the population after an epoch
	// rebuild. due is the reused pop buffer.
	linkClock flipHeap
	nodeClock flipHeap
	due       []int
}

// flipEntry is one fault process in a flipHeap: the entity's ID and its
// next transition time.
type flipEntry struct {
	t  float64
	id int
}

// flipHeap is a binary min-heap of fault clocks ordered by transition
// time (ties by ID, for a deterministic pop order).
type flipHeap []flipEntry

func (h flipHeap) less(i, j int) bool {
	return h[i].t < h[j].t || (h[i].t == h[j].t && h[i].id < h[j].id)
}

// push inserts a clock.
func (h *flipHeap) push(e flipEntry) {
	*h = append(*h, e)
	q := *h
	for i := len(q) - 1; i > 0; {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

// popDue appends to due the ID of every clock with a transition at or
// before now, removing those clocks from the heap.
func (h *flipHeap) popDue(now float64, due []int) []int {
	q := *h
	for len(q) > 0 && q[0].t <= now {
		due = append(due, q[0].id)
		n := len(q) - 1
		q[0] = q[n]
		q = q[:n]
		for i := 0; ; {
			c := 2*i + 1
			if c >= n {
				break
			}
			if c+1 < n && q.less(c+1, c) {
				c++
			}
			if !q.less(c, i) {
				break
			}
			q[i], q[c] = q[c], q[i]
			i = c
		}
	}
	*h = q
	return due
}

// newFaultState seeds the processes over g: every link and satellite draws
// its first transition time.
func newFaultState(cfg FaultConfig, ts TopologySpec, g *Graph, rng *rand.Rand) *faultState {
	fs := &faultState{cfg: cfg, rng: rng, optical: ts.Tech.Optical}
	if cfg.EclipseOutage {
		for _, alt := range ts.shellAltsKm() {
			frac, period := eclipseFractionAt(alt)
			fs.eclipseFrac = append(fs.eclipseFrac, frac)
			fs.periodSec = append(fs.periodSec, period)
			if frac > 0 {
				fs.anyEclipse = true
			}
		}
	}
	fs.seed(0, g)
	return fs
}

// seed draws a first transition time for every link and tracked satellite
// whose fault clock is still unset (+Inf): the whole population at t = 0,
// and, after an epoch rebuild, exactly the links and nodes the new
// topology introduced. Without the adoption-time draw, a link whose
// (from,to) key has no match in the previous epoch's graph would keep
// nextFlip = +Inf and be immortal under LinkOutage.
func (fs *faultState) seed(t float64, g *Graph) {
	fs.nextEclipse = 0
	fs.linkClock = fs.linkClock[:0]
	fs.nodeClock = fs.nodeClock[:0]
	if fs.cfg.LinkOutage > 0 {
		mtbf := fs.cfg.linkMTBF()
		for _, l := range g.Links {
			if math.IsInf(l.nextFlip, 1) {
				l.nextFlip = t + expSample(fs.rng, mtbf)
			}
			fs.linkClock.push(flipEntry{t: l.nextFlip, id: l.ID})
		}
	}
	if fs.cfg.SatMTBFSec > 0 {
		for _, s := range g.Sources {
			n := &g.nodes[s]
			if math.IsInf(n.nextFlip, 1) {
				n.nextFlip = t + expSample(fs.rng, fs.cfg.SatMTBFSec)
			}
			fs.nodeClock.push(flipEntry{t: n.nextFlip, id: s})
		}
	}
}

// update advances every fault process to time t and returns whether any
// link or node changed state (the routing table must then be updated). All
// transitions of a step — link flips, satellite flips, and the eclipse
// sweep — are applied as one batch: each mutation first records the
// affected links' pre-batch usability into the graph's pending batch
// (noteLink/noteNode), and the caller folds the whole batch into the
// routing table with a single repairRoutes (or full recompute) instead of
// one per transition. A failed satellite loses the segments buffered on
// its outgoing links; those losses count as drops only inside the
// measurement window.
func (fs *faultState) update(t float64, g *Graph, measure, eclipseOutage bool) bool {
	changed := false
	if fs.cfg.LinkOutage > 0 {
		fs.due = fs.linkClock.popDue(t, fs.due[:0])
		sort.Ints(fs.due)
		mtbf := fs.cfg.linkMTBF()
		for _, id := range fs.due {
			l := g.Links[id]
			g.noteLink(id, eclipseOutage)
			for t >= l.nextFlip {
				l.Up = !l.Up
				fs.Events++
				changed = true
				if l.Up {
					l.nextFlip += expSample(fs.rng, mtbf)
				} else {
					l.nextFlip += expSample(fs.rng, fs.cfg.LinkMTTRSec)
				}
			}
			fs.linkClock.push(flipEntry{t: l.nextFlip, id: id})
		}
	}
	if fs.cfg.SatMTBFSec > 0 {
		fs.due = fs.nodeClock.popDue(t, fs.due[:0])
		sort.Ints(fs.due)
		for _, s := range fs.due {
			n := &g.nodes[s]
			g.noteNode(s, eclipseOutage)
			for t >= n.nextFlip {
				n.Up = !n.Up
				fs.Events++
				changed = true
				if n.Up {
					n.nextFlip += expSample(fs.rng, fs.cfg.SatMTBFSec)
				} else {
					n.nextFlip += expSample(fs.rng, fs.cfg.SatMTTRSec)
					for _, li := range g.out[s] {
						g.Links[li].clearQueue(measure)
					}
				}
			}
			fs.nodeClock.push(flipEntry{t: n.nextFlip, id: s})
		}
	}
	if fs.anyEclipse && fs.optical {
		changed = fs.updateEclipse(t, g, eclipseOutage) || changed
	}
	return changed
}

// updateEclipse moves the shadow arc: satellite p is eclipsed while its
// orbital phase frac(t/P + posFrac) lies inside [0, eclipseFrac), with P
// and the fraction taken from the node's own shell — each shell's arc
// sweeps at its own orbital rate. Each scan also computes, per node, the
// time of its next boundary crossing (entry at phase 1→0, exit at phase
// eclipseFrac) and records the minimum, so the steps between crossings —
// the overwhelming majority at a 0.1 s resolution against a ~95-minute
// sweep — skip the scan in O(1).
func (fs *faultState) updateEclipse(t float64, g *Graph, eclipseOutage bool) bool {
	if t < fs.nextEclipse {
		return false
	}
	changed := false
	next := math.Inf(1)
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.geo || n.shell >= len(fs.eclipseFrac) {
			continue
		}
		frac, period := fs.eclipseFrac[n.shell], fs.periodSec[n.shell]
		if frac <= 0 {
			continue
		}
		phase := math.Mod(t/period+n.posFrac, 1)
		ecl := phase < frac
		if ecl != n.eclipsed {
			g.noteNode(i, eclipseOutage)
			n.eclipsed = ecl
			fs.Events++
			changed = true
		}
		boundary := 1.0
		if ecl {
			boundary = frac
		}
		if flip := t + (boundary-phase)*period; flip < next {
			next = flip
		}
	}
	fs.nextEclipse = next
	return changed
}

// clearQueue discards everything buffered on the link, counting the loss
// when it falls inside the measurement window.
func (l *Link) clearQueue(measure bool) {
	if measure {
		l.drops += len(l.q)
	}
	l.q = nil
	l.qBits = 0
	l.headDone = 0
}
