package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// eclipseEpoch anchors the eclipse geometry near an equinox, matching the
// experiments package's reference epoch.
var eclipseEpoch = time.Date(2026, 3, 20, 0, 0, 0, 0, time.UTC)

// FaultConfig describes the failure regime injected into a run.
type FaultConfig struct {
	// LinkOutage is the stationary fraction of time each directed link is
	// independently down from pointing loss (0 disables the process).
	LinkOutage float64
	// LinkMTTRSec is the mean re-acquisition time after a pointing loss.
	// Zero means 30 s (an optical terminal's reacquisition scale).
	LinkMTTRSec float64
	// SatMTBFSec is the mean time between whole-satellite failures
	// (0 disables them). A failed satellite neither generates nor relays,
	// and its buffered segments are lost.
	SatMTBFSec float64
	// SatMTTRSec is the mean satellite recovery time. Zero means 120 s.
	SatMTTRSec float64
	// EclipseOutage drops optical links while either endpoint satellite
	// is inside the Earth-shadow arc that sweeps the plane once per
	// orbit — the pointing-loss-from-thermal-snap regime.
	EclipseOutage bool
}

// withDefaults fills zero repair times.
func (fc FaultConfig) withDefaults() FaultConfig {
	if fc.LinkMTTRSec == 0 {
		fc.LinkMTTRSec = 30
	}
	if fc.SatMTTRSec == 0 {
		fc.SatMTTRSec = 120
	}
	return fc
}

// Validate checks the regime.
func (fc FaultConfig) Validate() error {
	if fc.LinkOutage < 0 || fc.LinkOutage >= 1 {
		return fmt.Errorf("netsim: link outage fraction %v outside [0,1)", fc.LinkOutage)
	}
	if fc.LinkMTTRSec < 0 || fc.SatMTBFSec < 0 || fc.SatMTTRSec < 0 {
		return fmt.Errorf("netsim: negative MTBF/MTTR")
	}
	return nil
}

// linkMTBF derives the mean up-time that yields the configured stationary
// outage fraction: down/(up+down) = f ⇒ up = MTTR·(1−f)/f.
func (fc FaultConfig) linkMTBF() float64 {
	if fc.LinkOutage <= 0 {
		return math.Inf(1)
	}
	return fc.LinkMTTRSec * (1 - fc.LinkOutage) / fc.LinkOutage
}

// expSample draws an exponential holding time with the given mean.
func expSample(rng *rand.Rand, mean float64) float64 {
	if math.IsInf(mean, 1) {
		return math.Inf(1)
	}
	return rng.ExpFloat64() * mean
}

// faultState runs the MTBF/MTTR processes and the eclipse sweep over a
// graph.
type faultState struct {
	cfg     FaultConfig
	rng     *rand.Rand
	optical bool
	// eclipse sweep geometry: the fraction of the plane in shadow and the
	// period of one sweep. eclipseFrac == 0 disables the sweep.
	eclipseFrac float64
	periodSec   float64
	// Events counts state transitions (for the run report).
	Events int
}

// newFaultState seeds the processes over g: every link and satellite draws
// its first transition time.
func newFaultState(cfg FaultConfig, ts TopologySpec, g *Graph, rng *rand.Rand) *faultState {
	fs := &faultState{cfg: cfg, rng: rng, optical: ts.Tech.Optical}
	if cfg.EclipseOutage {
		fs.eclipseFrac, fs.periodSec = ts.eclipseFraction()
	}
	fs.seed(0, g)
	return fs
}

// seed draws a first transition time for every link and tracked satellite
// whose fault clock is still unset (+Inf): the whole population at t = 0,
// and, after an epoch rebuild, exactly the links and nodes the new
// topology introduced. Without the adoption-time draw, a link whose
// (from,to) key has no match in the previous epoch's graph would keep
// nextFlip = +Inf and be immortal under LinkOutage.
func (fs *faultState) seed(t float64, g *Graph) {
	if fs.cfg.LinkOutage > 0 {
		mtbf := fs.cfg.linkMTBF()
		for _, l := range g.Links {
			if math.IsInf(l.nextFlip, 1) {
				l.nextFlip = t + expSample(fs.rng, mtbf)
			}
		}
	}
	if fs.cfg.SatMTBFSec > 0 {
		for _, s := range g.Sources {
			n := &g.nodes[s]
			if math.IsInf(n.nextFlip, 1) {
				n.nextFlip = t + expSample(fs.rng, fs.cfg.SatMTBFSec)
			}
		}
	}
}

// update advances every fault process to time t and returns whether any
// link or node changed state (routing must then be recomputed). A failed
// satellite loses the segments buffered on its outgoing links; those
// losses count as drops only inside the measurement window.
func (fs *faultState) update(t float64, g *Graph, measure bool) bool {
	changed := false
	if fs.cfg.LinkOutage > 0 {
		mtbf := fs.cfg.linkMTBF()
		for _, l := range g.Links {
			for t >= l.nextFlip {
				l.Up = !l.Up
				fs.Events++
				changed = true
				if l.Up {
					l.nextFlip += expSample(fs.rng, mtbf)
				} else {
					l.nextFlip += expSample(fs.rng, fs.cfg.LinkMTTRSec)
				}
			}
		}
	}
	if fs.cfg.SatMTBFSec > 0 {
		for _, s := range g.Sources {
			n := &g.nodes[s]
			for t >= n.nextFlip {
				n.Up = !n.Up
				fs.Events++
				changed = true
				if n.Up {
					n.nextFlip += expSample(fs.rng, fs.cfg.SatMTBFSec)
				} else {
					n.nextFlip += expSample(fs.rng, fs.cfg.SatMTTRSec)
					for _, li := range g.out[s] {
						g.Links[li].clearQueue(measure)
					}
				}
			}
		}
	}
	if fs.eclipseFrac > 0 && fs.optical {
		changed = fs.updateEclipse(t, g) || changed
	}
	return changed
}

// updateEclipse moves the shadow arc: satellite p is eclipsed while its
// orbital phase frac(t/P + posFrac) lies inside [0, eclipseFrac).
func (fs *faultState) updateEclipse(t float64, g *Graph) bool {
	changed := false
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.geo {
			continue
		}
		phase := math.Mod(t/fs.periodSec+n.posFrac, 1)
		ecl := phase < fs.eclipseFrac
		if ecl != n.eclipsed {
			n.eclipsed = ecl
			fs.Events++
			changed = true
		}
	}
	return changed
}

// clearQueue discards everything buffered on the link, counting the loss
// when it falls inside the measurement window.
func (l *Link) clearQueue(measure bool) {
	if measure {
		l.drops += len(l.q)
	}
	l.q = nil
	l.qBits = 0
	l.headDone = 0
}
