package netsim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"spacedc/internal/isl"
	"spacedc/internal/obs"
)

// heavyFaultScenario exercises every nondeterminism-prone code path at
// once: link outages (retransmission timers firing in bulk), satellite
// churn (queue purges, reroutes), the eclipse sweep over optical links,
// and epoch rebuilds carrying fault state across graphs.
func heavyFaultScenario() Scenario {
	sc := ringScenario(8)
	sc.Name = "test-determinism"
	sc.Topology.Tech = isl.Optical10G
	sc.Faults = FaultConfig{
		LinkOutage:    0.2,
		LinkMTTRSec:   5,
		SatMTBFSec:    60,
		SatMTTRSec:    30,
		EclipseOutage: true,
	}
	sc.DurationSec = 120
	sc.WarmupSec = 20
	sc.EpochSec = 30 // several rebuilds per run
	sc.Seed = 42
	return sc
}

// TestRunBitIdenticalAcrossRepeats is the regression test for the
// transport expire path: iterating the outstanding-segment map directly
// made the retransmission order follow Go's randomized map order, so a
// fault-heavy run produced a different Result on every execution. The
// sorted-expiry fix makes every repetition bit-identical.
func TestRunBitIdenticalAcrossRepeats(t *testing.T) {
	sc := heavyFaultScenario()
	first, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if first.Retransmits == 0 || first.FaultEvents == 0 {
		t.Fatalf("scenario not fault-heavy enough to exercise the expire path: %+v", first)
	}
	for i := 1; i < 10; i++ {
		r, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, r) {
			t.Fatalf("run %d diverged from run 0:\nfirst: %+v\n  got: %+v", i, first, r)
		}
	}
}

// TestSweepBitIdenticalAcrossWorkerCounts asserts each scenario's result
// is independent of how the worker pool schedules it (run under -race in
// tier-1).
func TestSweepBitIdenticalAcrossWorkerCounts(t *testing.T) {
	base := heavyFaultScenario()
	var scenarios []Scenario
	for i := 0; i < 6; i++ {
		sc := base
		sc.Seed = int64(i + 1)
		scenarios = append(scenarios, sc)
	}
	serial := Sweep(scenarios, 1)
	parallel := Sweep(scenarios, 8)
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("scenario %d errored: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Result, parallel[i].Result) {
			t.Errorf("scenario %d: workers=1 and workers=8 disagree:\n1: %+v\n8: %+v",
				i, serial[i].Result, parallel[i].Result)
		}
	}
}

// TestObsCountersMirrorResult asserts (1) an instrumented run is
// bit-identical to a bare one (observability is write-only) and (2) the
// registry's counters equal the Result fields they mirror.
func TestObsCountersMirrorResult(t *testing.T) {
	sc := heavyFaultScenario()
	bare, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Obs = obs.New()
	instr, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, instr) {
		t.Fatalf("instrumented run diverged from bare run:\nbare:  %+v\ninstr: %+v", bare, instr)
	}
	counters := map[string]int64{}
	for _, c := range sc.Obs.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	want := map[string]int{
		"netsim.delivered_segs":    instr.DeliveredSegs,
		"netsim.duplicates":        instr.Duplicates,
		"netsim.retransmits":       instr.Retransmits,
		"netsim.abandoned":         instr.Abandoned,
		"netsim.noroute_drops":     instr.NoRouteDrops,
		"netsim.link_drops":        instr.LinkDrops,
		"netsim.fault_events":      instr.FaultEvents,
		"netsim.route_recomputes":  instr.RouteRecomputes,
		"netsim.route_repairs":     instr.RouteRepairs,
		"netsim.topology_rebuilds": instr.TopologyRebuilds,
		"netsim.rebuild_drops":     instr.RebuildDrops,
		"netsim.late_abandoned":    instr.LateAbandoned,
	}
	for name, v := range want {
		if counters[name] != int64(v) {
			t.Errorf("%s = %d, want %d (Result field)", name, counters[name], v)
		}
	}
}

// TestEpochRebuildSeedsNewFaultClocks is the regression test for the
// immortal-link bug: a link created by an epoch rebuild with no (from,to)
// match in the previous graph kept nextFlip = +Inf after adoptState and
// could never fail. seed must draw a first transition for exactly the
// unmatched links and nodes.
func TestEpochRebuildSeedsNewFaultClocks(t *testing.T) {
	cfg := FaultConfig{LinkOutage: 0.2, LinkMTTRSec: 5, SatMTBFSec: 60, SatMTTRSec: 30}
	ringSpec := TopologySpec{Kind: ClusterTopology, Sats: 8, Cluster: isl.Ring, Tech: isl.RFKaBand}
	g1, err := BuildGraph(ringSpec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	fs := newFaultState(cfg, ringSpec, g1, rng)
	for _, l := range g1.Links {
		if math.IsInf(l.nextFlip, 1) {
			t.Fatalf("initial seeding left link %d->%d without a fault clock", l.From, l.To)
		}
	}

	// Rebuild with a different spec: K=4 changes the link set (span-2
	// ISLs) and two extra satellites add nodes the old graph never had.
	wideSpec := TopologySpec{Kind: ClusterTopology, Sats: 10, Cluster: isl.Topology{K: 4, Split: 1}, Tech: isl.RFKaBand}
	g2, err := BuildGraph(wideSpec)
	if err != nil {
		t.Fatal(err)
	}
	g2.adoptState(g1)
	unmatched := 0
	for _, l := range g2.Links {
		if math.IsInf(l.nextFlip, 1) {
			unmatched++
		}
	}
	if unmatched == 0 {
		t.Fatal("rebuild did not introduce any new links; the spec change is not exercising adoption")
	}

	fs.seed(50, g2)
	for _, l := range g2.Links {
		if math.IsInf(l.nextFlip, 1) {
			t.Errorf("link %d->%d still immortal after adoption-time seeding", l.From, l.To)
		}
		if l.nextFlip < 0 {
			t.Errorf("link %d->%d drew a negative fault clock %v", l.From, l.To, l.nextFlip)
		}
	}
	for _, s := range g2.Sources {
		if math.IsInf(g2.nodes[s].nextFlip, 1) {
			t.Errorf("satellite %d still immortal after adoption-time seeding", s)
		}
	}

	// Seeding must only fill unset clocks: a second call is a no-op.
	before := make([]float64, len(g2.Links))
	for i, l := range g2.Links {
		before[i] = l.nextFlip
	}
	fs.seed(60, g2)
	for i, l := range g2.Links {
		if l.nextFlip != before[i] {
			t.Errorf("re-seeding rewrote link %d->%d clock %v -> %v", l.From, l.To, before[i], l.nextFlip)
		}
	}
}

// TestGEOStarEpochRebuildSeedsNewFaultClocks is the GEO-star twin of the
// cluster regression above: an epoch rebuild that changes GEOSinks
// re-shards every satellite across a different set of sink nodes, so most
// uplinks get (from, to) keys the previous graph never had. Those adopted
// links must draw fault clocks (not stay immortal at nextFlip = +Inf),
// new satellites must draw node clocks, and the structural geo flag on
// the sink nodes must survive adoptState untouched — a GEO sink that lost
// its flag would start being swept by the LEO eclipse arc.
func TestGEOStarEpochRebuildSeedsNewFaultClocks(t *testing.T) {
	cfg := FaultConfig{LinkOutage: 0.2, LinkMTTRSec: 5, SatMTBFSec: 60, SatMTTRSec: 30}
	starSpec := TopologySpec{Kind: GEOStarTopology, Sats: 9, GEOSinks: 3, Tech: isl.Optical10G}
	g1, err := BuildGraph(starSpec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	fs := newFaultState(cfg, starSpec, g1, rng)
	for _, l := range g1.Links {
		if math.IsInf(l.nextFlip, 1) {
			t.Fatalf("initial seeding left link %d->%d without a fault clock", l.From, l.To)
		}
	}

	// Rebuild with more sinks and two extra satellites: sink node IDs
	// shift from 9..11 to 11..15 and the per-satellite sink assignment
	// re-shards, so the uplink key set changes almost entirely.
	wideSpec := TopologySpec{Kind: GEOStarTopology, Sats: 11, GEOSinks: 5, Tech: isl.Optical10G}
	g2, err := BuildGraph(wideSpec)
	if err != nil {
		t.Fatal(err)
	}
	g2.adoptState(g1)
	unmatched := 0
	for _, l := range g2.Links {
		if math.IsInf(l.nextFlip, 1) {
			unmatched++
		}
	}
	if unmatched == 0 {
		t.Fatal("rebuild did not introduce any new uplinks; the GEOSinks change is not exercising adoption")
	}

	fs.seed(50, g2)
	for _, l := range g2.Links {
		if math.IsInf(l.nextFlip, 1) {
			t.Errorf("uplink %d->%d still immortal after adoption-time seeding", l.From, l.To)
		}
		if l.nextFlip < 0 {
			t.Errorf("uplink %d->%d drew a negative fault clock %v", l.From, l.To, l.nextFlip)
		}
	}
	for _, s := range g2.Sources {
		if math.IsInf(g2.nodes[s].nextFlip, 1) {
			t.Errorf("satellite %d still immortal after adoption-time seeding", s)
		}
	}
	// adoptState must not clobber structural node identity: every sink of
	// the new layout keeps geo = true (old node 9 was a GEO sink, new node
	// 9 is a satellite — and vice versa for 11..15 — so a dynamic-state
	// copy that dragged geo across would corrupt both directions).
	for _, s := range g2.Sinks {
		if !g2.nodes[s].geo {
			t.Errorf("sink node %d lost its geo flag across the rebuild", s)
		}
	}
	for _, s := range g2.Sources {
		if g2.nodes[s].geo {
			t.Errorf("satellite node %d gained a geo flag across the rebuild", s)
		}
	}

	// Re-seeding must remain a no-op on already-drawn clocks.
	before := make([]float64, len(g2.Links))
	for i, l := range g2.Links {
		before[i] = l.nextFlip
	}
	fs.seed(60, g2)
	for i, l := range g2.Links {
		if l.nextFlip != before[i] {
			t.Errorf("re-seeding rewrote uplink %d->%d clock %v -> %v", l.From, l.To, before[i], l.nextFlip)
		}
	}
}
