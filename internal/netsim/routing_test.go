package netsim

import (
	"math/rand"
	"reflect"
	"testing"

	"spacedc/internal/isl"
	"spacedc/internal/units"
)

// TestIncrementalRoutingMatchesFullBFS is the differential property test
// behind the incremental maintainer's bit-identity promise: arbitrary
// sequences of link flips, satellite flips, eclipse transitions, and epoch
// rebuilds are applied to one graph through the batch-and-repair path
// while a shadow graph mirrors the same state and recomputes from scratch
// — next[] and dist[] must agree exactly after every batch. Runs under
// -race in tier-1 via the netsim package race gate.
func TestIncrementalRoutingMatchesFullBFS(t *testing.T) {
	cases := []struct {
		name string
		spec TopologySpec
		eo   bool
	}{
		{"ring", TopologySpec{Kind: ClusterTopology, Sats: 9, Cluster: isl.Ring, Tech: isl.RFKaBand, QueueSec: 1}, false},
		{"klist-split", TopologySpec{Kind: ClusterTopology, Sats: 24, Cluster: isl.Topology{K: 4, Split: 2}, Tech: isl.Optical10G, QueueSec: 1}, true},
		{"geo-star", TopologySpec{Kind: GEOStarTopology, Sats: 12, GEOSinks: 3, Tech: isl.Optical10G, QueueSec: 1}, true},
		{"2shell", TopologySpec{Kind: ClusterTopology, Tech: isl.Optical10G, QueueSec: 1,
			Shells: []ShellSpec{
				{Sats: 9, Cluster: isl.Ring, AltKm: 550},
				{Sats: 6, Cluster: isl.Ring, AltKm: 800},
			},
			InterShell: []InterShellRule{{Kind: InterShellAligned}},
		}, true},
		{"3shell", TopologySpec{Kind: ClusterTopology, Tech: isl.Optical10G, QueueSec: 1,
			Shells: []ShellSpec{
				{Sats: 12, Cluster: isl.Topology{K: 4, Split: 2}, AltKm: 550},
				{Sats: 9, Cluster: isl.Ring, AltKm: 800},
				{Sats: 6, Cluster: isl.Ring, AltKm: 1100},
			},
			InterShell: []InterShellRule{
				{Kind: InterShellNearest},
				{Kind: InterShellAligned, CrossLinks: 3},
			},
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			g, err := BuildGraph(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			shadow, err := BuildGraph(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			// Inter-shell link IDs, stable across same-spec rebuilds; the
			// multi-shell cases get a dedicated mutation branch so the repair
			// path is exercised across shell boundaries, not just within one.
			var crossIDs []int
			for _, l := range g.Links {
				if g.nodes[l.From].shell != g.nodes[l.To].shell {
					crossIDs = append(crossIDs, l.ID)
				}
			}
			if len(tc.spec.Shells) > 1 && len(crossIDs) == 0 {
				t.Fatal("multi-shell spec built no inter-shell links")
			}
			mutations := 3
			if len(crossIDs) > 0 {
				mutations = 4
			}
			g.recomputeRoutes(tc.eo)
			shadow.recomputeRoutes(tc.eo)
			repaired, crossFlips := 0, 0
			for batch := 0; batch < 400; batch++ {
				// Occasional epoch rebuild: the incremental side must carry
				// its state into a fresh graph and keep repairing correctly
				// afterward.
				if rng.Intn(25) == 0 {
					ng, err := BuildGraph(tc.spec)
					if err != nil {
						t.Fatal(err)
					}
					ng.adoptState(g)
					g = ng
					g.recomputeRoutes(tc.eo)
				}
				for m := 1 + rng.Intn(3); m > 0; m-- {
					switch rng.Intn(mutations) {
					case 0: // link pointing loss / reacquisition
						li := rng.Intn(len(g.Links))
						g.noteLink(li, tc.eo)
						g.Links[li].Up = !g.Links[li].Up
						shadow.Links[li].Up = g.Links[li].Up
					case 1: // whole-satellite failure / recovery
						s := g.Sources[rng.Intn(len(g.Sources))]
						g.noteNode(s, tc.eo)
						g.nodes[s].Up = !g.nodes[s].Up
						shadow.nodes[s].Up = g.nodes[s].Up
					case 2: // eclipse sweep transition (never on GEO nodes)
						i := rng.Intn(len(g.nodes))
						if g.nodes[i].geo {
							i = g.Sources[0]
						}
						g.noteNode(i, tc.eo)
						g.nodes[i].eclipsed = !g.nodes[i].eclipsed
						shadow.nodes[i].eclipsed = g.nodes[i].eclipsed
					default: // inter-shell link downed/restored
						li := crossIDs[rng.Intn(len(crossIDs))]
						g.noteLink(li, tc.eo)
						g.Links[li].Up = !g.Links[li].Up
						shadow.Links[li].Up = g.Links[li].Up
						crossFlips++
					}
				}
				if g.repairRoutes(tc.eo) {
					repaired++
				}
				shadow.recomputeRoutes(tc.eo)
				if !reflect.DeepEqual(g.dist, shadow.dist) {
					t.Fatalf("batch %d: dist diverged\nincremental: %v\nfull BFS:    %v", batch, g.dist, shadow.dist)
				}
				if !reflect.DeepEqual(g.next, shadow.next) {
					t.Fatalf("batch %d: next diverged\nincremental: %v\nfull BFS:    %v", batch, g.next, shadow.next)
				}
			}
			if repaired == 0 {
				t.Fatal("no batch produced a net usability change; the repair path went unexercised")
			}
			if len(crossIDs) > 0 && crossFlips == 0 {
				t.Fatal("no inter-shell link was ever downed/restored; the cross-shell repair path went unexercised")
			}
		})
	}
}

// TestRunFullRecomputeBitIdentity asserts the end-to-end guarantee: a
// fault-storm run on the incremental repair path produces a Result
// byte-identical to the same scenario forced onto the full-BFS path.
func TestRunFullRecomputeBitIdentity(t *testing.T) {
	sc := heavyFaultScenario()
	inc, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if inc.RouteRepairs == 0 {
		t.Fatal("fault-heavy scenario exercised no incremental repairs")
	}
	full := sc
	full.FullRecompute = true
	ref, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inc, ref) {
		t.Fatalf("incremental and full-BFS runs diverged:\nincremental: %+v\nfull:        %+v", inc, ref)
	}
}

// TestNextEpochAfterCatchesUp is the regression test for the epoch
// catch-up bug: advancing nextEpoch by a single EpochSec per rebuild let
// it fall permanently behind the clock whenever one step spanned several
// epochs. The invariant is nextEpoch > now after every rebuild.
func TestNextEpochAfterCatchesUp(t *testing.T) {
	cases := []struct {
		nextEpoch, now, epoch, want float64
	}{
		{60, 60, 60, 120},   // exact boundary: one increment
		{60, 100, 60, 120},  // mid-epoch step: one increment
		{60, 250, 60, 300},  // step jumped past three epochs: loop catch-up
		{20, 500, 20, 520},  // StepSec >> EpochSec regime
		{10, 10.05, 10, 20}, // fractional clocks
	}
	for _, c := range cases {
		got := nextEpochAfter(c.nextEpoch, c.now, c.epoch)
		if got != c.want {
			t.Errorf("nextEpochAfter(%v, %v, %v) = %v, want %v", c.nextEpoch, c.now, c.epoch, got, c.want)
		}
		if got <= c.now {
			t.Errorf("nextEpochAfter(%v, %v, %v) = %v violates nextEpoch > now", c.nextEpoch, c.now, c.epoch, got)
		}
	}
}

// TestEpochSpanningStepsRebuildOncePerStep runs a scenario whose step
// spans multiple epochs end to end: the driver must rebuild exactly once
// per step (each step crosses boundaries) and keep its epoch clock ahead
// of the simulation clock rather than decaying into a lagged rebuild-
// always regime.
func TestEpochSpanningStepsRebuildOncePerStep(t *testing.T) {
	sc := ringScenario(8)
	sc.StepSec = 5
	sc.EpochSec = 2 // every 5 s step crosses two or three 2 s epochs
	sc.DurationSec = 60
	sc.WarmupSec = 10
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	steps := int(sc.DurationSec/sc.StepSec + 0.5)
	if r.TopologyRebuilds != steps {
		t.Errorf("TopologyRebuilds = %d, want one per epoch-crossing step (%d)", r.TopologyRebuilds, steps)
	}
	// Coarse 5 s steps burst each satellite's generation past the 1 s
	// queue, so delivery is lossy here by construction; the run just has to
	// keep moving traffic while rebuilding every step.
	if r.DeliveredSegs == 0 {
		t.Error("epoch-spanning run delivered nothing")
	}
}

// TestAdoptStateCountsVanishedSegments is the regression test for the
// silent rebuild drop: segments queued on a link whose (from,to) key has
// no successor in the new topology used to vanish without any counter
// recording them. adoptState must report exactly how many segments were
// lost that way, and zero when every link survives.
func TestAdoptStateCountsVanishedSegments(t *testing.T) {
	ringSpec := TopologySpec{Kind: ClusterTopology, Sats: 8, Cluster: isl.Ring, Tech: isl.RFKaBand, QueueSec: 1}
	old, err := BuildGraph(ringSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Queue three segments on a span-1 satellite link and one on a link
	// that survives any ring rebuild of the same spec.
	old.Links[0].q = []segment{{seq: 1, bits: 10}, {seq: 2, bits: 10}, {seq: 3, bits: 10}}
	old.Links[0].qBits = 30

	same, err := BuildGraph(ringSpec)
	if err != nil {
		t.Fatal(err)
	}
	if dropped := same.adoptState(old); dropped != 0 {
		t.Errorf("same-spec rebuild reported %d vanished segments, want 0", dropped)
	}
	if len(same.Links[0].q) != 3 {
		t.Errorf("same-spec rebuild lost the adopted queue: %d segments", len(same.Links[0].q))
	}

	// K=4 replaces every span-1 satellite link with span-2 links, so the
	// queued segments' link ceases to exist.
	wideSpec := TopologySpec{Kind: ClusterTopology, Sats: 8, Cluster: isl.Topology{K: 4, Split: 1}, Tech: isl.RFKaBand, QueueSec: 1}
	wide, err := BuildGraph(wideSpec)
	if err != nil {
		t.Fatal(err)
	}
	key := old.Links[0].key()
	for _, l := range wide.Links {
		if l.key() == key {
			t.Fatalf("link %v survived the K=4 rebuild; pick a different victim", key)
		}
	}
	if dropped := wide.adoptState(old); dropped != 3 {
		t.Errorf("K=4 rebuild reported %d vanished segments, want 3", dropped)
	}
}

// TestLateAfterAbandonIsNotDuplicate pins the transport accounting
// semantics at the unit level: the first copy of an abandoned segment to
// arrive is late-after-abandon (no earlier copy ever arrived), the second
// is a duplicate of it; and a genuinely duplicated delivery stays a
// duplicate.
func TestLateAfterAbandonIsNotDuplicate(t *testing.T) {
	cfg := TransportConfig{RTOSec: 1, Backoff: 2, MaxAttempts: 1}
	s := newSource(1, 1e6, 1e6, cfg)
	var emitted []segment
	s.generate(0, 2, true, func(seg segment) { emitted = append(emitted, seg) })
	if len(emitted) != 2 {
		t.Fatalf("generated %d segments, want 2", len(emitted))
	}

	// Segment 1 times out and is abandoned (MaxAttempts=1), then its copy
	// straggles in — twice.
	_, aband := s.expire(5, true, func(segment) { t.Fatal("MaxAttempts=1 must not retransmit") })
	if aband != 2 {
		t.Fatalf("expire abandoned %d segments, want 2", aband)
	}
	if got := s.ack(emitted[0].seq); got != ackLateAbandoned {
		t.Errorf("first copy of abandoned segment classified %v, want ackLateAbandoned", got)
	}
	if got := s.ack(emitted[0].seq); got != ackDuplicate {
		t.Errorf("second copy of abandoned segment classified %v, want ackDuplicate", got)
	}

	// A delivered segment's extra copy is a true duplicate, before and
	// after the window trims past it.
	s2 := newSource(2, 1e6, 1e6, cfg)
	var segs []segment
	s2.generate(0, 1, true, func(seg segment) { segs = append(segs, seg) })
	if got := s2.ack(segs[0].seq); got != ackDelivered {
		t.Fatalf("first delivery classified %v, want ackDelivered", got)
	}
	if got := s2.ack(segs[0].seq); got != ackDuplicate {
		t.Errorf("re-delivery classified %v, want ackDuplicate", got)
	}
}

// TestLateAfterAbandonEndToEnd drives the misclassification through Run:
// a single-attempt transport over a saturated ring queues segments for
// longer than the RTO, so every segment is abandoned before its only copy
// arrives. Every such arrival must land in LateAbandoned — with one copy
// per segment there is nothing to duplicate, so Duplicates must stay 0
// (the old accounting put all of them there).
func TestLateAfterAbandonEndToEnd(t *testing.T) {
	sc := ringScenario(8)
	sc.PerSat = 300 * units.Mbps // 4×300M on the bottleneck: deep queues
	sc.Transport = TransportConfig{RTOSec: 0.5, Backoff: 2, MaxAttempts: 1}
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Abandoned == 0 {
		t.Fatal("saturated single-attempt ring abandoned nothing; scenario mistuned")
	}
	if r.LateAbandoned == 0 {
		t.Error("queued-past-RTO copies arrived but none were classified late-after-abandon")
	}
	if r.Duplicates != 0 {
		t.Errorf("MaxAttempts=1 run counted %d Duplicates; only one copy of each segment exists", r.Duplicates)
	}
}
