package netsim

import (
	"fmt"
	"math"

	"spacedc/internal/isl"
	"spacedc/internal/orbit"
)

// TopologyKind selects the network family the driver builds.
type TopologyKind int

// Topology kinds.
const (
	// ClusterTopology is the in-plane formation of the paper's §7: EO
	// satellites and Split SµDC sinks spaced around one orbital plane,
	// connected by span-K/2 ISLs (K = 2 is the ring, larger even K the
	// k-lists), each sink receiving on its K nearest satellites.
	ClusterTopology TopologyKind = iota
	// GEOStarTopology is the Fig 15 deployment: every EO satellite drives
	// one long link straight up to its assigned GEO SµDC.
	GEOStarTopology
)

// ShellSpec is one shell of a multi-shell constellation: its own simulated
// plane population, intra-shell cluster fabric (K = 2 is the ring, larger
// even K the k-lists, Split the SµDC splitting), and altitude — which
// fixes the shell's link geometry, orbital period, and eclipse fraction.
type ShellSpec struct {
	// Sats is the shell's EO satellite count (flow sources).
	Sats int
	// Cluster gives the shell's intra-shell ISL budget: K and Split.
	Cluster isl.Topology
	// AltKm is the shell altitude in km.
	AltKm float64
}

// InterShellKind selects the cross-link rule between two adjacent shells.
type InterShellKind int

// Inter-shell link rules.
const (
	// InterShellAligned cross-links satellites by scaled index: satellite
	// i of the lower shell pairs with satellite i·N_hi/N_lo of the upper
	// one, so the pattern is fixed regardless of phasing.
	InterShellAligned InterShellKind = iota
	// InterShellNearest cross-links each selected lower-shell satellite to
	// the upper-shell satellite whose ascending-node phase (angular
	// position around the plane) is nearest, ties to the lower index.
	InterShellNearest
)

// String names the rule for reports.
func (k InterShellKind) String() string {
	switch k {
	case InterShellAligned:
		return "aligned"
	case InterShellNearest:
		return "nearest"
	}
	return fmt.Sprintf("inter-shell-kind-%d", int(k))
}

// InterShellRule wires one adjacent shell pair.
type InterShellRule struct {
	Kind InterShellKind
	// CrossLinks caps the number of cross-linked satellite pairs between
	// the two shells (the pair's ISL terminal budget). Zero means one pair
	// per satellite of the smaller shell.
	CrossLinks int
}

// interShellRefKm anchors the cross-link capacity derate: a cross-link's
// capacity is Tech.Capacity · ref/(ref+range), so longer inter-shell hops
// (free-space loss, coarser pointing) carry proportionally less than the
// in-plane fabric. Its latency is range/c.
const interShellRefKm = 500.0

// TopologySpec describes the network the time-stepped driver rebuilds at
// every epoch.
type TopologySpec struct {
	Kind TopologyKind
	// Sats is the number of EO satellites (flow sources).
	Sats int
	// Cluster gives K and Split for ClusterTopology.
	Cluster isl.Topology
	// Tech supplies link capacity and whether the terminal is optical
	// (optical terminals lose pointing in eclipse sweeps).
	Tech isl.LinkTech
	// Geometry fixes in-plane spacing, and thus link lengths, for
	// ClusterTopology. Zero-value geometry defaults to orbit-spacing the
	// plane's population at 550 km.
	Geometry isl.PlaneGeometry
	// GEOSinks is the number of GEO SµDCs for GEOStarTopology. Zero
	// means 3 (the minimal whole-Earth star).
	GEOSinks int
	// LowAltKm is the EO constellation altitude, used for GEO slant range
	// and eclipse geometry. Zero means 550.
	LowAltKm float64
	// QueueSec sizes each link's FIFO queue in seconds of link capacity.
	QueueSec float64

	// Shells, when non-empty, replaces the single-shell fields above with
	// a multi-shell stack: one cluster fabric per shell (each at its own
	// altitude, with its own eclipse geometry and orbital period) wired
	// into one graph by the InterShell cross-link rules. Kind must be
	// ClusterTopology (the zero value) and Sats/GEOSinks must be zero; the
	// per-shell geometry is always orbit-spaced at the shell's altitude.
	Shells []ShellSpec
	// InterShell wires each adjacent shell pair; its length must be
	// len(Shells)-1. Cross-link latency and capacity derive from the
	// altitude gap between the two shells.
	InterShell []InterShellRule
}

// Validate checks the spec.
func (ts TopologySpec) Validate() error {
	if ts.Tech.Capacity <= 0 {
		return fmt.Errorf("netsim: non-positive link capacity %v", ts.Tech.Capacity)
	}
	if ts.QueueSec < 0 {
		return fmt.Errorf("netsim: negative queue depth %v s", ts.QueueSec)
	}
	if len(ts.Shells) > 0 {
		return ts.validateShells()
	}
	if ts.Sats <= 0 {
		return fmt.Errorf("netsim: non-positive satellite count %d", ts.Sats)
	}
	switch ts.Kind {
	case ClusterTopology:
		if err := ts.Cluster.Validate(); err != nil {
			return err
		}
		// Division form: K·Split can overflow for adversarial values.
		if ts.Cluster.Split > ts.Sats/ts.Cluster.K {
			return fmt.Errorf("netsim: %d sats cannot populate %d sinks × %d receivers",
				ts.Sats, ts.Cluster.Split, ts.Cluster.K)
		}
	case GEOStarTopology:
		if ts.GEOSinks < 0 {
			return fmt.Errorf("netsim: negative GEO sink count %d", ts.GEOSinks)
		}
	default:
		return fmt.Errorf("netsim: unknown topology kind %d", ts.Kind)
	}
	return nil
}

// validateShells checks the multi-shell stack: every shell must be a
// well-formed cluster, the rule list must cover exactly the adjacent
// pairs, and the single-shell fields must stay unset so a spec is
// unambiguously one or the other.
func (ts TopologySpec) validateShells() error {
	if ts.Kind != ClusterTopology {
		return fmt.Errorf("netsim: multi-shell stacks are cluster-kind; kind %d cannot carry shells", ts.Kind)
	}
	if ts.Sats != 0 || ts.GEOSinks != 0 {
		return fmt.Errorf("netsim: spec sets both Shells and single-shell fields (sats=%d, geoSinks=%d)", ts.Sats, ts.GEOSinks)
	}
	if len(ts.InterShell) != len(ts.Shells)-1 {
		return fmt.Errorf("netsim: %d shells need %d inter-shell rules, got %d",
			len(ts.Shells), len(ts.Shells)-1, len(ts.InterShell))
	}
	for i, sh := range ts.Shells {
		if sh.Sats <= 0 {
			return fmt.Errorf("netsim: shell %d: non-positive satellite count %d", i, sh.Sats)
		}
		if err := sh.Cluster.Validate(); err != nil {
			return fmt.Errorf("netsim: shell %d: %w", i, err)
		}
		if sh.Cluster.Split > sh.Sats/sh.Cluster.K {
			return fmt.Errorf("netsim: shell %d: %d sats cannot populate %d sinks × %d receivers",
				i, sh.Sats, sh.Cluster.Split, sh.Cluster.K)
		}
		if !(sh.AltKm > 0) || sh.AltKm > 100e3 {
			return fmt.Errorf("netsim: shell %d: altitude must satisfy 0 < alt ≤ 100000 km, got %v", i, sh.AltKm)
		}
	}
	for i, rule := range ts.InterShell {
		if rule.Kind != InterShellAligned && rule.Kind != InterShellNearest {
			return fmt.Errorf("netsim: inter-shell rule %d: unknown kind %d", i, int(rule.Kind))
		}
		maxPairs := ts.Shells[i].Sats
		if ts.Shells[i+1].Sats < maxPairs {
			maxPairs = ts.Shells[i+1].Sats
		}
		if rule.CrossLinks < 0 || rule.CrossLinks > maxPairs {
			return fmt.Errorf("netsim: inter-shell rule %d: cross-link budget %d outside [0, %d]",
				i, rule.CrossLinks, maxPairs)
		}
	}
	return nil
}

// TotalSats returns the satellite population across the whole spec: the
// per-shell sum for multi-shell stacks, the flat count otherwise.
func (ts TopologySpec) TotalSats() int {
	if len(ts.Shells) == 0 {
		return ts.Sats
	}
	total := 0
	for _, sh := range ts.Shells {
		total += sh.Sats
	}
	return total
}

// lowAlt returns the EO altitude with the default applied.
func (ts TopologySpec) lowAlt() float64 {
	if ts.LowAltKm == 0 {
		return 550
	}
	return ts.LowAltKm
}

// geometry returns the plane geometry with the default applied.
func (ts TopologySpec) geometry(totalNodes int) isl.PlaneGeometry {
	if ts.Geometry.SpacingRad == 0 {
		return isl.OrbitSpacedGeometry(ts.lowAlt(), totalNodes)
	}
	return ts.Geometry
}

const lightSpeedKmS = 299792.458

// BuildGraph constructs the structural link graph for the spec. The
// time-stepped driver calls it at every epoch; Graph.adoptState then
// carries queue and fault state across the rebuild.
func BuildGraph(ts TopologySpec) (*Graph, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if len(ts.Shells) > 0 {
		return buildMultiShell(ts), nil
	}
	switch ts.Kind {
	case GEOStarTopology:
		return buildGEOStar(ts), nil
	default:
		return buildCluster(ts), nil
	}
}

// buildCluster lays Sats satellites and Split sinks around one orbital
// plane and wires the span-K/2 ISL fabric: satellite↔satellite links K/2
// positions apart in both directions, and each sink receiving from its K
// nearest satellites (spans 1…K/2 on each side). Shortest-path routing
// over this fabric reproduces exactly the K relay chains per sink that
// isl.BuildCluster constructs analytically — netsim builds the *physical*
// fabric so that traffic can reroute the long way around when a chain
// link fails.
func buildCluster(ts TopologySpec) *Graph {
	total := ts.Sats + ts.Cluster.Split
	g := newGraph(total)
	cap := float64(ts.Tech.Capacity)
	layCluster(g, 0, 0, ts.Sats, ts.Cluster, ts.geometry(total), cap, ts.QueueSec*cap)
	return g
}

// layCluster lays one cluster plane — sats satellites plus cl.Split sinks —
// into g starting at node offset, tagging every node with the shell index.
// Node and link creation order is identical to what the single-shell
// builder always produced, so a one-shell graph is bit-identical to the
// legacy path and multi-shell graphs get deterministic IDs per shell. It
// returns the global IDs of the shell's satellites (its sources), in
// plane order, for the cross-link pass.
func layCluster(g *Graph, offset, shellIdx, sats int, cl isl.Topology, geom isl.PlaneGeometry, capBps, queueBits float64) []int {
	total := sats + cl.Split

	// Sink positions, evenly spaced around the plane.
	isSink := make([]bool, total)
	for s := 0; s < cl.Split; s++ {
		p := s * total / cl.Split
		isSink[p] = true
		g.Sinks = append(g.Sinks, offset+p)
	}
	var shellSources []int
	for p := 0; p < total; p++ {
		g.nodes[offset+p].posFrac = float64(p) / float64(total)
		g.nodes[offset+p].shell = shellIdx
		if !isSink[p] {
			g.Sources = append(g.Sources, offset+p)
			shellSources = append(shellSources, offset+p)
		}
	}

	span := cl.K / 2
	addPair := func(a, b, spanHops int) {
		dist := geom.HopDistanceKm(2 * spanHops)
		delay := dist / lightSpeedKmS
		g.addLink(offset+a, offset+b, capBps, delay, queueBits)
		g.addLink(offset+b, offset+a, capBps, delay, queueBits)
	}
	// Satellite↔satellite span links.
	for p := 0; p < total; p++ {
		q := (p + span) % total
		if isSink[p] || isSink[q] {
			continue // sink attachment handled below
		}
		addPair(p, q, span)
	}
	// Sink receiver links: the K nearest satellites, spans 1…K/2 on each
	// side (skipping positions occupied by other sinks in tiny configs).
	for s := 0; s < cl.Split; s++ {
		sink := s * total / cl.Split
		for sp := 1; sp <= span; sp++ {
			for _, q := range []int{(sink + sp) % total, (sink - sp + total) % total} {
				if !isSink[q] {
					addPair(sink, q, sp)
				}
			}
		}
	}
	return shellSources
}

// buildMultiShell lays every shell's cluster fabric at consecutive node
// offsets (shell 0 lowest, exactly the legacy layout per shell) and then
// wires the inter-shell cross-links last, so intra-shell link IDs match a
// stack of independent single-shell graphs and cross-links take the
// highest IDs deterministically. Cross-link latency is the altitude gap
// over c; capacity derates with the gap against interShellRefKm.
func buildMultiShell(ts TopologySpec) *Graph {
	total := 0
	for _, sh := range ts.Shells {
		total += sh.Sats + sh.Cluster.Split
	}
	g := newGraph(total)
	cap := float64(ts.Tech.Capacity)

	sources := make([][]int, len(ts.Shells))
	offset := 0
	for i, sh := range ts.Shells {
		n := sh.Sats + sh.Cluster.Split
		geom := isl.OrbitSpacedGeometry(sh.AltKm, n)
		sources[i] = layCluster(g, offset, i, sh.Sats, sh.Cluster, geom, cap, ts.QueueSec*cap)
		offset += n
	}

	for i, rule := range ts.InterShell {
		lo, hi := sources[i], sources[i+1]
		rangeKm := math.Abs(ts.Shells[i+1].AltKm - ts.Shells[i].AltKm)
		delay := rangeKm / lightSpeedKmS
		xcap := cap * interShellRefKm / (interShellRefKm + rangeKm)
		queueBits := ts.QueueSec * xcap

		n := rule.CrossLinks
		if n == 0 || n > len(lo) {
			n = len(lo)
		}
		if n > len(hi) {
			n = len(hi)
		}
		for j := 0; j < n; j++ {
			a := j * len(lo) / n // evenly spaced lower-shell satellites
			var b int
			switch rule.Kind {
			case InterShellNearest:
				b = nearestByPos(g, lo[a], hi)
			default: // InterShellAligned
				b = a * len(hi) / len(lo)
			}
			g.addLink(lo[a], hi[b], xcap, delay, queueBits)
			g.addLink(hi[b], lo[a], xcap, delay, queueBits)
		}
	}
	g.crossShell = countCrossShell(g)
	return g
}

// nearestByPos returns the index into candidates of the node whose plane
// phase is circularly closest to node from's, ties to the lowest index.
func nearestByPos(g *Graph, from int, candidates []int) int {
	best, bestDist := 0, math.Inf(1)
	p := g.nodes[from].posFrac
	for idx, c := range candidates {
		d := math.Abs(g.nodes[c].posFrac - p)
		if d > 0.5 {
			d = 1 - d
		}
		if d < bestDist {
			best, bestDist = idx, d
		}
	}
	return best
}

// countCrossShell tallies links whose endpoints sit in different shells.
func countCrossShell(g *Graph) int {
	n := 0
	for _, l := range g.Links {
		if g.nodes[l.From].shell != g.nodes[l.To].shell {
			n++
		}
	}
	return n
}

// buildGEOStar wires every EO satellite straight to its assigned GEO sink.
func buildGEOStar(ts TopologySpec) *Graph {
	sinks := ts.GEOSinks
	if sinks == 0 {
		sinks = 3
	}
	if sinks > ts.Sats {
		sinks = ts.Sats
	}
	g := newGraph(ts.Sats + sinks)
	cap := float64(ts.Tech.Capacity)
	queueBits := ts.QueueSec * cap
	slantKm := orbit.GeostationaryAltitudeKm - ts.lowAlt()
	delay := slantKm / lightSpeedKmS
	for s := 0; s < sinks; s++ {
		g.Sinks = append(g.Sinks, ts.Sats+s)
		g.nodes[ts.Sats+s].geo = true
	}
	for p := 0; p < ts.Sats; p++ {
		g.Sources = append(g.Sources, p)
		g.nodes[p].posFrac = float64(p) / float64(ts.Sats)
		// Longitude thirds: contiguous blocks of satellites share a sink.
		sink := ts.Sats + p*sinks/ts.Sats
		g.addLink(p, sink, cap, delay, queueBits)
	}
	return g
}

// shellAltsKm returns one altitude per shell — the single spec altitude
// for legacy specs — indexing the per-shell eclipse geometry.
func (ts TopologySpec) shellAltsKm() []float64 {
	if len(ts.Shells) == 0 {
		return []float64{ts.lowAlt()}
	}
	alts := make([]float64, len(ts.Shells))
	for i, sh := range ts.Shells {
		alts[i] = sh.AltKm
	}
	return alts
}

// eclipseFractionAt returns the fraction of the orbit a satellite spends
// in Earth shadow at the given altitude, and the orbital period, for the
// fault layer's eclipse sweep. A mid-inclination plane near equinox is
// representative of the paper's study constellation.
func eclipseFractionAt(altKm float64) (frac float64, periodSec float64) {
	el := orbit.CircularLEO(altKm, 0.9, 0, 0, eclipseEpoch)
	period := el.Period()
	frac = orbit.EclipseFraction(el, eclipseEpoch, period, period/240)
	return frac, period.Seconds()
}

// orbitalPeriodSec returns the plane's orbital period in seconds.
func (ts TopologySpec) orbitalPeriodSec() float64 {
	a := orbit.EarthRadiusKm + ts.lowAlt()
	return 2 * math.Pi / math.Sqrt(orbit.EarthMuKm3S2/(a*a*a))
}
