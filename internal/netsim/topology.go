package netsim

import (
	"fmt"
	"math"

	"spacedc/internal/isl"
	"spacedc/internal/orbit"
)

// TopologyKind selects the network family the driver builds.
type TopologyKind int

// Topology kinds.
const (
	// ClusterTopology is the in-plane formation of the paper's §7: EO
	// satellites and Split SµDC sinks spaced around one orbital plane,
	// connected by span-K/2 ISLs (K = 2 is the ring, larger even K the
	// k-lists), each sink receiving on its K nearest satellites.
	ClusterTopology TopologyKind = iota
	// GEOStarTopology is the Fig 15 deployment: every EO satellite drives
	// one long link straight up to its assigned GEO SµDC.
	GEOStarTopology
)

// TopologySpec describes the network the time-stepped driver rebuilds at
// every epoch.
type TopologySpec struct {
	Kind TopologyKind
	// Sats is the number of EO satellites (flow sources).
	Sats int
	// Cluster gives K and Split for ClusterTopology.
	Cluster isl.Topology
	// Tech supplies link capacity and whether the terminal is optical
	// (optical terminals lose pointing in eclipse sweeps).
	Tech isl.LinkTech
	// Geometry fixes in-plane spacing, and thus link lengths, for
	// ClusterTopology. Zero-value geometry defaults to orbit-spacing the
	// plane's population at 550 km.
	Geometry isl.PlaneGeometry
	// GEOSinks is the number of GEO SµDCs for GEOStarTopology. Zero
	// means 3 (the minimal whole-Earth star).
	GEOSinks int
	// LowAltKm is the EO constellation altitude, used for GEO slant range
	// and eclipse geometry. Zero means 550.
	LowAltKm float64
	// QueueSec sizes each link's FIFO queue in seconds of link capacity.
	QueueSec float64
}

// Validate checks the spec.
func (ts TopologySpec) Validate() error {
	if ts.Sats <= 0 {
		return fmt.Errorf("netsim: non-positive satellite count %d", ts.Sats)
	}
	if ts.Tech.Capacity <= 0 {
		return fmt.Errorf("netsim: non-positive link capacity %v", ts.Tech.Capacity)
	}
	if ts.QueueSec < 0 {
		return fmt.Errorf("netsim: negative queue depth %v s", ts.QueueSec)
	}
	switch ts.Kind {
	case ClusterTopology:
		if err := ts.Cluster.Validate(); err != nil {
			return err
		}
		if ts.Sats < ts.Cluster.K*ts.Cluster.Split {
			return fmt.Errorf("netsim: %d sats cannot populate %d sinks × %d receivers",
				ts.Sats, ts.Cluster.Split, ts.Cluster.K)
		}
	case GEOStarTopology:
		if ts.GEOSinks < 0 {
			return fmt.Errorf("netsim: negative GEO sink count %d", ts.GEOSinks)
		}
	default:
		return fmt.Errorf("netsim: unknown topology kind %d", ts.Kind)
	}
	return nil
}

// lowAlt returns the EO altitude with the default applied.
func (ts TopologySpec) lowAlt() float64 {
	if ts.LowAltKm == 0 {
		return 550
	}
	return ts.LowAltKm
}

// geometry returns the plane geometry with the default applied.
func (ts TopologySpec) geometry(totalNodes int) isl.PlaneGeometry {
	if ts.Geometry.SpacingRad == 0 {
		return isl.OrbitSpacedGeometry(ts.lowAlt(), totalNodes)
	}
	return ts.Geometry
}

const lightSpeedKmS = 299792.458

// BuildGraph constructs the structural link graph for the spec. The
// time-stepped driver calls it at every epoch; Graph.adoptState then
// carries queue and fault state across the rebuild.
func BuildGraph(ts TopologySpec) (*Graph, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	switch ts.Kind {
	case GEOStarTopology:
		return buildGEOStar(ts), nil
	default:
		return buildCluster(ts), nil
	}
}

// buildCluster lays Sats satellites and Split sinks around one orbital
// plane and wires the span-K/2 ISL fabric: satellite↔satellite links K/2
// positions apart in both directions, and each sink receiving from its K
// nearest satellites (spans 1…K/2 on each side). Shortest-path routing
// over this fabric reproduces exactly the K relay chains per sink that
// isl.BuildCluster constructs analytically — netsim builds the *physical*
// fabric so that traffic can reroute the long way around when a chain
// link fails.
func buildCluster(ts TopologySpec) *Graph {
	total := ts.Sats + ts.Cluster.Split
	g := newGraph(total)
	geom := ts.geometry(total)
	cap := float64(ts.Tech.Capacity)
	queueBits := ts.QueueSec * cap

	// Sink positions, evenly spaced around the plane.
	isSink := make([]bool, total)
	for s := 0; s < ts.Cluster.Split; s++ {
		p := s * total / ts.Cluster.Split
		isSink[p] = true
		g.Sinks = append(g.Sinks, p)
	}
	for p := 0; p < total; p++ {
		g.nodes[p].posFrac = float64(p) / float64(total)
		if !isSink[p] {
			g.Sources = append(g.Sources, p)
		}
	}

	span := ts.Cluster.K / 2
	addPair := func(a, b, spanHops int) {
		dist := geom.HopDistanceKm(2 * spanHops)
		delay := dist / lightSpeedKmS
		g.addLink(a, b, cap, delay, queueBits)
		g.addLink(b, a, cap, delay, queueBits)
	}
	// Satellite↔satellite span links.
	for p := 0; p < total; p++ {
		q := (p + span) % total
		if isSink[p] || isSink[q] {
			continue // sink attachment handled below
		}
		addPair(p, q, span)
	}
	// Sink receiver links: the K nearest satellites, spans 1…K/2 on each
	// side (skipping positions occupied by other sinks in tiny configs).
	for _, sink := range g.Sinks {
		for s := 1; s <= span; s++ {
			for _, q := range []int{(sink + s) % total, (sink - s + total) % total} {
				if !isSink[q] {
					addPair(sink, q, s)
				}
			}
		}
	}
	return g
}

// buildGEOStar wires every EO satellite straight to its assigned GEO sink.
func buildGEOStar(ts TopologySpec) *Graph {
	sinks := ts.GEOSinks
	if sinks == 0 {
		sinks = 3
	}
	if sinks > ts.Sats {
		sinks = ts.Sats
	}
	g := newGraph(ts.Sats + sinks)
	cap := float64(ts.Tech.Capacity)
	queueBits := ts.QueueSec * cap
	slantKm := orbit.GeostationaryAltitudeKm - ts.lowAlt()
	delay := slantKm / lightSpeedKmS
	for s := 0; s < sinks; s++ {
		g.Sinks = append(g.Sinks, ts.Sats+s)
		g.nodes[ts.Sats+s].geo = true
	}
	for p := 0; p < ts.Sats; p++ {
		g.Sources = append(g.Sources, p)
		g.nodes[p].posFrac = float64(p) / float64(ts.Sats)
		// Longitude thirds: contiguous blocks of satellites share a sink.
		sink := ts.Sats + p*sinks/ts.Sats
		g.addLink(p, sink, cap, delay, queueBits)
	}
	return g
}

// eclipseFraction returns the fraction of the orbit each satellite spends
// in Earth shadow at the spec's altitude, and the orbital period, for the
// fault layer's eclipse sweep. A mid-inclination plane near equinox is
// representative of the paper's study constellation.
func (ts TopologySpec) eclipseFraction() (frac float64, periodSec float64) {
	el := orbit.CircularLEO(ts.lowAlt(), 0.9, 0, 0, eclipseEpoch)
	period := el.Period()
	frac = orbit.EclipseFraction(el, eclipseEpoch, period, period/240)
	return frac, period.Seconds()
}

// orbitalPeriodSec returns the plane's orbital period in seconds.
func (ts TopologySpec) orbitalPeriodSec() float64 {
	a := orbit.EarthRadiusKm + ts.lowAlt()
	return 2 * math.Pi / math.Sqrt(orbit.EarthMuKm3S2/(a*a*a))
}
