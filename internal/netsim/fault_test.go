package netsim

import (
	"testing"

	"spacedc/internal/isl"
	"spacedc/internal/units"
)

func faultScenario(outage float64) Scenario {
	sc := ringScenario(8)
	sc.Name = "test-faults"
	sc.Faults = FaultConfig{LinkOutage: outage, LinkMTTRSec: 10}
	sc.DurationSec = 120
	sc.WarmupSec = 20
	return sc
}

func TestLinkOutagesDegradeGracefully(t *testing.T) {
	clean, err := Run(faultScenario(0))
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(faultScenario(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if faulty.FaultEvents == 0 {
		t.Fatal("5% outage regime produced no fault events")
	}
	if faulty.Retransmits == 0 {
		t.Error("outages should force retransmissions")
	}
	// Retransmission keeps most data flowing, but outages must cost
	// something relative to the clean run — delivery or latency.
	if faulty.DeliveryRatio > clean.DeliveryRatio+0.01 &&
		faulty.LatencySec.P95 <= clean.LatencySec.P95 {
		t.Errorf("outages were free: clean ratio %v p95 %v, faulty ratio %v p95 %v",
			clean.DeliveryRatio, clean.LatencySec.P95, faulty.DeliveryRatio, faulty.LatencySec.P95)
	}
	if faulty.DeliveryRatio < 0.5 {
		t.Errorf("ring with retransmission should survive 5%% outage, delivered only %v", faulty.DeliveryRatio)
	}
}

func TestSatelliteFailuresCutGenerationAndRelay(t *testing.T) {
	sc := faultScenario(0)
	sc.Faults = FaultConfig{SatMTBFSec: 120, SatMTTRSec: 60}
	sc.Seed = 7
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.FaultEvents == 0 {
		t.Fatal("satellite failure process never fired")
	}
	// Failed satellites stop generating, so the offered rate must dip
	// below the healthy 8 × 100 Mbit/s.
	if float64(r.OfferedRate) >= 8*100e6 {
		t.Errorf("offered rate %v shows no generation loss", r.OfferedRate)
	}
	// The ring must reroute around dead relays: most of what was offered
	// still arrives.
	if r.DeliveryRatio < 0.6 {
		t.Errorf("delivery ratio %v under satellite churn; rerouting broken?", r.DeliveryRatio)
	}
}

func TestEclipseSweepDropsOpticalLinks(t *testing.T) {
	sc := ringScenario(8)
	sc.Topology.Tech = isl.Optical10G
	sc.PerSat = 100 * units.Mbps
	sc.Faults = FaultConfig{EclipseOutage: true}
	sc.DurationSec = 120
	sc.WarmupSec = 20
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.FaultEvents == 0 {
		t.Fatal("eclipse sweep never shadowed a satellite")
	}
	if r.RouteRecomputes <= r.TopologyRebuilds+1 {
		t.Error("eclipse transitions should force route recomputes")
	}
	// RF terminals ignore the eclipse regime entirely.
	rf := sc
	rf.Topology.Tech = isl.RFKaBand
	rr, err := Run(rf)
	if err != nil {
		t.Fatal(err)
	}
	if rr.DeliveryRatio < 0.99 {
		t.Errorf("RF ring under eclipse regime delivered %v, want ≈1", rr.DeliveryRatio)
	}
}

func TestFaultConfigStationaryFraction(t *testing.T) {
	fc := FaultConfig{LinkOutage: 0.2, LinkMTTRSec: 10}
	mtbf := fc.linkMTBF()
	// down/(up+down) = MTTR/(MTBF+MTTR) must equal the configured
	// fraction.
	frac := fc.LinkMTTRSec / (mtbf + fc.LinkMTTRSec)
	if diff := frac - fc.LinkOutage; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("stationary fraction %v, want %v", frac, fc.LinkOutage)
	}
}

func TestFaultConfigValidate(t *testing.T) {
	bad := []FaultConfig{
		{LinkOutage: -0.1},
		{LinkOutage: 1},
		{SatMTBFSec: -1},
	}
	for i, fc := range bad {
		if fc.Validate() == nil {
			t.Errorf("bad fault config %d accepted", i)
		}
	}
}
