package netsim

import (
	"fmt"

	"spacedc/internal/isl"
	"spacedc/internal/units"
)

// stableDeliveryRatio is the delivered fraction below which a zero-fault
// run counts as overloaded.
const stableDeliveryRatio = 0.95

// Supported reports whether a zero-fault run was stable: nothing dropped,
// nothing abandoned, and essentially everything offered was delivered.
func Supported(r Result) bool {
	return r.LinkDrops == 0 && r.NoRouteDrops == 0 && r.Abandoned == 0 &&
		r.DeliveryRatio >= stableDeliveryRatio
}

// MaxSupportable finds, by running the time-stepped simulator at
// increasing constellation sizes, the largest EO-satellite count the
// scenario's topology carries without saturating a link. Faults are
// disabled and transport is fire-and-forget so that overload shows up
// directly as loss — the dynamic cross-check of the closed-form Table 8
// model (isl.SupportableEOSats) and of isl.MaxSupportableBySimulation.
func MaxSupportable(scenario Scenario, searchLimit int) (int, error) {
	sc := scenario.withDefaults()
	sc.Faults = FaultConfig{}.withDefaults()
	sc.Transport.MaxAttempts = 1
	minSats := 1
	if sc.Topology.Kind == ClusterTopology {
		minSats = sc.Topology.Cluster.K * sc.Topology.Cluster.Split
	}
	if searchLimit < minSats {
		return 0, fmt.Errorf("netsim: search limit %d below minimum population %d", searchLimit, minSats)
	}
	best := 0
	for n := minSats; n <= searchLimit; n++ {
		s := sc
		s.Topology.Sats = n
		r, err := Run(s)
		if err != nil {
			return 0, err
		}
		if !Supported(r) {
			break
		}
		best = n
	}
	return best, nil
}

// AnalyticBottleneckUtil is the closed-form Fig 11 bottleneck shape: with
// n satellites balanced over K·Split relay chains, the chain link adjacent
// to a SµDC carries ⌈n/(K·Split)⌉ satellites' traffic.
func AnalyticBottleneckUtil(n int, topo isl.Topology, perSat, linkCap units.DataRate) float64 {
	chains := topo.K * topo.Split
	if chains == 0 || linkCap <= 0 {
		return 0
	}
	longest := (n + chains - 1) / chains
	util := float64(longest) * float64(perSat) / float64(linkCap)
	if util > 1 {
		util = 1
	}
	return util
}
