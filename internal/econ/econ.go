// Package econ is the constellation cost model behind the design-space
// optimizer: it prices a candidate constellation design — EO satellites,
// SµDC compute satellites, ISL terminals, and the solar/radiator power
// systems that carry the compute — from first principles ($/kg launch
// mass, specific power, unit hardware costs) and amortizes the total over
// a mission horizon into a $/hour denominator for goodput-per-dollar
// objectives.
//
// The model follows the shape of the paper's §6 economics argument (SµDC
// launch capex vs recurring downlink spend) and the Demo-Space
// orbital-economics calculator: wet mass drives launch cost through a
// $/kg rate, compute power drives solar-array and radiator mass through
// specific-power densities, and everything amortizes linearly. Every
// entry point validates its inputs and returns an error — never a NaN,
// an Inf, or a panic — so a heuristic search can feed it arbitrary
// candidates safely.
package econ

import (
	"fmt"
	"math"

	"spacedc/internal/units"
)

// Recovery-policy names the cost model knows how to price. They mirror
// resilience.StandardPolicies.
const (
	RecoveryNone       = "none"
	RecoveryRetry      = "retry"
	RecoveryCheckpoint = "checkpoint"
	RecoveryDMR        = "dmr"
	RecoveryTMR        = "tmr"
	RecoverySAAPause   = "saa-pause"
)

// RecoveryDeviceFactor returns the hardware multiplier a recovery policy
// imposes on a SµDC's device complement: replicated execution buys its
// redundancy in silicon (DMR 2×, TMR 3×), checkpointing pays a modest
// non-volatile-buffer overhead, and the software-only policies are free.
func RecoveryDeviceFactor(name string) (float64, error) {
	switch name {
	case RecoveryNone, RecoveryRetry, RecoverySAAPause:
		return 1, nil
	case RecoveryCheckpoint:
		return 1.15, nil
	case RecoveryDMR:
		return 2, nil
	case RecoveryTMR:
		return 3, nil
	}
	return 0, fmt.Errorf("econ: unknown recovery policy %q", name)
}

// CostModel prices one constellation design. The zero value is unusable;
// start from DefaultCostModel and override fields.
type CostModel struct {
	// LaunchPerKg is the $/kg launch rate to the reference LEO altitude
	// (RefAltitudeKm).
	LaunchPerKg units.Money
	// RefAltitudeKm anchors the altitude surcharge (default 550 km).
	RefAltitudeKm float64
	// AltitudeSurcharge is the fractional LaunchPerKg increase per
	// 1000 km above the reference altitude (injection Δv costs mass).
	// Below the reference the rate never drops under half.
	AltitudeSurcharge float64
	// GEOLaunchMult multiplies the launch rate for mass delivered to GEO
	// (the Fig 15 star's SµDCs).
	GEOLaunchMult float64

	// EOSatMassKg / EOSatCost price one EO satellite bus (camera,
	// avionics, no ISL terminals — those are itemized separately).
	EOSatMassKg float64
	EOSatCost   units.Money

	// SuDCBusMassKg / SuDCBusCost price one SµDC's structure and
	// avionics, excluding devices, power, thermal, and terminals.
	SuDCBusMassKg float64
	SuDCBusCost   units.Money

	// DeviceMassKg / DeviceCost / DevicePowerW price one compute device
	// (board + shielding) and set its dissipation for power sizing.
	DeviceMassKg float64
	DeviceCost   units.Money
	DevicePowerW float64

	// PowerOverhead scales device power into bus power (conversion
	// losses, avionics — an orbital PUE; ≥ 1).
	PowerOverhead float64
	// SolarSpecificWPerKg is the solar-array specific power (the
	// Demo-Space slider spans 3–75 W/kg).
	SolarSpecificWPerKg float64
	SolarCostPerW       units.Money
	// RadiatorSpecificWPerKg is heat rejected per kilogram of radiator.
	RadiatorSpecificWPerKg float64
	RadiatorCostPerW       units.Money

	// ISLTerminalMassKg / ISLTerminalCost price one ISL terminal (either
	// end of a link).
	ISLTerminalMassKg float64
	ISLTerminalCost   units.Money

	// AmortizationYears spreads the one-time total into the $/hour
	// denominator.
	AmortizationYears float64
}

// DefaultCostModel returns conservative near-term numbers: Falcon-9-class
// launch, mid-range specific power, RTX-3090-class device boards.
func DefaultCostModel() CostModel {
	return CostModel{
		LaunchPerKg:       2940 * units.Dollar,
		RefAltitudeKm:     550,
		AltitudeSurcharge: 0.05,
		GEOLaunchMult:     4,

		EOSatMassKg: 120,
		EOSatCost:   1.5 * units.Million,

		SuDCBusMassKg: 400,
		SuDCBusCost:   8 * units.Million,

		DeviceMassKg: 4,
		DeviceCost:   25e3 * units.Dollar,
		DevicePowerW: 350,

		PowerOverhead:          1.2,
		SolarSpecificWPerKg:    40,
		SolarCostPerW:          150 * units.Dollar,
		RadiatorSpecificWPerKg: 60,
		RadiatorCostPerW:       30 * units.Dollar,

		ISLTerminalMassKg: 6,
		ISLTerminalCost:   300e3 * units.Dollar,

		AmortizationYears: 5,
	}
}

// finitePositive reports whether v is a usable positive model parameter.
func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// Validate rejects models with non-finite or non-positive parameters.
func (m CostModel) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"launch $/kg", float64(m.LaunchPerKg)},
		{"reference altitude", m.RefAltitudeKm},
		{"GEO launch multiplier", m.GEOLaunchMult},
		{"EO sat mass", m.EOSatMassKg},
		{"EO sat cost", float64(m.EOSatCost)},
		{"SµDC bus mass", m.SuDCBusMassKg},
		{"SµDC bus cost", float64(m.SuDCBusCost)},
		{"device mass", m.DeviceMassKg},
		{"device cost", float64(m.DeviceCost)},
		{"device power", m.DevicePowerW},
		{"power overhead", m.PowerOverhead},
		{"solar specific power", m.SolarSpecificWPerKg},
		{"solar $/W", float64(m.SolarCostPerW)},
		{"radiator specific power", m.RadiatorSpecificWPerKg},
		{"radiator $/W", float64(m.RadiatorCostPerW)},
		{"ISL terminal mass", m.ISLTerminalMassKg},
		{"ISL terminal cost", float64(m.ISLTerminalCost)},
		{"amortization horizon", m.AmortizationYears},
	}
	for _, c := range checks {
		if !finitePositive(c.v) {
			return fmt.Errorf("econ: %s must be finite and positive, got %v", c.name, c.v)
		}
	}
	if math.IsNaN(m.AltitudeSurcharge) || math.IsInf(m.AltitudeSurcharge, 0) || m.AltitudeSurcharge < 0 {
		return fmt.Errorf("econ: altitude surcharge must be finite and non-negative, got %v", m.AltitudeSurcharge)
	}
	if m.PowerOverhead < 1 {
		return fmt.Errorf("econ: power overhead %v < 1", m.PowerOverhead)
	}
	if m.GEOLaunchMult < 1 {
		return fmt.Errorf("econ: GEO launch multiplier %v < 1", m.GEOLaunchMult)
	}
	return nil
}

// Inter-shell rule names for multi-shell designs, mirroring
// netsim.InterShellKind.String().
const (
	InterShellAligned = "aligned"
	InterShellNearest = "nearest"
)

// ShellSpacingKm is the altitude gap between consecutive shells of a
// multi-shell design: shell i sits at AltitudeKm + i·ShellSpacingKm. It
// sizes both the per-shell launch surcharge and the cross-link range.
const ShellSpacingKm = 250

// Design is one constellation candidate the model prices: a Walker-style
// constellation of Planes identical planes, each carrying SatsPerPlane EO
// satellites, with SµDC compute either split across the planes (the
// in-plane cluster formation) or parked in a GEO star.
type Design struct {
	Planes       int
	SatsPerPlane int
	AltitudeKm   float64
	// K is the ISL receiver fan-in per SµDC (2 = ring); each EO satellite
	// carries two span terminals for the in-plane fabric. Ignored for GEO
	// designs, whose satellites carry a single uplink terminal.
	K int
	// Split is the number of SµDCs per plane for cluster designs.
	Split int
	// GEO parks the SµDCs in a GEO star of GEOSinks satellites instead
	// of splitting them across the planes.
	GEO      bool
	GEOSinks int
	// DevicesPerSuDC is the compute complement before the recovery
	// policy's replication factor.
	DevicesPerSuDC int
	// Recovery names the resilience policy riding on the design; it
	// scales the device complement via RecoveryDeviceFactor.
	Recovery string

	// Shells stacks the whole cluster design Shells times, each copy one
	// ShellSpacingKm above the last (shell i launches at its own
	// altitude-surcharged $/kg). 0 and 1 both mean the plain single-shell
	// design. GEO designs cannot stack.
	Shells int
	// InterShell names the cross-link rule between adjacent shells
	// (InterShellAligned or InterShellNearest; empty means aligned). Each
	// adjacent pair buys one cross-link terminal pair per satellite per
	// plane, launched at the two shells' own rates.
	InterShell string
}

// Validate rejects structurally impossible designs.
func (d Design) Validate() error {
	if d.Planes < 1 {
		return fmt.Errorf("econ: design needs ≥ 1 plane, got %d", d.Planes)
	}
	if d.SatsPerPlane < 1 {
		return fmt.Errorf("econ: design needs ≥ 1 satellite per plane, got %d", d.SatsPerPlane)
	}
	if !finitePositive(d.AltitudeKm) {
		return fmt.Errorf("econ: altitude must be finite and positive, got %v", d.AltitudeKm)
	}
	if d.GEO {
		if d.GEOSinks < 1 {
			return fmt.Errorf("econ: GEO design needs ≥ 1 sink, got %d", d.GEOSinks)
		}
	} else {
		if d.K < 2 || d.K%2 != 0 {
			return fmt.Errorf("econ: cluster design needs even K ≥ 2, got %d", d.K)
		}
		if d.Split < 1 {
			return fmt.Errorf("econ: cluster design needs ≥ 1 SµDC per plane, got %d", d.Split)
		}
	}
	if d.DevicesPerSuDC < 1 {
		return fmt.Errorf("econ: design needs ≥ 1 device per SµDC, got %d", d.DevicesPerSuDC)
	}
	if _, err := RecoveryDeviceFactor(d.Recovery); err != nil {
		return err
	}
	if d.Shells < 0 {
		return fmt.Errorf("econ: negative shell count %d", d.Shells)
	}
	if d.Shells > 1 && d.GEO {
		return fmt.Errorf("econ: GEO designs cannot stack %d shells", d.Shells)
	}
	switch d.InterShell {
	case "", InterShellAligned, InterShellNearest:
	default:
		return fmt.Errorf("econ: unknown inter-shell rule %q", d.InterShell)
	}
	return nil
}

// shellCount normalizes Shells: 0 and 1 are both the single-shell design.
func (d Design) shellCount() int {
	if d.Shells < 2 {
		return 1
	}
	return d.Shells
}

// crossLinkPairs returns the constellation-wide count of inter-shell
// cross-link pairs: one per satellite per plane per adjacent shell pair.
func (d Design) crossLinkPairs() int {
	return (d.shellCount() - 1) * d.Planes * d.SatsPerPlane
}

// TotalSats returns the EO satellite population across all shells.
func (d Design) TotalSats() int { return d.shellCount() * d.Planes * d.SatsPerPlane }

// SuDCs returns the SµDC count: Split per plane per shell for cluster
// designs, the shared GEO star size otherwise.
func (d Design) SuDCs() int {
	if d.GEO {
		return d.GEOSinks
	}
	return d.shellCount() * d.Planes * d.Split
}

// ISLTerminals returns the terminal count across the constellation: two
// span terminals per EO satellite plus K receivers per SµDC for cluster
// fabrics (both per shell), plus two terminals per inter-shell cross-link
// pair; one uplink per satellite plus one receiver per uplink for GEO
// stars.
func (d Design) ISLTerminals() int {
	if d.GEO {
		return 2 * d.TotalSats()
	}
	return 2*d.TotalSats() + d.K*d.SuDCs() + 2*d.crossLinkPairs()
}

// Breakdown itemizes one design's cost.
type Breakdown struct {
	EOSats       int
	SuDCs        int
	ISLTerminals int
	// EffectiveDevices is the constellation-wide device count after the
	// recovery policy's replication factor.
	EffectiveDevices float64
	// PowerW is the constellation-wide bus power the solar arrays and
	// radiators are sized for.
	PowerW float64
	// WetMassKg is the total launched mass.
	WetMassKg float64

	LaunchCost   units.Money
	HardwareCost units.Money
	TotalCost    units.Money
	// PerHour amortizes TotalCost over the model's horizon.
	PerHour units.Money
}

// launchRate returns the effective $/kg at altKm, monotone non-decreasing
// in altitude and never below half the reference rate.
func (m CostModel) launchRate(altKm float64) float64 {
	factor := 1 + m.AltitudeSurcharge*(altKm-m.RefAltitudeKm)/1000
	if factor < 0.5 {
		factor = 0.5
	}
	return float64(m.LaunchPerKg) * factor
}

// LaunchRatePerKg exposes the altitude-surcharged $/kg rate so property
// tests (and reports) can reconstruct per-shell launch pricing exactly.
func (m CostModel) LaunchRatePerKg(altKm float64) float64 { return m.launchRate(altKm) }

// Cost prices a design. It validates both inputs and guarantees a finite,
// strictly positive breakdown on success — degenerate designs cannot
// score an infinite goodput-per-dollar by costing nothing.
func Cost(m CostModel, d Design) (Breakdown, error) {
	if err := m.Validate(); err != nil {
		return Breakdown{}, err
	}
	if err := d.Validate(); err != nil {
		return Breakdown{}, err
	}
	if d.shellCount() > 1 {
		return costMultiShell(m, d)
	}
	factor, err := RecoveryDeviceFactor(d.Recovery)
	if err != nil {
		return Breakdown{}, err
	}

	b := Breakdown{
		EOSats:           d.TotalSats(),
		SuDCs:            d.SuDCs(),
		ISLTerminals:     d.ISLTerminals(),
		EffectiveDevices: factor * float64(d.DevicesPerSuDC) * float64(d.SuDCs()),
	}
	b.PowerW = b.EffectiveDevices * m.DevicePowerW * m.PowerOverhead

	// Mass: EO buses, SµDC buses, devices, power and thermal systems
	// sized to the bus power, and ISL terminals. Terminal mass is split
	// between the LEO and GEO segments for star designs.
	solarKg := b.PowerW / m.SolarSpecificWPerKg
	radiatorKg := b.PowerW / m.RadiatorSpecificWPerKg
	eoTerm := 0
	sudcTerm := 0
	if d.GEO {
		eoTerm = b.EOSats // one uplink terminal per satellite
		sudcTerm = b.ISLTerminals - eoTerm
	} else {
		eoTerm = 2 * b.EOSats
		sudcTerm = d.K * b.SuDCs
	}
	leoMass := float64(b.EOSats)*m.EOSatMassKg + float64(eoTerm)*m.ISLTerminalMassKg
	sudcMass := float64(b.SuDCs)*m.SuDCBusMassKg +
		b.EffectiveDevices*m.DeviceMassKg +
		solarKg + radiatorKg +
		float64(sudcTerm)*m.ISLTerminalMassKg

	leoRate := m.launchRate(d.AltitudeKm)
	launch := leoMass * leoRate
	if d.GEO {
		launch += sudcMass * float64(m.LaunchPerKg) * m.GEOLaunchMult
	} else {
		launch += sudcMass * leoRate
	}
	b.WetMassKg = leoMass + sudcMass

	hardware := float64(b.EOSats)*float64(m.EOSatCost) +
		float64(b.SuDCs)*float64(m.SuDCBusCost) +
		b.EffectiveDevices*float64(m.DeviceCost) +
		b.PowerW*(float64(m.SolarCostPerW)+float64(m.RadiatorCostPerW)) +
		float64(b.ISLTerminals)*float64(m.ISLTerminalCost)

	b.LaunchCost = units.Money(launch)
	b.HardwareCost = units.Money(hardware)
	b.TotalCost = units.Money(launch + hardware)
	b.PerHour = units.Money(float64(b.TotalCost) / (m.AmortizationYears * 8760))

	// Extreme-but-valid parameters can overflow to +Inf; a search must
	// see an error, not an infinite denominator.
	for _, v := range []float64{b.WetMassKg, b.PowerW, float64(b.LaunchCost),
		float64(b.HardwareCost), float64(b.TotalCost), float64(b.PerHour)} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Breakdown{}, fmt.Errorf("econ: cost overflow for design %+v", d)
		}
	}
	if b.TotalCost <= 0 || b.PerHour <= 0 {
		return Breakdown{}, fmt.Errorf("econ: non-positive cost %v for design %+v", b.TotalCost, d)
	}
	return b, nil
}

// costMultiShell prices a Shells-deep stack as the exact sum of its
// shells — each priced through the unchanged single-shell path at its own
// altitude (base + i·ShellSpacingKm, so higher shells pay the launch
// surcharge) — plus the inter-shell cross-link terminals: one pair per
// satellite per plane per adjacent shell pair, each end launched at its
// own shell's rate. Summing the single-shell breakdowns field by field
// (rather than scaling one) keeps "a 2-shell design costs exactly the sum
// of its shells plus cross terminals" an identity, not an approximation —
// the property the econ test suite pins.
func costMultiShell(m CostModel, d Design) (Breakdown, error) {
	var b Breakdown
	var launch, hardware float64
	shells := d.shellCount()
	for i := 0; i < shells; i++ {
		sd := d
		sd.Shells = 0
		sd.InterShell = ""
		sd.AltitudeKm = d.AltitudeKm + float64(i)*ShellSpacingKm
		sb, err := Cost(m, sd)
		if err != nil {
			return Breakdown{}, fmt.Errorf("econ: shell %d: %w", i, err)
		}
		b.EOSats += sb.EOSats
		b.SuDCs += sb.SuDCs
		b.ISLTerminals += sb.ISLTerminals
		b.EffectiveDevices += sb.EffectiveDevices
		b.PowerW += sb.PowerW
		b.WetMassKg += sb.WetMassKg
		launch += float64(sb.LaunchCost)
		hardware += float64(sb.HardwareCost)
	}

	// Cross-link terminals: pairsPerGap pairs between each adjacent shell
	// pair, the lower terminal launched at shell i's rate and the upper at
	// shell i+1's.
	pairsPerGap := d.Planes * d.SatsPerPlane
	var crossLaunch, crossHardware, crossMass float64
	for i := 0; i+1 < shells; i++ {
		loRate := m.launchRate(d.AltitudeKm + float64(i)*ShellSpacingKm)
		hiRate := m.launchRate(d.AltitudeKm + float64(i+1)*ShellSpacingKm)
		crossLaunch += float64(pairsPerGap) * m.ISLTerminalMassKg * (loRate + hiRate)
		crossHardware += float64(2*pairsPerGap) * float64(m.ISLTerminalCost)
		crossMass += float64(2*pairsPerGap) * m.ISLTerminalMassKg
	}
	b.ISLTerminals += 2 * (shells - 1) * pairsPerGap
	b.WetMassKg += crossMass
	launch += crossLaunch
	hardware += crossHardware

	b.LaunchCost = units.Money(launch)
	b.HardwareCost = units.Money(hardware)
	b.TotalCost = units.Money(launch + hardware)
	b.PerHour = units.Money(float64(b.TotalCost) / (m.AmortizationYears * 8760))

	for _, v := range []float64{b.WetMassKg, b.PowerW, float64(b.LaunchCost),
		float64(b.HardwareCost), float64(b.TotalCost), float64(b.PerHour)} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Breakdown{}, fmt.Errorf("econ: cost overflow for design %+v", d)
		}
	}
	return b, nil
}
