// Package econ is the constellation cost model behind the design-space
// optimizer: it prices a candidate constellation design — EO satellites,
// SµDC compute satellites, ISL terminals, and the solar/radiator power
// systems that carry the compute — from first principles ($/kg launch
// mass, specific power, unit hardware costs) and amortizes the total over
// a mission horizon into a $/hour denominator for goodput-per-dollar
// objectives.
//
// The model follows the shape of the paper's §6 economics argument (SµDC
// launch capex vs recurring downlink spend) and the Demo-Space
// orbital-economics calculator: wet mass drives launch cost through a
// $/kg rate, compute power drives solar-array and radiator mass through
// specific-power densities, and everything amortizes linearly. Every
// entry point validates its inputs and returns an error — never a NaN,
// an Inf, or a panic — so a heuristic search can feed it arbitrary
// candidates safely.
package econ

import (
	"fmt"
	"math"

	"spacedc/internal/units"
)

// Recovery-policy names the cost model knows how to price. They mirror
// resilience.StandardPolicies.
const (
	RecoveryNone       = "none"
	RecoveryRetry      = "retry"
	RecoveryCheckpoint = "checkpoint"
	RecoveryDMR        = "dmr"
	RecoveryTMR        = "tmr"
	RecoverySAAPause   = "saa-pause"
)

// RecoveryDeviceFactor returns the hardware multiplier a recovery policy
// imposes on a SµDC's device complement: replicated execution buys its
// redundancy in silicon (DMR 2×, TMR 3×), checkpointing pays a modest
// non-volatile-buffer overhead, and the software-only policies are free.
func RecoveryDeviceFactor(name string) (float64, error) {
	switch name {
	case RecoveryNone, RecoveryRetry, RecoverySAAPause:
		return 1, nil
	case RecoveryCheckpoint:
		return 1.15, nil
	case RecoveryDMR:
		return 2, nil
	case RecoveryTMR:
		return 3, nil
	}
	return 0, fmt.Errorf("econ: unknown recovery policy %q", name)
}

// CostModel prices one constellation design. The zero value is unusable;
// start from DefaultCostModel and override fields.
type CostModel struct {
	// LaunchPerKg is the $/kg launch rate to the reference LEO altitude
	// (RefAltitudeKm).
	LaunchPerKg units.Money
	// RefAltitudeKm anchors the altitude surcharge (default 550 km).
	RefAltitudeKm float64
	// AltitudeSurcharge is the fractional LaunchPerKg increase per
	// 1000 km above the reference altitude (injection Δv costs mass).
	// Below the reference the rate never drops under half.
	AltitudeSurcharge float64
	// GEOLaunchMult multiplies the launch rate for mass delivered to GEO
	// (the Fig 15 star's SµDCs).
	GEOLaunchMult float64

	// EOSatMassKg / EOSatCost price one EO satellite bus (camera,
	// avionics, no ISL terminals — those are itemized separately).
	EOSatMassKg float64
	EOSatCost   units.Money

	// SuDCBusMassKg / SuDCBusCost price one SµDC's structure and
	// avionics, excluding devices, power, thermal, and terminals.
	SuDCBusMassKg float64
	SuDCBusCost   units.Money

	// DeviceMassKg / DeviceCost / DevicePowerW price one compute device
	// (board + shielding) and set its dissipation for power sizing.
	DeviceMassKg float64
	DeviceCost   units.Money
	DevicePowerW float64

	// PowerOverhead scales device power into bus power (conversion
	// losses, avionics — an orbital PUE; ≥ 1).
	PowerOverhead float64
	// SolarSpecificWPerKg is the solar-array specific power (the
	// Demo-Space slider spans 3–75 W/kg).
	SolarSpecificWPerKg float64
	SolarCostPerW       units.Money
	// RadiatorSpecificWPerKg is heat rejected per kilogram of radiator.
	RadiatorSpecificWPerKg float64
	RadiatorCostPerW       units.Money

	// ISLTerminalMassKg / ISLTerminalCost price one ISL terminal (either
	// end of a link).
	ISLTerminalMassKg float64
	ISLTerminalCost   units.Money

	// AmortizationYears spreads the one-time total into the $/hour
	// denominator.
	AmortizationYears float64
}

// DefaultCostModel returns conservative near-term numbers: Falcon-9-class
// launch, mid-range specific power, RTX-3090-class device boards.
func DefaultCostModel() CostModel {
	return CostModel{
		LaunchPerKg:       2940 * units.Dollar,
		RefAltitudeKm:     550,
		AltitudeSurcharge: 0.05,
		GEOLaunchMult:     4,

		EOSatMassKg: 120,
		EOSatCost:   1.5 * units.Million,

		SuDCBusMassKg: 400,
		SuDCBusCost:   8 * units.Million,

		DeviceMassKg: 4,
		DeviceCost:   25e3 * units.Dollar,
		DevicePowerW: 350,

		PowerOverhead:          1.2,
		SolarSpecificWPerKg:    40,
		SolarCostPerW:          150 * units.Dollar,
		RadiatorSpecificWPerKg: 60,
		RadiatorCostPerW:       30 * units.Dollar,

		ISLTerminalMassKg: 6,
		ISLTerminalCost:   300e3 * units.Dollar,

		AmortizationYears: 5,
	}
}

// finitePositive reports whether v is a usable positive model parameter.
func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// Validate rejects models with non-finite or non-positive parameters.
func (m CostModel) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"launch $/kg", float64(m.LaunchPerKg)},
		{"reference altitude", m.RefAltitudeKm},
		{"GEO launch multiplier", m.GEOLaunchMult},
		{"EO sat mass", m.EOSatMassKg},
		{"EO sat cost", float64(m.EOSatCost)},
		{"SµDC bus mass", m.SuDCBusMassKg},
		{"SµDC bus cost", float64(m.SuDCBusCost)},
		{"device mass", m.DeviceMassKg},
		{"device cost", float64(m.DeviceCost)},
		{"device power", m.DevicePowerW},
		{"power overhead", m.PowerOverhead},
		{"solar specific power", m.SolarSpecificWPerKg},
		{"solar $/W", float64(m.SolarCostPerW)},
		{"radiator specific power", m.RadiatorSpecificWPerKg},
		{"radiator $/W", float64(m.RadiatorCostPerW)},
		{"ISL terminal mass", m.ISLTerminalMassKg},
		{"ISL terminal cost", float64(m.ISLTerminalCost)},
		{"amortization horizon", m.AmortizationYears},
	}
	for _, c := range checks {
		if !finitePositive(c.v) {
			return fmt.Errorf("econ: %s must be finite and positive, got %v", c.name, c.v)
		}
	}
	if math.IsNaN(m.AltitudeSurcharge) || math.IsInf(m.AltitudeSurcharge, 0) || m.AltitudeSurcharge < 0 {
		return fmt.Errorf("econ: altitude surcharge must be finite and non-negative, got %v", m.AltitudeSurcharge)
	}
	if m.PowerOverhead < 1 {
		return fmt.Errorf("econ: power overhead %v < 1", m.PowerOverhead)
	}
	if m.GEOLaunchMult < 1 {
		return fmt.Errorf("econ: GEO launch multiplier %v < 1", m.GEOLaunchMult)
	}
	return nil
}

// Design is one constellation candidate the model prices: a Walker-style
// constellation of Planes identical planes, each carrying SatsPerPlane EO
// satellites, with SµDC compute either split across the planes (the
// in-plane cluster formation) or parked in a GEO star.
type Design struct {
	Planes       int
	SatsPerPlane int
	AltitudeKm   float64
	// K is the ISL receiver fan-in per SµDC (2 = ring); each EO satellite
	// carries two span terminals for the in-plane fabric. Ignored for GEO
	// designs, whose satellites carry a single uplink terminal.
	K int
	// Split is the number of SµDCs per plane for cluster designs.
	Split int
	// GEO parks the SµDCs in a GEO star of GEOSinks satellites instead
	// of splitting them across the planes.
	GEO      bool
	GEOSinks int
	// DevicesPerSuDC is the compute complement before the recovery
	// policy's replication factor.
	DevicesPerSuDC int
	// Recovery names the resilience policy riding on the design; it
	// scales the device complement via RecoveryDeviceFactor.
	Recovery string
}

// Validate rejects structurally impossible designs.
func (d Design) Validate() error {
	if d.Planes < 1 {
		return fmt.Errorf("econ: design needs ≥ 1 plane, got %d", d.Planes)
	}
	if d.SatsPerPlane < 1 {
		return fmt.Errorf("econ: design needs ≥ 1 satellite per plane, got %d", d.SatsPerPlane)
	}
	if !finitePositive(d.AltitudeKm) {
		return fmt.Errorf("econ: altitude must be finite and positive, got %v", d.AltitudeKm)
	}
	if d.GEO {
		if d.GEOSinks < 1 {
			return fmt.Errorf("econ: GEO design needs ≥ 1 sink, got %d", d.GEOSinks)
		}
	} else {
		if d.K < 2 || d.K%2 != 0 {
			return fmt.Errorf("econ: cluster design needs even K ≥ 2, got %d", d.K)
		}
		if d.Split < 1 {
			return fmt.Errorf("econ: cluster design needs ≥ 1 SµDC per plane, got %d", d.Split)
		}
	}
	if d.DevicesPerSuDC < 1 {
		return fmt.Errorf("econ: design needs ≥ 1 device per SµDC, got %d", d.DevicesPerSuDC)
	}
	if _, err := RecoveryDeviceFactor(d.Recovery); err != nil {
		return err
	}
	return nil
}

// TotalSats returns the EO satellite population.
func (d Design) TotalSats() int { return d.Planes * d.SatsPerPlane }

// SuDCs returns the SµDC count: Split per plane for cluster designs, the
// shared GEO star size otherwise.
func (d Design) SuDCs() int {
	if d.GEO {
		return d.GEOSinks
	}
	return d.Planes * d.Split
}

// ISLTerminals returns the terminal count across the constellation: two
// span terminals per EO satellite plus K receivers per SµDC for cluster
// fabrics; one uplink per satellite plus one receiver per uplink for GEO
// stars.
func (d Design) ISLTerminals() int {
	if d.GEO {
		return 2 * d.TotalSats()
	}
	return 2*d.TotalSats() + d.K*d.SuDCs()
}

// Breakdown itemizes one design's cost.
type Breakdown struct {
	EOSats       int
	SuDCs        int
	ISLTerminals int
	// EffectiveDevices is the constellation-wide device count after the
	// recovery policy's replication factor.
	EffectiveDevices float64
	// PowerW is the constellation-wide bus power the solar arrays and
	// radiators are sized for.
	PowerW float64
	// WetMassKg is the total launched mass.
	WetMassKg float64

	LaunchCost   units.Money
	HardwareCost units.Money
	TotalCost    units.Money
	// PerHour amortizes TotalCost over the model's horizon.
	PerHour units.Money
}

// launchRate returns the effective $/kg at altKm, monotone non-decreasing
// in altitude and never below half the reference rate.
func (m CostModel) launchRate(altKm float64) float64 {
	factor := 1 + m.AltitudeSurcharge*(altKm-m.RefAltitudeKm)/1000
	if factor < 0.5 {
		factor = 0.5
	}
	return float64(m.LaunchPerKg) * factor
}

// Cost prices a design. It validates both inputs and guarantees a finite,
// strictly positive breakdown on success — degenerate designs cannot
// score an infinite goodput-per-dollar by costing nothing.
func Cost(m CostModel, d Design) (Breakdown, error) {
	if err := m.Validate(); err != nil {
		return Breakdown{}, err
	}
	if err := d.Validate(); err != nil {
		return Breakdown{}, err
	}
	factor, err := RecoveryDeviceFactor(d.Recovery)
	if err != nil {
		return Breakdown{}, err
	}

	b := Breakdown{
		EOSats:           d.TotalSats(),
		SuDCs:            d.SuDCs(),
		ISLTerminals:     d.ISLTerminals(),
		EffectiveDevices: factor * float64(d.DevicesPerSuDC) * float64(d.SuDCs()),
	}
	b.PowerW = b.EffectiveDevices * m.DevicePowerW * m.PowerOverhead

	// Mass: EO buses, SµDC buses, devices, power and thermal systems
	// sized to the bus power, and ISL terminals. Terminal mass is split
	// between the LEO and GEO segments for star designs.
	solarKg := b.PowerW / m.SolarSpecificWPerKg
	radiatorKg := b.PowerW / m.RadiatorSpecificWPerKg
	eoTerm := 0
	sudcTerm := 0
	if d.GEO {
		eoTerm = b.EOSats // one uplink terminal per satellite
		sudcTerm = b.ISLTerminals - eoTerm
	} else {
		eoTerm = 2 * b.EOSats
		sudcTerm = d.K * b.SuDCs
	}
	leoMass := float64(b.EOSats)*m.EOSatMassKg + float64(eoTerm)*m.ISLTerminalMassKg
	sudcMass := float64(b.SuDCs)*m.SuDCBusMassKg +
		b.EffectiveDevices*m.DeviceMassKg +
		solarKg + radiatorKg +
		float64(sudcTerm)*m.ISLTerminalMassKg

	leoRate := m.launchRate(d.AltitudeKm)
	launch := leoMass * leoRate
	if d.GEO {
		launch += sudcMass * float64(m.LaunchPerKg) * m.GEOLaunchMult
	} else {
		launch += sudcMass * leoRate
	}
	b.WetMassKg = leoMass + sudcMass

	hardware := float64(b.EOSats)*float64(m.EOSatCost) +
		float64(b.SuDCs)*float64(m.SuDCBusCost) +
		b.EffectiveDevices*float64(m.DeviceCost) +
		b.PowerW*(float64(m.SolarCostPerW)+float64(m.RadiatorCostPerW)) +
		float64(b.ISLTerminals)*float64(m.ISLTerminalCost)

	b.LaunchCost = units.Money(launch)
	b.HardwareCost = units.Money(hardware)
	b.TotalCost = units.Money(launch + hardware)
	b.PerHour = units.Money(float64(b.TotalCost) / (m.AmortizationYears * 8760))

	// Extreme-but-valid parameters can overflow to +Inf; a search must
	// see an error, not an infinite denominator.
	for _, v := range []float64{b.WetMassKg, b.PowerW, float64(b.LaunchCost),
		float64(b.HardwareCost), float64(b.TotalCost), float64(b.PerHour)} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Breakdown{}, fmt.Errorf("econ: cost overflow for design %+v", d)
		}
	}
	if b.TotalCost <= 0 || b.PerHour <= 0 {
		return Breakdown{}, fmt.Errorf("econ: non-positive cost %v for design %+v", b.TotalCost, d)
	}
	return b, nil
}
