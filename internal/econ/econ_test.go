package econ

import (
	"math"
	"testing"

	"spacedc/internal/units"
)

// baseDesign is a mid-sized cluster design the property tests perturb.
func baseDesign() Design {
	return Design{
		Planes:         2,
		SatsPerPlane:   16,
		AltitudeKm:     550,
		K:              4,
		Split:          2,
		DevicesPerSuDC: 4,
		Recovery:       RecoveryRetry,
	}
}

func mustCost(t *testing.T, m CostModel, d Design) Breakdown {
	t.Helper()
	b, err := Cost(m, d)
	if err != nil {
		t.Fatalf("Cost(%+v): %v", d, err)
	}
	return b
}

// TestCostStrictlyPositive asserts every valid design costs strictly more
// than nothing, across the design axes and both deployment shapes — the
// guard that keeps a degenerate candidate from scoring ∞ goodput/$.
func TestCostStrictlyPositive(t *testing.T) {
	m := DefaultCostModel()
	designs := []Design{
		{Planes: 1, SatsPerPlane: 1, AltitudeKm: 300, K: 2, Split: 1, DevicesPerSuDC: 1, Recovery: RecoveryNone},
		baseDesign(),
		{Planes: 8, SatsPerPlane: 64, AltitudeKm: 1200, K: 8, Split: 4, DevicesPerSuDC: 16, Recovery: RecoveryTMR},
		{Planes: 3, SatsPerPlane: 24, AltitudeKm: 550, GEO: true, GEOSinks: 3, DevicesPerSuDC: 8, Recovery: RecoveryCheckpoint},
	}
	for _, d := range designs {
		b := mustCost(t, m, d)
		if b.TotalCost <= 0 || b.PerHour <= 0 || b.WetMassKg <= 0 || b.PowerW <= 0 {
			t.Errorf("design %+v: non-positive breakdown %+v", d, b)
		}
		if b.LaunchCost <= 0 || b.HardwareCost <= 0 {
			t.Errorf("design %+v: non-positive cost components %+v", d, b)
		}
	}
}

// TestCostMonotone asserts cost is monotone non-decreasing (strictly
// increasing, in fact) in satellites per plane, planes, and devices.
func TestCostMonotone(t *testing.T) {
	m := DefaultCostModel()
	axes := []struct {
		name string
		bump func(Design) Design
	}{
		{"sats-per-plane", func(d Design) Design { d.SatsPerPlane++; return d }},
		{"planes", func(d Design) Design { d.Planes++; return d }},
		{"devices", func(d Design) Design { d.DevicesPerSuDC++; return d }},
		{"altitude", func(d Design) Design { d.AltitudeKm += 100; return d }},
	}
	for _, ax := range axes {
		d := baseDesign()
		prev := mustCost(t, m, d)
		for i := 0; i < 8; i++ {
			d = ax.bump(d)
			cur := mustCost(t, m, d)
			if cur.TotalCost < prev.TotalCost {
				t.Fatalf("%s step %d: cost decreased %v -> %v", ax.name, i, prev.TotalCost, cur.TotalCost)
			}
			if ax.name != "altitude" && cur.TotalCost == prev.TotalCost {
				t.Fatalf("%s step %d: cost flat at %v", ax.name, i, cur.TotalCost)
			}
			prev = cur
		}
	}

	// GEO designs grow with planes too (more EO sats), even though the
	// sink count is fixed.
	d := Design{Planes: 1, SatsPerPlane: 16, AltitudeKm: 550, GEO: true, GEOSinks: 3,
		DevicesPerSuDC: 4, Recovery: RecoveryNone}
	prev := mustCost(t, m, d)
	d.Planes = 2
	if cur := mustCost(t, m, d); cur.TotalCost <= prev.TotalCost {
		t.Errorf("GEO design: doubling planes did not increase cost (%v -> %v)", prev.TotalCost, cur.TotalCost)
	}
}

// TestAmortizationPreservesRanking asserts the amortization horizon is a
// pure scale on the $/hour denominator: whichever design is cheaper at one
// horizon stays cheaper at any other, so the optimizer's ranking is
// horizon-invariant.
func TestAmortizationPreservesRanking(t *testing.T) {
	cheap := baseDesign()
	rich := baseDesign()
	rich.SatsPerPlane *= 2
	rich.DevicesPerSuDC *= 2
	rich.Recovery = RecoveryTMR

	for _, years := range []float64{0.5, 1, 3, 5, 10, 25} {
		m := DefaultCostModel()
		m.AmortizationYears = years
		cb := mustCost(t, m, cheap)
		rb := mustCost(t, m, rich)
		if cb.PerHour >= rb.PerHour {
			t.Errorf("horizon %v y: cheap design per-hour %v ≥ rich %v", years, cb.PerHour, rb.PerHour)
		}
		// The ratio, not just the ordering, is horizon-invariant.
		base := DefaultCostModel()
		cb0 := mustCost(t, base, cheap)
		rb0 := mustCost(t, base, rich)
		got := float64(cb.PerHour) / float64(rb.PerHour)
		want := float64(cb0.PerHour) / float64(rb0.PerHour)
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("horizon %v y: per-hour ratio %v, want %v", years, got, want)
		}
	}
}

// TestRecoveryFactorOrdering asserts replication prices protection in the
// §9 ladder order: software-only < checkpoint < DMR < TMR.
func TestRecoveryFactorOrdering(t *testing.T) {
	m := DefaultCostModel()
	prev := units.Money(0)
	for _, rec := range []string{RecoveryNone, RecoveryCheckpoint, RecoveryDMR, RecoveryTMR} {
		d := baseDesign()
		d.Recovery = rec
		b := mustCost(t, m, d)
		if b.TotalCost <= prev {
			t.Errorf("recovery %s: cost %v not above previous rung %v", rec, b.TotalCost, prev)
		}
		prev = b.TotalCost
	}
	if _, err := RecoveryDeviceFactor("voodoo"); err == nil {
		t.Error("unknown recovery policy accepted")
	}
}

// TestCostRejectsInvalid asserts the validation surface: bad models and
// bad designs error instead of pricing nonsense.
func TestCostRejectsInvalid(t *testing.T) {
	good := DefaultCostModel()

	badModels := []func(CostModel) CostModel{
		func(m CostModel) CostModel { m.LaunchPerKg = 0; return m },
		func(m CostModel) CostModel { m.LaunchPerKg = units.Money(math.NaN()); return m },
		func(m CostModel) CostModel { m.SolarSpecificWPerKg = math.Inf(1); return m },
		func(m CostModel) CostModel { m.AmortizationYears = -1; return m },
		func(m CostModel) CostModel { m.PowerOverhead = 0.5; return m },
		func(m CostModel) CostModel { m.AltitudeSurcharge = math.NaN(); return m },
		func(m CostModel) CostModel { m.GEOLaunchMult = 0.9; return m },
	}
	for i, mutate := range badModels {
		if _, err := Cost(mutate(good), baseDesign()); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}

	badDesigns := []func(Design) Design{
		func(d Design) Design { d.Planes = 0; return d },
		func(d Design) Design { d.SatsPerPlane = -4; return d },
		func(d Design) Design { d.AltitudeKm = math.NaN(); return d },
		func(d Design) Design { d.K = 3; return d },
		func(d Design) Design { d.K = 0; return d },
		func(d Design) Design { d.Split = 0; return d },
		func(d Design) Design { d.DevicesPerSuDC = 0; return d },
		func(d Design) Design { d.Recovery = "hope"; return d },
		func(d Design) Design { d.GEO = true; d.GEOSinks = 0; return d },
	}
	for i, mutate := range badDesigns {
		if _, err := Cost(good, mutate(baseDesign())); err == nil {
			t.Errorf("bad design %d accepted", i)
		}
	}
}

// TestCostOverflowErrors asserts extreme-but-individually-valid parameters
// that overflow the arithmetic surface as errors, not ±Inf.
func TestCostOverflowErrors(t *testing.T) {
	m := DefaultCostModel()
	m.LaunchPerKg = units.Money(math.MaxFloat64 / 2)
	m.EOSatMassKg = math.MaxFloat64 / 2
	if _, err := Cost(m, baseDesign()); err == nil {
		t.Error("overflowing model priced without error")
	}
}

// TestMultiShellCostStrictlyIncreasing asserts $/h grows strictly with
// every shell added to a stack: each shell is a full copy of the design
// at a higher (surcharged) altitude, so the stack can never get cheaper.
func TestMultiShellCostStrictlyIncreasing(t *testing.T) {
	m := DefaultCostModel()
	d := baseDesign()
	d.InterShell = InterShellAligned
	prev := mustCost(t, m, d).PerHour
	for shells := 2; shells <= 5; shells++ {
		d.Shells = shells
		cur := mustCost(t, m, d).PerHour
		if cur <= prev {
			t.Errorf("PerHour %v at %d shells ≤ %v at %d — not strictly increasing",
				cur, shells, prev, shells-1)
		}
		prev = cur
	}
}

// TestMultiShellCostMonotoneInAltitude asserts a stack's $/h is monotone
// non-decreasing in the base altitude: every shell (and both ends of every
// cross link) launches at a rate that only grows with altitude.
func TestMultiShellCostMonotoneInAltitude(t *testing.T) {
	m := DefaultCostModel()
	d := baseDesign()
	d.Shells = 3
	d.InterShell = InterShellNearest
	prev := units.Money(0)
	for _, alt := range []float64{350, 550, 800, 1200, 2000} {
		d.AltitudeKm = alt
		cur := mustCost(t, m, d).PerHour
		if cur < prev {
			t.Errorf("PerHour %v at base altitude %v km < %v at the lower base — not monotone", cur, alt, prev)
		}
		prev = cur
	}
}

// TestTwoShellCostIsExactSum pins the multi-shell pricing identity: a
// 2-shell design's launch and hardware costs equal — to the last bit, not
// within a tolerance — the two single-shell designs at their respective
// altitudes plus the cross-link terminal terms reconstructed from
// LaunchRatePerKg. The implementation accumulates in exactly this
// left-associated order, so any drift is a real model change.
func TestTwoShellCostIsExactSum(t *testing.T) {
	m := DefaultCostModel()
	d := baseDesign()
	d.Shells = 2
	d.InterShell = InterShellAligned
	got := mustCost(t, m, d)

	lo := d
	lo.Shells = 0
	lo.InterShell = ""
	hi := lo
	hi.AltitudeKm = d.AltitudeKm + ShellSpacingKm
	bLo := mustCost(t, m, lo)
	bHi := mustCost(t, m, hi)

	pairs := d.Planes * d.SatsPerPlane
	crossLaunch := float64(pairs) * m.ISLTerminalMassKg *
		(m.LaunchRatePerKg(lo.AltitudeKm) + m.LaunchRatePerKg(hi.AltitudeKm))
	crossHardware := float64(2*pairs) * float64(m.ISLTerminalCost)

	if want := units.Money(float64(bLo.LaunchCost) + float64(bHi.LaunchCost) + crossLaunch); got.LaunchCost != want {
		t.Errorf("LaunchCost = %v, want exact sum %v (Δ %v)", got.LaunchCost, want, got.LaunchCost-want)
	}
	if want := units.Money(float64(bLo.HardwareCost) + float64(bHi.HardwareCost) + crossHardware); got.HardwareCost != want {
		t.Errorf("HardwareCost = %v, want exact sum %v (Δ %v)", got.HardwareCost, want, got.HardwareCost-want)
	}
	if want := bLo.EOSats + bHi.EOSats; got.EOSats != want {
		t.Errorf("EOSats = %d, want %d", got.EOSats, want)
	}
	if want := bLo.SuDCs + bHi.SuDCs; got.SuDCs != want {
		t.Errorf("SuDCs = %d, want %d", got.SuDCs, want)
	}
	if want := bLo.ISLTerminals + bHi.ISLTerminals + 2*pairs; got.ISLTerminals != want {
		t.Errorf("ISLTerminals = %d, want %d (shells plus one cross pair per satellite)", got.ISLTerminals, want)
	}
	if want := bLo.WetMassKg + bHi.WetMassKg + float64(2*pairs)*m.ISLTerminalMassKg; got.WetMassKg != want {
		t.Errorf("WetMassKg = %v, want exact sum %v", got.WetMassKg, want)
	}
}

// TestMultiShellRejectsInvalid covers the multi-shell validation seams:
// GEO stacks, negative shell counts, and unknown inter-shell rules.
func TestMultiShellRejectsInvalid(t *testing.T) {
	m := DefaultCostModel()
	bad := []Design{
		func() Design { d := baseDesign(); d.Shells = -1; return d }(),
		func() Design { d := baseDesign(); d.Shells = 2; d.InterShell = "diagonal"; return d }(),
		{Planes: 2, SatsPerPlane: 8, AltitudeKm: 550, GEO: true, GEOSinks: 2,
			DevicesPerSuDC: 4, Recovery: RecoveryNone, Shells: 2},
	}
	for _, d := range bad {
		if _, err := Cost(m, d); err == nil {
			t.Errorf("Cost accepted invalid multi-shell design %+v", d)
		}
	}
}
