package econ

import (
	"math"
	"testing"

	"spacedc/internal/units"
)

// FuzzCostModel feeds arbitrary — including NaN, ±Inf, and extreme —
// model and design parameters through Cost. The contract under test: Cost
// never panics, and either returns an error or a breakdown whose every
// field is finite (no NaN, no ±Inf) and whose totals are strictly
// positive.
func FuzzCostModel(f *testing.F) {
	nan := math.NaN()
	inf := math.Inf(1)
	huge := math.MaxFloat64 / 4

	// Seed corpus: a valid point, then NaN/±Inf/extreme corners on the
	// axes most likely to poison the arithmetic.
	f.Add(2940.0, 550.0, 0.05, 4.0, 120.0, 400.0, 4.0, 350.0, 1.2, 40.0, 60.0, 6.0, 5.0,
		2, 16, 550.0, 4, 2, false, 0, 4, 1)
	f.Add(nan, 550.0, 0.05, 4.0, 120.0, 400.0, 4.0, 350.0, 1.2, 40.0, 60.0, 6.0, 5.0,
		2, 16, 550.0, 4, 2, false, 0, 4, 0)
	f.Add(inf, 550.0, 0.05, 4.0, 120.0, 400.0, 4.0, 350.0, 1.2, 40.0, 60.0, 6.0, 5.0,
		2, 16, 550.0, 4, 2, false, 0, 4, 2)
	f.Add(-inf, -550.0, nan, -4.0, nan, inf, -4.0, nan, 0.0, 0.0, -60.0, inf, nan,
		0, -16, nan, 3, 0, true, -1, 0, 5)
	f.Add(huge, 550.0, inf, 4.0, huge, 400.0, huge, huge, 1.2, 1e-300, 1e-300, 6.0, 1e-300,
		1<<20, 1<<20, 35786.0, 1<<10, 1<<10, false, 0, 1<<20, 4)
	f.Add(2940.0, 550.0, 0.05, 4.0, 120.0, 400.0, 4.0, 350.0, 1.2, 40.0, 60.0, 6.0, 5.0,
		3, 24, 550.0, 2, 1, true, 3, 8, 3)
	f.Add(1e-300, 1e-300, 0.0, 1.0, 1e-300, 1e-300, 1e-300, 1e-300, 1.0, huge, huge, 1e-300, huge,
		1, 1, 1e-300, 2, 1, false, 0, 1, 1)

	recoveries := []string{RecoveryNone, RecoveryRetry, RecoveryCheckpoint,
		RecoveryDMR, RecoveryTMR, RecoverySAAPause, "bogus"}

	f.Fuzz(func(t *testing.T,
		launchPerKg, refAlt, surcharge, geoMult,
		eoMass, busMass, devMass, devPower, overhead,
		solarW, radW, termMass, years float64,
		planes, satsPerPlane int, altKm float64, k, split int,
		geo bool, geoSinks, devices, recIdx int,
	) {
		m := DefaultCostModel()
		m.LaunchPerKg = units.Money(launchPerKg)
		m.RefAltitudeKm = refAlt
		m.AltitudeSurcharge = surcharge
		m.GEOLaunchMult = geoMult
		m.EOSatMassKg = eoMass
		m.SuDCBusMassKg = busMass
		m.DeviceMassKg = devMass
		m.DevicePowerW = devPower
		m.PowerOverhead = overhead
		m.SolarSpecificWPerKg = solarW
		m.RadiatorSpecificWPerKg = radW
		m.ISLTerminalMassKg = termMass
		m.AmortizationYears = years

		idx := recIdx % len(recoveries)
		if idx < 0 {
			idx += len(recoveries)
		}
		d := Design{
			Planes:         planes,
			SatsPerPlane:   satsPerPlane,
			AltitudeKm:     altKm,
			K:              k,
			Split:          split,
			GEO:            geo,
			GEOSinks:       geoSinks,
			DevicesPerSuDC: devices,
			Recovery:       recoveries[idx],
		}

		b, err := Cost(m, d)
		if err != nil {
			return
		}
		for name, v := range map[string]float64{
			"EffectiveDevices": b.EffectiveDevices,
			"PowerW":           b.PowerW,
			"WetMassKg":        b.WetMassKg,
			"LaunchCost":       float64(b.LaunchCost),
			"HardwareCost":     float64(b.HardwareCost),
			"TotalCost":        float64(b.TotalCost),
			"PerHour":          float64(b.PerHour),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s = %v is not finite (model %+v, design %+v)", name, v, m, d)
			}
		}
		if b.TotalCost <= 0 || b.PerHour <= 0 {
			t.Fatalf("non-positive cost %v / %v per hour (model %+v, design %+v)",
				b.TotalCost, b.PerHour, m, d)
		}
	})
}
