// Package constellation models Earth-observation satellite constellations:
// single-plane rings and Walker patterns, formation spacing styles, the
// satellite weight/power classes of the paper's Table 7, and the current and
// planned LEO EO constellation inventory of Table 1.
package constellation

import (
	"fmt"
	"math"
	"time"

	"spacedc/internal/orbit"
	"spacedc/internal/units"
)

// Satellite is one member of a constellation.
type Satellite struct {
	Name     string
	Elements orbit.Elements
	// PlaneIndex and SlotIndex locate the satellite within a Walker
	// pattern; for a single-plane ring PlaneIndex is always 0.
	PlaneIndex int
	SlotIndex  int
}

// Propagator returns a J2 propagator for the satellite.
func (s Satellite) Propagator() orbit.J2Propagator {
	return orbit.J2Propagator{Elements: s.Elements}
}

// Constellation is a set of satellites sharing a design.
type Constellation struct {
	Name       string
	Satellites []Satellite
	Planes     int
	PerPlane   int
}

// Size returns the number of satellites.
func (c Constellation) Size() int { return len(c.Satellites) }

// Spacing describes how satellites are distributed within a plane.
type Spacing int

// Spacing styles from the paper's §8: "orbit spaced" formations distribute
// satellites evenly around the plane; "frame spaced" formations pack them so
// adjacent satellites image adjacent ground frames (much closer together).
const (
	OrbitSpaced Spacing = iota
	FrameSpaced
)

// String names the spacing style.
func (s Spacing) String() string {
	switch s {
	case OrbitSpaced:
		return "orbit-spaced"
	case FrameSpaced:
		return "frame-spaced"
	default:
		return "unknown"
	}
}

// RingConfig describes a single-plane constellation.
type RingConfig struct {
	Name    string
	Count   int     // number of satellites
	AltKm   float64 // circular orbit altitude
	IncRad  float64 // inclination
	RAANRad float64 // plane right ascension
	Spacing Spacing
	// FrameSpacingKm is the along-track separation used when Spacing is
	// FrameSpaced. Defaults to 12 km (≈ one 4K ground frame at 3 m GSD
	// plus margin) when zero.
	FrameSpacingKm float64
	Epoch          time.Time
}

// DefaultFrameSpacingKm is the along-track gap between frame-spaced
// satellites: one 11.5 km ground frame edge plus a small guard band.
const DefaultFrameSpacingKm = 12.0

// Ring builds a single-plane constellation. Orbit-spaced rings put the
// satellites at equal angular intervals; frame-spaced rings pack them with
// the configured along-track separation starting at argument of latitude 0.
func Ring(cfg RingConfig) (Constellation, error) {
	if cfg.Count <= 0 {
		return Constellation{}, fmt.Errorf("constellation: count %d must be positive", cfg.Count)
	}
	if cfg.AltKm <= 0 {
		return Constellation{}, fmt.Errorf("constellation: altitude %v must be positive", cfg.AltKm)
	}
	frameKm := cfg.FrameSpacingKm
	if frameKm == 0 {
		frameKm = DefaultFrameSpacingKm
	}
	r := orbit.EarthRadiusKm + cfg.AltKm
	var step float64
	switch cfg.Spacing {
	case OrbitSpaced:
		step = 2 * math.Pi / float64(cfg.Count)
	case FrameSpaced:
		step = frameKm / r
		if step*float64(cfg.Count) > 2*math.Pi {
			return Constellation{}, fmt.Errorf(
				"constellation: %d frame-spaced satellites at %v km spacing exceed the plane",
				cfg.Count, frameKm)
		}
	default:
		return Constellation{}, fmt.Errorf("constellation: unknown spacing %d", cfg.Spacing)
	}

	c := Constellation{Name: cfg.Name, Planes: 1, PerPlane: cfg.Count}
	for i := 0; i < cfg.Count; i++ {
		el := orbit.CircularLEO(cfg.AltKm, cfg.IncRad, cfg.RAANRad, float64(i)*step, cfg.Epoch)
		c.Satellites = append(c.Satellites, Satellite{
			Name:      fmt.Sprintf("%s-%02d", cfg.Name, i),
			Elements:  el,
			SlotIndex: i,
		})
	}
	return c, nil
}

// Walker builds a Walker-delta pattern i:t/p/f — t satellites in p planes
// with phasing factor f, all at the same altitude and inclination. Planes
// are spread evenly over 360° of RAAN.
func Walker(name string, total, planes, phasing int, altKm, incRad float64, epoch time.Time) (Constellation, error) {
	if planes <= 0 || total <= 0 || total%planes != 0 {
		return Constellation{}, fmt.Errorf("constellation: walker %d/%d must divide evenly", total, planes)
	}
	if phasing < 0 || phasing >= planes {
		return Constellation{}, fmt.Errorf("constellation: phasing %d outside [0, %d)", phasing, planes)
	}
	perPlane := total / planes
	c := Constellation{Name: name, Planes: planes, PerPlane: perPlane}
	for p := 0; p < planes; p++ {
		raan := 2 * math.Pi * float64(p) / float64(planes)
		phaseOffset := 2 * math.Pi * float64(phasing) * float64(p) / float64(total)
		for s := 0; s < perPlane; s++ {
			argLat := 2*math.Pi*float64(s)/float64(perPlane) + phaseOffset
			el := orbit.CircularLEO(altKm, incRad, raan, argLat, epoch)
			c.Satellites = append(c.Satellites, Satellite{
				Name:       fmt.Sprintf("%s-p%02d-s%02d", name, p, s),
				Elements:   el,
				PlaneIndex: p,
				SlotIndex:  s,
			})
		}
	}
	return c, nil
}

// InterSatDistanceKm returns the chord distance between two satellites of
// the constellation at time t.
func (c Constellation) InterSatDistanceKm(i, j int, t time.Time) (float64, error) {
	if i < 0 || i >= len(c.Satellites) || j < 0 || j >= len(c.Satellites) {
		return 0, fmt.Errorf("constellation: index out of range (%d, %d)", i, j)
	}
	return orbit.SlantRangeKm(c.Satellites[i].Propagator(), c.Satellites[j].Propagator(), t)
}

// SatelliteClass is a weight/power class from the paper's Table 7.
type SatelliteClass struct {
	Name     string
	Examples string
	MinPower units.Power
	MaxPower units.Power
}

// Satellite classes, Table 7 of the paper.
var (
	ClassPicosat = SatelliteClass{
		Name: "picosat (<1 kg)", Examples: "Swarm Technologies",
		MinPower: 1 * units.Watt, MaxPower: 10 * units.Watt,
	}
	ClassCubesat = SatelliteClass{
		Name: "cubesat (1-10 kg)", Examples: "Dove, REC, Stork, Gemini",
		MinPower: 10 * units.Watt, MaxPower: 30 * units.Watt,
	}
	ClassMicrosat = SatelliteClass{
		Name: "microsat (10-100 kg)", Examples: "SkySat, BlackSky",
		MinPower: 55 * units.Watt, MaxPower: 210 * units.Watt,
	}
	ClassSmallsat = SatelliteClass{
		Name: "smallsat (100-500 kg)", Examples: "Vivid-i, EarthNow, ADASPACE, Jilin-1, Spacety",
		MinPower: 200 * units.Watt, MaxPower: 6600 * units.Watt,
	}
	ClassStation = SatelliteClass{
		Name: "station class", Examples: "ISS",
		MinPower: 240 * units.Kilowatt, MaxPower: 240 * units.Kilowatt,
	}
)

// Classes lists the Table 7 satellite classes from smallest to largest.
func Classes() []SatelliteClass {
	return []SatelliteClass{ClassPicosat, ClassCubesat, ClassMicrosat, ClassSmallsat, ClassStation}
}

// Supports reports whether the class's maximum power budget covers need.
func (sc SatelliteClass) Supports(need units.Power) bool {
	return need <= sc.MaxPower
}
