package constellation

import (
	"math"
	"testing"
	"time"

	"spacedc/internal/orbit"
	"spacedc/internal/units"
)

var epoch = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

func TestRingOrbitSpaced(t *testing.T) {
	c, err := Ring(RingConfig{Name: "eo", Count: 64, AltKm: 550, IncRad: 0.9, Epoch: epoch, Spacing: OrbitSpaced})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 64 {
		t.Fatalf("size = %d, want 64", c.Size())
	}
	// Adjacent spacing = 2π/64 of the circumference ≈ 680 km at 550 km alt.
	d, err := c.InterSatDistanceKm(0, 1, epoch)
	if err != nil {
		t.Fatal(err)
	}
	r := orbit.EarthRadiusKm + 550
	want := 2 * r * math.Sin(math.Pi/64)
	if math.Abs(d-want) > 1 {
		t.Errorf("adjacent distance = %v km, want %v", d, want)
	}
	// All satellites at the same altitude.
	for i, s := range c.Satellites {
		if alt := s.Elements.StateAt(epoch).AltitudeKm(); math.Abs(alt-550) > 0.01 {
			t.Errorf("sat %d altitude %v", i, alt)
		}
	}
}

func TestRingFrameSpaced(t *testing.T) {
	c, err := Ring(RingConfig{Name: "eo", Count: 64, AltKm: 550, Epoch: epoch,
		Spacing: FrameSpaced})
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.InterSatDistanceKm(0, 1, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-DefaultFrameSpacingKm) > 0.1 {
		t.Errorf("frame spacing = %v km, want %v", d, DefaultFrameSpacingKm)
	}
	// Frame-spaced satellites are far closer than orbit-spaced ones.
	oc, _ := Ring(RingConfig{Name: "eo", Count: 64, AltKm: 550, Epoch: epoch, Spacing: OrbitSpaced})
	od, _ := oc.InterSatDistanceKm(0, 1, epoch)
	if d >= od {
		t.Errorf("frame-spaced (%v km) should be tighter than orbit-spaced (%v km)", d, od)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := Ring(RingConfig{Count: 0, AltKm: 550, Epoch: epoch}); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Ring(RingConfig{Count: 4, AltKm: -5, Epoch: epoch}); err == nil {
		t.Error("negative altitude accepted")
	}
	// Too many frame-spaced satellites to fit the plane.
	if _, err := Ring(RingConfig{Count: 100000, AltKm: 550, Epoch: epoch,
		Spacing: FrameSpaced, FrameSpacingKm: 1000}); err == nil {
		t.Error("overfull frame-spaced plane accepted")
	}
	if _, err := Ring(RingConfig{Count: 4, AltKm: 550, Epoch: epoch, Spacing: Spacing(99)}); err == nil {
		t.Error("unknown spacing accepted")
	}
}

func TestWalkerShape(t *testing.T) {
	c, err := Walker("w", 24, 3, 1, 550, 53*math.Pi/180, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 24 || c.Planes != 3 || c.PerPlane != 8 {
		t.Fatalf("shape = %d/%d/%d", c.Size(), c.Planes, c.PerPlane)
	}
	// RAANs: 0°, 120°, 240°.
	seen := map[int]float64{}
	for _, s := range c.Satellites {
		seen[s.PlaneIndex] = s.Elements.RAANRad
	}
	for p := 0; p < 3; p++ {
		want := 2 * math.Pi * float64(p) / 3
		if math.Abs(seen[p]-want) > 1e-9 {
			t.Errorf("plane %d RAAN = %v, want %v", p, seen[p], want)
		}
	}
}

func TestWalkerValidation(t *testing.T) {
	if _, err := Walker("w", 25, 3, 0, 550, 1, epoch); err == nil {
		t.Error("non-divisible total accepted")
	}
	if _, err := Walker("w", 24, 3, 3, 550, 1, epoch); err == nil {
		t.Error("phasing ≥ planes accepted")
	}
	if _, err := Walker("w", 0, 1, 0, 550, 1, epoch); err == nil {
		t.Error("zero total accepted")
	}
}

func TestInterSatDistanceBounds(t *testing.T) {
	c, _ := Ring(RingConfig{Name: "r", Count: 4, AltKm: 550, Epoch: epoch, Spacing: OrbitSpaced})
	if _, err := c.InterSatDistanceKm(0, 9, epoch); err == nil {
		t.Error("out-of-range index accepted")
	}
	d, err := c.InterSatDistanceKm(2, 2, epoch)
	if err != nil || d != 0 {
		t.Errorf("self distance = %v (err %v), want 0", d, err)
	}
}

func TestSatelliteClasses(t *testing.T) {
	cls := Classes()
	if len(cls) != 5 {
		t.Fatalf("got %d classes, want 5 (Table 7)", len(cls))
	}
	// Classes are ordered by growing max power.
	for i := 1; i < len(cls); i++ {
		if cls[i].MaxPower < cls[i-1].MaxPower {
			t.Errorf("classes out of order at %d: %v < %v", i, cls[i].MaxPower, cls[i-1].MaxPower)
		}
	}
	if !ClassCubesat.Supports(25 * units.Watt) {
		t.Error("cubesat should support 25 W")
	}
	if ClassCubesat.Supports(100 * units.Watt) {
		t.Error("cubesat should not support 100 W")
	}
	if !ClassStation.Supports(200 * units.Kilowatt) {
		t.Error("station class should support 200 kW")
	}
}

func TestTable1Inventory(t *testing.T) {
	rows := Table1()
	if len(rows) != 12 {
		t.Fatalf("Table 1 has %d rows, want 12", len(rows))
	}
	var totalSats int
	subMeter := 0
	for _, r := range rows {
		if r.SatelliteCount <= 0 {
			t.Errorf("%s: bad satellite count %d", r.Constellation, r.SatelliteCount)
		}
		if r.SpatialResM <= 0 {
			t.Errorf("%s: bad resolution %v", r.Constellation, r.SpatialResM)
		}
		totalSats += r.SatelliteCount
		if r.SpatialResM < 1 {
			subMeter++
		}
	}
	// The paper's point: sub-meter targets are now routine.
	if subMeter < 3 {
		t.Errorf("only %d sub-meter constellations; Table 1 should have several", subMeter)
	}
	if totalSats < 2000 {
		t.Errorf("total planned satellites %d seems too low", totalSats)
	}
	// EarthNow is the continuous-imaging outlier.
	found := false
	for _, r := range rows {
		if r.Constellation == "EarthNow" && r.TemporalResSec == Continuous {
			found = true
		}
	}
	if !found {
		t.Error("EarthNow should have continuous temporal resolution")
	}
}

func TestFig2MilestonesImprove(t *testing.T) {
	ms := Fig2Milestones()
	if len(ms) < 10 {
		t.Fatalf("too few Fig 2 milestones: %d", len(ms))
	}
	// Within each track, the best-so-far resolution improves over time.
	// (Individual launches can be coarser — e.g. smallsats — but the
	// frontier moves toward finer resolution, which is the paper's point.)
	for _, gov := range []bool{true, false} {
		best := math.Inf(1)
		prevYear := 0
		improvements := 0
		for _, m := range ms {
			if m.Government != gov {
				continue
			}
			if m.Year < prevYear {
				t.Errorf("milestones out of year order: %v", m)
			}
			if m.ResM < best {
				best = m.ResM
				improvements++
			}
			prevYear = m.Year
		}
		if improvements < 4 {
			t.Errorf("gov=%v: frontier improved only %d times", gov, improvements)
		}
		if best > 0.3 {
			t.Errorf("gov=%v: best resolution %v m never reached sub-30cm", gov, best)
		}
	}
	// Key Hole outperforms commercial at comparable epochs (paper's Fig 2 caption).
	if ms[0].ResM <= 0 {
		t.Error("bad first milestone")
	}
}

func TestFig3MilestonesGrow(t *testing.T) {
	ms := Fig3Milestones()
	if len(ms) < 8 {
		t.Fatalf("too few Fig 3 milestones: %d", len(ms))
	}
	first, last := ms[0], ms[len(ms)-1]
	if last.RateBps <= first.RateBps {
		t.Error("downlink capacity should grow over time")
	}
	// But growth over 50 years is only ~2 orders of magnitude (bandwidth
	// limited) — nothing like the data generation growth.
	if last.RateBps/first.RateBps > 1e4 {
		t.Error("downlink growth looks implausibly fast for an RF-limited channel")
	}
}

func TestSpacingString(t *testing.T) {
	if OrbitSpaced.String() != "orbit-spaced" || FrameSpaced.String() != "frame-spaced" {
		t.Error("spacing names wrong")
	}
	if Spacing(42).String() != "unknown" {
		t.Error("unknown spacing should say unknown")
	}
}
