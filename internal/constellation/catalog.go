package constellation

// MissionProfile is one row of the paper's Table 1: a current or planned
// LEO EO constellation with its resolution goals.
type MissionProfile struct {
	Company        string
	Constellation  string
	SatelliteCount int
	FormFactor     string
	Imaging        string
	SpatialResM    float64 // finest advertised spatial resolution, meters
	TemporalResSec float64 // revisit period, seconds; 0 means continuous
	Goals          string
}

// Continuous marks a temporal resolution of "continuous imaging".
const Continuous = 0.0

// Table1 reproduces the paper's Table 1 inventory of LEO EO constellations.
func Table1() []MissionProfile {
	const (
		minute = 60.0
		hour   = 3600.0
		day    = 86400.0
	)
	return []MissionProfile{
		{"SatRev", "Stork", 14, "3U", "RGB+Near Infrared", 5, 6 * hour,
			"Hosted payload missions"},
		{"SatRev", "REC", 1024, "6U", "RGB", 0.5, 30 * minute,
			"Insurance, land survey, precision farming, smart cities, imagery intelligence, early warning"},
		{"Planet", "Dove", 159, "3U", "RGB+Hyperspectral", 3, 24 * hour,
			"Daily imaging of Earth's land"},
		{"Planet", "SkySat", 21, "100 kg", "RGB+Hyperspectral", 0.5, 24 * hour,
			"Sub-daily high resolution imaging, stereo video up to 90 s"},
		{"Spacety", "Spacety SAR", 56, "185 kg", "C-Band SAR", 1, 6 * hour,
			"Real-time SAR imagery of every point on Earth"},
		{"Chang Guang", "Jilin-1", 300, "225 kg", "Color Video, PAN, MSI", 0.75, 2.5 * day,
			"Video 1-1.3 m, PAN 75 cm, MSI 3-4 m"},
		{"Spacety", "ADASPACE", 192, "185 kg", "RGB, hyperspectral", 1, 24 * hour,
			"A global, minute-level updated Earth image data network"},
		{"Space JLTZ", "Gemini", 378, "6U", "Multispectral", 4, 10 * minute, ""},
		{"Planet", "Pelican", 32, "150-200 kg", "RGB", 0.29, 30 * minute,
			"Responsive, rapid, very-high resolution imagery"},
		{"Airbus", "EarthNow", 300, "230 kg", "Color Video", 1, Continuous,
			"Hurricane monitoring, fisheries, forest fire detection, crop health, conflict zones"},
		{"LeoStella", "BlackSky", 18, "50 kg", "RGB Imagery", 1, 1 * hour,
			"Hourly revisit for most major cities"},
		{"Earth-i", "Vivid-i", 15, "100 kg", "RGB Color Video", 0.6, 12 * hour,
			"First constellation to provide full-color video"},
	}
}

// ResolutionMilestone is one point of the paper's Fig 2 dataset: the
// advertised spatial resolution of an EO satellite program by launch year.
type ResolutionMilestone struct {
	Year       int
	Program    string
	ResM       float64
	Government bool // NRO Key Hole line vs commercial/scientific
}

// Fig2Milestones is the Fig 2 dataset: spatial resolution of EO satellite
// programs over the decades, split between the NRO Key Hole line and
// commercial/scientific programs.
func Fig2Milestones() []ResolutionMilestone {
	return []ResolutionMilestone{
		// NRO Key Hole line.
		{1960, "KH-1 Corona", 12, true},
		{1963, "KH-4B Corona", 1.8, true},
		{1967, "KH-8 Gambit-3", 0.6, true},
		{1971, "KH-9 Hexagon", 0.6, true},
		{1976, "KH-11 Kennen", 0.15, true},
		{1992, "KH-11 Block 3", 0.1, true},
		{2011, "KH-11 Block 4", 0.05, true},
		// Commercial / scientific.
		{1972, "Landsat 1", 80, false},
		{1982, "Landsat 4", 30, false},
		{1986, "SPOT-1", 10, false},
		{1999, "IKONOS", 0.8, false},
		{2001, "QuickBird", 0.6, false},
		{2008, "GeoEye-1", 0.41, false},
		{2014, "WorldView-3", 0.31, false},
		{2016, "SkySat-C", 0.72, false},
		{2021, "Pelican (planned)", 0.29, false},
		{2024, "Albedo (planned)", 0.1, false},
	}
}

// DownlinkMilestone is one point of the paper's Fig 3 dataset: satellite
// downlink capacity over time.
type DownlinkMilestone struct {
	Year    int
	Program string
	RateBps float64
	Band    string
}

// Fig3Milestones is the Fig 3 dataset: downlink capacity growth over time,
// limited by RF bandwidth constraints.
func Fig3Milestones() []DownlinkMilestone {
	return []DownlinkMilestone{
		{1972, "Landsat 1", 15e6, "S"},
		{1982, "Landsat 4", 85e6, "X"},
		{1986, "SPOT-1", 50e6, "X"},
		{1999, "Landsat 7", 150e6, "X"},
		{1999, "IKONOS", 320e6, "X"},
		{2008, "GeoEye-1", 740e6, "X"},
		{2013, "Landsat 8", 384e6, "X"},
		{2014, "WorldView-3", 1200e6, "X"},
		{2017, "Dove (HSD)", 220e6, "X"},
		{2022, "Ka-band demo", 3500e6, "Ka"},
	}
}
