// Package obs is the observability layer shared by the simulators and the
// experiment drivers: a lightweight metrics registry (counters, gauges,
// histograms with fixed bucket layouts), span-style timers that run on
// either wall clock or a deterministic sim clock, and pluggable event
// sinks (JSONL stream, aligned text table, no-op default).
//
// The layer is built to disappear when unused. Every handle type is
// nil-safe: a nil *Registry hands out nil *Counter / *Gauge / *Histogram
// handles and zero Spans, and every operation on a nil handle is a no-op.
// Instrumented hot paths therefore resolve their handles once up front and
// pay a single nil-check per site when observability is disabled — no map
// lookups, no locks, no allocations. Metrics never feed back into the
// code they observe, so instrumenting a deterministic simulator cannot
// perturb its results.
package obs

import (
	"sort"
	"sync"
)

// Registry owns a flat namespace of metrics, a clock for span timestamps,
// and an optional event sink. The zero registry is unusable — build one
// with New. Metric creation is mutex-guarded; the returned handles are
// safe for concurrent use.
type Registry struct {
	clock  Clock
	sim    *SimClock // non-nil when the registry runs on sim time
	sink   Sink
	stream subscriberSet // live Subscribe channels; copy-on-write

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Option configures a Registry at construction.
type Option func(*Registry)

// WithSink attaches an event sink; spans and Emit calls stream to it.
func WithSink(s Sink) Option { return func(r *Registry) { r.sink = s } }

// WithWallClock times spans and events on the wall clock (seconds since
// registry creation) instead of the default deterministic sim clock.
func WithWallClock() Option {
	return func(r *Registry) {
		r.clock = NewWallClock()
		r.sim = nil
	}
}

// WithClock installs a custom clock.
func WithClock(c Clock) Option {
	return func(r *Registry) {
		r.clock = c
		r.sim, _ = c.(*SimClock)
	}
}

// New builds a registry. By default it runs on an internal SimClock that
// the instrumented simulator advances via SetTime, so all timestamps are
// deterministic simulation times.
func New(opts ...Option) *Registry {
	sim := &SimClock{}
	r := &Registry{
		clock:      sim,
		sim:        sim,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// SetTime advances the registry's sim clock to t. It is a no-op on a nil
// registry or a wall-clock registry, so simulators call it unconditionally.
func (r *Registry) SetTime(t float64) {
	if r == nil || r.sim == nil {
		return
	}
	r.sim.Set(t)
}

// Now returns the registry's current time (zero on a nil registry).
func (r *Registry) Now() float64 {
	if r == nil {
		return 0
	}
	return r.clock.Now()
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil handle whose methods are all no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls reuse the existing layout).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Emit streams one event to the sink and every live Subscribe channel,
// timestamped on the registry clock. It costs one nil-check plus one
// atomic load when the registry has neither sink nor subscribers.
func (r *Registry) Emit(name, kind string, value float64) {
	if r == nil {
		return
	}
	subs := r.stream.subs.Load()
	if r.sink == nil && subs == nil {
		return
	}
	e := Event{TimeSec: r.clock.Now(), Name: name, Kind: kind, Value: value}
	if r.sink != nil {
		r.sink.Emit(e)
	}
	if subs != nil {
		r.stream.deliver(e)
	}
}

// StartSpan opens a span-style timer on the registry clock. End records
// the duration into the histogram named after the span and emits a "span"
// event. A nil registry returns a zero Span whose End is a no-op.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{reg: r, name: name, start: r.clock.Now()}
}

// Snapshot is a point-in-time copy of the registry's metrics, sorted by
// name within each kind.
type Snapshot struct {
	Counters   []CounterSnapshot
	Gauges     []GaugeSnapshot
	Histograms []HistogramSnapshot
}

// CounterSnapshot is one counter's state.
type CounterSnapshot struct {
	Name  string
	Value int64
}

// GaugeSnapshot is one gauge's state.
type GaugeSnapshot struct {
	Name  string
	Value float64
}

// HistogramSnapshot is one histogram's summary.
type HistogramSnapshot struct {
	Name           string
	Count          int64
	Sum            float64
	Min, Mean, Max float64
	P50, P95       float64
	Bounds         []float64
	Counts         []int64 // len(Bounds)+1; last is overflow
}

// Snapshot copies out every metric. Nil registries yield an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
