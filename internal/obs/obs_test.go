package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-2) // counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("c"); c2 != c {
		t.Error("same name should return the same counter")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Errorf("gauge = %v, want -1.25", got)
	}
}

func TestHistogramMomentsAndQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("h", LinearBuckets(1, 1, 10)) // bounds 1..10
	for v := 1; v <= 10; v++ {
		h.Observe(float64(v))
	}
	h.Observe(math.NaN()) // dropped
	if h.Count() != 10 {
		t.Errorf("count = %d, want 10", h.Count())
	}
	if got := h.Mean(); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("mean = %v, want 5.5", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("q1 = %v, want 10", got)
	}
	if got := h.Quantile(0.5); got < 5 || got > 6 {
		t.Errorf("median = %v, want within [5, 6]", got)
	}
	// Overflow bucket reports the observed max.
	h.Observe(1e9)
	if got := h.Quantile(1); got != 1e9 {
		t.Errorf("overflow max = %v, want 1e9", got)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.SetTime(5)
	r.Emit("x", "mark", 1)
	c := r.Counter("c")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("g")
	g.Set(1)
	if g.Value() != 0 {
		t.Error("nil gauge stored")
	}
	h := r.Histogram("h", TimeBuckets)
	h.Observe(1)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram recorded")
	}
	sp := r.StartSpan("s")
	if d := sp.End(); d != 0 {
		t.Errorf("nil span duration = %v, want 0", d)
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil snapshot non-empty")
	}
	if r.Now() != 0 {
		t.Error("nil Now non-zero")
	}
}

func TestSimClockSpansAreDeterministic(t *testing.T) {
	var events []Event
	r := New(WithSink(SinkFunc(func(e Event) { events = append(events, e) })))
	r.SetTime(10)
	sp := r.StartSpan("phase")
	r.SetTime(12.5)
	if d := sp.End(); d != 2.5 {
		t.Errorf("span duration = %v, want 2.5", d)
	}
	if len(events) != 1 || events[0].Kind != "span" || events[0].Value != 2.5 || events[0].TimeSec != 12.5 {
		t.Errorf("span event = %+v, want span/2.5 at t=12.5", events)
	}
	if h := r.Histogram("phase", TimeBuckets); h.Count() != 1 || h.Sum() != 2.5 {
		t.Error("span did not land in its histogram")
	}
}

func TestWallClockAdvances(t *testing.T) {
	r := New(WithWallClock())
	t0 := r.Now()
	r.SetTime(1e9) // ignored on a wall-clock registry
	if r.Now() >= 1e9 {
		t.Error("SetTime affected wall clock")
	}
	sp := r.StartSpan("w")
	for i := 0; i < 1000; i++ {
		_ = i
	}
	if d := sp.End(); d < 0 {
		t.Errorf("wall span negative: %v", d)
	}
	if r.Now() < t0 {
		t.Error("wall clock went backwards")
	}
}

func TestBucketLayouts(t *testing.T) {
	if b := ExpBuckets(1, 2, 4); len(b) != 4 || b[0] != 1 || b[3] != 8 {
		t.Errorf("exp buckets = %v", b)
	}
	if b := LinearBuckets(0.1, 0.1, 3); len(b) != 3 || math.Abs(b[2]-0.3) > 1e-12 {
		t.Errorf("linear buckets = %v", b)
	}
	if ExpBuckets(0, 2, 4) != nil || ExpBuckets(1, 1, 4) != nil || LinearBuckets(0, 0, 3) != nil {
		t.Error("degenerate layouts should be nil")
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := New()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Gauge("z").Set(7)
	r.Histogram("h", CountBuckets).Observe(3)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Errorf("counters = %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 7 {
		t.Errorf("gauges = %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 1 || s.Histograms[0].Min != 3 {
		t.Errorf("histograms = %+v", s.Histograms)
	}
}

func TestWriteTextRendersAllKinds(t *testing.T) {
	r := New()
	r.Counter("runs").Add(3)
	r.Gauge("ratio").Set(0.5)
	r.Histogram("lat", TimeBuckets).Observe(0.01)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"COUNTER", "runs", "3", "GAUGE", "ratio", "0.5", "HISTOGRAM", "lat"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentMetricUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist", CountBuckets)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 10))
				r.Gauge("g").Set(float64(i))
				r.SetTime(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("hist", CountBuckets).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
