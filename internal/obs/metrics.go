package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe on a nil receiver (no-ops) and for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(int64(n))
}

// Value returns the current count (zero on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last set value (zero on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates a sample into fixed buckets plus running
// sum/min/max, so it can report both exact moments and approximate
// percentiles without retaining the sample. Observe takes a short mutex;
// the layouts are fixed at creation so no allocation happens after that.
type Histogram struct {
	bounds []float64 // ascending upper bounds; counts has one extra overflow slot

	mu       sync.Mutex
	counts   []int64
	count    int64
	sum      float64
	min, max float64
}

// newHistogram builds a histogram over the given upper bounds. A nil or
// empty layout gets a single overflow bucket (moments still work).
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// NewHistogram builds a standalone histogram over the given bucket upper
// bounds, outside any registry. Simulators use it as a memory-flat sample
// accumulator (exact count/sum/min/max, bucket-resolution quantiles) even
// when observability is disabled.
func NewHistogram(bounds []float64) *Histogram {
	return newHistogram(bounds)
}

// Observe records one sample. NaN samples are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Linear scan: layouts are small (≤ ~24 buckets) and typically hit in
	// the first few slots, which beats binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations (zero on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the sample mean (zero when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (zero when empty or nil).
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (zero when empty or nil).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-quantile from the bucket counts using the same
// nearest-rank convention as stats.PercentileSorted (index ⌊q·(n−1)⌋): it
// finds the bucket holding the target rank and interpolates linearly
// within it, with the bucket edges tightened to the observed min/max. The
// rank's true sample lies in the same bucket, so the estimate is always
// within one bucket width of the exact sorted-sample quantile — the trade
// the fixed O(buckets) layout buys. q ≤ 0 and q ≥ 1 report the exact
// tracked min and max.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q == 0 {
		return h.min
	}
	if q == 1 {
		return h.max
	}
	rank := int64(q * float64(h.count-1))
	var before int64 // observations in buckets preceding the rank's bucket
	for i, c := range h.counts {
		if before+c <= rank {
			before += c
			continue
		}
		// Bucket i covers sorted ranks [before, before+c); tighten its
		// nominal edges (bounds[i-1], bounds[i]] to the observed range.
		lo, hi := h.min, h.max
		if i > 0 && h.bounds[i-1] > lo {
			lo = h.bounds[i-1]
		}
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		// Upper-leaning position: buckets are (lo, hi], so the last rank
		// in the bucket maps to hi, matching the pre-interpolation
		// upper-bound convention at bucket edges.
		//
		// Infinite samples make the bucket span non-finite (lo = -Inf min
		// or hi = +Inf max), where interpolating would manufacture a NaN;
		// fall back to the upper edge, which keeps the estimate inside
		// [min, max].
		span := hi - lo
		if math.IsInf(span, 0) || math.IsNaN(span) {
			return hi
		}
		frac := float64(rank-before+1) / float64(c)
		return lo + frac*span
	}
	return h.max
}

// Merge folds another histogram's accumulated state into h. Simulators use
// it to publish a run-local accumulator into a registry at end of run: the
// local histogram keeps per-run results isolated (a registry shared across
// runs would otherwise leak one run's samples into the next run's
// quantiles), while the registry copy still exposes the full distribution.
//
// Count, sum, min, and max merge exactly. Each source bucket's population
// is attributed at its upper edge (clamped to the observed max), which
// lands it in the identical bucket when both layouts match — the always
// case in this repo's fixed layouts — and within one destination bucket
// otherwise. Merging a nil or empty histogram is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || h == o {
		return
	}
	o.mu.Lock()
	count, sum, omin, omax := o.count, o.sum, o.min, o.max
	counts := append([]int64(nil), o.counts...)
	o.mu.Unlock()
	if count == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range counts {
		if c == 0 {
			continue
		}
		v := omax
		if i < len(o.bounds) && o.bounds[i] < v {
			v = o.bounds[i]
		}
		j := 0
		for j < len(h.bounds) && v > h.bounds[j] {
			j++
		}
		h.counts[j] += c
	}
	if h.count == 0 || omin < h.min {
		h.min = omin
	}
	if h.count == 0 || omax > h.max {
		h.max = omax
	}
	h.count += count
	h.sum += sum
}

// snapshot copies the histogram state under its lock.
func (h *Histogram) snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   name,
		Bounds: append([]float64(nil), h.bounds...),
	}
	s.P50 = h.Quantile(0.50)
	s.P95 = h.Quantile(0.95)
	h.mu.Lock()
	defer h.mu.Unlock()
	s.Count = h.count
	s.Sum = h.sum
	s.Min = h.min
	s.Max = h.max
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	s.Counts = append([]int64(nil), h.counts...)
	return s
}

// ExpBuckets returns n exponentially spaced upper bounds start, start·f,
// start·f², … — the layout for quantities spanning orders of magnitude.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n evenly spaced upper bounds start, start+w, … —
// the layout for bounded quantities like utilizations.
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		return nil
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// Shared fixed layouts, so the same quantity lands in the same buckets
// across packages.
var (
	// TimeBuckets spans 1 µs to ~4.6 h (durations in seconds).
	TimeBuckets = ExpBuckets(1e-6, 4, 17)
	// SizeBuckets spans 1 kbit to ~68 Gbit (queue depths, payloads in bits).
	SizeBuckets = ExpBuckets(1e3, 4, 14)
	// RatioBuckets covers [0, 1] at 0.05 resolution (utilizations).
	RatioBuckets = LinearBuckets(0.05, 0.05, 20)
	// CountBuckets spans 1 to 4096 (batch sizes, attempt counts).
	CountBuckets = ExpBuckets(1, 2, 13)
	// LatencyBuckets spans 10 ms to ~1.6 h at 15% resolution (96 buckets).
	// The finer layout exists for accumulators whose quantiles are
	// *reported*, not just monitored: with within-bucket interpolation the
	// p95 it yields stays within one 15%-wide bucket of the exact
	// sorted-sample value, at O(buckets) memory over month-scale runs.
	LatencyBuckets = ExpBuckets(0.01, 1.15, 96)
)
