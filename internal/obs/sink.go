package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
	"text/tabwriter"
)

// Event is one record on the observability stream: a closed span, an
// explicit sample, or a mark.
type Event struct {
	TimeSec float64
	Name    string
	Kind    string
	Value   float64
}

// Sink consumes the event stream. Implementations must tolerate
// concurrent Emit calls (sweep workers share one registry).
type Sink interface {
	Emit(Event)
}

// JSONLSink streams events as one JSON object per line. Writes are
// buffered; call Flush (or Close, which also closes an underlying closer)
// when done. The first write error is latched and reported by Err —
// emission never fails loudly on a hot path.
type JSONLSink struct {
	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer
	err    error
	closed bool
}

// NewJSONLSink wraps w. If w is also an io.Closer, Close will close it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	s.c, _ = w.(io.Closer)
	return s
}

// Emit implements Sink. Emitting after Close is a silent no-op, so a
// daemon handler racing a shutdown flush cannot write into a closed file.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.closed {
		return
	}
	// Hand-rolled encoding: names and kinds are code-controlled
	// identifiers, so strconv.Quote produces valid JSON strings without an
	// encoder allocation per event.
	_, err := fmt.Fprintf(s.w, `{"t":%s,"name":%s,"kind":%s,"value":%s}`+"\n",
		formatJSONFloat(e.TimeSec), strconv.Quote(e.Name), strconv.Quote(e.Kind), formatJSONFloat(e.Value))
	if err != nil {
		s.err = err
	}
}

// formatJSONFloat renders f as a JSON number (NaN/Inf become 0, which JSON
// cannot represent).
func formatJSONFloat(f float64) string {
	if f != f || f > 1.7e308 || f < -1.7e308 {
		return "0"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Flush drains the buffer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Close flushes and closes the underlying writer when it is closable. The
// whole sequence runs under the sink mutex, so an Emit racing Close either
// lands in the flushed output or is dropped cleanly — never written into a
// closed file. Close is idempotent; later calls return the latched error.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// funcSink adapts a function to Sink (tests, fan-out).
type funcSink func(Event)

// Emit implements Sink.
func (f funcSink) Emit(e Event) { f(e) }

// SinkFunc wraps fn as a Sink.
func SinkFunc(fn func(Event)) Sink { return funcSink(fn) }

// WriteText renders every metric as an aligned text table: counters and
// gauges as name/value pairs, histograms with count, mean, p50, p95, min,
// and max. Rows are sorted by name so output is diffable.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(s.Counters) > 0 {
		fmt.Fprintln(tw, "COUNTER\tVALUE")
		for _, c := range s.Counters {
			fmt.Fprintf(tw, "%s\t%d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(tw, "GAUGE\tVALUE")
		for _, g := range s.Gauges {
			fmt.Fprintf(tw, "%s\t%g\n", g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(tw, "HISTOGRAM\tCOUNT\tMEAN\tP50\tP95\tMIN\tMAX")
		for _, h := range s.Histograms {
			fmt.Fprintf(tw, "%s\t%d\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\n",
				h.Name, h.Count, h.Mean, h.P50, h.P95, h.Min, h.Max)
		}
	}
	return tw.Flush()
}
