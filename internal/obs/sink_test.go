package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
)

// errWriter fails after n successful writes.
type errWriter struct {
	n      int
	closed bool
}

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	w.n--
	return len(p), nil
}

func (w *errWriter) Close() error {
	w.closed = true
	return nil
}

func TestJSONLSinkEmitsValidJSON(t *testing.T) {
	var sb strings.Builder
	sink := NewJSONLSink(&sb)
	reg := New(WithSink(sink))
	reg.SetTime(1.5)
	reg.Emit("netsim.queue_bits", "sample", 4096)
	sp := reg.StartSpan("netsim.run")
	reg.SetTime(3.25)
	sp.End()
	reg.Emit("weird", "mark", math.Inf(1)) // non-finite values must still parse
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), sb.String())
	}
	for i, line := range lines {
		var e struct {
			T     float64 `json:"t"`
			Name  string  `json:"name"`
			Kind  string  `json:"kind"`
			Value float64 `json:"value"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
	}
	var span struct {
		T     float64 `json:"t"`
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &span); err != nil {
		t.Fatal(err)
	}
	if span.T != 3.25 || span.Value != 1.75 {
		t.Errorf("span line = %+v, want t=3.25 value=1.75", span)
	}
}

func TestJSONLSinkLatchesWriteError(t *testing.T) {
	w := &errWriter{n: 0}
	sink := NewJSONLSink(w)
	// A bufio flush is what surfaces the error; fill past the buffer.
	big := strings.Repeat("x", 9000)
	sink.Emit(Event{Name: big})
	if err := sink.Flush(); err == nil {
		t.Fatal("flush should surface the write error")
	}
	if sink.Err() == nil {
		t.Error("error not latched")
	}
	sink.Emit(Event{Name: "after"}) // must not panic, silently dropped
	if err := sink.Close(); err == nil {
		t.Error("close should report the latched error")
	}
	if !w.closed {
		t.Error("close should still close the writer")
	}
}

func TestJSONLSinkCloseClosesWriter(t *testing.T) {
	w := &errWriter{n: 100}
	sink := NewJSONLSink(w)
	sink.Emit(Event{Name: "a", Kind: "mark"})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !w.closed {
		t.Error("underlying closer not closed")
	}
}

func TestFormatJSONFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"},
		{0, "0"},
		{math.NaN(), "0"},
		{math.Inf(1), "0"},
		{math.Inf(-1), "0"},
		{-2.25e6, "-2.25e+06"},
	}
	for _, c := range cases {
		if got := formatJSONFloat(c.in); got != c.want {
			t.Errorf("formatJSONFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
