package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Clock supplies timestamps in seconds for spans and events.
type Clock interface {
	Now() float64
}

// SimClock is a manually advanced clock: the instrumented simulator sets
// it to the current simulation time each step, so every span and event is
// stamped with deterministic sim time. Set/Now are atomic and safe for
// concurrent readers.
type SimClock struct {
	bits atomic.Uint64
}

// Set advances the clock to t.
func (c *SimClock) Set(t float64) {
	c.bits.Store(math.Float64bits(t))
}

// Now implements Clock.
func (c *SimClock) Now() float64 {
	return math.Float64frombits(c.bits.Load())
}

// wallClock reports seconds elapsed since its creation.
type wallClock struct {
	start time.Time
}

// NewWallClock returns a clock measuring wall time from now.
func NewWallClock() Clock {
	return wallClock{start: time.Now()}
}

// Now implements Clock.
func (c wallClock) Now() float64 {
	return time.Since(c.start).Seconds()
}

// Span is an in-flight span timer. The zero Span (from a nil registry) is
// inert: End returns 0 and records nothing. Span is a value type — opening
// and closing one allocates nothing.
type Span struct {
	reg   *Registry
	name  string
	start float64
}

// End closes the span: it observes the duration into the histogram named
// after the span (TimeBuckets layout), emits a "span" event to the sink,
// and returns the duration in seconds.
func (s Span) End() float64 {
	if s.reg == nil {
		return 0
	}
	end := s.reg.clock.Now()
	d := end - s.start
	s.reg.Histogram(s.name, TimeBuckets).Observe(d)
	s.reg.Emit(s.name, "span", d)
	return d
}
