package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestJSONLSinkConcurrentHammer drives one sink from many goroutines with
// interleaved Emit, Flush, and a final Close — the sharing pattern of a
// daemon whose HTTP handlers and pool workers write into one registry. Run
// under -race (the CI tier-1 recipe does) it proves the sink's writer
// state is fully mutex-guarded; functionally it checks every line that
// made it out is intact JSON and nothing lands after Close.
func TestJSONLSinkConcurrentHammer(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	const goroutines = 16
	const events = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				sink.Emit(Event{TimeSec: float64(i), Name: fmt.Sprintf("g%02d", g), Kind: "sample", Value: float64(i)})
				if i%50 == 0 {
					sink.Flush() //nolint:errcheck — exercising the lock path
				}
			}
		}(g)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	sink.Emit(Event{Name: "late", Kind: "sample"}) // must be dropped, not written
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "late") {
		t.Error("event emitted after Close reached the writer")
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != goroutines*events {
		t.Fatalf("got %d lines, want %d", len(lines), goroutines*events)
	}
	for i, l := range lines {
		if !strings.HasPrefix(l, `{"t":`) || !strings.HasSuffix(l, "}") {
			t.Fatalf("line %d is torn: %q", i, l)
		}
	}
}

// TestJSONLSinkCloseIdempotent asserts repeated Close calls are safe and
// keep returning the same latched state.
func TestJSONLSinkCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.Emit(Event{Name: "a", Kind: "sample"})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Errorf("buffer has %d lines, want 1", got)
	}
}

// TestSubscribeReceivesEmits asserts subscribers see sink-bound events with
// registry timestamps, and that cancel detaches them.
func TestSubscribeReceivesEmits(t *testing.T) {
	r := New()
	ch, cancel := r.Subscribe(8)
	r.SetTime(42)
	r.Emit("netsim.queue_bits", "sample", 7)
	select {
	case e := <-ch:
		if e.Name != "netsim.queue_bits" || e.Value != 7 || e.TimeSec != 42 {
			t.Errorf("event = %+v", e)
		}
	default:
		t.Fatal("no event delivered")
	}
	if n := r.Subscribers(); n != 1 {
		t.Errorf("Subscribers = %d, want 1", n)
	}
	cancel()
	cancel() // idempotent
	if n := r.Subscribers(); n != 0 {
		t.Errorf("Subscribers after cancel = %d, want 0", n)
	}
	r.Emit("netsim.queue_bits", "sample", 8)
	select {
	case e := <-ch:
		t.Errorf("event %+v delivered after cancel", e)
	default:
	}
}

// TestSubscribeDropsOnFullBuffer asserts a stalled subscriber loses events
// instead of blocking the emitter.
func TestSubscribeDropsOnFullBuffer(t *testing.T) {
	r := New()
	ch, cancel := r.Subscribe(2)
	defer cancel()
	for i := 0; i < 10; i++ {
		r.Emit("x", "sample", float64(i)) // must not block
	}
	if len(ch) != 2 {
		t.Errorf("buffered %d events, want 2", len(ch))
	}
}

// TestDroppedEventsCounts asserts the registry-lifetime drop counter tracks
// every drop-on-full loss, survives cancel, and sums across subscriptions.
func TestDroppedEventsCounts(t *testing.T) {
	r := New()
	if n := r.DroppedEvents(); n != 0 {
		t.Fatalf("fresh registry DroppedEvents = %d, want 0", n)
	}
	ch, cancel := r.Subscribe(1)
	for i := 0; i < 3; i++ {
		r.Emit("x", "sample", float64(i))
	}
	if n := r.DroppedEvents(); n != 2 {
		t.Errorf("DroppedEvents = %d after 3 emits into buf 1, want 2", n)
	}
	<-ch // drain one slot; the next emit fits, the one after drops
	r.Emit("x", "sample", 3)
	r.Emit("x", "sample", 4)
	if n := r.DroppedEvents(); n != 3 {
		t.Errorf("DroppedEvents = %d, want 3", n)
	}
	cancel()
	// The total is registry-lifetime: canceling must not reset it, and a
	// second lagging subscription keeps accumulating into the same counter.
	if n := r.DroppedEvents(); n != 3 {
		t.Errorf("DroppedEvents = %d after cancel, want 3", n)
	}
	_, cancel2 := r.Subscribe(1)
	defer cancel2()
	r.Emit("x", "sample", 5)
	r.Emit("x", "sample", 6)
	if n := r.DroppedEvents(); n != 4 {
		t.Errorf("DroppedEvents = %d across subscriptions, want 4", n)
	}
}

// TestDroppedEventsNilRegistry asserts the nil-safety contract extends to
// the drop counter.
func TestDroppedEventsNilRegistry(t *testing.T) {
	var r *Registry
	if n := r.DroppedEvents(); n != 0 {
		t.Errorf("nil registry DroppedEvents = %d, want 0", n)
	}
}

// TestSubscribeConcurrentWithEmit hammers Subscribe/cancel against Emit
// from many goroutines; -race proves the copy-on-write set is sound.
func TestSubscribeConcurrentWithEmit(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.Emit("hammer", "sample", 1)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		ch, cancel := r.Subscribe(4)
		// Drain a little so delivery paths interleave with cancel.
		select {
		case <-ch:
		default:
		}
		cancel()
	}
	close(stop)
	wg.Wait()
	if n := r.Subscribers(); n != 0 {
		t.Errorf("Subscribers = %d, want 0", n)
	}
}

// TestNilRegistrySubscribe asserts the nil-safety contract extends to the
// subscriber API.
func TestNilRegistrySubscribe(t *testing.T) {
	var r *Registry
	ch, cancel := r.Subscribe(1)
	if ch != nil {
		t.Error("nil registry returned a live channel")
	}
	cancel()
	if r.Subscribers() != 0 {
		t.Error("nil registry has subscribers")
	}
}
