package obs

import (
	"sync"
	"sync/atomic"
)

// subscription is one live subscriber to a registry's event stream.
type subscription struct {
	ch      chan Event
	dropped atomic.Int64
}

// subscriberSet is the copy-on-write slice Emit walks lock-free.
type subscriberSet struct {
	mu   sync.Mutex // guards Subscribe/cancel rewrites
	subs atomic.Pointer[[]*subscription]
	// dropped accumulates drop-on-full losses across all subscriptions,
	// including canceled ones — the registry-lifetime total behind
	// DroppedEvents.
	dropped atomic.Int64
}

// Subscribe attaches a buffered event channel to the registry: every Emit
// and closed Span is delivered to it alongside the sink, which is how the
// sudcsimd SSE endpoint taps a run's per-step samples without the run
// knowing about HTTP. Delivery is non-blocking — when the subscriber's
// buffer is full the event is dropped (and counted) rather than stalling
// the instrumented simulator, so a slow stream reader can lose samples but
// can never perturb or throttle a run.
//
// cancel detaches the subscription; the channel is never closed (a close
// could race a concurrent Emit), so readers must stop on their own signal
// — typically the HTTP request context — and then call cancel. buf ≤ 0
// defaults to 256. A nil registry returns a nil channel and a no-op
// cancel.
func (r *Registry) Subscribe(buf int) (<-chan Event, func()) {
	if r == nil {
		return nil, func() {}
	}
	if buf <= 0 {
		buf = 256
	}
	s := &subscription{ch: make(chan Event, buf)}
	r.stream.mu.Lock()
	old := r.stream.subs.Load()
	var next []*subscription
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, s)
	r.stream.subs.Store(&next)
	r.stream.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			r.stream.mu.Lock()
			defer r.stream.mu.Unlock()
			cur := r.stream.subs.Load()
			if cur == nil {
				return
			}
			rest := make([]*subscription, 0, len(*cur))
			for _, o := range *cur {
				if o != s {
					rest = append(rest, o)
				}
			}
			if len(rest) == 0 {
				r.stream.subs.Store(nil)
			} else {
				r.stream.subs.Store(&rest)
			}
		})
	}
	return s.ch, cancel
}

// DroppedEvents reports the total number of events lost to full subscriber
// buffers over the registry's lifetime, including subscriptions since
// canceled (zero on nil). A non-zero value means a reader lagged and its
// sample stream has gaps — the run itself was never perturbed.
func (r *Registry) DroppedEvents() int64 {
	if r == nil {
		return 0
	}
	return r.stream.dropped.Load()
}

// Subscribers reports the number of live subscriptions (zero on nil).
func (r *Registry) Subscribers() int {
	if r == nil {
		return 0
	}
	if subs := r.stream.subs.Load(); subs != nil {
		return len(*subs)
	}
	return 0
}

// deliver fans one event out to every live subscription, dropping on full
// buffers. Callers have already checked the set is non-nil.
func (s *subscriberSet) deliver(e Event) {
	subs := s.subs.Load()
	if subs == nil {
		return
	}
	for _, sub := range *subs {
		select {
		case sub.ch <- e:
		default:
			sub.dropped.Add(1)
			s.dropped.Add(1)
		}
	}
}
