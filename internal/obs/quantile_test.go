package obs

import (
	"math"
	"math/rand"
	"testing"

	statsutil "spacedc/internal/stats"
)

// bucketWidth returns the width of the layout bucket that holds v: the
// tolerance the histogram quantile is allowed. Values below the first
// bound use the first bucket's span from zero; values beyond the last
// bound fall in the open overflow bucket, where the histogram clamps to
// the observed max, so the caller should keep samples inside the layout.
func bucketWidth(bounds []float64, v float64) float64 {
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	if i >= len(bounds) {
		return math.Inf(1)
	}
	if i == 0 {
		return bounds[0]
	}
	return bounds[i] - bounds[i-1]
}

// TestQuantileTracksPercentileSorted asserts the bucket-interpolated
// quantile stays within one bucket width of the exact sorted-sample
// percentile (same nearest-rank convention) on qualitatively different
// sample shapes: uniform, exponential (heavy tail), and point mass
// (degenerate single-value distribution).
func TestQuantileTracksPercentileSorted(t *testing.T) {
	const n = 20000
	rng := rand.New(rand.NewSource(7))
	shapes := map[string]func() float64{
		"uniform":     func() float64 { return 0.05 + 40*rng.Float64() },
		"exponential": func() float64 { return 0.05 + 3*rng.ExpFloat64() },
		"point-mass":  func() float64 { return 2.7 },
	}
	layouts := map[string][]float64{
		"latency": LatencyBuckets,
		"time":    TimeBuckets,
	}
	for shapeName, draw := range shapes {
		for layoutName, bounds := range layouts {
			h := NewHistogram(bounds)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = draw()
				h.Observe(xs[i])
			}
			for _, q := range []float64{0, 0.5, 0.9, 0.95, 0.99, 1} {
				exact := statsutil.Percentile(xs, q)
				got := h.Quantile(q)
				tol := bucketWidth(bounds, exact)
				if math.IsInf(tol, 1) {
					t.Fatalf("%s/%s q%v: exact %v beyond layout; pick in-range samples", shapeName, layoutName, q, exact)
				}
				if math.Abs(got-exact) > tol+1e-12 {
					t.Errorf("%s/%s q%v: histogram %v vs exact %v — off by %v, tolerance one bucket width %v",
						shapeName, layoutName, q, got, exact, math.Abs(got-exact), tol)
				}
			}
			// Point-mass distributions must come back exact: min == max
			// pins every bucket to the single observed value.
			if shapeName == "point-mass" {
				if got := h.Quantile(0.95); got != 2.7 {
					t.Errorf("point-mass/%s p95 = %v, want exactly 2.7", layoutName, got)
				}
			}
		}
	}
}

// TestQuantileEdges pins the exact-endpoint and empty/nil behavior.
func TestQuantileEdges(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	for _, v := range []float64{0.3, 1.7, 9.2} {
		h.Observe(v)
	}
	if got := h.Quantile(0); got != 0.3 {
		t.Errorf("q0 = %v, want exact min 0.3", got)
	}
	if got := h.Quantile(1); got != 9.2 {
		t.Errorf("q1 = %v, want exact max 9.2", got)
	}
	if got := h.Quantile(math.NaN()); got != 0.3 {
		t.Errorf("NaN quantile = %v, want min (clamped to 0)", got)
	}
	if got := h.Quantile(-3); got != 0.3 {
		t.Errorf("q-3 = %v, want min", got)
	}
	if got := h.Quantile(7); got != 9.2 {
		t.Errorf("q7 = %v, want max", got)
	}
	if got := NewHistogram(nil).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil quantile = %v, want 0", got)
	}
	if nilH.Min() != 0 || nilH.Max() != 0 {
		t.Error("nil min/max non-zero")
	}
}
