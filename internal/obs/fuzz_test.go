package obs

import (
	"encoding/binary"
	"math"
	"testing"
)

// floatsFromBytes decodes the fuzzer's byte stream into float64 samples,
// eight bytes per sample — the raw-bits decoding reaches every value
// including NaN payloads, ±Inf, subnormals, and negative zero.
func floatsFromBytes(data []byte) []float64 {
	var out []float64
	for len(data) >= 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return out
}

// bits encodes values back into the fuzz corpus byte format.
func bits(vs ...float64) []byte {
	b := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// FuzzQuantile drives Histogram.Observe/Quantile with arbitrary samples
// and quantiles and checks the accumulator's contract: NaN samples are
// dropped and everything else counted; quantiles never panic, never
// manufacture a NaN from non-NaN samples, stay inside the observed
// [min, max], clamp out-of-range q to the exact min/max, and remain
// monotone in q.
func FuzzQuantile(f *testing.F) {
	f.Add([]byte{}, 0.5)
	f.Add(bits(0.42), 0.95)                                          // single sample
	f.Add(bits(1, 1, 1, 1), 0.5)                                     // point mass
	f.Add(bits(math.NaN(), 2, math.NaN()), 0.9)                      // NaN dropped
	f.Add(bits(math.Inf(1), math.Inf(-1), 3), 0.5)                   // infinite span
	f.Add(bits(0.01, 0.1, 1, 10, 100), math.NaN())                   // NaN quantile
	f.Add(bits(-1, 0, math.Copysign(0, -1)), -2.0)                   // q below range
	f.Add(bits(5e-324, math.MaxFloat64), 2.0)                        // q above range
	f.Add(bits(0.3, 0.31, 0.32, 0.33, 0.34, 0.35, 7200, 9000), 0.95) // tail

	f.Fuzz(func(t *testing.T, data []byte, q float64) {
		samples := floatsFromBytes(data)
		h := NewHistogram(LatencyBuckets)
		var kept []float64
		for _, v := range samples {
			h.Observe(v)
			if !math.IsNaN(v) {
				kept = append(kept, v)
			}
		}
		if h.Count() != int64(len(kept)) {
			t.Fatalf("Count = %d after %d non-NaN observations", h.Count(), len(kept))
		}

		got := h.Quantile(q)
		if len(kept) == 0 {
			if got != 0 {
				t.Fatalf("Quantile(%v) of empty histogram = %v, want 0", q, got)
			}
			return
		}
		min, max := kept[0], kept[0]
		for _, v := range kept[1:] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if math.IsNaN(got) {
			t.Fatalf("Quantile(%v) = NaN from non-NaN samples (min=%v max=%v)", q, min, max)
		}
		if got < min || got > max {
			t.Fatalf("Quantile(%v) = %v outside observed range [%v, %v]", q, got, min, max)
		}
		// Out-of-range and NaN q clamp to the exact extremes.
		if (q <= 0 || math.IsNaN(q)) && got != min {
			t.Fatalf("Quantile(%v) = %v, want exact min %v", q, got, min)
		}
		if q >= 1 && got != max {
			t.Fatalf("Quantile(%v) = %v, want exact max %v", q, got, max)
		}
		// Monotone in q.
		if p50, p95 := h.Quantile(0.5), h.Quantile(0.95); p50 > p95 {
			t.Fatalf("Quantile not monotone: p50 %v > p95 %v", p50, p95)
		}
	})
}
