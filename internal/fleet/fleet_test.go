package fleet

import (
	"math"
	"testing"
)

func baseConfig() Config {
	return Config{
		SuDCs:            4,
		DevicesPerSuDC:   11, // ~4 kW of RTX 3090s
		SparesPerSuDC:    0,
		Failure:          COTSAtAltitude(550),
		MissionYears:     5,
		RequiredCapacity: 0.9,
		Trials:           400,
		Seed:             1,
	}
}

func TestValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	muts := map[string]func(*Config){
		"zero sudcs":    func(c *Config) { c.SuDCs = 0 },
		"zero devices":  func(c *Config) { c.DevicesPerSuDC = 0 },
		"neg spares":    func(c *Config) { c.SparesPerSuDC = -1 },
		"zero years":    func(c *Config) { c.MissionYears = 0 },
		"zero trials":   func(c *Config) { c.Trials = 0 },
		"bad capacity":  func(c *Config) { c.RequiredCapacity = 1.5 },
		"neg rate":      func(c *Config) { c.Failure.RandomAnnualRate = -1 },
		"zero dose tol": func(c *Config) { c.Failure.DoseToleranceKrad = 0 },
	}
	for name, mut := range muts {
		c := baseConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestNoFailuresPerfectAvailability(t *testing.T) {
	cfg := baseConfig()
	cfg.Failure = FailureModel{RandomAnnualRate: 0, DoseToleranceKrad: 1e9, DoseRateKradYr: 0}
	r, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Availability != 1 || r.MeanEndCapacity != 1 {
		t.Errorf("immortal devices should give perfect availability: %+v", r)
	}
	if r.MeanTimeToDegradedYears != cfg.MissionYears {
		t.Errorf("never degraded should report full mission: %v", r.MeanTimeToDegradedYears)
	}
}

func TestSparesImproveAvailability(t *testing.T) {
	noSpares := baseConfig()
	withSpares := baseConfig()
	withSpares.SparesPerSuDC = 3
	r0, err := Simulate(noSpares)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Simulate(withSpares)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Availability <= r0.Availability {
		t.Errorf("spares should raise availability: %v vs %v", r3.Availability, r0.Availability)
	}
	if r3.MeanEndCapacity <= r0.MeanEndCapacity {
		t.Errorf("spares should raise end capacity: %v vs %v", r3.MeanEndCapacity, r0.MeanEndCapacity)
	}
}

func TestHigherDoseKillsFleet(t *testing.T) {
	leo := baseConfig()
	belt := baseConfig()
	belt.Failure = COTSAtAltitude(4000) // inner belt
	rLEO, err := Simulate(leo)
	if err != nil {
		t.Fatal(err)
	}
	rBelt, err := Simulate(belt)
	if err != nil {
		t.Fatal(err)
	}
	if rBelt.Availability >= rLEO.Availability {
		t.Errorf("inner-belt fleet should fail fast: %v vs LEO %v", rBelt.Availability, rLEO.Availability)
	}
	if rBelt.MeanEndCapacity > 0.1 {
		t.Errorf("inner-belt COTS fleet end capacity %v, want near zero", rBelt.MeanEndCapacity)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a, err := Simulate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed should reproduce")
	}
}

func TestMeanLifetime(t *testing.T) {
	// Dose-dominated: COTS (20 krad) at 1 krad/yr wears out around 20
	// years before random failures matter much; at 4%/yr random the
	// combined mean sits well below 20.
	m := COTSAtAltitude(550)
	mean := m.MeanLifetimeYears(20000, 2)
	if mean < 5 || mean > 20 {
		t.Errorf("mean LEO device lifetime = %v yr, want ≈10-18", mean)
	}
	// No failures at all → effectively infinite (sampled as +Inf-free
	// since dose rate 0 gives Inf; guard with pure random).
	pure := FailureModel{RandomAnnualRate: 0.5, DoseToleranceKrad: 1e9, DoseRateKradYr: 1e-9}
	if got := pure.MeanLifetimeYears(50000, 3); math.Abs(got-2) > 0.2 {
		t.Errorf("pure random λ=0.5 mean = %v yr, want 2", got)
	}
}

func TestAvailabilityWithinBounds(t *testing.T) {
	r, err := Simulate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Availability < 0 || r.Availability > 1 ||
		r.MeanEndCapacity < 0 || r.MeanEndCapacity > 1 {
		t.Errorf("out-of-range stats: %+v", r)
	}
	if r.MeanTimeToDegradedYears > baseConfig().MissionYears {
		t.Errorf("degraded time exceeds mission: %v", r.MeanTimeToDegradedYears)
	}
}
