// Package fleet models SµDC fleet reliability over a mission: COTS devices
// fail both randomly and by accumulated radiation dose, on-board spares
// absorb failures (§9: "back-up hardware is also used to extend the
// lifetime of a satellite"), and a Monte Carlo over device lifetimes
// yields the fleet's capacity profile and availability — the number the
// redundancy-vs-spares design decision actually turns on.
package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"spacedc/internal/radiation"
)

// FailureModel describes one compute device's failure behavior.
type FailureModel struct {
	// RandomAnnualRate is the exponential random-failure rate (1/yr):
	// commodity server hardware runs ~2-6%/yr.
	RandomAnnualRate float64
	// DoseToleranceKrad is the total-dose budget; the device wears out
	// when the orbit's dose rate exhausts it.
	DoseToleranceKrad float64
	// DoseRateKradYr is the orbit's annual dose.
	DoseRateKradYr float64
	// DoseSpread is the lognormal sigma of part-to-part dose tolerance
	// (0 = deterministic wear-out).
	DoseSpread float64
}

// COTSAtAltitude builds the default COTS GPU failure model for an orbit.
func COTSAtAltitude(altKm float64) FailureModel {
	return FailureModel{
		RandomAnnualRate:  0.04,
		DoseToleranceKrad: radiation.COTSGPU.ToleranceKrad,
		DoseRateKradYr:    radiation.DoseRateKradPerYear(altKm),
		DoseSpread:        0.3,
	}
}

// Validate checks the model.
func (f FailureModel) Validate() error {
	if f.RandomAnnualRate < 0 {
		return fmt.Errorf("fleet: negative random failure rate %v", f.RandomAnnualRate)
	}
	if f.DoseToleranceKrad <= 0 || f.DoseRateKradYr < 0 {
		return fmt.Errorf("fleet: bad dose parameters %v / %v", f.DoseToleranceKrad, f.DoseRateKradYr)
	}
	if f.DoseSpread < 0 {
		return fmt.Errorf("fleet: negative dose spread %v", f.DoseSpread)
	}
	return nil
}

// sampleLifetime draws one device lifetime in years.
func (f FailureModel) sampleLifetime(rng *rand.Rand) float64 {
	life := math.Inf(1)
	if f.RandomAnnualRate > 0 {
		life = rng.ExpFloat64() / f.RandomAnnualRate
	}
	if f.DoseRateKradYr > 0 {
		tol := f.DoseToleranceKrad
		if f.DoseSpread > 0 {
			tol *= math.Exp(f.DoseSpread * rng.NormFloat64())
		}
		if wearOut := tol / f.DoseRateKradYr; wearOut < life {
			life = wearOut
		}
	}
	return life
}

// MeanLifetimeYears estimates the expected device lifetime by sampling.
func (f FailureModel) MeanLifetimeYears(samples int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	total := 0.0
	for i := 0; i < samples; i++ {
		total += f.sampleLifetime(rng)
	}
	return total / float64(samples)
}

// Config describes a fleet reliability run.
type Config struct {
	SuDCs          int
	DevicesPerSuDC int
	// SparesPerSuDC are powered-off devices swapped in on failure
	// (spares do not accumulate operational random failures while off,
	// but do take dose).
	SparesPerSuDC int
	Failure       FailureModel
	MissionYears  float64
	// RequiredCapacity is the fleet-wide fraction of nominal device
	// capacity below which the mission is "unavailable" (e.g. 0.9).
	RequiredCapacity float64
	Trials           int
	Seed             int64
}

// Validate checks the config.
func (c Config) Validate() error {
	if c.SuDCs <= 0 || c.DevicesPerSuDC <= 0 {
		return fmt.Errorf("fleet: need SµDCs and devices")
	}
	if c.SparesPerSuDC < 0 {
		return fmt.Errorf("fleet: negative spares")
	}
	if c.MissionYears <= 0 || c.Trials <= 0 {
		return fmt.Errorf("fleet: need positive mission duration and trials")
	}
	if c.RequiredCapacity <= 0 || c.RequiredCapacity > 1 {
		return fmt.Errorf("fleet: required capacity %v outside (0, 1]", c.RequiredCapacity)
	}
	return c.Failure.Validate()
}

// Result summarizes the Monte Carlo.
type Result struct {
	// Availability is the mean fraction of the mission during which the
	// fleet held RequiredCapacity.
	Availability float64
	// MeanEndCapacity is the mean capacity fraction at end of mission.
	MeanEndCapacity float64
	// MeanTimeToDegradedYears is the mean time until capacity first
	// dropped below the requirement (MissionYears when it never did).
	MeanTimeToDegradedYears float64
}

// Simulate runs the Monte Carlo.
func Simulate(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	totalDevices := cfg.SuDCs * cfg.DevicesPerSuDC

	var res Result
	for trial := 0; trial < cfg.Trials; trial++ {
		// Active devices: sampled lifetimes. Each failure consumes a
		// spare if one remains on that SµDC; the spare's life restarts
		// from the swap (dose-limited from launch is conservative folded
		// into the same sample).
		type failure struct {
			time float64
			sudc int
		}
		var failures []failure
		for s := 0; s < cfg.SuDCs; s++ {
			for d := 0; d < cfg.DevicesPerSuDC; d++ {
				failures = append(failures, failure{cfg.Failure.sampleLifetime(rng), s})
			}
		}
		sort.Slice(failures, func(i, j int) bool { return failures[i].time < failures[j].time })

		spares := make([]int, cfg.SuDCs)
		for s := range spares {
			spares[s] = cfg.SparesPerSuDC
		}
		alive := totalDevices
		degradedAt := cfg.MissionYears
		availableTime := 0.0
		prevT := 0.0
		capacity := func() float64 { return float64(alive) / float64(totalDevices) }

		for _, f := range failures {
			t := math.Min(f.time, cfg.MissionYears)
			if capacity() >= cfg.RequiredCapacity {
				availableTime += t - prevT
			}
			prevT = t
			if f.time > cfg.MissionYears {
				break
			}
			if spares[f.sudc] > 0 {
				spares[f.sudc]--
				// Replacement: schedule its own failure by inserting a
				// fresh lifetime — approximated by simply not counting
				// this failure (the replacement statistically carries
				// the device to another full lifetime sample, beyond
				// most missions).
				continue
			}
			alive--
			if capacity() < cfg.RequiredCapacity && degradedAt == cfg.MissionYears {
				degradedAt = f.time
			}
		}
		if prevT < cfg.MissionYears && capacity() >= cfg.RequiredCapacity {
			availableTime += cfg.MissionYears - prevT
		}
		res.Availability += availableTime / cfg.MissionYears
		res.MeanEndCapacity += capacity()
		res.MeanTimeToDegradedYears += degradedAt
	}
	n := float64(cfg.Trials)
	res.Availability /= n
	res.MeanEndCapacity /= n
	res.MeanTimeToDegradedYears /= n
	return res, nil
}
