package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spacedc/internal/experiments"
	"spacedc/internal/obs"
	"spacedc/internal/report"
)

// post runs one POST /v1/eval against the server's handler.
func post(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// get runs one GET against the server's handler.
func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func decodeEval(t *testing.T, body []byte) evalResponse {
	t.Helper()
	var resp evalResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding eval response: %v\nbody: %s", err, body)
	}
	return resp
}

// TestEvalExperimentMatchesBatch locks the service's core contract: the
// text an eval returns for an experiment is byte-identical to what the
// sudcsim batch CLI prints for the same ID, at any worker count.
func TestEvalExperimentMatchesBatch(t *testing.T) {
	tables, err := experiments.Run(context.Background(), "table5")
	if err != nil {
		t.Fatal(err)
	}
	want := renderTables(tables)

	for _, workers := range []int{1, 3} {
		s := New(Config{Workers: workers})
		w := post(t, s, "/v1/eval", `{"experiment":"table5"}`)
		if w.Code != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, w.Code, w.Body.String())
		}
		resp := decodeEval(t, w.Body.Bytes())
		if resp.Text != want {
			t.Errorf("workers=%d: daemon text differs from batch output:\ndaemon:\n%s\nbatch:\n%s", workers, resp.Text, want)
		}
		if resp.Metrics != nil {
			t.Errorf("workers=%d: experiment response carries a metrics snapshot (nondeterministic wall clock)", workers)
		}
		if resp.Key == "" || !strings.HasPrefix(resp.Key, "sha256:") {
			t.Errorf("workers=%d: bad key %q", workers, resp.Key)
		}
	}
}

// TestEvalCacheHit asserts a repeated identical request is a cache hit
// with a byte-identical body, also replayable via GET /v1/results/{key}.
func TestEvalCacheHit(t *testing.T) {
	s := New(Config{})

	first := post(t, s, "/v1/eval", `{"experiment":"table5"}`)
	if first.Code != http.StatusOK {
		t.Fatalf("first eval: status %d: %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first eval X-Cache = %q, want miss", got)
	}

	// Same scenario, different JSON field order and whitespace: still a hit.
	second := post(t, s, "/v1/eval", ` { "experiment" : "table5" } `)
	if second.Code != http.StatusOK {
		t.Fatalf("second eval: status %d: %s", second.Code, second.Body.String())
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("second eval X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cache hit body differs from original")
	}
	if first.Header().Get("ETag") != second.Header().Get("ETag") {
		t.Error("ETag changed between miss and hit")
	}

	key := decodeEval(t, first.Body.Bytes()).Key
	replay := get(t, s, "/v1/results/"+key)
	if replay.Code != http.StatusOK {
		t.Fatalf("results replay: status %d", replay.Code)
	}
	if !bytes.Equal(first.Body.Bytes(), replay.Body.Bytes()) {
		t.Error("results replay body differs from original")
	}

	if miss := get(t, s, "/v1/results/sha256:0000"); miss.Code != http.StatusNotFound {
		t.Errorf("unknown result key: status %d, want 404", miss.Code)
	}
}

// TestEvalScenarioDeterministic asserts a parameterized scenario eval is
// pure content: two independent server instances produce byte-identical
// bodies (including the sim-clock metrics snapshot) for the same spec.
func TestEvalScenarioDeterministic(t *testing.T) {
	const spec = `{"netsim":{"sats":4,"per_sat_mbps":200,"duration_sec":30,"link_outage":0.01,"seed":7}}`
	var bodies [2][]byte
	for i := range bodies {
		s := New(Config{})
		w := post(t, s, "/v1/eval", spec)
		if w.Code != http.StatusOK {
			t.Fatalf("server %d: status %d: %s", i, w.Code, w.Body.String())
		}
		bodies[i] = w.Body.Bytes()
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("identical netsim spec produced different bodies on two fresh servers")
	}
	resp := decodeEval(t, bodies[0])
	if resp.Netsim == nil {
		t.Fatal("netsim eval response missing netsim_result")
	}
	if resp.Metrics == nil || len(resp.Metrics.Gauges)+len(resp.Metrics.Counters)+len(resp.Metrics.Histograms) == 0 {
		t.Error("netsim eval response missing sim-clock metrics snapshot")
	}
	if resp.Netsim.DeliveryRatio <= 0 {
		t.Errorf("delivery ratio %v, want > 0", resp.Netsim.DeliveryRatio)
	}
}

// TestEvalSchedScenario asserts the sched spec path end to end.
func TestEvalSchedScenario(t *testing.T) {
	s := New(Config{})
	w := post(t, s, "/v1/eval", `{"sched":{"satellites":2,"duration_sec":60,"app":"FD","device":"rtx3090"}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeEval(t, w.Body.Bytes())
	if resp.Sched == nil {
		t.Fatal("sched eval response missing sched_stats")
	}
	if resp.Sched.Processed == 0 {
		t.Error("sched run processed no frames")
	}
	if resp.Metrics == nil {
		t.Error("sched eval response missing sim-clock metrics snapshot")
	}
	if !strings.Contains(resp.Text, "sched scenario") {
		t.Errorf("text rendering missing table title:\n%s", resp.Text)
	}
}

// TestEvalWorkloadScenario asserts the workload spec path end to end:
// deterministic bodies across fresh servers, the qos result and sim-clock
// metrics in the response, a cache hit on repeat, and byte-identity
// between streamed and unstreamed runs.
func TestEvalWorkloadScenario(t *testing.T) {
	const spec = `{"workload":{"policy":"priority","campaign":"ground-outage","load":1.5,"duration_sec":120,"seed":9}}`
	var bodies [2][]byte
	for i := range bodies {
		s := New(Config{})
		w := post(t, s, "/v1/eval", spec)
		if w.Code != http.StatusOK {
			t.Fatalf("server %d: status %d: %s", i, w.Code, w.Body.String())
		}
		bodies[i] = w.Body.Bytes()
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("identical workload spec produced different bodies on two fresh servers")
	}
	resp := decodeEval(t, bodies[0])
	if resp.Workload == nil {
		t.Fatal("workload eval response missing workload_result")
	}
	if resp.Workload.Offered == 0 || resp.Workload.Completed == 0 {
		t.Errorf("workload run served nothing: %+v", resp.Workload)
	}
	if len(resp.Workload.Classes) != 3 {
		t.Errorf("workload result has %d classes, want 3", len(resp.Workload.Classes))
	}
	if resp.Metrics == nil || len(resp.Metrics.Counters) == 0 {
		t.Error("workload eval response missing sim-clock metrics snapshot")
	}
	if !strings.Contains(resp.Text, "workload scenario") {
		t.Errorf("text rendering missing table title:\n%s", resp.Text)
	}

	// Repeat on the same server: cache hit, same bytes. A streamed run
	// bypasses the cache read but must still produce the identical body.
	s := New(Config{})
	first := post(t, s, "/v1/eval", spec)
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first eval X-Cache = %q, want miss", got)
	}
	second := post(t, s, "/v1/eval", spec)
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("second eval X-Cache = %q, want hit", got)
	}
	streamed := post(t, s, "/v1/eval?stream=1", spec)
	if streamed.Code != http.StatusOK {
		t.Fatalf("streamed eval: status %d: %s", streamed.Code, streamed.Body.String())
	}
	if !bytes.Equal(first.Body.Bytes(), streamed.Body.Bytes()) {
		t.Error("streamed workload run body differs from unstreamed run")
	}
}

// TestEvalRejectsBadSpecs asserts malformed bodies are 400s and bump the
// bad-request counter, never touching admission.
func TestEvalRejectsBadSpecs(t *testing.T) {
	s := New(Config{})
	for _, body := range []string{``, `{}`, `{"experiment":"nope"}`, `{"netsim":{"sats":-1,"per_sat_mbps":1}}`} {
		if w := post(t, s, "/v1/eval", body); w.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, w.Code)
		}
	}
}

// TestEvalOverload asserts the admission gate: with one slot and no
// queue, a second concurrent eval is rejected 429 with a Retry-After
// hint while the first completes normally.
func TestEvalOverload(t *testing.T) {
	s := New(Config{MaxInFlight: 1, QueueDepth: -1})
	entered := make(chan struct{})
	releaseEval := make(chan struct{})
	s.evalHook = func(ctx context.Context, spec *EvalSpec) ([]report.Table, error) {
		close(entered)
		<-releaseEval
		return nil, nil
	}

	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { firstDone <- post(t, s, "/v1/eval", `{"experiment":"fig2"}`) }()
	<-entered // first request holds the only slot

	// Distinct spec so neither the cache nor singleflight can absorb it.
	second := post(t, s, "/v1/eval", `{"experiment":"fig3"}`)
	if second.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded eval: status %d, want 429: %s", second.Code, second.Body.String())
	}
	if ra := second.Header().Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After")
	}

	close(releaseEval)
	if w := <-firstDone; w.Code != http.StatusOK {
		t.Fatalf("first eval after release: status %d: %s", w.Code, w.Body.String())
	}
}

// TestEvalDeadline asserts the per-request deadline propagates into the
// evaluation and surfaces as 504.
func TestEvalDeadline(t *testing.T) {
	s := New(Config{EvalTimeout: 20 * time.Millisecond})
	s.evalHook = func(ctx context.Context, spec *EvalSpec) ([]report.Table, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	w := post(t, s, "/v1/eval", `{"experiment":"fig2"}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline eval: status %d, want 504: %s", w.Code, w.Body.String())
	}
	// The failed evaluation must not be cached; a retry runs it again.
	s.evalHook = func(ctx context.Context, spec *EvalSpec) ([]report.Table, error) {
		return nil, nil
	}
	if w := post(t, s, "/v1/eval", `{"experiment":"fig2"}`); w.Code != http.StatusOK {
		t.Fatalf("retry after deadline: status %d", w.Code)
	}
}

// TestConcurrentDistinctEvals asserts distinct in-flight evaluations all
// make progress under the admission bound.
func TestConcurrentDistinctEvals(t *testing.T) {
	s := New(Config{MaxInFlight: 2, QueueDepth: 16})
	specs := []string{
		`{"netsim":{"sats":4,"per_sat_mbps":100,"duration_sec":10,"seed":1}}`,
		`{"netsim":{"sats":4,"per_sat_mbps":100,"duration_sec":10,"seed":2}}`,
		`{"netsim":{"sats":6,"per_sat_mbps":100,"duration_sec":10,"seed":3}}`,
		`{"sched":{"satellites":2,"duration_sec":30,"seed":4}}`,
		`{"sched":{"satellites":3,"duration_sec":30,"seed":5}}`,
		`{"experiment":"table5"}`,
	}
	var wg sync.WaitGroup
	codes := make([]int, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec string) {
			defer wg.Done()
			codes[i] = post(t, s, "/v1/eval", spec).Code
		}(i, spec)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("spec %d: status %d, want 200", i, code)
		}
	}
	if got := s.cache.len(); got != len(specs) {
		t.Errorf("cache holds %d entries, want %d", got, len(specs))
	}
}

// TestExperimentsEndpoint asserts the registry listing carries IDs and
// descriptions.
func TestExperimentsEndpoint(t *testing.T) {
	s := New(Config{})
	w := get(t, s, "/v1/experiments")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var listing struct {
		Experiments []experiments.Info `json:"experiments"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Experiments) != len(experiments.IDs()) {
		t.Errorf("listing has %d entries, registry has %d", len(listing.Experiments), len(experiments.IDs()))
	}
	for _, info := range listing.Experiments {
		if info.ID == "" || info.Description == "" {
			t.Errorf("entry %+v missing ID or description", info)
		}
	}
}

// TestHealthz asserts liveness plus the gauge fields.
func TestHealthz(t *testing.T) {
	s := New(Config{})
	w := get(t, s, "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var health struct {
		Status       string `json:"status"`
		InFlight     int    `json:"in_flight"`
		Queued       int    `json:"queued"`
		CacheEntries int    `json:"cache_entries"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("status = %q, want ok", health.Status)
	}
}

// TestMetricsEndpoint asserts both renderings of the daemon registry.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{})
	post(t, s, "/v1/eval", `{"experiment":"table5"}`)

	text := get(t, s, "/v1/metrics")
	if text.Code != http.StatusOK {
		t.Fatalf("text metrics: status %d", text.Code)
	}
	if !strings.Contains(text.Body.String(), "serve.eval.completed") {
		t.Errorf("text metrics missing serve.eval.completed:\n%s", text.Body.String())
	}

	jsonW := get(t, s, "/v1/metrics?format=json")
	if jsonW.Code != http.StatusOK {
		t.Fatalf("json metrics: status %d", jsonW.Code)
	}
	var snap map[string]any
	if err := json.Unmarshal(jsonW.Body.Bytes(), &snap); err != nil {
		t.Fatalf("json metrics not JSON: %v", err)
	}
}

// TestMetricsOverloadSurface asserts the admission/stream health gauges and
// the pre-registered shed counters are visible on a fresh daemon, and that
// the eval-time EWMA moves after an evaluation completes.
func TestMetricsOverloadSurface(t *testing.T) {
	s := New(Config{})

	fresh := get(t, s, "/v1/metrics")
	if fresh.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", fresh.Code)
	}
	body := fresh.Body.String()
	for _, name := range []string{
		"serve.admission.in_flight",
		"serve.admission.queued",
		"serve.admission.avg_eval_secs",
		"serve.stream.clients",
		"serve.stream.dropped_events",
		"serve.stream.run_dropped_events",
		"serve.eval.rejected",
		"serve.eval.deadline_exceeded",
		"serve.eval.bad_requests",
		"serve.eval.errors",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("fresh daemon metrics missing %s:\n%s", name, body)
		}
	}
	if s.adm.AvgEvalSec() != 0 {
		t.Errorf("fresh daemon AvgEvalSec = %v, want 0", s.adm.AvgEvalSec())
	}

	post(t, s, "/v1/eval", `{"experiment":"table5"}`)
	if s.adm.AvgEvalSec() <= 0 {
		t.Errorf("AvgEvalSec = %v after an eval, want > 0", s.adm.AvgEvalSec())
	}
}

// TestStreamSSE runs a streamed netsim eval against a live httptest
// server and asserts per-step obs samples arrive on /v1/stream tagged
// with the run's content address.
func TestStreamSSE(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	streamResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if got := streamResp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", got)
	}

	// Wait for the subscription to land before launching the run.
	deadline := time.Now().Add(5 * time.Second)
	for s.hub.clientCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream client never registered")
		}
		time.Sleep(time.Millisecond)
	}

	const spec = `{"netsim":{"sats":4,"per_sat_mbps":200,"duration_sec":20,"seed":3}}`
	evalResp, err := http.Post(ts.URL+"/v1/eval?stream=1", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	evalBody := new(bytes.Buffer)
	if _, err := evalBody.ReadFrom(evalResp.Body); err != nil {
		t.Fatal(err)
	}
	evalResp.Body.Close()
	if evalResp.StatusCode != http.StatusOK {
		t.Fatalf("streamed eval: status %d: %s", evalResp.StatusCode, evalBody.String())
	}
	wantRun := decodeEval(t, evalBody.Bytes()).Key

	// Scan the SSE feed for a sample from that run.
	scanner := bufio.NewScanner(streamResp.Body)
	found := false
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e streamEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		if e.Run == wantRun && strings.HasPrefix(e.Name, "netsim.") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no netsim sample for run %s on the stream (scan err: %v)", wantRun, scanner.Err())
	}

	// A ?stream=1 run still lands in the cache.
	if _, ok := s.cache.get(wantRun); !ok {
		t.Error("streamed run result not cached")
	}

	// A workload run's per-step qos samples ride the same stream.
	const wlSpec = `{"workload":{"policy":"priority","campaign":"none","load":0.5,"duration_sec":60,"seed":2}}`
	wlResp, err := http.Post(ts.URL+"/v1/eval?stream=1", "application/json", strings.NewReader(wlSpec))
	if err != nil {
		t.Fatal(err)
	}
	wlBody := new(bytes.Buffer)
	if _, err := wlBody.ReadFrom(wlResp.Body); err != nil {
		t.Fatal(err)
	}
	wlResp.Body.Close()
	if wlResp.StatusCode != http.StatusOK {
		t.Fatalf("streamed workload eval: status %d: %s", wlResp.StatusCode, wlBody.String())
	}
	wantWl := decodeEval(t, wlBody.Bytes()).Key
	found = false
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e streamEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		if e.Run == wantWl && strings.HasPrefix(e.Name, "qos.") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no qos sample for run %s on the stream (scan err: %v)", wantWl, scanner.Err())
	}
}

// TestDrainEndsStreams asserts Drain unblocks open SSE handlers so
// graceful shutdown can complete.
func TestDrainEndsStreams(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for s.hub.clientCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream client never registered")
		}
		time.Sleep(time.Millisecond)
	}
	s.Drain()

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4096)
		for {
			if _, err := resp.Body.Read(buf); err != nil {
				return // stream ended
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after Drain")
	}
}

// TestRetryAfterEstimate pins the admission EWMA math.
func TestRetryAfterEstimate(t *testing.T) {
	a := newAdmission(2, 4)
	if got := a.RetryAfterSec(); got != 1 {
		t.Errorf("empty EWMA: Retry-After %d, want 1", got)
	}
	a.observeEval(10)
	if got := a.RetryAfterSec(); got != 5 { // 10s avg × 1 waiter ÷ 2 slots
		t.Errorf("Retry-After %d, want 5", got)
	}
}

// TestAdmissionQueueCancellation asserts a queued waiter respects its
// context deadline.
func TestAdmissionQueueCancellation(t *testing.T) {
	a := newAdmission(1, 4)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("queued Acquire error = %v, want DeadlineExceeded", err)
	}
	release()
	// The slot is free again.
	release2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release2()
	if got := fmt.Sprint(a.InFlight(), a.Queued()); got != "0 0" {
		t.Errorf("in_flight/queued = %s, want 0 0", got)
	}
}

// TestNetsimRoutingCountersSurface asserts the routing-dynamics counters
// ride both metrics surfaces: pre-registered at zero on a fresh daemon's
// /v1/metrics, aggregated there after a faulty netsim eval (with the
// incremental repair path actually exercised), and present per run in the
// response's sim-clock snapshot.
func TestNetsimRoutingCountersSurface(t *testing.T) {
	s := New(Config{})

	routingCounters := []string{
		"serve.netsim.route_recomputes", "serve.netsim.route_repairs",
		"serve.netsim.topology_rebuilds", "serve.netsim.rebuild_drops",
	}
	fresh := get(t, s, "/v1/metrics")
	if fresh.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", fresh.Code)
	}
	for _, name := range routingCounters {
		if !strings.Contains(fresh.Body.String(), name) {
			t.Errorf("fresh daemon metrics missing pre-registered %s", name)
		}
	}

	w := post(t, s, "/v1/eval", `{"netsim":{"sats":8,"per_sat_mbps":100,"duration_sec":60,"link_outage":0.1,"link_mttr_sec":10,"seed":3}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("eval: status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeEval(t, w.Body.Bytes())
	if resp.Netsim == nil || resp.Metrics == nil {
		t.Fatal("netsim eval response missing result or metrics snapshot")
	}
	if resp.Netsim.RouteRepairs == 0 {
		t.Fatal("faulty run exercised no incremental route repairs")
	}
	snap := map[string]int64{}
	for _, c := range resp.Metrics.Counters {
		snap[c.Name] = c.Value
	}
	if got := snap["netsim.route_repairs"]; got != int64(resp.Netsim.RouteRepairs) {
		t.Errorf("snapshot netsim.route_repairs = %d, want %d", got, resp.Netsim.RouteRepairs)
	}

	jsonW := get(t, s, "/v1/metrics?format=json")
	if jsonW.Code != http.StatusOK {
		t.Fatalf("json metrics: status %d", jsonW.Code)
	}
	var daemon obs.Snapshot
	if err := json.Unmarshal(jsonW.Body.Bytes(), &daemon); err != nil {
		t.Fatal(err)
	}
	agg := map[string]int64{}
	for _, c := range daemon.Counters {
		agg[c.Name] = c.Value
	}
	if got := agg["serve.netsim.route_repairs"]; got != int64(resp.Netsim.RouteRepairs) {
		t.Errorf("daemon serve.netsim.route_repairs = %d, want %d", got, resp.Netsim.RouteRepairs)
	}
	if got := agg["serve.netsim.route_recomputes"]; got != int64(resp.Netsim.RouteRecomputes) {
		t.Errorf("daemon serve.netsim.route_recomputes = %d, want %d", got, resp.Netsim.RouteRecomputes)
	}
	if got := agg["serve.netsim.topology_rebuilds"]; got != int64(resp.Netsim.TopologyRebuilds) {
		t.Errorf("daemon serve.netsim.topology_rebuilds = %d, want %d", got, resp.Netsim.TopologyRebuilds)
	}
}

// TestEvalMultiShellScenario asserts the multi-shell netsim spec end to
// end: two fresh servers produce byte-identical bodies for a 2-shell
// stack, the rule names decode, and malformed stacks are rejected with
// 400s rather than reaching the simulator.
func TestEvalMultiShellScenario(t *testing.T) {
	const spec = `{"netsim":{"shells":[{"sats":9,"alt_km":550},{"sats":6,"k":2,"alt_km":800}],` +
		`"inter_shell":"nearest","per_sat_mbps":500,"duration_sec":30,"link_outage":0.05,"seed":3}}`
	var bodies [2][]byte
	for i := range bodies {
		s := New(Config{})
		w := post(t, s, "/v1/eval", spec)
		if w.Code != http.StatusOK {
			t.Fatalf("server %d: status %d: %s", i, w.Code, w.Body.String())
		}
		bodies[i] = w.Body.Bytes()
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("identical multi-shell spec produced different bodies on two fresh servers")
	}
	resp := decodeEval(t, bodies[0])
	if resp.Netsim == nil {
		t.Fatal("multi-shell eval response missing netsim_result")
	}
	if resp.Netsim.DeliveryRatio <= 0 {
		t.Errorf("delivery ratio %v, want > 0", resp.Netsim.DeliveryRatio)
	}

	s := New(Config{})
	for _, bad := range []string{
		`{"netsim":{"sats":4,"shells":[{"sats":9}],"per_sat_mbps":100}}`,
		`{"netsim":{"shells":[{"sats":9},{"sats":0}],"per_sat_mbps":100}}`,
		`{"netsim":{"shells":[{"sats":9},{"sats":6}],"inter_shell":"diagonal","per_sat_mbps":100}}`,
		`{"netsim":{"shells":[{"sats":9},{"sats":6}],"cross_links":-1,"per_sat_mbps":100}}`,
	} {
		if w := post(t, s, "/v1/eval", bad); w.Code != http.StatusBadRequest {
			t.Errorf("spec %s: status %d, want 400", bad, w.Code)
		}
	}
}

// TestEvalOptimizeShellAxes drives a search whose space carries the
// shell-count and inter-shell axes through the daemon, asserting the
// request stays deterministic and yields a feasible best design.
func TestEvalOptimizeShellAxes(t *testing.T) {
	const spec = `{"optimize":{"seed":11,"budget":8,"restarts":2,` +
		`"space":{"planes":[1],"sats_per_plane":[8],"altitudes_km":[550],` +
		`"topologies":[{"k":2,"split":1}],"devices":[1],"recoveries":["retry"],` +
		`"shell_counts":[1,2],"inter_shells":["aligned","nearest"]}}}`
	var bodies [2][]byte
	for i := range bodies {
		s := New(Config{})
		w := post(t, s, "/v1/eval", spec)
		if w.Code != http.StatusOK {
			t.Fatalf("server %d: status %d: %s", i, w.Code, w.Body.String())
		}
		bodies[i] = w.Body.Bytes()
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("identical shell-axis optimize spec produced different bodies on two fresh servers")
	}
	resp := decodeEval(t, bodies[0])
	if resp.Optimize == nil {
		t.Fatal("optimize eval response missing optimize_result")
	}
	if !resp.Optimize.Best.Score.Feasible || resp.Optimize.Best.Score.Objective <= 0 {
		t.Errorf("degenerate best candidate: %+v", resp.Optimize.Best)
	}
}
