package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// optimizeSpecSmall is a fast 8-design search: one plane, one altitude,
// a ring fabric, and a 2×2 sizing grid, fully evaluated within a handful
// of proposals.
const optimizeSpecSmall = `{"optimize":{"seed":5,"budget":8,"restarts":2,"anneal":true,` +
	`"space":{"planes":[1],"sats_per_plane":[8,12],"altitudes_km":[550],` +
	`"topologies":[{"k":2,"split":1}],"devices":[1,2],"recoveries":["none","retry"]}}}`

// TestEvalOptimizeScenario asserts the optimize spec kind end to end:
// byte-identical bodies across two fresh server instances, the raw
// outcome and sim-clock optimizer metrics in the response, and a
// byte-identical cache hit on repeat.
func TestEvalOptimizeScenario(t *testing.T) {
	var bodies [2][]byte
	for i := range bodies {
		s := New(Config{})
		w := post(t, s, "/v1/eval", optimizeSpecSmall)
		if w.Code != http.StatusOK {
			t.Fatalf("server %d: status %d: %s", i, w.Code, w.Body.String())
		}
		bodies[i] = w.Body.Bytes()
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("identical optimize spec produced different bodies on two fresh servers")
	}
	resp := decodeEval(t, bodies[0])
	if resp.Optimize == nil {
		t.Fatal("optimize eval response missing optimize_result")
	}
	if resp.Optimize.Proposals != 8 {
		t.Errorf("search made %d proposals, want the full budget of 8", resp.Optimize.Proposals)
	}
	if !resp.Optimize.Best.Score.Feasible || resp.Optimize.Best.Score.Objective <= 0 {
		t.Errorf("degenerate best candidate: %+v", resp.Optimize.Best)
	}
	if len(resp.Optimize.Trace) != 8 || len(resp.Optimize.Pareto) == 0 {
		t.Errorf("trace/pareto sizes %d/%d", len(resp.Optimize.Trace), len(resp.Optimize.Pareto))
	}
	if resp.Metrics == nil {
		t.Fatal("optimize eval response missing sim-clock metrics snapshot")
	}
	counters := map[string]int64{}
	for _, c := range resp.Metrics.Counters {
		counters[c.Name] = c.Value
	}
	if got := counters["optimize.proposals"]; got != int64(resp.Optimize.Proposals) {
		t.Errorf("snapshot optimize.proposals = %d, want %d", got, resp.Optimize.Proposals)
	}
	if !strings.Contains(resp.Text, "ext-optimize-pareto") {
		t.Errorf("text rendering missing pareto table:\n%s", resp.Text)
	}

	// Repeat on one server: a cache hit replaying the stored bytes.
	s := New(Config{})
	first := post(t, s, "/v1/eval", optimizeSpecSmall)
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first eval X-Cache = %q, want miss", got)
	}
	second := post(t, s, "/v1/eval", optimizeSpecSmall)
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("second eval X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cache hit body differs from original")
	}

	// The daemon registry aggregated the search counters.
	metrics := get(t, s, "/v1/metrics")
	if !strings.Contains(metrics.Body.String(), "serve.optimize.proposals") {
		t.Errorf("daemon metrics missing serve.optimize.proposals:\n%s", metrics.Body.String())
	}
}

// TestEvalOptimizeRejectsBadSpecs asserts optimize validation failures are
// 400s: budget over the cap, a second scenario kind, and an empty-axis
// space override.
func TestEvalOptimizeRejectsBadSpecs(t *testing.T) {
	s := New(Config{})
	for _, body := range []string{
		`{"optimize":{"budget":100000}}`,
		`{"optimize":{"budget":-1}}`,
		`{"optimize":{"init_temp":-0.5}}`,
		`{"optimize":{"budget":4},"experiment":"table5"}`,
		`{"optimize":{"space":{"planes":[1]}}}`,
	} {
		if w := post(t, s, "/v1/eval", body); w.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400: %s", body, w.Code, w.Body.String())
		}
	}
}

// TestOptimizeStreamSSE runs a streamed optimize eval against a live
// httptest server and asserts per-round best-objective progress samples
// arrive on /v1/stream tagged with the run's content address.
func TestOptimizeStreamSSE(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	streamResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for s.hub.clientCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream client never registered")
		}
		time.Sleep(time.Millisecond)
	}

	evalResp, err := http.Post(ts.URL+"/v1/eval?stream=1", "application/json", strings.NewReader(optimizeSpecSmall))
	if err != nil {
		t.Fatal(err)
	}
	evalBody := new(bytes.Buffer)
	if _, err := evalBody.ReadFrom(evalResp.Body); err != nil {
		t.Fatal(err)
	}
	evalResp.Body.Close()
	if evalResp.StatusCode != http.StatusOK {
		t.Fatalf("streamed optimize eval: status %d: %s", evalResp.StatusCode, evalBody.String())
	}
	wantRun := decodeEval(t, evalBody.Bytes()).Key

	scanner := bufio.NewScanner(streamResp.Body)
	found := false
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e streamEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		if e.Run == wantRun && e.Name == "optimize.best_objective" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no optimize.best_objective sample for run %s on the stream (scan err: %v)", wantRun, scanner.Err())
	}

	// The streamed run still lands in the cache.
	if _, ok := s.cache.get(wantRun); !ok {
		t.Error("streamed optimize run result not cached")
	}
}

// TestOptimizeDeadline asserts a deadline that expires mid-search surfaces
// as 504 and that the failure is never cached — a retry re-runs the
// search instead of replaying an error body.
func TestOptimizeDeadline(t *testing.T) {
	s := New(Config{EvalTimeout: 30 * time.Millisecond})
	// The default 2880-design space at the full budget cap takes far longer
	// than the timeout, so the deadline reliably lands mid-search.
	const spec = `{"optimize":{"seed":1,"budget":512,"restarts":8}}`
	w := post(t, s, "/v1/eval", spec)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline optimize eval: status %d, want 504: %s", w.Code, w.Body.String())
	}
	if got := s.cache.len(); got != 0 {
		t.Errorf("failed evaluation cached: %d entries, want 0", got)
	}
	// A retry is admitted and evaluated fresh (and times out again under the
	// same server-side cap — never replayed from the cache).
	retry := post(t, s, "/v1/eval", spec)
	if retry.Code != http.StatusGatewayTimeout {
		t.Fatalf("retry: status %d, want 504", retry.Code)
	}
	if got := retry.Header().Get("X-Cache"); got == "hit" {
		t.Error("retry after deadline served from cache")
	}
}
