package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestKeyStableAcrossFieldOrder asserts the content address survives every
// JSON permutation of the same scenario: field order inside objects,
// object order inside the spec, and absent-vs-zero optional fields. This
// is the cache's core contract — a client must not be able to miss the
// cache by serializing the same spec differently.
func TestKeyStableAcrossFieldOrder(t *testing.T) {
	permutations := []string{
		`{"netsim":{"sats":16,"per_sat_mbps":1000,"link_outage":0.01,"seed":1}}`,
		`{"netsim":{"per_sat_mbps":1000,"link_outage":0.01,"sats":16,"seed":1}}`,
		`{"netsim":{"seed":1,"link_outage":0.01,"per_sat_mbps":1000,"sats":16}}`,
		// Zero-valued optional fields are identical to absent ones.
		`{"netsim":{"sats":16,"per_sat_mbps":1000,"link_outage":0.01,"seed":1,"warmup_sec":0,"name":""}}`,
	}
	keys := make([]string, len(permutations))
	for i, body := range permutations {
		spec, err := decodeSpec([]byte(body))
		if err != nil {
			t.Fatalf("permutation %d: %v", i, err)
		}
		keys[i], err = spec.Key()
		if err != nil {
			t.Fatalf("permutation %d: %v", i, err)
		}
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[0] {
			t.Errorf("permutation %d hashes to %s, permutation 0 to %s", i, keys[i], keys[0])
		}
	}

	// A changed parameter must change the address.
	other, err := decodeSpec([]byte(`{"netsim":{"sats":16,"per_sat_mbps":1000,"link_outage":0.02,"seed":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	otherKey, err := other.Key()
	if err != nil {
		t.Fatal(err)
	}
	if otherKey == keys[0] {
		t.Error("different scenarios share a content address")
	}
}

// TestKeyDistinguishesKinds asserts an experiment spec and a scenario spec
// can never collide structurally.
func TestKeyDistinguishesKinds(t *testing.T) {
	a, err := decodeSpec([]byte(`{"experiment":"fig2"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := decodeSpec([]byte(`{"experiment":"fig3"}`))
	if err != nil {
		t.Fatal(err)
	}
	ka, _ := a.Key()
	kb, _ := b.Key()
	if ka == kb {
		t.Error("distinct experiments share a key")
	}
}

// TestDecodeSpecRejects asserts malformed bodies fail loudly.
func TestDecodeSpecRejects(t *testing.T) {
	for _, body := range []string{
		``,
		`not json`,
		`{}`, // no scenario kind
		`{"experiment":"fig2","netsim":{"sats":1,"per_sat_mbps":1}}`, // two kinds
		`{"experiment":"no-such-id"}`,
		`{"netsim":{"sats":0,"per_sat_mbps":100}}`,
		`{"netsim":{"sats":4,"per_sat_mbps":0}}`,
		`{"sched":{"satellites":0}}`,
		`{"sched":{"satellites":2,"app":"NOPE"}}`,
		`{"sched":{"satellites":2,"device":"tpu9000"}}`,
		`{"workload":{"load":0}}`,
		`{"workload":{"load":1,"policy":"bogus"}}`,
		`{"workload":{"load":1,"campaign":"bogus"}}`,
		`{"experiment":"fig2","workload":{"load":1}}`, // two kinds
		`{"unknown_field":1}`,
		`{"experiment":"fig2"} trailing`,
	} {
		if _, err := decodeSpec([]byte(body)); err == nil {
			t.Errorf("body %q accepted", body)
		}
	}
}

// TestCacheLRUEviction asserts the cache holds at most max entries and
// evicts least recently used first.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || string(v) != "A" {
		t.Error("a lost")
	}
	if v, ok := c.get("c"); !ok || string(v) != "C" {
		t.Error("c lost")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

// TestSingleflightSharesOneEval asserts concurrent identical requests run
// the evaluation exactly once and share its bytes.
func TestSingleflightSharesOneEval(t *testing.T) {
	c := newResultCache(8)
	var evals atomic.Int64
	started := make(chan struct{})
	releaseEval := make(chan struct{})
	eval := func() ([]byte, error) {
		evals.Add(1)
		close(started)
		<-releaseEval
		return []byte("result"), nil
	}

	const callers = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, callers)
	// First caller owns the flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		b, _, err := c.do("k", eval)
		if err != nil {
			t.Error(err)
		}
		bodies[0] = b
	}()
	<-started
	// The rest join it.
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, hit, err := c.do("k", func() ([]byte, error) {
				evals.Add(1)
				return nil, fmt.Errorf("second evaluation ran")
			})
			if err != nil {
				t.Error(err)
			}
			if !hit {
				t.Errorf("caller %d: joined flight not reported as hit", i)
			}
			bodies[i] = b
		}(i)
	}
	// Give the joiners a moment to block on the flight, then release.
	time.Sleep(10 * time.Millisecond)
	close(releaseEval)
	wg.Wait()
	if n := evals.Load(); n != 1 {
		t.Errorf("evaluation ran %d times, want 1", n)
	}
	for i, b := range bodies {
		if string(b) != "result" {
			t.Errorf("caller %d got %q", i, b)
		}
	}
	if _, ok := c.get("k"); !ok {
		t.Error("result not stored after flight")
	}
}

// TestSingleflightErrorNotCached asserts a failed evaluation is shared
// with its waiters but not stored, so the next request retries.
func TestSingleflightErrorNotCached(t *testing.T) {
	c := newResultCache(8)
	calls := 0
	_, _, err := c.do("k", func() ([]byte, error) { calls++; return nil, fmt.Errorf("boom") })
	if err == nil {
		t.Fatal("error swallowed")
	}
	if _, ok := c.get("k"); ok {
		t.Error("failed evaluation cached")
	}
	if _, _, err := c.do("k", func() ([]byte, error) { calls++; return []byte("ok"), nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("eval ran %d times, want 2 (retry after failure)", calls)
	}
}
