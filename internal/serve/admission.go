package serve

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
)

// ErrOverloaded is returned by Acquire when both the in-flight slots and
// the wait queue are full; the eval handler maps it to 429 + Retry-After.
var ErrOverloaded = errors.New("serve: admission queue full")

// admission bounds concurrent evaluations. maxInFlight requests evaluate
// at once; up to queueDepth more wait for a slot (respecting their request
// context's deadline); anything beyond that is rejected immediately so an
// overload sheds load at the front door instead of stacking goroutines.
//
// The in-flight bound is also what keeps daemon concurrency composed with
// internal/pool: each admitted evaluation runs its experiment inline and
// fans sub-jobs into the shared pool's global token budget, so total CPU
// pressure is (in-flight evals) + (pool budget) regardless of how many
// requests arrive.
type admission struct {
	slots chan struct{} // capacity = max in-flight
	queue chan struct{} // capacity = max waiters

	// avgEvalSec is an EWMA of recent evaluation wall times (float64
	// bits), the basis of the Retry-After hint.
	avgEvalSec atomic.Uint64
}

// newAdmission builds an admission gate. maxInFlight < 1 is clamped to 1;
// queueDepth < 0 is clamped to 0 (reject as soon as slots are full).
func newAdmission(maxInFlight, queueDepth int) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots: make(chan struct{}, maxInFlight),
		queue: make(chan struct{}, queueDepth),
	}
}

// Acquire claims an evaluation slot, waiting in the bounded queue when all
// slots are busy. It returns a release function on success; ErrOverloaded
// when the queue is full; or ctx.Err() when the request is canceled or
// times out while waiting.
func (a *admission) Acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		return nil, ErrOverloaded
	}
	defer func() { <-a.queue }()
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release frees one slot.
func (a *admission) release() {
	<-a.slots
}

// InFlight reports the number of admitted evaluations.
func (a *admission) InFlight() int { return len(a.slots) }

// Queued reports the number of requests waiting for a slot.
func (a *admission) Queued() int { return len(a.queue) }

// observeEval folds one evaluation duration into the EWMA (α = 0.3).
func (a *admission) observeEval(secs float64) {
	if secs < 0 || math.IsNaN(secs) || math.IsInf(secs, 0) {
		return
	}
	for {
		old := a.avgEvalSec.Load()
		avg := math.Float64frombits(old)
		var next float64
		if avg == 0 {
			next = secs
		} else {
			next = 0.7*avg + 0.3*secs
		}
		if a.avgEvalSec.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// AvgEvalSec returns the EWMA of recent evaluation wall times (0 until
// the first evaluation completes).
func (a *admission) AvgEvalSec() float64 {
	return math.Float64frombits(a.avgEvalSec.Load())
}

// RetryAfterSec estimates how long a rejected client should back off: the
// queue's expected drain time at the average evaluation rate, floored at
// one second.
func (a *admission) RetryAfterSec() int {
	avg := math.Float64frombits(a.avgEvalSec.Load())
	if avg <= 0 {
		return 1
	}
	waiting := float64(a.Queued() + 1)
	slots := float64(cap(a.slots))
	est := int(math.Ceil(avg * waiting / slots))
	if est < 1 {
		est = 1
	}
	if est > 600 {
		est = 600
	}
	return est
}
