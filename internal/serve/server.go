package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"spacedc/internal/experiments"
	"spacedc/internal/netsim"
	"spacedc/internal/obs"
	"spacedc/internal/optimize"
	"spacedc/internal/qos"
	"spacedc/internal/report"
	"spacedc/internal/sched"
)

// Config sizes the daemon.
type Config struct {
	// MaxInFlight bounds concurrent evaluations (≤ 0 → 4). Each admitted
	// evaluation runs inline and fans sub-jobs into the shared
	// internal/pool token budget, so total CPU pressure stays bounded by
	// MaxInFlight + the pool budget however many requests arrive.
	MaxInFlight int
	// QueueDepth bounds requests waiting for a slot (0 → 16; negative →
	// no queue, reject as soon as the slots fill); beyond it POST /v1/eval
	// responds 429 with a Retry-After hint.
	QueueDepth int
	// CacheSize bounds the content-addressed result cache in entries
	// (≤ 0 → 256).
	CacheSize int
	// Workers is the experiment-level pool fan-out per evaluation, the
	// sudcsim -workers knob (0 → one slot per CPU). Results are
	// bit-identical at any value.
	Workers int
	// EvalTimeout, when positive, caps each evaluation's wall time on top
	// of the client's own deadline.
	EvalTimeout time.Duration
}

// Server is the scenario-evaluation service: the experiment registry and
// the netsim/sched simulators behind an HTTP API with admission control,
// a content-addressed result cache, and live metrics streaming. Build one
// with New and serve its Handler.
type Server struct {
	cfg   Config
	reg   *obs.Registry // daemon-level wall-clock metrics (serve.*)
	cache *resultCache
	adm   *admission
	hub   *streamHub
	mux   *http.ServeMux

	// draining closes when Drain is called, ending open SSE streams so a
	// graceful http.Server.Shutdown is not held hostage by long-lived
	// stream connections.
	draining  chan struct{}
	drainOnce sync.Once

	// evalHook, when non-nil, replaces the simulator dispatch — tests use
	// it to make evaluations block or fail on command.
	evalHook func(ctx context.Context, spec *EvalSpec) ([]report.Table, error)
}

// defaults for Config zero values.
const (
	defaultMaxInFlight = 4
	defaultQueueDepth  = 16
	defaultCacheSize   = 256
)

// New builds a server.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	switch {
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = defaultQueueDepth
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = defaultCacheSize
	}
	s := &Server{
		cfg:      cfg,
		reg:      obs.New(obs.WithWallClock()),
		cache:    newResultCache(cfg.CacheSize),
		adm:      newAdmission(cfg.MaxInFlight, cfg.QueueDepth),
		hub:      newStreamHub(),
		mux:      http.NewServeMux(),
		draining: make(chan struct{}),
	}
	// Pre-register the load-shedding and error counters so a fresh daemon's
	// /v1/metrics shows the whole overload surface at zero instead of
	// growing names as failures first occur.
	for _, name := range []string{
		"serve.eval.completed", "serve.eval.errors", "serve.eval.cache_hits",
		"serve.eval.rejected", "serve.eval.deadline_exceeded",
		"serve.eval.bad_requests", "serve.stream.run_dropped_events",
		"serve.netsim.route_recomputes", "serve.netsim.route_repairs",
		"serve.netsim.topology_rebuilds", "serve.netsim.rebuild_drops",
		"serve.optimize.proposals", "serve.optimize.evaluated",
		"serve.optimize.cache_hits", "serve.optimize.infeasible",
		"serve.optimize.accepted", "serve.optimize.rejected",
		"serve.optimize.restarts",
	} {
		s.reg.Counter(name)
	}
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /v1/eval", s.handleEval)
	s.mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/stream", s.handleStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain ends open SSE streams so in-flight evaluations can finish and a
// graceful shutdown can complete. Wire it into
// http.Server.RegisterOnShutdown. Idempotent.
func (s *Server) Drain() {
	s.drainOnce.Do(func() { close(s.draining) })
}

// Registry exposes the daemon's own metrics registry (serve.* namespace).
func (s *Server) Registry() *obs.Registry { return s.reg }

// evalResponse is the POST /v1/eval (and GET /v1/results/{key}) body. It
// is built only from deterministic inputs — the canonical spec, the
// rendered tables, and (for simulator scenarios) the run's sim-clock
// metrics snapshot — so identical specs always serialize to identical
// bytes, which is what makes the cache's stored body a faithful replay.
type evalResponse struct {
	Key  string    `json:"key"`
	Spec *EvalSpec `json:"spec"`
	// Text is the aligned-text rendering of every table, byte-identical
	// to `sudcsim <id>` stdout for experiment specs.
	Text   string         `json:"text"`
	Tables []report.Table `json:"tables"`
	// Netsim/Sched/Workload/Optimize carry the raw simulator result for
	// scenario specs.
	Netsim   *netsim.Result    `json:"netsim_result,omitempty"`
	Sched    *sched.Stats      `json:"sched_stats,omitempty"`
	Workload *qos.Result       `json:"workload_result,omitempty"`
	Optimize *optimize.Outcome `json:"optimize_result,omitempty"`
	// Metrics is the scenario run's deterministic sim-clock obs snapshot
	// (queue depths, utilizations, latency histograms). Omitted for
	// experiment specs, whose spans run on the wall clock.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// handleExperiments is GET /v1/experiments: the registry listing.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Experiments []experiments.Info `json:"experiments"`
	}{experiments.List()})
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, `{"status":"ok","in_flight":%d,"queued":%d,"cache_entries":%d}`+"\n",
		s.adm.InFlight(), s.adm.Queued(), s.cache.len())
}

// handleMetrics is GET /v1/metrics: the daemon registry snapshot as an
// aligned text table, or JSON with ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.Gauge("serve.cache.entries").Set(float64(s.cache.len()))
	s.reg.Gauge("serve.admission.in_flight").Set(float64(s.adm.InFlight()))
	s.reg.Gauge("serve.admission.queued").Set(float64(s.adm.Queued()))
	s.reg.Gauge("serve.stream.clients").Set(float64(s.hub.clientCount()))
	s.reg.Gauge("serve.stream.dropped_events").Set(float64(s.hub.dropped.Load()))
	s.reg.Gauge("serve.admission.avg_eval_secs").Set(s.adm.AvgEvalSec())
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.reg.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if err := s.reg.WriteText(w); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

// handleResult is GET /v1/results/{key}: fetch a cached evaluation by its
// content address without re-running anything.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	body, ok := s.cache.get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no cached result for %s", key))
		return
	}
	s.reg.Counter("serve.results.hits").Inc()
	writeCached(w, key, body, true)
}

// handleEval is POST /v1/eval: admission → cache/singleflight →
// evaluation → cached byte-identical response. ?stream=1 forces a live
// run (bypassing the cache read, still storing the result) whose per-step
// obs samples broadcast on /v1/stream tagged with the spec's key.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("reading body: %w", err))
		return
	}
	spec, err := decodeSpec(body)
	if err != nil {
		s.reg.Counter("serve.eval.bad_requests").Inc()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := spec.Key()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	stream := r.URL.Query().Get("stream") == "1"

	// Cache hits are served without consuming an admission slot: replaying
	// stored bytes is not an evaluation.
	if !stream {
		if cached, ok := s.cache.get(key); ok {
			s.reg.Counter("serve.eval.cache_hits").Inc()
			writeCached(w, key, cached, true)
			return
		}
	}

	ctx := r.Context()
	if s.cfg.EvalTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.EvalTimeout)
		defer cancel()
	}

	release, err := s.adm.Acquire(ctx)
	if err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	defer release()

	evalOnce := func() ([]byte, error) {
		t0 := time.Now()
		resp, err := s.evaluate(ctx, key, spec, stream)
		if err != nil {
			return nil, err
		}
		s.adm.observeEval(time.Since(t0).Seconds())
		return json.Marshal(resp)
	}

	var out []byte
	hit := false
	if stream {
		// A streamed run is always live: no cache read, no flight sharing
		// (subscribers asked for this run's events, not a replay). The
		// result still lands in the cache for later hits.
		out, err = evalOnce()
		if err == nil {
			s.cache.put(key, out)
		}
	} else {
		out, hit, err = s.cache.do(key, evalOnce)
	}
	if err != nil {
		s.reg.Counter("serve.eval.errors").Inc()
		s.writeEvalError(w, err)
		return
	}
	s.reg.Counter("serve.eval.completed").Inc()
	if hit {
		s.reg.Counter("serve.eval.cache_hits").Inc()
	}
	writeCached(w, key, out, hit)
}

// evaluate dispatches one spec to the simulators and assembles the
// deterministic response. When stream is true the run's registry is
// subscribed into the hub under the spec key.
func (s *Server) evaluate(ctx context.Context, key string, spec *EvalSpec, stream bool) (*evalResponse, error) {
	span := s.reg.StartSpan("serve.eval_secs")
	defer span.End()

	resp := &evalResponse{Key: key, Spec: spec}

	// attach wires a run registry into the SSE hub and returns a reaper.
	attach := func(reg *obs.Registry) func() {
		if !stream || reg == nil {
			return func() {}
		}
		ch, cancel := reg.Subscribe(4096)
		stop := make(chan struct{})
		done := make(chan struct{})
		go s.hub.pump(key, ch, stop, done)
		return func() {
			close(stop)
			<-done
			cancel()
			// Losses between the run registry and the hub pump (a slow
			// SSE reader backed up the subscription buffer) roll into a
			// daemon-lifetime counter once the run detaches.
			s.reg.Counter("serve.stream.run_dropped_events").Add(int(reg.DroppedEvents()))
		}
	}

	if s.evalHook != nil {
		tables, err := s.evalHook(ctx, spec)
		if err != nil {
			return nil, err
		}
		resp.Tables = tables
		resp.Text = renderTables(tables)
		return resp, nil
	}

	switch {
	case spec.Experiment != "":
		// Experiment spans run on a per-run wall-clock registry: streamed
		// live when asked for, never serialized into the response (wall
		// times are not deterministic).
		var reg *obs.Registry
		if stream {
			reg = obs.New(obs.WithWallClock())
		}
		detach := attach(reg)
		tables, err := experiments.RunWorkers(ctx, reg, spec.Experiment, s.cfg.Workers)
		detach()
		if err != nil {
			return nil, err
		}
		resp.Tables = tables
		resp.Text = renderTables(tables)

	case spec.Netsim != nil:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc := spec.Netsim.scenario()
		reg := obs.New() // sim clock: snapshot is deterministic
		sc.Obs = reg
		detach := attach(reg)
		res, err := netsim.Run(sc)
		detach()
		if err != nil {
			return nil, err
		}
		tables := []report.Table{netsimTable(sc, res)}
		snap := reg.Snapshot()
		resp.Tables = tables
		resp.Text = renderTables(tables)
		resp.Netsim = &res
		resp.Metrics = &snap
		// Mirror the run's routing-dynamics counters into the daemon
		// registry, aggregating the routing load (and rebuild losses)
		// served across all netsim evaluations.
		s.reg.Counter("serve.netsim.route_recomputes").Add(res.RouteRecomputes)
		s.reg.Counter("serve.netsim.route_repairs").Add(res.RouteRepairs)
		s.reg.Counter("serve.netsim.topology_rebuilds").Add(res.TopologyRebuilds)
		s.reg.Counter("serve.netsim.rebuild_drops").Add(res.RebuildDrops)

	case spec.Sched != nil:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg, proc, err := spec.Sched.config()
		if err != nil {
			return nil, err
		}
		reg := obs.New() // sim clock: snapshot is deterministic
		cfg.Obs = reg
		detach := attach(reg)
		st, err := sched.Simulate(cfg, proc)
		detach()
		if err != nil {
			return nil, err
		}
		tables := []report.Table{schedTable(spec.Sched, cfg, st)}
		snap := reg.Snapshot()
		resp.Tables = tables
		resp.Text = renderTables(tables)
		resp.Sched = &st
		resp.Metrics = &snap

	case spec.Workload != nil:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc, err := spec.Workload.scenario()
		if err != nil {
			return nil, err
		}
		reg := obs.New() // sim clock: snapshot is deterministic
		sc.Obs = reg
		detach := attach(reg)
		res, err := qos.Run(sc)
		detach()
		if err != nil {
			return nil, err
		}
		tables := []report.Table{workloadTable(spec.Workload, res)}
		snap := reg.Snapshot()
		resp.Tables = tables
		resp.Text = renderTables(tables)
		resp.Workload = &res
		resp.Metrics = &snap

	case spec.Optimize != nil:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg, space := spec.Optimize.config(s.cfg.Workers)
		// Sim clock: the optimizer stamps progress samples by proposal
		// count, so the snapshot is deterministic and SSE subscribers watch
		// the search converge live.
		reg := obs.New()
		cfg.Obs = reg
		detach := attach(reg)
		out, err := optimize.Search(ctx, cfg, space)
		detach()
		if err != nil {
			return nil, err
		}
		tables := optimize.Tables(out)
		snap := reg.Snapshot()
		resp.Tables = tables
		resp.Text = renderTables(tables)
		resp.Optimize = out
		resp.Metrics = &snap
		// Mirror the search counters into the daemon registry, aggregating
		// the optimizer load served across all evaluations.
		s.reg.Counter("serve.optimize.proposals").Add(out.Proposals)
		s.reg.Counter("serve.optimize.evaluated").Add(out.Evaluated)
		s.reg.Counter("serve.optimize.cache_hits").Add(out.CacheHits)
		s.reg.Counter("serve.optimize.infeasible").Add(out.Infeasible)
		s.reg.Counter("serve.optimize.accepted").Add(out.Accepted)
		s.reg.Counter("serve.optimize.rejected").Add(out.Rejected)
		s.reg.Counter("serve.optimize.restarts").Add(out.Restarts)
	}
	return resp, nil
}

// netsimTable renders a parameterized netsim run in the ext-netsim row
// format.
func netsimTable(sc netsim.Scenario, r netsim.Result) report.Table {
	title := fmt.Sprintf("netsim scenario %s (%d sats)", sc.Name, sc.Topology.TotalSats())
	if shells := len(sc.Topology.Shells); shells > 0 {
		title = fmt.Sprintf("netsim scenario %s (%d sats, %d shells)", sc.Name, sc.Topology.TotalSats(), shells)
	}
	t := report.Table{
		ID:    "netsim",
		Title: title,
		Columns: []string{"scenario", "offered", "delivered", "ratio",
			"p95 latency (s)", "bottleneck util", "retransmits", "drops"},
	}
	t.AddRow(sc.Name,
		r.OfferedRate.String(),
		r.DeliveredRate.String(),
		fmt.Sprintf("%.3f", r.DeliveryRatio),
		fmt.Sprintf("%.2f", r.LatencySec.P95),
		fmt.Sprintf("%.2f", r.BottleneckUtil),
		r.Retransmits,
		r.LinkDrops+r.NoRouteDrops)
	return t
}

// schedTable renders a parameterized sched run in the ext-sched row
// format.
func schedTable(ss *SchedSpec, cfg sched.Config, st sched.Stats) report.Table {
	app := ss.App
	if app == "" {
		app = "FD"
	}
	dev := ss.Device
	if dev == "" {
		dev = "rtx3090"
	}
	t := report.Table{
		ID:    "sched",
		Title: fmt.Sprintf("sched scenario: %s on %s, %d sats", app, dev, cfg.Satellites),
		Columns: []string{"target batch", "processed", "dropped",
			"mean latency (s)", "p95 (s)", "J/frame", "utilization"},
	}
	t.AddRow(cfg.TargetBatch, st.Processed, st.Dropped,
		fmt.Sprintf("%.2f", st.MeanLatencySec),
		fmt.Sprintf("%.2f", st.P95LatencySec),
		fmt.Sprintf("%.1f", st.EnergyPerFrameJ()),
		fmt.Sprintf("%.3f", st.Utilization))
	return t
}

// workloadTable renders a parameterized qos run: one row per priority
// class in the ext-workload column style, plus the run-level recovery
// figure in the title.
func workloadTable(ws *WorkloadSpec, r qos.Result) report.Table {
	recovery := "n/a"
	if r.RecoverySec >= 0 {
		recovery = fmt.Sprintf("%.1f s", r.RecoverySec)
	}
	t := report.Table{
		ID: "workload",
		Title: fmt.Sprintf("workload scenario %s: %d offered, %d shed, %d failed, recovery %s",
			r.Name, r.Offered, r.Shed, r.Failed, recovery),
		Columns: []string{"class", "offered", "admitted", "completed", "shed",
			"p99 (s)", "SLO", "goodput (req/s)"},
	}
	for _, c := range r.Classes {
		shed := c.ShedAdmission + c.ShedDeadline + c.ShedOverflow
		t.AddRow(c.Name, c.Offered, c.Admitted, c.Completed, shed,
			fmt.Sprintf("%.1f", c.P99LatencySec),
			fmt.Sprintf("%.3f", c.SLOAttainment),
			fmt.Sprintf("%.1f", c.GoodputPerSec))
	}
	return t
}

// renderTables concatenates every table's aligned-text rendering — the
// exact byte stream `sudcsim <id>` writes to stdout.
func renderTables(tables []report.Table) string {
	var out []byte
	for _, t := range tables {
		out = append(out, t.String()...)
	}
	return string(out)
}

// decodeSpec parses and validates a request body.
func decodeSpec(body []byte) (*EvalSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var spec EvalSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("decoding spec: %w", err)
	}
	if dec.More() {
		return nil, errors.New("decoding spec: trailing data after JSON object")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// writeAdmissionError maps admission failures onto status codes.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.reg.Counter("serve.eval.rejected").Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.adm.RetryAfterSec()))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.reg.Counter("serve.eval.deadline_exceeded").Inc()
		writeError(w, http.StatusGatewayTimeout, err)
	default:
		// Client went away while queued; the status is best-effort.
		writeError(w, http.StatusRequestTimeout, err)
	}
}

// writeEvalError maps evaluation failures onto status codes.
func (s *Server) writeEvalError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.reg.Counter("serve.eval.deadline_exceeded").Inc()
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusRequestTimeout, err)
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

// writeCached writes a stored evaluation body with its content address.
func writeCached(w http.ResponseWriter, key string, body []byte, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", strconv.Quote(key))
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body) //nolint:errcheck — client disconnects are not actionable
}

// writeJSON marshals v with a status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	out, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(out)          //nolint:errcheck
	w.Write([]byte("\n")) //nolint:errcheck
}

// writeError reports err as {"error": "..."}.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error":%s}`+"\n", strconv.Quote(err.Error()))
}
