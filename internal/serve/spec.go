// Package serve is the scenario-evaluation service behind cmd/sudcsimd:
// an HTTP daemon (stdlib net/http only) that exposes the experiment
// registry and the netsim/sched simulators as an API with request
// admission, a content-addressed result cache, and live metrics
// streaming. It is the long-running frontend over the same drivers the
// sudcsim batch CLI runs, so a daemon evaluation is byte-identical to the
// batch output for the same scenario.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"spacedc/internal/apps"
	"spacedc/internal/experiments"
	"spacedc/internal/gpusim"
	"spacedc/internal/isl"
	"spacedc/internal/netsim"
	"spacedc/internal/optimize"
	"spacedc/internal/qos"
	"spacedc/internal/sched"
	"spacedc/internal/units"
)

// EvalSpec is the body of POST /v1/eval: exactly one of the scenario
// kinds must be set. The spec is the cache identity — two requests whose
// normalized specs are equal share one evaluation and one cached result.
type EvalSpec struct {
	// Experiment runs one registered experiment by ID (or "all" for the
	// registry-wide sweep).
	Experiment string `json:"experiment,omitempty"`
	// Netsim runs a parameterized flow-level network scenario.
	Netsim *NetsimSpec `json:"netsim,omitempty"`
	// Sched runs a parameterized SµDC pipeline scenario.
	Sched *SchedSpec `json:"sched,omitempty"`
	// Workload runs an end-to-end QoS scenario: tasking surge, priority
	// admission, and fault campaign on the calibrated pipeline.
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Optimize runs a constellation design-space search maximizing goodput
	// per dollar-hour.
	Optimize *OptimizeSpec `json:"optimize,omitempty"`
}

// NetsimSpec parameterizes one netsim.Scenario over JSON-friendly scalar
// fields. Zero fields inherit the simulator defaults (see
// netsim.Scenario); the topology is the paper's in-plane cluster formation
// with Optical10G terminals, or a GEO star when GEOSinks > 0.
type NetsimSpec struct {
	Name        string  `json:"name,omitempty"`
	Sats        int     `json:"sats"`
	K           int     `json:"k,omitempty"`     // k-list fanout; 0 → 2 (ring)
	Split       int     `json:"split,omitempty"` // SµDC splitting; 0 → 1
	GEOSinks    int     `json:"geo_sinks,omitempty"`
	PerSatMbps  float64 `json:"per_sat_mbps"`
	SegmentBits float64 `json:"segment_bits,omitempty"`
	StepSec     float64 `json:"step_sec,omitempty"`
	EpochSec    float64 `json:"epoch_sec,omitempty"`
	DurationSec float64 `json:"duration_sec,omitempty"`
	WarmupSec   float64 `json:"warmup_sec,omitempty"`
	Seed        int64   `json:"seed,omitempty"`

	LinkOutage    float64 `json:"link_outage,omitempty"`
	LinkMTTRSec   float64 `json:"link_mttr_sec,omitempty"`
	SatMTBFSec    float64 `json:"sat_mtbf_sec,omitempty"`
	SatMTTRSec    float64 `json:"sat_mttr_sec,omitempty"`
	EclipseOutage bool    `json:"eclipse_outage,omitempty"`

	// Shells, when non-empty, replaces Sats/K/Split/GEOSinks with a
	// multi-shell stack wired by InterShell cross-links. Every field is
	// omitempty so single-shell specs hash exactly as they did before the
	// multi-shell axis existed.
	Shells []NetsimShell `json:"shells,omitempty"`
	// InterShell names the cross-link rule between adjacent shells:
	// "aligned" (default) or "nearest".
	InterShell string `json:"inter_shell,omitempty"`
	// CrossLinks caps cross-linked satellite pairs per adjacent shell
	// pair; 0 means one pair per satellite of the smaller shell.
	CrossLinks int `json:"cross_links,omitempty"`
}

// NetsimShell is one shell of a multi-shell NetsimSpec.
type NetsimShell struct {
	Sats  int     `json:"sats"`
	K     int     `json:"k,omitempty"`     // 0 → 2 (ring)
	Split int     `json:"split,omitempty"` // 0 → 1
	AltKm float64 `json:"alt_km,omitempty"`
}

// SchedSpec parameterizes one sched.Simulate run on a device-model
// processor. App is an apps.ID ("FD", "UED", …; default FD); Device is a
// catalog name ("rtx3090", "jetson-xavier", "a100", "h100", "cloud-ai100";
// default rtx3090).
type SchedSpec struct {
	App            string  `json:"app,omitempty"`
	Device         string  `json:"device,omitempty"`
	Replicas       int     `json:"replicas,omitempty"`
	Satellites     int     `json:"satellites"`
	FramePeriodSec float64 `json:"frame_period_sec,omitempty"`
	PixelsPerFrame float64 `json:"pixels_per_frame,omitempty"`
	QueueLimit     int     `json:"queue_limit,omitempty"`
	TargetBatch    int     `json:"target_batch,omitempty"`
	MaxBatch       int     `json:"max_batch,omitempty"`
	MaxWaitSec     float64 `json:"max_wait_sec,omitempty"`
	DurationSec    float64 `json:"duration_sec,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
}

// WorkloadSpec parameterizes one qos.Run on the shared calibrated
// pipeline (see experiments.WorkloadScenario): Policy is a qos policy
// preset ("open", "priority", "priority-retry"; default priority-retry),
// Campaign a qos fault-campaign preset ("none", "ground-outage",
// "seu-burst", "radiator-derate", "combined"; default combined), and Load
// the offered-demand multiplier (1.0 peaks near 1.6× the calibrated
// admission capacity).
type WorkloadSpec struct {
	Policy      string  `json:"policy,omitempty"`
	Campaign    string  `json:"campaign,omitempty"`
	Load        float64 `json:"load"`
	DurationSec float64 `json:"duration_sec,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
}

// OptimizeSpec parameterizes one optimize.Search over the daemon's study
// evaluation pipeline (see experiments.OptimizeStudyEval). Zero fields
// inherit the optimizer defaults; Space overrides the default 2880-design
// study space. Budget is capped so one request cannot buy unbounded
// compute from an admission slot.
type OptimizeSpec struct {
	Seed          int64   `json:"seed,omitempty"`
	Budget        int     `json:"budget,omitempty"`
	Restarts      int     `json:"restarts,omitempty"`
	StalePatience int     `json:"stale_patience,omitempty"`
	Anneal        bool    `json:"anneal,omitempty"`
	InitTemp      float64 `json:"init_temp,omitempty"`
	// Space, when set, replaces optimize.DefaultSpace as the search space.
	Space *optimize.Space `json:"space,omitempty"`
}

// maxOptimizeBudget bounds the per-request proposal budget.
const maxOptimizeBudget = 512

// config converts the optimize spec into a search configuration plus
// space. The pool fan-out comes from the daemon (the sudcsimd -workers
// knob); results are bit-identical at any value.
func (os *OptimizeSpec) config(workers int) (optimize.Config, optimize.Space) {
	cfg := optimize.Config{
		Seed:          os.Seed,
		Budget:        os.Budget,
		Restarts:      os.Restarts,
		StalePatience: os.StalePatience,
		Anneal:        os.Anneal,
		InitTemp:      os.InitTemp,
		Workers:       workers,
		Eval:          experiments.OptimizeStudyEval(),
	}
	space := optimize.DefaultSpace()
	if os.Space != nil {
		space = *os.Space
	}
	return cfg, space
}

// scenario converts the workload spec into a qos scenario.
func (ws *WorkloadSpec) scenario() (qos.Scenario, error) {
	policy := ws.Policy
	if policy == "" {
		policy = qos.PolicyPriorityRetry
	}
	campaign := ws.Campaign
	if campaign == "" {
		campaign = qos.CampaignCombined
	}
	return experiments.WorkloadScenario(policy, campaign, ws.Load, ws.DurationSec, ws.Seed)
}

// devices maps API device names onto the gpusim catalog.
var devices = map[string]gpusim.Device{
	"jetson-xavier": gpusim.JetsonXavier,
	"rtx3090":       gpusim.RTX3090,
	"a100":          gpusim.A100,
	"h100":          gpusim.H100,
	"cloud-ai100":   gpusim.CloudAI100,
}

// Validate checks the spec names exactly one scenario kind and that the
// named scenario is well-formed enough to hash and dispatch. Deep
// parameter validation stays with the simulators, whose errors surface as
// a 422 from the eval handler.
func (s *EvalSpec) Validate() error {
	n := 0
	if s.Experiment != "" {
		n++
	}
	if s.Netsim != nil {
		n++
	}
	if s.Sched != nil {
		n++
	}
	if s.Workload != nil {
		n++
	}
	if s.Optimize != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("spec must set exactly one of experiment, netsim, sched, workload, optimize (got %d)", n)
	}
	if s.Experiment != "" && s.Experiment != experiments.All {
		ids := experiments.IDs()
		found := false
		for _, id := range ids {
			if id == s.Experiment {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown experiment %q (have %v and %q)", s.Experiment, ids, experiments.All)
		}
	}
	if ns := s.Netsim; ns != nil {
		if len(ns.Shells) > 0 {
			if ns.Sats != 0 || ns.GEOSinks != 0 {
				return fmt.Errorf("netsim: shells and sats/geo_sinks are mutually exclusive")
			}
			for i, sh := range ns.Shells {
				if sh.Sats <= 0 {
					return fmt.Errorf("netsim: shells[%d]: sats must be positive, got %d", i, sh.Sats)
				}
			}
			switch ns.InterShell {
			case "", "aligned", "nearest":
			default:
				return fmt.Errorf("netsim: unknown inter_shell rule %q (have aligned, nearest)", ns.InterShell)
			}
			if ns.CrossLinks < 0 {
				return fmt.Errorf("netsim: cross_links must be non-negative, got %d", ns.CrossLinks)
			}
		} else if ns.Sats <= 0 {
			return fmt.Errorf("netsim: sats must be positive, got %d", ns.Sats)
		}
		if ns.PerSatMbps <= 0 {
			return fmt.Errorf("netsim: per_sat_mbps must be positive, got %g", ns.PerSatMbps)
		}
	}
	if ss := s.Sched; ss != nil {
		if ss.Satellites <= 0 {
			return fmt.Errorf("sched: satellites must be positive, got %d", ss.Satellites)
		}
		if ss.App != "" {
			if _, err := appByID(ss.App); err != nil {
				return err
			}
		}
		if ss.Device != "" {
			if _, ok := devices[ss.Device]; !ok {
				names := make([]string, 0, len(devices))
				for n := range devices {
					names = append(names, n)
				}
				return fmt.Errorf("sched: unknown device %q (have %v)", ss.Device, names)
			}
		}
	}
	if ws := s.Workload; ws != nil {
		if ws.Load <= 0 {
			return fmt.Errorf("workload: load must be positive, got %g", ws.Load)
		}
		if ws.Policy != "" && !nameIn(ws.Policy, qos.PolicyNames()) {
			return fmt.Errorf("workload: unknown policy %q (have %v)", ws.Policy, qos.PolicyNames())
		}
		if ws.Campaign != "" && !nameIn(ws.Campaign, qos.CampaignNames()) {
			return fmt.Errorf("workload: unknown campaign %q (have %v)", ws.Campaign, qos.CampaignNames())
		}
	}
	if op := s.Optimize; op != nil {
		if op.Budget < 0 || op.Budget > maxOptimizeBudget {
			return fmt.Errorf("optimize: budget %d outside [0, %d]", op.Budget, maxOptimizeBudget)
		}
		if op.Restarts < 0 || op.Restarts > maxOptimizeBudget {
			return fmt.Errorf("optimize: restarts %d outside [0, %d]", op.Restarts, maxOptimizeBudget)
		}
		if op.StalePatience < 0 || op.InitTemp < 0 {
			return fmt.Errorf("optimize: stale_patience and init_temp must be non-negative")
		}
		if op.Space != nil {
			if err := op.Space.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// nameIn reports whether name appears in the preset list.
func nameIn(name string, names []string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// appByID resolves an apps.ID string against the Table 5 catalog.
func appByID(id string) (apps.ID, error) {
	for _, a := range apps.All() {
		if string(a.ID) == id {
			return a.ID, nil
		}
	}
	return "", fmt.Errorf("sched: unknown app %q", id)
}

// Key returns the spec's content address: "sha256:<hex>" over the
// canonical JSON encoding. Canonicalization is a typed round-trip — the
// request body is decoded into the spec struct (rejecting unknown fields)
// and re-marshaled with the struct's fixed field order and omitempty
// semantics — so JSON field-order and map-iteration-order permutations of
// the same scenario, as well as absent-vs-zero optional fields, all hash
// to the same key.
func (s *EvalSpec) Key() (string, error) {
	canon, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// scenario converts the netsim spec into a simulator scenario.
func (ns *NetsimSpec) scenario() netsim.Scenario {
	k := ns.K
	if k == 0 {
		k = 2
	}
	split := ns.Split
	if split == 0 {
		split = 1
	}
	topo := netsim.TopologySpec{
		Kind:    netsim.ClusterTopology,
		Sats:    ns.Sats,
		Cluster: isl.Topology{K: k, Split: split},
		Tech:    isl.Optical10G,
	}
	if ns.GEOSinks > 0 {
		topo = netsim.TopologySpec{
			Kind:     netsim.GEOStarTopology,
			Sats:     ns.Sats,
			Tech:     isl.Optical10G,
			GEOSinks: ns.GEOSinks,
		}
	}
	if len(ns.Shells) > 0 {
		topo = netsim.TopologySpec{Kind: netsim.ClusterTopology, Tech: isl.Optical10G}
		kind := netsim.InterShellAligned
		if ns.InterShell == "nearest" {
			kind = netsim.InterShellNearest
		}
		for i, sh := range ns.Shells {
			shK, shSplit := sh.K, sh.Split
			if shK == 0 {
				shK = 2
			}
			if shSplit == 0 {
				shSplit = 1
			}
			alt := sh.AltKm
			if alt == 0 {
				alt = 550 + 250*float64(i)
			}
			topo.Shells = append(topo.Shells, netsim.ShellSpec{
				Sats:    sh.Sats,
				Cluster: isl.Topology{K: shK, Split: shSplit},
				AltKm:   alt,
			})
			if i > 0 {
				topo.InterShell = append(topo.InterShell, netsim.InterShellRule{
					Kind: kind, CrossLinks: ns.CrossLinks,
				})
			}
		}
	}
	name := ns.Name
	if name == "" {
		name = "api-scenario"
	}
	return netsim.Scenario{
		Name:        name,
		Topology:    topo,
		PerSat:      units.DataRate(ns.PerSatMbps) * units.Mbps,
		SegmentBits: ns.SegmentBits,
		StepSec:     ns.StepSec,
		EpochSec:    ns.EpochSec,
		DurationSec: ns.DurationSec,
		WarmupSec:   ns.WarmupSec,
		Seed:        ns.Seed,
		Faults: netsim.FaultConfig{
			LinkOutage:    ns.LinkOutage,
			LinkMTTRSec:   ns.LinkMTTRSec,
			SatMTBFSec:    ns.SatMTBFSec,
			SatMTTRSec:    ns.SatMTTRSec,
			EclipseOutage: ns.EclipseOutage,
		},
	}
}

// config converts the sched spec into a simulator config plus processor.
func (ss *SchedSpec) config() (sched.Config, sched.Processor, error) {
	appID := apps.FloodDetection
	if ss.App != "" {
		id, err := appByID(ss.App)
		if err != nil {
			return sched.Config{}, nil, err
		}
		appID = id
	}
	dev := gpusim.RTX3090
	if ss.Device != "" {
		dev = devices[ss.Device]
	}
	proc, err := sched.NewDeviceProcessor(appID, dev, ss.Replicas)
	if err != nil {
		return sched.Config{}, nil, err
	}
	cfg := sched.Config{
		Satellites:     ss.Satellites,
		FramePeriodSec: ss.FramePeriodSec,
		PixelsPerFrame: ss.PixelsPerFrame,
		QueueLimit:     ss.QueueLimit,
		TargetBatch:    ss.TargetBatch,
		MaxBatch:       ss.MaxBatch,
		MaxWaitSec:     ss.MaxWaitSec,
		DurationSec:    ss.DurationSec,
		Seed:           ss.Seed,
	}
	if cfg.FramePeriodSec == 0 {
		cfg.FramePeriodSec = 1.5
	}
	if cfg.PixelsPerFrame == 0 {
		cfg.PixelsPerFrame = 1e6
	}
	if cfg.TargetBatch == 0 {
		cfg.TargetBatch = proc.OptimalTargetBatch()
	}
	// Without a wait bound a small constellation may never fill a large
	// optimal batch; bound it like the ext-sched sweeps do.
	if cfg.MaxWaitSec == 0 {
		cfg.MaxWaitSec = 120
	}
	if cfg.QueueLimit == 0 {
		cfg.QueueLimit = 1000
	}
	if cfg.DurationSec == 0 {
		cfg.DurationSec = 600
	}
	return cfg, proc, nil
}
