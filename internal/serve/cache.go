package serve

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed scenario→result cache: canonical
// spec key → the exact serialized response body served for it. Storing
// the rendered bytes (not the structured result) is what makes a cache
// hit byte-identical to the original response, which the CI smoke step
// diffs. The cache is LRU-bounded by entry count and singleflight-guarded:
// concurrent requests for the same key run the evaluation once and share
// its bytes.
type resultCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	max     int

	flights map[string]*flight
}

// cacheEntry is one stored result.
type cacheEntry struct {
	key  string
	body []byte
}

// flight is one in-progress evaluation other callers of the same key wait
// on.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// newResultCache builds a cache holding up to max entries (max ≤ 0
// disables storage but keeps singleflight semantics).
func newResultCache(max int) *resultCache {
	return &resultCache{
		entries: make(map[string]*list.Element),
		order:   list.New(),
		max:     max,
		flights: make(map[string]*flight),
	}
}

// get returns the cached body for key, marking it most recently used.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least recently used entry past
// capacity.
func (c *resultCache) put(key string, body []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of stored entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// do returns the body for key, computing it with eval on a miss. The
// first caller of a key runs eval; concurrent callers for the same key
// block until it finishes and share the outcome (errors are shared too,
// but not stored — a later request retries). hit reports whether the
// bytes came from the cache or another caller's flight rather than this
// caller's own evaluation.
func (c *resultCache) do(key string, eval func() ([]byte, error)) (body []byte, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		body = el.Value.(*cacheEntry).body
		c.mu.Unlock()
		return body, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.body, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	f.body, f.err = eval()
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	if f.err == nil {
		c.put(key, f.body)
	}
	close(f.done)
	return f.body, false, f.err
}
