package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"spacedc/internal/obs"
)

// streamEvent is one record on the daemon's live stream: an obs event
// tagged with the run (cache key) that produced it.
type streamEvent struct {
	Run   string  `json:"run"`
	T     float64 `json:"t"`
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`
}

// streamHub broadcasts per-run obs events to every connected /v1/stream
// client. Runs launched with ?stream=1 attach their scenario registry's
// Subscribe channel to the hub; SSE clients subscribe to the merged
// stream, optionally filtered by run key. Delivery is non-blocking with
// per-client buffers: a stalled client drops events rather than slowing a
// run or the other clients.
type streamHub struct {
	mu      sync.Mutex
	nextID  int
	clients map[int]*streamClient
	dropped atomic.Int64
}

// streamClient is one connected SSE consumer.
type streamClient struct {
	ch  chan streamEvent
	run string // non-empty filters to one run key
}

// newStreamHub builds an empty hub.
func newStreamHub() *streamHub {
	return &streamHub{clients: make(map[int]*streamClient)}
}

// subscribe registers a client; the returned cancel must be called when
// the client disconnects.
func (h *streamHub) subscribe(run string, buf int) (<-chan streamEvent, func()) {
	if buf <= 0 {
		buf = 256
	}
	c := &streamClient{ch: make(chan streamEvent, buf), run: run}
	h.mu.Lock()
	id := h.nextID
	h.nextID++
	h.clients[id] = c
	h.mu.Unlock()
	return c.ch, func() {
		h.mu.Lock()
		delete(h.clients, id)
		h.mu.Unlock()
	}
}

// publish fans one event out to every matching client, dropping on full
// buffers.
func (h *streamHub) publish(e streamEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, c := range h.clients {
		if c.run != "" && c.run != e.Run {
			continue
		}
		select {
		case c.ch <- e:
		default:
			h.dropped.Add(1)
		}
	}
}

// clientCount reports connected SSE clients.
func (h *streamHub) clientCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.clients)
}

// pump forwards a run registry's event stream into the hub until the
// channel goes quiet and stop is closed. It is started before the run and
// reaped after it: the run signals completion by closing stop, after
// which pump drains whatever is still buffered and exits.
func (h *streamHub) pump(run string, ch <-chan obs.Event, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case e := <-ch:
			h.publish(streamEvent{Run: run, T: e.TimeSec, Name: e.Name, Kind: e.Kind, Value: e.Value})
		case <-stop:
			for {
				select {
				case e := <-ch:
					h.publish(streamEvent{Run: run, T: e.TimeSec, Name: e.Name, Kind: e.Kind, Value: e.Value})
				default:
					return
				}
			}
		}
	}
}

// handleStream is GET /v1/stream: a Server-Sent Events feed of live run
// samples ("event: sample|span|transition", one JSON object per data
// line). ?run=<key> filters to a single run's events. The stream stays
// open until the client disconnects.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported by this connection", http.StatusNotImplemented)
		return
	}
	ch, cancel := s.hub.subscribe(r.URL.Query().Get("run"), 1024)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An initial comment line commits the response headers so clients see
	// the stream is live before the first event.
	fmt.Fprint(w, ": stream open\n\n")
	flusher.Flush()

	s.reg.Counter("serve.stream.clients_total").Inc()
	for {
		select {
		case e := <-ch:
			kind := e.Kind
			if kind == "" {
				kind = "event"
			}
			fmt.Fprintf(w, "event: %s\ndata: {\"run\":%s,\"t\":%s,\"name\":%s,\"kind\":%s,\"value\":%s}\n\n",
				kind, strconv.Quote(e.Run), jsonFloat(e.T), strconv.Quote(e.Name), strconv.Quote(e.Kind), jsonFloat(e.Value))
			flusher.Flush()
		case <-s.draining:
			return
		case <-r.Context().Done():
			return
		}
	}
}

// jsonFloat renders f as a JSON number (non-finite values become 0).
func jsonFloat(f float64) string {
	if f != f || f > 1.7e308 || f < -1.7e308 {
		return "0"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
