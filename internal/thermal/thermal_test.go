package thermal

import (
	"math"
	"testing"

	"spacedc/internal/units"
)

func TestRadiatorValidate(t *testing.T) {
	if err := DefaultRadiator().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Radiator{
		{Emissivity: 0, PanelTempK: 290, SinkTempK: 3},
		{Emissivity: 1.5, PanelTempK: 290, SinkTempK: 3},
		{Emissivity: 0.8, PanelTempK: 0, SinkTempK: 3},
		{Emissivity: 0.8, PanelTempK: 290, SinkTempK: 300}, // sink hotter
		{Emissivity: 0.8, PanelTempK: 290, SinkTempK: -1},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Errorf("bad radiator %d accepted: %+v", i, r)
		}
	}
}

func TestRadiatorAreaFor4kW(t *testing.T) {
	// 290 K panel, ε=0.85, deep-space sink: ≈341 W/m² → ≈11.7 m² for the
	// 4 kW SµDC compute load.
	area, err := DefaultRadiator().AreaForLoad(4 * units.Kilowatt)
	if err != nil {
		t.Fatal(err)
	}
	if area < 10 || area > 14 {
		t.Errorf("4 kW radiator = %v m², want ≈11.7", area)
	}
	// The 256 kW station-class SµDC needs ISS-scale radiators.
	big, err := DefaultRadiator().AreaForLoad(256 * units.Kilowatt)
	if err != nil {
		t.Fatal(err)
	}
	if big < 600 || big > 900 {
		t.Errorf("256 kW radiator = %v m², want ≈750", big)
	}
}

func TestEarthFacingRadiatorIsWorse(t *testing.T) {
	deep := DefaultRadiator()
	earth := deep
	earth.SinkTempK = EarthFacingSinkK
	aDeep, err := deep.AreaForLoad(4 * units.Kilowatt)
	if err != nil {
		t.Fatal(err)
	}
	aEarth, err := earth.AreaForLoad(4 * units.Kilowatt)
	if err != nil {
		t.Fatal(err)
	}
	if aEarth <= aDeep {
		t.Errorf("Earth-facing radiator (%v m²) should need more area than deep-space (%v m²)", aEarth, aDeep)
	}
}

func TestFluxMonotonicInTemperature(t *testing.T) {
	r := DefaultRadiator()
	prev := 0.0
	for temp := 250.0; temp <= 400; temp += 25 {
		r.PanelTempK = temp
		if f := r.FluxWM2(); f <= prev {
			t.Fatalf("flux not increasing at %v K", temp)
		} else {
			prev = f
		}
	}
}

func TestHeatPipes(t *testing.T) {
	hp := DefaultHeatPipe()
	// 4 kW over 3 m = 12 000 W·m → 24 pipes + 1 spare.
	n, err := hp.PipesNeeded(4*units.Kilowatt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Errorf("pipes = %d, want 25", n)
	}
	if _, err := hp.PipesNeeded(units.Kilowatt, 0); err == nil {
		t.Error("zero run accepted")
	}
	if _, err := (HeatPipe{}).PipesNeeded(units.Kilowatt, 1); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestTEGRecovery(t *testing.T) {
	teg := ThermoelectricRecovery{HotK: 350, ColdK: 290, QualityFactor: 0.15}
	// Carnot = 1 - 290/350 ≈ 0.171 → ×0.15 ≈ 2.6% of the waste stream.
	eff := teg.Efficiency()
	if math.Abs(eff-0.0257) > 0.002 {
		t.Errorf("TEG efficiency = %v, want ≈0.026", eff)
	}
	rec := teg.Recovered(4 * units.Kilowatt)
	if rec < 90*units.Watt || rec > 115*units.Watt {
		t.Errorf("recovered = %v, want ≈103 W", rec)
	}
	// Degenerate gradients recover nothing.
	if (ThermoelectricRecovery{HotK: 290, ColdK: 290, QualityFactor: 0.15}).Efficiency() != 0 {
		t.Error("zero gradient should recover nothing")
	}
	if (ThermoelectricRecovery{HotK: 280, ColdK: 290, QualityFactor: 0.15}).Efficiency() != 0 {
		t.Error("inverted gradient should recover nothing")
	}
	// Quality clamps to [0, 1].
	over := ThermoelectricRecovery{HotK: 350, ColdK: 290, QualityFactor: 5}
	if over.Efficiency() > 1-290.0/350 {
		t.Error("efficiency should not exceed Carnot")
	}
}

func TestEquilibriumTemperature(t *testing.T) {
	// A bare aluminum plate (α≈0.3, ε≈0.1) in sunlight runs hot; a white
	// painted one (α≈0.25, ε≈0.85) runs much cooler. Spacecraft thermal
	// design 101.
	eq := func(alpha, eps, internal float64, sunlit bool) float64 {
		t.Helper()
		v, err := EquilibriumTempK(alpha, eps, internal, sunlit)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	hotPlate := eq(0.3, 0.1, 0, true)
	whitePlate := eq(0.25, 0.85, 0, true)
	if hotPlate <= whitePlate {
		t.Errorf("bare plate %v K should run hotter than white %v K", hotPlate, whitePlate)
	}
	if whitePlate < 150 || whitePlate > 300 {
		t.Errorf("white plate equilibrium %v K implausible", whitePlate)
	}
	// Internal dissipation raises the eclipse temperature.
	dark := eq(0.25, 0.85, 0, false)
	powered := eq(0.25, 0.85, 300, false)
	if powered <= dark {
		t.Error("dissipation should warm the panel")
	}
}

func TestEquilibriumTemperatureDegenerate(t *testing.T) {
	bad := []struct {
		name        string
		alpha, eps  float64
		internalWM2 float64
	}{
		{"zero emissivity", 0.3, 0, 100},
		{"negative emissivity", 0.3, -0.1, 100},
		{"emissivity above 1", 0.3, 1.5, 100},
		{"NaN emissivity", 0.3, math.NaN(), 100},
		{"negative absorptivity", -0.1, 0.85, 100},
		{"absorptivity above 1", 1.2, 0.85, 100},
		{"negative dissipation", 0.3, 0.85, -5},
		{"infinite dissipation", 0.3, 0.85, math.Inf(1)},
	}
	for _, c := range bad {
		if _, err := EquilibriumTempK(c.alpha, c.eps, c.internalWM2, true); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	// An unpowered panel in eclipse legitimately sits at 0 K in this
	// two-sided deep-space model — that is not an error.
	v, err := EquilibriumTempK(0.3, 0.85, 0, false)
	if err != nil || v != 0 {
		t.Errorf("dark unpowered panel: got %v, %v; want 0 K, nil", v, err)
	}
}

func TestHeatPipeValidate(t *testing.T) {
	if err := DefaultHeatPipe().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, cap := range []float64{0, -10, math.NaN(), math.Inf(1)} {
		hp := HeatPipe{CapacityWm: cap}
		if err := hp.Validate(); err == nil {
			t.Errorf("capacity %v: want validation error", cap)
		}
		if _, err := hp.PipesNeeded(units.Kilowatt, 3); err == nil {
			t.Errorf("capacity %v: PipesNeeded should reject the pipe", cap)
		}
	}
}

func TestSizeBudget(t *testing.T) {
	b, err := SizeBudget(4 * units.Kilowatt)
	if err != nil {
		t.Fatal(err)
	}
	if b.RadiatorAreaM2 < 10 || b.HeatPipes < 10 || b.TEGRecovered <= 0 {
		t.Errorf("budget implausible: %+v", b)
	}
	// Recovery never exceeds a few percent of the load.
	if float64(b.TEGRecovered) > 0.05*float64(b.Load) {
		t.Errorf("TEG recovers %v of %v — too good", b.TEGRecovered, b.Load)
	}
}
