// Package thermal models the heat rejection problem §9 flags as a key
// SµDC design consideration: kilowatts of compute dissipation must leave
// the spacecraft by radiation alone. It sizes radiator area via
// Stefan–Boltzmann, counts heat-pipe transport capacity, estimates
// thermoelectric recovery from the waste stream, and computes panel
// equilibrium temperatures under solar load.
package thermal

import (
	"fmt"
	"math"

	"spacedc/internal/units"
)

// Physical constants.
const (
	// StefanBoltzmann is σ in W/(m²·K⁴).
	StefanBoltzmann = 5.670374419e-8
	// SolarFluxWM2 is the solar constant at 1 AU.
	SolarFluxWM2 = 1361.0
	// DeepSpaceSinkK is the effective sink temperature of a radiator
	// viewing deep space.
	DeepSpaceSinkK = 3.0
	// EarthFacingSinkK approximates the effective sink of a LEO radiator
	// viewing Earth (IR + albedo load folded in).
	EarthFacingSinkK = 255.0
)

// Radiator describes one radiating surface.
type Radiator struct {
	Emissivity float64 // ε, typically 0.8–0.92 for white paint / OSRs
	PanelTempK float64 // operating temperature of the radiating surface
	SinkTempK  float64 // effective sink temperature
}

// DefaultRadiator is a deep-space-viewing optical solar reflector panel at
// a electronics-friendly 290 K.
func DefaultRadiator() Radiator {
	return Radiator{Emissivity: 0.85, PanelTempK: 290, SinkTempK: DeepSpaceSinkK}
}

// Validate checks the radiator.
func (r Radiator) Validate() error {
	if r.Emissivity <= 0 || r.Emissivity > 1 {
		return fmt.Errorf("thermal: emissivity %v outside (0, 1]", r.Emissivity)
	}
	if r.PanelTempK <= 0 {
		return fmt.Errorf("thermal: non-positive panel temperature %v", r.PanelTempK)
	}
	if r.SinkTempK < 0 || r.SinkTempK >= r.PanelTempK {
		return fmt.Errorf("thermal: sink %v K must sit below panel %v K", r.SinkTempK, r.PanelTempK)
	}
	return nil
}

// FluxWM2 returns the net radiated flux per unit area.
func (r Radiator) FluxWM2() float64 {
	t4 := math.Pow(r.PanelTempK, 4) - math.Pow(r.SinkTempK, 4)
	return r.Emissivity * StefanBoltzmann * t4
}

// AreaForLoad returns the radiator area (m²) needed to reject the load.
func (r Radiator) AreaForLoad(load units.Power) (float64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	flux := r.FluxWM2()
	if flux <= 0 {
		return 0, fmt.Errorf("thermal: radiator rejects nothing")
	}
	return float64(load) / flux, nil
}

// HeatPipe describes axially grooved / loop heat pipe transport capacity.
type HeatPipe struct {
	// CapacityWm is the heat-transport capability in watt·meters (a pipe
	// carrying 100 W over 2 m needs 200 W·m).
	CapacityWm float64
}

// DefaultHeatPipe is a constant-conductance ammonia pipe at 500 W·m.
func DefaultHeatPipe() HeatPipe { return HeatPipe{CapacityWm: 500} }

// Validate rejects a pipe that cannot transport heat.
func (hp HeatPipe) Validate() error {
	if hp.CapacityWm <= 0 || math.IsNaN(hp.CapacityWm) || math.IsInf(hp.CapacityWm, 0) {
		return fmt.Errorf("thermal: non-positive heat-pipe capacity %v W·m", hp.CapacityWm)
	}
	return nil
}

// PipesNeeded returns how many pipes move the load over runM meters, with
// one spare for single-failure tolerance.
func (hp HeatPipe) PipesNeeded(load units.Power, runM float64) (int, error) {
	if err := hp.Validate(); err != nil {
		return 0, err
	}
	if runM <= 0 {
		return 0, fmt.Errorf("thermal: non-positive transport run %v", runM)
	}
	demand := float64(load) * runM
	n := int(math.Ceil(demand / hp.CapacityWm))
	return n + 1, nil
}

// ThermoelectricRecovery estimates the electric power a thermoelectric
// generator harvests from the waste stream (the §9 nod to TEG reuse, as
// argued for terrestrial datacenters): a fraction of Carnot between the
// hot electronics and the radiator, scaled by device quality.
type ThermoelectricRecovery struct {
	HotK  float64 // electronics/coolant hot side
	ColdK float64 // radiator cold side
	// QualityFactor is the achieved fraction of Carnot efficiency
	// (ZT-limited; real TEGs reach ~15–20% of Carnot).
	QualityFactor float64
}

// Efficiency returns the electrical fraction of heat recovered.
func (t ThermoelectricRecovery) Efficiency() float64 {
	if t.HotK <= 0 || t.ColdK <= 0 || t.HotK <= t.ColdK {
		return 0
	}
	carnot := 1 - t.ColdK/t.HotK
	q := t.QualityFactor
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return carnot * q
}

// Recovered returns the electric power recovered from the waste load.
func (t ThermoelectricRecovery) Recovered(waste units.Power) units.Power {
	return units.Power(float64(waste) * t.Efficiency())
}

// EquilibriumTempK returns the steady-state temperature of a flat panel
// with the given absorptivity α and emissivity ε, absorbing solar flux on
// one face (when sunlit) plus internal dissipation, radiating from both
// faces to deep space: (α·S + P/A) = 2·ε·σ·T⁴. Degenerate surfaces (ε
// outside (0, 1], α outside [0, 1], negative or non-finite dissipation)
// are rejected rather than silently reported as 0 K.
func EquilibriumTempK(absorptivity, emissivity float64, internalWM2 float64, sunlit bool) (float64, error) {
	if emissivity <= 0 || emissivity > 1 || math.IsNaN(emissivity) {
		return 0, fmt.Errorf("thermal: emissivity %v outside (0, 1]", emissivity)
	}
	if absorptivity < 0 || absorptivity > 1 || math.IsNaN(absorptivity) {
		return 0, fmt.Errorf("thermal: absorptivity %v outside [0, 1]", absorptivity)
	}
	if internalWM2 < 0 || math.IsNaN(internalWM2) || math.IsInf(internalWM2, 0) {
		return 0, fmt.Errorf("thermal: invalid internal dissipation %v W/m²", internalWM2)
	}
	absorbed := internalWM2
	if sunlit {
		absorbed += absorptivity * SolarFluxWM2
	}
	return math.Pow(absorbed/(2*emissivity*StefanBoltzmann), 0.25), nil
}

// Budget sizes the whole rejection chain for a SµDC compute load.
type Budget struct {
	Load           units.Power
	RadiatorAreaM2 float64
	HeatPipes      int
	TEGRecovered   units.Power
}

// SizeBudget runs the default chain: deep-space radiator at 290 K, 3 m
// pipe runs, and a 15%-of-Carnot TEG between 350 K electronics and the
// 290 K radiator.
func SizeBudget(load units.Power) (Budget, error) {
	rad := DefaultRadiator()
	area, err := rad.AreaForLoad(load)
	if err != nil {
		return Budget{}, err
	}
	pipes, err := DefaultHeatPipe().PipesNeeded(load, 3)
	if err != nil {
		return Budget{}, err
	}
	teg := ThermoelectricRecovery{HotK: 350, ColdK: 290, QualityFactor: 0.15}
	return Budget{
		Load:           load,
		RadiatorAreaM2: area,
		HeatPipes:      pipes,
		TEGRecovered:   teg.Recovered(load),
	}, nil
}
