// Package resilience is the radiation- and thermal-aware resilience layer
// for the SµDC compute pipeline. It closes the loop the paper's §9 leaves
// qualitative: an orbit-driven environment trace (SAA crossings, eclipse
// phases) modulates an SEU hazard rate that the sched discrete-event
// simulator injects into batch execution, and configurable mitigation
// policies — retry with exponential backoff, checkpoint/restart at the
// Young/Daly interval, dual/TMR replicated execution with voting, and the
// SAA compute pause — recover from the resulting corruption and device
// resets. A thermal governor derates the device when sustained dissipation
// exceeds the radiator's capacity and sheds low-priority load upstream.
// The Scenario runner evaluates policies side by side, reporting
// availability, goodput, latency, and energy overhead.
package resilience

import (
	"fmt"

	"spacedc/internal/obs"
	"spacedc/internal/sched"
)

// Policy pairs a recovery strategy with the operational knobs that ride
// along with it.
type Policy struct {
	Name string
	// Recovery handles upset batches; nil means no mitigation.
	Recovery sched.RecoveryPolicy
	// PauseInSAA suspends batch launches inside the anomaly (the §9
	// COTS-with-SAA-pause strategy; radiation.COTSWithSAAPause).
	PauseInSAA bool
}

// StandardPolicies returns the §9 mitigation ladder in increasing
// protection (and cost) order, plus the SAA pause.
func StandardPolicies() []Policy {
	return []Policy{
		{Name: "none"},
		{Name: "retry", Recovery: Retry{}},
		{Name: "checkpoint", Recovery: Checkpoint{CheckpointSec: 1, RestartSec: 1}},
		{Name: "tmr", Recovery: Replicated{N: 3}},
		{Name: "saa-pause", Recovery: Retry{}, PauseInSAA: true},
	}
}

// Scenario couples a base pipeline configuration to an environment and a
// hazard model; Evaluate runs it under one mitigation policy.
type Scenario struct {
	Base   sched.Config
	Proc   sched.Processor
	Env    *EnvTrace
	Hazard HazardModel
	// ResetFraction is the share of upsets that hard-reset the device
	// (zero means the 0.1 default); ResetMTTRSec the reboot time (zero
	// means 30 s).
	ResetFraction float64
	ResetMTTRSec  float64
	// Obs, when non-nil, receives the simulator's metrics plus per-policy
	// evaluation spans ("resilience.eval.<policy>"). Observability is
	// write-only: results are identical with or without it.
	Obs *obs.Registry
}

// resetFraction / resetMTTR apply the scenario defaults.
func (s Scenario) resetFraction() float64 {
	if s.ResetFraction == 0 {
		return 0.1
	}
	return s.ResetFraction
}

func (s Scenario) resetMTTR() float64 {
	if s.ResetMTTRSec == 0 {
		return 30
	}
	return s.ResetMTTRSec
}

// Report summarizes one policy evaluation.
type Report struct {
	Policy string
	Stats  sched.Stats
	// Availability is the fraction of the mission the device was able to
	// compute: 1 minus reset downtime and (for pausing policies) the SAA
	// pause share.
	Availability float64
	// GoodputFPS is uncorrupted processed frames per simulated second.
	GoodputFPS float64
	// EnergyOverhead is total energy relative to the fault-free baseline
	// (1 = parity).
	EnergyOverhead float64
}

// Baseline runs the scenario fault-free.
func (s Scenario) Baseline() (sched.Stats, error) {
	cfg := s.Base
	cfg.Faults = nil
	return sched.Simulate(cfg, s.Proc)
}

// Evaluate runs the scenario under one policy. baseline is the fault-free
// stats from Baseline (recomputed when the zero value is passed).
func (s Scenario) Evaluate(pol Policy, baseline sched.Stats) (Report, error) {
	if s.Env == nil {
		return Report{}, fmt.Errorf("resilience: scenario has no environment trace")
	}
	if baseline == (sched.Stats{}) {
		var err error
		baseline, err = s.Baseline()
		if err != nil {
			return Report{}, err
		}
	}
	cfg := s.Base
	faults := &sched.FaultConfig{
		Hazard:        s.Hazard.RateFunc(s.Env),
		ResetFraction: s.resetFraction(),
		ResetMTTRSec:  s.resetMTTR(),
		Recovery:      pol.Recovery,
	}
	if pol.PauseInSAA {
		faults.PauseActive = s.Env.InSAAAt
	}
	cfg.Faults = faults
	cfg.Obs = s.Obs
	span := s.Obs.StartSpan("resilience.eval." + pol.Name)
	st, err := sched.Simulate(cfg, s.Proc)
	span.End()
	if err != nil {
		return Report{}, err
	}
	pauseSec := 0.0
	if pol.PauseInSAA {
		pauseSec = s.Env.SAAFraction() * cfg.DurationSec
	}
	rep := Report{
		Policy:       pol.Name,
		Stats:        st,
		Availability: 1 - (st.DowntimeSec+pauseSec)/cfg.DurationSec,
		GoodputFPS:   float64(st.Processed) / cfg.DurationSec,
	}
	if rep.Availability < 0 {
		rep.Availability = 0
	}
	if baseline.EnergyJ > 0 {
		rep.EnergyOverhead = st.EnergyJ / baseline.EnergyJ
	}
	return rep, nil
}

// EvaluateAll runs every policy against one shared fault-free baseline.
func (s Scenario) EvaluateAll(policies []Policy) ([]Report, error) {
	baseline, err := s.Baseline()
	if err != nil {
		return nil, err
	}
	reports := make([]Report, 0, len(policies))
	for _, pol := range policies {
		rep, err := s.Evaluate(pol, baseline)
		if err != nil {
			return nil, fmt.Errorf("resilience: policy %s: %w", pol.Name, err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
