package resilience

import (
	"math"
	"testing"

	"spacedc/internal/discard"
	"spacedc/internal/thermal"
	"spacedc/internal/units"
)

func testGovernor(t *testing.T) *Governor {
	t.Helper()
	// Radiator sized for exactly half the 1 kW peak, 10 kJ of buffer.
	g, err := GovernorForBudget(units.Kilowatt, 500*units.Watt, 1e4, discard.Ocean)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGovernorValidation(t *testing.T) {
	rad := thermal.DefaultRadiator()
	cases := map[string]func() (*Governor, error){
		"bad radiator": func() (*Governor, error) {
			return NewGovernor(units.Kilowatt, thermal.Radiator{}, 1, 1e4, discard.None)
		},
		"zero peak": func() (*Governor, error) {
			return NewGovernor(0, rad, 1, 1e4, discard.None)
		},
		"zero area": func() (*Governor, error) {
			return NewGovernor(units.Kilowatt, rad, 0, 1e4, discard.None)
		},
		"NaN area": func() (*Governor, error) {
			return NewGovernor(units.Kilowatt, rad, math.NaN(), 1e4, discard.None)
		},
		"zero headroom": func() (*Governor, error) {
			return NewGovernor(units.Kilowatt, rad, 1, 0, discard.None)
		},
		"bad shed rate": func() (*Governor, error) {
			return NewGovernor(units.Kilowatt, rad, 1, 1e4, discard.Criterion{Name: "x", Rate: 1.5})
		},
		"zero budget": func() (*Governor, error) {
			return GovernorForBudget(units.Kilowatt, 0, 1e4, discard.None)
		},
	}
	for name, build := range cases {
		if _, err := build(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestGovernorForBudgetCapacity(t *testing.T) {
	g := testGovernor(t)
	// SizeBudget sizes the radiator at exactly load/flux, so capacity
	// round-trips to the sized-for power.
	if math.Abs(g.CapacityW-500) > 1e-6 {
		t.Errorf("capacity %v W, want 500", g.CapacityW)
	}
}

func TestGovernorDerateAndRecovery(t *testing.T) {
	g := testGovernor(t)
	if f := g.Factor(0); f != 1 {
		t.Fatalf("cold governor factor %v, want 1", f)
	}
	if k := g.KeepFactor(0); k != 1 {
		t.Fatalf("cold governor keep %v, want 1", k)
	}
	// Dump 3× the headroom: bucket saturates, factor floors at the
	// sustainable fraction, shedding reaches the criterion's full rate.
	g.Dissipated(0, 10, 3e4)
	if f := g.Factor(10); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("saturated factor %v, want capacity/peak = 0.5", f)
	}
	if k := g.KeepFactor(10); math.Abs(k-(1-discard.Ocean.Rate)) > 1e-9 {
		t.Errorf("saturated keep %v, want %v", k, 1-discard.Ocean.Rate)
	}
	// Half-full bucket: linear interpolation.
	g.Reset()
	g.Dissipated(0, 1, 5e3)
	if f := g.Factor(1); math.Abs(f-0.75) > 1e-9 {
		t.Errorf("half-full factor %v, want 0.75", f)
	}
	// The 500 W radiator clears the remaining 5 kJ in 10 s (modulo the
	// ulp-level capacity round-trip through area = load/flux).
	if f := g.Factor(11); f < 1-1e-12 {
		t.Errorf("factor %v after drain, want full recovery", f)
	}
	if g.StoredJ() > 1e-9 {
		t.Errorf("stored %v J after drain, want ~0", g.StoredJ())
	}
}

func TestGovernorDayNightCapacity(t *testing.T) {
	day := &EnvTrace{StepSec: 1, InSAA: make([]bool, 100), Sunlit: make([]bool, 100)}
	night := &EnvTrace{StepSec: 1, InSAA: make([]bool, 100), Sunlit: make([]bool, 100)}
	for i := range day.Sunlit {
		day.Sunlit[i] = true
	}
	charge := func(env *EnvTrace) float64 {
		g := testGovernor(t)
		g.Env = env
		g.SunlitFactor = 0.8
		g.Dissipated(0, 1, 6e3)
		g.Factor(11) // advance 10 s of draining
		return g.StoredJ()
	}
	sunlit, eclipse := charge(day), charge(night)
	if eclipse >= sunlit {
		t.Errorf("eclipse store %v J should drain faster than sunlit %v J", eclipse, sunlit)
	}
	// Sunlit drains at 0.8×500 W, eclipse at the full 500 W.
	if math.Abs(sunlit-eclipse-0.2*500*10) > 1e-6 {
		t.Errorf("day/night drain gap %v J, want 1000", sunlit-eclipse)
	}
}
