package resilience

import (
	"math"
	"testing"

	"spacedc/internal/discard"
	"spacedc/internal/obs"
	"spacedc/internal/thermal"
	"spacedc/internal/units"
)

func testGovernor(t *testing.T) *Governor {
	t.Helper()
	// Radiator sized for exactly half the 1 kW peak, 10 kJ of buffer.
	g, err := GovernorForBudget(units.Kilowatt, 500*units.Watt, 1e4, discard.Ocean)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGovernorValidation(t *testing.T) {
	rad := thermal.DefaultRadiator()
	cases := map[string]func() (*Governor, error){
		"bad radiator": func() (*Governor, error) {
			return NewGovernor(units.Kilowatt, thermal.Radiator{}, 1, 1e4, discard.None)
		},
		"zero peak": func() (*Governor, error) {
			return NewGovernor(0, rad, 1, 1e4, discard.None)
		},
		"zero area": func() (*Governor, error) {
			return NewGovernor(units.Kilowatt, rad, 0, 1e4, discard.None)
		},
		"NaN area": func() (*Governor, error) {
			return NewGovernor(units.Kilowatt, rad, math.NaN(), 1e4, discard.None)
		},
		"zero headroom": func() (*Governor, error) {
			return NewGovernor(units.Kilowatt, rad, 1, 0, discard.None)
		},
		"bad shed rate": func() (*Governor, error) {
			return NewGovernor(units.Kilowatt, rad, 1, 1e4, discard.Criterion{Name: "x", Rate: 1.5})
		},
		"zero budget": func() (*Governor, error) {
			return GovernorForBudget(units.Kilowatt, 0, 1e4, discard.None)
		},
	}
	for name, build := range cases {
		if _, err := build(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestGovernorForBudgetCapacity(t *testing.T) {
	g := testGovernor(t)
	// SizeBudget sizes the radiator at exactly load/flux, so capacity
	// round-trips to the sized-for power.
	if math.Abs(g.CapacityW-500) > 1e-6 {
		t.Errorf("capacity %v W, want 500", g.CapacityW)
	}
}

func TestGovernorDerateAndRecovery(t *testing.T) {
	g := testGovernor(t)
	if f := g.Factor(0); f != 1 {
		t.Fatalf("cold governor factor %v, want 1", f)
	}
	if k := g.KeepFactor(0); k != 1 {
		t.Fatalf("cold governor keep %v, want 1", k)
	}
	// Dump 3× the headroom: bucket saturates, factor floors at the
	// sustainable fraction, shedding reaches the criterion's full rate.
	g.Dissipated(0, 10, 3e4)
	if f := g.Factor(10); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("saturated factor %v, want capacity/peak = 0.5", f)
	}
	if k := g.KeepFactor(10); math.Abs(k-(1-discard.Ocean.Rate)) > 1e-9 {
		t.Errorf("saturated keep %v, want %v", k, 1-discard.Ocean.Rate)
	}
	// Half-full bucket: linear interpolation.
	g.Reset()
	g.Dissipated(0, 1, 5e3)
	if f := g.Factor(1); math.Abs(f-0.75) > 1e-9 {
		t.Errorf("half-full factor %v, want 0.75", f)
	}
	// The 500 W radiator clears the remaining 5 kJ in 10 s (modulo the
	// ulp-level capacity round-trip through area = load/flux).
	if f := g.Factor(11); f < 1-1e-12 {
		t.Errorf("factor %v after drain, want full recovery", f)
	}
	if g.StoredJ() > 1e-9 {
		t.Errorf("stored %v J after drain, want ~0", g.StoredJ())
	}
}

func TestGovernorDayNightCapacity(t *testing.T) {
	day := &EnvTrace{StepSec: 1, InSAA: make([]bool, 100), Sunlit: make([]bool, 100)}
	night := &EnvTrace{StepSec: 1, InSAA: make([]bool, 100), Sunlit: make([]bool, 100)}
	for i := range day.Sunlit {
		day.Sunlit[i] = true
	}
	charge := func(env *EnvTrace) float64 {
		g := testGovernor(t)
		g.Env = env
		g.SunlitFactor = 0.8
		g.Dissipated(0, 1, 6e3)
		g.Factor(11) // advance 10 s of draining
		return g.StoredJ()
	}
	sunlit, eclipse := charge(day), charge(night)
	if eclipse >= sunlit {
		t.Errorf("eclipse store %v J should drain faster than sunlit %v J", eclipse, sunlit)
	}
	// Sunlit drains at 0.8×500 W, eclipse at the full 500 W.
	if math.Abs(sunlit-eclipse-0.2*500*10) > 1e-6 {
		t.Errorf("day/night drain gap %v J, want 1000", sunlit-eclipse)
	}
}

// TestGovernorTransitionEventOrder drives a scripted heat/cool cycle
// through an instrumented governor and asserts the derate/shed transition
// events stream in a fixed, fully deterministic order — and that repeated
// runs from a fresh governor and registry reproduce the sequence exactly.
// Downstream QoS degradation control keys off these edges, so their order
// and values must not wander between runs.
func TestGovernorTransitionEventOrder(t *testing.T) {
	drive := func() []obs.Event {
		g := testGovernor(t)
		reg := obs.New()
		g.Instrument(reg)
		ch, cancel := reg.Subscribe(64)
		defer cancel()

		// Charge past the headroom, sample mid-regime (no edge), then
		// idle long enough for the 500 W radiator to drain 12 kJ and
		// recover both regimes.
		g.Dissipated(0, 1, 12e3)
		g.Factor(1)
		g.KeepFactor(1)
		g.Factor(5)
		g.KeepFactor(5)
		g.Factor(60)
		g.KeepFactor(60)

		var events []obs.Event
		for {
			select {
			case e := <-ch:
				events = append(events, e)
			default:
				return events
			}
		}
	}

	first := drive()
	wantNames := []string{
		"resilience.governor.derate", // enter derate at t=1
		"resilience.governor.shed",   // enter shed at t=1
		"resilience.governor.derate", // recover by t=60
		"resilience.governor.shed",   // recover by t=60
	}
	if len(first) != len(wantNames) {
		t.Fatalf("got %d transition events, want %d: %+v", len(first), len(wantNames), first)
	}
	for i, e := range first {
		if e.Name != wantNames[i] {
			t.Errorf("event %d: name %q, want %q", i, e.Name, wantNames[i])
		}
		if e.Kind != "transition" {
			t.Errorf("event %d: kind %q, want transition", i, e.Kind)
		}
	}
	// Onset events carry the degraded factor, recovery events carry 1.
	if first[0].Value >= 1 || first[1].Value >= 1 {
		t.Errorf("onset factors %v, %v should be < 1", first[0].Value, first[1].Value)
	}
	if first[2].Value != 1 || first[3].Value != 1 {
		t.Errorf("recovery factors %v, %v should be exactly 1", first[2].Value, first[3].Value)
	}

	for run := 1; run <= 3; run++ {
		again := drive()
		if len(again) != len(first) {
			t.Fatalf("run %d: %d events, want %d", run, len(again), len(first))
		}
		for i := range first {
			if again[i] != first[i] {
				t.Errorf("run %d event %d = %+v, want %+v (non-deterministic stream)", run, i, again[i], first[i])
			}
		}
	}
}
