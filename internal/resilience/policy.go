package resilience

import (
	"fmt"
	"math"

	"spacedc/internal/sched"
)

// The recovery policies are hazard-adaptive: each one executes the batch
// completely unprotected when the hazard at launch is zero, so that with
// faults disabled every policy reproduces the baseline pipeline bit for
// bit. Protection (and its time/energy overhead) switches on only while
// the environment actually threatens upsets.

// Retry re-executes an upset batch after exponential backoff, up to a
// bounded number of attempts — the cheapest software mitigation: no
// steady-state overhead, but every upset costs a full redo and a batch
// that exhausts its attempts is lost.
type Retry struct {
	MaxAttempts   int     // total executions allowed; 0 = 3
	BackoffSec    float64 // delay before the first retry; 0 = 1
	BackoffFactor float64 // growth per retry; 0 = 2
}

// Name implements sched.RecoveryPolicy.
func (Retry) Name() string { return "retry" }

// Execute implements sched.RecoveryPolicy.
func (r Retry) Execute(e sched.BatchExec) sched.BatchOutcome {
	max := r.MaxAttempts
	if max <= 0 {
		max = 3
	}
	back := r.BackoffSec
	if back <= 0 {
		back = 1
	}
	fac := r.BackoffFactor
	if fac <= 0 {
		fac = 2
	}
	var o sched.BatchOutcome
	now := e.Start
	for attempt := 0; attempt < max; attempt++ {
		if attempt > 0 {
			e.Obs.Counter("resilience.retry.retries").Inc()
			o.Secs += back
			now += back
			back *= fac
		}
		p := e.RunOnce(now)
		o.Accumulate(p)
		now += p.Secs
		if !p.Upset {
			o.Good = true
			if attempt > 0 {
				e.Obs.Counter("resilience.retry.recovered_batches").Inc()
			}
			return o
		}
	}
	e.Obs.Counter("resilience.retry.exhausted_batches").Inc()
	return o
}

// YoungDalyIntervalSec returns the Young/Daly first-order optimal
// checkpoint interval √(2·δ·MTBF) for a checkpoint cost δ and mean time
// between failures. Degenerate inputs (no cost, no failures) yield +Inf:
// never checkpoint.
func YoungDalyIntervalSec(checkpointCostSec, mtbfSec float64) float64 {
	if checkpointCostSec <= 0 || mtbfSec <= 0 ||
		math.IsInf(mtbfSec, 1) || math.IsNaN(mtbfSec) || math.IsNaN(checkpointCostSec) {
		return math.Inf(1)
	}
	return math.Sqrt(2 * checkpointCostSec * mtbfSec)
}

// Checkpoint implements checkpoint/restart: the batch is cut into
// segments of the Young/Daly optimal interval (or a fixed one), a
// checkpoint is written after each non-final segment, and an upset redoes
// only the segment in flight plus a restart. Steady overhead buys bounded
// redo work — more expensive than retry in energy, better in goodput.
type Checkpoint struct {
	CheckpointSec float64 // cost of writing one checkpoint; 0 = 0.5
	RestartSec    float64 // reload cost after an upset; 0 = CheckpointSec
	IntervalSec   float64 // fixed interval; 0 = Young/Daly from the hazard at launch
	MaxRedos      int     // per-batch redo cap (runaway guard); 0 = 1000
}

// Name implements sched.RecoveryPolicy.
func (Checkpoint) Name() string { return "checkpoint" }

// Execute implements sched.RecoveryPolicy.
func (c Checkpoint) Execute(e sched.BatchExec) sched.BatchOutcome {
	var o sched.BatchOutcome
	rate := e.HazardAt(e.Start)
	if rate <= 0 {
		p := e.RunOnce(e.Start)
		o.Accumulate(p)
		o.Good = !p.Upset
		return o
	}
	delta := c.CheckpointSec
	if delta <= 0 {
		delta = 0.5
	}
	restart := c.RestartSec
	if restart <= 0 {
		restart = delta
	}
	tau := c.IntervalSec
	if tau <= 0 {
		tau = YoungDalyIntervalSec(delta, 1/rate)
	}
	maxRedos := c.MaxRedos
	if maxRedos <= 0 {
		maxRedos = 1000
	}
	power := 0.0
	if e.BaseSecs > 0 {
		power = e.BaseJoules / e.BaseSecs
	}
	now := e.Start
	remaining := e.BaseSecs
	redos := 0
	for remaining > 1e-12 {
		seg := math.Min(tau, remaining)
		segCost := seg
		if remaining-seg > 1e-12 {
			segCost += delta // checkpoint written after every non-final segment
		}
		p := e.RunPass(now, segCost, segCost*power)
		o.Accumulate(p)
		now += p.Secs
		if p.Upset {
			redos++
			e.Obs.Counter("resilience.checkpoint.segment_redos").Inc()
			if redos > maxRedos {
				e.Obs.Counter("resilience.checkpoint.abandoned_batches").Inc()
				return o // give up: Good stays false
			}
			o.Secs += restart
			o.Joules += restart * power
			now += restart
			continue // redo the segment from the last checkpoint
		}
		remaining -= seg
	}
	o.Good = true
	return o
}

// Replicated runs N copies of each batch on the device gang and votes.
// With N ≥ 3, frame-granularity majority voting masks silent corruption
// outright (independent replicas corrupt different frames, so every frame
// keeps a clean majority); only device resets can destroy a replica's
// output, and a reset replica re-executes once after reboot. With N == 2
// (dual modular redundancy) divergence is detected but cannot be
// resolved, so the pair re-executes, up to MaxRounds. Wall time and
// energy scale by the replica count — the costliest tier of §9's ladder.
type Replicated struct {
	N         int // replica count; 0 = 3 (TMR)
	MaxRounds int // DMR re-execution rounds; 0 = 3
}

// Name implements sched.RecoveryPolicy.
func (r Replicated) Name() string {
	switch n := r.replicas(); n {
	case 2:
		return "dual"
	case 3:
		return "tmr"
	default:
		return fmt.Sprintf("%d-plex", n)
	}
}

// replicas returns the effective replica count.
func (r Replicated) replicas() int {
	if r.N <= 0 {
		return 3
	}
	return r.N
}

// Execute implements sched.RecoveryPolicy.
func (r Replicated) Execute(e sched.BatchExec) sched.BatchOutcome {
	var o sched.BatchOutcome
	n := r.replicas()
	if rate := e.HazardAt(e.Start); rate <= 0 || n == 1 {
		p := e.RunOnce(e.Start)
		o.Accumulate(p)
		o.Good = !p.Upset
		return o
	}
	now := e.Start
	if n >= 3 {
		// One voted round: each replica runs its full pass; silent upsets
		// are outvoted, resets cost a reboot plus one re-execution. A
		// replica whose redo also resets is written off; the batch
		// survives as long as a voting majority of copies does.
		survivors := n
		for i := 0; i < n; i++ {
			p := e.RunOnce(now)
			o.Accumulate(p)
			now += p.Secs
			if p.Reset {
				e.Obs.Counter("resilience.vote.replica_reruns").Inc()
				p2 := e.RunOnce(now)
				o.Accumulate(p2)
				now += p2.Secs
				if p2.Reset {
					survivors--
					e.Obs.Counter("resilience.vote.replicas_lost").Inc()
				}
			}
		}
		o.Good = survivors >= n/2+1
		if o.Good {
			if o.Upsets > 0 {
				e.Obs.Counter("resilience.vote.outvoted_upsets").Add(o.Upsets)
			}
		} else {
			e.Obs.Counter("resilience.vote.majority_lost_batches").Inc()
		}
		return o
	}
	// Dual modular redundancy: both copies must finish upset-free to
	// agree; any divergence re-executes the pair.
	rounds := r.MaxRounds
	if rounds <= 0 {
		rounds = 3
	}
	for round := 0; round < rounds; round++ {
		clean := true
		for i := 0; i < 2; i++ {
			p := e.RunOnce(now)
			o.Accumulate(p)
			now += p.Secs
			if p.Upset {
				clean = false
			}
		}
		if clean {
			o.Good = true
			if round > 0 {
				e.Obs.Counter("resilience.vote.dmr_reexecutions").Add(round)
			}
			return o
		}
	}
	e.Obs.Counter("resilience.vote.dmr_exhausted_batches").Inc()
	return o
}
