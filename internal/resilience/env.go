package resilience

import (
	"fmt"
	"math"
	"time"

	"spacedc/internal/orbit"
	"spacedc/internal/radiation"
)

// EnvTrace precomputes the orbital environment over a simulated span at a
// fixed sampling step: whether the spacecraft is inside the South Atlantic
// Anomaly and whether it is sunlit. The trace is what couples the orbit
// and radiation models to the sched pipeline's continuous time axis.
type EnvTrace struct {
	StepSec float64
	InSAA   []bool
	Sunlit  []bool
}

// BuildEnvTrace propagates the orbit from start over durationSec and
// samples the SAA footprint and eclipse state every stepSec.
func BuildEnvTrace(el orbit.Elements, start time.Time, durationSec, stepSec float64, saa radiation.SAA) (*EnvTrace, error) {
	if durationSec <= 0 || stepSec <= 0 {
		return nil, fmt.Errorf("resilience: non-positive duration %v or step %v", durationSec, stepSec)
	}
	prop := orbit.J2Propagator{Elements: el}
	n := int(math.Ceil(durationSec/stepSec)) + 1
	tr := &EnvTrace{
		StepSec: stepSec,
		InSAA:   make([]bool, n),
		Sunlit:  make([]bool, n),
	}
	for i := 0; i < n; i++ {
		t := start.Add(time.Duration(float64(i) * stepSec * float64(time.Second)))
		st, err := prop.State(t)
		if err != nil {
			return nil, err
		}
		tr.InSAA[i] = saa.Contains(orbit.SubPoint(st.Position, t))
		tr.Sunlit[i] = orbit.Shadow(st.Position, t) == orbit.Sunlit
	}
	return tr, nil
}

// index maps a simulation time to the nearest trace sample, clamped to
// the trace bounds.
func (tr *EnvTrace) index(t float64) int {
	i := int(t / tr.StepSec)
	if i < 0 {
		return 0
	}
	if i >= len(tr.InSAA) {
		return len(tr.InSAA) - 1
	}
	return i
}

// InSAAAt reports whether the spacecraft is inside the anomaly at
// simulation time t (seconds past the trace start).
func (tr *EnvTrace) InSAAAt(t float64) bool { return tr.InSAA[tr.index(t)] }

// SunlitAt reports whether the spacecraft is in sunlight at time t.
func (tr *EnvTrace) SunlitAt(t float64) bool { return tr.Sunlit[tr.index(t)] }

// SAAFraction returns the share of trace samples inside the anomaly.
func (tr *EnvTrace) SAAFraction() float64 { return fraction(tr.InSAA, true) }

// EclipseFraction returns the share of trace samples in Earth's shadow.
func (tr *EnvTrace) EclipseFraction() float64 { return fraction(tr.Sunlit, false) }

// fraction counts the share of samples equal to want.
func fraction(xs []bool, want bool) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x == want {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// HazardModel turns the environment trace into an SEU hazard rate for the
// sched fault injector: a base rate outside the anomaly, multiplied inside
// it — the §9 observation that LEO spacecraft take most of their upsets in
// the SAA.
type HazardModel struct {
	// BaseRatePerSec is the upset rate per second of busy compute outside
	// the SAA.
	BaseRatePerSec float64
	// SAAMultiplier scales the rate inside the anomaly (≥1 in practice).
	SAAMultiplier float64
}

// DefaultHazard is a COTS-accelerator hazard: about one upset per ~8
// busy minutes outside the anomaly, 100× inside it.
func DefaultHazard() HazardModel {
	return HazardModel{BaseRatePerSec: 2e-3, SAAMultiplier: 100}
}

// Rate returns the hazard rate at simulation time t given the trace.
func (h HazardModel) Rate(env *EnvTrace, t float64) float64 {
	r := h.BaseRatePerSec
	if r < 0 {
		r = 0
	}
	if env != nil && env.InSAAAt(t) && h.SAAMultiplier > 1 {
		r *= h.SAAMultiplier
	}
	return r
}

// RateFunc binds the model to a trace as a sched.FaultConfig Hazard.
func (h HazardModel) RateFunc(env *EnvTrace) func(t float64) float64 {
	return func(t float64) float64 { return h.Rate(env, t) }
}
