package resilience

import (
	"math"
	"math/rand"
	"testing"

	"spacedc/internal/sched"
)

// exec builds a BatchExec over a 2 s / 200 J batch with the given hazard.
// A nil hazard leaves Rng nil too, so any accidental draw panics — that is
// the zero-hazard passthrough contract under test.
func exec(hazard func(float64) float64) sched.BatchExec {
	e := sched.BatchExec{
		Start:         100,
		Frames:        4,
		BaseSecs:      2,
		BaseJoules:    200,
		Hazard:        hazard,
		ResetFraction: 0,
		ResetMTTRSec:  30,
	}
	if hazard != nil {
		e.Rng = rand.New(rand.NewSource(1))
	}
	return e
}

// always upsets: the hazard is so high that P(clean pass) ≈ e^-2000.
func certainUpset(float64) float64 { return 1000 }

func TestPolicyNames(t *testing.T) {
	cases := map[string]sched.RecoveryPolicy{
		"retry":      Retry{},
		"checkpoint": Checkpoint{},
		"tmr":        Replicated{},
		"dual":       Replicated{N: 2},
		"5-plex":     Replicated{N: 5},
	}
	for want, pol := range cases {
		if got := pol.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

// TestZeroHazardPassthrough: every policy must return the fault-free
// operating point untouched, without consuming randomness, when the hazard
// at launch is zero.
func TestZeroHazardPassthrough(t *testing.T) {
	policies := []sched.RecoveryPolicy{
		sched.NoMitigation(),
		Retry{},
		Checkpoint{},
		Checkpoint{IntervalSec: 0.5},
		Replicated{N: 2},
		Replicated{N: 3},
		Replicated{N: 5},
	}
	for _, pol := range policies {
		o := pol.Execute(exec(nil)) // nil Rng: a draw would panic
		if o.Secs != 2 || o.Joules != 200 || !o.Good || o.Upsets != 0 || o.DownSec != 0 {
			t.Errorf("%s: zero-hazard outcome perturbed: %+v", pol.Name(), o)
		}
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	r := Retry{MaxAttempts: 3, BackoffSec: 1, BackoffFactor: 2}
	o := r.Execute(exec(certainUpset))
	if o.Good {
		t.Fatal("certain upsets should exhaust retries")
	}
	if o.Upsets != 3 {
		t.Errorf("attempts = %d upsets, want 3", o.Upsets)
	}
	// 3 passes of 2 s plus backoffs 1 s + 2 s.
	if math.Abs(o.Secs-(3*2+1+2)) > 1e-9 {
		t.Errorf("occupancy %v, want 9 (3 passes + 1+2 backoff)", o.Secs)
	}
	if math.Abs(o.Joules-3*200) > 1e-9 {
		t.Errorf("energy %v, want 3 full passes", o.Joules)
	}
}

func TestRetryRecoversWhenHazardClears(t *testing.T) {
	// Hazard hot at launch, gone by the retry (after the 1 s backoff).
	gated := func(tm float64) float64 {
		if tm < 102.5 {
			return 1000
		}
		return 0
	}
	o := Retry{}.Execute(exec(gated))
	if !o.Good {
		t.Fatal("retry should succeed once the hazard clears")
	}
	if o.Upsets != 1 {
		t.Errorf("upsets = %d, want 1 (first pass only)", o.Upsets)
	}
	if o.Joules <= 200 {
		t.Errorf("energy %v should exceed one pass", o.Joules)
	}
}

func TestYoungDalyInterval(t *testing.T) {
	if got := YoungDalyIntervalSec(1, 50); math.Abs(got-10) > 1e-9 {
		t.Errorf("√(2·1·50) = %v, want 10", got)
	}
	for name, got := range map[string]float64{
		"zero cost":     YoungDalyIntervalSec(0, 50),
		"zero mtbf":     YoungDalyIntervalSec(1, 0),
		"infinite mtbf": YoungDalyIntervalSec(1, math.Inf(1)),
		"NaN cost":      YoungDalyIntervalSec(math.NaN(), 50),
	} {
		if !math.IsInf(got, 1) {
			t.Errorf("%s: interval %v, want +Inf (never checkpoint)", name, got)
		}
	}
}

func TestCheckpointRecovers(t *testing.T) {
	// Hazard hot for the first segment's span, then clear: the upset
	// segment is redone from the checkpoint instead of the whole batch.
	gated := func(tm float64) float64 {
		if tm < 100.6 {
			return 1000
		}
		return 0
	}
	c := Checkpoint{CheckpointSec: 0.1, RestartSec: 0.1, IntervalSec: 0.5}
	o := c.Execute(exec(gated))
	if !o.Good {
		t.Fatal("checkpointing should recover the batch")
	}
	if o.Upsets == 0 {
		t.Fatal("gated hazard produced no upsets — not exercising recovery")
	}
	// Overheads: > one clean pass, < the 2 full redos retry would pay.
	if o.Joules <= 200 || o.Joules >= 400 {
		t.Errorf("energy %v J outside (one pass, two passes)", o.Joules)
	}
	if o.Secs <= 2 {
		t.Errorf("occupancy %v should exceed the clean pass", o.Secs)
	}
}

func TestCheckpointGivesUpAtMaxRedos(t *testing.T) {
	c := Checkpoint{CheckpointSec: 0.1, IntervalSec: 0.5, MaxRedos: 4}
	o := c.Execute(exec(certainUpset))
	if o.Good {
		t.Fatal("certain upsets should exhaust the redo budget")
	}
	if o.Upsets != 5 { // initial try + 4 redos of the first segment
		t.Errorf("upsets = %d, want 5 (1 + MaxRedos)", o.Upsets)
	}
}

func TestTMRMasksSilentCorruption(t *testing.T) {
	// Silent upsets on every replica: frame-granularity voting still wins
	// because no replica loses its output.
	o := Replicated{N: 3}.Execute(exec(certainUpset))
	if !o.Good {
		t.Fatal("TMR should mask silent corruption")
	}
	if o.Upsets != 3 {
		t.Errorf("upsets = %d, want one per replica", o.Upsets)
	}
	if math.Abs(o.Joules-3*200) > 1e-9 {
		t.Errorf("energy %v, want exactly 3 replicas", o.Joules)
	}
	if o.Secs < 3*2 {
		t.Errorf("occupancy %v below 3 serialized replicas", o.Secs)
	}
}

func TestTMRLosesToRepeatedResets(t *testing.T) {
	e := exec(certainUpset)
	e.ResetFraction = 1 // every upset reboots: each replica dies after its redo
	o := Replicated{N: 3}.Execute(e)
	if o.Good {
		t.Fatal("three dead replicas cannot vote")
	}
	if o.Resets != 6 { // 3 replicas × (reset + failed redo)
		t.Errorf("resets = %d, want 6", o.Resets)
	}
	if math.Abs(o.DownSec-6*30) > 1e-9 {
		t.Errorf("downtime %v, want 6 reboots", o.DownSec)
	}
}

func TestDMRDetectsButCannotMask(t *testing.T) {
	o := Replicated{N: 2, MaxRounds: 2}.Execute(exec(certainUpset))
	if o.Good {
		t.Fatal("persistent divergence should fail DMR")
	}
	if o.Upsets != 4 { // 2 rounds × 2 replicas
		t.Errorf("upsets = %d, want 4", o.Upsets)
	}
	// Once the hazard clears mid-flight, the re-executed pair agrees.
	gated := func(tm float64) float64 {
		if tm < 102.5 {
			return 1000
		}
		return 0
	}
	o = Replicated{N: 2}.Execute(exec(gated))
	if !o.Good {
		t.Error("DMR should succeed on the clean re-execution")
	}
}
