package resilience

import (
	"fmt"
	"math"

	"spacedc/internal/discard"
	"spacedc/internal/obs"
	"spacedc/internal/thermal"
	"spacedc/internal/units"
)

// Governor is a first-order thermal model implementing sched.ThermalHook:
// dissipated batch energy charges a thermal-mass bucket, the radiator
// drains it at its sustainable capacity, and as the bucket fills the
// device is derated linearly down to the power the radiator can actually
// reject. Alongside throttling it sheds low-priority load upstream: its
// KeepFactor tightens the early-discard keep probability by up to the
// shed criterion's discard rate — graceful degradation instead of queue
// overflow. The governor is stateful and single-simulation: build a fresh
// one per run (or Reset between runs); it is not safe for concurrent use.
type Governor struct {
	CapacityW float64 // sustainable heat rejection of the radiator
	PeakW     float64 // worst-case device dissipation
	HeadroomJ float64 // thermal-mass buffer above steady state before full derate
	Shed      discard.Criterion

	// Env, when set, modulates rejection with the orbit's day/night
	// cycle: while sunlit the effective capacity is scaled by
	// SunlitFactor (solar load on the radiator view); in eclipse the full
	// capacity is available. A zero SunlitFactor means no modulation.
	Env          *EnvTrace
	SunlitFactor float64

	storedJ float64 // energy currently buffered in the thermal mass
	lastSec float64 // time the bucket was last advanced to

	// Observability handles (nil unless Instrument was called; all
	// operations on nil handles are no-ops). derated/shedding latch the
	// current regime so only transitions count.
	ctrDerate *obs.Counter
	ctrShed   *obs.Counter
	gStored   *obs.Gauge
	reg       *obs.Registry // event stream for transition edges
	derated   bool
	shedding  bool
}

// Instrument points the governor's transition counters and stored-energy
// gauge at reg: "resilience.governor.derate_transitions" counts entries
// into the derated regime (capacity factor dropping below 1),
// "resilience.governor.shed_transitions" entries into load shedding, and
// "resilience.governor.stored_j" tracks the thermal-mass fill. A nil
// registry detaches instrumentation. Regime edges additionally stream as
// "resilience.governor.derate" / "resilience.governor.shed" transition
// events (value = the capacity/keep factor entering the new regime, 1 on
// recovery), which is what the sudcsimd SSE endpoint renders live.
func (g *Governor) Instrument(reg *obs.Registry) {
	g.ctrDerate = reg.Counter("resilience.governor.derate_transitions")
	g.ctrShed = reg.Counter("resilience.governor.shed_transitions")
	g.gStored = reg.Gauge("resilience.governor.stored_j")
	g.reg = reg
}

// NewGovernor builds a governor for a device dissipating up to peak,
// rejected by areaM2 of the given radiator, with headroomJ of thermal
// mass. shed is the discard criterion applied upstream under throttle
// (use discard.None to disable shedding).
func NewGovernor(peak units.Power, rad thermal.Radiator, areaM2, headroomJ float64, shed discard.Criterion) (*Governor, error) {
	if err := rad.Validate(); err != nil {
		return nil, err
	}
	if peak <= 0 {
		return nil, fmt.Errorf("resilience: non-positive peak dissipation %v", peak)
	}
	if areaM2 <= 0 || math.IsNaN(areaM2) || math.IsInf(areaM2, 0) {
		return nil, fmt.Errorf("resilience: invalid radiator area %v", areaM2)
	}
	if headroomJ <= 0 {
		return nil, fmt.Errorf("resilience: non-positive thermal headroom %v", headroomJ)
	}
	if err := shed.ValidateRate(); err != nil {
		return nil, err
	}
	return &Governor{
		CapacityW: rad.FluxWM2() * areaM2,
		PeakW:     float64(peak),
		HeadroomJ: headroomJ,
		Shed:      shed,
	}, nil
}

// GovernorForBudget builds a governor whose radiator was sized by the
// default thermal.SizeBudget chain for sizedFor watts while the device
// can actually dissipate peak — the undersizing knob the throttling sweep
// turns (sizedFor == peak means a radiator that never saturates).
func GovernorForBudget(peak, sizedFor units.Power, headroomJ float64, shed discard.Criterion) (*Governor, error) {
	b, err := thermal.SizeBudget(sizedFor)
	if err != nil {
		return nil, err
	}
	return NewGovernor(peak, thermal.DefaultRadiator(), b.RadiatorAreaM2, headroomJ, shed)
}

// capacityAt returns the effective rejection capacity at time t.
func (g *Governor) capacityAt(t float64) float64 {
	if g.Env != nil && g.SunlitFactor > 0 && g.SunlitFactor < 1 && g.Env.SunlitAt(t) {
		return g.CapacityW * g.SunlitFactor
	}
	return g.CapacityW
}

// advance drains the bucket at radiator capacity up to time t, stepping
// at the environment trace's resolution so day/night capacity swings are
// honoured.
func (g *Governor) advance(t float64) {
	for t > g.lastSec {
		step := t - g.lastSec
		if g.Env != nil && step > g.Env.StepSec {
			step = g.Env.StepSec
		}
		g.storedJ -= g.capacityAt(g.lastSec) * step
		if g.storedJ < 0 {
			g.storedJ = 0
		}
		g.lastSec += step
	}
}

// minFactor is the fully-throttled capacity factor: the fraction of peak
// dissipation the radiator can reject continuously.
func (g *Governor) minFactor() float64 {
	f := g.CapacityW / g.PeakW
	if f > 1 {
		f = 1
	}
	if f < 0.01 {
		f = 0.01
	}
	return f
}

// severity is the bucket fill level in [0, 1].
func (g *Governor) severity() float64 {
	s := g.storedJ / g.HeadroomJ
	if s > 1 {
		s = 1
	}
	return s
}

// Factor implements sched.ThermalHook: the capacity factor interpolates
// from 1 (cool) down to the sustainable fraction as the buffer fills.
func (g *Governor) Factor(t float64) float64 {
	g.advance(t)
	f := 1 - (1-g.minFactor())*g.severity()
	g.gStored.Set(g.storedJ)
	if d := f < 1; d != g.derated {
		g.derated = d
		if d {
			g.ctrDerate.Inc()
		}
		g.reg.Emit("resilience.governor.derate", "transition", f)
	}
	return f
}

// Dissipated implements sched.ThermalHook.
func (g *Governor) Dissipated(start, secs, joules float64) {
	g.advance(start + secs)
	g.storedJ += joules
}

// KeepFactor returns the multiplicative keep probability the load-shedding
// stage applies upstream at time t: 1 when cool, dropping by the shed
// criterion's discard rate at full throttle. Compose it into
// sched.Config.KeepProb.
func (g *Governor) KeepFactor(t float64) float64 {
	g.advance(t)
	keep := 1 - g.Shed.Rate*g.severity()
	if s := keep < 1; s != g.shedding {
		g.shedding = s
		if s {
			g.ctrShed.Inc()
		}
		g.reg.Emit("resilience.governor.shed", "transition", keep)
	}
	return keep
}

// StoredJ exposes the buffered thermal energy (for tests and reports).
func (g *Governor) StoredJ() float64 { return g.storedJ }

// Reset returns the governor to its cold initial state (instrumentation
// handles and their accumulated counts stay attached).
func (g *Governor) Reset() {
	g.storedJ = 0
	g.lastSec = 0
	g.derated = false
	g.shedding = false
}
