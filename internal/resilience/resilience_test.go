package resilience

import (
	"math"
	"testing"

	"spacedc/internal/sched"
)

// flatProc is a constant-rate processor for scenario tests.
type flatProc struct{}

func (flatProc) Process(frames int, pixels float64) (float64, float64) {
	secs := pixels / 2e6
	return secs, secs * 100
}

func testScenario(t *testing.T) Scenario {
	t.Helper()
	env := buildTrace(t, 51.6, 420)
	return Scenario{
		Base: sched.Config{
			Satellites:     4,
			FramePeriodSec: 1.5,
			PixelsPerFrame: 2e5,
			TargetBatch:    4,
			MaxWaitSec:     10,
			DurationSec:    3000,
			Seed:           3,
		},
		Proc:   flatProc{},
		Env:    env,
		Hazard: DefaultHazard(),
	}
}

func TestStandardPoliciesWellFormed(t *testing.T) {
	pols := StandardPolicies()
	if len(pols) != 5 {
		t.Fatalf("%d standard policies, want 5", len(pols))
	}
	seen := map[string]bool{}
	for _, p := range pols {
		if p.Name == "" || seen[p.Name] {
			t.Errorf("bad or duplicate policy name %q", p.Name)
		}
		seen[p.Name] = true
	}
	if !seen["none"] || !seen["tmr"] || !seen["saa-pause"] {
		t.Errorf("missing ladder rungs: %v", seen)
	}
}

func TestScenarioRequiresEnv(t *testing.T) {
	sc := testScenario(t)
	sc.Env = nil
	if _, err := sc.Evaluate(Policy{Name: "none"}, sched.Stats{}); err == nil {
		t.Error("scenario without an environment trace accepted")
	}
}

// TestZeroHazardMatchesBaselineAllPolicies is the acceptance criterion:
// with the hazard forced to zero, every mitigation policy reproduces the
// fault-free pipeline bit for bit.
func TestZeroHazardMatchesBaselineAllPolicies(t *testing.T) {
	sc := testScenario(t)
	sc.Hazard = HazardModel{BaseRatePerSec: 0, SAAMultiplier: 100}
	baseline, err := sc.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range StandardPolicies() {
		if pol.PauseInSAA {
			continue // the pause intentionally changes launches regardless of hazard
		}
		rep, err := sc.Evaluate(pol, baseline)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stats != baseline {
			t.Errorf("%s: zero-hazard stats diverged from baseline:\n got %+v\nwant %+v",
				pol.Name, rep.Stats, baseline)
		}
		if rep.EnergyOverhead != 1 {
			t.Errorf("%s: zero-hazard energy overhead %v, want 1", pol.Name, rep.EnergyOverhead)
		}
	}
}

func TestEvaluateAllDeterministic(t *testing.T) {
	sc := testScenario(t)
	a, err := sc.EvaluateAll(StandardPolicies())
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.EvaluateAll(StandardPolicies())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("policy %s: reports diverged across identical runs", a[i].Policy)
		}
	}
}

// TestMitigationLadder checks the headline ordering on a hazard hot enough
// to differentiate the rungs: stronger mitigation recovers at least as much
// goodput and spends at least as much energy.
func TestMitigationLadder(t *testing.T) {
	sc := testScenario(t)
	byName := map[string]Report{}
	reports, err := sc.EvaluateAll(StandardPolicies())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		byName[r.Policy] = r
	}
	if byName["none"].Stats.Corrupted == 0 {
		t.Fatal("hazard produced no corruption — ladder not exercised")
	}
	order := []string{"none", "retry", "checkpoint", "tmr"}
	for i := 1; i < len(order); i++ {
		lo, hi := byName[order[i-1]], byName[order[i]]
		if hi.GoodputFPS < lo.GoodputFPS-1e-9 {
			t.Errorf("goodput(%s)=%v < goodput(%s)=%v", order[i], hi.GoodputFPS, order[i-1], lo.GoodputFPS)
		}
		if hi.Stats.EnergyJ < lo.Stats.EnergyJ-1e-6 {
			t.Errorf("energy(%s)=%v < energy(%s)=%v", order[i], hi.Stats.EnergyJ, order[i-1], lo.Stats.EnergyJ)
		}
	}
	// The SAA pause trades availability for energy: cheapest energy
	// overhead of any protective policy, availability down by ~the dwell.
	pause := byName["saa-pause"]
	if pause.EnergyOverhead > byName["checkpoint"].EnergyOverhead {
		t.Errorf("pause overhead %v exceeds checkpoint %v", pause.EnergyOverhead, byName["checkpoint"].EnergyOverhead)
	}
	wantAvail := 1 - sc.Env.SAAFraction()
	if math.Abs(pause.Availability-wantAvail) > 0.02 {
		t.Errorf("pause availability %v, want ≈ 1 - SAA dwell = %v", pause.Availability, wantAvail)
	}
}
