package resilience

import (
	"math"
	"testing"
	"time"

	"spacedc/internal/orbit"
	"spacedc/internal/radiation"
)

var testEpoch = time.Date(2026, 3, 20, 0, 0, 0, 0, time.UTC)

func buildTrace(t *testing.T, incDeg, altKm float64) *EnvTrace {
	t.Helper()
	el := orbit.CircularLEO(altKm, incDeg*math.Pi/180, 0, 0, testEpoch)
	env, err := BuildEnvTrace(el, testEpoch, 12000, 10, radiation.DefaultSAA())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestBuildEnvTraceValidation(t *testing.T) {
	el := orbit.CircularLEO(500, 0, 0, 0, testEpoch)
	for name, args := range map[string][2]float64{
		"zero duration": {0, 10},
		"zero step":     {100, 0},
		"negative step": {100, -1},
	} {
		if _, err := BuildEnvTrace(el, testEpoch, args[0], args[1], radiation.DefaultSAA()); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestEnvTraceRegimes(t *testing.T) {
	// The SAA sits at 26°S: an equatorial orbit skirts it, the ISS
	// inclination grazes it, and a sun-synchronous orbit crosses it on
	// most revolutions — the dwell fractions must order accordingly.
	eq := buildTrace(t, 0, 550)
	iss := buildTrace(t, 51.6, 420)
	sso := buildTrace(t, 97.6, 550)
	if f := eq.SAAFraction(); f != 0 {
		t.Errorf("equatorial SAA fraction %v, want 0", f)
	}
	if iss.SAAFraction() <= 0.01 {
		t.Errorf("ISS SAA fraction %v implausibly low", iss.SAAFraction())
	}
	if sso.SAAFraction() <= iss.SAAFraction() {
		t.Errorf("SSO fraction %v should exceed ISS %v", sso.SAAFraction(), iss.SAAFraction())
	}
	// A ~90 min LEO spends roughly a third of each orbit in shadow.
	if f := iss.EclipseFraction(); f < 0.2 || f > 0.5 {
		t.Errorf("ISS eclipse fraction %v outside [0.2, 0.5]", f)
	}
}

func TestEnvTraceIndexClamps(t *testing.T) {
	tr := &EnvTrace{StepSec: 10, InSAA: []bool{true, false, true}, Sunlit: []bool{false, true, false}}
	if !tr.InSAAAt(-100) {
		t.Error("times before the trace should clamp to the first sample")
	}
	if !tr.InSAAAt(1e9) {
		t.Error("times past the trace should clamp to the last sample")
	}
	if !tr.SunlitAt(15) {
		t.Error("t=15 s should map to sample 1")
	}
}

func TestHazardModel(t *testing.T) {
	tr := &EnvTrace{StepSec: 10, InSAA: []bool{false, true}, Sunlit: []bool{true, true}}
	h := HazardModel{BaseRatePerSec: 1e-3, SAAMultiplier: 100}
	if r := h.Rate(tr, 0); r != 1e-3 {
		t.Errorf("outside-SAA rate %v, want base", r)
	}
	if r := h.Rate(tr, 10); r != 0.1 {
		t.Errorf("inside-SAA rate %v, want base×100", r)
	}
	if r := h.Rate(nil, 0); r != 1e-3 {
		t.Errorf("nil-env rate %v, want base", r)
	}
	if r := (HazardModel{BaseRatePerSec: -5}).Rate(tr, 0); r != 0 {
		t.Errorf("negative base rate %v, want sanitized 0", r)
	}
	// A sub-unity multiplier must not *reduce* the in-SAA rate.
	weird := HazardModel{BaseRatePerSec: 1e-3, SAAMultiplier: 0.5}
	if r := weird.Rate(tr, 10); r != 1e-3 {
		t.Errorf("sub-unity multiplier applied: %v", r)
	}
	fn := h.RateFunc(tr)
	if fn(10) != 0.1 {
		t.Error("RateFunc should bind the trace")
	}
}
