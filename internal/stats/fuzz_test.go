package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// floatsFromBytes decodes the fuzzer's byte stream into float64 samples,
// eight bytes per sample, reaching every representable value including
// NaN payloads, ±Inf, subnormals, and negative zero.
func floatsFromBytes(data []byte) []float64 {
	var out []float64
	for len(data) >= 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return out
}

// bits encodes values back into the fuzz corpus byte format.
func bits(vs ...float64) []byte {
	b := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// contains reports whether v (compared by bits, so NaN matches NaN) is an
// element of xs.
func contains(xs []float64, v float64) bool {
	for _, x := range xs {
		if math.Float64bits(x) == math.Float64bits(v) || x == v {
			return true
		}
	}
	return false
}

// FuzzSummarize drives Summarize and Percentile with arbitrary samples
// and quantiles: no input may panic, Count always matches the sample
// size, Percentile always returns an element of the sample, and on
// NaN-free samples the summary's Max is the true maximum with P95 an
// element no greater than it.
func FuzzSummarize(f *testing.F) {
	f.Add([]byte{}, 0.95)
	f.Add(bits(1.5), 0.5)                           // single sample
	f.Add(bits(2, 2, 2, 2, 2), 0.95)                // point mass
	f.Add(bits(math.NaN(), 1, math.NaN()), 0.5)     // NaN poisons the sort
	f.Add(bits(math.Inf(1), math.Inf(-1), 0), 0.95) // infinities
	f.Add(bits(3, 1, 2, 5, 4), math.NaN())          // NaN quantile → median
	f.Add(bits(math.Copysign(0, -1), 0), -1.0)      // q below range
	f.Add(bits(5e-324, math.MaxFloat64), 2.0)       // q above range

	f.Fuzz(func(t *testing.T, data []byte, q float64) {
		xs := floatsFromBytes(data)
		s := Summarize(xs)
		if s.Count != len(xs) {
			t.Fatalf("Count = %d, want %d", s.Count, len(xs))
		}
		if len(xs) == 0 {
			if s != (Summary{}) {
				t.Fatalf("empty sample summarized to %+v, want zero", s)
			}
			return
		}
		if p := Percentile(xs, q); !contains(xs, p) {
			t.Fatalf("Percentile(%v) = %v is not an element of the sample", q, p)
		}

		hasNaN := false
		max := math.Inf(-1)
		for _, v := range xs {
			if math.IsNaN(v) {
				hasNaN = true
			}
			if v > max {
				max = v
			}
		}
		if hasNaN {
			return // NaN order is unspecified; only the no-panic/count contract holds
		}
		if s.Max != max {
			t.Fatalf("Max = %v, want %v", s.Max, max)
		}
		if !contains(xs, s.P95) {
			t.Fatalf("P95 = %v is not an element of the sample", s.P95)
		}
		if s.P95 > s.Max {
			t.Fatalf("P95 %v > Max %v", s.P95, s.Max)
		}
	})
}
