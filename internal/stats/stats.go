// Package stats provides the small sample-statistics helpers shared by the
// simulators (sched, netsim): mean, percentiles, and the mean/p95/max
// summary every latency report in the repo uses. Centralizing them keeps
// the percentile convention (nearest-rank on the sorted sample, index
// ⌊q·(n−1)⌋) identical across packages.
package stats

import (
	"math"
	"sort"
)

// Summary condenses a sample into the quantities the experiment tables
// report.
type Summary struct {
	Count int
	Mean  float64
	P95   float64
	Max   float64
}

// Summarize computes the standard summary of xs. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		P95:   PercentileSorted(sorted, 0.95),
		Max:   sorted[len(sorted)-1],
	}
}

// MeanP95Max returns the summary as a triple, the shape the sched
// simulator's Stats fields take.
func MeanP95Max(xs []float64) (mean, p95, max float64) {
	s := Summarize(xs)
	return s.Mean, s.P95, s.Max
}

// Percentile returns the q-quantile (q in [0,1]) of an unsorted sample.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, q)
}

// PercentileSorted returns the q-quantile of an already-sorted sample using
// the nearest-rank index ⌊q·(n−1)⌋. A NaN quantile yields the median: NaN
// passes both range clamps below, and int(NaN·(n−1)) is a huge negative
// index that would panic.
func PercentileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if math.IsNaN(q) {
		q = 0.5
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return sorted[int(q*float64(len(sorted)-1))]
}
