package stats

import (
	"math"
	"testing"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || s.P95 != 0 || s.Max != 0 {
		t.Errorf("empty sample should summarize to zero, got %+v", s)
	}
}

func TestSummarizeKnownSample(t *testing.T) {
	// 1..100: mean 50.5, p95 index ⌊0.95·99⌋ = 94 → value 95, max 100.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.Count != 100 {
		t.Errorf("count = %d, want 100", s.Count)
	}
	if math.Abs(s.Mean-50.5) > 1e-12 {
		t.Errorf("mean = %v, want 50.5", s.Mean)
	}
	if s.P95 != 95 {
		t.Errorf("p95 = %v, want 95", s.P95)
	}
	if s.Max != 100 {
		t.Errorf("max = %v, want 100", s.Max)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input reordered: %v", xs)
	}
}

func TestMeanP95MaxMatchesSummarize(t *testing.T) {
	xs := []float64{5, 9, 1, 7, 3}
	mean, p95, max := MeanP95Max(xs)
	s := Summarize(xs)
	if mean != s.Mean || p95 != s.P95 || max != s.Max {
		t.Errorf("triple (%v,%v,%v) disagrees with summary %+v", mean, p95, max, s)
	}
}

func TestPercentileBoundsClamped(t *testing.T) {
	xs := []float64{2, 4, 6}
	if v := Percentile(xs, -0.5); v != 2 {
		t.Errorf("q<0 should clamp to min, got %v", v)
	}
	if v := Percentile(xs, 1.5); v != 6 {
		t.Errorf("q>1 should clamp to max, got %v", v)
	}
	if v := Percentile(nil, 0.5); v != 0 {
		t.Errorf("empty percentile should be 0, got %v", v)
	}
}

func TestPercentileSortedQuantileTable(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		name string
		q    float64
		want float64
	}{
		{"min", 0, 10},
		{"median", 0.5, 30},
		{"max", 1, 50},
		{"below-range", -3, 10},
		{"above-range", 7, 50},
		{"nan-yields-median", math.NaN(), 30},
		{"neg-inf", math.Inf(-1), 10},
		{"pos-inf", math.Inf(1), 50},
	}
	for _, c := range cases {
		if got := PercentileSorted(sorted, c.q); got != c.want {
			t.Errorf("%s: PercentileSorted(q=%v) = %v, want %v", c.name, c.q, got, c.want)
		}
	}
	// NaN on an empty sample must stay the empty-sample zero, not panic.
	if got := PercentileSorted(nil, math.NaN()); got != 0 {
		t.Errorf("empty sample with NaN q = %v, want 0", got)
	}
}

func TestPercentileSingleElement(t *testing.T) {
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if v := Percentile([]float64{42}, q); v != 42 {
			t.Errorf("q=%v: got %v, want 42", q, v)
		}
	}
}
