package experiments

import (
	"fmt"
	"math"
	"time"

	"spacedc/internal/apps"
	"spacedc/internal/compress"
	"spacedc/internal/core"
	"spacedc/internal/coverage"
	"spacedc/internal/datagen"
	"spacedc/internal/detect"
	"spacedc/internal/eoimage"
	"spacedc/internal/fleet"
	"spacedc/internal/isl"

	"spacedc/internal/gpusim"
	"spacedc/internal/orbit"
	"spacedc/internal/pool"
	"spacedc/internal/radiation"
	"spacedc/internal/report"
	"spacedc/internal/sched"
	"spacedc/internal/thermal"
)

// The "ext-" experiments extend the paper's evaluation into the design
// territory its §8–9 discuss qualitatively: SAA compute pauses, orbital
// lifetime and boosting, thermal budgets, power-system sizing,
// disaggregation economics, scheduler latency/energy, and revisit-driven
// constellation sizing.

var _ = register("ext-saa", "South Atlantic Anomaly exposure and the compute-pause strategy", ExtSAA)

// ExtSAA quantifies the §9 "pause in the SAA" strategy: the anomaly time
// fraction per orbit and the SµDC sizing impact of pausing versus
// software hardening.
func ExtSAA() ([]report.Table, error) {
	t := report.Table{
		ID:      "ext-saa",
		Title:   "South Atlantic Anomaly exposure and the compute-pause strategy",
		Note:    "pausing in the SAA costs only the anomaly time fraction; software hardening costs a flat 20%",
		Columns: []string{"orbit", "SAA time fraction", "pause capacity", "sw-hardening capacity", "recommended (5 yr)"},
	}
	saa := radiation.DefaultSAA()
	orbits := []struct {
		name string
		el   orbit.Elements
	}{
		{"equatorial 550 km", orbit.CircularLEO(550, 0, 0, 0, Epoch)},
		{"ISS-like 51.6° 420 km", orbit.CircularLEO(420, 51.6*math.Pi/180, 0, 0, Epoch)},
		{"SSO 97.6° 550 km", orbit.CircularLEO(550, 97.6*math.Pi/180, 0, 0, Epoch)},
	}
	for _, o := range orbits {
		frac, err := saa.TimeFraction(o.el, Epoch, 24*time.Hour, 30*time.Second)
		if err != nil {
			return nil, err
		}
		alt := o.el.SemiMajorKm - orbit.EarthRadiusKm
		t.AddRow(o.name,
			fmt.Sprintf("%.3f", frac),
			fmt.Sprintf("%.3f", radiation.COTSWithSAAPause.CapacityFactor(frac)),
			fmt.Sprintf("%.3f", radiation.COTSWithSoftwareHardening.CapacityFactor(frac)),
			radiation.Recommend(alt, 5).String())
	}
	return []report.Table{t}, nil
}

var _ = register("ext-lifetime", "SuDC drag, boosting, and end-of-life (2000 kg, 40 m2)", ExtLifetime)

// ExtLifetime covers §9's boosting/retirement discussion: decay rates,
// unboosted lifetimes, annual drag make-up, and end-of-life burns across
// placements.
func ExtLifetime() ([]report.Table, error) {
	body := orbit.DragBody{MassKg: 2000, AreaM2: 40} // SµDC with arrays
	t := report.Table{
		ID:      "ext-lifetime",
		Title:   "SµDC drag, boosting, and end-of-life (2000 kg, 40 m²)",
		Note:    "LEO needs continuous boosting and a disposal burn; GEO needs neither but retires to a graveyard orbit",
		Columns: []string{"altitude", "unboosted lifetime (yr)", "boost Δv (m/s/yr)", "disposal Δv (m/s)"},
	}
	for _, alt := range []float64{400, 550, 800} {
		t.AddRow(fmt.Sprintf("%.0f km", alt),
			fmt.Sprintf("%.1f", body.LifetimeYears(alt, 200)),
			fmt.Sprintf("%.2f", body.BoostDeltaVPerYear(alt)),
			fmt.Sprintf("%.0f", orbit.DisposalDeltaV(alt, 50)))
	}
	t.AddRow("GEO",
		">200",
		fmt.Sprintf("%.4f", body.BoostDeltaVPerYear(orbit.GeostationaryAltitudeKm)),
		fmt.Sprintf("%.0f (graveyard)", orbit.GraveyardDeltaV()))
	return []report.Table{t}, nil
}

var _ = register("ext-thermal", "heat rejection for SuDC compute loads", ExtThermal)

// ExtThermal sizes the §9 heat-rejection chain for both SµDC classes.
func ExtThermal() ([]report.Table, error) {
	t := report.Table{
		ID:      "ext-thermal",
		Title:   "Heat rejection for SµDC compute loads",
		Note:    "290 K deep-space radiator, 3 m heat-pipe runs, 15%-of-Carnot TEG recovery",
		Columns: []string{"SµDC", "radiator area (m²)", "heat pipes", "TEG recovered"},
	}
	for _, s := range []core.SuDC{core.Default4kW(), core.StationClass256kW()} {
		b, err := thermal.SizeBudget(s.ComputeBudget)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.Name, fmt.Sprintf("%.1f", b.RadiatorAreaM2), b.HeatPipes, b.TEGRecovered.String())
	}
	return []report.Table{t}, nil
}

var _ = register("ext-power", "power system sizing: LEO vs GEO placement (4 kW SuDC)", ExtPower)

// ExtPower sizes the electrical chain at LEO versus GEO (§9's eclipse
// argument made quantitative).
func ExtPower() ([]report.Table, error) {
	t := report.Table{
		ID:      "ext-power",
		Title:   "Power system sizing: LEO vs GEO placement (4 kW SµDC)",
		Note:    "LEO eclipses every revolution (shallow cycles, short battery life); GEO only near equinoxes",
		Columns: []string{"placement", "array", "battery (kWh)", "battery mass (kg)", "battery life (yr)"},
	}
	leo := core.Default4kW()
	leoSys, err := core.SizePowerSystem(leo, orbit.CircularLEO(550, 0.9, 0, 0, Epoch), Epoch)
	if err != nil {
		return nil, err
	}
	geo := core.Default4kW()
	geo.Placement = core.GEO
	geoSys, err := core.SizePowerSystem(geo, orbit.Geostationary(0, Epoch), Epoch)
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		name string
		sys  core.PowerSystem
	}{{"LEO 550 km", leoSys}, {"GEO", geoSys}} {
		t.AddRow(row.name, row.sys.ArrayPower.String(),
			fmt.Sprintf("%.1f", float64(row.sys.BatteryCap)/3.6e6),
			fmt.Sprintf("%.0f", row.sys.BatteryMassKg),
			fmt.Sprintf("%.1f", row.sys.BatteryYears))
	}
	return []report.Table{t}, nil
}

var _ = register("ext-disagg", "disaggregated vs monolithic SuDC lifecycle cost", ExtDisaggregation)

// ExtDisaggregation prices the §9 disaggregated-SµDC option against the
// monolithic design over mission lifetimes.
func ExtDisaggregation() ([]report.Table, error) {
	cm := core.DefaultCostModel()
	d := core.DefaultDisaggregated()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	t := report.Table{
		ID:      "ext-disagg",
		Title:   "Disaggregated vs monolithic SµDC lifecycle cost (4-year compute refresh)",
		Note:    "disaggregation relaunches only the compute module; monolithic designs relaunch everything",
		Columns: []string{"mission (yr)", "disaggregated", "monolithic", "winner"},
	}
	for _, years := range []float64{3, 8, 15, 25} {
		dis := d.LifecycleCost(years, cm.LaunchPerKg)
		mono := core.MonolithicLifecycleCost(cm, years, 4)
		winner := "monolithic"
		if dis < mono {
			winner = "disaggregated"
		}
		t.AddRow(fmt.Sprintf("%.0f", years), dis.String(), mono.String(), winner)
	}
	return []report.Table{t}, nil
}

var _ = register("ext-sched", "SuDC pipeline simulation: batching policy vs latency and energy", ExtScheduler)

// ExtScheduler runs the discrete-event SµDC pipeline at several batching
// policies, quantifying the §9 latency/efficiency trade on the flood
// detection workload.
func ExtScheduler() ([]report.Table, error) {
	proc, err := sched.NewDeviceProcessor(apps.FloodDetection, gpusim.RTX3090, 1)
	if err != nil {
		return nil, err
	}
	t := report.Table{
		ID:      "ext-sched",
		Title:   "SµDC pipeline simulation: batching policy vs latency and energy (FD, one RTX 3090)",
		Note:    "deeper batching approaches the Table 6 efficiency point at the cost of frame latency",
		Columns: []string{"target batch", "processed", "mean latency (s)", "p95 (s)", "J/frame", "utilization"},
	}
	for _, batch := range []int{1, 4, 16, 32} {
		cfg := sched.Config{
			Satellites:     2,
			FramePeriodSec: 1.5,
			PixelsPerFrame: 1e6,
			TargetBatch:    batch,
			MaxBatch:       batch,
			MaxWaitSec:     120,
			DurationSec:    600,
			QueueLimit:     1000,
			Seed:           1,
		}
		st, err := sched.Simulate(cfg, proc)
		if err != nil {
			return nil, err
		}
		t.AddRow(batch, st.Processed,
			fmt.Sprintf("%.2f", st.MeanLatencySec),
			fmt.Sprintf("%.2f", st.P95LatencySec),
			fmt.Sprintf("%.1f", st.EnergyPerFrameJ()),
			fmt.Sprintf("%.3f", st.Utilization))
	}
	return []report.Table{t}, nil
}

var _ = register("ext-fleet", "SuDC fleet availability over 5 years under COTS failures", ExtFleet)

// ExtFleet runs the fleet-reliability Monte Carlo: COTS device failures
// (random + dose wear-out) against on-board spares, at LEO and in the
// inner belt — the §9 back-up-hardware argument quantified.
func ExtFleet() ([]report.Table, error) {
	t := report.Table{
		ID:      "ext-fleet",
		Title:   "SµDC fleet availability over 5 years (4 SµDCs × 11 RTX 3090s, 90% capacity floor)",
		Note:    "Monte Carlo over device lifetimes; spares swap in on failure",
		Columns: []string{"environment", "spares/SµDC", "availability", "end capacity", "mean yrs to degraded"},
	}
	for _, env := range []struct {
		name  string
		altKm float64
	}{
		{"LEO 550 km", 550},
		{"inner belt 4000 km", 4000},
	} {
		for _, spares := range []int{0, 3} {
			cfg := fleet.Config{
				SuDCs:            4,
				DevicesPerSuDC:   11,
				SparesPerSuDC:    spares,
				Failure:          fleet.COTSAtAltitude(env.altKm),
				MissionYears:     5,
				RequiredCapacity: 0.9,
				Trials:           400,
				Seed:             1,
			}
			r, err := fleet.Simulate(cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(env.name, spares,
				fmt.Sprintf("%.3f", r.Availability),
				fmt.Sprintf("%.3f", r.MeanEndCapacity),
				fmt.Sprintf("%.2f", r.MeanTimeToDegradedYears))
		}
	}
	return []report.Table{t}, nil
}

var _ = register("ext-revisit", "satellites needed for equatorial revisit targets", ExtRevisit)

// ExtRevisit sizes constellations for the Table 1 temporal-resolution
// targets, closing the loop between revisit goals and fleet size.
func ExtRevisit() ([]report.Table, error) {
	im := coverage.Imager{AltKm: 550, HalfAngleRad: 30 * math.Pi / 180}
	t := report.Table{
		ID:      "ext-revisit",
		Title:   "Satellites needed for equatorial revisit targets (550 km, 30° sensor)",
		Note:    "why Table 1's minute-scale revisit goals imply hundred-to-thousand satellite fleets",
		Columns: []string{"revisit target", "satellites"},
	}
	for _, target := range []struct {
		label string
		d     time.Duration
	}{
		{"24 h", 24 * time.Hour},
		{"6 h", 6 * time.Hour},
		{"1 h", time.Hour},
		{"30 min", 30 * time.Minute},
		{"10 min", 10 * time.Minute},
	} {
		n, err := coverage.SatellitesForRevisit(im, target.d, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow(target.label, n)
	}
	return []report.Table{t}, nil
}

var _ = register("ext-latency", "shutter-to-alert latency: SuDC path vs ground path", ExtLatency)

// ExtLatency races the in-orbit detection path against the
// downlink-and-process path for each latency-relevant frame size — the §5
// "low latency detection" claim quantified.
func ExtLatency() ([]report.Table, error) {
	t := report.Table{
		ID:      "ext-latency",
		Title:   "Shutter-to-alert latency: SµDC path vs ground path (UED on RTX 3090)",
		Note:    "ground path: mean GSaaS contact wait + 220 Mbit/s downlink + ground compute; SµDC path: 4-hop 10G relay + batch + inference",
		Columns: []string{"resolution", "frame size", "ground path", "SµDC path", "speedup"},
	}
	model, err := gpusim.NewModel(apps.UrbanEmergency, gpusim.RTX3090)
	if err != nil {
		return nil, err
	}
	sPath := core.SuDCPath{
		RelayHops: 4, ISL: islOptical10G(), HopDistanceKm: 680,
		BatchWaitSec: 5, Model: model,
	}
	gPath := core.DefaultGroundPath()
	for _, res := range datagen.StandardResolutions {
		frame := datagen.Default4K.FrameSize(res)
		cmp, err := core.CompareDetectionLatency(frame, gPath, sPath)
		if err != nil {
			return nil, err
		}
		t.AddRow(datagen.ResolutionLabel(res), frame.String(),
			cmp.Ground.Round(time.Second).String(),
			cmp.SuDC.Round(time.Second).String(),
			fmt.Sprintf("%.0f×", cmp.Speedup))
	}
	return []report.Table{t}, nil
}

// islOptical10G keeps the isl import localized to this driver.
func islOptical10G() isl.LinkTech { return isl.Optical10G }

var _ = register("ext-lossy", "quasi-lossless compression: rate vs quality", ExtLossy)

// ExtLossy sweeps the quasi-lossless coder's rate/quality curve on a
// synthetic urban scene — §4's claim that even high-quality lossy
// compression only reaches ~10-20×.
//
// The quant grid is the heaviest single experiment in the sweep, so each
// operating point runs as its own sub-job on the shared pool: the grid
// spreads over spare cores even when this driver itself occupies one pooled
// experiment slot, and the rows reassemble in grid order, so the table is
// bit-identical to a serial sweep.
func ExtLossy() ([]report.Table, error) {
	scene, err := eoimage.Generate(eoimage.Config{
		Width: 384, Height: 384, Seed: 42, Kind: eoimage.Urban, CloudFraction: 0.3})
	if err != nil {
		return nil, err
	}
	data := scene.Interleaved()
	t := report.Table{
		ID:      "ext-lossy",
		Title:   "Quasi-lossless compression: rate vs quality (urban RGB scene)",
		Note:    "even visually transparent (>35 dB) operating points stay orders of magnitude below required ECRs",
		Columns: []string{"quant step", "ratio", "PSNR (dB)"},
	}
	quants := []int32{1, 4, 8, 16, 32, 64}
	results := make([]compress.LossyResult, len(quants))
	err = pool.Map(len(quants), 0, func(i int) error {
		r, err := compress.MeasureLossy(compress.LossyWavelet{
			Width: 384, Height: 384, Format: compress.RGB8, Quant: quants[i]}, data)
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, q := range quants {
		psnr := fmt.Sprintf("%.1f", results[i].PSNRdB)
		if q == 1 {
			psnr = "lossless"
		}
		t.AddRow(q, fmt.Sprintf("%.1f", results[i].Ratio), psnr)
	}
	return []report.Table{t}, nil
}

var _ = register("ext-detect", "on-board CFAR ship detection on synthetic maritime SAR", ExtDetect)

// ExtDetect runs the CFAR ship detector over synthetic maritime SAR and
// reports accuracy and the insight-vs-raw-data payload ratio — the §5
// "only insights, not raw sensor data, need to be transmitted" argument
// executed end to end.
func ExtDetect() ([]report.Table, error) {
	t := report.Table{
		ID:      "ext-detect",
		Title:   "On-board CFAR ship detection on synthetic maritime SAR",
		Note:    "the alert payload is bytes; the frame it replaces is megabits",
		Columns: []string{"scene", "ships", "detections", "precision", "recall", "payload vs frame"},
	}
	for _, cfg := range []struct {
		name  string
		ships int
		seed  int64
	}{
		{"quiet ocean", 0, 31},
		{"shipping lane", 8, 32},
		{"busy strait", 20, 33},
	} {
		scene, err := eoimage.GenerateSAR(eoimage.SARConfig{
			Width: 384, Height: 384, Seed: cfg.seed, ShipCount: cfg.ships, NoDataBorder: 16})
		if err != nil {
			return nil, err
		}
		dets, err := detect.DefaultCFAR().Detect(scene)
		if err != nil {
			return nil, err
		}
		score := detect.Evaluate(scene, dets, 4)
		payload := len(dets) * 16
		frame := len(scene.Bytes())
		t.AddRow(cfg.name, cfg.ships, len(dets),
			fmt.Sprintf("%.2f", score.Precision),
			fmt.Sprintf("%.2f", score.Recall),
			fmt.Sprintf("1:%d", frame/maxPayload(payload)))
	}
	return []report.Table{t}, nil
}

// maxPayload avoids division by zero for detection-free scenes.
func maxPayload(p int) int {
	if p <= 0 {
		return 16
	}
	return p
}
