package experiments

import (
	"fmt"

	"spacedc/internal/isl"
	"spacedc/internal/netsim"
	"spacedc/internal/report"
	"spacedc/internal/units"
)

var _ = register("ext-netsim", "dynamic network simulation: optical ring under link outages", ExtNetsim)

// NetsimBaseScenario is the reference network for the dynamic-simulation
// study: a 16-satellite optical ring feeding one SµDC at 80% of the
// Table 8 limit, segmented into 10 Mbit transport units. The fault-rate
// sweep perturbs it; the validation benchmark shrinks it.
func NetsimBaseScenario() netsim.Scenario {
	return netsim.Scenario{
		Name: "ring-16",
		Topology: netsim.TopologySpec{
			Kind:    netsim.ClusterTopology,
			Sats:    16,
			Cluster: isl.Ring,
			Tech:    isl.Optical10G,
		},
		PerSat:      units.Gbps, // 16 Gbit/s offered against a 2×10 Gbit/s ring
		SegmentBits: 10e6,
		StepSec:     0.1,
		DurationSec: 120,
		WarmupSec:   20,
		Seed:        1,
	}
}

// ExtNetsim runs the time-stepped flow-level network simulator across a
// link-outage sweep: the static Table 8 capacity picture extended with
// queueing, rerouting, and timeout/backoff retransmission. At 0% outage
// the delivered throughput reproduces the closed-form steady state; under
// outages the ring reroutes around cut links, which doubles the load on
// the surviving direction and surfaces as latency and loss.
func ExtNetsim() ([]report.Table, error) {
	t := report.Table{
		ID:    "ext-netsim",
		Title: "Dynamic network simulation: 16-sat optical ring under link outages (10 Gbit/s ISLs, 1 Gbit/s per sat)",
		Note: "flow-level time-stepped simulation with shortest-path rerouting and exponential-backoff retransmission; " +
			"outage fraction is per-link time down from pointing loss (30 s reacquisition)",
		Columns: []string{"link outage", "offered", "delivered", "ratio",
			"p95 latency (s)", "bottleneck util", "retransmits", "drops"},
	}
	var scenarios []netsim.Scenario
	for _, outage := range []float64{0, 0.01, 0.05} {
		sc := NetsimBaseScenario()
		sc.Name = fmt.Sprintf("outage-%g%%", outage*100)
		sc.Faults = netsim.FaultConfig{LinkOutage: outage, LinkMTTRSec: 30}
		scenarios = append(scenarios, sc)
	}
	// The sweep's per-scenario sub-jobs schedule into pool.Shared(), the
	// same token budget the sibling experiments draw on, so running this
	// experiment inside RunAllWorkers adds parallelism without
	// oversubscribing CPUs — and the ID-ordered reassembly keeps the table
	// bit-identical at any worker count.
	for _, sr := range netsim.Sweep(scenarios, 0) {
		if sr.Err != nil {
			return nil, sr.Err
		}
		r := sr.Result
		t.AddRow(fmt.Sprintf("%.0f%%", sr.Scenario.Faults.LinkOutage*100),
			r.OfferedRate.String(),
			r.DeliveredRate.String(),
			fmt.Sprintf("%.3f", r.DeliveryRatio),
			fmt.Sprintf("%.2f", r.LatencySec.P95),
			fmt.Sprintf("%.2f", r.BottleneckUtil),
			r.Retransmits,
			r.LinkDrops+r.NoRouteDrops)
	}
	return []report.Table{t}, nil
}
