package experiments

import (
	"context"
	"strings"
	"testing"

	"spacedc/internal/obs"
	"spacedc/internal/report"
)

// renderAll concatenates every table's rendered text, the byte stream the
// bit-identity tests compare across execution modes.
func renderAll(t *testing.T, tables []report.Table) string {
	t.Helper()
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// poolCounters extracts the two sweep-level obs counters the pool must
// keep identical to the serial path.
func poolCounters(reg *obs.Registry) (completed, tables int64) {
	for _, c := range reg.Snapshot().Counters {
		switch c.Name {
		case "experiments.completed":
			completed = c.Value
		case "experiments.tables":
			tables = c.Value
		}
	}
	return completed, tables
}

// TestRunAllBitIdentity asserts the worker pool is invisible in the
// output: the serial sweep, a one-worker pool, and an eight-worker pool
// must produce byte-identical rendered tables, and the sweep-level obs
// counters must agree across all three modes. The grid experiments
// (ext-netsim, ext-lossy, table4) decompose into sub-jobs on the shared
// pool, so every mode here also exercises nested submission — experiment
// workers and their sub-jobs interleaving on one token budget. Run with
// -count=2 in CI to catch map-order nondeterminism hiding behind a lucky
// schedule.
func TestRunAllBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment three times; skipped in -short")
	}
	serialReg := obs.New(obs.WithWallClock())
	serial, err := RunAllObs(serialReg)
	if err != nil {
		t.Fatal(err)
	}
	serialText := renderAll(t, serial)

	for _, workers := range []int{1, 8} {
		reg := obs.New(obs.WithWallClock())
		pooled, err := RunAllObsWorkers(reg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(pooled) != len(serial) {
			t.Fatalf("workers=%d returned %d tables, serial %d", workers, len(pooled), len(serial))
		}
		if text := renderAll(t, pooled); text != serialText {
			for i := range serial {
				if pooled[i].String() != serial[i].String() {
					t.Errorf("workers=%d: table %d (%s) diverges from serial", workers, i, serial[i].ID)
				}
			}
			t.Fatalf("workers=%d output is not byte-identical to serial RunAll", workers)
		}
		sc, st := poolCounters(serialReg)
		pc, pt := poolCounters(reg)
		if sc != pc || st != pt {
			t.Errorf("workers=%d counters (completed=%d tables=%d) differ from serial (completed=%d tables=%d)",
				workers, pc, pt, sc, st)
		}
		if pc != int64(len(IDs())) {
			t.Errorf("workers=%d completed %d experiments, want %d", workers, pc, len(IDs()))
		}
	}
}

// TestNestedGridExperimentsDeterministic runs just the experiments that
// fan sub-jobs into the shared pool and asserts each renders identically
// standalone (sub-jobs only) and inside a pooled sweep (sub-jobs nested
// under experiment workers): scheduling depth must never reach the rows.
func TestNestedGridExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the grid experiments twice; skipped in -short")
	}
	gridIDs := []string{"ext-lossy", "ext-netsim", "table4"}
	standalone := make(map[string]string, len(gridIDs))
	for _, id := range gridIDs {
		tables, err := Run(context.Background(), id)
		if err != nil {
			t.Fatalf("%s standalone: %v", id, err)
		}
		standalone[id] = renderAll(t, tables)
	}
	all, err := RunAllWorkers(8)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]string)
	for _, tb := range all {
		byID[tb.ID] = tb.String() + "\n"
	}
	for _, id := range gridIDs {
		if byID[id] != standalone[id] {
			t.Errorf("%s rendered differently nested under the pooled sweep than standalone", id)
		}
	}
}

// TestRunAllWorkersError asserts pooled error reporting is deterministic:
// with a transiently registered failing experiment, every worker count
// surfaces the failure of the ID-order-first failing experiment.
func TestRunAllWorkersError(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped in -short")
	}
	const failID = "aaa-test-failure" // sorts before every real experiment
	register(failID, "transient failing test experiment", func() ([]report.Table, error) {
		return nil, errTestFailure
	})
	defer func() { delete(registry, failID) }()
	for _, workers := range []int{1, 4} {
		_, err := RunAllWorkers(workers)
		if err == nil {
			t.Fatalf("workers=%d: failing experiment did not surface", workers)
		}
		if !strings.Contains(err.Error(), failID) || !strings.Contains(err.Error(), errTestFailure.Error()) {
			t.Errorf("workers=%d error = %v, want the ID-order-first failure (%s)", workers, err, failID)
		}
	}
}

// errTestFailure is the sentinel the transient failing experiment returns.
var errTestFailure = errInjected{}

type errInjected struct{}

func (errInjected) Error() string { return "injected test failure" }
