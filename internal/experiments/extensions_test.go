package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestExtSAAShape(t *testing.T) {
	tables, err := ExtSAA()
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("got %d orbits", len(rows))
	}
	// Equatorial orbit never enters the anomaly; inclined ones do.
	if rows[0][1] != "0.000" {
		t.Errorf("equatorial SAA fraction = %s, want 0.000", rows[0][1])
	}
	iss, err := strconv.ParseFloat(rows[1][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if iss < 0.01 || iss > 0.15 {
		t.Errorf("ISS-like SAA fraction = %v", iss)
	}
	// Pausing beats flat software hardening for every LEO orbit here.
	for _, row := range rows {
		pause, _ := strconv.ParseFloat(row[2], 64)
		sw, _ := strconv.ParseFloat(row[3], 64)
		if pause <= sw {
			t.Errorf("%s: pause capacity %v should beat software %v", row[0], pause, sw)
		}
	}
}

func TestExtLifetimeShape(t *testing.T) {
	tables, err := ExtLifetime()
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	// Boost budget decreases with altitude.
	prev := 1e18
	for _, row := range rows[:3] {
		dv, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if dv >= prev {
			t.Errorf("boost budget not decreasing: %v after %v", dv, prev)
		}
		prev = dv
	}
	// GEO graveyard burn is cheap.
	if !strings.Contains(rows[3][3], "graveyard") {
		t.Error("GEO row should retire to graveyard")
	}
}

func TestExtSchedTradeoffShape(t *testing.T) {
	tables, err := ExtScheduler()
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("got %d batch policies", len(rows))
	}
	// Latency grows with batch; J/frame is minimized at the calibrated
	// optimum (batch 16 for FD on the 3090), not at batch 1.
	lat1, _ := strconv.ParseFloat(rows[0][2], 64)
	lat16, _ := strconv.ParseFloat(rows[2][2], 64)
	if lat16 <= lat1 {
		t.Errorf("batch-16 latency %v should exceed batch-1 %v", lat16, lat1)
	}
	j1, _ := strconv.ParseFloat(rows[0][4], 64)
	j16, _ := strconv.ParseFloat(rows[2][4], 64)
	j32, _ := strconv.ParseFloat(rows[3][4], 64)
	if j16 >= j1 {
		t.Errorf("batch-16 J/frame %v should beat batch-1 %v", j16, j1)
	}
	if j32 < j16 {
		t.Errorf("past the optimum, J/frame should rise: b32 %v vs b16 %v", j32, j16)
	}
}

func TestExtDisaggCrossover(t *testing.T) {
	tables, err := ExtDisaggregation()
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	// Short missions favor monolithic; long missions disaggregated.
	if rows[0][3] != "monolithic" {
		t.Errorf("3-year winner = %s", rows[0][3])
	}
	last := rows[len(rows)-1]
	if last[3] != "disaggregated" {
		t.Errorf("25-year winner = %s", last[3])
	}
}

func TestExtRevisitMonotone(t *testing.T) {
	tables, err := ExtRevisit()
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, row := range tables[0].Rows {
		n, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Errorf("tighter revisit needs fewer satellites? %v", tables[0].Rows)
		}
		prev = n
	}
	// The 10-minute EarthNow-style goal implies a huge fleet.
	if prev < 100 {
		t.Errorf("10-minute revisit needs %d satellites, want hundreds", prev)
	}
}

func TestExtThermalAndPowerRun(t *testing.T) {
	for _, f := range []Runner{ExtThermal, ExtPower} {
		tables, err := f()
		if err != nil {
			t.Fatal(err)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Errorf("%s produced no rows", tb.ID)
			}
		}
	}
}
