package experiments

import (
	"fmt"

	"spacedc/internal/isl"
	"spacedc/internal/netsim"
	"spacedc/internal/report"
	"spacedc/internal/units"
)

var _ = register("ext-multishell", "multi-shell constellations: shell count × inter-shell topology × fault campaign", ExtMultishell)

// multishellShellSats is the tapered shell population: higher shells carry
// fewer satellites (coverage thins with altitude), which also makes the
// aligned and nearest cross-link rules genuinely different pairings.
var multishellShellSats = []int{16, 12, 8}

// multishellSpec stacks `shells` tapered K=4 clusters at 550 + 250·i km,
// wired by the given inter-shell rule (one cross-link pair per satellite
// of the smaller shell). One shell is the single-shell baseline the stack
// must subsume.
func multishellSpec(shells int, kind netsim.InterShellKind) netsim.TopologySpec {
	if shells == 1 {
		return netsim.TopologySpec{
			Kind:     netsim.ClusterTopology,
			Sats:     multishellShellSats[0],
			Cluster:  isl.Topology{K: 4, Split: 1},
			Tech:     isl.Optical10G,
			LowAltKm: 550,
		}
	}
	ts := netsim.TopologySpec{Kind: netsim.ClusterTopology, Tech: isl.Optical10G}
	for i := 0; i < shells; i++ {
		ts.Shells = append(ts.Shells, netsim.ShellSpec{
			Sats:    multishellShellSats[i],
			Cluster: isl.Topology{K: 4, Split: 1},
			AltKm:   550 + 250*float64(i),
		})
		if i > 0 {
			ts.InterShell = append(ts.InterShell, netsim.InterShellRule{Kind: kind})
		}
	}
	return ts
}

// ExtMultishell sweeps the multi-shell topology driver over a shell-count ×
// inter-shell-topology × fault-campaign grid: 1–3 shells of the 16-sat K=4
// cluster (each shell at its own altitude with its own eclipse/orbital
// geometry), index-aligned vs nearest-phase cross-links, under no faults, a
// 5% link-outage regime, and whole-satellite failures. Cross-shell links
// give traffic a detour through the neighboring shell when its own fabric
// is cut, which shows up as delivery ratio recovered per added shell.
func ExtMultishell() ([]report.Table, error) {
	t := report.Table{
		ID:    "ext-multishell",
		Title: "Multi-shell constellations: tapered 16/12/8-sat K=4 shells at 550+250i km with inter-shell ISLs (10 Gbit/s, 1 Gbit/s per sat)",
		Note: "cross-links pair satellites between adjacent shells (aligned: by index; nearest: by orbital phase); " +
			"cross-link capacity derates with the altitude gap and latency is gap/c",
		Columns: []string{"design", "faults", "sats", "cross links", "delivered", "ratio",
			"p95 latency (s)", "route repairs", "drops"},
	}
	type design struct {
		name   string
		shells int
		kind   netsim.InterShellKind
	}
	designs := []design{
		{"1-shell", 1, netsim.InterShellAligned},
		{"2-shell/aligned", 2, netsim.InterShellAligned},
		{"2-shell/nearest", 2, netsim.InterShellNearest},
		{"3-shell/aligned", 3, netsim.InterShellAligned},
		{"3-shell/nearest", 3, netsim.InterShellNearest},
	}
	campaigns := []struct {
		name   string
		faults netsim.FaultConfig
	}{
		{"none", netsim.FaultConfig{}},
		{"link-5%", netsim.FaultConfig{LinkOutage: 0.05, LinkMTTRSec: 30}},
		{"sat-fail", netsim.FaultConfig{SatMTBFSec: 300, SatMTTRSec: 60}},
	}

	type rowMeta struct {
		design, campaign string
		sats, cross      int
	}
	var scenarios []netsim.Scenario
	var metas []rowMeta
	for _, d := range designs {
		spec := multishellSpec(d.shells, d.kind)
		g, err := netsim.BuildGraph(spec)
		if err != nil {
			return nil, err
		}
		sats := 0
		for _, n := range multishellShellSats[:d.shells] {
			sats += n
		}
		for _, c := range campaigns {
			scenarios = append(scenarios, netsim.Scenario{
				Name:        d.name + "/" + c.name,
				Topology:    spec,
				PerSat:      units.Gbps,
				SegmentBits: 10e6,
				StepSec:     0.1,
				EpochSec:    30,
				DurationSec: 60,
				WarmupSec:   10,
				Faults:      c.faults,
				Seed:        1,
			})
			metas = append(metas, rowMeta{
				design: d.name, campaign: c.name,
				sats: sats, cross: g.CrossShellLinks(),
			})
		}
	}
	// Sweep fans the grid over pool.Shared() with ID-ordered reassembly, so
	// the table is bit-identical at any -workers count.
	for i, sr := range netsim.Sweep(scenarios, 0) {
		if sr.Err != nil {
			return nil, sr.Err
		}
		r := sr.Result
		m := metas[i]
		t.AddRow(m.design, m.campaign, m.sats, m.cross,
			r.DeliveredRate.String(),
			fmt.Sprintf("%.3f", r.DeliveryRatio),
			fmt.Sprintf("%.2f", r.LatencySec.P95),
			r.RouteRepairs,
			r.LinkDrops+r.NoRouteDrops)
	}
	return []report.Table{t}, nil
}
