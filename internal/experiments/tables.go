package experiments

import (
	"errors"
	"fmt"

	"spacedc/internal/apps"
	"spacedc/internal/compress"
	"spacedc/internal/constellation"
	"spacedc/internal/core"
	"spacedc/internal/datagen"
	"spacedc/internal/discard"
	"spacedc/internal/eoimage"
	"spacedc/internal/gpusim"
	"spacedc/internal/groundstation"
	"spacedc/internal/isl"
	"spacedc/internal/pool"
	"spacedc/internal/report"
	"spacedc/internal/units"
)

var _ = register("table1", "current and planned LEO EO constellations", Table1)

// Table1 reproduces the paper's Table 1: LEO EO constellations and their
// resolution goals.
func Table1() ([]report.Table, error) {
	t := report.Table{
		ID:      "table1",
		Title:   "Current and planned LEO EO constellations",
		Columns: []string{"company", "constellation", "# sats", "form factor", "imaging", "spatial res", "temporal res"},
	}
	for _, m := range constellation.Table1() {
		temporal := "continuous"
		if m.TemporalResSec > 0 {
			switch {
			case m.TemporalResSec >= 86400:
				temporal = fmt.Sprintf("%.3g d", m.TemporalResSec/86400)
			case m.TemporalResSec >= 3600:
				temporal = fmt.Sprintf("%.3g h", m.TemporalResSec/3600)
			default:
				temporal = fmt.Sprintf("%.3g min", m.TemporalResSec/60)
			}
		}
		t.AddRow(m.Company, m.Constellation, m.SatelliteCount, m.FormFactor,
			m.Imaging, datagen.ResolutionLabel(m.SpatialResM), temporal)
	}
	return []report.Table{t}, nil
}

var _ = register("table2", "Ground Station as a Service providers", Table2)

// Table2 reproduces the paper's Table 2: GSaaS ground stations by region.
func Table2() ([]report.Table, error) {
	t := report.Table{
		ID:      "table2",
		Title:   "Ground Station as a Service providers",
		Note:    fmt.Sprintf("total %d stations worldwide — orders of magnitude short of Fig 4b's channel counts", groundstation.TotalStations()),
		Columns: []string{"service", "N.Am", "S.Am", "Africa", "Eur/MENA", "Asia/Pac", "Antarctica", "total"},
	}
	for _, p := range groundstation.Table2() {
		t.AddRow(p.Name, p.NorthAmerica, p.SouthAmerica, p.Africa, p.EuropeMENA, p.AsiaPacific, p.Antarctica, p.Total())
	}
	return []report.Table{t}, nil
}

var _ = register("table3", "achievable early-discard rates and ECRs", Table3)

// Table3 reproduces the paper's Table 3: achievable early-discard rates and
// their effective compression ratios.
func Table3() ([]report.Table, error) {
	t := report.Table{
		ID:      "table3",
		Title:   "Achievable early-discard rates and ECRs",
		Note:    "combining is limited by conditional dependence; best independent combo ≈100×",
		Columns: []string{"criterion", "discard rate", "ECR"},
	}
	for _, c := range discard.Table3() {
		if err := c.ValidateRate(); err != nil {
			return nil, err
		}
		t.AddRow(c.Name, c.Rate, c.ECR())
	}
	combined := discard.CombineIndependent(discard.Night, discard.NonBuiltUp)
	t.AddRow(combined.Name+" (combined)", combined.Rate, combined.ECR())
	return []report.Table{t}, nil
}

var _ = register("table4", "lossless compression ratios on synthetic EO imagery", Table4)

// Table4 reproduces the paper's Table 4: lossless compression ratios on RGB
// and SAR imagery, measured on synthetic scenes with the statistics of the
// CrowdAI (urban RGB) and xView3 (maritime SAR) datasets.
func Table4() ([]report.Table, error) {
	// The two imagery suites are independent end to end (scene synthesis
	// plus codec sweep), so they run as sub-jobs on the shared pool and
	// reassemble in row order — bit-identical output at any worker count.
	var rgbResults, sarResults []compress.Result
	err := pool.Map(2, 0, func(i int) error {
		if i == 0 {
			rgbScene, err := eoimage.Generate(eoimage.Config{
				Width: 384, Height: 384, Seed: 42, Kind: eoimage.Urban, CloudFraction: 0.3})
			if err != nil {
				return err
			}
			rgbResults, err = compress.MeasureSuite(rgbScene.Width, rgbScene.Height, compress.RGB8, rgbScene.Interleaved())
			return err
		}
		sarScene, err := eoimage.GenerateSAR(eoimage.SARConfig{
			Width: 384, Height: 384, Seed: 42, ShipCount: 8,
			NoDataBorder: 110, QuantStep: 64, SpeckleLooks: 32})
		if err != nil {
			return err
		}
		sarResults, err = compress.MeasureSuite(sarScene.Width, sarScene.Height, compress.Gray16, sarScene.Bytes())
		return err
	})
	if err != nil {
		return nil, err
	}

	t := report.Table{
		ID:    "table4",
		Title: "Lossless compression ratios on synthetic EO imagery",
		Note: "RGB: urban scene (CrowdAI regime); SAR: quiet maritime scene (xView3 regime). " +
			"Round trips verified; paper shape: RGB < 4×, SAR orders of magnitude higher, CCSDS trails on SAR",
		Columns: []string{"imagery"},
	}
	for _, r := range rgbResults {
		t.Columns = append(t.Columns, r.Codec)
	}
	rgbRow := []interface{}{"RGB"}
	for _, r := range rgbResults {
		rgbRow = append(rgbRow, fmt.Sprintf("%.2f", r.Ratio))
	}
	t.AddRow(rgbRow...)
	sarRow := []interface{}{"SAR"}
	for _, r := range sarResults {
		sarRow = append(sarRow, fmt.Sprintf("%.1f", r.Ratio))
	}
	t.AddRow(sarRow...)
	return []report.Table{t}, nil
}

var _ = register("table5", "applications which consume satellite imagery", Table5)

// Table5 reproduces the paper's Table 5: the ten EO applications.
func Table5() ([]report.Table, error) {
	t := report.Table{
		ID:      "table5",
		Title:   "Applications which consume satellite imagery",
		Note:    fmt.Sprintf("complexity spread AD/TM = %.3g× (paper: >1e5)", apps.ComplexitySpreadFactor()),
		Columns: []string{"id", "application", "imagery", "kernel", "FLOPs/pixel"},
	}
	for _, a := range apps.All() {
		t.AddRow(string(a.ID), a.Name, a.Imagery.String(), a.Kernel, a.FLOPsPerPixel)
	}
	return []report.Table{t}, nil
}

var _ = register("table6", "application results at energy-optimal batch size", Table6)

// Table6 reproduces the paper's Table 6 from the calibrated device models:
// each model's optimal-batch operating point on the RTX 3090 and Jetson
// AGX Xavier.
func Table6() ([]report.Table, error) {
	t := report.Table{
		ID:      "table6",
		Title:   "Application results at energy-optimal batch size",
		Note:    "from the gpusim batch-response model; PS could not be mapped to the Xavier",
		Columns: []string{"app", "device", "power", "util %", "infer time (s)", "kpixel/s/W"},
	}
	for _, dev := range []gpusim.Device{gpusim.RTX3090, gpusim.JetsonXavier} {
		for _, id := range apps.IDs() {
			model, err := gpusim.NewModel(id, dev)
			if err != nil {
				if errors.Is(err, gpusim.ErrUnsupported) {
					t.AddRow(string(id), dev.Name, "x", "x", "x", "x")
					continue
				}
				return nil, err
			}
			b := model.OptimalBatch()
			t.AddRow(string(id), dev.Name,
				model.Power(b).String(),
				fmt.Sprintf("%.1f", model.Utilization(b)*100),
				fmt.Sprintf("%.2f", model.InferTime(b)),
				fmt.Sprintf("%.0f", model.EnergyEfficiency(b)))
		}
	}
	return []report.Table{t}, nil
}

var _ = register("table7", "application throughput and power on candidate devices", Table7)

// Table7 reproduces the paper's Table 7: satellite classes and the
// applications each can support at 10 cm with 0% and 95% early discard,
// computed from the Xavier power model.
func Table7() ([]report.Table, error) {
	t := report.Table{
		ID:      "table7",
		Title:   "Satellite capabilities by weight class (apps supported at 10 cm)",
		Note:    "Jetson AGX Xavier efficiency; parentheses column uses 95% early discard",
		Columns: []string{"class", "power budget", "apps @ 0% ED", "apps @ 95% ED"},
	}
	for _, cls := range constellation.Classes() {
		list0, err := supportedApps(cls.MaxPower, 0.1, 0)
		if err != nil {
			return nil, err
		}
		list95, err := supportedApps(cls.MaxPower, 0.1, 0.95)
		if err != nil {
			return nil, err
		}
		t.AddRow(cls.Name, fmt.Sprintf("%v-%v", cls.MinPower, cls.MaxPower),
			join(list0), join(list95))
	}
	return []report.Table{t}, nil
}

// supportedApps lists the app IDs runnable within budget at (res, ed).
func supportedApps(budget units.Power, resM, ed float64) ([]string, error) {
	var out []string
	for _, id := range apps.IDs() {
		ok, err := core.SupportedOnBudget(id, gpusim.JetsonXavier, datagen.Default4K, resM, ed, budget)
		if err != nil {
			if errors.Is(err, gpusim.ErrUnsupported) {
				continue
			}
			return nil, err
		}
		if ok {
			out = append(out, string(id))
		}
	}
	return out, nil
}

// join renders an app list, or "-" when empty.
func join(ids []string) string {
	if len(ids) == 0 {
		return "-"
	}
	out := ids[0]
	for _, s := range ids[1:] {
		out += "," + s
	}
	return out
}

var _ = register("table8", "ISL capacity against cluster aggregate demand", Table8)

// Table8 reproduces the paper's Table 8: EO satellites supportable by a
// single ring-topology SµDC across data rates and ISL capacities.
func Table8() ([]report.Table, error) {
	t := report.Table{
		ID:      "table8",
		Title:   "EO satellites supportable by one SµDC (ring topology)",
		Note:    "per-satellite rate: DCI-4K frame (318.5 Mbit) every 1.5 s, scaled by resolution² and (1-ED)",
		Columns: []string{"resolution", "early discard", "1 Gbit/s", "10 Gbit/s", "100 Gbit/s"},
	}
	for _, res := range datagen.StandardResolutions {
		for _, ed := range datagen.StandardDiscardRates {
			rate := datagen.Default4K.DataRate(res, ed)
			row := []interface{}{datagen.ResolutionLabel(res), fmt.Sprintf("%.2f", ed)}
			for _, cap := range isl.Table8Capacities {
				row = append(row, isl.SupportableEOSats(cap, rate, 2))
			}
			t.AddRow(row...)
		}
	}
	return []report.Table{t}, nil
}

var _ = register("table9", "SuDC compute density vs terrestrial datacenters", Table9)

// Table9 reproduces the paper's Table 9: the strategy comparison.
func Table9() ([]report.Table, error) {
	t := report.Table{
		ID:      "table9",
		Title:   "Comparison of downlink-deficit mitigation strategies",
		Columns: []string{"property", "SµDCs", "Homogeneous Compute", "Compression", "RF Comms"},
	}
	rows := core.Table9()
	get := func(name string) core.Strategy {
		for _, r := range rows {
			if r.Name == name {
				return r
			}
		}
		return core.Strategy{}
	}
	names := []string{"SµDCs", "Homogeneous Compute", "Compression", "RF Comms"}
	yesNo := func(b bool) string {
		if b {
			return "Yes"
		}
		return "No"
	}
	props := []struct {
		label string
		value func(core.Strategy) bool
	}{
		{"Scales to future resolution targets", func(s core.Strategy) bool { return s.ScalesToFutureRes }},
		{"High power", func(s core.Strategy) bool { return s.HighPower }},
		{"Requires ISLs", func(s core.Strategy) bool { return s.RequiresISLs }},
		{"Adaptive to mission changes", func(s core.Strategy) bool { return s.AdaptiveToMission }},
	}
	for _, p := range props {
		row := []interface{}{p.label}
		for _, n := range names {
			row = append(row, yesNo(p.value(get(n))))
		}
		t.AddRow(row...)
	}
	return []report.Table{t}, nil
}
