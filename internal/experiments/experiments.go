// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver runs the relevant models end-to-end and
// returns a report.Table with the same rows/series the paper reports, so
// the experiment record (EXPERIMENTS.md), the sudcsim CLI, the sudcsimd
// evaluation daemon, and the benchmark harness all share one
// implementation.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"spacedc/internal/datagen"
	"spacedc/internal/obs"
	"spacedc/internal/pool"
	"spacedc/internal/report"
)

// Epoch is the fixed reference epoch all orbital experiments use, chosen
// near an equinox so eclipse geometry is representative.
var Epoch = time.Date(2026, 3, 20, 0, 0, 0, 0, time.UTC)

// Mission64 is the paper's study constellation: 64 EO satellites producing
// the Default4K frame stream.
var Mission64 = datagen.Mission{Frame: datagen.Default4K, Satellites: 64}

// Runner produces one experiment's table(s).
type Runner func() ([]report.Table, error)

// All is the pseudo-ID that sweeps the entire registry in ID order. It is
// dispatched by Run/RunWorkers like any single experiment, so callers (the
// sudcsim CLI, the sudcsimd daemon) never special-case the full sweep.
const All = "all"

// Info is one registered experiment's metadata.
type Info struct {
	ID          string
	Description string
}

// entry pairs a runner with its metadata.
type entry struct {
	runner Runner
	desc   string
}

// registry maps experiment IDs to runners plus metadata.
var registry = map[string]entry{}

// register adds a runner; drivers call it from file-scope var blocks.
func register(id, desc string, r Runner) struct{} {
	registry[id] = entry{runner: r, desc: desc}
	return struct{}{}
}

// IDs returns all experiment IDs in sorted order (the All pseudo-ID is not
// listed; it is a dispatch alias, not an experiment).
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// List returns ID+description metadata for every registered experiment in
// ID order — the /v1/experiments listing and the sudcsim usage text.
func List() []Info {
	infos := make([]Info, 0, len(registry))
	for _, id := range IDs() {
		infos = append(infos, Info{ID: id, Description: registry[id].desc})
	}
	return infos
}

// Run executes one experiment by ID (or the full sweep for All) on the
// calling goroutine, honouring ctx cancellation between experiments.
func Run(ctx context.Context, id string) ([]report.Table, error) {
	return RunWorkers(ctx, nil, id, 1)
}

// RunWorkers is the single dispatch point under every frontend: it
// executes experiment id — or the full registry sweep when id is All —
// with optional observability and pool-level parallelism.
//
// For the All sweep the experiment IDs fan out as jobs on the shared
// worker pool (internal/pool) and the tables are reassembled in ID order,
// so the output is bit-identical to a serial sweep for any worker count.
// workers ≤ 0 means one slot per CPU; workers=1 claims every experiment on
// the calling goroutine. Every driver owns all of its state (the registry
// map is read-only after init and the obs handles are concurrency-safe),
// so experiments only share the result slot each job writes. Drivers that
// fan out internally (ext-netsim's scenario sweep, ext-lossy's quant grid,
// table4's imagery suites) schedule their sub-jobs into the same shared
// pool, so the whole tree of work competes for one global token budget:
// experiment-level and sub-experiment-level parallelism compose without
// oversubscribing the machine.
//
// Cancellation is checked at experiment boundaries: a Done ctx stops new
// experiments from starting (in-flight drivers run to completion, keeping
// their deterministic state intact) and surfaces as the lowest-ID
// ctx error. Like any failure in the pooled sweep, the error reported is
// the one that comes first in ID order — independent of scheduling.
func RunWorkers(ctx context.Context, reg *obs.Registry, id string, workers int) ([]report.Table, error) {
	if id != All {
		tables, err := runOne(ctx, reg, id)
		if err != nil {
			return nil, err
		}
		return tables, nil
	}

	ids := IDs()
	span := reg.StartSpan("experiments.runall")
	defer span.End()
	type outcome struct {
		tables []report.Table
		err    error
	}
	results := make([]outcome, len(ids))
	pool.MapObs(len(ids), workers, reg, "experiments.pool", func(i int) error {
		tables, err := runOne(ctx, reg, ids[i])
		results[i] = outcome{tables: tables, err: err}
		return nil
	})
	var out []report.Table
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", ids[i], r.err)
		}
		out = append(out, r.tables...)
	}
	return out, nil
}

// runOne executes one registered experiment, recording a per-experiment
// span ("experiments.<id>", wall time when reg runs on the wall clock)
// plus completion and table-count counters. A nil registry costs one nil
// check. A Done ctx refuses to start the run.
func runOne(ctx context.Context, reg *obs.Registry, id string) ([]report.Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	if err := ctx.Err(); err != nil {
		reg.Counter("experiments.canceled").Inc()
		return nil, err
	}
	span := reg.StartSpan("experiments." + id)
	tables, err := e.runner()
	span.End()
	if err != nil {
		reg.Counter("experiments.failed").Inc()
		return nil, err
	}
	reg.Counter("experiments.completed").Inc()
	reg.Counter("experiments.tables").Add(len(tables))
	return tables, nil
}

// RunAll executes every experiment serially in ID order.
func RunAll() ([]report.Table, error) {
	return RunWorkers(context.Background(), nil, All, 1)
}

// RunAllObs executes every experiment serially in ID order with
// observability. It reports the lowest-ID failure.
func RunAllObs(reg *obs.Registry) ([]report.Table, error) {
	return RunWorkers(context.Background(), reg, All, 1)
}

// RunAllWorkers executes every experiment across a pool of workers.
func RunAllWorkers(workers int) ([]report.Table, error) {
	return RunWorkers(context.Background(), nil, All, workers)
}

// RunAllObsWorkers is the pooled RunAllObs; see RunWorkers.
func RunAllObsWorkers(reg *obs.Registry, workers int) ([]report.Table, error) {
	return RunWorkers(context.Background(), reg, All, workers)
}
