// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver runs the relevant models end-to-end and
// returns a report.Table with the same rows/series the paper reports, so
// the experiment record (EXPERIMENTS.md), the sudcsim CLI, and the
// benchmark harness all share one implementation.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"spacedc/internal/datagen"
	"spacedc/internal/obs"
	"spacedc/internal/report"
)

// Epoch is the fixed reference epoch all orbital experiments use, chosen
// near an equinox so eclipse geometry is representative.
var Epoch = time.Date(2026, 3, 20, 0, 0, 0, 0, time.UTC)

// Mission64 is the paper's study constellation: 64 EO satellites producing
// the Default4K frame stream.
var Mission64 = datagen.Mission{Frame: datagen.Default4K, Satellites: 64}

// Runner produces one experiment's table(s).
type Runner func() ([]report.Table, error)

// registry maps experiment IDs to runners.
var registry = map[string]Runner{}

// register adds a runner; drivers call it from file-scope var blocks.
func register(id string, r Runner) struct{} {
	registry[id] = r
	return struct{}{}
}

// IDs returns all experiment IDs in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string) ([]report.Table, error) {
	return RunObs(id, nil)
}

// RunObs executes one experiment by ID, recording a per-experiment span
// ("experiments.<id>", wall time when reg runs on the wall clock) plus
// completion and table-count counters. A nil registry costs one nil check.
func RunObs(id string, reg *obs.Registry) ([]report.Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	span := reg.StartSpan("experiments." + id)
	tables, err := r()
	span.End()
	if err != nil {
		reg.Counter("experiments.failed").Inc()
		return nil, err
	}
	reg.Counter("experiments.completed").Inc()
	reg.Counter("experiments.tables").Add(len(tables))
	return tables, nil
}

// RunAll executes every experiment in ID order.
func RunAll() ([]report.Table, error) {
	return RunAllObs(nil)
}

// RunAllObs executes every experiment in ID order, timing the whole sweep
// ("experiments.runall") and each experiment individually via RunObs.
func RunAllObs(reg *obs.Registry) ([]report.Table, error) {
	span := reg.StartSpan("experiments.runall")
	defer span.End()
	var out []report.Table
	for _, id := range IDs() {
		tables, err := RunObs(id, reg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, tables...)
	}
	return out, nil
}
