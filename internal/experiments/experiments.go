// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver runs the relevant models end-to-end and
// returns a report.Table with the same rows/series the paper reports, so
// the experiment record (EXPERIMENTS.md), the sudcsim CLI, and the
// benchmark harness all share one implementation.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"spacedc/internal/datagen"
	"spacedc/internal/obs"
	"spacedc/internal/pool"
	"spacedc/internal/report"
)

// Epoch is the fixed reference epoch all orbital experiments use, chosen
// near an equinox so eclipse geometry is representative.
var Epoch = time.Date(2026, 3, 20, 0, 0, 0, 0, time.UTC)

// Mission64 is the paper's study constellation: 64 EO satellites producing
// the Default4K frame stream.
var Mission64 = datagen.Mission{Frame: datagen.Default4K, Satellites: 64}

// Runner produces one experiment's table(s).
type Runner func() ([]report.Table, error)

// registry maps experiment IDs to runners.
var registry = map[string]Runner{}

// register adds a runner; drivers call it from file-scope var blocks.
func register(id string, r Runner) struct{} {
	registry[id] = r
	return struct{}{}
}

// IDs returns all experiment IDs in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string) ([]report.Table, error) {
	return RunObs(id, nil)
}

// RunObs executes one experiment by ID, recording a per-experiment span
// ("experiments.<id>", wall time when reg runs on the wall clock) plus
// completion and table-count counters. A nil registry costs one nil check.
func RunObs(id string, reg *obs.Registry) ([]report.Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	span := reg.StartSpan("experiments." + id)
	tables, err := r()
	span.End()
	if err != nil {
		reg.Counter("experiments.failed").Inc()
		return nil, err
	}
	reg.Counter("experiments.completed").Inc()
	reg.Counter("experiments.tables").Add(len(tables))
	return tables, nil
}

// RunAll executes every experiment serially in ID order.
func RunAll() ([]report.Table, error) {
	return RunAllObs(nil)
}

// RunAllObs executes every experiment serially in ID order, timing the
// whole sweep ("experiments.runall") and each experiment individually via
// RunObs. It stops at the first failure.
func RunAllObs(reg *obs.Registry) ([]report.Table, error) {
	span := reg.StartSpan("experiments.runall")
	defer span.End()
	var out []report.Table
	for _, id := range IDs() {
		tables, err := RunObs(id, reg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, tables...)
	}
	return out, nil
}

// RunAllWorkers executes every experiment across a pool of workers.
func RunAllWorkers(workers int) ([]report.Table, error) {
	return RunAllObsWorkers(nil, workers)
}

// RunAllObsWorkers is the pooled RunAllObs: the experiment IDs fan out as
// jobs on the shared worker pool (internal/pool) and the tables are
// reassembled in ID order, so the output is bit-identical to the serial
// sweep for any worker count. workers ≤ 0 means one slot per CPU;
// workers=1 claims every experiment on the calling goroutine.
//
// Every driver owns all of its state (the registry map is read-only after
// init and the obs handles are concurrency-safe), so experiments only
// share the result slot each job writes. Each pool slot additionally
// records its wall-clock run timings into
// "experiments.pool.workerNN.run_secs" and its completed-run count into
// "experiments.pool.workerNN.runs", exposing pool imbalance.
//
// Drivers that fan out internally (ext-netsim's scenario sweep,
// ext-lossy's quant grid, table4's imagery suites) schedule their sub-jobs
// into the same shared pool, so the whole tree of work competes for one
// global token budget: experiment-level and sub-experiment-level
// parallelism compose without oversubscribing the machine, which is what
// lifts the sweep past the Amdahl bound a long opaque experiment imposes.
//
// Unlike the serial sweep, the pool runs every experiment even when one
// fails (the failure surfaces only after reassembly), and the error
// returned is the failing experiment that comes first in ID order — again
// independent of scheduling.
func RunAllObsWorkers(reg *obs.Registry, workers int) ([]report.Table, error) {
	ids := IDs()
	span := reg.StartSpan("experiments.runall")
	defer span.End()
	type outcome struct {
		tables []report.Table
		err    error
	}
	results := make([]outcome, len(ids))
	pool.MapObs(len(ids), workers, reg, "experiments.pool", func(i int) error {
		tables, err := RunObs(ids[i], reg)
		results[i] = outcome{tables: tables, err: err}
		return nil
	})
	var out []report.Table
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", ids[i], r.err)
		}
		out = append(out, r.tables...)
	}
	return out, nil
}
