package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig11", "fig13", "fig14", "fig15", "fig16",
		"table1", "table2", "table3", "table4", "table5", "table6",
		"table7", "table8", "table9",
		"ext-saa", "ext-lifetime", "ext-thermal", "ext-power",
		"ext-disagg", "ext-sched", "ext-revisit", "ext-fleet", "ext-latency",
		"ext-lossy", "ext-detect", "ext-netsim", "ext-resilience",
		"ext-workload", "ext-optimize", "ext-multishell",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run(context.Background(), "fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, "fig2"); err != context.Canceled {
		t.Errorf("canceled run err = %v, want context.Canceled", err)
	}
	if _, err := Run(ctx, All); err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("canceled sweep err = %v, want wrapped context.Canceled", err)
	}
}

func TestListMatchesIDs(t *testing.T) {
	infos := List()
	ids := IDs()
	if len(infos) != len(ids) {
		t.Fatalf("List has %d entries, IDs has %d", len(infos), len(ids))
	}
	for i, info := range infos {
		if info.ID != ids[i] {
			t.Errorf("List[%d].ID = %s, want %s", i, info.ID, ids[i])
		}
		if info.Description == "" {
			t.Errorf("%s has no description", info.ID)
		}
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped in -short")
	}
	tables, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < len(IDs()) {
		t.Fatalf("got %d tables for %d experiments", len(tables), len(IDs()))
	}
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" {
			t.Errorf("table missing identity: %+v", tb.Columns)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s (%s): no rows", tb.ID, tb.Title)
		}
		for i, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Errorf("%s row %d has %d cells, want %d", tb.ID, i, len(row), len(tb.Columns))
			}
		}
		if tb.String() == "" {
			t.Errorf("%s renders empty", tb.ID)
		}
	}
}

// cell parses an integer table cell, stripping the bottleneck marker.
func cell(t *testing.T, s string) int {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSpace(s), "*")
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestFig9HeadlineCells(t *testing.T) {
	tables, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	// Columns: app, then 16 cells; find "1 m/95%".
	col := -1
	for i, c := range tb.Columns {
		if c == "1 m/95%" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("1 m/95%% column missing: %v", tb.Columns)
	}
	exceed := 0
	for _, row := range tb.Rows {
		if cell(t, row[col]) > 1 {
			exceed++
			if row[0] != "PS" {
				t.Errorf("%s needs %s SµDCs at 1 m/95%%", row[0], row[col])
			}
		}
	}
	if exceed != 1 {
		t.Errorf("%d apps exceed one SµDC at 1 m/95%%, want 1 (PS)", exceed)
	}
}

func TestFig14BeatsFig9Everywhere(t *testing.T) {
	f9, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	f14, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	r9, r14 := f9[0].Rows, f14[0].Rows
	if len(r9) != len(r14) {
		t.Fatal("row count mismatch")
	}
	for i := range r9 {
		for j := 1; j < len(r9[i]); j++ {
			if cell(t, r14[i][j]) > cell(t, r9[i][j]) {
				t.Errorf("row %s col %d: AI100 (%s) worse than 3090 (%s)",
					r9[i][0], j, r14[i][j], r9[i][j])
			}
		}
	}
}

func TestFig16RedundancyDominatesSoftware(t *testing.T) {
	tables, err := Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Fig 16 has %d panels, want 3", len(tables))
	}
	sw, dual, triple := tables[0], tables[1], tables[2]
	for i := range sw.Rows {
		for j := 1; j < len(sw.Rows[i]); j++ {
			s, d, tr := cell(t, sw.Rows[i][j]), cell(t, dual.Rows[i][j]), cell(t, triple.Rows[i][j])
			if d < s || tr < d {
				t.Errorf("row %s col %d: counts not ordered sw=%d dual=%d triple=%d",
					sw.Rows[i][0], j, s, d, tr)
			}
		}
	}
}

func TestFig15AllGapsZero(t *testing.T) {
	tables, err := Fig15()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[1] != "0s" {
			t.Errorf("%s has coverage gap %s, want 0s", row[0], row[1])
		}
	}
}

func TestTable8FirstCellMatchesPaper(t *testing.T) {
	tables, err := Table8()
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	// First row: 3 m, ED 0 → 9, 94, 941 (paper: 9, 98, 992).
	if tb.Rows[0][2] != "9" {
		t.Errorf("3 m / 0 ED / 1 Gb/s = %s, want 9", tb.Rows[0][2])
	}
}

func TestTable4SARBeatsRGB(t *testing.T) {
	if testing.Short() {
		t.Skip("compression suite is slow")
	}
	tables, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("Table 4 rows = %d", len(tb.Rows))
	}
	// Zip column: find by name.
	zipCol := -1
	for i, c := range tb.Columns {
		if c == "Zip" {
			zipCol = i
		}
	}
	if zipCol < 0 {
		t.Fatal("Zip column missing")
	}
	var rgb, sar float64
	if _, err := fmtSscan(tb.Rows[0][zipCol], &rgb); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tb.Rows[1][zipCol], &sar); err != nil {
		t.Fatal(err)
	}
	if sar < 10*rgb {
		t.Errorf("SAR Zip ratio %v should dwarf RGB %v", sar, rgb)
	}
	if rgb > 5 {
		t.Errorf("RGB lossless ratio %v implausible (paper < 4)", rgb)
	}
}

// fmtSscan wraps fmt.Sscan to keep the test import list tidy.
func fmtSscan(s string, v *float64) (int, error) {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, err
	}
	*v = f
	return 1, nil
}
