package experiments

import (
	"errors"
	"fmt"
	"math"
	"time"

	"spacedc/internal/apps"
	"spacedc/internal/core"
	"spacedc/internal/datagen"
	"spacedc/internal/gpusim"
	"spacedc/internal/isl"
	"spacedc/internal/orbit"
	"spacedc/internal/report"
)

var _ = register("fig8", "on-satellite compute power needed vs early discard", Fig8)

// Fig8 reproduces Fig 8: the compute power one EO satellite must carry to
// run each application on a Jetson AGX Xavier, across resolutions and
// early-discard rates.
func Fig8() ([]report.Table, error) {
	var tables []report.Table
	for _, ed := range datagen.StandardDiscardRates {
		t := report.Table{
			ID:      "fig8",
			Title:   fmt.Sprintf("On-satellite compute power needed (Jetson AGX Xavier, %.0f%% early discard)", ed*100),
			Note:    "satellite classes (Table 7): picosat ≤10 W, cubesat ≤30 W, microsat ≤210 W, smallsat ≤6.6 kW",
			Columns: []string{"app"},
		}
		for _, res := range datagen.StandardResolutions {
			t.Columns = append(t.Columns, datagen.ResolutionLabel(res))
		}
		for _, id := range apps.IDs() {
			row := []interface{}{string(id)}
			for _, res := range datagen.StandardResolutions {
				p, err := core.SatellitePowerNeeded(id, gpusim.JetsonXavier, datagen.Default4K, res, ed)
				if err != nil {
					if errors.Is(err, gpusim.ErrUnsupported) {
						row = append(row, "x")
						continue
					}
					return nil, err
				}
				row = append(row, p.String())
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// sweepSuDCTable renders a Fig 9/14/16-style sweep for a SµDC design.
func sweepSuDCTable(id, title, note string, s core.SuDC) (report.Table, error) {
	t := report.Table{ID: id, Title: title, Note: note, Columns: []string{"app"}}
	for _, res := range datagen.StandardResolutions {
		for _, ed := range datagen.StandardDiscardRates {
			t.Columns = append(t.Columns, fmt.Sprintf("%s/%.0f%%", datagen.ResolutionLabel(res), ed*100))
		}
	}
	for _, appID := range apps.IDs() {
		row := []interface{}{string(appID)}
		for _, res := range datagen.StandardResolutions {
			for _, ed := range datagen.StandardDiscardRates {
				w := core.Workload{App: appID, Mission: Mission64, ResolutionM: res, EarlyDiscard: ed}
				n, err := core.SuDCsNeeded(w, s)
				if err != nil {
					return report.Table{}, err
				}
				row = append(row, n)
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

var _ = register("fig9", "per-application compute power at energy-optimal batch", Fig9)

// Fig9 reproduces Fig 9: the number of RTX 3090-based 4 kW SµDCs needed
// per application across resolutions and early-discard rates.
func Fig9() ([]report.Table, error) {
	t, err := sweepSuDCTable("fig9",
		"4 kW SµDCs needed (RTX 3090), 64-satellite constellation",
		"headline: at 1 m / 95% ED a single SµDC supports all apps except PS", core.Default4kW())
	if err != nil {
		return nil, err
	}
	return []report.Table{t}, nil
}

var _ = register("fig14", "per-application compute power on GPU vs TPU-class devices", Fig14)

// Fig14 reproduces Fig 14: the same sweep with Qualcomm Cloud AI 100
// compute (18.25× the RTX 3090's energy efficiency).
func Fig14() ([]report.Table, error) {
	s := core.Default4kW()
	s.Device = gpusim.CloudAI100
	s.Name = "SµDC-4kW-AI100"
	t, err := sweepSuDCTable("fig14",
		"4 kW SµDCs needed (Qualcomm Cloud AI 100)",
		"energy-efficiency-focused architectures support more apps at finer resolutions", s)
	if err != nil {
		return nil, err
	}
	return []report.Table{t}, nil
}

var _ = register("fig16", "per-application energy per frame across devices", Fig16)

// Fig16 reproduces Fig 16: the impact of radiation-hardening strategy on
// SµDC count (software 20% overhead vs 2× and 3× redundancy).
func Fig16() ([]report.Table, error) {
	var tables []report.Table
	for _, h := range []core.Hardening{core.SoftwareHardening, core.DualRedundant, core.TripleRedundant} {
		s := core.Default4kW()
		s.Hardening = h
		t, err := sweepSuDCTable("fig16",
			fmt.Sprintf("4 kW SµDCs needed with %v hardening (RTX 3090)", h),
			"at coarse resolutions hardening is free; at fine resolutions redundancy multiplies the fleet", s)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

var _ = register("fig11", "clusters needed vs ISL capacity (ring topology)", Fig11)

// Fig11 reproduces Fig 11: clusters needed versus ISL capacity for 4 kW
// and 256 kW SµDCs in a ring topology, showing where ISL bottlenecks set
// the fleet size.
func Fig11() ([]report.Table, error) {
	const (
		res = 1.0
		ed  = 0.5
	)
	var tables []report.Table
	for _, s := range []core.SuDC{core.Default4kW(), core.StationClass256kW()} {
		t := report.Table{
			ID:    "fig11",
			Title: fmt.Sprintf("Clusters needed vs ISL capacity, %s (ring topology, 1 m / 50%% ED)", s.Name),
			Note:  "clusters = max(compute SµDCs, ISL-limited clusters); * marks ISL-bottlenecked",
			Columns: []string{"app", "compute SµDCs",
				"1 Gbit/s", "10 Gbit/s", "100 Gbit/s"},
		}
		for _, appID := range apps.IDs() {
			w := core.Workload{App: appID, Mission: Mission64, ResolutionM: res, EarlyDiscard: ed}
			row := []interface{}{string(appID)}
			var computeN int
			for i, cap := range isl.Table8Capacities {
				plan, err := core.PlanClusters(w, s, cap, 2)
				if err != nil {
					return nil, err
				}
				if i == 0 {
					computeN = plan.ComputeSuDCs
					row = append(row, computeN)
				}
				cell := fmt.Sprintf("%d", plan.Clusters)
				if plan.Bottleneck == isl.ISLBound {
					cell += "*"
				}
				row = append(row, cell)
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

var _ = register("fig13", "ISL capacity and transmit power vs k-list x SuDC splitting", Fig13)

// Fig13 reproduces Fig 13: total ISL communication capacity and transmit
// power for k-list × splitting design points, normalized to a 2-list ring
// without splitting, on a frame-spaced 64-satellite formation.
func Fig13() ([]report.Table, error) {
	geom := isl.FrameSpacedGeometry(550, 12)
	t := report.Table{
		ID:      "fig13",
		Title:   "ISL capacity and transmit power vs k-list × SµDC splitting (frame-spaced formation)",
		Note:    "normalized to ring (k=2, split=1); capacity scales multi-linearly, power quadratically in k",
		Columns: []string{"k", "split", "capacity (norm)", "tx power (norm)", "feasible"},
	}
	for _, k := range []int{2, 4, 8, 16} {
		for _, split := range []int{1, 2, 4} {
			cd := isl.CoDesign{
				Topology:  isl.Topology{K: k, Split: split},
				Geometry:  geom,
				Tech:      isl.Optical10G,
				TotalSats: Mission64.Satellites,
			}
			pt := cd.Fig13Point(orbit.AtmosphereGrazeKm)
			t.AddRow(k, split, pt.CapacityNorm, pt.PowerNorm, pt.Feasible)
		}
	}

	// Companion: the same sweep on an orbit-spaced formation, where large
	// k is geometrically infeasible — the §8 contrast.
	orbitG := isl.OrbitSpacedGeometry(550, Mission64.Satellites)
	t2 := report.Table{
		ID:      "fig13",
		Title:   "Same sweep on an orbit-spaced formation",
		Note:    fmt.Sprintf("max feasible k = %d before links graze the atmosphere", orbitG.MaxK(orbit.AtmosphereGrazeKm)),
		Columns: []string{"k", "split", "capacity (norm)", "tx power (norm)", "feasible"},
	}
	for _, k := range []int{2, 4, 8, 16} {
		for _, split := range []int{1, 2, 4} {
			cd := isl.CoDesign{
				Topology:  isl.Topology{K: k, Split: split},
				Geometry:  orbitG,
				Tech:      isl.Optical10G,
				TotalSats: Mission64.Satellites,
			}
			pt := cd.Fig13Point(orbit.AtmosphereGrazeKm)
			t2.AddRow(k, split, pt.CapacityNorm, pt.PowerNorm, pt.Feasible)
		}
	}
	return []report.Table{t, t2}, nil
}

var _ = register("fig15", "GEO star coverage of the LEO constellation (24 h propagation)", Fig15)

// Fig15 verifies the Fig 15 claim by simulation: three GEO SµDCs spaced
// 120° apart give every LEO EO satellite continuous line of sight to at
// least one of them. It propagates a sample of the 64-satellite ring for a
// day and reports the worst coverage gap and slant-range envelope.
func Fig15() ([]report.Table, error) {
	star := core.NewGEOStar(0, Epoch)
	t := report.Table{
		ID:      "fig15",
		Title:   "GEO star coverage of the LEO constellation (24 h propagation)",
		Note:    "gap 0 s = continuous coverage; slant ranges size the LEO-GEO optical links",
		Columns: []string{"EO satellite", "worst coverage gap", "min range (km)", "max range (km)"},
	}
	geos := star.Propagators()
	for i := 0; i < 8; i++ {
		el := orbit.CircularLEO(550, 53*math.Pi/180, 0, float64(i)*math.Pi/4, Epoch)
		gap, err := star.CoverageGap(el, Epoch, 24*time.Hour, time.Minute)
		if err != nil {
			return nil, err
		}
		minR, maxR := math.Inf(1), 0.0
		leo := orbit.J2Propagator{Elements: el}
		for dt := time.Duration(0); dt < 24*time.Hour; dt += 5 * time.Minute {
			tm := Epoch.Add(dt)
			best := math.Inf(1)
			ls, err := leo.State(tm)
			if err != nil {
				return nil, err
			}
			for _, g := range geos {
				gs, err := g.State(tm)
				if err != nil {
					return nil, err
				}
				if !orbit.LineOfSight(ls.Position, gs.Position, orbit.AtmosphereGrazeKm) {
					continue
				}
				if d := ls.Position.DistanceTo(gs.Position); d < best {
					best = d
				}
			}
			if best < minR {
				minR = best
			}
			if !math.IsInf(best, 1) && best > maxR {
				maxR = best
			}
		}
		t.AddRow(fmt.Sprintf("eo-%02d", i*8), gap.String(), math.Round(minR), math.Round(maxR))
	}
	return []report.Table{t}, nil
}

// SuDCForDevice builds a 4 kW SµDC around any catalog device — used by the
// device-sweep ablation bench.
func SuDCForDevice(dev gpusim.Device) core.SuDC {
	s := core.Default4kW()
	s.Device = dev
	s.Name = "SµDC-4kW-" + dev.Name
	return s
}

// SuDCsAt is a convenience used by benches: SµDCs needed for one cell.
func SuDCsAt(app apps.ID, s core.SuDC, resM, ed float64) (int, error) {
	w := core.Workload{App: app, Mission: Mission64, ResolutionM: resM, EarlyDiscard: ed}
	return core.SuDCsNeeded(w, s)
}
