package experiments

import (
	"context"
	"fmt"

	"spacedc/internal/optimize"
	"spacedc/internal/report"
)

var _ = register("ext-optimize",
	"constellation design-space optimizer: heuristic search vs equal-budget random sweeps on goodput per dollar",
	ExtOptimize)

// OptimizeStudyEval is the shared candidate-evaluation configuration
// behind ext-optimize and the daemon's optimize spec: the netsim and
// resilience runs are shortened so a full search stays interactive while
// still discriminating along every design axis. Centralizing it here
// keeps the CLI and daemon content-addressed results comparable.
func OptimizeStudyEval() optimize.EvalConfig {
	return optimize.EvalConfig{
		NetDurationSec:     10,
		NetStepSec:         0.5,
		NetEpochSec:        5,
		ComputeDurationSec: 600,
	}
}

// OptimizeStudyConfig is the reference search configuration: a seeded
// annealed multi-restart climb with a fixed proposal budget, so the
// experiment's trace and tables are bit-identical at any worker count.
func OptimizeStudyConfig() optimize.Config {
	return optimize.Config{
		Seed:     42,
		Budget:   48,
		Restarts: 8,
		Anneal:   true,
		Eval:     OptimizeStudyEval(),
	}
}

// randomBaselineSeeds drive the equal-budget random sweeps ext-optimize
// compares the heuristic against.
var randomBaselineSeeds = []int64{1, 2, 3}

// ExtOptimize runs the constellation design-space study: the heuristic
// search over optimize.DefaultSpace maximizing goodput per dollar-hour,
// followed by equal-budget pure-random sweeps as the baseline. It emits
// the search trace, the cost-vs-goodput Pareto frontier, and a
// search-vs-sweep comparison table.
func ExtOptimize() ([]report.Table, error) {
	space := optimize.DefaultSpace()
	cfg := OptimizeStudyConfig()

	heur, err := optimize.Search(context.Background(), cfg, space)
	if err != nil {
		return nil, fmt.Errorf("ext-optimize: heuristic search: %w", err)
	}
	tables := optimize.Tables(heur)

	cmp := report.Table{
		ID:    "ext-optimize-compare",
		Title: fmt.Sprintf("Search vs equal-budget random sweep (%d proposals each, %d-design space)", cfg.Budget, space.Size()),
		Note: "the heuristic (seeded restarts + Hamming-1 neighborhood moves + annealed acceptance) against " +
			"pure uniform sampling under the same evaluation budget; objective is goodput Mbps per amortized $/hour",
		Columns: []string{"searcher", "seed", "best objective", "best design",
			"evaluated", "cache hits", "infeasible"},
	}
	addRow := func(name string, seed int64, out *optimize.Outcome) {
		cmp.AddRow(name, seed,
			fmt.Sprintf("%.4f", out.Best.Score.Objective),
			optimize.Key(out.Best.Design),
			out.Evaluated, out.CacheHits, out.Infeasible)
	}
	addRow("heuristic", cfg.Seed, heur)
	for _, seed := range randomBaselineSeeds {
		rcfg := optimize.Config{Seed: seed, Budget: cfg.Budget, Eval: cfg.Eval}
		r, err := optimize.RandomSearch(context.Background(), rcfg, space)
		if err != nil {
			return nil, fmt.Errorf("ext-optimize: random sweep seed %d: %w", seed, err)
		}
		addRow("random", seed, r)
	}
	return append(tables, cmp), nil
}
