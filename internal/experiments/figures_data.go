package experiments

import (
	"fmt"

	"spacedc/internal/constellation"
	"spacedc/internal/datagen"
	"spacedc/internal/groundstation"
	"spacedc/internal/report"
	"spacedc/internal/rf"
	"spacedc/internal/units"
)

var _ = register("fig2", "EO satellite spatial resolution by launch year", Fig2)

// Fig2 reproduces the paper's Fig 2: EO satellite spatial resolution over
// the decades, split between the NRO Key Hole line and commercial or
// scientific programs.
func Fig2() ([]report.Table, error) {
	t := report.Table{
		ID:      "fig2",
		Title:   "EO satellite spatial resolution by launch year",
		Note:    "Key Hole line vs commercial/scientific; both frontiers move toward finer resolution",
		Columns: []string{"year", "program", "track", "resolution (m)"},
	}
	for _, m := range constellation.Fig2Milestones() {
		track := "commercial/scientific"
		if m.Government {
			track = "NRO Key Hole"
		}
		t.AddRow(m.Year, m.Program, track, m.ResM)
	}
	return []report.Table{t}, nil
}

var _ = register("fig3", "satellite downlink capacity over time", Fig3)

// Fig3 reproduces Fig 3: downlink capacity growth over time, limited by RF
// bandwidth constraints.
func Fig3() ([]report.Table, error) {
	t := report.Table{
		ID:      "fig3",
		Title:   "Satellite downlink capacity over time",
		Note:    "≈2 orders of magnitude over 50 years — far slower than data generation growth",
		Columns: []string{"year", "program", "band", "rate"},
	}
	for _, m := range constellation.Fig3Milestones() {
		t.AddRow(m.Year, m.Program, m.Band, units.DataRate(m.RateBps).String())
	}
	return []report.Table{t}, nil
}

// temporalSweep is the temporal-resolution axis of Fig 4 and Fig 6.
var temporalSweep = []struct {
	label string
	sec   float64
}{
	{"1 day", 86400},
	{"1 hour", 3600},
	{"30 min", 1800},
	{"1 min", 60},
	{"continuous (1.5 s)", 1.5},
}

var _ = register("fig4", "global-coverage data generation rate and downlink channels needed", Fig4)

// Fig4 reproduces Fig 4a (global data generation rate) and Fig 4b (number
// of concurrent Dove-like 220 Mbit/s channels needed) over the spatial ×
// temporal resolution grid.
func Fig4() ([]report.Table, error) {
	bpp := datagen.Default4K.BitsPerPixel
	rates := report.Table{
		ID:      "fig4a",
		Title:   "Global-coverage data generation rate",
		Note:    fmt.Sprintf("surface area / res² × %d bit/px / temporal res", bpp),
		Columns: []string{"spatial res"},
	}
	channels := report.Table{
		ID:      "fig4b",
		Title:   "Concurrent Dove-like 220 Mbit/s channels needed",
		Note:    "Table 2's GSaaS networks offer ~160 stations with <100 antennas each",
		Columns: []string{"spatial res"},
	}
	for _, tr := range temporalSweep {
		rates.Columns = append(rates.Columns, tr.label)
		channels.Columns = append(channels.Columns, tr.label)
	}
	for _, res := range datagen.StandardResolutions {
		rrow := []interface{}{datagen.ResolutionLabel(res)}
		crow := []interface{}{datagen.ResolutionLabel(res)}
		for _, tr := range temporalSweep {
			rate := datagen.GlobalCoverageRate(res, tr.sec, bpp)
			rrow = append(rrow, rate.String())
			crow = append(crow, datagen.ChannelsNeeded(rate))
		}
		rates.AddRow(rrow...)
		channels.AddRow(crow...)
	}
	return []report.Table{rates, channels}, nil
}

var _ = register("fig5", "downlink deficit and time downlinking per revolution", Fig5)

// Fig5 reproduces Fig 5: per-satellite downlink deficit (a) and time spent
// downlinking per revolution (b) versus the number of 220 Mbit/s channel
// passes available, at 95% early discard.
func Fig5() ([]report.Table, error) {
	pm := groundstation.DefaultPassModel()
	if err := pm.Validate(); err != nil {
		return nil, err
	}
	const earlyDiscard = 0.95
	channelCounts := []float64{1, 2, 4, 8, 16, 32, 64}

	deficit := report.Table{
		ID:      "fig5a",
		Title:   "Downlink deficit vs channel passes per revolution (95% early discard)",
		Note:    "220 Mbit/s channels, ~8 min passes, 550 km revolution",
		Columns: []string{"spatial res"},
	}
	times := report.Table{
		ID:      "fig5b",
		Title:   "Time spent downlinking per revolution (95% early discard)",
		Note:    "minutes of transmitter-on time; cost = minutes × $3/channel",
		Columns: []string{"spatial res"},
	}
	for _, n := range channelCounts {
		label := fmt.Sprintf("%g ch", n)
		deficit.Columns = append(deficit.Columns, label)
		times.Columns = append(times.Columns, label)
	}
	for _, res := range datagen.StandardResolutions {
		rate := datagen.Default4K.DataRate(res, earlyDiscard)
		drow := []interface{}{datagen.ResolutionLabel(res)}
		trow := []interface{}{datagen.ResolutionLabel(res)}
		for _, n := range channelCounts {
			b := pm.Budget(rate, n)
			drow = append(drow, fmt.Sprintf("%.3f", b.Deficit))
			trow = append(trow, fmt.Sprintf("%.1f min", b.DownlinkSeconds/60))
		}
		deficit.AddRow(drow...)
		times.AddRow(trow...)
	}
	return []report.Table{deficit, times}, nil
}

var _ = register("fig6", "required effective compression ratio vs baseline downlink", Fig6)

// Fig6 reproduces Fig 6: the effective compression ratio required to fit
// each resolution target into a downlink sized for the 3 m / 1 day
// baseline.
func Fig6() ([]report.Table, error) {
	bpp := datagen.Default4K.BitsPerPixel
	t := report.Table{
		ID:      "fig6",
		Title:   "Required effective compression ratio vs (3 m, 1 day) baseline downlink",
		Note:    "best achievable ECR from compression × early discard is ≈400 (§4)",
		Columns: []string{"spatial res"},
	}
	for _, tr := range temporalSweep {
		t.Columns = append(t.Columns, tr.label)
	}
	for _, res := range datagen.StandardResolutions {
		row := []interface{}{datagen.ResolutionLabel(res)}
		for _, tr := range temporalSweep {
			row = append(row, datagen.RequiredECR(res, tr.sec, bpp))
		}
		t.AddRow(row...)
	}
	return []report.Table{t}, nil
}

var _ = register("fig7", "channel capacity vs antenna input power and diameter", Fig7)

// Fig7 reproduces Fig 7: RF downlink capacity as antenna input power and
// dish diameter scale, against the 1 m global-coverage requirement.
func Fig7() ([]report.Table, error) {
	sc := rf.DefaultScaledChannel()
	oneMeterReq := datagen.GlobalCoverageRate(1, 86400, datagen.Default4K.BitsPerPixel)

	power := report.Table{
		ID:      "fig7a",
		Title:   "Channel capacity vs antenna input power (96 MHz X-band, Dove baseline)",
		Note:    fmt.Sprintf("1 m / 1 day global requirement: %v — even 2 kW falls far short", oneMeterReq),
		Columns: []string{"tx power", "capacity", "fraction of 1 m requirement"},
	}
	for _, p := range []units.Power{5, 20, 100, 500, 2000, 10000} {
		c := sc.CapacityAtPower(p)
		power.AddRow(p.String(), c.String(), fmt.Sprintf("%.2e", float64(c)/float64(oneMeterReq)))
	}

	dish := report.Table{
		ID:      "fig7b",
		Title:   "Channel capacity vs antenna diameter (gain ∝ D²)",
		Note:    "a 30 m dish still misses the 1 m requirement by orders of magnitude",
		Columns: []string{"diameter", "capacity", "fraction of 1 m requirement"},
	}
	for _, d := range []float64{0.5, 1, 3, 10, 30, 100} {
		c := sc.CapacityAtDish(d)
		dish.AddRow(fmt.Sprintf("%g m", d), c.String(), fmt.Sprintf("%.2e", float64(c)/float64(oneMeterReq)))
	}
	return []report.Table{power, dish}, nil
}
