package experiments

import (
	"fmt"
	"sync"

	"spacedc/internal/apps"
	"spacedc/internal/discard"
	"spacedc/internal/gpusim"
	"spacedc/internal/pool"
	"spacedc/internal/qos"
	"spacedc/internal/report"
	"spacedc/internal/resilience"
	"spacedc/internal/sched"
	"spacedc/internal/units"
	"spacedc/internal/workload"
)

var _ = register("ext-workload", "overload-robust tasking: priority admission, shed/retry, SLO attainment under fault campaigns", ExtWorkload)

// workloadPipeline is the calibrated service pipeline every ext-workload
// cell (and the sudcsimd workload spec) shares: a network stage measured
// from the ring-16 netsim scenario and a compute stage on a 4×RTX 3090
// flood-detection gang processing 2-Mpx tasking tiles.
type workloadPipeline struct {
	net   qos.NetworkConfig
	comp  qos.ComputeConfig
	peakW float64 // gang dissipation at the target batch
	// admitPerSec is the pipeline's sustainable request rate for the
	// default class mix, derated 10% for headroom — the aggregate capacity
	// the preset admission policies are sized to.
	admitPerSec float64
}

// The calibration runs two netsim scenarios; both are deterministic, so
// computing it once per process keeps repeated evaluations bit-identical
// and cheap.
var (
	workloadCalOnce sync.Once
	workloadCal     workloadPipeline
	workloadCalErr  error
)

// workloadShared returns the per-process calibration.
func workloadShared() (workloadPipeline, error) {
	workloadCalOnce.Do(func() { workloadCal, workloadCalErr = calibrateWorkload() })
	return workloadCal, workloadCalErr
}

// WorkloadPipeline returns the shared calibrated pipeline: the measured
// network stage, the compute stage, and the admission capacity the preset
// policies are sized to.
func WorkloadPipeline() (qos.NetworkConfig, qos.ComputeConfig, float64, error) {
	c, err := workloadShared()
	return c.net, c.comp, c.admitPerSec, err
}

// calibrateWorkload measures the pipeline once.
func calibrateWorkload() (workloadPipeline, error) {
	// A shortened ring-16 run is enough to find the saturation point; the
	// full 120 s scenario only narrows the same numbers.
	base := NetsimBaseScenario()
	base.Name = "ext-workload"
	base.DurationSec = 40
	base.WarmupSec = 10
	net, err := qos.CalibrateNetwork(base)
	if err != nil {
		return workloadPipeline{}, err
	}

	proc, err := sched.NewDeviceProcessor(apps.FloodDetection, gpusim.RTX3090, 4)
	if err != nil {
		return workloadPipeline{}, err
	}
	comp := qos.ComputeConfig{
		Proc:           proc,
		PixelsPerFrame: 2e6, // tasking tiles, not full 4K frames
		TargetBatch:    proc.OptimalTargetBatch(),
		MaxWaitSec:     1,
	}

	secs, joules := proc.Process(comp.TargetBatch, float64(comp.TargetBatch)*comp.PixelsPerFrame)
	if secs <= 0 {
		return workloadPipeline{}, fmt.Errorf("experiments: workload device probe returned %v s", secs)
	}
	frameRate := float64(comp.TargetBatch) / secs

	spec := workload.Spec{Classes: workload.DefaultClasses()}
	netCap := net.CapacityBps / spec.MeanBits()
	compCap := frameRate / spec.MeanFrames()
	admit := netCap
	if compCap < admit {
		admit = compCap
	}
	return workloadPipeline{
		net:         net,
		comp:        comp,
		peakW:       joules / secs,
		admitPerSec: 0.9 * admit,
	}, nil
}

// WorkloadScenario builds one end-to-end QoS scenario on the calibrated
// pipeline: a diurnal tasking baseline with a disaster-response surge at
// T/4, the named policy preset sized to the pipeline's admission capacity,
// the named fault campaign landing mid-surge, and a thermal governor whose
// radiator matches the gang (so only the radiator-derate fault throttles
// it). load scales the offered demand: 1.0 peaks near 1.6× the admission
// capacity, 2.0 near 3.2×. durationSec ≤ 0 means 360 s.
func WorkloadScenario(policy, campaign string, load, durationSec float64, seed int64) (qos.Scenario, error) {
	if load <= 0 {
		return qos.Scenario{}, fmt.Errorf("experiments: non-positive workload load %v", load)
	}
	if durationSec <= 0 {
		durationSec = 360
	}
	cal, err := workloadShared()
	if err != nil {
		return qos.Scenario{}, err
	}
	admit := cal.admitPerSec
	pol, err := qos.PresetPolicy(policy, admit)
	if err != nil {
		return qos.Scenario{}, err
	}
	camp, err := qos.PresetCampaign(campaign, 0.3*durationSec, 0.1*durationSec)
	if err != nil {
		return qos.Scenario{}, err
	}
	gov, err := resilience.GovernorForBudget(
		units.Power(cal.peakW), units.Power(cal.peakW), 2e5, discard.Ocean)
	if err != nil {
		return qos.Scenario{}, err
	}
	return qos.Scenario{
		Name: fmt.Sprintf("workload-%s-%s-%.2gx", policy, campaign, load),
		Workload: workload.Spec{
			BaseRatePerSec:   0.55 * load * admit,
			DiurnalAmp:       0.25,
			DiurnalPeriodSec: durationSec,
			BurstOnsets:      []float64{0.25 * durationSec},
			BurstPeakPerSec:  0.9 * load * admit,
			BurstDecaySec:    durationSec / 6,
			DurationSec:      durationSec,
			Seed:             seed,
		},
		Network:  cal.net,
		Compute:  cal.comp,
		Policy:   pol,
		Governor: gov,
		Campaign: camp,
		Seed:     seed,
	}, nil
}

// ExtWorkload sweeps the policy × load grid under the combined fault
// campaign (ground-station outage + SEU burst + radiator derate landing
// mid-surge). The open baseline collapses uniformly as load rises; the
// priority policies hold the urgent class's SLO by shedding best-effort
// load, and retry converts SEU failures back into (late) completions. The
// per-cell runs fan out on the shared pool and reassemble in grid order,
// so the table is bit-identical at any worker count.
func ExtWorkload() ([]report.Table, error) {
	t := report.Table{
		ID: "ext-workload",
		Title: "Overload-robust tasking under the combined fault campaign " +
			"(ring-16 network, 4×RTX 3090, surge at T/4, faults mid-surge)",
		Note: "load scales offered demand relative to the calibrated admission capacity (1.0x peaks near 1.6x); " +
			"urgent SLO is the fraction of urgent requests completed inside their 30 s deadline; " +
			"recovery is the time for the backlog to return to its pre-fault baseline (n/a = not within the run)",
		Columns: []string{"policy", "load", "offered", "shed", "failed",
			"urgent p99 (s)", "urgent SLO", "b-e shed", "goodput (req/s)", "recovery (s)"},
	}

	loads := []float64{0.5, 1.0, 2.0}
	type cell struct {
		policy string
		load   float64
	}
	var cells []cell
	for _, p := range qos.PolicyNames() {
		for _, l := range loads {
			cells = append(cells, cell{policy: p, load: l})
		}
	}
	results := make([]qos.Result, len(cells))
	errs := make([]error, len(cells))
	pool.MapObs(len(cells), 0, nil, "experiments.workload.pool", func(i int) error {
		sc, err := WorkloadScenario(cells[i].policy, qos.CampaignCombined, cells[i].load, 0, 5)
		if err != nil {
			errs[i] = err
			return nil
		}
		results[i], errs[i] = qos.Run(sc)
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: workload cell %s/%.2gx: %w", cells[i].policy, cells[i].load, err)
		}
	}

	for i, c := range cells {
		r := results[i]
		urgent, bestEffort := r.Classes[0], r.Classes[2]
		goodput := 0.0
		for _, cr := range r.Classes {
			goodput += cr.GoodputPerSec
		}
		recovery := "n/a"
		if r.RecoverySec >= 0 {
			recovery = fmt.Sprintf("%.1f", r.RecoverySec)
		}
		t.AddRow(c.policy,
			fmt.Sprintf("%.1fx", c.load),
			r.Offered,
			r.Shed,
			r.Failed,
			fmt.Sprintf("%.1f", urgent.P99LatencySec),
			fmt.Sprintf("%.3f", urgent.SLOAttainment),
			fmt.Sprintf("%.3f", bestEffort.ShedFraction),
			fmt.Sprintf("%.1f", goodput),
			recovery)
	}
	return []report.Table{t}, nil
}
