package experiments

import (
	"fmt"
	"math"

	"spacedc/internal/apps"
	"spacedc/internal/discard"
	"spacedc/internal/gpusim"
	"spacedc/internal/orbit"
	"spacedc/internal/radiation"
	"spacedc/internal/report"
	"spacedc/internal/resilience"
	"spacedc/internal/sched"
	"spacedc/internal/units"
)

var _ = register("ext-resilience", "radiation mitigation policies across orbit regimes", ExtResilience)

// ResilienceOrbit names one orbit regime of the resilience sweep.
type ResilienceOrbit struct {
	Name     string
	Elements orbit.Elements
}

// ResilienceOrbits returns the three radiation regimes the sweep compares:
// an equatorial orbit that never touches the SAA, the ISS-like inclined
// orbit that grazes it, and a sun-synchronous orbit that crosses it on
// most revolutions.
func ResilienceOrbits() []ResilienceOrbit {
	orbits := []ResilienceOrbit{
		{Name: "equatorial-550", Elements: orbit.CircularLEO(550, 0, 0, 0, Epoch)},
		{Name: "ISS-420", Elements: orbit.CircularLEO(420, 51.6*math.Pi/180, 0, 0, Epoch)},
	}
	if sso, ok := orbit.SunSynchronous(550, 0, 0, Epoch); ok {
		orbits = append(orbits, ResilienceOrbit{Name: "SSO-550", Elements: sso})
	}
	return orbits
}

// resilienceBase is the shared pipeline operating point of the resilience
// study: flood detection on a 2×RTX 3090 gang at the Table 6 optimal
// batch, fed by 2 EO satellites at ~20% utilization so mitigation
// overheads (3× for TMR) fit without saturating the device.
func resilienceBase() sched.Config {
	return sched.Config{
		Satellites:     2,
		FramePeriodSec: 1.5,
		PixelsPerFrame: 3e7,
		TargetBatch:    32,
		MaxBatch:       32,
		MaxWaitSec:     60,
		QueueLimit:     200,
		DurationSec:    12000,
		Seed:           7,
	}
}

// resilienceProcessor builds the study's device gang.
func resilienceProcessor() (sched.Processor, error) {
	return sched.NewDeviceProcessor(apps.FloodDetection, gpusim.RTX3090, 2)
}

// ResilienceScenario builds the policy-sweep scenario on the given orbit:
// the shared pipeline under the default COTS hazard model, with the
// environment trace sampled every 10 s over the ~2-orbit mission span.
func ResilienceScenario(el orbit.Elements) (resilience.Scenario, error) {
	proc, err := resilienceProcessor()
	if err != nil {
		return resilience.Scenario{}, err
	}
	base := resilienceBase()
	env, err := resilience.BuildEnvTrace(el, Epoch, base.DurationSec, 10, radiation.DefaultSAA())
	if err != nil {
		return resilience.Scenario{}, err
	}
	return resilience.Scenario{
		Base:   base,
		Proc:   proc,
		Env:    env,
		Hazard: resilience.DefaultHazard(),
	}, nil
}

// ResilienceISSScenario is the ISS-orbit instance the validation benchmark
// asserts the mitigation ordering on.
func ResilienceISSScenario() (resilience.Scenario, error) {
	for _, o := range ResilienceOrbits() {
		if o.Name == "ISS-420" {
			return ResilienceScenario(o.Elements)
		}
	}
	return resilience.Scenario{}, fmt.Errorf("experiments: ISS orbit missing from sweep")
}

// resilienceThermalRow runs the throttling sweep at one radiator sizing.
// The device gang peaks at peakW but its radiator was sized for only
// sizedFrac of that; shed additionally enables upstream load-shedding
// (the Ocean early-discard criterion, applied progressively as the
// thermal buffer fills).
func resilienceThermalRow(env *resilience.EnvTrace, peakW float64, sizedFrac float64, shed bool) (sched.Stats, *resilience.Governor, error) {
	proc, err := resilienceProcessor()
	if err != nil {
		return sched.Stats{}, nil, err
	}
	crit := discard.None
	if shed {
		crit = discard.Ocean
	}
	gov, err := resilience.GovernorForBudget(
		units.Power(peakW), units.Power(sizedFrac*peakW), 2e5, crit)
	if err != nil {
		return sched.Stats{}, nil, err
	}
	// Day/night coupling: a sunlit radiator carries solar load and rejects
	// ~15% less; eclipse restores full capacity.
	gov.Env = env
	gov.SunlitFactor = 0.85

	cfg := resilienceBase()
	cfg.Satellites = 7 // ~70% sustained utilization: enough heat to saturate an undersized radiator
	cfg.DurationSec = 6000
	cfg.Seed = 11
	cfg.Thermal = gov
	if shed {
		cfg.KeepProb = func(sat int, t float64) float64 { return gov.KeepFactor(t) }
	}
	st, err := sched.Simulate(cfg, proc)
	return st, gov, err
}

// ExtResilience evaluates the radiation- and thermal-resilience layer.
// Table 1 sweeps the §9 mitigation ladder across orbit regimes: goodput
// recovered and energy paid rise together from no-mitigation through
// retry and checkpoint/restart to TMR, while the SAA compute pause trades
// availability (≈ the SAA dwell fraction, matching
// radiation.COTSWithSAAPause.CapacityFactor) for near-baseline energy.
// Table 2 sweeps radiator undersizing: thermal throttling stretches
// service times until the queue overflows, unless progressive upstream
// load-shedding degrades gracefully instead.
func ExtResilience() ([]report.Table, error) {
	t1 := report.Table{
		ID:    "ext-resilience",
		Title: "Radiation mitigation policies across orbit regimes (flood detection, 2×RTX 3090, default COTS hazard)",
		Note: "availability folds in reset downtime and SAA pause dwell; energy overhead is relative to the fault-free " +
			"baseline; the pause row's goodput loss tracks radiation.COTSWithSAAPause.CapacityFactor(SAA share)",
		Columns: []string{"orbit", "SAA share", "policy", "availability",
			"goodput (fr/s)", "corrupted", "p95 (s)", "energy ovh"},
	}
	for _, o := range ResilienceOrbits() {
		sc, err := ResilienceScenario(o.Elements)
		if err != nil {
			return nil, err
		}
		reports, err := sc.EvaluateAll(resilience.StandardPolicies())
		if err != nil {
			return nil, err
		}
		for _, r := range reports {
			t1.AddRow(o.Name,
				fmt.Sprintf("%.1f%%", sc.Env.SAAFraction()*100),
				r.Policy,
				fmt.Sprintf("%.4f", r.Availability),
				fmt.Sprintf("%.3f", r.GoodputFPS),
				r.Stats.Corrupted,
				fmt.Sprintf("%.1f", r.Stats.P95LatencySec),
				fmt.Sprintf("%.3f", r.EnergyOverhead))
		}
	}

	t2 := report.Table{
		ID:    "ext-resilience-thermal",
		Title: "Thermal throttling under radiator undersizing (7 EO sats, ISS orbit, day/night radiator capacity)",
		Note: "radiator sized by thermal.SizeBudget for a fraction of the gang's peak dissipation; throttle share is " +
			"extra service time from derating over device busy time; shedding applies the Ocean early-discard " +
			"criterion progressively as the thermal buffer fills",
		Columns: []string{"radiator sized for", "capacity (W)", "shedding",
			"arrived", "processed", "dropped", "throttle share", "p95 (s)"},
	}
	var iss *resilience.EnvTrace
	{
		sc, err := ResilienceISSScenario()
		if err != nil {
			return nil, err
		}
		iss = sc.Env
	}
	proc, err := resilienceProcessor()
	if err != nil {
		return nil, err
	}
	secs, joules := proc.Process(32, 32*3e7)
	peakW := joules / secs
	for _, frac := range []float64{1.0, 0.6, 0.4} {
		for _, shed := range []bool{false, true} {
			st, gov, err := resilienceThermalRow(iss, peakW, frac, shed)
			if err != nil {
				return nil, err
			}
			share := 0.0
			if st.BusySec > 0 {
				share = st.ThrottleSec / st.BusySec
			}
			shedLabel := "off"
			if shed {
				shedLabel = gov.Shed.Name
			}
			t2.AddRow(fmt.Sprintf("%.0f%%", frac*100),
				fmt.Sprintf("%.0f", gov.CapacityW),
				shedLabel,
				st.Arrived, st.Processed, st.Dropped,
				fmt.Sprintf("%.2f", share),
				fmt.Sprintf("%.1f", st.P95LatencySec))
		}
	}
	return []report.Table{t1, t2}, nil
}
