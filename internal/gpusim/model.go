package gpusim

import (
	"fmt"
	"math"

	"spacedc/internal/apps"
	"spacedc/internal/units"
)

// Model predicts throughput, power, and energy efficiency of one
// application on one device as a function of batch size.
//
// The model is anchored at a calibrated operating point (batch b*, the
// paper's Table 6 row) and responds analytically around it:
//
//	x        = batch / b*
//	eff(x)   = eff* · 4x/(1+x)²        — unimodal, peaks at x = 1
//	power(x) = idle + (p* − idle) · 2x/(1+x), clamped to TDP
//	rate(x)  = eff(x) · power(x)
//
// At x = 1 all quantities equal the calibration row; small batches
// under-utilize the device (efficiency and power fall), oversized batches
// keep power high while marginal throughput decays — the standard shape of
// measured batch sweeps, and the reason the paper picks the
// efficiency-optimal batch.
type Model struct {
	App    apps.Application
	Device Device
	cal    Measurement
	derate float64 // thermal derate factor in (0,1]; 0 means 1 (none)
}

// NewModel builds a model for app on device. Devices without their own
// Table 6 calibration (A100, H100, Cloud AI 100) inherit the RTX 3090 row
// with energy efficiency scaled by Device.EffVsRTX3090 and power scaled to
// the device's TDP.
func NewModel(id apps.ID, dev Device) (*Model, error) {
	app, err := apps.ByID(id)
	if err != nil {
		return nil, err
	}
	if m, err := MeasurementFor(id, dev.Name); err == nil {
		return &Model{App: app, Device: dev, cal: m}, nil
	} else if dev.Name == JetsonXavier.Name || dev.Name == RTX3090.Name {
		return nil, err
	}
	if dev.EffVsRTX3090 <= 0 {
		return nil, fmt.Errorf("gpusim: device %q has no calibration and no efficiency scaling", dev.Name)
	}
	base, err := MeasurementFor(id, RTX3090.Name)
	if err != nil {
		return nil, err
	}
	scaled := base
	scaled.Device = dev.Name
	// Keep the same fraction of TDP, scale efficiency; throughput follows.
	scaled.Power = units.Power(float64(base.Power) / float64(RTX3090.TDP) * float64(dev.TDP))
	scaled.KPixelSW = base.KPixelSW * dev.EffVsRTX3090
	// Inference time shrinks with the throughput gain at equal batch.
	rateGain := (float64(scaled.Power) * scaled.KPixelSW) / (float64(base.Power) * base.KPixelSW)
	scaled.InferSec = base.InferSec / rateGain
	return &Model{App: app, Device: dev, cal: scaled}, nil
}

// Calibration returns the operating point the model is anchored to.
func (m *Model) Calibration() Measurement { return m.cal }

// DerateFactor returns the thermal derate applied to the model (1 when
// running at full capability).
func (m *Model) DerateFactor() float64 {
	if m.derate == 0 {
		return 1
	}
	return m.derate
}

// Derated returns a copy of the model power-capped to fraction f of its
// nominal board power — the thermal-throttling hook: board power scales by
// f and the pixel rate follows, while energy per pixel is unchanged (the
// standard first-order behaviour of GPU power capping). Factors compose:
// m.Derated(0.5) on an already half-derated model yields a quarter.
func (m *Model) Derated(f float64) (*Model, error) {
	if f <= 0 || f > 1 || math.IsNaN(f) {
		return nil, fmt.Errorf("gpusim: derate factor %v outside (0, 1]", f)
	}
	c := *m
	c.derate = m.DerateFactor() * f
	return &c, nil
}

// batchRatio converts a batch size to the normalized x = batch/b*.
func (m *Model) batchRatio(batch float64) float64 {
	if batch <= 0 {
		return 0
	}
	return batch / m.cal.BatchStar
}

// EnergyEfficiency returns kilopixels per second per watt at the given
// batch size.
func (m *Model) EnergyEfficiency(batch float64) float64 {
	x := m.batchRatio(batch)
	if x == 0 {
		return 0
	}
	return m.cal.KPixelSW * 4 * x / ((1 + x) * (1 + x))
}

// Power returns the board power at the given batch size, after any
// thermal derate.
func (m *Model) Power(batch float64) units.Power {
	x := m.batchRatio(batch)
	p := float64(m.Device.Idle) + (float64(m.cal.Power)-float64(m.Device.Idle))*2*x/(1+x)
	if p > float64(m.Device.TDP) {
		p = float64(m.Device.TDP)
	}
	return units.Power(p * m.DerateFactor())
}

// Utilization returns the modeled device utilization in [0, 1].
func (m *Model) Utilization(batch float64) float64 {
	x := m.batchRatio(batch)
	u := m.cal.Util * 2 * x / (1 + x)
	return math.Min(u, 1)
}

// PixelRate returns pixels/s processed at the given batch size.
func (m *Model) PixelRate(batch float64) float64 {
	return m.EnergyEfficiency(batch) * 1e3 * float64(m.Power(batch))
}

// InferTime returns the wall time of one batch inference.
func (m *Model) InferTime(batch float64) float64 {
	rate := m.PixelRate(batch)
	if rate == 0 {
		return math.Inf(1)
	}
	// Pixels per item is fixed by the calibration row: at b* the batch
	// takes InferSec at the calibrated rate.
	pixelsPerItem := m.cal.PixelRate() * m.cal.InferSec / m.cal.BatchStar
	return batch * pixelsPerItem / rate
}

// OptimalBatch sweeps batch sizes and returns the most energy-efficient
// one. With the analytic response this lands on the calibrated b* —
// reproducing the paper's methodology rather than assuming it.
func (m *Model) OptimalBatch() float64 {
	best, bestEff := 1.0, 0.0
	for b := 1.0; b <= 4*m.cal.BatchStar; b++ {
		if e := m.EnergyEfficiency(b); e > bestEff {
			best, bestEff = b, e
		}
	}
	return best
}

// BestEfficiency returns the peak energy efficiency in kpixel/s/W.
func (m *Model) BestEfficiency() float64 {
	return m.EnergyEfficiency(m.OptimalBatch())
}

// PowerForPixelRate returns the device power needed to sustain the given
// pixel throughput at peak efficiency (Fig 8's question: how much compute
// power must a satellite carry to run this application?). The answer
// assumes the workload is spread across enough devices that each runs at
// its efficiency-optimal batch.
func (m *Model) PowerForPixelRate(pixelsPerSec float64) units.Power {
	eff := m.BestEfficiency() * 1e3 // pixels/s/W
	if eff <= 0 {
		return units.Power(math.Inf(1))
	}
	return units.Power(pixelsPerSec / eff)
}

// PixelRateForPower inverts PowerForPixelRate: throughput sustained by a
// power budget at peak efficiency.
func (m *Model) PixelRateForPower(budget units.Power) float64 {
	return m.BestEfficiency() * 1e3 * float64(budget)
}
