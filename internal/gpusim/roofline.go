package gpusim

import (
	"fmt"

	"spacedc/internal/apps"
)

// DeviceRoofline carries the published peak arithmetic and bandwidth
// numbers used to sanity-check the calibrated operating points.
type DeviceRoofline struct {
	Device        string
	PeakFP32TFLOP float64 // dense FP32, TFLOP/s
	PeakTensorTOP float64 // tensor/INT8 class peak, TOP/s
	MemBWGBs      float64
}

// rooflines lists the published specifications.
var rooflines = []DeviceRoofline{
	{Device: "RTX 3090", PeakFP32TFLOP: 35.6, PeakTensorTOP: 285, MemBWGBs: 936},
	{Device: "Jetson AGX Xavier", PeakFP32TFLOP: 1.4, PeakTensorTOP: 22, MemBWGBs: 137},
	{Device: "A100", PeakFP32TFLOP: 19.5, PeakTensorTOP: 624, MemBWGBs: 1555},
	{Device: "H100", PeakFP32TFLOP: 67, PeakTensorTOP: 1979, MemBWGBs: 3350},
	{Device: "Qualcomm Cloud AI 100", PeakFP32TFLOP: 0, PeakTensorTOP: 400, MemBWGBs: 136},
}

// RooflineFor returns the published peaks for a device.
func RooflineFor(device string) (DeviceRoofline, error) {
	for _, r := range rooflines {
		if r.Device == device {
			return r, nil
		}
	}
	return DeviceRoofline{}, fmt.Errorf("gpusim: no roofline for %q", device)
}

// ImpliedOpsPerSecond multiplies a Table 6 operating point's pixel
// throughput by the application's Table 5 per-pixel complexity: the
// arithmetic rate the two tables jointly imply.
func ImpliedOpsPerSecond(m Measurement) (float64, error) {
	app, err := apps.ByID(m.App)
	if err != nil {
		return 0, err
	}
	return m.PixelRate() * app.FLOPsPerPixel, nil
}

// ConsistencyReport checks each Table 6 operating point against the
// device's published peaks: the arithmetic rate implied by Table 5's
// FLOPs/pixel times Table 6's pixel throughput must fit under the
// hardware roofline for the two tables to describe the same computation.
// They do — every published row sits below its device's tensor peak
// (heavyweight kernels like AD reach ~24% of the RTX 3090's peak;
// bandwidth-bound TM sits near zero) — a physical-plausibility validation
// of the paper's measurement pair.
type ConsistencyReport struct {
	App            apps.ID
	Device         string
	ImpliedTOPs    float64
	PeakTensorTOPs float64
	ExceedsPeak    bool
}

// CheckConsistency evaluates every Table 6 row against its device peak.
func CheckConsistency() ([]ConsistencyReport, error) {
	var out []ConsistencyReport
	for _, m := range Table6() {
		roof, err := RooflineFor(m.Device)
		if err != nil {
			return nil, err
		}
		ops, err := ImpliedOpsPerSecond(m)
		if err != nil {
			return nil, err
		}
		tops := ops / 1e12
		out = append(out, ConsistencyReport{
			App:            m.App,
			Device:         m.Device,
			ImpliedTOPs:    tops,
			PeakTensorTOPs: roof.PeakTensorTOP,
			ExceedsPeak:    tops > roof.PeakTensorTOP,
		})
	}
	return out, nil
}
