// Package gpusim is an analytic performance/power simulator for the GPU and
// accelerator hardware the paper evaluates. It substitutes for the paper's
// physical RTX 3090 and Jetson AGX Xavier testbeds: each (application,
// device) pair is calibrated at the paper's published Table 6 operating
// point, and an analytic batch-size response models how utilization, power,
// throughput, and energy efficiency move around that point — reproducing
// the paper's methodology of sweeping batch sizes and picking the most
// energy-efficient one.
//
// Devices without published per-application measurements (A100, H100,
// Qualcomm Cloud AI 100) are modeled by scaling the RTX 3090 calibration by
// their relative MLPerf energy efficiency, exactly as the paper's §9 does
// for the AI 100 (18.25× the RTX 3090).
package gpusim

import (
	"fmt"

	"spacedc/internal/units"
)

// Device describes a compute device a SµDC (or EO satellite) could carry.
type Device struct {
	Name string
	// TDP is the board power limit.
	TDP units.Power
	// Idle is the power draw at zero utilization.
	Idle units.Power
	// EffVsRTX3090 scales the per-application energy efficiency measured
	// on the RTX 3090. 1.0 for the 3090 itself; devices with their own
	// calibration table (Xavier) ignore it.
	EffVsRTX3090 float64
	// RadiationNote records the §9 radiation posture of the part.
	RadiationNote string
}

// The device catalog. Efficiency scalings follow §9: the Qualcomm Cloud
// AI 100 is 18.25× the RTX 3090, >2.5× the A100, and nearly 2× the H100 on
// MLPerf v3.0 offline image inference.
var (
	JetsonXavier = Device{
		Name: "Jetson AGX Xavier", TDP: 30 * units.Watt, Idle: 0.5 * units.Watt,
		EffVsRTX3090:  0, // directly calibrated
		RadiationNote: "good proton-irradiation tolerance (Rodriguez-Ferrandez 2022); flown COTS",
	}
	RTX3090 = Device{
		Name: "RTX 3090", TDP: 350 * units.Watt, Idle: 15 * units.Watt,
		EffVsRTX3090:  1,
		RadiationNote: "COTS; software hardening or SAA pause required",
	}
	A100 = Device{
		Name: "A100", TDP: 400 * units.Watt, Idle: 40 * units.Watt,
		EffVsRTX3090:  18.25 / 2.5,
		RadiationNote: "COTS datacenter part; software hardening required",
	}
	H100 = Device{
		Name: "H100", TDP: 700 * units.Watt, Idle: 50 * units.Watt,
		EffVsRTX3090:  18.25 / 1.9,
		RadiationNote: "COTS datacenter part; software hardening required",
	}
	CloudAI100 = Device{
		Name: "Qualcomm Cloud AI 100", TDP: 75 * units.Watt, Idle: 5 * units.Watt,
		EffVsRTX3090:  18.25,
		RadiationNote: "COTS inference accelerator; MLPerf v3.0 efficiency leader",
	}
)

// Catalog lists all modeled devices.
func Catalog() []Device {
	return []Device{JetsonXavier, RTX3090, A100, H100, CloudAI100}
}

// DeviceByName finds a catalog device.
func DeviceByName(name string) (Device, error) {
	for _, d := range Catalog() {
		if d.Name == name {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("gpusim: unknown device %q", name)
}
