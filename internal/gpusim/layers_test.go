package gpusim

import (
	"math"
	"testing"

	"spacedc/internal/apps"
)

func TestVGG19MatchesTable5(t *testing.T) {
	g := VGG19Graph()
	relErr, err := ValidateAgainstTable5(g)
	if err != nil {
		t.Fatal(err)
	}
	// The exact VGG19 structure reproduces 390 625 MACs/pixel to within
	// a fraction of a percent.
	if math.Abs(relErr) > 0.01 {
		t.Errorf("VGG19 ops/pixel = %v, Table 5 = 390625 (err %v)", g.OpsPerPixel(), relErr)
	}
	// Known absolute: ≈19.6 GMACs per 224×224 inference.
	if macs := g.TotalMACs(); math.Abs(macs-19.6e9)/19.6e9 > 0.02 {
		t.Errorf("VGG19 total MACs = %v, want ≈19.6e9", macs)
	}
}

func TestTrafficMonitorMatchesTable5(t *testing.T) {
	g := TrafficMonitorGraph()
	relErr, err := ValidateAgainstTable5(g)
	if err != nil {
		t.Fatal(err)
	}
	if relErr != 0 {
		t.Errorf("TM ops/pixel = %v, want exactly 51", g.OpsPerPixel())
	}
}

func TestKMeansMatchesTable5(t *testing.T) {
	g := KMeansGraph()
	relErr, err := ValidateAgainstTable5(g)
	if err != nil {
		t.Fatal(err)
	}
	// 2·K·D·I with K=4, D=222, I=9 → 15 984 exactly.
	if math.Abs(relErr) > 1e-9 {
		t.Errorf("LSC ops/pixel = %v, want 15984", g.OpsPerPixel())
	}
}

func TestApproximateGraphsWithinTolerance(t *testing.T) {
	// Block-level reconstructions land within 20% of the published
	// numbers (exact layer inventories were not published).
	for _, g := range []KernelGraph{AircraftDetectGraph(), MobileNetV3Graph()} {
		relErr, err := ValidateAgainstTable5(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(relErr) > 0.20 {
			t.Errorf("%s ops/pixel = %v, Table 5 err %v > 20%%", g.App, g.OpsPerPixel(), relErr)
		}
	}
}

func TestGraphsCatalog(t *testing.T) {
	gs := Graphs()
	if len(gs) != 5 {
		t.Fatalf("got %d kernel graphs", len(gs))
	}
	for id, g := range gs {
		if g.App != id {
			t.Errorf("graph keyed %s claims app %s", id, g.App)
		}
		if len(g.Layers) == 0 || g.TotalMACs() <= 0 || g.TotalBytes() <= 0 {
			t.Errorf("%s: degenerate graph", id)
		}
	}
}

func TestArithmeticIntensityOrdering(t *testing.T) {
	// VGG19 (dense conv, reused weights) has far higher arithmetic
	// intensity than the pointwise TM kernel — the roofline explanation
	// for Table 6's utilization spread (98% vs <1%).
	vgg := VGG19Graph().ArithmeticIntensity()
	tm := TrafficMonitorGraph().ArithmeticIntensity()
	if vgg < 3*tm {
		t.Errorf("VGG intensity %v should clearly exceed TM %v", vgg, tm)
	}
	// And the measured utilizations follow the same ordering.
	osm, err := MeasurementFor(apps.OilSpill, RTX3090.Name)
	if err != nil {
		t.Fatal(err)
	}
	tmm, err := MeasurementFor(apps.TrafficMonitor, RTX3090.Name)
	if err != nil {
		t.Fatal(err)
	}
	if osm.Util <= tmm.Util {
		t.Error("Table 6 utilization should follow arithmetic intensity")
	}
}

func TestValidateUnknownApp(t *testing.T) {
	g := KernelGraph{App: "NOPE", InputW: 10, InputH: 10}
	if _, err := ValidateAgainstTable5(g); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestLayerBuilders(t *testing.T) {
	c := conv("c", 10, 10, 8, 4, 3)
	if c.MACs != 10*10*8*4*9 {
		t.Errorf("conv MACs = %v", c.MACs)
	}
	d := depthwise("d", 10, 10, 8, 3)
	if d.MACs != 10*10*8*9 {
		t.Errorf("depthwise MACs = %v", d.MACs)
	}
	f := dense("f", 100, 10)
	if f.MACs != 1000 {
		t.Errorf("dense MACs = %v", f.MACs)
	}
	p := dsp("p", 10, 10, 51)
	if p.MACs != 5100 {
		t.Errorf("dsp MACs = %v", p.MACs)
	}
}
