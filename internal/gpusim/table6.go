package gpusim

import (
	"fmt"

	"spacedc/internal/apps"
	"spacedc/internal/units"
)

// Measurement is one (application, device) operating point from the paper's
// Table 6, taken at the energy-efficiency-optimal batch size.
type Measurement struct {
	App       apps.ID
	Device    string
	Power     units.Power // average board power during inference
	Util      float64     // average utilization in [0, 1]
	InferSec  float64     // wall time of one optimal-batch inference
	KPixelSW  float64     // energy efficiency: kilopixels per second per watt
	BatchStar float64     // optimal batch size in items (model parameter)
}

// PixelRate returns the measured throughput in pixels/s.
func (m Measurement) PixelRate() float64 {
	return m.KPixelSW * 1e3 * float64(m.Power)
}

// table6 is the paper's Table 6 for the RTX 3090 and Jetson AGX Xavier.
// "<1%" utilizations are stored as 0.005. Panoptic Segmentation could not
// be mapped to the Xavier, so it has no row. Optimal batch sizes were not
// published; representative values parameterize the batch-response model
// without affecting the calibrated operating point.
var table6 = []Measurement{
	// RTX 3090.
	{apps.AirPollution, "RTX 3090", 119, 0.25, 0.59, 1168, 16},
	{apps.CropMonitoring, "RTX 3090", 222, 0.42, 1.57, 395, 16},
	{apps.FloodDetection, "RTX 3090", 325, 0.88, 5.53, 307, 16},
	{apps.AircraftDetect, "RTX 3090", 124, 0.06, 0.26, 74, 32},
	{apps.ForageQuality, "RTX 3090", 129, 0.27, 0.56, 843, 16},
	{apps.UrbanEmergency, "RTX 3090", 266, 0.72, 2.04, 569, 16},
	{apps.OilSpill, "RTX 3090", 347, 0.98, 3.84, 231, 8},
	{apps.TrafficMonitor, "RTX 3090", 19, 0.005, 2.72, 2597, 64},
	{apps.LandSurfaceClust, "RTX 3090", 108, 0.02, 0.35, 2175, 32},
	{apps.PanopticSeg, "RTX 3090", 160, 0.80, 7.81, 20, 2},
	// Jetson AGX Xavier.
	{apps.AirPollution, "Jetson AGX Xavier", 4.04, 0.27, 3.07, 825, 8},
	{apps.CropMonitoring, "Jetson AGX Xavier", 12.5, 0.84, 16.0, 86, 8},
	{apps.FloodDetection, "Jetson AGX Xavier", 13.8, 0.92, 78.4, 64, 4},
	{apps.AircraftDetect, "Jetson AGX Xavier", 2.62, 0.18, 17.5, 39, 8},
	{apps.ForageQuality, "Jetson AGX Xavier", 5.13, 0.34, 3.29, 449, 8},
	{apps.UrbanEmergency, "Jetson AGX Xavier", 12.6, 0.17, 17.4, 177, 8},
	{apps.OilSpill, "Jetson AGX Xavier", 14.6, 0.97, 80.2, 33, 4},
	{apps.TrafficMonitor, "Jetson AGX Xavier", 1.00, 0.005, 0.05, 9630, 64},
	{apps.LandSurfaceClust, "Jetson AGX Xavier", 2.21, 0.01, 0.6, 5792, 16},
}

// Table6 returns all published measurements.
func Table6() []Measurement {
	out := make([]Measurement, len(table6))
	copy(out, table6)
	return out
}

// ErrUnsupported is returned for (app, device) pairs that cannot run — the
// paper could not map Panoptic Segmentation onto the Jetson AGX Xavier.
var ErrUnsupported = fmt.Errorf("gpusim: application unsupported on device")

// MeasurementFor returns the Table 6 row for (app, device), or
// ErrUnsupported / not-found errors.
func MeasurementFor(app apps.ID, device string) (Measurement, error) {
	for _, m := range table6 {
		if m.App == app && m.Device == device {
			return m, nil
		}
	}
	if app == apps.PanopticSeg && device == JetsonXavier.Name {
		return Measurement{}, fmt.Errorf("%w: %s on %s", ErrUnsupported, app, device)
	}
	return Measurement{}, fmt.Errorf("gpusim: no measurement for %s on %s", app, device)
}
