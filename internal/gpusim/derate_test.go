package gpusim

import (
	"math"
	"testing"

	"spacedc/internal/apps"
)

func TestDeratedScalesPowerAndRate(t *testing.T) {
	m, err := NewModel(apps.FloodDetection, RTX3090)
	if err != nil {
		t.Fatal(err)
	}
	if m.DerateFactor() != 1 {
		t.Fatalf("fresh model derate %v, want 1", m.DerateFactor())
	}
	b := m.Calibration().BatchStar
	half, err := m.Derated(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Power capping: board power and pixel rate halve together, so energy
	// per pixel is unchanged and inference time doubles.
	if got, want := float64(half.Power(b)), 0.5*float64(m.Power(b)); math.Abs(got-want) > 1e-9 {
		t.Errorf("derated power %v, want %v", got, want)
	}
	if got, want := half.PixelRate(b), 0.5*m.PixelRate(b); math.Abs(got-want) > 1e-6 {
		t.Errorf("derated rate %v, want %v", got, want)
	}
	if got, want := half.InferTime(b), 2*m.InferTime(b); math.Abs(got-want) > 1e-9 {
		t.Errorf("derated infer time %v, want %v", got, want)
	}
	perPixel := func(mod *Model) float64 { return float64(mod.Power(b)) / mod.PixelRate(b) }
	if math.Abs(perPixel(half)-perPixel(m)) > 1e-15 {
		t.Errorf("energy per pixel changed under derate: %v vs %v", perPixel(half), perPixel(m))
	}
	// The original model is untouched.
	if m.DerateFactor() != 1 {
		t.Error("Derated mutated the receiver")
	}
}

func TestDeratedComposesAndValidates(t *testing.T) {
	m, err := NewModel(apps.FloodDetection, RTX3090)
	if err != nil {
		t.Fatal(err)
	}
	half, err := m.Derated(0.5)
	if err != nil {
		t.Fatal(err)
	}
	quarter, err := half.Derated(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(quarter.DerateFactor()-0.25) > 1e-12 {
		t.Errorf("composed derate %v, want 0.25", quarter.DerateFactor())
	}
	full, err := m.Derated(1)
	if err != nil || full.DerateFactor() != 1 {
		t.Errorf("unity derate should be a no-op: %v, %v", full, err)
	}
	for _, f := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := m.Derated(f); err == nil {
			t.Errorf("derate factor %v accepted", f)
		}
	}
}
