package gpusim

import (
	"math"
	"testing"

	"spacedc/internal/apps"
)

func TestRooflineCatalogCoversDevices(t *testing.T) {
	for _, d := range Catalog() {
		if _, err := RooflineFor(d.Name); err != nil {
			t.Errorf("no roofline for %s", d.Name)
		}
	}
	if _, err := RooflineFor("abacus"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestImpliedOpsAirPollution(t *testing.T) {
	// APP on the 3090: 1168 kpx/s/W × 119 W × 3317 FLOPs/px ≈ 0.46 TOP/s.
	m, err := MeasurementFor(apps.AirPollution, RTX3090.Name)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := ImpliedOpsPerSecond(m)
	if err != nil {
		t.Fatal(err)
	}
	if tops := ops / 1e12; math.Abs(tops-0.461) > 0.02 {
		t.Errorf("implied APP throughput = %v TOP/s, want ≈0.46", tops)
	}
}

func TestCheckConsistencyAllRowsPhysical(t *testing.T) {
	// The validation: every Table 5 × Table 6 pairing must fit under the
	// device's published tensor peak — and they all do, with the heavy
	// kernels (AD at ≈68 TOP/s on the 3090) using a sizable fraction of
	// it and the DSP kernel (TM) almost none.
	reports, err := CheckConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(Table6()) {
		t.Fatalf("got %d reports for %d rows", len(reports), len(Table6()))
	}
	var heaviest float64
	for _, r := range reports {
		if r.ImpliedTOPs < 0 || r.PeakTensorTOPs <= 0 {
			t.Errorf("%s on %s: degenerate report %+v", r.App, r.Device, r)
		}
		if r.ExceedsPeak {
			t.Errorf("%s on %s: implied %v TOP/s exceeds peak %v — tables inconsistent",
				r.App, r.Device, r.ImpliedTOPs, r.PeakTensorTOPs)
		}
		if frac := r.ImpliedTOPs / r.PeakTensorTOPs; frac > heaviest {
			heaviest = frac
		}
	}
	// The heaviest kernel should use a meaningful slice of the roofline —
	// if every row implied ≪1% of peak the tables would be suspiciously
	// decoupled.
	if heaviest < 0.05 {
		t.Errorf("heaviest implied fraction %v of peak; expected a substantial load", heaviest)
	}
}

func TestUnknownAppImpliedOps(t *testing.T) {
	if _, err := ImpliedOpsPerSecond(Measurement{App: "NOPE", Device: "RTX 3090", Power: 1, KPixelSW: 1}); err == nil {
		t.Error("unknown app accepted")
	}
}
