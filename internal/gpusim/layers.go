package gpusim

import (
	"fmt"

	"spacedc/internal/apps"
)

// This file models the Table 5 kernels at the layer level: convolution,
// dense, depthwise, and DSP stages with analytic operation and traffic
// counts. The graphs justify the per-pixel complexity numbers the rest of
// the study consumes — Table 5's "FLOPs/pixel" (MAC-counted, as the VGG19
// arithmetic shows) falls out of the layer math rather than being taken on
// faith — and expose arithmetic intensity for roofline reasoning about
// why utilization differs so much across apps (Table 6).

// Layer is one stage of a kernel with analytic cost counts.
type Layer struct {
	Name string
	// MACs is the multiply-accumulate count per inference.
	MACs float64
	// Bytes is the memory traffic per inference (weights + activations).
	Bytes float64
}

// KernelGraph is a layer-level model of one application kernel at its
// native input size.
type KernelGraph struct {
	App            apps.ID
	InputW, InputH int
	InputC         int
	Layers         []Layer
}

// TotalMACs sums the per-inference multiply-accumulates.
func (g KernelGraph) TotalMACs() float64 {
	total := 0.0
	for _, l := range g.Layers {
		total += l.MACs
	}
	return total
}

// TotalBytes sums the per-inference memory traffic.
func (g KernelGraph) TotalBytes() float64 {
	total := 0.0
	for _, l := range g.Layers {
		total += l.Bytes
	}
	return total
}

// OpsPerPixel returns the kernel's Table 5 metric: MACs per input pixel.
func (g KernelGraph) OpsPerPixel() float64 {
	return g.TotalMACs() / float64(g.InputW*g.InputH)
}

// ArithmeticIntensity returns MACs per byte of traffic — the roofline
// x-axis. High-intensity kernels (VGG) saturate compute; low-intensity
// ones (TM) sit on the bandwidth roof, which is why Table 6 shows <1%
// utilization for TM.
func (g KernelGraph) ArithmeticIntensity() float64 {
	b := g.TotalBytes()
	if b == 0 {
		return 0
	}
	return g.TotalMACs() / b
}

// conv builds a standard convolution layer: out spatial size (ow×oh),
// output channels oc, input channels ic, square kernel k.
func conv(name string, ow, oh, oc, ic, k int) Layer {
	macs := float64(ow*oh) * float64(oc) * float64(ic) * float64(k*k)
	weights := float64(oc*ic*k*k) * 4
	activations := float64(ow*oh*oc) * 4
	return Layer{Name: name, MACs: macs, Bytes: weights + activations}
}

// depthwise builds a depthwise convolution (one filter per channel).
func depthwise(name string, ow, oh, c, k int) Layer {
	macs := float64(ow*oh) * float64(c) * float64(k*k)
	return Layer{Name: name, MACs: macs, Bytes: float64(c*k*k)*4 + float64(ow*oh*c)*4}
}

// dense builds a fully connected layer.
func dense(name string, in, out int) Layer {
	macs := float64(in) * float64(out)
	return Layer{Name: name, MACs: macs, Bytes: macs*4 + float64(out)*4}
}

// dsp builds a pointwise DSP stage: ops per pixel over the full frame.
func dsp(name string, w, h int, opsPerPixel float64) Layer {
	px := float64(w * h)
	return Layer{Name: name, MACs: px * opsPerPixel, Bytes: px * 4 * 2}
}

// VGG19Graph is the exact VGG-19 convolutional network at 224×224 — the
// paper's Oil Spill Monitoring kernel. Its MAC count reproduces Table 5's
// 390 625 ops/pixel to within a fraction of a percent, confirming the
// paper counts MACs.
func VGG19Graph() KernelGraph {
	g := KernelGraph{App: apps.OilSpill, InputW: 224, InputH: 224, InputC: 3}
	type block struct {
		size, inC, outC, repeats int
	}
	blocks := []block{
		{224, 3, 64, 1}, {224, 64, 64, 1},
		{112, 64, 128, 1}, {112, 128, 128, 1},
		{56, 128, 256, 1}, {56, 256, 256, 3},
		{28, 256, 512, 1}, {28, 512, 512, 3},
		{14, 512, 512, 4},
	}
	for bi, b := range blocks {
		for r := 0; r < b.repeats; r++ {
			g.Layers = append(g.Layers,
				conv(fmt.Sprintf("conv%d_%d", bi, r), b.size, b.size, b.outC, b.inC, 3))
			b.inC = b.outC
		}
	}
	g.Layers = append(g.Layers,
		dense("fc6", 25088, 4096),
		dense("fc7", 4096, 4096),
		dense("fc8", 4096, 1000),
	)
	return g
}

// TrafficMonitorGraph is the custom channel-ratio DSP kernel (Table 5:
// 51 ops/pixel) over a full 4K frame.
func TrafficMonitorGraph() KernelGraph {
	return KernelGraph{
		App: apps.TrafficMonitor, InputW: 4096, InputH: 2160, InputC: 3,
		Layers: []Layer{dsp("blue-reflectance-ratio", 4096, 2160, 51)},
	}
}

// KMeansGraph is Land Surface Clustering: K-means with K=4 over a
// hyperspectral cube (Table 5: 15 984 ops/pixel = 2·K·D·I with D bands and
// I iterations).
func KMeansGraph() KernelGraph {
	const (
		k, bands, iters = 4, 222, 9
		w, h            = 512, 512
	)
	g := KernelGraph{App: apps.LandSurfaceClust, InputW: w, InputH: h, InputC: bands}
	for i := 0; i < iters; i++ {
		// Distance to each centroid: 2·D MACs per pixel per centroid.
		g.Layers = append(g.Layers, dsp(fmt.Sprintf("assign-iter%d", i), w, h, 2*k*bands))
	}
	return g
}

// AircraftDetectGraph is the custom 4-layer CNN run at full resolution
// (Table 5: 7 387 714 ops/pixel — heavyweight because every layer runs at
// input resolution with wide channels).
func AircraftDetectGraph() KernelGraph {
	const s = 512 // tile size; per-pixel cost is size-invariant
	return KernelGraph{
		App: apps.AircraftDetect, InputW: s, InputH: s, InputC: 3,
		Layers: []Layer{
			conv("conv1", s, s, 128, 3, 7),
			conv("conv2", s, s, 256, 128, 5),
			conv("conv3", s, s, 512, 256, 3),
			conv("conv4", s, s, 1150, 512, 3),
		},
	}
}

// MobileNetV3Graph is a block-level MobileNetV3-Large at 224×224 (Table 5:
// 4 484 ops/pixel ↔ ≈225 M MACs — the published V3-Large budget).
func MobileNetV3Graph() KernelGraph {
	g := KernelGraph{App: apps.UrbanEmergency, InputW: 224, InputH: 224, InputC: 3}
	g.Layers = append(g.Layers, conv("stem", 112, 112, 16, 3, 3))
	// Inverted residual stages: (size, in, expand, out, kernel, strided).
	// A strided stage's first block runs its expand convolution (and the
	// strided depthwise) at the previous stage's resolution before
	// downsampling — a significant share of the network's MACs.
	type stage struct {
		size, in, expand, out, k, repeats int
		strided                           bool
	}
	stages := []stage{
		{112, 16, 16, 16, 3, 1, false},
		{56, 16, 64, 24, 3, 2, true},
		{28, 24, 72, 40, 5, 3, true},
		{14, 40, 240, 80, 3, 4, true},
		{14, 80, 480, 112, 3, 2, false},
		{7, 112, 672, 160, 5, 3, true},
	}
	for si, st := range stages {
		in := st.in
		for r := 0; r < st.repeats; r++ {
			name := fmt.Sprintf("ir%d_%d", si, r)
			expandSize := st.size
			if st.strided && r == 0 {
				expandSize = st.size * 2
			}
			g.Layers = append(g.Layers,
				conv(name+"-expand", expandSize, expandSize, st.expand, in, 1),
				depthwise(name+"-dw", st.size, st.size, st.expand, st.k),
				conv(name+"-project", st.size, st.size, st.out, st.expand, 1),
				// Squeeze-and-excite: global pool + two dense layers.
				dense(name+"-se1", st.expand, st.expand/4),
				dense(name+"-se2", st.expand/4, st.expand),
			)
			in = st.out
		}
	}
	g.Layers = append(g.Layers,
		conv("head", 7, 7, 960, 160, 1),
		dense("classifier", 960, 1280),
		dense("logits", 1280, 1000),
	)
	return g
}

// Graphs returns the layer-level kernel models keyed by application. Apps
// whose kernels are built from published block structures appear here; the
// remaining Table 5 rows use their published aggregate ops/pixel directly.
func Graphs() map[apps.ID]KernelGraph {
	return map[apps.ID]KernelGraph{
		apps.OilSpill:         VGG19Graph(),
		apps.TrafficMonitor:   TrafficMonitorGraph(),
		apps.LandSurfaceClust: KMeansGraph(),
		apps.AircraftDetect:   AircraftDetectGraph(),
		apps.UrbanEmergency:   MobileNetV3Graph(),
	}
}

// ValidateAgainstTable5 compares a graph's ops/pixel to the application's
// published Table 5 value and returns the relative error.
func ValidateAgainstTable5(g KernelGraph) (relErr float64, err error) {
	app, err := apps.ByID(g.App)
	if err != nil {
		return 0, err
	}
	got := g.OpsPerPixel()
	want := app.FLOPsPerPixel
	return (got - want) / want, nil
}
