package gpusim

import (
	"errors"
	"math"
	"testing"

	"spacedc/internal/apps"
	"spacedc/internal/units"
)

func TestTable6Coverage(t *testing.T) {
	rows := Table6()
	// 10 apps on RTX 3090 + 9 on Xavier (PS unmappable) = 19 rows.
	if len(rows) != 19 {
		t.Fatalf("Table 6 has %d rows, want 19", len(rows))
	}
	for _, m := range rows {
		if m.Power <= 0 || m.KPixelSW <= 0 || m.InferSec <= 0 || m.BatchStar <= 0 {
			t.Errorf("%s on %s: non-positive fields %+v", m.App, m.Device, m)
		}
		if m.Util <= 0 || m.Util > 1 {
			t.Errorf("%s on %s: utilization %v outside (0,1]", m.App, m.Device, m.Util)
		}
	}
}

func TestMeasurementForPSOnXavier(t *testing.T) {
	_, err := MeasurementFor(apps.PanopticSeg, JetsonXavier.Name)
	if !errors.Is(err, ErrUnsupported) {
		t.Errorf("PS on Xavier: err = %v, want ErrUnsupported", err)
	}
}

func TestMeasurementForUnknown(t *testing.T) {
	if _, err := MeasurementFor("NOPE", RTX3090.Name); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := MeasurementFor(apps.AirPollution, "TPU v9"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestModelReproducesTable6AtOptimalBatch(t *testing.T) {
	for _, m := range Table6() {
		dev, err := DeviceByName(m.Device)
		if err != nil {
			t.Fatal(err)
		}
		model, err := NewModel(m.App, dev)
		if err != nil {
			t.Fatalf("%s on %s: %v", m.App, m.Device, err)
		}
		b := model.OptimalBatch()
		if b != m.BatchStar {
			t.Errorf("%s on %s: optimal batch %v, want %v", m.App, m.Device, b, m.BatchStar)
		}
		if got := model.EnergyEfficiency(b); math.Abs(got-m.KPixelSW)/m.KPixelSW > 1e-9 {
			t.Errorf("%s on %s: eff %v, want %v", m.App, m.Device, got, m.KPixelSW)
		}
		if got := model.Power(b); math.Abs(float64(got-m.Power))/float64(m.Power) > 1e-9 {
			t.Errorf("%s on %s: power %v, want %v", m.App, m.Device, got, m.Power)
		}
		if got := model.InferTime(b); math.Abs(got-m.InferSec)/m.InferSec > 1e-9 {
			t.Errorf("%s on %s: infer time %v, want %v", m.App, m.Device, got, m.InferSec)
		}
		if got := model.Utilization(b); math.Abs(got-m.Util) > 1e-9 {
			t.Errorf("%s on %s: util %v, want %v", m.App, m.Device, got, m.Util)
		}
	}
}

func TestEfficiencyCurveUnimodal(t *testing.T) {
	model, err := NewModel(apps.FloodDetection, RTX3090)
	if err != nil {
		t.Fatal(err)
	}
	bStar := model.Calibration().BatchStar
	peak := model.EnergyEfficiency(bStar)
	for _, b := range []float64{bStar / 8, bStar / 2, 2 * bStar, 8 * bStar} {
		if e := model.EnergyEfficiency(b); e >= peak {
			t.Errorf("efficiency at batch %v (%v) not below peak (%v)", b, e, peak)
		}
	}
	// Monotone rise up to the peak.
	prev := 0.0
	for b := 1.0; b <= bStar; b++ {
		e := model.EnergyEfficiency(b)
		if e < prev {
			t.Fatalf("efficiency decreasing before peak at batch %v", b)
		}
		prev = e
	}
}

func TestPowerBoundedByTDP(t *testing.T) {
	for _, m := range Table6() {
		dev, _ := DeviceByName(m.Device)
		model, err := NewModel(m.App, dev)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range []float64{0, 1, m.BatchStar, 10 * m.BatchStar, 1000 * m.BatchStar} {
			p := model.Power(b)
			if p < 0 || p > dev.TDP {
				t.Errorf("%s on %s: power %v at batch %v outside [0, TDP=%v]",
					m.App, m.Device, p, b, dev.TDP)
			}
		}
	}
}

func TestUtilizationBounds(t *testing.T) {
	model, err := NewModel(apps.OilSpill, RTX3090) // 98% measured util
	if err != nil {
		t.Fatal(err)
	}
	for b := 0.0; b < 100; b += 5 {
		u := model.Utilization(b)
		if u < 0 || u > 1 {
			t.Fatalf("utilization %v at batch %v", u, b)
		}
	}
}

func TestZeroBatchDegenerate(t *testing.T) {
	model, err := NewModel(apps.AirPollution, RTX3090)
	if err != nil {
		t.Fatal(err)
	}
	if model.EnergyEfficiency(0) != 0 || model.PixelRate(0) != 0 {
		t.Error("zero batch should process nothing")
	}
	if !math.IsInf(model.InferTime(0), 1) {
		t.Error("zero batch inference should take forever")
	}
	if model.Power(0) != RTX3090.Idle {
		t.Errorf("zero batch power = %v, want idle", model.Power(0))
	}
}

func TestScaledDeviceAI100(t *testing.T) {
	base, err := NewModel(apps.CropMonitoring, RTX3090)
	if err != nil {
		t.Fatal(err)
	}
	ai, err := NewModel(apps.CropMonitoring, CloudAI100)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ai.BestEfficiency() / base.BestEfficiency()
	if math.Abs(ratio-18.25) > 1e-9 {
		t.Errorf("AI 100 efficiency gain = %v, want 18.25 (§9)", ratio)
	}
	// Power stays within the AI 100's 75 W envelope.
	if p := ai.Power(1e6); p > CloudAI100.TDP {
		t.Errorf("AI 100 power %v exceeds TDP", p)
	}
}

func TestDeviceEfficiencyOrdering(t *testing.T) {
	// §9 ordering at equal workload: AI100 > H100 > A100 > RTX 3090.
	effFor := func(d Device) float64 {
		m, err := NewModel(apps.UrbanEmergency, d)
		if err != nil {
			t.Fatal(err)
		}
		return m.BestEfficiency()
	}
	ai, h, a, rtx := effFor(CloudAI100), effFor(H100), effFor(A100), effFor(RTX3090)
	if !(ai > h && h > a && a > rtx) {
		t.Errorf("efficiency ordering wrong: AI100=%v H100=%v A100=%v 3090=%v", ai, h, a, rtx)
	}
}

func TestPSOnXavierModelFails(t *testing.T) {
	if _, err := NewModel(apps.PanopticSeg, JetsonXavier); err == nil {
		t.Error("PS on Xavier should be unsupported")
	}
}

func TestUnknownAppModel(t *testing.T) {
	if _, err := NewModel("XX", RTX3090); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestPowerForPixelRateRoundTrip(t *testing.T) {
	model, err := NewModel(apps.FloodDetection, RTX3090)
	if err != nil {
		t.Fatal(err)
	}
	rate := model.PixelRateForPower(4 * units.Kilowatt)
	back := model.PowerForPixelRate(rate)
	if math.Abs(float64(back)-4000)/4000 > 1e-9 {
		t.Errorf("power round trip = %v, want 4 kW", back)
	}
	// FD on 3090: 307 kpx/s/W × 4 kW = 1.228e9 px/s.
	if math.Abs(rate-1.228e9)/1.228e9 > 0.001 {
		t.Errorf("4 kW FD rate = %v, want ≈1.228e9 px/s", rate)
	}
}

func TestCatalogLookup(t *testing.T) {
	if len(Catalog()) != 5 {
		t.Errorf("catalog size %d, want 5", len(Catalog()))
	}
	if _, err := DeviceByName("RTX 3090"); err != nil {
		t.Error(err)
	}
	if _, err := DeviceByName("Cerebras"); err == nil {
		t.Error("unknown device found")
	}
}

func TestXavierVsRTX3090EfficiencyShape(t *testing.T) {
	// Table 6 shape: the Xavier is the more efficient device for the
	// lightweight TM and LSC kernels, the 3090 for heavy DNNs.
	type pair struct {
		id        apps.ID
		rtxBetter bool
	}
	for _, p := range []pair{
		{apps.TrafficMonitor, false},
		{apps.LandSurfaceClust, false},
		{apps.FloodDetection, true},
		{apps.CropMonitoring, true},
		{apps.OilSpill, true},
	} {
		rtx, err := NewModel(p.id, RTX3090)
		if err != nil {
			t.Fatal(err)
		}
		xav, err := NewModel(p.id, JetsonXavier)
		if err != nil {
			t.Fatal(err)
		}
		if (rtx.BestEfficiency() > xav.BestEfficiency()) != p.rtxBetter {
			t.Errorf("%s: rtx=%v xavier=%v, want rtxBetter=%v",
				p.id, rtx.BestEfficiency(), xav.BestEfficiency(), p.rtxBetter)
		}
	}
}

func TestMeasurementPixelRate(t *testing.T) {
	m, err := MeasurementFor(apps.AirPollution, RTX3090.Name)
	if err != nil {
		t.Fatal(err)
	}
	// 1168 kpx/s/W × 119 W ≈ 1.39e8 px/s.
	if got := m.PixelRate(); math.Abs(got-1.39e8)/1.39e8 > 0.01 {
		t.Errorf("APP pixel rate = %v, want ≈1.39e8", got)
	}
}
