package gpusim_test

import (
	"fmt"

	"spacedc/internal/apps"
	"spacedc/internal/gpusim"
	"spacedc/internal/units"
)

// Example builds a device model and reads off the Table 6 operating point
// it was calibrated against.
func Example() {
	model, err := gpusim.NewModel(apps.FloodDetection, gpusim.RTX3090)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	b := model.OptimalBatch()
	fmt.Printf("optimal batch %v: %.0f kpx/s/W at %v\n",
		b, model.EnergyEfficiency(b), model.Power(b))
	// Output: optimal batch 16: 307 kpx/s/W at 325 W
}

// ExampleModel_PixelRateForPower answers the SµDC sizing question: how
// many pixels per second does 4 kW of RTX 3090s sustain on flood
// detection?
func ExampleModel_PixelRateForPower() {
	model, err := gpusim.NewModel(apps.FloodDetection, gpusim.RTX3090)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.3g pixels/s\n", model.PixelRateForPower(4*units.Kilowatt))
	// Output: 1.23e+09 pixels/s
}

// ExampleVGG19Graph re-derives Table 5's ops/pixel from the network
// structure.
func ExampleVGG19Graph() {
	g := gpusim.VGG19Graph()
	fmt.Printf("VGG19: %.1f GMACs, %.0f ops/pixel\n", g.TotalMACs()/1e9, g.OpsPerPixel())
	// Output: VGG19: 19.6 GMACs, 391264 ops/pixel
}
