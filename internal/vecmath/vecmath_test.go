package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecApprox(a, b Vec3, tol float64) bool {
	return approx(a.X, b.X, tol) && approx(a.Y, b.Y, tol) && approx(a.Z, b.Z, tol)
}

func finiteVec(v Vec3) bool {
	ok := func(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e10 }
	return ok(v.X) && ok(v.Y) && ok(v.Z)
}

func TestAddSubInverse(t *testing.T) {
	f := func(a, b Vec3) bool {
		if !finiteVec(a) || !finiteVec(b) {
			return true
		}
		return vecApprox(a.Add(b).Sub(b), a, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	f := func(a, b Vec3) bool {
		if !finiteVec(a) || !finiteVec(b) {
			return true
		}
		c := a.Cross(b)
		// c ⊥ a and c ⊥ b, within scale-dependent tolerance.
		tol := 1e-6 * (1 + a.Norm()*a.Norm()*b.Norm() + b.Norm()*b.Norm()*a.Norm())
		return approx(c.Dot(a), 0, tol) && approx(c.Dot(b), 0, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossRightHanded(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	z := Vec3{0, 0, 1}
	if got := x.Cross(y); !vecApprox(got, z, 1e-15) {
		t.Errorf("x × y = %v, want z", got)
	}
	if got := y.Cross(z); !vecApprox(got, x, 1e-15) {
		t.Errorf("y × z = %v, want x", got)
	}
	if got := z.Cross(x); !vecApprox(got, y, 1e-15) {
		t.Errorf("z × x = %v, want y", got)
	}
}

func TestUnitNorm(t *testing.T) {
	f := func(v Vec3) bool {
		if !finiteVec(v) || v.Norm() < 1e-9 {
			return true
		}
		return approx(v.Unit().Norm(), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !Vec3.IsZero(Vec3{}.Unit()) {
		t.Error("unit of zero vector should remain zero")
	}
}

func TestAngleTo(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 2, 0}
	if got := x.AngleTo(y); !approx(got, math.Pi/2, 1e-12) {
		t.Errorf("angle(x, y) = %v, want π/2", got)
	}
	if got := x.AngleTo(x.Scale(5)); !approx(got, 0, 1e-6) {
		t.Errorf("angle(x, 5x) = %v, want 0", got)
	}
	if got := x.AngleTo(x.Neg()); !approx(got, math.Pi, 1e-6) {
		t.Errorf("angle(x, -x) = %v, want π", got)
	}
	if got := x.AngleTo(Vec3{}); got != 0 {
		t.Errorf("angle to zero vector = %v, want 0", got)
	}
}

func TestRotZQuarterTurn(t *testing.T) {
	got := RotZ(math.Pi / 2).MulVec(Vec3{1, 0, 0})
	if !vecApprox(got, Vec3{0, 1, 0}, 1e-12) {
		t.Errorf("RotZ(90°)·x = %v, want y", got)
	}
}

func TestRotationPreservesNorm(t *testing.T) {
	f := func(v Vec3, a float64) bool {
		if !finiteVec(v) || math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		for _, m := range []Mat3{RotX(a), RotY(a), RotZ(a)} {
			if !approx(m.MulVec(v).Norm(), v.Norm(), 1e-6*(1+v.Norm())) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotationInverseIsTranspose(t *testing.T) {
	f := func(v Vec3, a float64) bool {
		if !finiteVec(v) || math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		m := RotZ(a).Mul(RotX(a / 2))
		back := m.Transpose().MulVec(m.MulVec(v))
		return vecApprox(back, v, 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatMulIdentity(t *testing.T) {
	m := RotX(0.3).Mul(RotY(1.1)).Mul(RotZ(-0.7))
	id := m.Mul(m.Transpose())
	want := Identity()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !approx(id[i][j], want[i][j], 1e-12) {
				t.Fatalf("m·mᵀ[%d][%d] = %v, want %v", i, j, id[i][j], want[i][j])
			}
		}
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 1, 1}, {-5, 0, 1, 0}, {0.5, 0, 1, 0.5},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestWrapTwoPi(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		w := WrapTwoPi(a)
		return w >= 0 && w < 2*math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapPi(t *testing.T) {
	if got := WrapPi(3 * math.Pi / 2); !approx(got, -math.Pi/2, 1e-12) {
		t.Errorf("WrapPi(3π/2) = %v, want -π/2", got)
	}
	if got := WrapPi(math.Pi); !approx(got, math.Pi, 1e-12) {
		t.Errorf("WrapPi(π) = %v, want π", got)
	}
}

func TestDistanceTo(t *testing.T) {
	a := Vec3{0, 3, 0}
	b := Vec3{4, 0, 0}
	if got := a.DistanceTo(b); !approx(got, 5, 1e-12) {
		t.Errorf("distance = %v, want 5", got)
	}
}
