// Package vecmath provides the small amount of 3-D vector and matrix
// arithmetic the orbital mechanics code needs: vectors, dot/cross products,
// rotations about principal axes, and angle helpers.
//
// All angles are radians; all distances are whatever unit the caller uses
// consistently (the orbit package uses kilometers).
package vecmath

import (
	"fmt"
	"math"
)

// Vec3 is a 3-D vector.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormSq returns |v|².
func (v Vec3) NormSq() float64 { return v.Dot(v) }

// Unit returns v/|v|. The zero vector is returned unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// AngleTo returns the angle between v and w in [0, π].
func (v Vec3) AngleTo(w Vec3) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	c := v.Dot(w) / (nv * nw)
	return math.Acos(Clamp(c, -1, 1))
}

// DistanceTo returns |v - w|.
func (v Vec3) DistanceTo(w Vec3) float64 { return v.Sub(w).Norm() }

// IsZero reports whether all components are exactly zero.
func (v Vec3) IsZero() bool { return v.X == 0 && v.Y == 0 && v.Z == 0 }

// String renders the vector with 6 significant digits.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.6g, %.6g, %.6g)", v.X, v.Y, v.Z)
}

// Mat3 is a 3×3 matrix in row-major order.
type Mat3 [3][3]float64

// Identity returns the identity matrix.
func Identity() Mat3 {
	return Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// MulVec returns m·v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z,
		m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z,
		m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z,
	}
}

// Mul returns m·n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				out[i][j] += m[i][k] * n[k][j]
			}
		}
	}
	return out
}

// Transpose returns mᵀ. For rotation matrices this is the inverse.
func (m Mat3) Transpose() Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i][j] = m[j][i]
		}
	}
	return out
}

// RotX returns the rotation matrix for angle a (radians) about the X axis.
// The matrix rotates vectors by +a following the right-hand rule.
func RotX(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{
		{1, 0, 0},
		{0, c, -s},
		{0, s, c},
	}
}

// RotY returns the rotation matrix for angle a about the Y axis.
func RotY(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{
		{c, 0, s},
		{0, 1, 0},
		{-s, 0, c},
	}
}

// RotZ returns the rotation matrix for angle a about the Z axis.
func RotZ(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{
		{c, -s, 0},
		{s, c, 0},
		{0, 0, 1},
	}
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// WrapTwoPi wraps an angle into [0, 2π).
func WrapTwoPi(a float64) float64 {
	const twoPi = 2 * math.Pi
	a = math.Mod(a, twoPi)
	if a < 0 {
		a += twoPi
	}
	return a
}

// WrapPi wraps an angle into (-π, π].
func WrapPi(a float64) float64 {
	a = WrapTwoPi(a)
	if a > math.Pi {
		a -= 2 * math.Pi
	}
	return a
}
