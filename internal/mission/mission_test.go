package mission

import (
	"strings"
	"testing"
	"time"

	"spacedc/internal/apps"
	"spacedc/internal/core"
	"spacedc/internal/gpusim"
	"spacedc/internal/isl"
	"spacedc/internal/units"
)

func baseSpec() Spec {
	return Spec{
		App:          apps.FloodDetection,
		SpatialResM:  1,
		EarlyDiscard: 0.95,
		Satellites:   64,
	}
}

func TestPlanBaseline(t *testing.T) {
	d, err := Plan(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	if d.Satellites != 64 {
		t.Errorf("satellites = %d", d.Satellites)
	}
	// The Fig 9 headline: one 4 kW SµDC for FD at 1 m / 95%... the SAA
	// pause tax is small, so still 1.
	if d.SuDCs != 1 {
		t.Errorf("SuDCs = %d, want 1", d.SuDCs)
	}
	if d.Clusters < d.SuDCs {
		t.Error("clusters must cover compute")
	}
	if d.Capex <= 0 || d.BreakEvenDays <= 0 {
		t.Errorf("economics empty: %+v", d.Capex)
	}
	if d.Thermal.RadiatorAreaM2 <= 0 || d.Power.BatteryMassKg <= 0 {
		t.Error("physical budgets missing")
	}
	if d.Mitigation != 0 && d.Mitigation.String() == "unknown" {
		t.Error("mitigation unset")
	}
	s := d.Summary()
	for _, want := range []string{"mission: FD", "fleet: 64", "compute:", "network:", "radiation:", "economics:"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestPlanRevisitDrivenFleet(t *testing.T) {
	spec := baseSpec()
	spec.Satellites = 0
	spec.RevisitTarget = time.Hour
	d, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Satellites < 10 {
		t.Errorf("hourly revisit sized only %d satellites", d.Satellites)
	}
	if d.RevisitAchieved <= 0 || d.RevisitAchieved > time.Hour {
		t.Errorf("achieved revisit %v, want ≤ target", d.RevisitAchieved)
	}
	// Tighter revisit → larger fleet.
	spec.RevisitTarget = 10 * time.Minute
	d2, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Satellites <= d.Satellites {
		t.Errorf("10-min fleet %d should exceed 1-hour fleet %d", d2.Satellites, d.Satellites)
	}
}

func TestPlanResolvesISLBottleneckWithKList(t *testing.T) {
	// A lightweight app at fine resolution on weak links: the ring is
	// bottlenecked, and the planner should raise k (feasible on a 64-sat
	// orbit-spaced plane up to k=14).
	spec := baseSpec()
	spec.App = apps.TrafficMonitor
	spec.SpatialResM = 0.3
	spec.EarlyDiscard = 0.5
	spec.ISLTech = isl.Optical10G
	d, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Topology.K <= 2 && d.Bottleneck == isl.ISLBound {
		t.Errorf("planner left a resolvable bottleneck at k=2: %+v", d.Topology)
	}
	if d.Topology.K > 2 {
		// Raising k must not be gratuitous: the ring must actually have
		// been bottlenecked.
		ringPlan, err := core.PlanClusters(d.Workload, d.PerSuDC, spec.ISLTech.Capacity, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ringPlan.Bottleneck != isl.ISLBound {
			t.Error("planner raised k without need")
		}
	}
}

func TestPlanGEOPlacement(t *testing.T) {
	leo, err := Plan(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec := baseSpec()
	spec.Placement = core.GEO
	spec.MissionYears = 15
	geo, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	// GEO: smaller array, longer battery life, near-zero boost, cheap
	// graveyard disposal, heavier radiation posture.
	if geo.Power.ArrayPower >= leo.Power.ArrayPower {
		t.Errorf("GEO array %v should undercut LEO %v", geo.Power.ArrayPower, leo.Power.ArrayPower)
	}
	if geo.Power.BatteryYears <= leo.Power.BatteryYears {
		t.Error("GEO battery should outlive LEO")
	}
	if geo.BoostDVPerYr >= leo.BoostDVPerYr {
		t.Error("GEO needs less boosting")
	}
	if geo.DisposalDV >= leo.DisposalDV {
		t.Error("GEO graveyard should be cheaper than LEO deorbit")
	}
	if geo.Mitigation <= leo.Mitigation {
		t.Errorf("15-year GEO mitigation (%v) should exceed LEO (%v)", geo.Mitigation, leo.Mitigation)
	}
}

func TestPlanDeviceMatters(t *testing.T) {
	spec := baseSpec()
	spec.SpatialResM = 0.1
	spec.EarlyDiscard = 0.5
	rtx, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Device = gpusim.CloudAI100
	ai, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ai.SuDCs >= rtx.SuDCs {
		t.Errorf("AI 100 fleet %d should undercut RTX fleet %d", ai.SuDCs, rtx.SuDCs)
	}
}

func TestPlanValidation(t *testing.T) {
	bad := baseSpec()
	bad.SpatialResM = 0
	if _, err := Plan(bad); err == nil {
		t.Error("zero resolution accepted")
	}
	bad = baseSpec()
	bad.EarlyDiscard = 1
	if _, err := Plan(bad); err == nil {
		t.Error("100% discard accepted")
	}
	bad = baseSpec()
	bad.Satellites = 0
	if _, err := Plan(bad); err == nil {
		t.Error("no fleet sizing input accepted")
	}
	bad = baseSpec()
	bad.App = "NOPE"
	if _, err := Plan(bad); err == nil {
		t.Error("unknown app accepted")
	}
	// PS on Xavier is unplannable.
	bad = baseSpec()
	bad.App = apps.PanopticSeg
	bad.Device = gpusim.JetsonXavier
	if _, err := Plan(bad); err == nil {
		t.Error("PS on Xavier accepted")
	}
}

func TestPlanDefaultsApplied(t *testing.T) {
	d, err := Plan(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	if d.PerSuDC.Device.Name != "RTX 3090" {
		t.Errorf("default device = %s", d.PerSuDC.Device.Name)
	}
	if d.PerSuDC.ComputeBudget != 4*units.Kilowatt {
		t.Errorf("default budget = %v", d.PerSuDC.ComputeBudget)
	}
	if d.Spec.MissionYears != 5 || d.Spec.AltKm != 550 {
		t.Errorf("defaults not applied: %+v", d.Spec)
	}
}

func TestPlanInfeasibleISLSurfaced(t *testing.T) {
	// TM at 10 cm with no discard over RF links: a single satellite's
	// stream (~191 Gb/s) saturates any chain; the summary must say so
	// rather than print a MaxInt32 cluster count.
	spec := baseSpec()
	spec.App = apps.TrafficMonitor
	spec.SpatialResM = 0.1
	spec.EarlyDiscard = 0
	spec.ISLTech = isl.RFKaBand
	d, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Summary()
	if !strings.Contains(s, "INFEASIBLE") {
		t.Errorf("summary should flag ISL infeasibility:\n%s", s)
	}
}
