package mission_test

import (
	"fmt"

	"spacedc/internal/apps"
	"spacedc/internal/mission"
)

// Example plans the paper's baseline mission in one call.
func Example() {
	design, err := mission.Plan(mission.Spec{
		App:          apps.FloodDetection,
		SpatialResM:  1,
		EarlyDiscard: 0.95,
		Satellites:   64,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d × %v SµDC, %d-list topology, %v\n",
		design.SuDCs, design.PerSuDC.ComputeBudget, design.Topology.K, design.Bottleneck)
	// Output: 1 × 4 kW SµDC, 2-list topology, ISL-unconstrained
}
