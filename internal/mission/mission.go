// Package mission is the capstone API of the library: it composes the
// coverage, core, isl, radiation, thermal, and orbit models into a single
// end-to-end planner. Given an application, resolution, and revisit
// target, Plan produces a complete SµDC-backed mission design — fleet
// sizes, ISL topology, radiation posture, thermal and power budgets,
// boost requirements, and economics — the full §5-9 story in one call.
package mission

import (
	"fmt"
	"math"
	"time"

	"spacedc/internal/apps"
	"spacedc/internal/core"
	"spacedc/internal/coverage"
	"spacedc/internal/datagen"
	"spacedc/internal/gpusim"
	"spacedc/internal/isl"
	"spacedc/internal/orbit"
	"spacedc/internal/radiation"
	"spacedc/internal/thermal"
	"spacedc/internal/units"
)

// Spec describes what the mission must do.
type Spec struct {
	App          apps.ID
	SpatialResM  float64
	EarlyDiscard float64
	// RevisitTarget drives the constellation size. Zero uses Satellites
	// directly.
	RevisitTarget time.Duration
	// Satellites fixes the fleet size when RevisitTarget is zero.
	Satellites int
	// SensorHalfAngleRad sets the imaging swath for revisit sizing
	// (default 30°).
	SensorHalfAngleRad float64

	AltKm  float64 // constellation altitude (default 550)
	IncRad float64 // constellation inclination (default 53°)

	// SµDC design.
	Device     gpusim.Device // default RTX 3090
	SuDCBudget units.Power   // default 4 kW
	Placement  core.Placement
	ISLTech    isl.LinkTech // default optical 10G

	MissionYears float64 // default 5
	Epoch        time.Time
}

// withDefaults fills zero fields.
func (s Spec) withDefaults() Spec {
	if s.SensorHalfAngleRad == 0 {
		s.SensorHalfAngleRad = 30 * math.Pi / 180
	}
	if s.AltKm == 0 {
		s.AltKm = 550
	}
	if s.IncRad == 0 {
		s.IncRad = 53 * math.Pi / 180
	}
	if s.Device.Name == "" {
		s.Device = gpusim.RTX3090
	}
	if s.SuDCBudget == 0 {
		s.SuDCBudget = 4 * units.Kilowatt
	}
	if s.ISLTech.Name == "" {
		s.ISLTech = isl.Optical10G
	}
	if s.MissionYears == 0 {
		s.MissionYears = 5
	}
	if s.Epoch.IsZero() {
		s.Epoch = time.Date(2026, 3, 20, 0, 0, 0, 0, time.UTC)
	}
	return s
}

// Validate checks the spec after defaulting.
func (s Spec) Validate() error {
	if s.SpatialResM <= 0 {
		return fmt.Errorf("mission: non-positive resolution %v", s.SpatialResM)
	}
	if s.EarlyDiscard < 0 || s.EarlyDiscard >= 1 {
		return fmt.Errorf("mission: early discard %v outside [0, 1)", s.EarlyDiscard)
	}
	if s.RevisitTarget == 0 && s.Satellites <= 0 {
		return fmt.Errorf("mission: need a revisit target or a satellite count")
	}
	if _, err := apps.ByID(s.App); err != nil {
		return err
	}
	return nil
}

// Design is the planned mission.
type Design struct {
	Spec Spec

	// Fleet.
	Satellites      int
	RevisitAchieved time.Duration

	// Compute.
	SuDCs    int
	PerSuDC  core.SuDC
	Workload core.Workload

	// Network.
	Topology   isl.Topology
	Clusters   int
	Bottleneck isl.Bottleneck

	// Environment.
	SAAFraction float64
	Mitigation  radiation.Mitigation

	// Budgets.
	Thermal      thermal.Budget
	Power        core.PowerSystem
	BoostDVPerYr float64 // m/s/yr of drag make-up
	DisposalDV   float64 // m/s end-of-life burn

	// Economics.
	Capex         units.Money
	BreakEvenDays float64 // vs $1000/min downlink
}

// Plan produces a full design for the spec.
func Plan(spec Spec) (Design, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return Design{}, err
	}
	d := Design{Spec: spec}

	// 1. Fleet size from the revisit requirement.
	if spec.RevisitTarget > 0 {
		im := coverage.Imager{AltKm: spec.AltKm, HalfAngleRad: spec.SensorHalfAngleRad}
		n, err := coverage.SatellitesForRevisit(im, spec.RevisitTarget, 0)
		if err != nil {
			return Design{}, err
		}
		d.Satellites = n
		d.RevisitAchieved, err = coverage.MeanRevisit(im, n, 0)
		if err != nil {
			return Design{}, err
		}
	} else {
		d.Satellites = spec.Satellites
	}

	// 2. Radiation posture: SAA exposure and mitigation choice.
	el := orbit.CircularLEO(spec.AltKm, spec.IncRad, 0, 0, spec.Epoch)
	sudcAlt := spec.AltKm
	if spec.Placement == core.GEO {
		sudcAlt = orbit.GeostationaryAltitudeKm
	}
	saaFrac, err := radiation.DefaultSAA().TimeFraction(el, spec.Epoch, 24*time.Hour, time.Minute)
	if err != nil {
		return Design{}, err
	}
	d.SAAFraction = saaFrac
	d.Mitigation = radiation.Recommend(sudcAlt, spec.MissionYears)

	// 3. SµDC sizing with the mitigation's capacity tax.
	sudc := core.SuDC{
		Name:          "SµDC",
		ComputeBudget: spec.SuDCBudget,
		Device:        spec.Device,
		Placement:     spec.Placement,
	}
	capacity := d.Mitigation.CapacityFactor(saaFrac)
	effective := sudc
	effective.ComputeBudget = units.Power(float64(sudc.ComputeBudget) * capacity)
	d.PerSuDC = sudc

	d.Workload = core.Workload{
		App:          spec.App,
		Mission:      datagen.Mission{Frame: datagen.Default4K, Satellites: d.Satellites},
		ResolutionM:  spec.SpatialResM,
		EarlyDiscard: spec.EarlyDiscard,
	}
	d.SuDCs, err = core.SuDCsNeeded(d.Workload, effective)
	if err != nil {
		return Design{}, err
	}

	// 4. ISL co-design: start from a ring and raise k (within geometric
	// feasibility) until the constellation is compute-bound; any residual
	// bottleneck is absorbed by splitting (more clusters).
	geom := isl.OrbitSpacedGeometry(spec.AltKm, maxInt(d.Satellites, 1))
	maxK := geom.MaxK(orbit.AtmosphereGrazeKm)
	if maxK < 2 {
		maxK = 2
	}
	chosen := isl.Ring
	var plan core.ClusterPlan
	for k := 2; k <= maxK; k += 2 {
		plan, err = core.PlanClusters(d.Workload, effective, spec.ISLTech.Capacity, k)
		if err != nil {
			return Design{}, err
		}
		chosen = isl.Topology{K: k, Split: 1}
		if plan.Bottleneck == isl.ComputeBound {
			break
		}
	}
	d.Topology = chosen
	d.Clusters = plan.Clusters
	d.Bottleneck = plan.Bottleneck

	// 5. Physical budgets per SµDC.
	d.Thermal, err = thermal.SizeBudget(sudc.ComputeBudget)
	if err != nil {
		return Design{}, err
	}
	var sudcOrbit orbit.Elements
	if spec.Placement == core.GEO {
		sudcOrbit = orbit.Geostationary(0, spec.Epoch)
	} else {
		sudcOrbit = el
	}
	d.Power, err = core.SizePowerSystem(sudc, sudcOrbit, spec.Epoch)
	if err != nil {
		return Design{}, err
	}
	body := orbit.DragBody{MassKg: 2000, AreaM2: 40}
	d.BoostDVPerYr = body.BoostDeltaVPerYear(sudcAlt)
	if spec.Placement == core.GEO {
		d.DisposalDV = orbit.GraveyardDeltaV()
	} else {
		d.DisposalDV = orbit.DisposalDeltaV(sudcAlt, 50)
	}

	// 6. Economics.
	cm := core.DefaultCostModel()
	launched := d.Clusters
	if d.SuDCs > launched {
		launched = d.SuDCs
	}
	d.Capex = cm.SuDCCapex(launched)
	d.BreakEvenDays = cm.BreakEvenDays(launched, units.Money(1000*60*24))
	return d, nil
}

// maxInt returns the larger int.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Summary renders the design as a human-readable block.
func (d Design) Summary() string {
	out := fmt.Sprintf("mission: %s at %s, %.0f%% early discard\n",
		d.Spec.App, datagen.ResolutionLabel(d.Spec.SpatialResM), d.Spec.EarlyDiscard*100)
	out += fmt.Sprintf("fleet: %d EO satellites at %.0f km", d.Satellites, d.Spec.AltKm)
	if d.RevisitAchieved > 0 {
		out += fmt.Sprintf(" (revisit %v)", d.RevisitAchieved.Round(time.Minute))
	}
	out += "\n"
	out += fmt.Sprintf("compute: %d × %v SµDC (%s, %s placement)\n",
		d.SuDCs, d.PerSuDC.ComputeBudget, d.PerSuDC.Device.Name, d.PerSuDC.Placement)
	if d.Clusters > 100000 {
		out += fmt.Sprintf("network: INFEASIBLE — one satellite's stream saturates a %s link; "+
			"raise ISL capacity or early discard\n", d.Spec.ISLTech.Name)
	} else {
		out += fmt.Sprintf("network: %d-list, %d clusters (%v) over %s\n",
			d.Topology.K, d.Clusters, d.Bottleneck, d.Spec.ISLTech.Name)
	}
	out += fmt.Sprintf("radiation: %.1f%% of orbit in SAA → %v\n", d.SAAFraction*100, d.Mitigation)
	out += fmt.Sprintf("thermal: %.1f m² radiator, %d heat pipes, %v recovered\n",
		d.Thermal.RadiatorAreaM2, d.Thermal.HeatPipes, d.Thermal.TEGRecovered)
	out += fmt.Sprintf("power: %v array, %.0f kg battery (%.1f yr)\n",
		d.Power.ArrayPower, d.Power.BatteryMassKg, d.Power.BatteryYears)
	out += fmt.Sprintf("orbit upkeep: %.1f m/s/yr boost, %.0f m/s disposal\n", d.BoostDVPerYr, d.DisposalDV)
	out += fmt.Sprintf("economics: %v capex, breakeven vs $1000/min downlink in %.0f days\n",
		d.Capex, d.BreakEvenDays)
	return out
}
