package radiation

import (
	"math"
	"testing"
	"time"

	"spacedc/internal/orbit"
)

var epoch = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

func TestSAAContains(t *testing.T) {
	saa := DefaultSAA()
	deg := math.Pi / 180
	cases := []struct {
		name string
		g    orbit.Geodetic
		want bool
	}{
		{"center", orbit.Geodetic{LatRad: -26 * deg, LonRad: -45 * deg, AltKm: 500}, true},
		{"rio", orbit.Geodetic{LatRad: -23 * deg, LonRad: -43 * deg, AltKm: 500}, true},
		{"north atlantic", orbit.Geodetic{LatRad: 40 * deg, LonRad: -45 * deg, AltKm: 500}, false},
		{"pacific", orbit.Geodetic{LatRad: -26 * deg, LonRad: 170 * deg, AltKm: 500}, false},
		{"antipode wraps", orbit.Geodetic{LatRad: -26 * deg, LonRad: -44 * deg, AltKm: 500}, true},
		{"equator edge", orbit.Geodetic{LatRad: 0, LonRad: -45 * deg, AltKm: 500}, false},
	}
	for _, c := range cases {
		if got := saa.Contains(c.g); got != c.want {
			t.Errorf("%s: Contains = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSAAGrowsWithAltitude(t *testing.T) {
	saa := DefaultSAA()
	deg := math.Pi / 180
	// A point just outside at 500 km falls inside at 1500 km.
	edge := orbit.Geodetic{LatRad: -26 * deg, LonRad: (-45 + 47) * deg, AltKm: 500}
	if saa.Contains(edge) {
		t.Fatal("point should start outside")
	}
	edge.AltKm = 1500
	if !saa.Contains(edge) {
		t.Error("anomaly should widen with altitude")
	}
}

func TestSAATimeFractionISSLike(t *testing.T) {
	// A 51.6°, 420 km orbit spends single-digit percent of its time in
	// the anomaly (ISS experience: ~5%).
	el := orbit.CircularLEO(420, 51.6*math.Pi/180, 0, 0, epoch)
	frac, err := DefaultSAA().TimeFraction(el, epoch, 24*time.Hour, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.01 || frac > 0.15 {
		t.Errorf("ISS-like SAA fraction = %v, want ≈0.05", frac)
	}
}

func TestSAATimeFractionEquatorial(t *testing.T) {
	// An equatorial orbit never dips to 26°S — the anomaly's core.
	el := orbit.CircularLEO(550, 0, 0, 0, epoch)
	frac, err := DefaultSAA().TimeFraction(el, epoch, 6*time.Hour, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if frac > 0.001 {
		t.Errorf("equatorial SAA fraction = %v, want ≈0", frac)
	}
}

func TestSAATimeFractionPolarVsMid(t *testing.T) {
	polar := orbit.CircularLEO(550, 97*math.Pi/180, 0, 0, epoch)
	fp, err := DefaultSAA().TimeFraction(polar, epoch, 24*time.Hour, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fp <= 0 {
		t.Error("polar orbit must cross the anomaly")
	}
}

func TestTimeFractionValidation(t *testing.T) {
	el := orbit.CircularLEO(550, 1, 0, 0, epoch)
	if _, err := DefaultSAA().TimeFraction(el, epoch, 0, time.Second); err == nil {
		t.Error("zero span accepted")
	}
	if _, err := DefaultSAA().TimeFraction(el, epoch, time.Hour, 0); err == nil {
		t.Error("zero step accepted")
	}
}

func TestDoseProfileShape(t *testing.T) {
	// The paper's LEO anchor: ~1 krad/yr at 550 km.
	if got := DoseRateKradPerYear(550); math.Abs(got-1) > 0.01 {
		t.Errorf("550 km dose = %v krad/yr, want 1", got)
	}
	// The inner proton belt dwarfs LEO.
	if DoseRateKradPerYear(4000) < 100*DoseRateKradPerYear(550) {
		t.Error("inner belt should dwarf LEO dose")
	}
	// GEO sits well above LEO (outer belt) but below the belt peaks.
	geo := DoseRateKradPerYear(35786)
	if geo < 10*DoseRateKradPerYear(550) {
		t.Errorf("GEO dose %v should be ≫ LEO", geo)
	}
	if geo > DoseRateKradPerYear(5000) {
		t.Errorf("GEO dose %v should be below the inner-belt peak", geo)
	}
	// Extremes clamp, interpolation stays positive and finite.
	for _, alt := range []float64{100, 550, 1500, 5000, 20000, 35786, 100000} {
		d := DoseRateKradPerYear(alt)
		if d <= 0 || math.IsInf(d, 0) || math.IsNaN(d) {
			t.Errorf("dose at %v km = %v", alt, d)
		}
	}
}

func TestPartSurvival(t *testing.T) {
	// §9's point: a 300 krad part in 1 krad/yr LEO is overdesign.
	if y := HardenedSRAM.SurvivalYears(550); y < 100 {
		t.Errorf("300 krad part survives %v years in LEO — should be centuries", y)
	}
	// A COTS GPU in LEO outlives commodity hardware replacement cycles.
	if y := COTSGPU.SurvivalYears(550); y < 10 {
		t.Errorf("COTS GPU survives %v years in LEO, want > 10", y)
	}
	// The same part in the inner belt dies within a year.
	if y := COTSGPU.SurvivalYears(4000); y > 0.25 {
		t.Errorf("COTS GPU survives %v years in the inner belt, want weeks", y)
	}
}

func TestMitigationCapacity(t *testing.T) {
	if got := COTSWithSAAPause.CapacityFactor(0.05); math.Abs(got-0.95) > 1e-12 {
		t.Errorf("SAA pause capacity = %v, want 0.95", got)
	}
	if got := COTSWithSoftwareHardening.CapacityFactor(0); math.Abs(got-1/1.2) > 1e-12 {
		t.Errorf("software hardening capacity = %v, want 1/1.2", got)
	}
	if Redundancy.CapacityFactor(0) != 0.5 {
		t.Error("dual redundancy should halve capacity")
	}
	if RadHardParts.CapacityFactor(0) >= Redundancy.CapacityFactor(0) {
		t.Error("rad-hard parts should cost the most capacity")
	}
}

func TestRecommend(t *testing.T) {
	// 5-year LEO mission: 5 krad — COTS with SAA pauses suffices.
	if got := Recommend(550, 5); got != COTSWithSAAPause {
		t.Errorf("LEO 5 yr → %v, want SAA pause", got)
	}
	// 15-year GEO mission: ~900 krad — rad-hard territory.
	if got := Recommend(35786, 15); got != RadHardParts {
		t.Errorf("GEO 15 yr → %v, want rad-hard", got)
	}
	// Recommendation cost ordering is monotone in mission length.
	prev := Mitigation(-1)
	for _, years := range []float64{1, 5, 12, 20, 50} {
		m := Recommend(550, years)
		if m < prev {
			t.Errorf("recommendation regressed at %v years: %v after %v", years, m, prev)
		}
		prev = m
	}
}

func TestMitigationStrings(t *testing.T) {
	for _, m := range []Mitigation{COTSWithSAAPause, COTSWithSoftwareHardening, Redundancy, RadHardParts} {
		if m.String() == "" || m.String() == "unknown" {
			t.Errorf("mitigation %d has bad name", m)
		}
	}
	if Mitigation(99).String() != "unknown" {
		t.Error("unknown mitigation should say unknown")
	}
}

func TestMitigationRoundTrip(t *testing.T) {
	all := AllMitigations()
	if len(all) != 4 {
		t.Fatalf("AllMitigations returned %d strategies, want 4", len(all))
	}
	seen := map[string]bool{}
	for _, m := range all {
		s := m.String()
		if s == "" || s == "unknown" {
			t.Errorf("mitigation %d has bad name %q", m, s)
		}
		if seen[s] {
			t.Errorf("duplicate mitigation name %q", s)
		}
		seen[s] = true
		back, err := ParseMitigation(s)
		if err != nil {
			t.Errorf("ParseMitigation(%q): %v", s, err)
		}
		if back != m {
			t.Errorf("round trip %q: got %d, want %d", s, back, m)
		}
	}
	if _, err := ParseMitigation("unknown"); err == nil {
		t.Error("parsing the unknown sentinel should fail")
	}
	if _, err := ParseMitigation("cosmic-ray-diode"); err == nil {
		t.Error("parsing a made-up strategy should fail")
	}
}

func TestSAAGrowthEdgeCases(t *testing.T) {
	deg := math.Pi / 180
	base := DefaultSAA()
	// A point near the reference-altitude footprint edge, just inside.
	inside := orbit.Geodetic{LatRad: -26 * deg, LonRad: (-45 + 44) * deg, AltKm: base.RefAltKm}
	outside := orbit.Geodetic{LatRad: -26 * deg, LonRad: (-45 + 47) * deg, AltKm: base.RefAltKm}

	t.Run("zero growth freezes the footprint", func(t *testing.T) {
		saa := base
		saa.GrowthPerKm = 0
		for _, alt := range []float64{200, base.RefAltKm, 1500, 36000} {
			in, out := inside, outside
			in.AltKm, out.AltKm = alt, alt
			if !saa.Contains(in) {
				t.Errorf("alt %v km: interior point left the frozen footprint", alt)
			}
			if saa.Contains(out) {
				t.Errorf("alt %v km: exterior point entered the frozen footprint", alt)
			}
		}
	})

	t.Run("high growth clamps below reference", func(t *testing.T) {
		saa := base
		saa.GrowthPerKm = 0.01 // 1%/km: scale would go negative 100 km below reference
		// Far below the reference the scale clamps at 0.5 rather than
		// inverting: the half-size footprint still contains its center.
		center := orbit.Geodetic{LatRad: -26 * deg, LonRad: -45 * deg, AltKm: 0}
		if !saa.Contains(center) {
			t.Error("clamped footprint must still contain its center")
		}
		// At half scale the reference-edge interior point is outside.
		low := inside
		low.AltKm = 0
		if saa.Contains(low) {
			t.Error("near-edge point should fall outside the clamped half-size footprint")
		}
		// Above the reference the footprint balloons: a point well outside
		// at 500 km is inside by 1000 km at 1%/km growth.
		high := outside
		high.AltKm = 1000
		if !saa.Contains(high) {
			t.Error("fast growth should swallow the nearby exterior point by 1000 km")
		}
	})
}

func TestLonDiffWraps(t *testing.T) {
	if d := lonDiffDeg(179, -179); math.Abs(d+2) > 1e-12 {
		t.Errorf("lon diff across dateline = %v, want -2", d)
	}
	if d := lonDiffDeg(-179, 179); math.Abs(d-2) > 1e-12 {
		t.Errorf("lon diff across dateline = %v, want 2", d)
	}
}
