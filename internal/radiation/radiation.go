// Package radiation models the radiation environment that drives the
// paper's §9 hardening discussion: the South Atlantic Anomaly (SAA) region
// where LEO spacecraft take most of their dose, total-dose rates across
// orbit regimes (benign LEO, ferocious inner belt, outer-belt GEO), and
// the mitigation policies the paper weighs — COTS with SAA compute
// pauses, software hardening, redundancy, or rad-hard parts.
package radiation

import (
	"fmt"
	"math"
	"time"

	"spacedc/internal/orbit"
)

// SAA approximates the South Atlantic Anomaly's footprint at LEO as an
// ellipse in geodetic latitude/longitude. The anomaly grows with altitude
// as the inner belt dips lower; GrowthPerKm widens the semi-axes.
type SAA struct {
	CenterLatDeg float64
	CenterLonDeg float64
	SemiLatDeg   float64 // semi-axis in latitude at the reference altitude
	SemiLonDeg   float64 // semi-axis in longitude
	RefAltKm     float64
	GrowthPerKm  float64 // fractional semi-axis growth per km above reference
}

// DefaultSAA matches the anomaly's published LEO footprint: centered near
// (26°S, 45°W), roughly 50° × 90° across at 500 km.
func DefaultSAA() SAA {
	return SAA{
		CenterLatDeg: -26,
		CenterLonDeg: -45,
		SemiLatDeg:   24,
		SemiLonDeg:   45,
		RefAltKm:     500,
		GrowthPerKm:  0.0004,
	}
}

// Contains reports whether a geodetic position is inside the anomaly.
func (s SAA) Contains(g orbit.Geodetic) bool {
	scale := 1 + s.GrowthPerKm*(g.AltKm-s.RefAltKm)
	if scale < 0.5 {
		scale = 0.5
	}
	dLat := (g.LatDeg() - s.CenterLatDeg) / (s.SemiLatDeg * scale)
	dLon := lonDiffDeg(g.LonDeg(), s.CenterLonDeg) / (s.SemiLonDeg * scale)
	return dLat*dLat+dLon*dLon <= 1
}

// lonDiffDeg returns the signed longitude difference wrapped to ±180°.
func lonDiffDeg(a, b float64) float64 {
	d := math.Mod(a-b, 360)
	if d > 180 {
		d -= 360
	}
	if d < -180 {
		d += 360
	}
	return d
}

// TimeFraction propagates the orbit over span and returns the fraction of
// samples spent inside the anomaly.
func (s SAA) TimeFraction(el orbit.Elements, start time.Time, span, step time.Duration) (float64, error) {
	if step <= 0 || span <= 0 {
		return 0, fmt.Errorf("radiation: non-positive span or step")
	}
	prop := orbit.J2Propagator{Elements: el}
	inside, total := 0, 0
	for dt := time.Duration(0); dt < span; dt += step {
		t := start.Add(dt)
		st, err := prop.State(t)
		if err != nil {
			return 0, err
		}
		if s.Contains(orbit.SubPoint(st.Position, t)) {
			inside++
		}
		total++
	}
	return float64(inside) / float64(total), nil
}

// dosePoint anchors the total-ionizing-dose model at one altitude.
type dosePoint struct {
	altKm  float64
	kradYr float64
}

// doseProfile anchors a behind-3mm-aluminum annual dose profile across the
// belts: benign below ~1000 km (the paper's "1 krad/year" LEO number),
// the inner proton belt peaking in the low thousands of km, a saddle, the
// outer electron belt, and GEO at the outer belt's flank.
var doseProfile = []dosePoint{
	{300, 0.3},
	{550, 1},
	{1000, 6},
	{2000, 80},
	{3500, 900},
	{6000, 1500},
	{10000, 400},
	{16000, 800},
	{22000, 1100},
	{30000, 300},
	{35786, 60},
	{60000, 5},
}

// DoseRateKradPerYear returns the modeled annual total ionizing dose for a
// circular orbit at altKm, log-interpolated between the profile anchors.
func DoseRateKradPerYear(altKm float64) float64 {
	if altKm <= doseProfile[0].altKm {
		return doseProfile[0].kradYr
	}
	last := doseProfile[len(doseProfile)-1]
	if altKm >= last.altKm {
		return last.kradYr
	}
	for i := 1; i < len(doseProfile); i++ {
		lo, hi := doseProfile[i-1], doseProfile[i]
		if altKm > hi.altKm {
			continue
		}
		frac := (altKm - lo.altKm) / (hi.altKm - lo.altKm)
		return math.Exp(math.Log(lo.kradYr) + frac*(math.Log(hi.kradYr)-math.Log(lo.kradYr)))
	}
	return last.kradYr
}

// Part describes a component's total-dose tolerance.
type Part struct {
	Name          string
	ToleranceKrad float64
	RadHard       bool
}

// Reference parts from §9.
var (
	// RAD750 is BAE's rad-hard single-board computer.
	RAD750 = Part{Name: "RAD750", ToleranceKrad: 100, RadHard: true}
	// HardenedSRAM is the ITAR-regulated 300 krad part §9 calls
	// "significant overdesign for LEO".
	HardenedSRAM = Part{Name: "rad-hard SRAM", ToleranceKrad: 300, RadHard: true}
	// COTSGPU is a commercial GPU/accelerator with typical unhardened
	// silicon tolerance.
	COTSGPU = Part{Name: "COTS GPU", ToleranceKrad: 20, RadHard: false}
)

// SurvivalYears returns how long the part's dose budget lasts at altKm.
func (p Part) SurvivalYears(altKm float64) float64 {
	rate := DoseRateKradPerYear(altKm)
	if rate <= 0 {
		return math.Inf(1)
	}
	return p.ToleranceKrad / rate
}

// Mitigation is an operational radiation strategy for SµDC compute.
type Mitigation int

// Mitigations, in increasing cost order.
const (
	// COTSWithSAAPause flies unhardened parts and pauses computation
	// inside the SAA (the ISS SpaceBorne approach).
	COTSWithSAAPause Mitigation = iota
	// COTSWithSoftwareHardening adds ~20% software mitigation overhead.
	COTSWithSoftwareHardening
	// Redundancy votes across replicated computations.
	Redundancy
	// RadHardParts uses qualified components throughout.
	RadHardParts
)

// AllMitigations returns every mitigation in increasing cost order.
func AllMitigations() []Mitigation {
	return []Mitigation{COTSWithSAAPause, COTSWithSoftwareHardening, Redundancy, RadHardParts}
}

// ParseMitigation inverts String.
func ParseMitigation(s string) (Mitigation, error) {
	for _, m := range AllMitigations() {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("radiation: unknown mitigation %q", s)
}

// String names the mitigation.
func (m Mitigation) String() string {
	switch m {
	case COTSWithSAAPause:
		return "COTS + SAA pause"
	case COTSWithSoftwareHardening:
		return "COTS + software hardening"
	case Redundancy:
		return "redundancy"
	case RadHardParts:
		return "rad-hard parts"
	default:
		return "unknown"
	}
}

// CapacityFactor returns the fraction of nominal compute capacity the
// mitigation leaves available. saaFraction is the orbit's time share in
// the anomaly (only relevant for the pause strategy).
func (m Mitigation) CapacityFactor(saaFraction float64) float64 {
	switch m {
	case COTSWithSAAPause:
		return 1 - saaFraction
	case COTSWithSoftwareHardening:
		return 1 / 1.2
	case Redundancy:
		return 0.5
	case RadHardParts:
		// Rad-hard processes lag commercial silicon by generations; the
		// paper's comparison point (RAD750 vs COTS GPU) is orders of
		// magnitude, folded here into a steep capacity penalty.
		return 0.02
	default:
		return 1
	}
}

// Recommend picks the cheapest §9-consistent mitigation for an orbit:
// benign LEO flies COTS with SAA pauses (or software hardening for
// latency-critical loads that cannot pause); belt and GEO orbits need
// software hardening at least, and multi-year GEO missions redundancy.
func Recommend(altKm float64, missionYears float64) Mitigation {
	dose := missionYears * DoseRateKradPerYear(altKm)
	switch {
	case dose <= COTSGPU.ToleranceKrad*0.5:
		return COTSWithSAAPause
	case dose <= COTSGPU.ToleranceKrad:
		return COTSWithSoftwareHardening
	case dose <= 2*COTSGPU.ToleranceKrad:
		return Redundancy
	default:
		return RadHardParts
	}
}
