package isl

import (
	"math"
	"testing"
	"time"
)

func TestDynamicLinkValidate(t *testing.T) {
	good := DynamicLink{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: 2000, Tech: Optical10G}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []DynamicLink{
		{LowAltKm: 0, HighAltKm: 800, MaxRangeKm: 2000},
		{LowAltKm: 550, HighAltKm: 500, MaxRangeKm: 2000}, // SµDC below
		{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: 100},  // cannot span gap
	}
	for i, d := range bad {
		if d.Validate() == nil {
			t.Errorf("bad link %d accepted", i)
		}
	}
}

func TestSynodicPeriod(t *testing.T) {
	// 550 vs 800 km: periods 95.6 and 100.9 min → synodic ≈ 30 h.
	d := DynamicLink{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: 2000, Tech: Optical10G}
	syn := d.SynodicPeriod()
	if syn < 24*time.Hour || syn > 40*time.Hour {
		t.Errorf("synodic period = %v, want ≈30 h", syn)
	}
	// Same altitude: static geometry, infinite synodic period.
	static := DynamicLink{LowAltKm: 550, HighAltKm: 550, MaxRangeKm: 2000, Tech: Optical10G}
	if static.SynodicPeriod() != time.Duration(math.MaxInt64) {
		t.Error("equal altitudes should never drift")
	}
	if static.DutyCycle() != 1 {
		t.Error("formation flight should give a permanent link")
	}
	// Bigger gap → faster drift → shorter synodic period.
	wide := DynamicLink{LowAltKm: 550, HighAltKm: 1200, MaxRangeKm: 2000, Tech: Optical10G}
	if wide.SynodicPeriod() >= syn {
		t.Error("larger altitude gap should drift faster")
	}
}

func TestPassDurationShrinksWithRange(t *testing.T) {
	long := DynamicLink{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: 4000, Tech: Optical10G}
	short := DynamicLink{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: 1000, Tech: Optical10G}
	if short.PassDuration() >= long.PassDuration() {
		t.Errorf("shorter range (%v) should give shorter passes than longer (%v)",
			short.PassDuration(), long.PassDuration())
	}
	if short.PassDuration() <= 0 {
		t.Error("feasible link should have positive pass time")
	}
}

func TestDutyCyclePointingPenalty(t *testing.T) {
	// Same geometry, optical vs RF: the RF link's near-instant
	// beamforming wastes less of each pass (§9's argument that dynamic
	// topologies suit RF, not optical).
	geom := DynamicLink{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: 1500}
	optical := geom
	optical.Tech = Optical10G
	rf := geom
	rf.Tech = RFKaBand
	if optical.DutyCycle() >= rf.DutyCycle() {
		t.Errorf("optical duty %v should trail RF %v (pointing overhead)",
			optical.DutyCycle(), rf.DutyCycle())
	}
	for _, d := range []DynamicLink{optical, rf} {
		if dc := d.DutyCycle(); dc < 0 || dc > 1 {
			t.Errorf("duty cycle %v outside [0,1]", dc)
		}
	}
}

func TestEffectiveCapacityBelowNominal(t *testing.T) {
	d := DynamicLink{LowAltKm: 550, HighAltKm: 900, MaxRangeKm: 2000, Tech: Optical10G}
	eff := d.EffectiveCapacity()
	if eff <= 0 || eff >= float64(d.Tech.Capacity) {
		t.Errorf("effective capacity %v should sit strictly below nominal %v", eff, float64(d.Tech.Capacity))
	}
	// The drifting-link capacity is a small fraction of the formation
	// link — the quantitative reason §9 prefers in-plane SµDCs for
	// optical ISLs.
	if eff > 0.5*float64(d.Tech.Capacity) {
		t.Errorf("drifting link keeps %v of nominal; expected well under half", eff/float64(d.Tech.Capacity))
	}
}

func TestEarthGrazingLimitsPhase(t *testing.T) {
	// With an enormous power budget the link range no longer binds — the
	// Earth does. maxPhase must stay below the grazing geometry bound.
	d := DynamicLink{LowAltKm: 550, HighAltKm: 560, MaxRangeKm: 50000, Tech: Optical100G}
	phi := d.maxPhase()
	// Two ~550 km satellites lose LOS near the 2·acos((Re+100)/r) chord
	// bound ≈ 41°.
	if phi > 0.8 {
		t.Errorf("max phase %v rad should be Earth-limited to ≈0.7", phi)
	}
	if phi <= 0 {
		t.Error("phase bound degenerate")
	}
}

func TestInvalidLinksFailSafe(t *testing.T) {
	bad := DynamicLink{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: 10, Tech: Optical10G}
	if bad.PassDuration() != 0 || bad.DutyCycle() != 0 || bad.EffectiveCapacity() != 0 {
		t.Error("infeasible link should report zero service")
	}
}

func TestZeroAltitudeDeltaFullEffectiveCapacity(t *testing.T) {
	// Formation flight (zero altitude delta) is the degenerate point of the
	// dynamic-link model: no drift, infinite pass, full nominal capacity.
	d := DynamicLink{LowAltKm: 550, HighAltKm: 550, MaxRangeKm: 2000, Tech: Optical10G}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.PassDuration() != time.Duration(math.MaxInt64) {
		t.Error("zero-delta pass should be the infinite synodic period")
	}
	if dc := d.DutyCycle(); dc != 1 {
		t.Errorf("zero-delta duty cycle = %v, want exactly 1", dc)
	}
	if eff := d.EffectiveCapacity(); eff != float64(d.Tech.Capacity) {
		t.Errorf("zero-delta effective capacity = %v, want nominal %v", eff, float64(d.Tech.Capacity))
	}
}

func TestMaxPhaseBoundaryPointingDominatedPass(t *testing.T) {
	// A range barely above the radial gap pins maxPhase near zero: the
	// pass exists but is shorter than an optical terminal's pointing time,
	// so the duty cycle collapses to exactly zero while the RF terminal
	// (near-instant beamforming) still extracts service from it.
	gap := DynamicLink{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: 251, Tech: Optical10G}
	if err := gap.Validate(); err != nil {
		t.Fatal(err)
	}
	phi := gap.maxPhase()
	if phi <= 0 {
		t.Fatal("boundary phase should remain positive while range exceeds the gap")
	}
	if phi > 0.01 {
		t.Errorf("boundary phase = %v rad, want near-degenerate (< 0.01)", phi)
	}
	if pass := gap.PassDuration(); pass <= 0 {
		t.Error("boundary pass should be positive")
	} else if pass.Seconds() > gap.Tech.PointingSeconds {
		t.Skipf("pass %v longer than pointing %vs; boundary not pointing-dominated", pass, gap.Tech.PointingSeconds)
	}
	if dc := gap.DutyCycle(); dc != 0 {
		t.Errorf("pointing-dominated duty cycle = %v, want exactly 0", dc)
	}
	if eff := gap.EffectiveCapacity(); eff != 0 {
		t.Errorf("pointing-dominated effective capacity = %v, want 0", eff)
	}
	rf := gap
	rf.Tech = RFKaBand
	if rf.DutyCycle() <= 0 {
		t.Error("RF terminal should still serve the short pass")
	}
}

func TestMaxPhaseMonotonicInRange(t *testing.T) {
	// Below the Earth-grazing regime, more link range must never shrink
	// the serviceable phase window.
	prev := -1.0
	for _, rng := range []float64{300, 500, 800, 1200, 1600} {
		d := DynamicLink{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: rng, Tech: Optical10G}
		phi := d.maxPhase()
		if phi < prev {
			t.Errorf("maxPhase(%v km) = %v < maxPhase at shorter range %v", rng, phi, prev)
		}
		prev = phi
	}
}
