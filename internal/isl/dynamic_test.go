package isl

import (
	"math"
	"testing"
	"time"
)

func TestDynamicLinkValidate(t *testing.T) {
	good := DynamicLink{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: 2000, Tech: Optical10G}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []DynamicLink{
		{LowAltKm: 0, HighAltKm: 800, MaxRangeKm: 2000},
		{LowAltKm: 550, HighAltKm: 500, MaxRangeKm: 2000}, // SµDC below
		{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: 100},  // cannot span gap
	}
	for i, d := range bad {
		if d.Validate() == nil {
			t.Errorf("bad link %d accepted", i)
		}
	}
}

func TestSynodicPeriod(t *testing.T) {
	// 550 vs 800 km: periods 95.6 and 100.9 min → synodic ≈ 30 h.
	d := DynamicLink{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: 2000, Tech: Optical10G}
	syn := d.SynodicPeriod()
	if syn < 24*time.Hour || syn > 40*time.Hour {
		t.Errorf("synodic period = %v, want ≈30 h", syn)
	}
	// Same altitude: static geometry, infinite synodic period.
	static := DynamicLink{LowAltKm: 550, HighAltKm: 550, MaxRangeKm: 2000, Tech: Optical10G}
	if static.SynodicPeriod() != time.Duration(math.MaxInt64) {
		t.Error("equal altitudes should never drift")
	}
	if static.DutyCycle() != 1 {
		t.Error("formation flight should give a permanent link")
	}
	// Bigger gap → faster drift → shorter synodic period.
	wide := DynamicLink{LowAltKm: 550, HighAltKm: 1200, MaxRangeKm: 2000, Tech: Optical10G}
	if wide.SynodicPeriod() >= syn {
		t.Error("larger altitude gap should drift faster")
	}
}

func TestPassDurationShrinksWithRange(t *testing.T) {
	long := DynamicLink{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: 4000, Tech: Optical10G}
	short := DynamicLink{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: 1000, Tech: Optical10G}
	if short.PassDuration() >= long.PassDuration() {
		t.Errorf("shorter range (%v) should give shorter passes than longer (%v)",
			short.PassDuration(), long.PassDuration())
	}
	if short.PassDuration() <= 0 {
		t.Error("feasible link should have positive pass time")
	}
}

func TestDutyCyclePointingPenalty(t *testing.T) {
	// Same geometry, optical vs RF: the RF link's near-instant
	// beamforming wastes less of each pass (§9's argument that dynamic
	// topologies suit RF, not optical).
	geom := DynamicLink{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: 1500}
	optical := geom
	optical.Tech = Optical10G
	rf := geom
	rf.Tech = RFKaBand
	if optical.DutyCycle() >= rf.DutyCycle() {
		t.Errorf("optical duty %v should trail RF %v (pointing overhead)",
			optical.DutyCycle(), rf.DutyCycle())
	}
	for _, d := range []DynamicLink{optical, rf} {
		if dc := d.DutyCycle(); dc < 0 || dc > 1 {
			t.Errorf("duty cycle %v outside [0,1]", dc)
		}
	}
}

func TestEffectiveCapacityBelowNominal(t *testing.T) {
	d := DynamicLink{LowAltKm: 550, HighAltKm: 900, MaxRangeKm: 2000, Tech: Optical10G}
	eff := d.EffectiveCapacity()
	if eff <= 0 || eff >= float64(d.Tech.Capacity) {
		t.Errorf("effective capacity %v should sit strictly below nominal %v", eff, float64(d.Tech.Capacity))
	}
	// The drifting-link capacity is a small fraction of the formation
	// link — the quantitative reason §9 prefers in-plane SµDCs for
	// optical ISLs.
	if eff > 0.5*float64(d.Tech.Capacity) {
		t.Errorf("drifting link keeps %v of nominal; expected well under half", eff/float64(d.Tech.Capacity))
	}
}

func TestEarthGrazingLimitsPhase(t *testing.T) {
	// With an enormous power budget the link range no longer binds — the
	// Earth does. maxPhase must stay below the grazing geometry bound.
	d := DynamicLink{LowAltKm: 550, HighAltKm: 560, MaxRangeKm: 50000, Tech: Optical100G}
	phi := d.maxPhase()
	// Two ~550 km satellites lose LOS near the 2·acos((Re+100)/r) chord
	// bound ≈ 41°.
	if phi > 0.8 {
		t.Errorf("max phase %v rad should be Earth-limited to ≈0.7", phi)
	}
	if phi <= 0 {
		t.Error("phase bound degenerate")
	}
}

func TestInvalidLinksFailSafe(t *testing.T) {
	bad := DynamicLink{LowAltKm: 550, HighAltKm: 800, MaxRangeKm: 10, Tech: Optical10G}
	if bad.PassDuration() != 0 || bad.DutyCycle() != 0 || bad.EffectiveCapacity() != 0 {
		t.Error("infeasible link should report zero service")
	}
}
