package isl

import (
	"math"
	"testing"

	"spacedc/internal/datagen"
	"spacedc/internal/units"
)

func TestSupportableEOSatsTable8Shape(t *testing.T) {
	// Table 8's model: a ring SµDC at 3 m / 0 ED with 1 Gbit/s ISLs
	// supports ~10 satellites (the paper reports 9 with its rounding);
	// counts scale linearly with capacity and 1/(1-ED), quadratically
	// with resolution refinement.
	rate3m := datagen.Default4K.DataRate(3, 0)
	n := SupportableEOSats(1*units.Gbps, rate3m, 2)
	if n != 9 {
		t.Errorf("3 m, 0 ED, 1 Gb/s ring supports %d sats, want 9 (Table 8)", n)
	}
	// ×10 capacity → ×10 satellites.
	n10 := SupportableEOSats(10*units.Gbps, rate3m, 2)
	if n10 < 10*n-10 || n10 > 10*n+10 {
		t.Errorf("10 Gb/s supports %d, want ≈10×%d", n10, n)
	}
	// 95% early discard → ×20 satellites.
	rate95 := datagen.Default4K.DataRate(3, 0.95)
	n95 := SupportableEOSats(1*units.Gbps, rate95, 2)
	if float64(n95) < 19*float64(n) || float64(n95) > 21*float64(n) {
		t.Errorf("95%% ED supports %d, want ≈20×%d", n95, n)
	}
	// 1 m resolution → /9.
	rate1m := datagen.Default4K.DataRate(1, 0)
	n1m := SupportableEOSats(1*units.Gbps, rate1m, 2)
	if n1m != 1 {
		t.Errorf("1 m, 0 ED, 1 Gb/s supports %d, want 1 (Table 8)", n1m)
	}
}

func TestSupportableEOSatsFineResolutionFails(t *testing.T) {
	// Table 8: at 30 cm / 0 ED even 10 Gb/s supports zero satellites;
	// 100 Gb/s supports a handful.
	rate := datagen.Default4K.DataRate(0.3, 0)
	if n := SupportableEOSats(1*units.Gbps, rate, 2); n != 0 {
		t.Errorf("30 cm on 1 Gb/s supports %d, want 0", n)
	}
	if n := SupportableEOSats(10*units.Gbps, rate, 2); n != 0 {
		t.Errorf("30 cm on 10 Gb/s supports %d, want 0 (Table 8)", n)
	}
	if n := SupportableEOSats(100*units.Gbps, rate, 2); n < 8 || n > 10 {
		t.Errorf("30 cm on 100 Gb/s supports %d, want ≈9 (Table 8: 8)", n)
	}
	// 10 cm / 0 ED: zero even at 100 Gb/s with a ring… the paper reports 0.
	rate10cm := datagen.Default4K.DataRate(0.1, 0)
	if n := SupportableEOSats(100*units.Gbps, rate10cm, 2); n > 1 {
		t.Errorf("10 cm on 100 Gb/s supports %d, want ≈0-1 (Table 8: 0)", n)
	}
}

func TestSupportableScalesWithK(t *testing.T) {
	rate := datagen.Default4K.DataRate(1, 0.5)
	ring := SupportableEOSats(10*units.Gbps, rate, 2)
	four := SupportableEOSats(10*units.Gbps, rate, 4)
	eight := SupportableEOSats(10*units.Gbps, rate, 8)
	// §8: a k-list supports k/2 × the ring's satellites (up to flooring).
	if four < 2*ring || four > 2*ring+1 {
		t.Errorf("4-list supports %d, want ≈2×%d", four, ring)
	}
	if eight < 4*ring || eight > 4*ring+3 {
		t.Errorf("8-list supports %d, want ≈4×%d", eight, ring)
	}
}

func TestSupportableDegenerate(t *testing.T) {
	if SupportableEOSats(0, units.Mbps, 2) != 0 ||
		SupportableEOSats(units.Gbps, 0, 2) != 0 ||
		SupportableEOSats(units.Gbps, units.Mbps, 0) != 0 {
		t.Error("degenerate inputs should support zero satellites")
	}
}

func TestClustersForISL(t *testing.T) {
	rate := datagen.Default4K.DataRate(3, 0) // 9 sats per ring SµDC at 1 Gb/s
	n := ClustersForISL(64, 1*units.Gbps, rate, 2)
	if n != 8 {
		t.Errorf("64 sats need %d clusters, want ceil(64/9) = 8", n)
	}
	// When one satellite saturates a link, no cluster count suffices.
	if got := ClustersForISL(64, 1*units.Mbps, units.Gbps, 2); got != math.MaxInt32 {
		t.Errorf("unsupportable rate should return MaxInt32, got %d", got)
	}
}

func TestClassify(t *testing.T) {
	if Classify(10, 5) != ISLBound {
		t.Error("m < n should be ISL-bottlenecked")
	}
	if Classify(10, 10) != ComputeBound || Classify(10, 50) != ComputeBound {
		t.Error("m ≥ n should be ISL-unconstrained")
	}
	if ISLBound.String() != "ISL-bottlenecked" || ComputeBound.String() != "ISL-unconstrained" {
		t.Error("bottleneck names wrong")
	}
}

func TestTopologyValidate(t *testing.T) {
	good := []Topology{{2, 1}, {4, 2}, {8, 4}}
	for _, tp := range good {
		if err := tp.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", tp, err)
		}
	}
	bad := []Topology{{0, 1}, {3, 1}, {2, 0}, {-2, 1}}
	for _, tp := range bad {
		if err := tp.Validate(); err == nil {
			t.Errorf("%+v accepted", tp)
		}
	}
}

func TestTxPowerQuadratic(t *testing.T) {
	p1 := Optical10G.TxPowerAt(1000)
	p2 := Optical10G.TxPowerAt(2000)
	if math.Abs(float64(p2)/float64(p1)-4) > 1e-9 {
		t.Errorf("doubling distance scaled power by %v, want 4", float64(p2)/float64(p1))
	}
	if Optical10G.TxPowerAt(0) != 0 {
		t.Error("zero distance should need no power")
	}
	if p1 != Optical10G.RefTxPower {
		t.Errorf("reference distance power = %v, want %v", p1, Optical10G.RefTxPower)
	}
}

func TestHopDistance(t *testing.T) {
	g := OrbitSpacedGeometry(550, 64)
	ring := g.HopDistanceKm(2)
	// 2π/64 at r = 6928 km → chord ≈ 680 km.
	if math.Abs(ring-680) > 5 {
		t.Errorf("ring hop = %v km, want ≈680", ring)
	}
	four := g.HopDistanceKm(4)
	if four <= ring || four > 2*ring+1 {
		t.Errorf("4-list hop %v vs ring %v: want ≈2× (small angle)", four, ring)
	}
	// Frame-spaced: 12 km hops regardless of k being small.
	fg := FrameSpacedGeometry(550, 12)
	if got := fg.HopDistanceKm(2); math.Abs(got-12) > 0.1 {
		t.Errorf("frame-spaced hop = %v, want 12", got)
	}
}

func TestMaxKOrbitVsFrameSpaced(t *testing.T) {
	// §8: orbit-spaced formations hit the atmosphere/Earth limit at small
	// k; frame-spaced formations allow far larger k.
	orbitG := OrbitSpacedGeometry(550, 64)
	frameG := FrameSpacedGeometry(550, 12)
	ok := orbitG.MaxK(100)
	fk := frameG.MaxK(100)
	if ok < 2 || ok > 20 {
		t.Errorf("orbit-spaced max k = %d, want small double digits", ok)
	}
	if fk < 50*ok {
		t.Errorf("frame-spaced max k = %d should dwarf orbit-spaced %d", fk, ok)
	}
}

func TestMaxKDegenerate(t *testing.T) {
	// A satellite below the grazing altitude cannot link at all.
	g := OrbitSpacedGeometry(50, 64)
	if got := g.MaxK(100); got != 0 {
		t.Errorf("sub-graze altitude max k = %d, want 0", got)
	}
}

func TestFig13Normalization(t *testing.T) {
	g := FrameSpacedGeometry(550, 12)
	base := CoDesign{Topology: Ring, Geometry: g, Tech: Optical10G, TotalSats: 64}
	pt := base.Fig13Point(100)
	if pt.CapacityNorm != 1 || pt.PowerNorm != 1 {
		t.Errorf("baseline should normalize to (1,1): %+v", pt)
	}

	// 4-list: 2× capacity, ≈4× power (§8's stated rule).
	four := CoDesign{Topology: Topology{K: 4, Split: 1}, Geometry: g, Tech: Optical10G, TotalSats: 64}
	pt4 := four.Fig13Point(100)
	if math.Abs(pt4.CapacityNorm-2) > 1e-9 {
		t.Errorf("4-list capacity norm = %v, want 2", pt4.CapacityNorm)
	}
	if math.Abs(pt4.PowerNorm-4) > 0.01 {
		t.Errorf("4-list power norm = %v, want ≈4", pt4.PowerNorm)
	}

	// Splitting ×2: doubles capacity at unchanged power.
	split := CoDesign{Topology: Topology{K: 2, Split: 2}, Geometry: g, Tech: Optical10G, TotalSats: 64}
	ptS := split.Fig13Point(100)
	if math.Abs(ptS.CapacityNorm-2) > 1e-9 || math.Abs(ptS.PowerNorm-1) > 1e-9 {
		t.Errorf("2-way split = %+v, want capacity 2, power 1", ptS)
	}

	// Combined 4-list × 2-split: capacity 4, power 4 — "benefits are
	// orthogonal… multi-linear" (§8).
	both := CoDesign{Topology: Topology{K: 4, Split: 2}, Geometry: g, Tech: Optical10G, TotalSats: 64}
	ptB := both.Fig13Point(100)
	if math.Abs(ptB.CapacityNorm-4) > 1e-9 {
		t.Errorf("4-list × 2-split capacity = %v, want 4", ptB.CapacityNorm)
	}
}

func TestFig13FeasibilityOrbitSpaced(t *testing.T) {
	g := OrbitSpacedGeometry(550, 64)
	maxK := g.MaxK(100)
	ok := CoDesign{Topology: Topology{K: maxK, Split: 1}, Geometry: g, Tech: Optical100G, TotalSats: 64}
	if !ok.Feasible(100) {
		t.Errorf("k = maxK = %d should be feasible", maxK)
	}
	too := CoDesign{Topology: Topology{K: maxK + 2, Split: 1}, Geometry: g, Tech: Optical100G, TotalSats: 64}
	if too.Feasible(100) {
		t.Errorf("k = %d should graze the atmosphere", maxK+2)
	}
	pt := too.Fig13Point(100)
	if pt.Feasible {
		t.Error("Fig13Point should mark infeasible designs")
	}
}

func TestOpticalPointingSlowerThanRF(t *testing.T) {
	// §7: optical ISLs take seconds to minutes to orient; RF beamforming
	// repoints almost instantly.
	if Optical10G.PointingSeconds <= RFKaBand.PointingSeconds {
		t.Error("optical pointing should be slower than RF")
	}
	if !Optical10G.Optical || RFKaBand.Optical {
		t.Error("optical flags wrong")
	}
}

func TestTable8CapacitySweep(t *testing.T) {
	if len(Table8Capacities) != 3 {
		t.Fatal("Table 8 sweeps 3 capacities")
	}
	for i := 1; i < len(Table8Capacities); i++ {
		if float64(Table8Capacities[i])/float64(Table8Capacities[i-1]) != 10 {
			t.Error("capacities should step ×10")
		}
	}
}
