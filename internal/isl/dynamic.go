package isl

import (
	"fmt"
	"math"
	"time"

	"spacedc/internal/orbit"
)

// DynamicLink models the §9 "same plane, higher altitude" SµDC placement:
// the SµDC orbits slower than the EO satellites, so the geometry drifts
// continuously, links come and go with the synodic cycle, and each
// acquisition pays the terminal's pointing time — cheap for beamformed RF,
// expensive for optical.
type DynamicLink struct {
	// LowAltKm is the EO constellation's altitude.
	LowAltKm float64
	// HighAltKm is the SµDC's altitude.
	HighAltKm float64
	// MaxRangeKm is the longest distance the link closes at its design
	// power.
	MaxRangeKm float64
	// Tech supplies capacity and pointing time.
	Tech LinkTech
}

// Validate checks the geometry.
func (d DynamicLink) Validate() error {
	if d.LowAltKm <= 0 || d.HighAltKm <= 0 {
		return fmt.Errorf("isl: non-positive altitudes %v/%v", d.LowAltKm, d.HighAltKm)
	}
	if d.HighAltKm < d.LowAltKm {
		return fmt.Errorf("isl: SµDC altitude %v below constellation %v", d.HighAltKm, d.LowAltKm)
	}
	if d.MaxRangeKm <= d.HighAltKm-d.LowAltKm {
		return fmt.Errorf("isl: max range %v cannot span the radial gap %v",
			d.MaxRangeKm, d.HighAltKm-d.LowAltKm)
	}
	return nil
}

// angularRate returns the circular-orbit angular rate at altKm, rad/s.
func angularRate(altKm float64) float64 {
	a := orbit.EarthRadiusKm + altKm
	return math.Sqrt(orbit.EarthMuKm3S2 / (a * a * a))
}

// SynodicPeriod returns the relative-geometry repeat period: the time for
// the faster, lower satellite to lap the SµDC. Equal altitudes (the
// in-plane formation) never drift — the period is infinite and the
// topology is static, which is the §7 argument for formation flight.
func (d DynamicLink) SynodicPeriod() time.Duration {
	dw := math.Abs(angularRate(d.LowAltKm) - angularRate(d.HighAltKm))
	if dw == 0 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(2 * math.Pi / dw * float64(time.Second))
}

// maxPhase returns the largest in-plane phase angle at which the link
// still closes: separation ≤ MaxRangeKm and the sight line clears the
// atmosphere.
func (d DynamicLink) maxPhase() float64 {
	r1 := orbit.EarthRadiusKm + d.LowAltKm
	r2 := orbit.EarthRadiusKm + d.HighAltKm

	// Range limit: law of cosines.
	cosRange := (r1*r1 + r2*r2 - d.MaxRangeKm*d.MaxRangeKm) / (2 * r1 * r2)
	phiRange := math.Acos(clamp(cosRange, -1, 1))

	// Earth-grazing limit: the chord's closest approach to the geocenter
	// must clear the graze radius. For points at radii r1, r2 separated
	// by φ, minimum distance = r1·r2·sin(φ)/d — but only when the foot of
	// the perpendicular falls inside the chord; below that the endpoints
	// govern and the link is clear. Solve by bisection on φ.
	block := orbit.EarthRadiusKm + orbit.AtmosphereGrazeKm
	clear := func(phi float64) bool {
		d2 := r1*r1 + r2*r2 - 2*r1*r2*math.Cos(phi)
		dd := math.Sqrt(d2)
		if dd == 0 {
			return true
		}
		h := r1 * r2 * math.Sin(phi) / dd
		// Perpendicular foot inside the segment only when both endpoint
		// angles are acute; approximate: for phi < π/2 it always is not…
		// use the exact segment test via projection parameter.
		// Points: A = (r1, 0), B = (r2 cosφ, r2 sinφ).
		ax, ay := r1, 0.0
		bx, by := r2*math.Cos(phi), r2*math.Sin(phi)
		dx, dy := bx-ax, by-ay
		t := -(ax*dx + ay*dy) / (dx*dx + dy*dy)
		if t <= 0 || t >= 1 {
			return true // closest approach at an endpoint, which is in orbit
		}
		return h > block
	}
	phiGraze := phiRange
	if !clear(phiRange) {
		lo, hi := 0.0, phiRange
		for i := 0; i < 60; i++ {
			mid := (lo + hi) / 2
			if clear(mid) {
				lo = mid
			} else {
				hi = mid
			}
		}
		phiGraze = lo
	}
	return math.Min(phiRange, phiGraze)
}

// PassDuration returns how long each synodic cycle the link stays within
// range: the relative phase sweeps 2π per synodic period and the link is
// up while |phase| ≤ maxPhase.
func (d DynamicLink) PassDuration() time.Duration {
	if err := d.Validate(); err != nil {
		return 0
	}
	syn := d.SynodicPeriod()
	if syn == time.Duration(math.MaxInt64) {
		return syn // static link: always up
	}
	frac := 2 * d.maxPhase() / (2 * math.Pi)
	return time.Duration(float64(syn) * frac)
}

// DutyCycle returns the fraction of time the link carries data, after
// paying the terminal's pointing time at each acquisition.
func (d DynamicLink) DutyCycle() float64 {
	if err := d.Validate(); err != nil {
		return 0
	}
	syn := d.SynodicPeriod()
	if syn == time.Duration(math.MaxInt64) {
		return 1 // formation flight: point once, link forever
	}
	pass := d.PassDuration().Seconds() - d.Tech.PointingSeconds
	if pass < 0 {
		pass = 0
	}
	return pass / syn.Seconds()
}

// EffectiveCapacity returns the average data rate the dynamic link
// delivers once pass gaps and pointing overhead are paid.
func (d DynamicLink) EffectiveCapacity() float64 {
	return float64(d.Tech.Capacity) * d.DutyCycle()
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
