package isl

import (
	"fmt"
	"math"

	"spacedc/internal/units"
)

// This file builds the ring/k-list networks explicitly — nodes, links, and
// routed flows — and checks them against the closed-form capacity model.
// The analytic SupportableEOSats formula says how many satellites a SµDC
// can ingest; the network simulation shows *which* link saturates and what
// every relay carries, which the co-design experiments need for power and
// feasibility accounting.

// NodeKind distinguishes EO satellites from SµDCs in a network.
type NodeKind int

// Node kinds.
const (
	EONode NodeKind = iota
	SuDCNode
)

// Node is one spacecraft in the cluster network.
type Node struct {
	Index int
	Kind  NodeKind
	// ChainPos is the node's position along its relay chain: 1 = adjacent
	// to the SµDC. 0 for the SµDC itself.
	ChainPos int
}

// Link is a directed ISL carrying aggregated EO data toward a SµDC.
type Link struct {
	From, To int // node indices
	// Load is the steady-state data rate the link carries.
	Load units.DataRate
	// SpanHops is the number of adjacent-satellite spacings the link
	// crosses (k/2 for a k-list chain link).
	SpanHops int
}

// Network is one cluster: a SµDC fed by chains of EO satellites.
type Network struct {
	Topology   Topology
	Nodes      []Node
	Links      []Link
	PerSatRate units.DataRate
	LinkCap    units.DataRate
}

// BuildCluster constructs the explicit relay network for one SµDC serving
// n EO satellites under the given topology: the satellites are divided
// round-robin over the K chains (K/2 in each orbital direction), and every
// satellite forwards its own data plus everything upstream of it.
func BuildCluster(n int, topo Topology, perSat, linkCap units.DataRate) (*Network, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("isl: negative satellite count %d", n)
	}
	net := &Network{
		Topology:   topo,
		PerSatRate: perSat,
		LinkCap:    linkCap,
	}
	net.Nodes = append(net.Nodes, Node{Index: 0, Kind: SuDCNode})

	// Chain lengths: distribute n satellites over K chains as evenly as
	// possible (the paper's k-list: K receivers, so K chains).
	k := topo.K
	chainLen := make([]int, k)
	for i := 0; i < n; i++ {
		chainLen[i%k]++
	}

	idx := 1
	for c := 0; c < k; c++ {
		prev := 0 // chain starts at the SµDC
		for pos := 1; pos <= chainLen[c]; pos++ {
			net.Nodes = append(net.Nodes, Node{Index: idx, Kind: EONode, ChainPos: pos})
			// Data flows from this node toward the SµDC via prev. The
			// link from node idx to prev carries this node's data plus
			// everything behind it on the chain.
			upstream := chainLen[c] - pos // satellites further out
			load := units.DataRate(float64(perSat) * float64(1+upstream))
			net.Links = append(net.Links, Link{
				From: idx, To: prev,
				Load:     load,
				SpanHops: k / 2,
			})
			prev = idx
			idx++
		}
	}
	return net, nil
}

// Graph returns independent copies of the node and link sets so consumers
// (netsim's topology driver in particular) can build their own simulation
// state from the routed topology without reaching into BuildCluster
// internals or aliasing the network's slices.
func (n *Network) Graph() ([]Node, []Link) {
	nodes := make([]Node, len(n.Nodes))
	copy(nodes, n.Nodes)
	links := make([]Link, len(n.Links))
	copy(links, n.Links)
	return nodes, links
}

// OutLinks returns, for each node index, the indices into the link set of
// that node's outgoing links — the adjacency view a router needs.
func (n *Network) OutLinks() map[int][]int {
	adj := make(map[int][]int, len(n.Nodes))
	for i, l := range n.Links {
		adj[l.From] = append(adj[l.From], i)
	}
	return adj
}

// MaxLinkLoad returns the heaviest link load — in a chain topology, always
// the links adjacent to the SµDC.
func (n *Network) MaxLinkLoad() units.DataRate {
	var max units.DataRate
	for _, l := range n.Links {
		if l.Load > max {
			max = l.Load
		}
	}
	return max
}

// Saturated reports whether any link exceeds capacity.
func (n *Network) Saturated() bool {
	return n.MaxLinkLoad() > n.LinkCap
}

// IngestRate returns the total rate delivered to the SµDC (the sum of
// loads on links terminating at node 0) — by flow conservation this must
// equal satellites × perSatRate.
func (n *Network) IngestRate() units.DataRate {
	var total units.DataRate
	for _, l := range n.Links {
		if l.To == 0 {
			total += l.Load
		}
	}
	return total
}

// EOCount returns the number of EO satellites in the network.
func (n *Network) EOCount() int {
	count := 0
	for _, node := range n.Nodes {
		if node.Kind == EONode {
			count++
		}
	}
	return count
}

// CheckFlowConservation verifies that every relay forwards exactly what it
// receives plus its own generation — the structural invariant of the
// chain-routing construction.
func (n *Network) CheckFlowConservation() error {
	// incoming[i] = sum of loads on links into node i.
	incoming := make(map[int]units.DataRate)
	outgoing := make(map[int]units.DataRate)
	for _, l := range n.Links {
		incoming[l.To] += l.Load
		outgoing[l.From] += l.Load
	}
	for _, node := range n.Nodes {
		if node.Kind != EONode {
			continue
		}
		want := incoming[node.Index] + n.PerSatRate
		got := outgoing[node.Index]
		if math.Abs(float64(got-want)) > 1e-6*math.Max(float64(want), 1) {
			return fmt.Errorf("isl: node %d forwards %v, want %v", node.Index, got, want)
		}
	}
	if in, want := n.IngestRate(), units.DataRate(float64(n.PerSatRate)*float64(n.EOCount())); math.Abs(float64(in-want)) > 1e-6*math.Max(float64(want), 1) {
		return fmt.Errorf("isl: SµDC ingests %v, constellation generates %v", in, want)
	}
	return nil
}

// MaxSupportableBySimulation finds, by explicit construction, the largest
// satellite count the topology supports without saturating a link. It
// cross-validates the closed-form SupportableEOSats.
func MaxSupportableBySimulation(topo Topology, perSat, linkCap units.DataRate, searchLimit int) (int, error) {
	if perSat <= 0 {
		return 0, fmt.Errorf("isl: non-positive per-satellite rate %v", perSat)
	}
	best := 0
	for n := 1; n <= searchLimit; n++ {
		net, err := BuildCluster(n, topo, perSat, linkCap)
		if err != nil {
			return 0, err
		}
		if net.Saturated() {
			break
		}
		best = n
	}
	return best, nil
}

// LinkPower returns the total transmit power of all active links given the
// plane geometry and link technology (each link's span fixes its length).
func (n *Network) LinkPower(g PlaneGeometry, tech LinkTech) units.Power {
	var total units.Power
	for _, l := range n.Links {
		d := g.HopDistanceKm(2 * l.SpanHops) // span in k-units: k/2 hops ↔ k
		total += tech.TxPowerAt(d)
	}
	return total
}
