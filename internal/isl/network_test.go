package isl

import (
	"math"
	"testing"
	"testing/quick"

	"spacedc/internal/datagen"
	"spacedc/internal/units"
)

func TestBuildClusterRing(t *testing.T) {
	perSat := 200 * units.Mbps
	net, err := BuildCluster(8, Ring, perSat, 1*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if net.EOCount() != 8 {
		t.Fatalf("EO count %d, want 8", net.EOCount())
	}
	// Ring: two chains of 4; the SµDC-adjacent links each carry 4 sats.
	if got := net.MaxLinkLoad(); math.Abs(float64(got)-4*200e6) > 1 {
		t.Errorf("max link load %v, want 800 Mb/s", got)
	}
	if err := net.CheckFlowConservation(); err != nil {
		t.Error(err)
	}
	if net.Saturated() {
		t.Error("800 Mb/s on 1 Gb/s links should not saturate")
	}
}

func TestBuildClusterSaturation(t *testing.T) {
	perSat := 200 * units.Mbps
	net, err := BuildCluster(12, Ring, perSat, 1*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	// Chains of 6: limiting link carries 1.2 Gb/s > 1 Gb/s.
	if !net.Saturated() {
		t.Errorf("12 sats × 200 Mb/s on 1 Gb/s ring should saturate (max %v)", net.MaxLinkLoad())
	}
}

func TestSimulationMatchesClosedForm(t *testing.T) {
	// The analytic SupportableEOSats is the splittable-flow optimum (a
	// satellite may stripe its stream across ring directions, so the only
	// binding cut is the k receivers). The explicit network routes each
	// satellite's whole stream down one chain, so it can trail the
	// optimum by at most one satellite per chain — never exceed it.
	for _, res := range datagen.StandardResolutions {
		for _, ed := range datagen.StandardDiscardRates {
			rate := datagen.Default4K.DataRate(res, ed)
			for _, cap := range Table8Capacities {
				for _, k := range []int{2, 4} {
					analytic := SupportableEOSats(cap, rate, k)
					if analytic > 3000 { // keep the search bounded
						continue
					}
					sim, err := MaxSupportableBySimulation(Topology{K: k, Split: 1}, rate, cap, analytic+5)
					if err != nil {
						t.Fatal(err)
					}
					if sim > analytic {
						t.Errorf("res %v ed %v cap %v k %d: simulation %d exceeds max-flow bound %d",
							res, ed, cap, k, sim, analytic)
					}
					if analytic-sim > k {
						t.Errorf("res %v ed %v cap %v k %d: simulation %d trails analytic %d by more than k",
							res, ed, cap, k, sim, analytic)
					}
					// Exact agreement whenever chains quantize evenly.
					perChain := int(float64(cap) / float64(rate))
					if analytic == k*perChain && sim != analytic {
						t.Errorf("res %v ed %v cap %v k %d: even quantization should agree: %d vs %d",
							res, ed, cap, k, sim, analytic)
					}
				}
			}
		}
	}
}

func TestFlowConservationProperty(t *testing.T) {
	f := func(nRaw uint8, kRaw uint8) bool {
		n := int(nRaw % 64)
		k := 2 * (1 + int(kRaw%4)) // 2, 4, 6, 8
		net, err := BuildCluster(n, Topology{K: k, Split: 1}, 100*units.Mbps, units.Gbps)
		if err != nil {
			return false
		}
		return net.CheckFlowConservation() == nil && net.EOCount() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildClusterKListSpan(t *testing.T) {
	net, err := BuildCluster(8, Topology{K: 4, Split: 1}, 100*units.Mbps, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range net.Links {
		if l.SpanHops != 2 {
			t.Errorf("4-list link spans %d hops, want 2", l.SpanHops)
		}
	}
	// 4 chains of 2 → SµDC-adjacent links carry 2 sats each.
	if got := net.MaxLinkLoad(); math.Abs(float64(got)-2*100e6) > 1 {
		t.Errorf("max load %v, want 200 Mb/s", got)
	}
}

func TestBuildClusterDegenerate(t *testing.T) {
	net, err := BuildCluster(0, Ring, 100*units.Mbps, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if net.EOCount() != 0 || net.MaxLinkLoad() != 0 || net.Saturated() {
		t.Error("empty cluster should be trivially unsaturated")
	}
	if _, err := BuildCluster(-1, Ring, 1, 1); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := BuildCluster(4, Topology{K: 3, Split: 1}, 1, 1); err == nil {
		t.Error("odd k accepted")
	}
}

func TestNetworkLinkPower(t *testing.T) {
	g := OrbitSpacedGeometry(550, 64)
	ring, err := BuildCluster(8, Ring, 100*units.Mbps, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	four, err := BuildCluster(8, Topology{K: 4, Split: 1}, 100*units.Mbps, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	pRing := ring.LinkPower(g, Optical10G)
	pFour := four.LinkPower(g, Optical10G)
	// Same link count (8), but 4-list spans are 2× → ≈4× power.
	ratio := float64(pFour) / float64(pRing)
	if math.Abs(ratio-4) > 0.05 {
		t.Errorf("4-list/ring power ratio %v, want ≈4", ratio)
	}
}

func TestMaxSupportableRejectsBadRate(t *testing.T) {
	if _, err := MaxSupportableBySimulation(Ring, 0, units.Gbps, 10); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestGraphAccessorReturnsCopies(t *testing.T) {
	net, err := BuildCluster(6, Ring, 100*units.Mbps, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	nodes, links := net.Graph()
	if len(nodes) != len(net.Nodes) || len(links) != len(net.Links) {
		t.Fatalf("graph accessor lost elements: %d/%d nodes, %d/%d links",
			len(nodes), len(net.Nodes), len(links), len(net.Links))
	}
	// Mutating the copies must not touch the network.
	nodes[0].Kind = EONode
	links[0].Load = 0
	if net.Nodes[0].Kind != SuDCNode {
		t.Error("node copy aliased the network's node slice")
	}
	if net.Links[0].Load == 0 {
		t.Error("link copy aliased the network's link slice")
	}
}

func TestOutLinksCoversEveryEONode(t *testing.T) {
	net, err := BuildCluster(7, Topology{K: 4, Split: 1}, 100*units.Mbps, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	adj := net.OutLinks()
	// Every EO satellite forwards on exactly one chain link; the SµDC
	// originates nothing.
	for _, n := range net.Nodes {
		switch n.Kind {
		case EONode:
			if len(adj[n.Index]) != 1 {
				t.Errorf("EO node %d has %d outgoing links, want 1", n.Index, len(adj[n.Index]))
			}
		case SuDCNode:
			if len(adj[n.Index]) != 0 {
				t.Errorf("SµDC has %d outgoing links, want 0", len(adj[n.Index]))
			}
		}
	}
	// Indices must point back into the link set consistently.
	for from, idxs := range adj {
		for _, i := range idxs {
			if net.Links[i].From != from {
				t.Errorf("adjacency index %d claims from=%d, link says %d", i, from, net.Links[i].From)
			}
		}
	}
}
