// Package isl models inter-satellite links and the network topologies that
// feed space microdatacenters: RF and optical link technologies, ring
// (2-list) and k-list chain topologies, SµDC splitting, and the capacity
// and transmit-power accounting behind the paper's Table 8, Fig 11, and
// Fig 13.
package isl

import (
	"fmt"
	"math"

	"spacedc/internal/orbit"
	"spacedc/internal/units"
)

// LinkTech describes one ISL technology.
type LinkTech struct {
	Name     string
	Capacity units.DataRate
	Optical  bool
	// PointingSeconds is the time to (re)acquire the link. Optical
	// terminals take seconds to minutes, which is why fixed ring/k-list
	// topologies matter (§7).
	PointingSeconds float64
	// RefTxPower is the transmit power needed to close the link at
	// RefDistanceKm. Optical ISL transmit power grows quadratically with
	// distance (§8, Liang et al.).
	RefTxPower    units.Power
	RefDistanceKm float64
}

// Standard link technologies. Capacities bracket the paper's Table 8 sweep
// (1, 10, 100 Gbit/s); RF ISLs sit at the low end, laser terminals at the
// high end.
var (
	RFKaBand = LinkTech{
		Name: "RF Ka-band ISL", Capacity: 1 * units.Gbps, Optical: false,
		PointingSeconds: 0.1, // beamforming repoints almost instantly
		RefTxPower:      20 * units.Watt, RefDistanceKm: 1000,
	}
	Optical10G = LinkTech{
		Name: "optical 10G ISL", Capacity: 10 * units.Gbps, Optical: true,
		PointingSeconds: 30,
		RefTxPower:      8 * units.Watt, RefDistanceKm: 1000,
	}
	Optical100G = LinkTech{
		Name: "optical 100G ISL", Capacity: 100 * units.Gbps, Optical: true,
		PointingSeconds: 30,
		RefTxPower:      25 * units.Watt, RefDistanceKm: 1000,
	}
)

// Table8Capacities are the ISL capacities the paper sweeps.
var Table8Capacities = []units.DataRate{1 * units.Gbps, 10 * units.Gbps, 100 * units.Gbps}

// TxPowerAt returns the transmit power needed to close the link over
// distKm, scaling quadratically with distance.
func (lt LinkTech) TxPowerAt(distKm float64) units.Power {
	if distKm <= 0 {
		return 0
	}
	r := distKm / lt.RefDistanceKm
	return units.Power(float64(lt.RefTxPower) * r * r)
}

// Topology describes how EO satellites connect to SµDCs within one orbital
// plane.
type Topology struct {
	// K is the number of incoming ISL receivers per SµDC. K = 2 is the
	// ring ("2-list") of Fig 10; larger even K gives the k-lists of
	// Fig 12a. Must be even and ≥ 2.
	K int
	// Split is the number of SµDCs the cluster's compute is divided
	// across (Fig 12b). 1 = monolithic.
	Split int
}

// Ring is the baseline 2-list topology with a monolithic SµDC.
var Ring = Topology{K: 2, Split: 1}

// Validate checks the topology.
func (t Topology) Validate() error {
	if t.K < 2 || t.K%2 != 0 {
		return fmt.Errorf("isl: k must be even and ≥ 2, got %d", t.K)
	}
	if t.Split < 1 {
		return fmt.Errorf("isl: split must be ≥ 1, got %d", t.Split)
	}
	return nil
}

// SupportableEOSats returns the number of EO satellites one SµDC can ingest
// before its ISLs saturate: each of the K receivers accepts one chain whose
// limiting link runs at full capacity, so the SµDC ingests K·C and each
// satellite produces perSatRate — the Table 8 model generalized from K = 2.
func SupportableEOSats(linkCap, perSatRate units.DataRate, k int) int {
	if perSatRate <= 0 || linkCap <= 0 || k <= 0 {
		return 0
	}
	return int(float64(k) * float64(linkCap) / float64(perSatRate))
}

// ClustersForISL returns how many clusters (and thus SµDCs, before
// splitting) a constellation of totalSats needs so that no SµDC is
// ISL-bottlenecked.
func ClustersForISL(totalSats int, linkCap, perSatRate units.DataRate, k int) int {
	m := SupportableEOSats(linkCap, perSatRate, k)
	if m <= 0 {
		return math.MaxInt32 // no number of clusters helps: one satellite already saturates a link
	}
	return (totalSats + m - 1) / m
}

// Bottleneck classifies a cluster design (§7): ISL-bottlenecked when the
// links limit the satellites per SµDC below what its compute could serve.
type Bottleneck int

// Bottleneck states.
const (
	ComputeBound Bottleneck = iota // ISL-unconstrained: compute sets the SµDC count
	ISLBound                       // ISL-bottlenecked: links set the SµDC count
)

// String names the bottleneck.
func (b Bottleneck) String() string {
	if b == ISLBound {
		return "ISL-bottlenecked"
	}
	return "ISL-unconstrained"
}

// Classify compares the compute-supportable satellite count n with the
// ISL-supportable count m: m < n means the constellation is
// ISL-bottlenecked (§7's m < n condition).
func Classify(computeSats, islSats int) Bottleneck {
	if islSats < computeSats {
		return ISLBound
	}
	return ComputeBound
}

// PlaneGeometry captures the in-plane spacing needed for k-list power and
// feasibility analysis.
type PlaneGeometry struct {
	AltKm float64
	// SpacingRad is the angular separation between adjacent satellites.
	SpacingRad float64
}

// OrbitSpacedGeometry distributes n satellites evenly around the plane.
func OrbitSpacedGeometry(altKm float64, n int) PlaneGeometry {
	return PlaneGeometry{AltKm: altKm, SpacingRad: 2 * math.Pi / float64(n)}
}

// FrameSpacedGeometry packs satellites spacingKm apart along track.
func FrameSpacedGeometry(altKm, spacingKm float64) PlaneGeometry {
	r := orbit.EarthRadiusKm + altKm
	return PlaneGeometry{AltKm: altKm, SpacingRad: spacingKm / r}
}

// HopDistanceKm returns the chord length of a k-list link, which spans k/2
// adjacent-satellite spacings.
func (g PlaneGeometry) HopDistanceKm(k int) float64 {
	r := orbit.EarthRadiusKm + g.AltKm
	angle := float64(k) / 2 * g.SpacingRad
	if angle >= 2*math.Pi {
		angle = 2 * math.Pi
	}
	return 2 * r * math.Sin(angle/2)
}

// MaxK returns the largest even k whose hop chord stays above the
// atmospheric grazing altitude — beyond it the link either fades in the
// atmosphere or is blocked by Earth (§8). Orbit-spaced formations hit this
// limit quickly; frame-spaced formations effectively never do.
func (g PlaneGeometry) MaxK(grazeAltKm float64) int {
	r := orbit.EarthRadiusKm + g.AltKm
	block := orbit.EarthRadiusKm + grazeAltKm
	if r <= block {
		return 0
	}
	// Chord midpoint depth: r·cos(α/2) ≥ block, α = (k/2)·spacing.
	alphaMax := 2 * math.Acos(block/r)
	kMax := int(alphaMax / g.SpacingRad * 2)
	if kMax%2 != 0 {
		kMax--
	}
	if kMax < 2 {
		return 0
	}
	return kMax
}

// CoDesign is the Fig 13 accounting for one (topology, geometry, tech)
// design point on a fixed constellation.
type CoDesign struct {
	Topology Topology
	Geometry PlaneGeometry
	Tech     LinkTech
	// TotalSats in the constellation (64 in the paper's study).
	TotalSats int
}

// AggregateCapacity returns the total rate at which EO data can flow into
// all SµDCs: split clusters × k receivers each × link capacity.
func (c CoDesign) AggregateCapacity() units.DataRate {
	return units.DataRate(float64(c.Tech.Capacity) * float64(c.Topology.K) * float64(c.Topology.Split))
}

// TotalTxPower returns the transmit power of all satellite ISL
// transmitters. Every satellite drives one outbound link of the k-list
// chain, whose span (and thus power, ∝ d²) grows with k. Splitting leaves
// link spans unchanged.
func (c CoDesign) TotalTxPower() units.Power {
	d := c.Geometry.HopDistanceKm(c.Topology.K)
	return units.Power(float64(c.Tech.TxPowerAt(d)) * float64(c.TotalSats))
}

// Feasible reports whether the k-list spans clear the atmosphere.
func (c CoDesign) Feasible(grazeAltKm float64) bool {
	maxK := c.Geometry.MaxK(grazeAltKm)
	return c.Topology.K <= maxK
}

// Normalized is one row of Fig 13: capacity and power relative to the
// baseline ring without splitting.
type Normalized struct {
	Topology     Topology
	CapacityNorm float64
	PowerNorm    float64
	Feasible     bool
}

// Fig13Point computes the design point normalized against Ring on the same
// geometry and technology.
func (c CoDesign) Fig13Point(grazeAltKm float64) Normalized {
	base := CoDesign{Topology: Ring, Geometry: c.Geometry, Tech: c.Tech, TotalSats: c.TotalSats}
	return Normalized{
		Topology:     c.Topology,
		CapacityNorm: float64(c.AggregateCapacity()) / float64(base.AggregateCapacity()),
		PowerNorm:    float64(c.TotalTxPower()) / float64(base.TotalTxPower()),
		Feasible:     c.Feasible(grazeAltKm),
	}
}
