package detect

import (
	"testing"

	"spacedc/internal/eoimage"
)

func scene(t *testing.T, ships int, seed int64) *eoimage.SARScene {
	t.Helper()
	s, err := eoimage.GenerateSAR(eoimage.SARConfig{
		Width: 256, Height: 256, Seed: seed, ShipCount: ships, NoDataBorder: 16})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidate(t *testing.T) {
	if err := DefaultCFAR().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CFAR{
		{GuardRadius: -1, TrainRadius: 9, ThresholdFactor: 5},
		{GuardRadius: 5, TrainRadius: 5, ThresholdFactor: 5},
		{GuardRadius: 3, TrainRadius: 9, ThresholdFactor: 0.5},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad detector %d accepted", i)
		}
	}
	if _, err := (CFAR{}).Detect(scene(t, 1, 1)); err == nil {
		t.Error("zero-value detector accepted")
	}
}

func TestDetectsSeededShips(t *testing.T) {
	s := scene(t, 8, 2)
	dets, err := DefaultCFAR().Detect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 {
		t.Fatal("no detections on a scene with 8 ships")
	}
	score := Evaluate(s, dets, 4)
	if score.Recall < 0.75 {
		t.Errorf("recall = %v (missed %d), want ≥ 0.75", score.Recall, score.MissedShips)
	}
	if score.Precision < 0.6 {
		t.Errorf("precision = %v (%d false alarms), want ≥ 0.6", score.Precision, score.FalsePositives)
	}
}

func TestEmptyOceanNoDetections(t *testing.T) {
	s := scene(t, 0, 3)
	dets, err := DefaultCFAR().Detect(s)
	if err != nil {
		t.Fatal(err)
	}
	// A CFAR on pure speckle should fire rarely at 5× threshold.
	if len(dets) > 5 {
		t.Errorf("%d false alarms on an empty scene", len(dets))
	}
	score := Evaluate(s, dets, 4)
	if score.Recall != 1 {
		t.Errorf("recall on shipless scene = %v, want vacuous 1", score.Recall)
	}
}

func TestThresholdControlsFalseAlarms(t *testing.T) {
	s := scene(t, 4, 4)
	loose := CFAR{GuardRadius: 3, TrainRadius: 9, ThresholdFactor: 2}
	tight := CFAR{GuardRadius: 3, TrainRadius: 9, ThresholdFactor: 8}
	dLoose, err := loose.Detect(s)
	if err != nil {
		t.Fatal(err)
	}
	dTight, err := tight.Detect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(dTight) > len(dLoose) {
		t.Errorf("tighter threshold produced more detections (%d > %d)", len(dTight), len(dLoose))
	}
	sLoose := Evaluate(s, dLoose, 4)
	sTight := Evaluate(s, dTight, 4)
	if sTight.FalsePositives > sLoose.FalsePositives {
		t.Errorf("tighter threshold produced more false alarms")
	}
}

func TestDetectionsSortedByPeak(t *testing.T) {
	s := scene(t, 6, 5)
	dets, err := DefaultCFAR().Detect(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(dets); i++ {
		if dets[i].Peak > dets[i-1].Peak {
			t.Fatal("detections not sorted by peak")
		}
	}
}

func TestNoDataBorderIgnored(t *testing.T) {
	// Detections must not appear in the zero-valued border.
	s := scene(t, 6, 6)
	dets, err := DefaultCFAR().Detect(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dets {
		if d.X < 14 || d.X > 256-14 || d.Y < 14 || d.Y > 256-14 {
			t.Errorf("detection at (%d, %d) in/near the no-data border", d.X, d.Y)
		}
	}
}

func TestDetectionPayloadTiny(t *testing.T) {
	// The whole point of in-orbit processing: a frame is megabytes, the
	// insight is bytes. 8 detections × ~16 bytes ≪ the 128 KiB frame.
	s := scene(t, 8, 7)
	dets, err := DefaultCFAR().Detect(s)
	if err != nil {
		t.Fatal(err)
	}
	payload := len(dets) * 16
	frame := len(s.Bytes())
	if payload*100 > frame {
		t.Errorf("detection payload %d B not ≪ frame %d B", payload, frame)
	}
}

func BenchmarkCFARDetect(b *testing.B) {
	s, err := eoimage.GenerateSAR(eoimage.SARConfig{
		Width: 512, Height: 512, Seed: 1, ShipCount: 10, NoDataBorder: 16})
	if err != nil {
		b.Fatal(err)
	}
	c := DefaultCFAR()
	b.SetBytes(int64(2 * 512 * 512))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Detect(s); err != nil {
			b.Fatal(err)
		}
	}
}
