// Package detect implements a cell-averaging CFAR (constant false alarm
// rate) ship detector for SAR imagery — the concrete "dark vessel
// detection" workload behind the paper's xView3 citation and its Oil
// Spill / maritime monitoring applications. Running this on board is
// exactly the computation a SµDC hosts: the frame stays in orbit, only
// the detections (a few bytes each) come down.
package detect

import (
	"fmt"
	"sort"

	"spacedc/internal/eoimage"
)

// CFAR is a cell-averaging CFAR detector: each cell is compared against
// the mean background estimated from a training ring around it, with a
// guard ring excluding the target's own energy.
type CFAR struct {
	// GuardRadius is the half-width of the guard window (cells whose
	// energy is excluded from the background estimate).
	GuardRadius int
	// TrainRadius is the half-width of the training window. Must exceed
	// GuardRadius.
	TrainRadius int
	// ThresholdFactor scales the background mean: a cell detects when
	// amplitude > factor × background.
	ThresholdFactor float64
}

// DefaultCFAR suits the synthetic maritime scenes: 3-cell guard, 9-cell
// training ring, 5× threshold.
func DefaultCFAR() CFAR {
	return CFAR{GuardRadius: 3, TrainRadius: 9, ThresholdFactor: 5}
}

// Validate checks the detector geometry.
func (c CFAR) Validate() error {
	if c.GuardRadius < 0 {
		return fmt.Errorf("detect: negative guard radius %d", c.GuardRadius)
	}
	if c.TrainRadius <= c.GuardRadius {
		return fmt.Errorf("detect: training radius %d must exceed guard %d", c.TrainRadius, c.GuardRadius)
	}
	if c.ThresholdFactor <= 1 {
		return fmt.Errorf("detect: threshold factor %v must exceed 1", c.ThresholdFactor)
	}
	return nil
}

// Detection is one detected target.
type Detection struct {
	X, Y   int // centroid
	Peak   uint16
	Pixels int
}

// integralImages builds summed-area tables (padded by one row/column) of
// the amplitudes and of the valid (non-zero) cell indicator, so background
// means can exclude no-data regions.
func integralImages(s *eoimage.SARScene) (sum, valid []float64) {
	w, h := s.Width, s.Height
	sum = make([]float64, (w+1)*(h+1))
	valid = make([]float64, (w+1)*(h+1))
	for y := 0; y < h; y++ {
		rowSum, rowValid := 0.0, 0.0
		for x := 0; x < w; x++ {
			v := float64(s.Amplitude[y*w+x])
			rowSum += v
			if v > 0 {
				rowValid++
			}
			sum[(y+1)*(w+1)+(x+1)] = sum[y*(w+1)+(x+1)] + rowSum
			valid[(y+1)*(w+1)+(x+1)] = valid[y*(w+1)+(x+1)] + rowValid
		}
	}
	return sum, valid
}

// boxSum returns the table's sum over the clipped rectangle [x0,x1]×[y0,y1].
func boxSum(ii []float64, w, h, x0, y0, x1, y1 int) float64 {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 >= w {
		x1 = w - 1
	}
	if y1 >= h {
		y1 = h - 1
	}
	if x0 > x1 || y0 > y1 {
		return 0
	}
	stride := w + 1
	return ii[(y1+1)*stride+(x1+1)] - ii[y0*stride+(x1+1)] - ii[(y1+1)*stride+x0] + ii[y0*stride+x0]
}

// Detect runs the detector and returns clustered detections sorted by
// peak amplitude, strongest first.
func (c CFAR) Detect(s *eoimage.SARScene) ([]Detection, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	w, h := s.Width, s.Height
	sumII, validII := integralImages(s)

	hits := make([]bool, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := float64(s.Amplitude[y*w+x])
			if v == 0 {
				continue // no-data
			}
			outerSum := boxSum(sumII, w, h, x-c.TrainRadius, y-c.TrainRadius, x+c.TrainRadius, y+c.TrainRadius)
			innerSum := boxSum(sumII, w, h, x-c.GuardRadius, y-c.GuardRadius, x+c.GuardRadius, y+c.GuardRadius)
			outerValid := boxSum(validII, w, h, x-c.TrainRadius, y-c.TrainRadius, x+c.TrainRadius, y+c.TrainRadius)
			innerValid := boxSum(validII, w, h, x-c.GuardRadius, y-c.GuardRadius, x+c.GuardRadius, y+c.GuardRadius)
			trainValid := outerValid - innerValid
			// Require a meaningful valid background sample: near the
			// no-data border the ring is mostly empty and the estimate
			// would be worthless.
			full := (2*c.TrainRadius + 1) * (2*c.TrainRadius + 1)
			guard := (2*c.GuardRadius + 1) * (2*c.GuardRadius + 1)
			if trainValid < 0.5*float64(full-guard) {
				continue
			}
			background := (outerSum - innerSum) / trainValid
			if background <= 0 {
				continue
			}
			if v > c.ThresholdFactor*background {
				hits[y*w+x] = true
			}
		}
	}
	return clusterHits(s, hits), nil
}

// clusterHits groups 8-connected exceedances into detections.
func clusterHits(s *eoimage.SARScene, hits []bool) []Detection {
	w, h := s.Width, s.Height
	visited := make([]bool, w*h)
	var out []Detection
	var stack []int
	for start := range hits {
		if !hits[start] || visited[start] {
			continue
		}
		stack = append(stack[:0], start)
		visited[start] = true
		var sumX, sumY, count int
		var peak uint16
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := i%w, i/w
			sumX += x
			sumY += y
			count++
			if s.Amplitude[i] > peak {
				peak = s.Amplitude[i]
			}
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := x+dx, y+dy
					if nx < 0 || nx >= w || ny < 0 || ny >= h {
						continue
					}
					j := ny*w + nx
					if hits[j] && !visited[j] {
						visited[j] = true
						stack = append(stack, j)
					}
				}
			}
		}
		out = append(out, Detection{X: sumX / count, Y: sumY / count, Peak: peak, Pixels: count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peak > out[j].Peak })
	return out
}

// Score compares detections to the scene's ground-truth ship mask.
type Score struct {
	TruePositives  int // detections whose centroid hits a true ship region
	FalsePositives int
	MissedShips    int
	Precision      float64
	Recall         float64
}

// Evaluate scores the detections against ground truth: a detection is a
// true positive when its centroid falls within matchRadius of any
// ship-mask pixel; a ship region counts as found when any detection
// matched it.
func Evaluate(s *eoimage.SARScene, dets []Detection, matchRadius int) Score {
	w, h := s.Width, s.Height
	// Label ship regions by flood fill.
	labels := make([]int, w*h)
	next := 0
	var stack []int
	for start, isShip := range s.ShipMask {
		if !isShip || labels[start] != 0 {
			continue
		}
		next++
		stack = append(stack[:0], start)
		labels[start] = next
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := i%w, i/w
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := x+dx, y+dy
					if nx < 0 || nx >= w || ny < 0 || ny >= h {
						continue
					}
					j := ny*w + nx
					if s.ShipMask[j] && labels[j] == 0 {
						labels[j] = next
						stack = append(stack, j)
					}
				}
			}
		}
	}

	found := make(map[int]bool)
	var score Score
	for _, d := range dets {
		matched := 0
		for dy := -matchRadius; dy <= matchRadius && matched == 0; dy++ {
			for dx := -matchRadius; dx <= matchRadius; dx++ {
				x, y := d.X+dx, d.Y+dy
				if x < 0 || x >= w || y < 0 || y >= h {
					continue
				}
				if l := labels[y*w+x]; l != 0 {
					matched = l
					break
				}
			}
		}
		if matched != 0 {
			score.TruePositives++
			found[matched] = true
		} else {
			score.FalsePositives++
		}
	}
	score.MissedShips = next - len(found)
	if score.TruePositives+score.FalsePositives > 0 {
		score.Precision = float64(score.TruePositives) / float64(score.TruePositives+score.FalsePositives)
	}
	if next > 0 {
		score.Recall = float64(len(found)) / float64(next)
	} else {
		score.Recall = 1
	}
	return score
}
