// Package apps catalogs the ten Earth-observation applications the paper
// analyzes (Table 5): their kernels, imagery types, per-pixel computational
// complexity, and latency sensitivity. These applications are "memoryless" —
// each processes a single frame at a time — which is what makes them
// candidates for moving from the ground into space.
package apps

import "fmt"

// ImageryType is the sensor modality an application consumes.
type ImageryType int

// Imagery types used by the Table 5 applications.
const (
	RGB ImageryType = iota
	Hyperspectral
	SAR
)

// String names the imagery type.
func (it ImageryType) String() string {
	switch it {
	case RGB:
		return "RGB"
	case Hyperspectral:
		return "hyperspectral"
	case SAR:
		return "SAR"
	default:
		return "unknown"
	}
}

// ID is a short, stable identifier for an application (the paper's
// abbreviations: APP, CM, FD, AD, FQE, UED, PS, OSM, TM, LSC).
type ID string

// Application IDs, Table 5.
const (
	AirPollution     ID = "APP"
	CropMonitoring   ID = "CM"
	FloodDetection   ID = "FD"
	AircraftDetect   ID = "AD"
	ForageQuality    ID = "FQE"
	UrbanEmergency   ID = "UED"
	PanopticSeg      ID = "PS"
	OilSpill         ID = "OSM"
	TrafficMonitor   ID = "TM"
	LandSurfaceClust ID = "LSC"
)

// Application is one row of Table 5.
type Application struct {
	ID          ID
	Name        string
	Description string
	Imagery     ImageryType
	Kernel      string
	// FLOPsPerPixel is the per-pixel floating-point cost of the kernel.
	// The paper notes computational complexity scales linearly with pixel
	// count for these kernels, so total work = FLOPsPerPixel × pixels.
	FLOPsPerPixel float64
	Users         string
	// LatencySensitive marks applications (UED, FD, PS-backed alerting)
	// where detection delay matters; §9 argues the rest can trade latency
	// for energy efficiency on accelerator architectures.
	LatencySensitive bool
}

// All returns the ten Table 5 applications in the paper's order.
func All() []Application {
	return []Application{
		{AirPollution, "Air Pollution Prediction",
			"Predict air pollution levels using CNN", RGB,
			"Inception-ResNet", 3317, "NASA, CARB", false},
		{CropMonitoring, "Crop Monitoring",
			"Identify type and quality of crops", Hyperspectral,
			"Inception v3", 67113, "Ministry of Agriculture of China, ESA", false},
		{FloodDetection, "Flood Detection",
			"Identify floods and assess flood severity", RGB,
			"DenseNet", 178969, "GDACS, NASA", true},
		{AircraftDetect, "Aircraft Detection",
			"Identify stationary and moving aircraft using CNN", RGB,
			"Custom 4-layer CNN", 7387714, "Orbital Insights, militaries", false},
		{ForageQuality, "Forage Quality Estimation",
			"Estimate forage quality for agriculture and animal husbandry", RGB,
			"EfficientNet based", 8491, "USDA, UN", false},
		{UrbanEmergency, "Urban Emergency Detection",
			"Fire, traffic accident, building collapse detection", RGB,
			"MobileNet v3", 4484, "NASA, USDA", true},
		{PanopticSeg, "Panoptic Segmentation",
			"Simultaneous detection of countable objects and backgrounds", RGB,
			"Mask RCNN", 6874279, "Crop monitoring, urban classification, environmental monitoring", true},
		{OilSpill, "Oil Spill Monitoring",
			"Deep water environmental monitoring", Hyperspectral,
			"VGG19", 390625, "KSAT, NOAA, ESA", false},
		{TrafficMonitor, "Traffic Monitoring",
			"Detect moving vehicles via blue reflectance", RGB,
			"Custom DSP algo using channel ratios", 51, "DoT, ESA", false},
		{LandSurfaceClust, "Land Surface Clustering",
			"Unsupervised segmentation / land cover change detection", Hyperspectral,
			"K-Means (K=4)", 15984, "NASA, ESA", false},
	}
}

// ByID returns the application with the given ID.
func ByID(id ID) (Application, error) {
	for _, a := range All() {
		if a.ID == id {
			return a, nil
		}
	}
	return Application{}, fmt.Errorf("apps: unknown application %q", id)
}

// IDs returns all application IDs in Table 5 order.
func IDs() []ID {
	all := All()
	ids := make([]ID, len(all))
	for i, a := range all {
		ids[i] = a.ID
	}
	return ids
}

// FLOPsForPixels returns the total floating-point work to process n pixels.
func (a Application) FLOPsForPixels(n float64) float64 {
	return a.FLOPsPerPixel * n
}

// ComplexitySpreadFactor returns the ratio between the most and least
// computationally expensive applications per pixel. The paper reports over
// 10⁵× between aircraft detection and traffic monitoring.
func ComplexitySpreadFactor() float64 {
	min, max := 0.0, 0.0
	for i, a := range All() {
		if i == 0 {
			min, max = a.FLOPsPerPixel, a.FLOPsPerPixel
			continue
		}
		if a.FLOPsPerPixel < min {
			min = a.FLOPsPerPixel
		}
		if a.FLOPsPerPixel > max {
			max = a.FLOPsPerPixel
		}
	}
	return max / min
}
