package apps

import (
	"testing"
)

func TestAllHasTenApplications(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("got %d applications, want 10 (Table 5)", len(all))
	}
	seen := map[ID]bool{}
	for _, a := range all {
		if seen[a.ID] {
			t.Errorf("duplicate ID %s", a.ID)
		}
		seen[a.ID] = true
		if a.FLOPsPerPixel <= 0 {
			t.Errorf("%s: non-positive FLOPs/pixel", a.ID)
		}
		if a.Name == "" || a.Kernel == "" {
			t.Errorf("%s: missing name or kernel", a.ID)
		}
	}
}

func TestTable5FLOPsValues(t *testing.T) {
	// Spot-check the exact Table 5 numbers.
	want := map[ID]float64{
		AirPollution:     3317,
		CropMonitoring:   67113,
		FloodDetection:   178969,
		AircraftDetect:   7387714,
		ForageQuality:    8491,
		UrbanEmergency:   4484,
		PanopticSeg:      6874279,
		OilSpill:         390625,
		TrafficMonitor:   51,
		LandSurfaceClust: 15984,
	}
	for id, flops := range want {
		a, err := ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if a.FLOPsPerPixel != flops {
			t.Errorf("%s: FLOPs/pixel = %v, want %v", id, a.FLOPsPerPixel, flops)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("NOPE"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestIDsOrder(t *testing.T) {
	ids := IDs()
	if len(ids) != 10 {
		t.Fatalf("got %d IDs", len(ids))
	}
	if ids[0] != AirPollution || ids[len(ids)-1] != LandSurfaceClust {
		t.Errorf("IDs not in Table 5 order: %v", ids)
	}
}

func TestComplexitySpread(t *testing.T) {
	// The paper: "over 10⁵× difference in floating point operations per
	// pixel between aircraft detection and traffic monitoring."
	spread := ComplexitySpreadFactor()
	if spread < 1e5 {
		t.Errorf("complexity spread = %v, want > 1e5", spread)
	}
	// AD / TM specifically = 7387714 / 51 ≈ 1.45e5.
	ad, _ := ByID(AircraftDetect)
	tm, _ := ByID(TrafficMonitor)
	if ad.FLOPsPerPixel/tm.FLOPsPerPixel != spread {
		t.Error("spread should be set by AD vs TM")
	}
}

func TestImageryTypes(t *testing.T) {
	hyper := 0
	for _, a := range All() {
		if a.Imagery == Hyperspectral {
			hyper++
		}
	}
	// CM, OSM, LSC are hyperspectral in Table 5.
	if hyper != 3 {
		t.Errorf("%d hyperspectral applications, want 3", hyper)
	}
	if RGB.String() != "RGB" || Hyperspectral.String() != "hyperspectral" || SAR.String() != "SAR" {
		t.Error("imagery type names wrong")
	}
	if ImageryType(9).String() != "unknown" {
		t.Error("unknown imagery type")
	}
}

func TestFLOPsForPixels(t *testing.T) {
	tm, _ := ByID(TrafficMonitor)
	if got := tm.FLOPsForPixels(1e6); got != 51e6 {
		t.Errorf("TM on 1 Mpixel = %v FLOPs, want 5.1e7", got)
	}
}

func TestLatencySensitiveSubset(t *testing.T) {
	// §9: TM, APP, AD, CM, LSC, FQE explicitly have no stringent latency
	// requirements.
	relaxed := []ID{TrafficMonitor, AirPollution, AircraftDetect, CropMonitoring, LandSurfaceClust, ForageQuality}
	for _, id := range relaxed {
		a, _ := ByID(id)
		if a.LatencySensitive {
			t.Errorf("%s should not be latency sensitive", id)
		}
	}
	ued, _ := ByID(UrbanEmergency)
	if !ued.LatencySensitive {
		t.Error("UED should be latency sensitive (timely emergency response)")
	}
}
