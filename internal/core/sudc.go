// Package core implements the paper's primary contribution: the space
// microdatacenter (SµDC) — a large computational satellite that ingests
// Earth-observation data over inter-satellite links and runs, in orbit, the
// applications that would otherwise run on the ground.
//
// It provides SµDC sizing against application workloads (Fig 8, 9, 14),
// radiation-hardening overheads (Fig 16), placement analysis including
// eclipse-aware power generation (§9), ISL-bottleneck co-design (Fig 11),
// the GEO star topology (Fig 15), and the strategy comparison of Table 9.
package core

import (
	"fmt"
	"math"
	"time"

	"spacedc/internal/gpusim"
	"spacedc/internal/orbit"
	"spacedc/internal/units"
)

// Hardening is a radiation-tolerance strategy for SµDC compute (§9,
// Fig 16).
type Hardening int

// Hardening strategies.
const (
	// NoHardening relies on LEO's benign environment and SAA pauses.
	NoHardening Hardening = iota
	// SoftwareHardening applies software-based soft-error mitigation at
	// ~20% compute overhead (Abich et al.).
	SoftwareHardening
	// DualRedundant runs every computation twice.
	DualRedundant
	// TripleRedundant runs every computation three times (TMR voting).
	TripleRedundant
)

// String names the strategy.
func (h Hardening) String() string {
	switch h {
	case NoHardening:
		return "none"
	case SoftwareHardening:
		return "software (20%)"
	case DualRedundant:
		return "2x redundancy"
	case TripleRedundant:
		return "3x redundancy"
	default:
		return "unknown"
	}
}

// ComputeOverhead returns the multiplier on compute work (≥ 1).
func (h Hardening) ComputeOverhead() float64 {
	switch h {
	case SoftwareHardening:
		return 1.2
	case DualRedundant:
		return 2
	case TripleRedundant:
		return 3
	default:
		return 1
	}
}

// Hardenings lists the Fig 16 sweep.
func Hardenings() []Hardening {
	return []Hardening{NoHardening, SoftwareHardening, DualRedundant, TripleRedundant}
}

// Placement is where the SµDC flies (§9).
type Placement int

// Placements.
const (
	// LEOInPlane flies in formation with the EO constellation, enabling
	// fixed ring/k-list topologies.
	LEOInPlane Placement = iota
	// LEOHigher sits in the same plane at higher altitude: less drag and
	// boosting, but the relative drift breaks static topologies.
	LEOHigher
	// GEO parks three SµDCs over the equator for continuous coverage
	// (Fig 15) at the cost of launch mass and outer-belt radiation.
	GEO
)

// String names the placement.
func (p Placement) String() string {
	switch p {
	case LEOInPlane:
		return "LEO in-plane"
	case LEOHigher:
		return "LEO higher altitude"
	case GEO:
		return "GEO"
	default:
		return "unknown"
	}
}

// StaticTopology reports whether optical ISLs can stay pointed without
// re-acquisition: only in-plane formation flight keeps geometry fixed.
func (p Placement) StaticTopology() bool { return p == LEOInPlane }

// TypicalEclipseFraction returns the long-run fraction of time in Earth
// shadow: ~1/3 for LEO, near zero for GEO (§9). The orbit package computes
// exact values; this is the design rule of thumb.
func (p Placement) TypicalEclipseFraction() float64 {
	switch p {
	case GEO:
		return 0.01
	default:
		return 1.0 / 3.0
	}
}

// NeedsOuterBeltHardening reports whether the placement sits in the outer
// Van Allen belt's high-energy electron environment.
func (p Placement) NeedsOuterBeltHardening() bool { return p == GEO }

// SuDC is one space microdatacenter design.
type SuDC struct {
	Name string
	// ComputeBudget is the power available to payload compute (the
	// paper's 4 kW baseline; "space-station class" is 256 kW). Bus loads
	// (ISLs, attitude control, thermal) are excluded, as in the paper.
	ComputeBudget units.Power
	Device        gpusim.Device
	Placement     Placement
	Hardening     Hardening
}

// Default4kW is the paper's baseline SµDC: 4 kW of RTX 3090-class compute
// flying in-plane with the constellation.
func Default4kW() SuDC {
	return SuDC{
		Name:          "SµDC-4kW",
		ComputeBudget: 4 * units.Kilowatt,
		Device:        gpusim.RTX3090,
		Placement:     LEOInPlane,
	}
}

// StationClass256kW is the paper's 256 kW "space station class" SµDC.
func StationClass256kW() SuDC {
	s := Default4kW()
	s.Name = "SµDC-256kW"
	s.ComputeBudget = 256 * units.Kilowatt
	return s
}

// Validate checks the design.
func (s SuDC) Validate() error {
	if s.ComputeBudget <= 0 {
		return fmt.Errorf("core: non-positive compute budget %v", s.ComputeBudget)
	}
	if s.Device.Name == "" {
		return fmt.Errorf("core: SµDC needs a device")
	}
	if s.Hardening.ComputeOverhead() < 1 {
		return fmt.Errorf("core: hardening overhead below 1")
	}
	return nil
}

// EffectiveComputeBudget returns the budget left after the hardening
// overhead: redundancy and software mitigation consume compute that would
// otherwise process pixels.
func (s SuDC) EffectiveComputeBudget() units.Power {
	return units.Power(float64(s.ComputeBudget) / s.Hardening.ComputeOverhead())
}

// BusOverheadPower estimates non-compute power: ISLs, ground comms,
// flywheels, flight controller, battery heating, propulsion, thermal
// management. The paper budgets up to 1 kW on the 4 kW design; we scale
// that fraction.
func (s SuDC) BusOverheadPower() units.Power {
	return units.Power(0.25 * float64(s.ComputeBudget))
}

// TotalPower is compute plus bus overhead (the paper's "<5 kW overall").
func (s SuDC) TotalPower() units.Power {
	return s.ComputeBudget + s.BusOverheadPower()
}

// SolarArrayPower returns the array size needed to run TotalPower
// continuously given the placement's eclipse fraction: the array must both
// carry the sunlit load and recharge the battery that carries the eclipse
// (assuming an ideal battery, array power = load / (1 - eclipseFraction)).
func (s SuDC) SolarArrayPower() units.Power {
	f := s.Placement.TypicalEclipseFraction()
	return units.Power(float64(s.TotalPower()) / (1 - f))
}

// SolarArrayPowerAt computes the same sizing from the actual eclipse
// fraction of a concrete orbit over a representative day.
func (s SuDC) SolarArrayPowerAt(el orbit.Elements, day time.Time) units.Power {
	f := orbit.EclipseFraction(el, day, 24*time.Hour, time.Minute)
	if f >= 1 {
		return units.Power(math.Inf(1))
	}
	return units.Power(float64(s.TotalPower()) / (1 - f))
}
