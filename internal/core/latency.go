package core

import (
	"fmt"
	"math"
	"time"

	"spacedc/internal/gpusim"
	"spacedc/internal/isl"
	"spacedc/internal/units"
)

// This file models end-to-end detection latency — the paper's motivation
// for Urban Emergency Detection ("processing in space enables low latency
// detection, an important metric"). Two paths race from shutter to alert:
//
//   ground path: wait for the next ground-station contact, downlink the
//   frame, process on the ground, send the alert.
//
//   SµDC path: relay over the ISL chain, queue for a batch, run inference
//   in orbit, downlink only the alert (a few bytes, over any low-rate
//   link, immediately).

// GroundPath describes the conventional downlink-and-process pipeline.
type GroundPath struct {
	// MeanContactWaitSec is the average wait for the next ground-station
	// pass. A single mid-latitude station averages ≈ half the ~95 min
	// revolution minus pass time; a global GSaaS network shortens it.
	MeanContactWaitSec float64
	// DownlinkRate carries the frame to the ground.
	DownlinkRate units.DataRate
	// GroundComputeSec is the terrestrial inference time (cheap).
	GroundComputeSec float64
}

// DefaultGroundPath models a constellation subscribed to a GSaaS network
// with ~8 usable stations: mean contact wait ≈ 12 min.
func DefaultGroundPath() GroundPath {
	return GroundPath{
		MeanContactWaitSec: 12 * 60,
		DownlinkRate:       220 * units.Mbps,
		GroundComputeSec:   1,
	}
}

// Latency returns the shutter-to-alert latency for a frame of the given
// size.
func (g GroundPath) Latency(frame units.DataSize) (time.Duration, error) {
	if g.DownlinkRate <= 0 {
		return 0, fmt.Errorf("core: non-positive downlink rate")
	}
	sec := g.MeanContactWaitSec + g.DownlinkRate.Transmit(frame) + g.GroundComputeSec
	return time.Duration(sec * float64(time.Second)), nil
}

// SuDCPath describes the in-orbit pipeline.
type SuDCPath struct {
	// RelayHops is the number of ISL hops from the imaging satellite to
	// the SµDC (≤ half the cluster size in a ring).
	RelayHops int
	// ISL carries the frame between satellites.
	ISL isl.LinkTech
	// HopDistanceKm sets per-hop propagation delay.
	HopDistanceKm float64
	// BatchWaitSec is the mean queueing delay for batch formation (from
	// the sched package's operating point; efficiency-optimal batching
	// of a busy SµDC waits a few seconds).
	BatchWaitSec float64
	// Model computes the inference time at its optimal batch.
	Model *gpusim.Model
}

// Latency returns the shutter-to-alert latency for a frame of the given
// size: store-and-forward over the relay chain, batch wait, inference,
// and a negligible alert downlink.
func (p SuDCPath) Latency(frame units.DataSize) (time.Duration, error) {
	if p.ISL.Capacity <= 0 {
		return 0, fmt.Errorf("core: non-positive ISL capacity")
	}
	if p.Model == nil {
		return 0, fmt.Errorf("core: SµDC path needs a device model")
	}
	hops := float64(p.RelayHops)
	if hops < 1 {
		hops = 1
	}
	const lightSpeedKmS = 299792.458
	transmit := p.ISL.Capacity.Transmit(frame) * hops // store-and-forward
	propagation := p.HopDistanceKm / lightSpeedKmS * hops
	infer := p.Model.InferTime(p.Model.OptimalBatch())
	sec := transmit + propagation + p.BatchWaitSec + infer
	return time.Duration(sec * float64(time.Second)), nil
}

// LatencyComparison is the head-to-head result.
type LatencyComparison struct {
	Ground  time.Duration
	SuDC    time.Duration
	Speedup float64
}

// CompareDetectionLatency races the two paths for one frame.
func CompareDetectionLatency(frame units.DataSize, g GroundPath, s SuDCPath) (LatencyComparison, error) {
	gl, err := g.Latency(frame)
	if err != nil {
		return LatencyComparison{}, err
	}
	sl, err := s.Latency(frame)
	if err != nil {
		return LatencyComparison{}, err
	}
	out := LatencyComparison{Ground: gl, SuDC: sl}
	if sl > 0 {
		out.Speedup = float64(gl) / float64(sl)
	} else {
		out.Speedup = math.Inf(1)
	}
	return out, nil
}
