package core

import (
	"math"

	"spacedc/internal/units"
)

// Strategy is one column of the paper's Table 9: a way to deal with the
// downlink deficit.
type Strategy struct {
	Name              string
	ScalesToFutureRes bool // keeps working as resolution targets tighten
	HighPower         bool // needs large power generation in orbit
	RequiresISLs      bool
	AdaptiveToMission bool // absorbs model/application changes post-launch
}

// Table9 returns the paper's strategy comparison.
func Table9() []Strategy {
	return []Strategy{
		{Name: "SµDCs", ScalesToFutureRes: true, HighPower: true,
			RequiresISLs: true, AdaptiveToMission: true},
		{Name: "Homogeneous Compute", ScalesToFutureRes: true, HighPower: true,
			RequiresISLs: false, AdaptiveToMission: false},
		{Name: "Compression", ScalesToFutureRes: false, HighPower: false,
			RequiresISLs: false, AdaptiveToMission: false},
		{Name: "RF Comms", ScalesToFutureRes: false, HighPower: true,
			RequiresISLs: false, AdaptiveToMission: false},
	}
}

// CostModel compares recurring downlink spend against one-time SµDC launch
// cost — the paper's argument that launching SµDCs "will invariably be
// cheaper than paying significant recurring costs for data downlink."
type CostModel struct {
	// LaunchPerKg is the launch price (projected Starship-era prices run
	// $100–1500/kg; Falcon-class today ~$2700/kg).
	LaunchPerKg units.Money
	// SuDCMassKg estimates the SµDC's wet mass. A 4 kW server rack plus
	// bus, arrays, and thermal control lands in small-satellite-bus
	// territory, ~2000 kg.
	SuDCMassKg float64
	// BuildCost is the non-recurring hardware cost of one SµDC.
	BuildCost units.Money
}

// DefaultCostModel uses conservative near-term numbers.
func DefaultCostModel() CostModel {
	return CostModel{
		LaunchPerKg: 2700 * units.Dollar,
		SuDCMassKg:  2000,
		BuildCost:   20 * units.Million,
	}
}

// SuDCCapex returns the up-front cost of n SµDCs.
func (c CostModel) SuDCCapex(n int) units.Money {
	perUnit := float64(c.BuildCost) + float64(c.LaunchPerKg)*c.SuDCMassKg
	return units.Money(perUnit * float64(n))
}

// BreakEvenDays returns how many days of downlink spending at the given
// daily rate pay for n SµDCs. Infinite when downlink is free.
func (c CostModel) BreakEvenDays(n int, downlinkPerDay units.Money) float64 {
	if downlinkPerDay <= 0 {
		return math.Inf(1)
	}
	return float64(c.SuDCCapex(n)) / float64(downlinkPerDay)
}
