package core

import (
	"testing"
	"time"

	"spacedc/internal/apps"
	"spacedc/internal/datagen"
	"spacedc/internal/gpusim"
	"spacedc/internal/isl"
	"spacedc/internal/units"
)

func sudcPathFor(t *testing.T, id apps.ID) SuDCPath {
	t.Helper()
	m, err := gpusim.NewModel(id, gpusim.RTX3090)
	if err != nil {
		t.Fatal(err)
	}
	return SuDCPath{
		RelayHops:     4,
		ISL:           isl.Optical10G,
		HopDistanceKm: 680,
		BatchWaitSec:  5,
		Model:         m,
	}
}

func TestSuDCPathBeatsGroundForUED(t *testing.T) {
	// The §5 claim: in-space processing delivers emergency alerts far
	// faster than waiting for a downlink pass.
	frame := datagen.Default4K.FrameSize(1) // 1 m frame ≈ 2.9 Gbit
	cmp, err := CompareDetectionLatency(frame, DefaultGroundPath(), sudcPathFor(t, apps.UrbanEmergency))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SuDC >= cmp.Ground {
		t.Fatalf("SµDC path %v should beat ground path %v", cmp.SuDC, cmp.Ground)
	}
	if cmp.Speedup < 10 {
		t.Errorf("speedup = %v, want order-of-magnitude", cmp.Speedup)
	}
	// Ground path is dominated by contact wait (12 min) + downlink.
	if cmp.Ground < 12*time.Minute {
		t.Errorf("ground latency %v below the contact wait", cmp.Ground)
	}
	// SµDC path is sub-minute for a 1 m frame over 10G ISLs.
	if cmp.SuDC > time.Minute {
		t.Errorf("SµDC latency %v, want sub-minute", cmp.SuDC)
	}
}

func TestGroundPathDominatedByDownlinkAtFineRes(t *testing.T) {
	// At 10 cm the frame is 286 Gbit: over a 220 Mb/s channel the
	// downlink alone takes ~22 minutes on top of the wait.
	frame := datagen.Default4K.FrameSize(0.1)
	g := DefaultGroundPath()
	lat, err := g.Latency(frame)
	if err != nil {
		t.Fatal(err)
	}
	downlinkOnly := time.Duration(g.DownlinkRate.Transmit(frame) * float64(time.Second))
	if downlinkOnly < 20*time.Minute {
		t.Errorf("10 cm downlink = %v, want > 20 min", downlinkOnly)
	}
	if lat <= downlinkOnly {
		t.Error("total must include the contact wait")
	}
}

func TestSuDCLatencyScalesWithHops(t *testing.T) {
	frame := datagen.Default4K.FrameSize(1)
	near := sudcPathFor(t, apps.UrbanEmergency)
	near.RelayHops = 1
	far := sudcPathFor(t, apps.UrbanEmergency)
	far.RelayHops = 16
	nl, err := near.Latency(frame)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := far.Latency(frame)
	if err != nil {
		t.Fatal(err)
	}
	if fl <= nl {
		t.Errorf("16 hops (%v) should cost more than 1 (%v)", fl, nl)
	}
}

func TestLatencyValidation(t *testing.T) {
	frame := units.DataSize(1e9)
	bad := DefaultGroundPath()
	bad.DownlinkRate = 0
	if _, err := bad.Latency(frame); err == nil {
		t.Error("zero downlink rate accepted")
	}
	s := sudcPathFor(t, apps.UrbanEmergency)
	s.ISL.Capacity = 0
	if _, err := s.Latency(frame); err == nil {
		t.Error("zero ISL capacity accepted")
	}
	s = sudcPathFor(t, apps.UrbanEmergency)
	s.Model = nil
	if _, err := s.Latency(frame); err == nil {
		t.Error("missing model accepted")
	}
	// Zero hops clamp to one.
	s = sudcPathFor(t, apps.UrbanEmergency)
	s.RelayHops = 0
	if _, err := s.Latency(frame); err != nil {
		t.Errorf("zero hops should clamp, got %v", err)
	}
}

func TestHeavyKernelNarrowsTheGap(t *testing.T) {
	// PS inference takes ~8 s per batch on the 3090 — the in-orbit
	// advantage shrinks but survives for heavy kernels.
	frame := datagen.Default4K.FrameSize(1)
	light, err := CompareDetectionLatency(frame, DefaultGroundPath(), sudcPathFor(t, apps.UrbanEmergency))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := CompareDetectionLatency(frame, DefaultGroundPath(), sudcPathFor(t, apps.PanopticSeg))
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Speedup >= light.Speedup {
		t.Errorf("heavy kernel speedup %v should trail light %v", heavy.Speedup, light.Speedup)
	}
	if heavy.SuDC >= heavy.Ground {
		t.Error("even PS should beat the downlink path")
	}
}
