package core

import (
	"math"
	"time"

	"spacedc/internal/isl"
	"spacedc/internal/orbit"
	"spacedc/internal/units"
)

// ClusterPlan is the Fig 11 result for one design point: how many clusters
// (and SµDCs) the constellation needs once both compute and ISL limits are
// honored.
type ClusterPlan struct {
	ComputeSuDCs int // SµDCs required by compute alone (Fig 9)
	ISLClusters  int // clusters required by ISL capacity alone (Table 8)
	Clusters     int // max of the two: what actually must be launched
	Bottleneck   isl.Bottleneck
}

// PlanClusters combines the compute sizing with the ISL capacity analysis
// for a ring or k-list topology.
func PlanClusters(w Workload, s SuDC, linkCap units.DataRate, k int) (ClusterPlan, error) {
	computeSuDCs, err := SuDCsNeeded(w, s)
	if err != nil {
		return ClusterPlan{}, err
	}
	perSat := w.Mission.Frame.DataRate(w.ResolutionM, w.EarlyDiscard)
	islClusters := isl.ClustersForISL(w.Mission.Satellites, linkCap, perSat, k)

	plan := ClusterPlan{
		ComputeSuDCs: computeSuDCs,
		ISLClusters:  islClusters,
	}
	plan.Clusters = computeSuDCs
	if islClusters > plan.Clusters {
		plan.Clusters = islClusters
	}
	// Bottleneck classification per §7: compare satellites-per-SµDC
	// supported by compute (n) vs by ISLs (m).
	n := satsPerSuDC(w, computeSuDCs)
	m := isl.SupportableEOSats(linkCap, perSat, k)
	plan.Bottleneck = isl.Classify(n, m)
	return plan, nil
}

// satsPerSuDC returns how many EO satellites one SµDC's compute can serve.
func satsPerSuDC(w Workload, computeSuDCs int) int {
	if computeSuDCs <= 0 {
		return w.Mission.Satellites
	}
	return int(math.Ceil(float64(w.Mission.Satellites) / float64(computeSuDCs)))
}

// GEOStar is the Fig 15 deployment: three SµDCs in geostationary orbit
// 120° apart, guaranteeing every LEO EO satellite line of sight to at
// least one at all times.
type GEOStar struct {
	SuDCs [3]orbit.Elements
}

// NewGEOStar places the three SµDCs starting at the given east longitude.
func NewGEOStar(lon0Rad float64, epoch time.Time) GEOStar {
	var g GEOStar
	for i := 0; i < 3; i++ {
		g.SuDCs[i] = orbit.Geostationary(lon0Rad+float64(i)*2*math.Pi/3, epoch)
	}
	return g
}

// Propagators returns the three SµDC propagators.
func (g GEOStar) Propagators() []orbit.Propagator {
	out := make([]orbit.Propagator, 3)
	for i := range g.SuDCs {
		out[i] = orbit.J2Propagator{Elements: g.SuDCs[i]}
	}
	return out
}

// CoverageGap returns the longest interval in [start, start+span] during
// which the given LEO satellite sees none of the three SµDCs (0 = the
// Fig 15 guarantee holds), sampling at step.
func (g GEOStar) CoverageGap(leo orbit.Elements, start time.Time, span, step time.Duration) (time.Duration, error) {
	cond := orbit.AnyVisible(orbit.J2Propagator{Elements: leo}, g.Propagators(), orbit.AtmosphereGrazeKm)
	return orbit.CoverageGap(cond, start, span, step)
}

// VerifyContinuousCoverage checks the Fig 15 claim for a whole
// constellation: every satellite must see ≥ 1 SµDC at every sample over
// the span. It returns the worst gap found.
func (g GEOStar) VerifyContinuousCoverage(sats []orbit.Elements, start time.Time, span, step time.Duration) (time.Duration, error) {
	var worst time.Duration
	for _, el := range sats {
		gap, err := g.CoverageGap(el, start, span, step)
		if err != nil {
			return 0, err
		}
		if gap > worst {
			worst = gap
		}
	}
	return worst, nil
}
