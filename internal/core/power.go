package core

import (
	"fmt"
	"math"
	"time"

	"spacedc/internal/orbit"
	"spacedc/internal/units"
)

// Battery sizes the energy storage that carries a SµDC through eclipse
// (§9: LEO SµDCs eclipse every orbit; GEO only around the equinoxes).
type Battery struct {
	// DepthOfDischarge is the usable fraction of capacity per cycle.
	// LEO designs stay shallow (~0.3) because they cycle 15×/day; GEO
	// designs go deep (~0.8) over their ~90 annual cycles.
	DepthOfDischarge float64
	// SpecificEnergyWhKg is pack-level energy density (Li-ion ~150).
	SpecificEnergyWhKg float64
	// RoundTripEfficiency of charge/discharge (~0.9).
	RoundTripEfficiency float64
	// CycleLife is the number of cycles to end of life at the design
	// depth of discharge.
	CycleLife int
}

// LEOBattery is a shallow-cycling LEO pack.
func LEOBattery() Battery {
	return Battery{DepthOfDischarge: 0.3, SpecificEnergyWhKg: 150,
		RoundTripEfficiency: 0.9, CycleLife: 30000}
}

// GEOBattery is a deep-cycling GEO pack.
func GEOBattery() Battery {
	return Battery{DepthOfDischarge: 0.8, SpecificEnergyWhKg: 150,
		RoundTripEfficiency: 0.9, CycleLife: 2000}
}

// Validate checks the battery parameters.
func (b Battery) Validate() error {
	if b.DepthOfDischarge <= 0 || b.DepthOfDischarge > 1 {
		return fmt.Errorf("core: depth of discharge %v outside (0, 1]", b.DepthOfDischarge)
	}
	if b.SpecificEnergyWhKg <= 0 {
		return fmt.Errorf("core: non-positive specific energy %v", b.SpecificEnergyWhKg)
	}
	if b.RoundTripEfficiency <= 0 || b.RoundTripEfficiency > 1 {
		return fmt.Errorf("core: round-trip efficiency %v outside (0, 1]", b.RoundTripEfficiency)
	}
	if b.CycleLife <= 0 {
		return fmt.Errorf("core: non-positive cycle life %d", b.CycleLife)
	}
	return nil
}

// CapacityForEclipse returns the installed capacity needed to carry load
// through an eclipse of the given duration.
func (b Battery) CapacityForEclipse(load units.Power, eclipse time.Duration) (units.Energy, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if eclipse < 0 {
		return 0, fmt.Errorf("core: negative eclipse duration")
	}
	drawn := load.ForDuration(eclipse.Seconds())
	installed := float64(drawn) / (b.DepthOfDischarge * b.RoundTripEfficiency)
	return units.Energy(installed), nil
}

// MassKg returns the pack mass for an installed capacity.
func (b Battery) MassKg(capacity units.Energy) float64 {
	whPerKg := b.SpecificEnergyWhKg
	if whPerKg <= 0 {
		return math.Inf(1)
	}
	wh := float64(capacity) / 3600
	return wh / whPerKg
}

// LifetimeYears returns how long the pack lasts at the given eclipse
// cycles per year.
func (b Battery) LifetimeYears(cyclesPerYear float64) float64 {
	if cyclesPerYear <= 0 {
		return math.Inf(1)
	}
	return float64(b.CycleLife) / cyclesPerYear
}

// EclipseCyclesPerYear estimates the annual eclipse cycle count for an
// orbit: LEO eclipses nearly every revolution; GEO eclipses only during
// the two ~45-day equinox seasons (≈90 cycles/year).
func EclipseCyclesPerYear(el orbit.Elements) float64 {
	if el.SemiMajorKm-orbit.EarthRadiusKm > 20000 {
		return 90
	}
	revsPerYear := 365.25 * 86400 / el.Period().Seconds()
	return revsPerYear
}

// PowerSystem sizes the complete electrical chain for a SµDC at a concrete
// orbit and season.
type PowerSystem struct {
	Load          units.Power
	ArrayPower    units.Power
	BatteryCap    units.Energy
	BatteryMassKg float64
	BatteryYears  float64
}

// SizePowerSystem computes array and battery sizing for the SµDC at its
// orbit using a worst-case eclipse duration for the regime.
func SizePowerSystem(s SuDC, el orbit.Elements, epoch time.Time) (PowerSystem, error) {
	if err := s.Validate(); err != nil {
		return PowerSystem{}, err
	}
	load := s.TotalPower()

	var batt Battery
	var worstEclipse time.Duration
	if s.Placement == GEO {
		batt = GEOBattery()
		worstEclipse = 72 * time.Minute // longest equinox eclipse
	} else {
		batt = LEOBattery()
		// Worst LEO eclipse: the geometric maximum for the altitude.
		frac := math.Asin(orbit.EarthRadiusKm/el.SemiMajorKm) / math.Pi
		worstEclipse = time.Duration(frac * float64(el.Period()))
	}
	capa, err := batt.CapacityForEclipse(load, worstEclipse)
	if err != nil {
		return PowerSystem{}, err
	}
	return PowerSystem{
		Load:          load,
		ArrayPower:    s.SolarArrayPowerAt(el, epoch),
		BatteryCap:    capa,
		BatteryMassKg: batt.MassKg(capa),
		BatteryYears:  batt.LifetimeYears(EclipseCyclesPerYear(el)),
	}, nil
}
