package core_test

import (
	"fmt"

	"spacedc/internal/apps"
	"spacedc/internal/core"
	"spacedc/internal/datagen"
	"spacedc/internal/units"
)

// Example sizes the paper's baseline scenario: how many 4 kW SµDCs does
// flood detection need at 1 m with 95% early discard?
func Example() {
	w := core.Workload{
		App:          apps.FloodDetection,
		Mission:      datagen.Mission{Frame: datagen.Default4K, Satellites: 64},
		ResolutionM:  1,
		EarlyDiscard: 0.95,
	}
	n, err := core.SuDCsNeeded(w, core.Default4kW())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d SµDC(s)\n", n)
	// Output: 1 SµDC(s)
}

func ExamplePlanClusters() {
	w := core.Workload{
		App:          apps.TrafficMonitor,
		Mission:      datagen.Mission{Frame: datagen.Default4K, Satellites: 64},
		ResolutionM:  0.3,
		EarlyDiscard: 0.5,
	}
	plan, err := core.PlanClusters(w, core.Default4kW(), 10*units.Gbps, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("compute needs %d, links force %d clusters (%v)\n",
		plan.ComputeSuDCs, plan.Clusters, plan.Bottleneck)
	// Output: compute needs 2, links force 64 clusters (ISL-bottlenecked)
}

func ExampleHardening_ComputeOverhead() {
	for _, h := range core.Hardenings() {
		fmt.Printf("%v: %.1f×\n", h, h.ComputeOverhead())
	}
	// Output:
	// none: 1.0×
	// software (20%): 1.2×
	// 2x redundancy: 2.0×
	// 3x redundancy: 3.0×
}
