package core

import (
	"math"
	"testing"
	"time"

	"spacedc/internal/apps"
	"spacedc/internal/datagen"
	"spacedc/internal/gpusim"
	"spacedc/internal/isl"
	"spacedc/internal/orbit"
	"spacedc/internal/units"
)

var mission64 = datagen.Mission{Frame: datagen.Default4K, Satellites: 64}

func TestHardeningOverheads(t *testing.T) {
	want := map[Hardening]float64{
		NoHardening: 1, SoftwareHardening: 1.2, DualRedundant: 2, TripleRedundant: 3,
	}
	for h, ov := range want {
		if got := h.ComputeOverhead(); got != ov {
			t.Errorf("%v overhead = %v, want %v", h, got, ov)
		}
	}
	if len(Hardenings()) != 4 {
		t.Error("Fig 16 sweeps 4 hardening strategies")
	}
}

func TestSuDCDefaults(t *testing.T) {
	s := Default4kW()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.ComputeBudget != 4*units.Kilowatt || s.Device.Name != "RTX 3090" {
		t.Errorf("default SµDC = %+v", s)
	}
	// Bus overhead per the paper: up to ~1 kW more on a 4 kW design.
	if ov := s.BusOverheadPower(); ov != 1*units.Kilowatt {
		t.Errorf("bus overhead = %v, want 1 kW", ov)
	}
	if tot := s.TotalPower(); tot != 5*units.Kilowatt {
		t.Errorf("total power = %v, want 5 kW (paper: <5 kW)", tot)
	}
	big := StationClass256kW()
	if big.ComputeBudget != 256*units.Kilowatt {
		t.Error("station class should be 256 kW")
	}
}

func TestSuDCValidate(t *testing.T) {
	bad := Default4kW()
	bad.ComputeBudget = 0
	if bad.Validate() == nil {
		t.Error("zero budget accepted")
	}
	bad = Default4kW()
	bad.Device = gpusim.Device{}
	if bad.Validate() == nil {
		t.Error("missing device accepted")
	}
}

func TestWorkloadValidate(t *testing.T) {
	good := Workload{App: apps.FloodDetection, Mission: mission64, ResolutionM: 1, EarlyDiscard: 0.95}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Workload{
		{App: apps.FloodDetection, Mission: datagen.Mission{Frame: datagen.Default4K}, ResolutionM: 1},
		{App: apps.FloodDetection, Mission: mission64, ResolutionM: 0},
		{App: apps.FloodDetection, Mission: mission64, ResolutionM: 1, EarlyDiscard: 1},
		{App: apps.FloodDetection, Mission: mission64, ResolutionM: 1, EarlyDiscard: -0.1},
	}
	for i, w := range cases {
		if w.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, w)
		}
	}
}

func TestFig9HeadlineOneSuDCAt1m95ED(t *testing.T) {
	// The paper: "only a single 4 kW SµDC is needed to support all but
	// one application at 1 m with 95% early discard" — the exception is
	// Panoptic Segmentation.
	s := Default4kW()
	exceptions := 0
	for _, id := range apps.IDs() {
		w := Workload{App: id, Mission: mission64, ResolutionM: 1, EarlyDiscard: 0.95}
		n, err := SuDCsNeeded(w, s)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if n > 1 {
			exceptions++
			if id != apps.PanopticSeg {
				t.Errorf("%s needs %d SµDCs at 1 m/95%%; paper says only PS exceeds 1", id, n)
			}
		}
	}
	if exceptions != 1 {
		t.Errorf("%d applications exceed one SµDC, want exactly 1 (PS)", exceptions)
	}
}

func TestFig9CoarseResolutionTrivial(t *testing.T) {
	// At 3 m with zero discard a single 4 kW SµDC covers every app except
	// the two heaviest kernels: Aircraft Detection (2) and Panoptic
	// Segmentation (5) — Fig 9's leftmost column.
	s := Default4kW()
	wantMoreThanOne := map[apps.ID]int{apps.AircraftDetect: 2, apps.PanopticSeg: 5}
	for _, id := range apps.IDs() {
		w := Workload{App: id, Mission: mission64, ResolutionM: 3, EarlyDiscard: 0}
		n, err := SuDCsNeeded(w, s)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if want, heavy := wantMoreThanOne[id]; heavy {
			if n != want {
				t.Errorf("%s needs %d SµDCs at 3 m/0%%, want %d", id, n, want)
			}
			continue
		}
		if n > 1 {
			t.Errorf("%s needs %d SµDCs at 3 m/0%%, want 1", id, n)
		}
	}
}

func TestFig9FineResolutionNeedsMany(t *testing.T) {
	// At 10 cm with no discard, heavy DNNs need many 4 kW SµDCs — the
	// paper's "in some cases SµDCs may need to be significantly larger".
	s := Default4kW()
	w := Workload{App: apps.PanopticSeg, Mission: mission64, ResolutionM: 0.1, EarlyDiscard: 0}
	n, err := SuDCsNeeded(w, s)
	if err != nil {
		t.Fatal(err)
	}
	if n < 100 {
		t.Errorf("PS at 10 cm/0%% needs %d SµDCs, want ≫ 100", n)
	}
	// A 256 kW station-class SµDC covers it with ~64× fewer units.
	big, err := SuDCsNeeded(w, StationClass256kW())
	if err != nil {
		t.Fatal(err)
	}
	if big >= n/50 {
		t.Errorf("256 kW SµDC count %d should be ≈64× below 4 kW count %d", big, n)
	}
}

func TestSuDCsNeededMonotonicInDiscard(t *testing.T) {
	s := Default4kW()
	prev := math.MaxInt32
	for _, ed := range []float64{0, 0.5, 0.95, 0.99} {
		w := Workload{App: apps.OilSpill, Mission: mission64, ResolutionM: 0.3, EarlyDiscard: ed}
		n, err := SuDCsNeeded(w, s)
		if err != nil {
			t.Fatal(err)
		}
		if n > prev {
			t.Errorf("more discard (%v) needs more SµDCs (%d > %d)", ed, n, prev)
		}
		prev = n
	}
}

func TestFig14AI100NeedsFewerSuDCs(t *testing.T) {
	// §9: the Cloud AI 100's 18.25× efficiency means far fewer SµDCs at
	// fine resolutions.
	rtx := Default4kW()
	ai := Default4kW()
	ai.Device = gpusim.CloudAI100

	w := Workload{App: apps.AircraftDetect, Mission: mission64, ResolutionM: 0.3, EarlyDiscard: 0.5}
	nRTX, err := SuDCsNeeded(w, rtx)
	if err != nil {
		t.Fatal(err)
	}
	nAI, err := SuDCsNeeded(w, ai)
	if err != nil {
		t.Fatal(err)
	}
	if nAI >= nRTX {
		t.Fatalf("AI 100 (%d) should beat RTX 3090 (%d)", nAI, nRTX)
	}
	ratio := float64(nRTX) / float64(nAI)
	if ratio < 10 {
		t.Errorf("AI 100 advantage = %v×, want ≈18× (ceil effects allowed)", ratio)
	}
}

func TestFig16HardeningImpact(t *testing.T) {
	// Fig 16's pattern: at coarse resolution hardening changes nothing;
	// at fine resolution redundancy multiplies the SµDC count while
	// software hardening barely moves it.
	base := Default4kW()
	sw := base
	sw.Hardening = SoftwareHardening
	dual := base
	dual.Hardening = DualRedundant
	triple := base
	triple.Hardening = TripleRedundant

	coarse := Workload{App: apps.UrbanEmergency, Mission: mission64, ResolutionM: 3, EarlyDiscard: 0.5}
	for _, s := range []SuDC{base, sw, dual, triple} {
		n, err := SuDCsNeeded(coarse, s)
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Errorf("coarse resolution with %v needs %d SµDCs, want 1", s.Hardening, n)
		}
	}

	fine := Workload{App: apps.UrbanEmergency, Mission: mission64, ResolutionM: 0.3, EarlyDiscard: 0.5}
	nBase, _ := SuDCsNeeded(fine, base)
	nSW, _ := SuDCsNeeded(fine, sw)
	nDual, _ := SuDCsNeeded(fine, dual)
	nTriple, _ := SuDCsNeeded(fine, triple)
	if nSW > nBase+int(math.Ceil(0.25*float64(nBase))) {
		t.Errorf("software hardening: %d vs base %d, want ≈20%% more at most", nSW, nBase)
	}
	if nDual < 2*nBase-1 || nTriple < 3*nBase-2 {
		t.Errorf("redundancy scaling wrong: base=%d dual=%d triple=%d", nBase, nDual, nTriple)
	}
}

func TestFig8SatellitePowerShape(t *testing.T) {
	// Fig 8 on the Xavier: at 3 m with no discard, TM fits a picosat
	// budget (<10 W); heavy apps need hundreds of watts at 30 cm
	// ("aircraft detection requires > 400 W of compute per satellite at
	// 30 cm" — paper, at 99% discard it stays high).
	frame := datagen.Default4K
	tm, err := SatellitePowerNeeded(apps.TrafficMonitor, gpusim.JetsonXavier, frame, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tm > 10*units.Watt {
		t.Errorf("TM at 3 m needs %v, want < 10 W (picosat)", tm)
	}
	ad, err := SatellitePowerNeeded(apps.AircraftDetect, gpusim.JetsonXavier, frame, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ad < 400*units.Watt {
		t.Errorf("AD at 30 cm needs %v, want > 400 W (paper)", ad)
	}
	// Early discard scales power down linearly.
	ad99, err := SatellitePowerNeeded(apps.AircraftDetect, gpusim.JetsonXavier, frame, 0.3, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if r := float64(ad) / float64(ad99); math.Abs(r-100) > 1 {
		t.Errorf("99%% discard reduced power by %v×, want 100×", r)
	}
}

func TestFig8PSUnsupportedOnXavier(t *testing.T) {
	_, err := SatellitePowerNeeded(apps.PanopticSeg, gpusim.JetsonXavier, datagen.Default4K, 1, 0)
	if err == nil {
		t.Error("PS on Xavier should fail (Table 6: could not be mapped)")
	}
}

func TestSupportedOnBudget(t *testing.T) {
	frame := datagen.Default4K
	// A cubesat (30 W) runs APP at 3 m with some discard.
	ok, err := SupportedOnBudget(apps.AirPollution, gpusim.JetsonXavier, frame, 3, 0.5, 30*units.Watt)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("APP at 3 m/50% should fit a cubesat")
	}
	// But not OSM at 10 cm.
	ok, err = SupportedOnBudget(apps.OilSpill, gpusim.JetsonXavier, frame, 0.1, 0, 30*units.Watt)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("OSM at 10 cm should not fit a cubesat")
	}
}

func TestSweepSuDCsShape(t *testing.T) {
	cells := SweepSuDCs(mission64, Default4kW())
	if len(cells) != 10*4*4 {
		t.Fatalf("sweep size %d, want 160", len(cells))
	}
	for _, c := range cells {
		if c.Err != nil {
			t.Errorf("%s @ %v m / %v: %v", c.App, c.ResolutionM, c.EarlyDiscard, c.Err)
		}
		if c.SuDCs < 1 {
			t.Errorf("%s @ %v m: %d SµDCs", c.App, c.ResolutionM, c.SuDCs)
		}
	}
}

func TestSupportedByOneSuDCMajority(t *testing.T) {
	// Paper abstract: "one 4 kW SµDC can support the computation need of
	// a majority of applications, especially … with early discard."
	n, err := SupportedByOneSuDC(mission64, Default4kW(), 1, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if n < 6 {
		t.Errorf("one SµDC supports %d/10 apps at 1 m/95%%, want a majority", n)
	}
}

func TestPlanClustersISLBottleneck(t *testing.T) {
	// Lightweight app (TM) at 30 cm: compute needs few SµDCs but a
	// 1 Gb/s ring cannot even carry one satellite's raw stream —
	// ISL-bottlenecked (Fig 11's left panel behavior).
	w := Workload{App: apps.TrafficMonitor, Mission: mission64, ResolutionM: 0.3, EarlyDiscard: 0.5}
	plan, err := PlanClusters(w, Default4kW(), 1*units.Gbps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bottleneck != isl.ISLBound {
		t.Errorf("TM at 30 cm on 1 Gb/s should be ISL-bottlenecked: %+v", plan)
	}
	if plan.Clusters < plan.ComputeSuDCs {
		t.Error("clusters must cover compute need")
	}

	// With 100 Gb/s links at 3 m the bottleneck disappears.
	w3 := Workload{App: apps.TrafficMonitor, Mission: mission64, ResolutionM: 3, EarlyDiscard: 0.5}
	plan3, err := PlanClusters(w3, Default4kW(), 100*units.Gbps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan3.Bottleneck != isl.ComputeBound {
		t.Errorf("TM at 3 m on 100 Gb/s should be compute-bound: %+v", plan3)
	}
	if plan3.Clusters != plan3.ComputeSuDCs {
		t.Error("unbottlenecked cluster count should equal compute count")
	}
}

func TestHighPowerSuDCsMoreLikelyISLBottlenecked(t *testing.T) {
	// §7: "high power SµDCs are more likely to be ISL-bottlenecked than
	// low power SµDCs."
	w := Workload{App: apps.FloodDetection, Mission: mission64, ResolutionM: 1, EarlyDiscard: 0.5}
	small, err := PlanClusters(w, Default4kW(), 10*units.Gbps, 2)
	if err != nil {
		t.Fatal(err)
	}
	big, err := PlanClusters(w, StationClass256kW(), 10*units.Gbps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if big.Bottleneck != isl.ISLBound {
		t.Errorf("256 kW SµDC should be ISL-bottlenecked: %+v", big)
	}
	// The big SµDC needs fewer compute units but at least as many clusters.
	if big.ComputeSuDCs >= small.ComputeSuDCs && small.ComputeSuDCs > 1 {
		t.Errorf("256 kW should need fewer compute SµDCs: %d vs %d", big.ComputeSuDCs, small.ComputeSuDCs)
	}
	if big.Clusters < big.ComputeSuDCs {
		t.Error("cluster count must cover compute")
	}
}

func TestGEOStarContinuousCoverage(t *testing.T) {
	// Fig 15: three GEO SµDCs 120° apart cover every LEO satellite at all
	// times. Verified by propagating a 64-sat ring for a day.
	epoch := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	star := NewGEOStar(0, epoch)
	var sats []orbit.Elements
	for i := 0; i < 8; i++ { // every 8th satellite of the 64-ring
		sats = append(sats, orbit.CircularLEO(550, 53*math.Pi/180, 0, float64(i)*math.Pi/4, epoch))
	}
	worst, err := star.VerifyContinuousCoverage(sats, epoch, 24*time.Hour, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0 {
		t.Errorf("worst coverage gap = %v, want 0 (Fig 15 guarantee)", worst)
	}
}

func TestPlacementProperties(t *testing.T) {
	if !LEOInPlane.StaticTopology() {
		t.Error("in-plane placement should allow static topology")
	}
	if LEOHigher.StaticTopology() || GEO.StaticTopology() {
		t.Error("drifting placements cannot keep optical ISLs pointed statically")
	}
	if !GEO.NeedsOuterBeltHardening() || LEOInPlane.NeedsOuterBeltHardening() {
		t.Error("outer-belt hardening flags wrong")
	}
	if GEO.TypicalEclipseFraction() >= LEOInPlane.TypicalEclipseFraction() {
		t.Error("GEO eclipses far less than LEO")
	}
}

func TestSolarArraySizing(t *testing.T) {
	leo := Default4kW()
	geo := Default4kW()
	geo.Placement = GEO
	// LEO: 5 kW load / (1 - 1/3) = 7.5 kW array. GEO: ≈5.05 kW.
	if got := leo.SolarArrayPower(); math.Abs(float64(got)-7500) > 1 {
		t.Errorf("LEO array = %v, want 7.5 kW", got)
	}
	if got := geo.SolarArrayPower(); float64(got) > 5200 {
		t.Errorf("GEO array = %v, want ≈5.05 kW", got)
	}
	// Exact-orbit version: a GEO SµDC at a solstice needs almost no
	// eclipse margin.
	solstice := time.Date(2026, 6, 21, 0, 0, 0, 0, time.UTC)
	el := orbit.Geostationary(0, solstice)
	exact := geo.SolarArrayPowerAt(el, solstice)
	if math.Abs(float64(exact)-float64(geo.TotalPower())) > 100 {
		t.Errorf("GEO solstice array = %v, want ≈%v", exact, geo.TotalPower())
	}
}

func TestTable9Shape(t *testing.T) {
	rows := Table9()
	if len(rows) != 4 {
		t.Fatalf("Table 9 has %d strategies, want 4", len(rows))
	}
	var sudc *Strategy
	for i := range rows {
		if rows[i].Name == "SµDCs" {
			sudc = &rows[i]
		}
	}
	if sudc == nil {
		t.Fatal("SµDCs strategy missing")
	}
	// Only SµDCs both scale to future resolutions and adapt to mission
	// changes; only SµDCs require ISLs.
	for _, r := range rows {
		if r.Name == "SµDCs" {
			if !r.ScalesToFutureRes || !r.AdaptiveToMission || !r.RequiresISLs {
				t.Errorf("SµDC row wrong: %+v", r)
			}
			continue
		}
		if r.AdaptiveToMission {
			t.Errorf("%s should not be adaptive", r.Name)
		}
		if r.RequiresISLs {
			t.Errorf("%s should not require ISLs", r.Name)
		}
	}
}

func TestCostModelBreakEven(t *testing.T) {
	cm := DefaultCostModel()
	capex := cm.SuDCCapex(1)
	// $20M build + 2000 kg × $2700 = $25.4M.
	if math.Abs(float64(capex)-25.4e6) > 1e5 {
		t.Errorf("capex = %v, want ≈$25.4M", capex)
	}
	// The paper: at 10 cm / 99% ED downlink costs > $1000/min →
	// > $1.44M/day → breakeven in under a month.
	days := cm.BreakEvenDays(1, units.Money(1000*60*24))
	if days > 30 {
		t.Errorf("breakeven = %v days, want < 30 at $1000/min", days)
	}
	if !math.IsInf(cm.BreakEvenDays(1, 0), 1) {
		t.Error("free downlink should never break even")
	}
}

func TestPlacementAndHardeningStrings(t *testing.T) {
	if LEOInPlane.String() == "" || GEO.String() == "" || LEOHigher.String() == "" {
		t.Error("placement names empty")
	}
	if Placement(9).String() != "unknown" || Hardening(9).String() != "unknown" {
		t.Error("unknown enums should say unknown")
	}
	for _, h := range Hardenings() {
		if h.String() == "" {
			t.Error("hardening name empty")
		}
	}
}
