package core

import (
	"math"
	"testing"
	"time"

	"spacedc/internal/orbit"
	"spacedc/internal/units"
)

func TestBatteryValidate(t *testing.T) {
	for _, b := range []Battery{LEOBattery(), GEOBattery()} {
		if err := b.Validate(); err != nil {
			t.Errorf("%+v invalid: %v", b, err)
		}
	}
	bad := LEOBattery()
	bad.DepthOfDischarge = 0
	if bad.Validate() == nil {
		t.Error("zero DoD accepted")
	}
	bad = LEOBattery()
	bad.RoundTripEfficiency = 1.2
	if bad.Validate() == nil {
		t.Error("efficiency > 1 accepted")
	}
	bad = LEOBattery()
	bad.CycleLife = 0
	if bad.Validate() == nil {
		t.Error("zero cycle life accepted")
	}
	bad = LEOBattery()
	bad.SpecificEnergyWhKg = -5
	if bad.Validate() == nil {
		t.Error("negative specific energy accepted")
	}
}

func TestBatteryCapacitySizing(t *testing.T) {
	b := LEOBattery()
	// 5 kW through a 36-minute eclipse: 3 kWh drawn → 3/(0.3·0.9) ≈
	// 11.1 kWh installed ≈ 74 kg at 150 Wh/kg.
	capa, err := b.CapacityForEclipse(5*units.Kilowatt, 36*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	wantWh := 5000.0 * 0.6 / (0.3 * 0.9)
	if gotWh := float64(capa) / 3600; math.Abs(gotWh-wantWh)/wantWh > 1e-9 {
		t.Errorf("capacity = %v Wh, want %v", gotWh, wantWh)
	}
	mass := b.MassKg(capa)
	if math.Abs(mass-wantWh/150)/mass > 1e-9 {
		t.Errorf("mass = %v kg", mass)
	}
	if _, err := b.CapacityForEclipse(units.Kilowatt, -time.Minute); err == nil {
		t.Error("negative eclipse accepted")
	}
}

func TestEclipseCyclesPerYear(t *testing.T) {
	epoch := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	leo := orbit.CircularLEO(550, 1, 0, 0, epoch)
	geo := orbit.Geostationary(0, epoch)
	leoCycles := EclipseCyclesPerYear(leo)
	geoCycles := EclipseCyclesPerYear(geo)
	// LEO: ~15 revs/day × 365 ≈ 5500.
	if leoCycles < 5000 || leoCycles > 6000 {
		t.Errorf("LEO cycles/year = %v, want ≈5500", leoCycles)
	}
	if geoCycles != 90 {
		t.Errorf("GEO cycles/year = %v, want 90 (equinox seasons)", geoCycles)
	}
}

func TestBatteryLifetimeLEOvsGEO(t *testing.T) {
	// Shallow LEO pack at ~5500 cycles/year: ≈5.5 years. Deep GEO pack at
	// 90 cycles/year: ≈22 years — why GEO missions run long (§9).
	leoYears := LEOBattery().LifetimeYears(5500)
	geoYears := GEOBattery().LifetimeYears(90)
	if leoYears < 3 || leoYears > 8 {
		t.Errorf("LEO battery life = %v yr", leoYears)
	}
	if geoYears < 15 {
		t.Errorf("GEO battery life = %v yr, want > 15", geoYears)
	}
	if !math.IsInf(LEOBattery().LifetimeYears(0), 1) {
		t.Error("no cycles should mean unbounded life")
	}
}

func TestSizePowerSystemLEOvsGEO(t *testing.T) {
	epoch := time.Date(2026, 3, 20, 0, 0, 0, 0, time.UTC)

	leoSuDC := Default4kW()
	leoOrbit := orbit.CircularLEO(550, 0.9, 0, 0, epoch)
	leoSys, err := SizePowerSystem(leoSuDC, leoOrbit, epoch)
	if err != nil {
		t.Fatal(err)
	}

	geoSuDC := Default4kW()
	geoSuDC.Placement = GEO
	geoOrbit := orbit.Geostationary(0, epoch)
	geoSys, err := SizePowerSystem(geoSuDC, geoOrbit, epoch)
	if err != nil {
		t.Fatal(err)
	}

	// §9: LEO SµDCs must carry more power generation than GEO for the
	// same load.
	if leoSys.ArrayPower <= geoSys.ArrayPower {
		t.Errorf("LEO array %v should exceed GEO array %v", leoSys.ArrayPower, geoSys.ArrayPower)
	}
	// Both carry the same 5 kW load.
	if leoSys.Load != 5*units.Kilowatt || geoSys.Load != 5*units.Kilowatt {
		t.Errorf("loads = %v / %v, want 5 kW", leoSys.Load, geoSys.Load)
	}
	// LEO batteries cycle hard and die young relative to GEO.
	if leoSys.BatteryYears >= geoSys.BatteryYears {
		t.Errorf("LEO battery life %v should trail GEO %v", leoSys.BatteryYears, geoSys.BatteryYears)
	}
	if leoSys.BatteryMassKg <= 0 || geoSys.BatteryMassKg <= 0 {
		t.Error("battery masses must be positive")
	}
	// Invalid SµDC propagates.
	bad := Default4kW()
	bad.ComputeBudget = 0
	if _, err := SizePowerSystem(bad, leoOrbit, epoch); err == nil {
		t.Error("invalid SµDC accepted")
	}
}

func TestDisaggregatedValidate(t *testing.T) {
	if err := DefaultDisaggregated().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultDisaggregated()
	bad.Modules = nil
	if bad.Validate() == nil {
		t.Error("empty module list accepted")
	}
	bad = DefaultDisaggregated()
	bad.WPTEfficiency = 0
	if bad.Validate() == nil {
		t.Error("zero WPT efficiency accepted")
	}
	bad = DefaultDisaggregated()
	bad.Modules[0].MassKg = 0
	if bad.Validate() == nil {
		t.Error("zero module mass accepted")
	}
	bad = DefaultDisaggregated()
	bad.Modules[0].ReplacementYears = -1
	if bad.Validate() == nil {
		t.Error("negative replacement period accepted")
	}
	bad = DefaultDisaggregated()
	bad.GeneratedPower = 0
	if bad.Validate() == nil {
		t.Error("zero generation accepted")
	}
}

func TestDisaggregatedPowerDelivery(t *testing.T) {
	d := DefaultDisaggregated()
	// 5.9 kW × 0.85 ≈ 5.0 kW delivered — the monolithic total power.
	if got := d.DeliveredPower(); math.Abs(float64(got)-5015) > 30 {
		t.Errorf("delivered = %v, want ≈5 kW", got)
	}
	if d.TotalMassKg() != 800+900+500 {
		t.Errorf("total mass = %v", d.TotalMassKg())
	}
}

func TestDisaggregatedLifecycleEconomics(t *testing.T) {
	// Over a 15-year mission with 4-year compute refreshes, relaunching
	// only the compute module beats relaunching whole monolithic SµDCs —
	// §9's case for disaggregating large/long-lived SµDCs.
	cm := DefaultCostModel()
	d := DefaultDisaggregated()
	const mission = 15.0

	disagg := d.LifecycleCost(mission, cm.LaunchPerKg)
	mono := MonolithicLifecycleCost(cm, mission, 4)
	if disagg >= mono {
		t.Errorf("disaggregated %v should beat monolithic %v over %v years", disagg, mono, mission)
	}

	// For a short mission with no refresh, the monolithic design's lower
	// total mass/complexity wins (§9: disaggregation costs more up
	// front).
	shortD := d.LifecycleCost(3, cm.LaunchPerKg)
	shortM := MonolithicLifecycleCost(cm, 3, 4)
	if shortD >= shortM {
		t.Logf("short-mission costs: disaggregated %v vs monolithic %v", shortD, shortM)
	} else {
		t.Errorf("3-year mission: disaggregated %v should not beat monolithic %v", shortD, shortM)
	}
}

func TestMonolithicLifecycleNoRefresh(t *testing.T) {
	cm := DefaultCostModel()
	once := MonolithicLifecycleCost(cm, 10, 0)
	if once != cm.SuDCCapex(1) {
		t.Errorf("no-refresh cost %v should equal single capex %v", once, cm.SuDCCapex(1))
	}
}
