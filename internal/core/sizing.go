package core

import (
	"fmt"
	"math"

	"spacedc/internal/apps"
	"spacedc/internal/datagen"
	"spacedc/internal/gpusim"
	"spacedc/internal/units"
)

// Workload is a constellation-wide processing demand.
type Workload struct {
	App          apps.ID
	Mission      datagen.Mission
	ResolutionM  float64
	EarlyDiscard float64
}

// Validate checks the workload.
func (w Workload) Validate() error {
	if err := w.Mission.Frame.Validate(); err != nil {
		return err
	}
	if w.Mission.Satellites <= 0 {
		return fmt.Errorf("core: non-positive satellite count %d", w.Mission.Satellites)
	}
	if w.ResolutionM <= 0 {
		return fmt.Errorf("core: non-positive resolution %v", w.ResolutionM)
	}
	if w.EarlyDiscard < 0 || w.EarlyDiscard >= 1 {
		return fmt.Errorf("core: early discard %v outside [0, 1)", w.EarlyDiscard)
	}
	return nil
}

// PixelRate returns the constellation's aggregate pixels/s after discard.
func (w Workload) PixelRate() float64 {
	return w.Mission.ConstellationPixelRate(w.ResolutionM, w.EarlyDiscard)
}

// SuDCsNeeded returns the number of SµDCs of the given design required to
// process the workload in real time — the Fig 9 (RTX 3090), Fig 14
// (Cloud AI 100), and Fig 16 (hardening) computation.
func SuDCsNeeded(w Workload, s SuDC) (int, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	model, err := gpusim.NewModel(w.App, s.Device)
	if err != nil {
		return 0, err
	}
	perSuDC := model.PixelRateForPower(s.EffectiveComputeBudget())
	if perSuDC <= 0 {
		return 0, fmt.Errorf("core: SµDC processes no pixels")
	}
	need := w.PixelRate() / perSuDC
	return int(math.Ceil(need)), nil
}

// SatellitePowerNeeded returns the on-board compute power one EO satellite
// must carry to process its own data stream with the given device — the
// Fig 8 computation (the paper uses the Jetson AGX Xavier).
func SatellitePowerNeeded(app apps.ID, dev gpusim.Device, frame datagen.FrameSpec, resM, earlyDiscard float64) (units.Power, error) {
	model, err := gpusim.NewModel(app, dev)
	if err != nil {
		return 0, err
	}
	pixelRate := frame.PixelRate(resM, earlyDiscard)
	return model.PowerForPixelRate(pixelRate), nil
}

// SupportedOnBudget reports whether an application fits a satellite's
// power budget at the given resolution and discard rate.
func SupportedOnBudget(app apps.ID, dev gpusim.Device, frame datagen.FrameSpec, resM, earlyDiscard float64, budget units.Power) (bool, error) {
	need, err := SatellitePowerNeeded(app, dev, frame, resM, earlyDiscard)
	if err != nil {
		return false, err
	}
	return need <= budget, nil
}

// SweepCell is one (resolution, discard) cell of a Fig 9/14/16-style sweep
// for one application.
type SweepCell struct {
	App          apps.ID
	ResolutionM  float64
	EarlyDiscard float64
	SuDCs        int
	// Err is non-nil when the app cannot run on the device at all.
	Err error
}

// SweepSuDCs runs the full paper sweep (4 resolutions × 4 discard rates ×
// all apps) for one SµDC design over one mission.
func SweepSuDCs(mission datagen.Mission, s SuDC) []SweepCell {
	var out []SweepCell
	for _, id := range apps.IDs() {
		for _, res := range datagen.StandardResolutions {
			for _, ed := range datagen.StandardDiscardRates {
				w := Workload{App: id, Mission: mission, ResolutionM: res, EarlyDiscard: ed}
				n, err := SuDCsNeeded(w, s)
				out = append(out, SweepCell{App: id, ResolutionM: res, EarlyDiscard: ed, SuDCs: n, Err: err})
			}
		}
	}
	return out
}

// SupportedByOneSuDC counts how many of the ten applications a single SµDC
// of design s can fully support at the given resolution and discard rate —
// the paper's headline "one 4 kW SµDC supports a majority of applications".
func SupportedByOneSuDC(mission datagen.Mission, s SuDC, resM, earlyDiscard float64) (int, error) {
	count := 0
	for _, id := range apps.IDs() {
		w := Workload{App: id, Mission: mission, ResolutionM: resM, EarlyDiscard: earlyDiscard}
		n, err := SuDCsNeeded(w, s)
		if err != nil {
			if w.Validate() != nil || s.Validate() != nil {
				return 0, err
			}
			continue // app unsupported on the device: doesn't count
		}
		if n <= 1 {
			count++
		}
	}
	return count, nil
}
