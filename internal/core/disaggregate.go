package core

import (
	"fmt"

	"spacedc/internal/units"
)

// Disaggregation models the §9 alternative to a monolithic SµDC: several
// free-flying modules — compute, power generation, radiators — forming one
// logical satellite connected by short-range ISLs and wireless power
// transfer. Compute hardware is outdated in ~4 years while solar arrays
// last decades, so disaggregation lets operators replace just the compute
// module, at the price of extra bus mass and WPT losses.

// Module is one physical element of a disaggregated SµDC.
type Module struct {
	Name string
	// MassKg is the module's launch mass including its own bus.
	MassKg float64
	// ReplacementYears is how often the module must be replaced (0 =
	// lasts the mission).
	ReplacementYears float64
	// BuildCost of one unit.
	BuildCost units.Money
}

// DisaggregatedSuDC is a SµDC split into modules.
type DisaggregatedSuDC struct {
	Modules []Module
	// WPTEfficiency is the wireless power transfer efficiency from the
	// power module to the compute modules (retrodirective arrays reach
	// high efficiency at short range).
	WPTEfficiency float64
	// GeneratedPower is the power module's output.
	GeneratedPower units.Power
}

// DefaultDisaggregated splits the paper's 4 kW SµDC three ways: a compute
// module on a 4-year refresh (commodity hardware lifetime), and power and
// thermal modules lasting the full mission.
func DefaultDisaggregated() DisaggregatedSuDC {
	return DisaggregatedSuDC{
		Modules: []Module{
			{Name: "compute", MassKg: 800, ReplacementYears: 4, BuildCost: 12 * units.Million},
			{Name: "power", MassKg: 900, ReplacementYears: 0, BuildCost: 6 * units.Million},
			{Name: "thermal", MassKg: 500, ReplacementYears: 0, BuildCost: 4 * units.Million},
		},
		WPTEfficiency:  0.85,
		GeneratedPower: 5.9 * units.Kilowatt, // 5 kW delivered / 0.85
	}
}

// Validate checks the design.
func (d DisaggregatedSuDC) Validate() error {
	if len(d.Modules) == 0 {
		return fmt.Errorf("core: disaggregated SµDC needs modules")
	}
	if d.WPTEfficiency <= 0 || d.WPTEfficiency > 1 {
		return fmt.Errorf("core: WPT efficiency %v outside (0, 1]", d.WPTEfficiency)
	}
	if d.GeneratedPower <= 0 {
		return fmt.Errorf("core: non-positive generated power")
	}
	for _, m := range d.Modules {
		if m.MassKg <= 0 {
			return fmt.Errorf("core: module %q has non-positive mass", m.Name)
		}
		if m.ReplacementYears < 0 {
			return fmt.Errorf("core: module %q has negative replacement period", m.Name)
		}
	}
	return nil
}

// DeliveredPower returns the power reaching the compute module after WPT
// losses.
func (d DisaggregatedSuDC) DeliveredPower() units.Power {
	return units.Power(float64(d.GeneratedPower) * d.WPTEfficiency)
}

// TotalMassKg sums module masses.
func (d DisaggregatedSuDC) TotalMassKg() float64 {
	total := 0.0
	for _, m := range d.Modules {
		total += m.MassKg
	}
	return total
}

// LifecycleCost returns the total cost over missionYears: initial build
// and launch of every module plus replacement launches for modules that
// wear out. Replacing a module relaunches only that module — the
// disaggregation advantage.
func (d DisaggregatedSuDC) LifecycleCost(missionYears float64, launchPerKg units.Money) units.Money {
	total := 0.0
	for _, m := range d.Modules {
		unit := float64(m.BuildCost) + float64(launchPerKg)*m.MassKg
		launches := 1.0
		if m.ReplacementYears > 0 {
			launches += float64(int(missionYears / m.ReplacementYears))
		}
		total += unit * launches
	}
	return units.Money(total)
}

// MonolithicLifecycleCost is the comparison point: one integrated SµDC
// whose whole stack must be relaunched when the compute hardware ages out.
func MonolithicLifecycleCost(cm CostModel, missionYears, computeRefreshYears float64) units.Money {
	unit := float64(cm.SuDCCapex(1))
	launches := 1.0
	if computeRefreshYears > 0 {
		launches += float64(int(missionYears / computeRefreshYears))
	}
	return units.Money(unit * launches)
}
