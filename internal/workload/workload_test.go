package workload

import (
	"math"
	"testing"
)

// baseSpec is a fast-running spec: an hour of demand at 50 req/s with a
// strong diurnal swing compressed into a 1-hour "day".
func baseSpec() Spec {
	return Spec{
		BaseRatePerSec:   50,
		DiurnalAmp:       0.5,
		DiurnalPeriodSec: 3600,
		DurationSec:      3600,
		Seed:             42,
	}
}

func collect(t *testing.T, spec Spec) []Request {
	t.Helper()
	g, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for {
		r, ok := g.Next()
		if !ok {
			return reqs
		}
		reqs = append(reqs, r)
	}
}

func TestGeneratorValidation(t *testing.T) {
	cases := map[string]func(*Spec){
		"zero rate":        func(s *Spec) { s.BaseRatePerSec = 0 },
		"amp ≥ 1":          func(s *Spec) { s.DiurnalAmp = 1 },
		"negative amp":     func(s *Spec) { s.DiurnalAmp = -0.1 },
		"zero duration":    func(s *Spec) { s.DurationSec = 0 },
		"burst no peak":    func(s *Spec) { s.BurstRatePerSec = 1e-3; s.BurstPeakPerSec = 0 },
		"onset past end":   func(s *Spec) { s.BurstOnsets = []float64{1e6}; s.BurstPeakPerSec = 10 },
		"negative onset":   func(s *Spec) { s.BurstOnsets = []float64{-1}; s.BurstPeakPerSec = 10 },
		"shares not unity": func(s *Spec) { s.Classes = []Class{{Name: "a", Share: 0.5, DeadlineSec: 1, Bits: 1, Frames: 1}} },
		"zero deadline": func(s *Spec) {
			s.Classes = []Class{{Name: "a", Share: 1, DeadlineSec: 0, Bits: 1, Frames: 1}}
		},
		"zero frames": func(s *Spec) {
			s.Classes = []Class{{Name: "a", Share: 1, DeadlineSec: 1, Bits: 1, Frames: 0}}
		},
	}
	for name, mutate := range cases {
		s := baseSpec()
		mutate(&s)
		if _, err := New(s); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := New(baseSpec()); err != nil {
		t.Errorf("base spec rejected: %v", err)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	s := baseSpec()
	s.BurstRatePerSec = 1.0 / 900
	s.BurstPeakPerSec = 100
	a := collect(t, s)
	b := collect(t, s)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	s.Seed = 43
	c := collect(t, s)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical streams")
		}
	}
}

func TestGeneratorOrderedAndBounded(t *testing.T) {
	reqs := collect(t, baseSpec())
	last := 0.0
	for i, r := range reqs {
		if r.TSec < last {
			t.Fatalf("request %d out of order: %v after %v", i, r.TSec, last)
		}
		if r.TSec >= baseSpec().DurationSec {
			t.Fatalf("request %d beyond duration: %v", i, r.TSec)
		}
		if r.Class < 0 || r.Class >= len(DefaultClasses()) {
			t.Fatalf("request %d class %d out of range", i, r.Class)
		}
		last = r.TSec
	}
	// Mean count tracks ∫rate dt = base·duration (sin integrates to zero
	// over a full period): 180k expected, Poisson σ ≈ 425.
	want := baseSpec().BaseRatePerSec * baseSpec().DurationSec
	if got := float64(len(reqs)); math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Errorf("generated %v requests, want ≈ %v", got, want)
	}
}

func TestGeneratorDiurnalShape(t *testing.T) {
	s := baseSpec()
	reqs := collect(t, s)
	// Peak quarter-period around t=900 (sin=+1) vs trough around t=2700
	// (sin=-1): the count ratio must track (1+amp)/(1-amp) = 3.
	var peak, trough int
	for _, r := range reqs {
		switch {
		case r.TSec >= 450 && r.TSec < 1350:
			peak++
		case r.TSec >= 2250 && r.TSec < 3150:
			trough++
		}
	}
	ratio := float64(peak) / float64(trough)
	// Quarter-window averaging softens the extremes: E[ratio] ≈ 2.3.
	if ratio < 1.8 || ratio > 3.0 {
		t.Errorf("peak/trough ratio %v, want ≈ 2.3 (diurnal modulation missing?)", ratio)
	}
}

func TestGeneratorBurstSurge(t *testing.T) {
	s := baseSpec()
	s.DiurnalAmp = 0
	s.BurstOnsets = []float64{1800}
	s.BurstPeakPerSec = 200
	s.BurstDecaySec = 120
	g, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if r := g.Rate(1799); math.Abs(r-50) > 1e-9 {
		t.Errorf("pre-burst rate %v, want 50", r)
	}
	if r := g.Rate(1800); math.Abs(r-250) > 1e-9 {
		t.Errorf("onset rate %v, want 250", r)
	}
	if r := g.Rate(1800 + 120); math.Abs(r-(50+200/math.E)) > 1e-9 {
		t.Errorf("one-τ rate %v, want %v", r, 50+200/math.E)
	}
	if g.EnvelopeRate() < 250 {
		t.Errorf("envelope %v below true peak 250", g.EnvelopeRate())
	}
	// The stream must realize the surge: arrivals in the burst's first τ
	// vs the same-width window before it.
	var before, during int
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		switch {
		case r.TSec >= 1680 && r.TSec < 1800:
			before++
		case r.TSec >= 1800 && r.TSec < 1920:
			during++
		}
	}
	if during < 2*before {
		t.Errorf("burst window saw %d arrivals vs %d before — surge not realized", during, before)
	}
}

func TestGeneratorClassMix(t *testing.T) {
	reqs := collect(t, baseSpec())
	counts := make([]int, len(DefaultClasses()))
	for _, r := range reqs {
		counts[r.Class]++
	}
	for i, c := range DefaultClasses() {
		got := float64(counts[i]) / float64(len(reqs))
		if math.Abs(got-c.Share) > 0.02 {
			t.Errorf("class %s share %v, want %v", c.Name, got, c.Share)
		}
	}
}

func TestSpecMeans(t *testing.T) {
	var s Spec
	wantBits := 0.15*20e6 + 0.35*50e6 + 0.50*100e6
	if got := s.MeanBits(); math.Abs(got-wantBits) > 1 {
		t.Errorf("MeanBits = %v, want %v", got, wantBits)
	}
	wantFrames := 0.15*1 + 0.35*2 + 0.50*4
	if got := s.MeanFrames(); math.Abs(got-wantFrames) > 1e-9 {
		t.Errorf("MeanFrames = %v, want %v", got, wantFrames)
	}
}

// TestGeneratorAllocsFlat is the workload twin of netsim's
// TestNetsimRunAllocsFlat: 10× the base rate (10× the requests) must not
// allocate meaningfully more — the stream is O(bursts) state, never
// O(requests).
func TestGeneratorAllocsFlat(t *testing.T) {
	drain := func(rate float64) func() {
		s := baseSpec()
		s.DurationSec = 600
		s.BaseRatePerSec = rate
		s.BurstOnsets = []float64{100, 300}
		s.BurstPeakPerSec = rate
		s.BurstDecaySec = 60
		return func() {
			g, err := New(s)
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for {
				if _, ok := g.Next(); !ok {
					break
				}
				n++
			}
			if n == 0 {
				t.Fatal("no requests generated")
			}
		}
	}
	low := testing.AllocsPerRun(3, drain(50))
	high := testing.AllocsPerRun(3, drain(500))
	if high > low*1.5+16 {
		t.Errorf("10× rate cost %v allocs vs %v: generator is not memory-flat", high, low)
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	s := baseSpec()
	s.DurationSec = math.Inf(1)
	s.BurstRatePerSec = 1.0 / 600
	s.BurstPeakPerSec = 100
	// Infinite duration fails validation; bound it far beyond b.N instead.
	s.DurationSec = 1e12
	g, err := New(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("stream ended")
		}
	}
}
