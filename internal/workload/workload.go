// Package workload generates the tasking demand a space-microdatacenter
// constellation serves: a deterministic stream of EO tasking requests from
// a user population of millions, shaped by a diurnal sinusoid (people task
// satellites while awake) plus disaster-response surges that arrive as
// Poisson bursts and decay exponentially while responders work the event.
//
// The generator is a non-homogeneous Poisson process sampled by thinning,
// streamed one request at a time: memory is O(bursts), never O(requests),
// so a run can push millions of requests through the QoS layer without
// materializing them. Every draw comes from one seeded rand.Rand, so a
// spec (including its seed) fully determines the stream — bit-identical
// across runs and worker counts, the same contract the simulators keep.
//
// Each request carries a priority class drawn from the spec's mix; the
// class fixes its deadline (the per-class latency SLO), its network size
// in bits (imagery to move), and its compute size in frames (inference to
// run). internal/qos consumes the stream through admission control into
// the netsim/sched-derived service pipeline.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Defaults applied by Spec.withDefaults.
const (
	DefaultDiurnalPeriodSec = 86400
	DefaultBurstDecaySec    = 300
)

// Class is one priority tier of tasking demand. Lower Priority numbers are
// more important; the qos layer serves classes in strict priority order.
type Class struct {
	// Name labels the class in reports ("tasking", "best-effort", …).
	Name string
	// Share is the fraction of requests in this class; shares must sum
	// to 1 within a small tolerance.
	Share float64
	// DeadlineSec is the end-to-end latency SLO: a request completing
	// later has missed its deadline (and deadline-aware shedding drops
	// requests that cannot make it).
	DeadlineSec float64
	// Bits is the network payload per request (imagery segments moved
	// across the constellation).
	Bits float64
	// Frames is the compute size per request (EO frames to run inference
	// on at the SµDC).
	Frames int
}

// Request is one tasking request on the stream.
type Request struct {
	// TSec is the arrival time in simulation seconds.
	TSec float64
	// Class indexes Spec.Classes.
	Class int
	// Attempt counts delivery attempts; the generator always emits 0 and
	// the qos retry layer increments it on re-submission.
	Attempt int
}

// Spec parameterizes the demand stream.
type Spec struct {
	// BaseRatePerSec is the diurnal-mean arrival rate in requests per
	// second (a population of millions of users aggregates to thousands
	// of requests per second constellation-wide).
	BaseRatePerSec float64
	// DiurnalAmp in [0, 1) swings the rate ±Amp around the base over the
	// diurnal period: rate(t) = base·(1 + amp·sin(2π(t+phase)/period)).
	DiurnalAmp float64
	// DiurnalPeriodSec is the sinusoid period. Zero means a day.
	DiurnalPeriodSec float64
	// DiurnalPhaseSec shifts the sinusoid.
	DiurnalPhaseSec float64

	// BurstRatePerSec is the Poisson arrival rate of disaster-response
	// burst onsets (events per second; e.g. 1/86400 for one a day).
	BurstRatePerSec float64
	// BurstOnsets adds deterministic burst onsets at the given times, on
	// top of the Poisson ones — how a scenario guarantees a fault
	// campaign lands mid-surge.
	BurstOnsets []float64
	// BurstPeakPerSec is the extra request rate at a burst's onset; it
	// decays as exp(-(t-onset)/BurstDecaySec).
	BurstPeakPerSec float64
	// BurstDecaySec is the burst decay constant. Zero means 300 s.
	BurstDecaySec float64

	// Classes is the priority mix. Empty means DefaultClasses().
	Classes []Class

	// DurationSec bounds the stream.
	DurationSec float64
	// Seed drives all randomness; the stream is deterministic given the
	// spec.
	Seed int64
}

// DefaultClasses is the three-tier mix the ext-workload study uses:
// urgent tasking (tight SLO, small payloads), standard tasking, and
// best-effort bulk collection that exists to be shed under overload.
func DefaultClasses() []Class {
	return []Class{
		{Name: "urgent", Share: 0.15, DeadlineSec: 30, Bits: 20e6, Frames: 1},
		{Name: "standard", Share: 0.35, DeadlineSec: 120, Bits: 50e6, Frames: 2},
		{Name: "best-effort", Share: 0.50, DeadlineSec: 600, Bits: 100e6, Frames: 4},
	}
}

// withDefaults fills zero fields.
func (s Spec) withDefaults() Spec {
	if s.DiurnalPeriodSec == 0 {
		s.DiurnalPeriodSec = DefaultDiurnalPeriodSec
	}
	if s.BurstDecaySec == 0 {
		s.BurstDecaySec = DefaultBurstDecaySec
	}
	if len(s.Classes) == 0 {
		s.Classes = DefaultClasses()
	}
	return s
}

// Validate checks the spec after defaulting.
func (s Spec) Validate() error {
	if s.BaseRatePerSec <= 0 || math.IsNaN(s.BaseRatePerSec) || math.IsInf(s.BaseRatePerSec, 0) {
		return fmt.Errorf("workload: non-positive base rate %v", s.BaseRatePerSec)
	}
	if s.DiurnalAmp < 0 || s.DiurnalAmp >= 1 {
		return fmt.Errorf("workload: diurnal amplitude %v outside [0, 1)", s.DiurnalAmp)
	}
	if s.DiurnalPeriodSec <= 0 {
		return fmt.Errorf("workload: non-positive diurnal period %v", s.DiurnalPeriodSec)
	}
	if s.DurationSec <= 0 {
		return fmt.Errorf("workload: non-positive duration %v", s.DurationSec)
	}
	if s.BurstRatePerSec < 0 || math.IsNaN(s.BurstRatePerSec) {
		return fmt.Errorf("workload: negative burst rate %v", s.BurstRatePerSec)
	}
	if s.BurstDecaySec <= 0 {
		return fmt.Errorf("workload: non-positive burst decay %v", s.BurstDecaySec)
	}
	if (s.BurstRatePerSec > 0 || len(s.BurstOnsets) > 0) && s.BurstPeakPerSec <= 0 {
		return fmt.Errorf("workload: bursts enabled with non-positive peak %v", s.BurstPeakPerSec)
	}
	for _, on := range s.BurstOnsets {
		if on < 0 || on >= s.DurationSec || math.IsNaN(on) {
			return fmt.Errorf("workload: burst onset %v outside [0, duration %v)", on, s.DurationSec)
		}
	}
	sum := 0.0
	for i, c := range s.Classes {
		if c.Share < 0 || c.Share > 1 || math.IsNaN(c.Share) {
			return fmt.Errorf("workload: class %d share %v outside [0, 1]", i, c.Share)
		}
		if c.DeadlineSec <= 0 {
			return fmt.Errorf("workload: class %d non-positive deadline %v", i, c.DeadlineSec)
		}
		if c.Bits <= 0 || c.Frames <= 0 {
			return fmt.Errorf("workload: class %d non-positive size (bits %v, frames %d)", i, c.Bits, c.Frames)
		}
		sum += c.Share
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("workload: class shares sum to %v, want 1", sum)
	}
	return nil
}

// Generator streams one spec's requests in arrival order. Build with New;
// not safe for concurrent use (each worker owns its own generator).
type Generator struct {
	spec   Spec
	rng    *rand.Rand
	rmax   float64   // thinning envelope: rate(t) ≤ rmax for all t
	onsets []float64 // sorted burst onset times
	cum    []float64 // cumulative class shares

	// Streaming state: the candidate clock and the running burst sum
	// S(t) = Σ_{onsets ≤ t} peak·exp(-(t-onset)/τ), advanced lazily so
	// rate evaluation is O(1) amortized in the onset count.
	t         float64
	burstSum  float64
	burstLast float64
	nextOnset int
}

// New builds a generator. The spec (with defaults applied) is validated
// once here; Next never fails.
func New(spec Spec) (*Generator, error) {
	sp := spec.withDefaults()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{spec: sp, rng: rand.New(rand.NewSource(sp.Seed))}

	// Poisson burst onsets draw from a dedicated RNG stream (derived from
	// the seed) so the request draws that follow are independent of how
	// many onsets landed.
	onsetRng := rand.New(rand.NewSource(sp.Seed ^ 0x5deece66d))
	if sp.BurstRatePerSec > 0 && sp.BurstPeakPerSec > 0 {
		for t := onsetRng.ExpFloat64() / sp.BurstRatePerSec; t < sp.DurationSec; t += onsetRng.ExpFloat64() / sp.BurstRatePerSec {
			g.onsets = append(g.onsets, t)
		}
	}
	g.onsets = append(g.onsets, sp.BurstOnsets...)
	sort.Float64s(g.onsets)

	// Thinning envelope: the diurnal term is bounded by base·(1+amp) and
	// the burst sum is piecewise-decaying, so its maximum over the run
	// occurs immediately after an onset — a single forward pass over the
	// sorted onsets finds the exact bound.
	g.rmax = sp.BaseRatePerSec * (1 + sp.DiurnalAmp)
	if len(g.onsets) > 0 {
		s, last, peak := 0.0, 0.0, 0.0
		for _, on := range g.onsets {
			s = s*math.Exp(-(on-last)/sp.BurstDecaySec) + sp.BurstPeakPerSec
			last = on
			if s > peak {
				peak = s
			}
		}
		g.rmax += peak
	}

	g.cum = make([]float64, len(sp.Classes))
	sum := 0.0
	for i, c := range sp.Classes {
		sum += c.Share
		g.cum[i] = sum
	}
	g.cum[len(g.cum)-1] = 1 // absorb float error so the last class catches 1.0 draws
	return g, nil
}

// Rate returns the instantaneous arrival rate at time t — the diurnal
// sinusoid plus every burst's decayed contribution. It is independent of
// the streaming state (reports and tests sample it freely).
func (g *Generator) Rate(t float64) float64 {
	sp := g.spec
	r := sp.BaseRatePerSec * (1 + sp.DiurnalAmp*math.Sin(2*math.Pi*(t+sp.DiurnalPhaseSec)/sp.DiurnalPeriodSec))
	for _, on := range g.onsets {
		if on > t {
			break
		}
		r += sp.BurstPeakPerSec * math.Exp(-(t-on)/sp.BurstDecaySec)
	}
	return r
}

// rateAt is the streaming-state evaluation of Rate: the burst sum decays
// forward from its last evaluation instead of rescanning the onset list.
// t must not decrease across calls.
func (g *Generator) rateAt(t float64) float64 {
	sp := g.spec
	g.burstSum *= math.Exp(-(t - g.burstLast) / sp.BurstDecaySec)
	for g.nextOnset < len(g.onsets) && g.onsets[g.nextOnset] <= t {
		g.burstSum += sp.BurstPeakPerSec * math.Exp(-(t-g.onsets[g.nextOnset])/sp.BurstDecaySec)
		g.nextOnset++
	}
	g.burstLast = t
	return sp.BaseRatePerSec*(1+sp.DiurnalAmp*math.Sin(2*math.Pi*(t+sp.DiurnalPhaseSec)/sp.DiurnalPeriodSec)) + g.burstSum
}

// Next returns the next request on the stream, or ok=false when the spec's
// duration is exhausted. Candidates arrive as a homogeneous Poisson process
// at the envelope rate and are accepted with probability rate(t)/envelope
// (Lewis–Shedler thinning), which samples the non-homogeneous process
// exactly. Amortized O(1) per candidate; no allocation.
func (g *Generator) Next() (Request, bool) {
	for {
		g.t += g.rng.ExpFloat64() / g.rmax
		if g.t >= g.spec.DurationSec {
			return Request{}, false
		}
		if g.rng.Float64()*g.rmax > g.rateAt(g.t) {
			continue // thinned out
		}
		u := g.rng.Float64()
		class := sort.SearchFloat64s(g.cum, u)
		if class == len(g.cum) {
			class = len(g.cum) - 1
		}
		return Request{TSec: g.t, Class: class}, true
	}
}

// Classes returns the generator's (defaulted) class mix.
func (g *Generator) Classes() []Class { return g.spec.Classes }

// EnvelopeRate returns the thinning envelope — the exact upper bound on
// the instantaneous rate over the run (useful for sizing admission).
func (g *Generator) EnvelopeRate() float64 { return g.rmax }

// MeanBits returns the share-weighted mean network payload per request.
func (s Spec) MeanBits() float64 {
	sp := s.withDefaults()
	m := 0.0
	for _, c := range sp.Classes {
		m += c.Share * c.Bits
	}
	return m
}

// MeanFrames returns the share-weighted mean compute size per request.
func (s Spec) MeanFrames() float64 {
	sp := s.withDefaults()
	m := 0.0
	for _, c := range sp.Classes {
		m += c.Share * float64(c.Frames)
	}
	return m
}
