// Package coverage connects constellation design to the temporal
// resolutions the paper's Table 1 missions advertise: how often a
// constellation of imaging satellites revisits a point on Earth, and how
// many satellites a target revisit interval implies. It closes the loop
// between the datagen package's (spatial, temporal) resolution grid and
// the constellation package's orbital geometry.
package coverage

import (
	"fmt"
	"math"
	"time"

	"spacedc/internal/orbit"
)

// Imager describes one satellite's imaging geometry.
type Imager struct {
	AltKm float64
	// HalfAngleRad is the sensor's cross-track half field of view.
	HalfAngleRad float64
}

// Validate checks the imager.
func (im Imager) Validate() error {
	if im.AltKm <= 0 {
		return fmt.Errorf("coverage: non-positive altitude %v", im.AltKm)
	}
	if im.HalfAngleRad <= 0 || im.HalfAngleRad >= math.Pi/2 {
		return fmt.Errorf("coverage: half angle %v outside (0, π/2)", im.HalfAngleRad)
	}
	return nil
}

// SwathKm returns the imaged cross-track swath width.
func (im Imager) SwathKm() float64 {
	return orbit.SwathWidthKm(im.AltKm, im.HalfAngleRad)
}

// period returns the circular-orbit period at the imager's altitude.
func (im Imager) period() time.Duration {
	a := orbit.EarthRadiusKm + im.AltKm
	n := math.Sqrt(orbit.EarthMuKm3S2 / (a * a * a))
	return time.Duration(2 * math.Pi / n * float64(time.Second))
}

// MeanRevisit estimates the average revisit interval for a point at the
// given latitude, observed by nSats satellites (spread over planes for
// even coverage) in near-polar orbits. The estimate is the classic
// area-coverage argument: each satellite sweeps swath × ground-speed of
// area per unit time; the band at the target latitude is revisited when
// the constellation has swept the band's circumference.
func MeanRevisit(im Imager, nSats int, latRad float64) (time.Duration, error) {
	if err := im.Validate(); err != nil {
		return 0, err
	}
	if nSats <= 0 {
		return 0, fmt.Errorf("coverage: non-positive satellite count %d", nSats)
	}
	if math.Abs(latRad) >= math.Pi/2 {
		return 0, fmt.Errorf("coverage: polar singularity at latitude %v", latRad)
	}
	// Circumference of the latitude band the point sits in.
	bandKm := 2 * math.Pi * orbit.EarthRadiusKm * math.Cos(latRad)
	swath := im.SwathKm()
	if swath <= 0 {
		return 0, fmt.Errorf("coverage: zero swath")
	}
	// Each revolution a polar orbiter crosses the band twice (ascending
	// and descending), covering one swath width each time. nSats
	// satellites cover 2·n·swath per period.
	coveredPerPeriod := 2 * float64(nSats) * swath
	revolutions := bandKm / coveredPerPeriod
	return time.Duration(revolutions * float64(im.period())), nil
}

// SatellitesForRevisit inverts MeanRevisit: the constellation size needed
// to revisit latitude latRad at least every target interval.
func SatellitesForRevisit(im Imager, target time.Duration, latRad float64) (int, error) {
	if target <= 0 {
		return 0, fmt.Errorf("coverage: non-positive target %v", target)
	}
	// Binary-search-free inversion: revisit ∝ 1/n.
	one, err := MeanRevisit(im, 1, latRad)
	if err != nil {
		return 0, err
	}
	n := int(math.Ceil(float64(one) / float64(target)))
	if n < 1 {
		n = 1
	}
	return n, nil
}

// GapStatistics measures actual revisit behavior by propagation: it flies
// the satellites over the span and records the gaps between imaging
// opportunities of a specific ground target (the target is "imaged" when
// it falls inside a satellite's swath cone).
type GapStatistics struct {
	Passes     int
	MeanGap    time.Duration
	LongestGap time.Duration
}

// MeasureRevisit propagates the satellites and measures revisit gaps of
// the target point. Sampling uses the given step.
func MeasureRevisit(im Imager, sats []orbit.Elements, target orbit.Geodetic, start time.Time, span, step time.Duration) (GapStatistics, error) {
	if err := im.Validate(); err != nil {
		return GapStatistics{}, err
	}
	if len(sats) == 0 {
		return GapStatistics{}, fmt.Errorf("coverage: no satellites")
	}
	if step <= 0 || span <= 0 {
		return GapStatistics{}, fmt.Errorf("coverage: non-positive span or step")
	}
	targetECEF := target.ECEF()
	// The target is visible when the off-nadir angle from some satellite
	// to the target is within the sensor cone.
	cond := func(t time.Time) (bool, error) {
		for i := range sats {
			s := sats[i].StateAtJ2(t)
			satECEF := orbit.ECIToECEF(s.Position, t)
			toTarget := targetECEF.Sub(satECEF)
			offNadir := toTarget.AngleTo(satECEF.Neg())
			// Inside the sensor cone and above the target's horizon
			// (the elevation test handles surface targets, which sit
			// exactly on the LineOfSight blocking sphere).
			if offNadir <= im.HalfAngleRad && orbit.ElevationAngle(targetECEF, satECEF) > 0 {
				return true, nil
			}
		}
		return false, nil
	}
	windows, err := orbit.FindWindows(cond, start, span, step, step/4)
	if err != nil {
		return GapStatistics{}, err
	}
	stats := GapStatistics{Passes: len(windows)}
	if len(windows) < 2 {
		stats.LongestGap = span
		return stats, nil
	}
	var total time.Duration
	for i := 1; i < len(windows); i++ {
		gap := windows[i].Start.Sub(windows[i-1].End)
		total += gap
		if gap > stats.LongestGap {
			stats.LongestGap = gap
		}
	}
	stats.MeanGap = total / time.Duration(len(windows)-1)
	return stats, nil
}
