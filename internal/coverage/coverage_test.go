package coverage

import (
	"math"
	"testing"
	"time"

	"spacedc/internal/orbit"
)

var epoch = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

// wideImager is a 550 km satellite with a 30° half-angle sensor
// (≈660 km swath).
var wideImager = Imager{AltKm: 550, HalfAngleRad: 30 * math.Pi / 180}

// horizonImager is a near-horizon sensor (≈3300 km swath) whose swath
// exceeds the ~2700 km spacing of successive equator crossings, so a
// single satellite images any equatorial target every day — used by the
// propagation tests so short spans suffice. (A 660 km swath can
// legitimately miss a fixed target for days between repeat cycles.)
var horizonImager = Imager{AltKm: 550, HalfAngleRad: 65 * math.Pi / 180}

func TestImagerValidate(t *testing.T) {
	if err := wideImager.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Imager{
		{AltKm: 0, HalfAngleRad: 0.1},
		{AltKm: 550, HalfAngleRad: 0},
		{AltKm: 550, HalfAngleRad: math.Pi},
	}
	for _, im := range bad {
		if im.Validate() == nil {
			t.Errorf("bad imager accepted: %+v", im)
		}
	}
}

func TestSwath(t *testing.T) {
	s := wideImager.SwathKm()
	if s < 500 || s > 800 {
		t.Errorf("30° swath at 550 km = %v km, want ≈660", s)
	}
	narrow := Imager{AltKm: 550, HalfAngleRad: 2 * math.Pi / 180}
	if narrow.SwathKm() >= s {
		t.Error("narrow sensor should have smaller swath")
	}
}

func TestMeanRevisitScalesInverselyWithFleet(t *testing.T) {
	one, err := MeanRevisit(wideImager, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ten, err := MeanRevisit(wideImager, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(one) / float64(ten); math.Abs(ratio-10) > 1e-9 {
		t.Errorf("10× fleet should give 10× faster revisit, got %v×", ratio)
	}
}

func TestMeanRevisitMagnitude(t *testing.T) {
	// One wide-swath satellite: equatorial band = 40 030 km; covers
	// 2×660 km per 95.6 min revolution → ≈30 revolutions ≈ 2 days.
	rev, err := MeanRevisit(wideImager, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rev < 24*time.Hour || rev > 96*time.Hour {
		t.Errorf("single-satellite revisit = %v, want ≈2 days", rev)
	}
	// High latitudes revisit faster (bands shrink).
	polarish, err := MeanRevisit(wideImager, 1, 60*math.Pi/180)
	if err != nil {
		t.Fatal(err)
	}
	if polarish >= rev {
		t.Errorf("60° revisit %v should beat equatorial %v", polarish, rev)
	}
}

func TestSatellitesForRevisitRoundTrip(t *testing.T) {
	n, err := SatellitesForRevisit(wideImager, 30*time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n < 50 {
		t.Errorf("30-minute equatorial revisit needs %d satellites, want large fleet", n)
	}
	got, err := MeanRevisit(wideImager, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got > 30*time.Minute {
		t.Errorf("%d satellites give %v revisit, want ≤ 30 min", n, got)
	}
	// One fewer satellite must miss the target.
	if n > 1 {
		worse, err := MeanRevisit(wideImager, n-1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if worse <= 30*time.Minute {
			t.Errorf("%d satellites already hit the target", n-1)
		}
	}
}

func TestRevisitValidation(t *testing.T) {
	if _, err := MeanRevisit(wideImager, 0, 0); err == nil {
		t.Error("zero satellites accepted")
	}
	if _, err := MeanRevisit(wideImager, 1, math.Pi/2); err == nil {
		t.Error("polar singularity accepted")
	}
	if _, err := SatellitesForRevisit(wideImager, 0, 0); err == nil {
		t.Error("zero target accepted")
	}
}

func TestMeasureRevisitPropagated(t *testing.T) {
	// A single polar wide-swath satellite over an equatorial target: the
	// measured pass count over 2 days should be positive and the longest
	// gap should be hours-to-a-day scale, consistent with (same order of
	// magnitude as) the analytic estimate.
	sat := orbit.CircularLEO(550, 88*math.Pi/180, 0, 0, epoch)
	target := orbit.Geodetic{LatRad: 0, LonRad: 10 * math.Pi / 180}
	stats, err := MeasureRevisit(horizonImager, []orbit.Elements{sat}, target,
		epoch, 48*time.Hour, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Passes == 0 {
		t.Fatal("satellite never imaged the target in 2 days")
	}
	if stats.LongestGap <= 0 {
		t.Error("gap statistics empty")
	}
	if stats.LongestGap < 30*time.Minute {
		t.Errorf("longest gap %v implausibly short for one satellite", stats.LongestGap)
	}
}

func TestMeasureRevisitMoreSatsMorePasses(t *testing.T) {
	target := orbit.Geodetic{LatRad: 20 * math.Pi / 180, LonRad: -60 * math.Pi / 180}
	one := []orbit.Elements{orbit.CircularLEO(550, 80*math.Pi/180, 0, 0, epoch)}
	var four []orbit.Elements
	for i := 0; i < 4; i++ {
		four = append(four, orbit.CircularLEO(550, 80*math.Pi/180, float64(i)*math.Pi/2, 0, epoch))
	}
	s1, err := MeasureRevisit(horizonImager, one, target, epoch, 24*time.Hour, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := MeasureRevisit(horizonImager, four, target, epoch, 24*time.Hour, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if s4.Passes < s1.Passes {
		t.Errorf("4 planes (%d passes) should beat 1 (%d)", s4.Passes, s1.Passes)
	}
}

func TestMeasureRevisitValidation(t *testing.T) {
	target := orbit.Geodetic{}
	if _, err := MeasureRevisit(wideImager, nil, target, epoch, time.Hour, time.Minute); err == nil {
		t.Error("empty constellation accepted")
	}
	sat := orbit.CircularLEO(550, 1, 0, 0, epoch)
	if _, err := MeasureRevisit(wideImager, []orbit.Elements{sat}, target, epoch, 0, time.Minute); err == nil {
		t.Error("zero span accepted")
	}
	if _, err := MeasureRevisit(Imager{}, []orbit.Elements{sat}, target, epoch, time.Hour, time.Minute); err == nil {
		t.Error("invalid imager accepted")
	}
}
