package rf

import (
	"math"
	"testing"
	"testing/quick"

	"spacedc/internal/units"
)

func TestShannonCapacityKnownValues(t *testing.T) {
	// B=1 Hz, SNR=1 → 1 bit/s; SNR=3 → 2 bit/s.
	if got := ShannonCapacity(1, 1); math.Abs(float64(got)-1) > 1e-12 {
		t.Errorf("C(1 Hz, SNR 1) = %v, want 1", float64(got))
	}
	if got := ShannonCapacity(1, 3); math.Abs(float64(got)-2) > 1e-12 {
		t.Errorf("C(1 Hz, SNR 3) = %v, want 2", float64(got))
	}
	// Dove: 96 MHz at SNR 19 → 96e6·log2(20) ≈ 415 Mb/s Shannon limit.
	c := ShannonCapacity(DoveBandwidth, DoveSNR)
	if math.Abs(float64(c)-414.9e6)/414.9e6 > 0.01 {
		t.Errorf("Dove Shannon limit = %v, want ≈415 Mb/s", float64(c))
	}
	// Negative SNR clamps to zero capacity.
	if got := ShannonCapacity(1e6, -5); got != 0 {
		t.Errorf("negative SNR capacity = %v, want 0", float64(got))
	}
}

func TestRequiredSNRInverse(t *testing.T) {
	f := func(cRaw float64) bool {
		c := units.DataRate(math.Abs(math.Mod(cRaw, 1e9)))
		b := 96 * units.Megahertz
		snr := RequiredSNR(c, b)
		back := ShannonCapacity(b, snr)
		return math.Abs(float64(back)-float64(c)) <= 1e-6*math.Max(float64(c), 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !math.IsInf(RequiredSNR(units.Gbps, 0), 1) {
		t.Error("zero bandwidth should need infinite SNR")
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, lin := range []float64{0.001, 1, 19, 1e6} {
		if got := FromDB(DB(lin)); math.Abs(got-lin)/lin > 1e-12 {
			t.Errorf("dB round trip %v → %v", lin, got)
		}
	}
	if DB(10) != 10 || DB(100) != 20 {
		t.Error("dB of 10/100 wrong")
	}
}

func TestParabolicGain(t *testing.T) {
	// A 5 m dish at 8.2 GHz X-band with 60% efficiency ≈ 50.5 dBi.
	g := ParabolicGain(5, 8.2*units.Gigahertz, 0.6)
	if db := DB(g); math.Abs(db-50.5) > 1.0 {
		t.Errorf("5 m X-band gain = %v dBi, want ≈50.5", db)
	}
	// Gain scales with D².
	g2 := ParabolicGain(10, 8.2*units.Gigahertz, 0.6)
	if math.Abs(g2/g-4) > 1e-9 {
		t.Errorf("doubling diameter scaled gain by %v, want 4", g2/g)
	}
	if ParabolicGain(0, units.Gigahertz, 0.6) != 0 || ParabolicGain(1, 0, 0.6) != 0 {
		t.Error("degenerate gain should be 0")
	}
}

func TestFreeSpacePathLoss(t *testing.T) {
	// 1000 km at 8.2 GHz: FSPL ≈ 170.7 dB.
	l := FreeSpacePathLoss(1e6, 8.2*units.Gigahertz)
	if db := DB(l); math.Abs(db-170.7) > 0.5 {
		t.Errorf("FSPL(1000 km, X-band) = %v dB, want ≈170.7", db)
	}
	// Doubling distance adds 6 dB.
	l2 := FreeSpacePathLoss(2e6, 8.2*units.Gigahertz)
	if math.Abs(DB(l2)-DB(l)-6.02) > 0.01 {
		t.Errorf("distance doubling added %v dB, want 6.02", DB(l2)-DB(l))
	}
	if FreeSpacePathLoss(0, units.Gigahertz) != 1 {
		t.Error("zero distance loss should be 1")
	}
}

func TestLinkBudgetEndToEnd(t *testing.T) {
	// A Dove-like downlink: 5 W, modest satellite antenna, 5 m ground
	// dish, 600 km slant range. The SNR should come out in the tens.
	lb := LinkBudget{
		TxPower:    5 * units.Watt,
		TxGain:     FromDB(6),
		RxGain:     ParabolicGain(5, 8.2*units.Gigahertz, 0.6),
		Frequency:  8.2 * units.Gigahertz,
		DistanceM:  600e3,
		NoiseTempK: 290,
		Bandwidth:  DoveBandwidth,
		Efficiency: DoveEfficiency(),
	}
	if err := lb.Validate(); err != nil {
		t.Fatalf("valid budget rejected: %v", err)
	}
	snr := lb.SNR()
	if snr < 5 || snr > 500 {
		t.Errorf("SNR = %v, want plausible double digits", snr)
	}
	c := lb.Capacity()
	if c < 100*units.Mbps || c > 2*units.Gbps {
		t.Errorf("capacity = %v, want few hundred Mb/s", c)
	}
	// Received power must be far below transmit power.
	if float64(lb.ReceivedPower()) >= float64(lb.TxPower) {
		t.Error("received power should be attenuated")
	}
}

func TestLinkBudgetValidation(t *testing.T) {
	good := LinkBudget{TxPower: 1, TxGain: 1, RxGain: 1, Frequency: 1e9,
		DistanceM: 1e5, NoiseTempK: 290, Bandwidth: 1e6}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*LinkBudget){
		"zero power":     func(l *LinkBudget) { l.TxPower = 0 },
		"zero freq":      func(l *LinkBudget) { l.Frequency = 0 },
		"zero bandwidth": func(l *LinkBudget) { l.Bandwidth = 0 },
		"zero distance":  func(l *LinkBudget) { l.DistanceM = 0 },
		"zero noise":     func(l *LinkBudget) { l.NoiseTempK = 0 },
		"bad efficiency": func(l *LinkBudget) { l.Efficiency = 1.5 },
	} {
		lb := good
		mutate(&lb)
		if err := lb.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDoveEfficiencyCalibration(t *testing.T) {
	eff := DoveEfficiency()
	if eff <= 0 || eff > 1 {
		t.Fatalf("Dove efficiency = %v, want (0, 1]", eff)
	}
	// The calibrated channel reproduces exactly 220 Mb/s at baseline.
	sc := DefaultScaledChannel()
	if got := sc.CapacityAtPower(sc.BasePower); math.Abs(float64(got-DoveRate)) > 1 {
		t.Errorf("baseline capacity = %v, want 220 Mb/s", got)
	}
	if got := sc.CapacityAtDish(sc.BaseDishM); math.Abs(float64(got-DoveRate)) > 1 {
		t.Errorf("baseline dish capacity = %v, want 220 Mb/s", got)
	}
}

func TestFig7AntennaScalingIsLogarithmic(t *testing.T) {
	sc := DefaultScaledChannel()
	// 400× the power buys far less than 400× the capacity.
	c1 := sc.CapacityAtPower(sc.BasePower)
	c400 := sc.CapacityAtPower(units.Power(400 * float64(sc.BasePower)))
	gain := float64(c400) / float64(c1)
	if gain > 4 {
		t.Errorf("400× power gave %v× capacity; should be ≪ 400 (bandwidth limited)", gain)
	}
	if c400 <= c1 {
		t.Error("more power must give more capacity")
	}
}

func TestFig7TwoKilowattFallsShort(t *testing.T) {
	// The paper: a 2 kW input power or a 30 m dish both fall far short of
	// the 1 m global-coverage downlink requirement (~141 Gb/s).
	sc := DefaultScaledChannel()
	oneMeterReq := 141 * units.Gbps

	at2kW := sc.CapacityAtPower(2 * units.Kilowatt)
	if float64(at2kW) > 0.05*float64(oneMeterReq) {
		t.Errorf("2 kW capacity %v not far short of %v", at2kW, oneMeterReq)
	}
	at30m := sc.CapacityAtDish(30)
	if float64(at30m) > 0.05*float64(oneMeterReq) {
		t.Errorf("30 m dish capacity %v not far short of %v", at30m, oneMeterReq)
	}
}

func TestPowerForCapacityGrowsExponentially(t *testing.T) {
	sc := DefaultScaledChannel()
	p1 := sc.PowerForCapacity(500 * units.Mbps)
	p2 := sc.PowerForCapacity(1000 * units.Mbps)
	p4 := sc.PowerForCapacity(2000 * units.Mbps)
	// Each capacity doubling must multiply power by more than 2×
	// (exponential wall).
	if float64(p2)/float64(p1) < 2 || float64(p4)/float64(p2) < 4 {
		t.Errorf("power scaling %v → %v → %v not exponential", p1, p2, p4)
	}
	// Round trip.
	if got := sc.CapacityAtPower(p2); math.Abs(float64(got)-1000e6)/1000e6 > 1e-9 {
		t.Errorf("PowerForCapacity round trip = %v, want 1 Gb/s", got)
	}
}

func TestDishForCapacityRoundTrip(t *testing.T) {
	sc := DefaultScaledChannel()
	d := sc.DishForCapacity(800 * units.Mbps)
	if got := sc.CapacityAtDish(d); math.Abs(float64(got)-800e6)/800e6 > 1e-9 {
		t.Errorf("DishForCapacity round trip = %v, want 800 Mb/s", got)
	}
	if d <= sc.BaseDishM {
		t.Error("reaching above-baseline capacity needs a bigger dish")
	}
}

func TestScaledChannelDegenerates(t *testing.T) {
	sc := DefaultScaledChannel()
	if sc.CapacityAtPower(0) != 0 || sc.CapacityAtDish(0) != 0 {
		t.Error("zero power/dish should have zero capacity")
	}
}
