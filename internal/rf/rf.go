// Package rf models radio-frequency satellite communication: Shannon
// channel capacity, antenna gain, free-space path loss, full link budgets,
// and the paper's Dove X-band baseline channel. It backs the paper's
// argument (§4, Fig 7) that RF downlink scaling is bandwidth limited:
// capacity grows linearly with bandwidth — which regulators cap — but only
// logarithmically with transmit power or antenna size.
package rf

import (
	"fmt"
	"math"

	"spacedc/internal/units"
)

// Physical constants.
const (
	// SpeedOfLightMS is c in m/s.
	SpeedOfLightMS = 299792458.0
	// BoltzmannJPerK is k_B in J/K.
	BoltzmannJPerK = 1.380649e-23
)

// ShannonCapacity returns the additive-white-Gaussian-noise channel
// capacity C = B·log2(1 + SNR) for bandwidth b and linear (not dB) snr.
func ShannonCapacity(b units.Frequency, snr float64) units.DataRate {
	if snr < 0 {
		snr = 0
	}
	return units.DataRate(float64(b) * math.Log2(1+snr))
}

// RequiredSNR inverts Shannon: the linear SNR needed for capacity c over
// bandwidth b. It grows exponentially with c/b — the paper's core point
// about the bandwidth-limited regime.
func RequiredSNR(c units.DataRate, b units.Frequency) float64 {
	if b <= 0 {
		return math.Inf(1)
	}
	return math.Exp2(float64(c)/float64(b)) - 1
}

// DB converts a linear power ratio to decibels.
func DB(linear float64) float64 { return 10 * math.Log10(linear) }

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// ParabolicGain returns the boresight gain (linear) of a parabolic dish of
// the given diameter at frequency f with aperture efficiency eff
// (typically 0.55–0.70): G = eff·(πD/λ)².
func ParabolicGain(diameterM float64, f units.Frequency, eff float64) float64 {
	if diameterM <= 0 || f <= 0 {
		return 0
	}
	lambda := SpeedOfLightMS / float64(f)
	x := math.Pi * diameterM / lambda
	return eff * x * x
}

// FreeSpacePathLoss returns the linear free-space path loss (≥ 1) over
// distanceM meters at frequency f: (4πd/λ)².
func FreeSpacePathLoss(distanceM float64, f units.Frequency) float64 {
	if distanceM <= 0 || f <= 0 {
		return 1
	}
	lambda := SpeedOfLightMS / float64(f)
	x := 4 * math.Pi * distanceM / lambda
	return x * x
}

// LinkBudget describes one directional RF link.
type LinkBudget struct {
	TxPower    units.Power     // transmitter RF output power
	TxGain     float64         // linear transmit antenna gain
	RxGain     float64         // linear receive antenna gain
	Frequency  units.Frequency // carrier frequency
	DistanceM  float64         // path length in meters
	NoiseTempK float64         // receive system noise temperature
	Bandwidth  units.Frequency // channel bandwidth
	// Efficiency derates Shannon capacity for real modulation/coding
	// (0 < Efficiency ≤ 1). Zero means 1.
	Efficiency float64
}

// Validate checks the budget for physical plausibility.
func (lb LinkBudget) Validate() error {
	if lb.TxPower <= 0 {
		return fmt.Errorf("rf: non-positive tx power %v", lb.TxPower)
	}
	if lb.Frequency <= 0 || lb.Bandwidth <= 0 {
		return fmt.Errorf("rf: non-positive frequency %v or bandwidth %v", lb.Frequency, lb.Bandwidth)
	}
	if lb.DistanceM <= 0 {
		return fmt.Errorf("rf: non-positive distance %v", lb.DistanceM)
	}
	if lb.NoiseTempK <= 0 {
		return fmt.Errorf("rf: non-positive noise temperature %v", lb.NoiseTempK)
	}
	if lb.Efficiency < 0 || lb.Efficiency > 1 {
		return fmt.Errorf("rf: efficiency %v outside [0, 1]", lb.Efficiency)
	}
	return nil
}

// ReceivedPower returns the power at the receiver input.
func (lb LinkBudget) ReceivedPower() units.Power {
	loss := FreeSpacePathLoss(lb.DistanceM, lb.Frequency)
	return units.Power(float64(lb.TxPower) * lb.TxGain * lb.RxGain / loss)
}

// NoisePower returns the thermal noise power k·T·B in the channel.
func (lb LinkBudget) NoisePower() units.Power {
	return units.Power(BoltzmannJPerK * lb.NoiseTempK * float64(lb.Bandwidth))
}

// SNR returns the linear signal-to-noise ratio of the link.
func (lb LinkBudget) SNR() float64 {
	n := lb.NoisePower()
	if n <= 0 {
		return math.Inf(1)
	}
	return float64(lb.ReceivedPower()) / float64(n)
}

// Capacity returns the achievable data rate: Shannon capacity times the
// implementation efficiency.
func (lb LinkBudget) Capacity() units.DataRate {
	eff := lb.Efficiency
	if eff == 0 {
		eff = 1
	}
	return units.DataRate(eff * float64(ShannonCapacity(lb.Bandwidth, lb.SNR())))
}

// Dove baseline channel parameters (Devaraj et al., "Dove High Speed
// Downlink System"): a 96 MHz X-band channel delivering 220 Mbit/s with
// SNR ≈ 19 at the ground station.
const (
	DoveBandwidth = 96 * units.Megahertz
	DoveSNR       = 19.0
	DoveRate      = 220 * units.Mbps
)

// DoveEfficiency is the modulation/coding efficiency implied by the Dove
// numbers: 220 Mb/s over the 415 Mb/s Shannon limit of a 96 MHz, SNR-19
// channel.
func DoveEfficiency() float64 {
	shannon := ShannonCapacity(DoveBandwidth, DoveSNR)
	return float64(DoveRate) / float64(shannon)
}

// ScaledChannel models the paper's Fig 7 experiment: take the Dove baseline
// channel and scale its SNR by increasing transmit power (SNR ∝ P) or
// antenna aperture (SNR ∝ D²), keeping the regulated 96 MHz bandwidth
// fixed.
type ScaledChannel struct {
	// BasePower is the reference transmit power producing DoveSNR.
	BasePower units.Power
	// BaseDishM is the reference antenna diameter producing DoveSNR.
	BaseDishM float64
}

// DefaultScaledChannel uses a 5 W transmitter and a 0.5 m antenna as the
// Dove-class baseline.
func DefaultScaledChannel() ScaledChannel {
	return ScaledChannel{BasePower: 5 * units.Watt, BaseDishM: 0.5}
}

// CapacityAtPower returns the channel capacity when the transmit power is
// raised to p with everything else fixed.
func (sc ScaledChannel) CapacityAtPower(p units.Power) units.DataRate {
	if p <= 0 {
		return 0
	}
	snr := DoveSNR * float64(p) / float64(sc.BasePower)
	return units.DataRate(DoveEfficiency() * float64(ShannonCapacity(DoveBandwidth, snr)))
}

// CapacityAtDish returns the channel capacity when the antenna diameter is
// raised to d meters (gain ∝ D²) with everything else fixed.
func (sc ScaledChannel) CapacityAtDish(dM float64) units.DataRate {
	if dM <= 0 {
		return 0
	}
	ratio := dM / sc.BaseDishM
	snr := DoveSNR * ratio * ratio
	return units.DataRate(DoveEfficiency() * float64(ShannonCapacity(DoveBandwidth, snr)))
}

// PowerForCapacity inverts CapacityAtPower: the transmit power needed to
// reach capacity c. Returns +Inf if c is unreachable… it never is under
// Shannon, but the answer grows exponentially, which is the point.
func (sc ScaledChannel) PowerForCapacity(c units.DataRate) units.Power {
	snr := RequiredSNR(units.DataRate(float64(c)/DoveEfficiency()), DoveBandwidth)
	return units.Power(float64(sc.BasePower) * snr / DoveSNR)
}

// DishForCapacity inverts CapacityAtDish: the dish diameter in meters
// needed to reach capacity c.
func (sc ScaledChannel) DishForCapacity(c units.DataRate) float64 {
	snr := RequiredSNR(units.DataRate(float64(c)/DoveEfficiency()), DoveBandwidth)
	return sc.BaseDishM * math.Sqrt(snr/DoveSNR)
}
