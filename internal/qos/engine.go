package qos

import (
	"fmt"
	"math"
	"math/rand"

	"spacedc/internal/obs"
	"spacedc/internal/resilience"
	"spacedc/internal/sched"
	"spacedc/internal/workload"
)

// NetworkConfig is the constellation's delivery path as the QoS engine
// sees it: a fluid FIFO with the deliverable capacity and uncongested base
// latency measured from netsim runs (see CalibrateNetwork), so admitted
// requests experience the same saturation point the flow-level simulator
// produces without paying a per-request co-simulation.
type NetworkConfig struct {
	// CapacityBps is the deliverable throughput at saturation.
	CapacityBps float64
	// BaseLatencySec is the uncongested delivery latency added to every
	// completed request (propagation + store-and-forward floor).
	BaseLatencySec float64
	// QueueBits caps the transfer backlog; arrivals beyond it are shed as
	// overflow. Zero means 5 s × CapacityBps.
	QueueBits float64
}

// withDefaults fills zero fields.
func (n NetworkConfig) withDefaults() NetworkConfig {
	if n.QueueBits == 0 {
		n.QueueBits = 5 * n.CapacityBps
	}
	return n
}

// ComputeConfig is the SµDC compute stage: delivered requests queue per
// class and launch as batches on the device model, reusing the sched
// batch executor so thermal throttling and SEU recovery behave exactly as
// in the pipeline simulator.
type ComputeConfig struct {
	// Proc is the device model (sched.NewDeviceProcessor or a synthetic).
	Proc sched.Processor
	// PixelsPerFrame sizes one frame's inference input. Zero means 1e6.
	PixelsPerFrame float64
	// TargetBatch is the preferred batch size in frames.
	TargetBatch int
	// MaxBatch caps one batch. Zero means TargetBatch.
	MaxBatch int
	// MaxWaitSec bounds how long the oldest delivered request waits before
	// a partial batch launches. Zero means 5 s.
	MaxWaitSec float64
	// QueueLimit caps queued frames across classes; overflow is shed. Zero
	// means 64 × TargetBatch.
	QueueLimit int
}

// withDefaults fills zero fields.
func (c ComputeConfig) withDefaults() ComputeConfig {
	if c.PixelsPerFrame == 0 {
		c.PixelsPerFrame = 1e6
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = c.TargetBatch
	}
	if c.MaxWaitSec == 0 {
		c.MaxWaitSec = 5
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 64 * c.TargetBatch
	}
	return c
}

// FaultKind names one campaign fault mechanism.
type FaultKind int

// Campaign fault kinds.
const (
	// GroundOutage scales the network capacity by Factor for the window
	// (ground-station or downlink loss forcing traffic onto fewer paths).
	GroundOutage FaultKind = iota
	// SEUBurst raises the compute upset hazard to HazardPerSec for the
	// window (SAA pass or solar particle event).
	SEUBurst
	// RadiatorDerate scales the governor's heat-rejection capacity by
	// Factor for the window (radiator damage or attitude constraint).
	RadiatorDerate
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case GroundOutage:
		return "ground-outage"
	case SEUBurst:
		return "seu-burst"
	case RadiatorDerate:
		return "radiator-derate"
	}
	return fmt.Sprintf("fault-kind-%d", int(k))
}

// Fault is one campaign window.
type Fault struct {
	Kind     FaultKind
	StartSec float64
	EndSec   float64
	// Factor is the capacity multiplier during the window (GroundOutage,
	// RadiatorDerate).
	Factor float64
	// HazardPerSec is the SEU rate during the window (SEUBurst).
	HazardPerSec float64
}

// validate checks one fault window.
func (f Fault) validate() error {
	if f.EndSec <= f.StartSec || f.StartSec < 0 {
		return fmt.Errorf("qos: fault window [%v, %v) is empty or negative", f.StartSec, f.EndSec)
	}
	switch f.Kind {
	case GroundOutage, RadiatorDerate:
		if f.Factor <= 0 || f.Factor > 1 || math.IsNaN(f.Factor) {
			return fmt.Errorf("qos: %s factor %v outside (0, 1]", f.Kind, f.Factor)
		}
	case SEUBurst:
		if f.HazardPerSec <= 0 || math.IsNaN(f.HazardPerSec) || math.IsInf(f.HazardPerSec, 0) {
			return fmt.Errorf("qos: seu-burst hazard %v must be positive", f.HazardPerSec)
		}
	default:
		return fmt.Errorf("qos: unknown fault kind %d", int(f.Kind))
	}
	return nil
}

// Policy bundles the QoS mechanisms one scenario runs with.
type Policy struct {
	// Name labels the policy in reports.
	Name string
	// Admission is the per-class token-bucket set; empty admits all.
	Admission []ClassPolicy
	// DeadlineShed drops requests whose predicted completion already
	// misses their deadline instead of letting them rot in queues.
	DeadlineShed bool
	// Retry re-submits shed and failed requests with backoff.
	Retry RetryPolicy
	// ClassBlind disables the engine's strict-priority queue discipline:
	// both stages serve in arrival order across classes and overflow drops
	// the arriving request instead of evicting lower-priority work. The
	// "open" baseline sets it so that any priority protection comes from
	// policy mechanisms, not engine structure.
	ClassBlind bool
}

// Scenario is one end-to-end QoS run.
type Scenario struct {
	Name     string
	Workload workload.Spec
	Network  NetworkConfig
	Compute  ComputeConfig
	Policy   Policy
	// Governor, when set, throttles the compute stage thermally and drives
	// the degradation controller through its transition events. The engine
	// instruments it on an internal registry and calls Reset, so a fresh
	// governor per run is not required but shared governors must not run
	// concurrently.
	Governor *resilience.Governor
	// Recovery is the mitigation policy for SEU-upset batches (nil = no
	// mitigation: upset batches are corrupted and their requests retried
	// or failed).
	Recovery sched.RecoveryPolicy
	// Campaign is the fault schedule.
	Campaign []Fault
	// StepSec is the engine step. Zero means 0.1.
	StepSec float64
	// Seed drives retry jitter and fault sampling.
	Seed int64
	// Obs, when non-nil, receives the run's metrics and per-step samples.
	// The degradation control loop deliberately closes the loop from the
	// governor's events — the documented exception to the
	// observability-never-feeds-back rule — but it runs on an internal
	// registry either way, so instrumented runs stay bit-identical to bare
	// ones.
	Obs *obs.Registry
}

// ClassResult is one priority class's outcome.
type ClassResult struct {
	Name    string
	Offered int // first-attempt arrivals
	// Admitted counts attempts that passed admission and entered the
	// network stage (retries included).
	Admitted  int
	Completed int // delivered and processed uncorrupted
	// Shed* count permanently abandoned requests by the stage that gave up
	// on them.
	ShedAdmission int // token buckets dry (and retries exhausted)
	ShedDeadline  int // predicted completion past deadline
	ShedOverflow  int // network/compute/retry queue caps
	Failed        int // upset-corrupted with no attempts left
	InFlight      int // still queued when the run ended

	DeadlineMet    int // completions inside the class SLO
	MeanLatencySec float64
	P95LatencySec  float64
	P99LatencySec  float64
	MaxLatencySec  float64

	// SLOAttainment is DeadlineMet / Offered — the end-to-end probability
	// a request got service inside its SLO.
	SLOAttainment float64
	// ShedFraction is (all sheds + failures) / Offered.
	ShedFraction float64
	// GoodputPerSec is DeadlineMet / duration.
	GoodputPerSec float64
}

// Result is one scenario's outcome.
type Result struct {
	Name    string
	Policy  string
	Classes []ClassResult

	Offered   int
	Admitted  int
	Completed int
	Shed      int
	Failed    int
	Retries   int // retry attempts scheduled

	Batches     int
	Upsets      int
	Resets      int
	EnergyJ     float64
	BusySec     float64
	ThrottleSec float64

	// PeakBacklogSec is the worst momentary drain-time estimate (network
	// backlog at capacity + compute backlog at service rate).
	PeakBacklogSec float64
	// RecoverySec measures graceful degradation: the time from the last
	// campaign fault clearing until the backlog estimate returns to its
	// pre-campaign baseline and holds there. Negative when the run ended
	// before recovering (or no campaign ran).
	RecoverySec float64
}

// item is one request in flight through the pipeline. Queues of items are
// bounded by the stage caps, so engine memory is flat in total request
// count.
type item struct {
	arrival float64 // first-attempt arrival (deadlines and latency measure from here)
	ready   float64 // network delivery time once the transfer completes
	bits    float64 // network payload remaining
	class   int32
	attempt int32 // failed attempts so far
}

// retryHeap is a typed min-heap on due time (the sched eventHeap pattern:
// no interface boxing, no allocation per push beyond slice growth).
type retryEntry struct {
	due float64
	it  item
}

type retryHeap []retryEntry

func (h *retryHeap) push(e retryEntry) {
	*h = append(*h, e)
	j := len(*h) - 1
	for {
		i := (j - 1) / 2
		if i == j || (*h)[i].due <= (*h)[j].due {
			break
		}
		(*h)[i], (*h)[j] = (*h)[j], (*h)[i]
		j = i
	}
}

func (h *retryHeap) pop() retryEntry {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && old[j2].due < old[j1].due {
			j = j2
		}
		if old[i].due <= old[j].due {
			break
		}
		old[i], old[j] = old[j], old[i]
		i = j
	}
	e := old[n]
	*h = old[:n]
	return e
}

// shed reasons for the class tallies.
const (
	shedAdmission = iota
	shedDeadline
	shedOverflow
	shedFailed
)

// engine is the per-run state.
type engine struct {
	sc      Scenario
	classes []workload.Class
	adm     *Admission
	deg     *Degrader
	rng     *rand.Rand
	retry   RetryPolicy

	// Both stages queue per class in strict priority order: class 0 is
	// served first and, on overflow, the lowest-priority tail is evicted
	// before a higher-priority arrival is turned away.
	netQ         [][]item
	netBits      []float64 // queued bits per class
	netQBits     float64   // total queued bits
	compQ        [][]item
	compFramesBy []int
	compFrames   int
	retries      retryHeap
	busyUntil    float64
	taken        []int // batch-formation scratch, reused across launches
	pops         []int // class-blind network-service scratch

	hazard      float64 // current campaign SEU rate
	svcPerFrame float64 // EWMA of batch seconds per frame (backlog estimate)

	lat      []*obs.Histogram // per-class latency accumulators
	perClass []ClassResult
	res      Result
}

// Run executes one scenario.
func Run(sc Scenario) (Result, error) {
	if sc.StepSec == 0 {
		sc.StepSec = 0.1
	}
	sc.Network = sc.Network.withDefaults()
	if sc.Compute.TargetBatch > 0 {
		sc.Compute = sc.Compute.withDefaults()
	}
	sc.Policy.Retry = sc.Policy.Retry.withDefaults()
	if err := validate(sc); err != nil {
		return Result{}, err
	}
	gen, err := workload.New(sc.Workload)
	if err != nil {
		return Result{}, err
	}
	adm, err := NewAdmission(sc.Policy.Admission)
	if err != nil {
		return Result{}, err
	}

	e := &engine{
		sc:           sc,
		classes:      gen.Classes(),
		adm:          adm,
		deg:          NewDegrader(0),
		rng:          rand.New(rand.NewSource(sc.Seed)),
		retry:        sc.Policy.Retry,
		netQ:         make([][]item, len(gen.Classes())),
		netBits:      make([]float64, len(gen.Classes())),
		compQ:        make([][]item, len(gen.Classes())),
		compFramesBy: make([]int, len(gen.Classes())),
		taken:        make([]int, len(gen.Classes())),
		pops:         make([]int, len(gen.Classes())),
		svcPerFrame:  probeServiceSec(sc.Compute),
	}
	e.lat = make([]*obs.Histogram, len(e.classes))
	e.perClass = make([]ClassResult, len(e.classes))
	for i, c := range e.classes {
		e.lat[i] = obs.NewHistogram(obs.LatencyBuckets)
		e.perClass[i].Name = c.Name
	}

	// The degradation loop always runs on an internal sim-clock registry:
	// the governor's transition events are drained into the Degrader
	// synchronously each step (and forwarded to the external registry when
	// one is attached), so control decisions are identical whether or not
	// the caller observes the run.
	ireg := obs.New()
	var events <-chan obs.Event
	if gov := sc.Governor; gov != nil {
		gov.Reset()
		gov.Instrument(ireg)
		ch, cancel := ireg.Subscribe(4096)
		defer cancel()
		events = ch
	}

	e.run(gen, ireg, events)

	e.finish(sc.Workload.DurationSec)

	// Mirror the governor's internal instrumentation (transition counters,
	// thermal gauges) onto the caller's registry so the control loop's
	// activity is visible without subscribing to the live event stream.
	if ext := sc.Obs; ext != nil && sc.Governor != nil {
		snap := ireg.Snapshot()
		for _, c := range snap.Counters {
			ext.Counter(c.Name).Add(int(c.Value))
		}
		for _, g := range snap.Gauges {
			ext.Gauge(g.Name).Set(g.Value)
		}
	}
	return e.res, nil
}

// validate checks the composed scenario.
func validate(sc Scenario) error {
	if sc.Network.CapacityBps <= 0 || math.IsNaN(sc.Network.CapacityBps) || math.IsInf(sc.Network.CapacityBps, 0) {
		return fmt.Errorf("qos: non-positive network capacity %v", sc.Network.CapacityBps)
	}
	if sc.Network.BaseLatencySec < 0 || math.IsNaN(sc.Network.BaseLatencySec) {
		return fmt.Errorf("qos: negative base latency %v", sc.Network.BaseLatencySec)
	}
	if sc.Compute.Proc == nil {
		return fmt.Errorf("qos: nil compute processor")
	}
	if sc.Compute.TargetBatch <= 0 {
		return fmt.Errorf("qos: non-positive target batch %d", sc.Compute.TargetBatch)
	}
	if sc.Compute.MaxBatch < sc.Compute.TargetBatch {
		return fmt.Errorf("qos: max batch %d below target %d", sc.Compute.MaxBatch, sc.Compute.TargetBatch)
	}
	if sc.StepSec <= 0 || math.IsNaN(sc.StepSec) {
		return fmt.Errorf("qos: non-positive step %v", sc.StepSec)
	}
	if err := sc.Policy.Retry.validate(); err != nil {
		return err
	}
	for _, f := range sc.Campaign {
		if err := f.validate(); err != nil {
			return err
		}
	}
	return nil
}

// probeServiceSec seeds the backlog estimator with the device's nominal
// per-frame service time.
func probeServiceSec(c ComputeConfig) float64 {
	secs, _ := c.Proc.Process(c.TargetBatch, float64(c.TargetBatch)*c.PixelsPerFrame)
	if secs <= 0 || math.IsNaN(secs) || math.IsInf(secs, 0) {
		return 0
	}
	return secs / float64(c.TargetBatch)
}

// run is the time-stepped main loop.
func (e *engine) run(gen *workload.Generator, ireg *obs.Registry, events <-chan obs.Event) {
	sc := e.sc
	ext := sc.Obs
	dt := sc.StepSec
	dur := sc.Workload.DurationSec
	gov := sc.Governor

	// Campaign bookkeeping: radiator derates mutate the governor's
	// capacity at window edges; saved restores it.
	saved := make([]float64, len(sc.Campaign))
	applied := make([]bool, len(sc.Campaign))
	campStart, campEnd := math.Inf(1), math.Inf(-1)
	for _, f := range sc.Campaign {
		campStart = math.Min(campStart, f.StartSec)
		campEnd = math.Max(campEnd, f.EndSec)
	}

	// Recovery tracking: the backlog baseline is sampled just before the
	// campaign opens; after it clears, recovery is the first time the
	// backlog returns to (and holds at) that baseline.
	const recoverHoldSec = 2.0
	baseline, holdStart := 0.0, math.NaN()
	e.res.RecoverySec = -1

	extBacklog := ext.Gauge("qos.backlog_sec")
	extScale := ext.Gauge("qos.admission_scale")

	pending, ok := gen.Next()
	for t := 0.0; t < dur; t += dt {
		stepEnd := t + dt

		// Campaign windows.
		netFactor := 1.0
		e.hazard = 0
		for i, f := range sc.Campaign {
			active := t >= f.StartSec && t < f.EndSec
			switch f.Kind {
			case GroundOutage:
				if active {
					netFactor *= f.Factor
				}
			case SEUBurst:
				if active {
					e.hazard += f.HazardPerSec
				}
			case RadiatorDerate:
				if gov == nil {
					continue
				}
				if active && !applied[i] {
					saved[i] = gov.CapacityW
					gov.CapacityW *= f.Factor
					applied[i] = true
				} else if !active && applied[i] {
					gov.CapacityW = saved[i]
					applied[i] = false
				}
			}
		}

		// Governor shed check (emits shed transitions consumed below).
		if gov != nil {
			gov.KeepFactor(t)
		}

		// Due retries re-enter admission before this step's fresh
		// arrivals (they have been waiting longer).
		for len(e.retries) > 0 && e.retries[0].due < stepEnd {
			re := e.retries.pop()
			now := re.due
			if now < t {
				now = t
			}
			e.arrive(now, re.it)
		}

		// Fresh arrivals.
		for ok && pending.TSec < stepEnd {
			cls := pending.Class
			e.perClass[cls].Offered++
			e.arrive(pending.TSec, item{
				arrival: pending.TSec,
				bits:    e.classes[cls].Bits,
				class:   int32(cls),
			})
			pending, ok = gen.Next()
		}

		// Network stage: fluid FIFO at the effective capacity.
		e.serveNetwork(stepEnd, sc.Network.CapacityBps*netFactor*dt)

		// Compute stage: launch batches while the device frees up inside
		// this step.
		e.serveCompute(t, stepEnd)

		// Drain the governor's transition events into the degradation
		// controller (and forward them to the external registry).
		for drained := events == nil; !drained; {
			select {
			case ev := <-events:
				e.deg.Observe(ev)
				if ext != nil {
					ext.SetTime(ev.TimeSec)
					ext.Emit(ev.Name, ev.Kind, ev.Value)
				}
			default:
				drained = true
			}
		}

		// Backlog estimate and recovery tracking.
		backlog := e.backlogSec(netFactor)
		if backlog > e.res.PeakBacklogSec {
			e.res.PeakBacklogSec = backlog
		}
		if len(sc.Campaign) > 0 {
			if stepEnd <= campStart {
				baseline = backlog
			} else if t >= campEnd && e.res.RecoverySec < 0 {
				if backlog <= baseline+0.1*(baseline+1) {
					if math.IsNaN(holdStart) {
						holdStart = t
					}
					if stepEnd-holdStart >= recoverHoldSec {
						e.res.RecoverySec = holdStart - campEnd
					}
				} else {
					holdStart = math.NaN()
				}
			}
		}
		if ext != nil {
			ext.SetTime(stepEnd)
			extBacklog.Set(backlog)
			extScale.Set(e.deg.Scale())
			ext.Emit("qos.backlog_sec", "sample", backlog)
		}
		ireg.SetTime(stepEnd)
	}

	// Restore any still-applied radiator derates (campaigns ending at the
	// run boundary).
	for i := range applied {
		if applied[i] && gov != nil {
			gov.CapacityW = saved[i]
		}
	}
}

// arrive runs one attempt through deadline shedding and admission into the
// network queue.
func (e *engine) arrive(now float64, it item) {
	cls := int(it.class)
	cl := e.classes[cls]

	if e.sc.Policy.DeadlineShed {
		est := now - it.arrival + e.predictedLatencySec(cls, it.bits)
		if est > cl.DeadlineSec {
			// A later retry only sees less deadline budget; deadline
			// sheds are final.
			e.shed(cls, shedDeadline)
			return
		}
	}
	if !e.adm.Admit(now, cls, e.deg.Scale()) {
		e.reject(now, it, shedAdmission)
		return
	}
	// On overflow, evict lower-priority tail items before turning a
	// higher-priority arrival away (drop-tail when class-blind).
	for e.netQBits+it.bits > e.sc.Network.QueueBits {
		if e.sc.Policy.ClassBlind || !e.evictBelow(now, cls) {
			e.reject(now, it, shedOverflow)
			return
		}
	}
	e.perClass[cls].Admitted++
	e.res.Admitted++
	e.netQBits += it.bits
	e.netBits[cls] += it.bits
	e.netQ[cls] = append(e.netQ[cls], it)
}

// evictBelow drops the newest queued transfer of the lowest-priority class
// strictly below cls, reporting whether anything could be evicted. The
// evicted request takes the retry path like any other shed.
func (e *engine) evictBelow(now float64, cls int) bool {
	for j := len(e.netQ) - 1; j > cls; j-- {
		q := e.netQ[j]
		if len(q) == 0 {
			continue
		}
		victim := q[len(q)-1]
		e.netQ[j] = q[:len(q)-1]
		e.netQBits -= victim.bits
		e.netBits[j] -= victim.bits
		e.reject(now, victim, shedOverflow)
		return true
	}
	return false
}

// reject routes a failed attempt to the retry queue, or sheds it when
// retries are disabled, exhausted, or backed up. A retried request
// re-transfers its full payload.
func (e *engine) reject(now float64, it item, reason int) {
	cls := int(it.class)
	if e.retry.enabled() && int(it.attempt)+1 < e.retry.MaxAttempts && len(e.retries) < e.retry.QueueLimit {
		it.attempt++
		it.bits = e.classes[cls].Bits
		e.retries.push(retryEntry{due: now + e.retry.backoff(int(it.attempt), e.rng), it: it})
		e.res.Retries++
		return
	}
	e.shed(cls, reason)
}

// shed records one permanently abandoned request.
func (e *engine) shed(cls, reason int) {
	switch reason {
	case shedAdmission:
		e.perClass[cls].ShedAdmission++
		e.res.Shed++
	case shedDeadline:
		e.perClass[cls].ShedDeadline++
		e.res.Shed++
	case shedOverflow:
		e.perClass[cls].ShedOverflow++
		e.res.Shed++
	case shedFailed:
		e.perClass[cls].Failed++
		e.res.Failed++
	}
}

// predictedLatencySec estimates a new arrival's completion latency under
// strict priority: only same-or-higher-priority backlog is ahead of it —
// the network bits to drain at nominal capacity, then the compute frames
// at the observed service rate.
func (e *engine) predictedLatencySec(cls int, bits float64) float64 {
	if e.sc.Policy.ClassBlind {
		cls = len(e.netBits) - 1 // everything queued is ahead of a blind arrival
	}
	aheadBits := bits
	aheadFrames := 0
	for j := 0; j <= cls; j++ {
		aheadBits += e.netBits[j]
		aheadFrames += e.compFramesBy[j]
	}
	return aheadBits/e.sc.Network.CapacityBps +
		e.sc.Network.BaseLatencySec +
		float64(aheadFrames)*e.svcPerFrame
}

// backlogSec is the drain-time estimate the recovery metric tracks.
func (e *engine) backlogSec(netFactor float64) float64 {
	c := e.sc.Network.CapacityBps * netFactor
	if c < 1 {
		c = 1
	}
	return e.netQBits/c + float64(e.compFrames)*e.svcPerFrame
}

// serveNetwork drains the transfer queues in strict priority order with
// this step's bit budget and moves completed transfers into the per-class
// compute queues. Class-blind policies serve the oldest waiter instead.
func (e *engine) serveNetwork(stepEnd, budget float64) {
	if e.sc.Policy.ClassBlind {
		e.serveNetworkBlind(stepEnd, budget)
		return
	}
	for cls := range e.netQ {
		if budget <= 0 {
			break
		}
		q := e.netQ[cls]
		popped := 0
		for popped < len(q) && budget > 0 {
			it := &q[popped]
			if it.bits > budget {
				it.bits -= budget
				e.netQBits -= budget
				e.netBits[cls] -= budget
				budget = 0
				break
			}
			budget -= it.bits
			e.netQBits -= it.bits
			e.netBits[cls] -= it.bits
			it.bits = 0
			it.ready = stepEnd
			e.deliver(stepEnd, *it)
			popped++
		}
		if popped > 0 {
			n := copy(q, q[popped:])
			e.netQ[cls] = q[:n]
		}
		if e.netBits[cls] < 0 {
			e.netBits[cls] = 0
		}
	}
	if e.netQBits < 0 {
		e.netQBits = 0
	}
}

// serveNetworkBlind drains the transfer queues in arrival order across
// classes: each grant goes to the longest-waiting head, the way a shared
// FIFO would serve with no notion of priority.
func (e *engine) serveNetworkBlind(stepEnd, budget float64) {
	pops := e.pops
	for i := range pops {
		pops[i] = 0
	}
	for budget > 0 {
		best, bestArr := -1, math.Inf(1)
		for cls := range e.netQ {
			q := e.netQ[cls]
			if pops[cls] < len(q) && q[pops[cls]].arrival < bestArr {
				best, bestArr = cls, q[pops[cls]].arrival
			}
		}
		if best < 0 {
			break
		}
		it := &e.netQ[best][pops[best]]
		if it.bits > budget {
			it.bits -= budget
			e.netQBits -= budget
			e.netBits[best] -= budget
			break
		}
		budget -= it.bits
		e.netQBits -= it.bits
		e.netBits[best] -= it.bits
		it.bits = 0
		it.ready = stepEnd
		e.deliver(stepEnd, *it)
		pops[best]++
	}
	for cls := range e.netQ {
		if p := pops[cls]; p > 0 {
			n := copy(e.netQ[cls], e.netQ[cls][p:])
			e.netQ[cls] = e.netQ[cls][:n]
		}
		if e.netBits[cls] < 0 {
			e.netBits[cls] = 0
		}
	}
	if e.netQBits < 0 {
		e.netQBits = 0
	}
}

// deliver queues one transferred request for compute, shedding on a full
// frame queue (evicting lower-priority frames first).
func (e *engine) deliver(now float64, it item) {
	cls := int(it.class)
	frames := e.classes[cls].Frames
	for e.compFrames+frames > e.sc.Compute.QueueLimit {
		if e.sc.Policy.ClassBlind || !e.evictComputeBelow(now, cls) {
			e.reject(now, it, shedOverflow)
			return
		}
	}
	e.compFrames += frames
	e.compFramesBy[cls] += frames
	e.compQ[cls] = append(e.compQ[cls], it)
}

// evictComputeBelow drops the newest queued compute request of the
// lowest-priority class strictly below cls.
func (e *engine) evictComputeBelow(now float64, cls int) bool {
	for j := len(e.compQ) - 1; j > cls; j-- {
		q := e.compQ[j]
		if len(q) == 0 {
			continue
		}
		victim := q[len(q)-1]
		e.compQ[j] = q[:len(q)-1]
		f := e.classes[victim.class].Frames
		e.compFrames -= f
		e.compFramesBy[j] -= f
		victim.bits = e.classes[j].Bits
		e.reject(now, victim, shedOverflow)
		return true
	}
	return false
}

// serveCompute launches batches while the device is free within the step.
func (e *engine) serveCompute(t, stepEnd float64) {
	for {
		launch := t
		if e.busyUntil > launch {
			launch = e.busyUntil
		}
		if launch >= stepEnd || !e.shouldLaunch(launch) {
			return
		}
		e.launchBatch(launch)
	}
}

// shouldLaunch applies the batching policy at time t.
func (e *engine) shouldLaunch(t float64) bool {
	if e.compFrames == 0 {
		return false
	}
	if e.compFrames >= e.sc.Compute.TargetBatch {
		return true
	}
	oldest := math.Inf(1)
	for _, q := range e.compQ {
		if len(q) > 0 && q[0].ready < oldest {
			oldest = q[0].ready
		}
	}
	return t-oldest >= e.sc.Compute.MaxWaitSec
}

// launchBatch forms a batch in strict priority order and executes it on
// the device under the current thermal and hazard regime.
func (e *engine) launchBatch(launch float64) {
	cfg := e.sc.Compute
	frames := 0

	// Take whole items in strict priority order — class 0 drains fully
	// before class 1 contributes — until the batch is full. The first item
	// is always taken so an oversized request cannot wedge the queue, and
	// the fill stops at the first item that does not fit (skipping it for
	// a smaller lower-priority one would invert the priority order).
	taken := e.taken
	for i := range taken {
		taken[i] = 0
	}
	total := 0
	if e.sc.Policy.ClassBlind {
		// Arrival-order fill: each slot goes to the longest-delivered head.
		for {
			best, bestReady := -1, math.Inf(1)
			for cls := range e.compQ {
				q := e.compQ[cls]
				if taken[cls] < len(q) && q[taken[cls]].ready < bestReady {
					best, bestReady = cls, q[taken[cls]].ready
				}
			}
			if best < 0 {
				break
			}
			f := e.classes[best].Frames
			if total > 0 && frames+f > cfg.MaxBatch {
				break
			}
			taken[best]++
			total++
			frames += f
			if frames >= cfg.MaxBatch {
				break
			}
		}
	} else {
	fill:
		for cls := range e.compQ {
			for _, it := range e.compQ[cls] {
				f := e.classes[it.class].Frames
				if total > 0 && frames+f > cfg.MaxBatch {
					break fill
				}
				taken[cls]++
				total++
				frames += f
				if frames >= cfg.MaxBatch {
					break fill
				}
			}
		}
	}
	if total == 0 {
		return
	}

	secs, joules := cfg.Proc.Process(frames, float64(frames)*cfg.PixelsPerFrame)
	if secs < 0 || math.IsNaN(secs) || math.IsInf(secs, 0) {
		secs = 0
	}
	if gov := e.sc.Governor; gov != nil {
		f := gov.Factor(launch)
		if f < 0.01 {
			f = 0.01
		}
		if f < 1 {
			stretched := secs / f
			e.res.ThrottleSec += stretched - secs
			secs = stretched
		}
	}

	good := true
	if e.hazard > 0 || e.sc.Recovery != nil {
		pol := e.sc.Recovery
		if pol == nil {
			pol = sched.NoMitigation()
		}
		out := pol.Execute(sched.BatchExec{
			Start:      launch,
			Frames:     frames,
			BaseSecs:   secs,
			BaseJoules: joules,
			Hazard:     e.hazardAt,
			Rng:        e.rng,
		})
		secs, joules = out.Secs, out.Joules
		good = out.Good
		e.res.Upsets += out.Upsets
		e.res.Resets += out.Resets
		if secs < 0 || math.IsNaN(secs) || math.IsInf(secs, 0) {
			secs = 0
		}
	}

	done := launch + secs
	e.busyUntil = done
	e.res.EnergyJ += joules
	e.res.BusySec += secs
	e.res.Batches++
	if gov := e.sc.Governor; gov != nil {
		gov.Dissipated(launch, secs, joules)
	}

	// Settle the taken items: completion or corruption.
	for cls, n := range taken {
		for _, it := range e.compQ[cls][:n] {
			e.compFrames -= e.classes[it.class].Frames
			e.compFramesBy[cls] -= e.classes[it.class].Frames
			if good {
				lat := done - it.arrival + e.sc.Network.BaseLatencySec
				e.lat[cls].Observe(lat)
				e.perClass[cls].Completed++
				e.res.Completed++
				if lat <= e.classes[cls].DeadlineSec {
					e.perClass[cls].DeadlineMet++
				}
			} else {
				it.bits = e.classes[cls].Bits // a retry re-transfers the payload
				e.reject(done, it, shedFailed)
			}
		}
		rest := copy(e.compQ[cls], e.compQ[cls][n:])
		e.compQ[cls] = e.compQ[cls][:rest]
	}

	// Fold the realized service rate into the backlog estimator.
	if frames > 0 && secs > 0 {
		e.svcPerFrame = 0.7*e.svcPerFrame + 0.3*secs/float64(frames)
	}
}

// hazardAt is the campaign SEU rate as a hazard function for BatchExec.
func (e *engine) hazardAt(float64) float64 { return e.hazard }

// finish assembles the result.
func (e *engine) finish(durationSec float64) {
	sc := e.sc
	e.res.Name = sc.Name
	e.res.Policy = sc.Policy.Name
	for cls := range e.perClass {
		c := &e.perClass[cls]
		c.InFlight = len(e.compQ[cls])
		h := e.lat[cls]
		if h.Count() > 0 {
			c.MeanLatencySec = h.Mean()
			c.P95LatencySec = h.Quantile(0.95)
			c.P99LatencySec = h.Quantile(0.99)
			c.MaxLatencySec = h.Max()
		}
		if c.Offered > 0 {
			c.SLOAttainment = float64(c.DeadlineMet) / float64(c.Offered)
			c.ShedFraction = float64(c.ShedAdmission+c.ShedDeadline+c.ShedOverflow+c.Failed) / float64(c.Offered)
		}
		if durationSec > 0 {
			c.GoodputPerSec = float64(c.DeadlineMet) / durationSec
		}
		e.res.Offered += c.Offered
	}
	// Network-stage and pending-retry items count as in flight too.
	for cls := range e.netQ {
		e.perClass[cls].InFlight += len(e.netQ[cls])
	}
	for _, re := range e.retries {
		e.perClass[re.it.class].InFlight++
	}
	e.res.Classes = e.perClass

	if ext := sc.Obs; ext != nil {
		ext.SetTime(durationSec)
		ext.Counter("qos.offered").Add(e.res.Offered)
		ext.Counter("qos.admitted").Add(e.res.Admitted)
		ext.Counter("qos.completed").Add(e.res.Completed)
		ext.Counter("qos.shed").Add(e.res.Shed)
		ext.Counter("qos.failed").Add(e.res.Failed)
		ext.Counter("qos.retries").Add(e.res.Retries)
		ext.Counter("qos.batches").Add(e.res.Batches)
		ext.Counter("qos.upsets").Add(e.res.Upsets)
		ext.Gauge("qos.energy_j").Set(e.res.EnergyJ)
		ext.Gauge("qos.peak_backlog_sec").Set(e.res.PeakBacklogSec)
		merged := ext.Histogram("qos.latency_secs", obs.LatencyBuckets)
		for _, h := range e.lat {
			merged.Merge(h)
		}
	}
}
