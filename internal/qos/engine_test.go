package qos

import (
	"math"
	"reflect"
	"testing"

	"spacedc/internal/discard"
	"spacedc/internal/obs"
	"spacedc/internal/resilience"
	"spacedc/internal/workload"
)

// fpsProc is a synthetic device: a fixed frame rate and energy per frame.
type fpsProc struct{ fps, jPerFrame float64 }

func (p fpsProc) Process(frames int, pixels float64) (float64, float64) {
	return float64(frames) / p.fps, p.jPerFrame * float64(frames)
}

// testScenario is a pipeline sized for ~100 req/s of the default class mix
// (mean 70.5 Mbit and 2.85 frames per request): the network saturates at
// 7.05 Gbit/s and the device at 400 frames/s.
func testScenario(policy Policy) Scenario {
	return Scenario{
		Name: "test",
		Workload: workload.Spec{
			BaseRatePerSec: 50,
			DurationSec:    120,
			Seed:           7,
		},
		Network: NetworkConfig{CapacityBps: 7.05e9, BaseLatencySec: 0.1},
		Compute: ComputeConfig{
			Proc:        fpsProc{fps: 400, jPerFrame: 1},
			TargetBatch: 16,
			MaxBatch:    32,
			MaxWaitSec:  1,
		},
		Policy: policy,
		Seed:   11,
	}
}

func TestEngineUnderload(t *testing.T) {
	res, err := Run(testScenario(Policy{Name: "open"}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered < 5000 {
		t.Fatalf("offered %d requests, expected ≈6000", res.Offered)
	}
	if res.Shed > 0 || res.Failed > 0 {
		t.Fatalf("underloaded run shed %d / failed %d", res.Shed, res.Failed)
	}
	done := res.Completed
	inFlight := 0
	for _, c := range res.Classes {
		inFlight += c.InFlight
		if c.Offered == 0 {
			continue
		}
		if c.SLOAttainment < 0.95 {
			t.Errorf("class %s SLO attainment %.3f under light load", c.Name, c.SLOAttainment)
		}
		if c.P99LatencySec > 10 {
			t.Errorf("class %s p99 %.2f s under light load", c.Name, c.P99LatencySec)
		}
	}
	if done+inFlight != res.Offered {
		t.Errorf("accounting leak: %d completed + %d in flight ≠ %d offered", done, inFlight, res.Offered)
	}
	if res.Batches == 0 || res.EnergyJ == 0 {
		t.Error("no batches executed")
	}
}

func TestEngineDeterministic(t *testing.T) {
	sc := testScenario(mustPreset(t, PolicyPriorityRetry, 100))
	sc.Workload.BurstOnsets = []float64{40}
	sc.Workload.BurstPeakPerSec = 120
	sc.Campaign = mustCampaign(t, CampaignGroundOutage, 50, 20)
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated runs differ:\n%+v\nvs\n%+v", a, b)
	}
}

func TestEngineObsDoesNotPerturb(t *testing.T) {
	sc := testScenario(mustPreset(t, PolicyPriority, 100))
	sc.Workload.BurstOnsets = []float64{40}
	sc.Workload.BurstPeakPerSec = 120
	sc.Governor = testGovernor()
	sc.Campaign = mustCampaign(t, CampaignCombined, 50, 20)
	bare, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	sc.Obs = reg
	instrumented, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, instrumented) {
		t.Fatalf("observability perturbed the run:\n%+v\nvs\n%+v", bare, instrumented)
	}
	snap := reg.Snapshot()
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Error("instrumented run recorded no metrics")
	}
}

// testGovernor builds a governor whose radiator exactly matches the test
// device's dissipation (400 W at full tilt), so it only derates when a
// campaign halves its capacity.
func testGovernor() *resilience.Governor {
	return &resilience.Governor{
		CapacityW: 400,
		PeakW:     400,
		HeadroomJ: 10e3,
		Shed:      discard.Criterion{Name: "qos-test", Rate: 0.5},
	}
}

func mustPreset(t *testing.T, name string, cap float64) Policy {
	t.Helper()
	p, err := PresetPolicy(name, cap)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustCampaign(t *testing.T, name string, start, dur float64) []Fault {
	t.Helper()
	c, err := PresetCampaign(name, start, dur)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestGracefulDegradation is the flagship acceptance test: a disaster
// surge pushes offered load to ~2.3× the admission capacity, a
// ground-station outage lands mid-surge, and the priority policy must hold
// the urgent class's p99 inside its 30 s SLO by shedding best-effort load
// — then recover to the pre-fault backlog once the outage clears. The open
// baseline run shows what the policy buys: urgent attainment collapses
// when nothing protects it.
func TestGracefulDegradation(t *testing.T) {
	surge := func(policy Policy) Scenario {
		sc := testScenario(policy)
		sc.Workload.BaseRatePerSec = 80
		sc.Workload.DurationSec = 480
		sc.Workload.BurstOnsets = []float64{120}
		sc.Workload.BurstPeakPerSec = 150
		sc.Workload.BurstDecaySec = 90
		sc.Campaign = mustCampaign(t, CampaignGroundOutage, 150, 30)
		return sc
	}

	prio, err := Run(surge(mustPreset(t, PolicyPriorityRetry, 100)))
	if err != nil {
		t.Fatal(err)
	}
	open, err := Run(surge(mustPreset(t, PolicyOpen, 100)))
	if err != nil {
		t.Fatal(err)
	}

	urgent, bestEffort := prio.Classes[0], prio.Classes[2]
	if urgent.P99LatencySec > 30 {
		t.Errorf("urgent p99 %.2f s blew the 30 s SLO under the priority policy", urgent.P99LatencySec)
	}
	if urgent.SLOAttainment < 0.9 {
		t.Errorf("urgent SLO attainment %.3f under the priority policy, want ≥ 0.9", urgent.SLOAttainment)
	}
	if bestEffort.ShedFraction < 0.1 {
		t.Errorf("best-effort shed fraction %.3f — the overload was not absorbed by the sacrificial class", bestEffort.ShedFraction)
	}
	if bestEffort.ShedFraction <= urgent.ShedFraction {
		t.Errorf("shed ordering inverted: best-effort %.3f ≤ urgent %.3f", bestEffort.ShedFraction, urgent.ShedFraction)
	}
	if prio.RecoverySec < 0 {
		t.Error("backlog never recovered to baseline after the outage cleared")
	}
	if prio.RecoverySec > 180 {
		t.Errorf("recovery took %.1f s — not graceful", prio.RecoverySec)
	}

	// The open baseline demonstrates the contrast: with no admission or
	// priority protection the urgent class does measurably worse.
	openUrgent := open.Classes[0]
	if openUrgent.SLOAttainment >= urgent.SLOAttainment {
		t.Errorf("open-policy urgent attainment %.3f ≥ priority %.3f — the policy bought nothing",
			openUrgent.SLOAttainment, urgent.SLOAttainment)
	}
}

// TestEngineDegradationController verifies the governor-event control
// loop: a radiator derate mid-run must tighten admission (sheds rise)
// relative to the same run without the campaign, and the governor's
// transition events must surface on the external registry.
func TestEngineDegradationController(t *testing.T) {
	base := func() Scenario {
		sc := testScenario(mustPreset(t, PolicyPriority, 100))
		sc.Workload.BaseRatePerSec = 90
		sc.Workload.DurationSec = 240
		sc.Governor = testGovernor()
		return sc
	}

	calm, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	sc := base()
	sc.Campaign = mustCampaign(t, CampaignRadiatorDerate, 60, 120)
	reg := obs.New()
	sc.Obs = reg
	stressed, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	if stressed.Shed <= calm.Shed {
		t.Errorf("radiator derate did not tighten admission: %d sheds vs %d calm", stressed.Shed, calm.Shed)
	}
	if stressed.ThrottleSec == 0 {
		t.Error("derated governor never throttled the device")
	}
	snap := reg.Snapshot()
	derates := int64(0)
	for _, c := range snap.Counters {
		if c.Name == "resilience.governor.derate_transitions" {
			derates = c.Value
		}
	}
	if derates == 0 {
		t.Error("governor transition counters did not surface on the external registry")
	}
}

// TestEngineSEURetry: an SEU burst corrupts batches; with retry the
// affected requests are re-executed, without it they fail outright.
func TestEngineSEURetry(t *testing.T) {
	mk := func(policy Policy) Scenario {
		sc := testScenario(policy)
		sc.Campaign = mustCampaign(t, CampaignSEUBurst, 30, 60)
		return sc
	}
	noRetry, err := Run(mk(mustPreset(t, PolicyPriority, 100)))
	if err != nil {
		t.Fatal(err)
	}
	withRetry, err := Run(mk(mustPreset(t, PolicyPriorityRetry, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if noRetry.Upsets == 0 {
		t.Fatal("SEU burst produced no upsets")
	}
	if noRetry.Failed == 0 {
		t.Error("corrupted batches produced no failures without retry")
	}
	if withRetry.Retries == 0 {
		t.Error("retry policy scheduled no retries under the SEU burst")
	}
	if withRetry.Failed >= noRetry.Failed {
		t.Errorf("retry did not reduce failures: %d with vs %d without", withRetry.Failed, noRetry.Failed)
	}
}

func TestEngineValidation(t *testing.T) {
	bad := []func(*Scenario){
		func(s *Scenario) { s.Network.CapacityBps = 0 },
		func(s *Scenario) { s.Network.BaseLatencySec = -1 },
		func(s *Scenario) { s.Compute.Proc = nil },
		func(s *Scenario) { s.Compute.TargetBatch = 0 },
		func(s *Scenario) { s.StepSec = -0.1 },
		func(s *Scenario) { s.Workload.BaseRatePerSec = 0 },
		func(s *Scenario) { s.Policy.Retry = RetryPolicy{MaxAttempts: 3, BackoffFactor: 0.5} },
		func(s *Scenario) { s.Policy.Admission = []ClassPolicy{{RatePerSec: -1}} },
		func(s *Scenario) { s.Campaign = []Fault{{Kind: GroundOutage, StartSec: 10, EndSec: 5, Factor: 0.5}} },
		func(s *Scenario) { s.Campaign = []Fault{{Kind: GroundOutage, StartSec: 0, EndSec: 5, Factor: 0}} },
		func(s *Scenario) { s.Campaign = []Fault{{Kind: SEUBurst, StartSec: 0, EndSec: 5}} },
		func(s *Scenario) { s.Campaign = []Fault{{Kind: FaultKind(99), StartSec: 0, EndSec: 5}} },
	}
	for i, mutate := range bad {
		sc := testScenario(Policy{})
		mutate(&sc)
		if _, err := Run(sc); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}

// TestEngineAllocsFlat is the pipeline twin of the generator's alloc
// guard: 4× the request volume through the full engine must not allocate
// meaningfully more, because every queue is bounded by policy caps, not by
// demand.
func TestEngineAllocsFlat(t *testing.T) {
	run := func(rate float64) func() {
		return func() {
			sc := testScenario(mustPreset(t, PolicyPriorityRetry, 100))
			sc.Workload.BaseRatePerSec = rate
			sc.Workload.DurationSec = 240
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Offered == 0 {
				t.Fatal("no requests offered")
			}
		}
	}
	low := testing.AllocsPerRun(3, run(100))
	high := testing.AllocsPerRun(3, run(400))
	if high > low*1.5+64 {
		t.Errorf("4× load cost %v allocs vs %v: engine queues are not bounded", high, low)
	}
}

func TestCalibrationSanity(t *testing.T) {
	// Not a netsim run (covered in the experiments package, where the
	// shared calibration is exercised end to end) — just the defaulting
	// and guard rails around the measured numbers.
	cfg := NetworkConfig{CapacityBps: 1e9, BaseLatencySec: 0.2}.withDefaults()
	if cfg.QueueBits != 5e9 {
		t.Errorf("default queue %v, want 5e9", cfg.QueueBits)
	}
	if math.IsNaN(cfg.BaseLatencySec) {
		t.Error("NaN latency")
	}
}
