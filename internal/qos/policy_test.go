package qos

import (
	"math"
	"math/rand"
	"testing"

	"spacedc/internal/obs"
)

func TestAdmissionTokenBucket(t *testing.T) {
	a, err := NewAdmission([]ClassPolicy{{RatePerSec: 10, Burst: 5}})
	if err != nil {
		t.Fatal(err)
	}
	// The bucket starts full: exactly Burst admits at t=0.
	for i := 0; i < 5; i++ {
		if !a.Admit(0, 0, 1) {
			t.Fatalf("admit %d rejected with a full bucket", i)
		}
	}
	if a.Admit(0, 0, 1) {
		t.Fatal("admitted past the burst with no refill")
	}
	// A partial second refills at RatePerSec.
	n := 0
	for i := 0; i < 20; i++ {
		if a.Admit(0.3, 0, 1) {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("0.3 s refill admitted %d, want 3", n)
	}
	// A long idle stretch refills at most the burst depth.
	n = 0
	for i := 0; i < 20; i++ {
		if a.Admit(10, 0, 1) {
			n++
		}
	}
	if n != 5 {
		t.Fatalf("10 s refill admitted %d, want burst-capped 5", n)
	}
	if got := a.TotalRatePerSec(); got != 10 {
		t.Fatalf("TotalRatePerSec = %v, want 10", got)
	}
}

func TestAdmissionScaleThrottlesRefill(t *testing.T) {
	a, err := NewAdmission([]ClassPolicy{{RatePerSec: 10, Burst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	a.Admit(0, 0, 1) // drain the single-token bucket
	n := 0
	for i := 0; i < 20; i++ {
		if a.Admit(1, 0, 0.2) { // 20% degraded refill: 2 tokens/s, capped by burst 1
			n++
		}
	}
	if n != 1 {
		t.Fatalf("degraded refill admitted %d, want 1 (burst cap)", n)
	}
}

func TestAdmissionBorrowing(t *testing.T) {
	mk := func(borrow, lend bool) *Admission {
		a, err := NewAdmission([]ClassPolicy{
			{RatePerSec: 1, Burst: 1, Borrow: borrow},
			{RatePerSec: 1, Burst: 1},
			{RatePerSec: 1, Burst: 10, Lend: lend},
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	a := mk(true, true)
	a.Admit(0, 0, 1) // class 0's own token
	// Class 0's bucket is dry; the lender's 10 tokens keep it admitted.
	for i := 0; i < 10; i++ {
		if !a.Admit(0, 0, 1) {
			t.Fatalf("borrow %d rejected with lender tokens available", i)
		}
	}
	if a.Admit(0, 0, 1) {
		t.Fatal("admitted with both own and lender buckets dry")
	}
	// Borrowing drained the lender: class 2 is now dry too.
	if a.Admit(0, 2, 1) {
		t.Fatal("lender still admitted after donating its whole bucket")
	}

	// No Borrow flag: the dry class cannot draw on the lender.
	a = mk(false, true)
	a.Admit(0, 0, 1)
	if a.Admit(0, 0, 1) {
		t.Fatal("non-borrowing class drew from the lender")
	}
	// No Lend flag: the borrower finds no donor.
	a = mk(true, false)
	a.Admit(0, 0, 1)
	if a.Admit(0, 0, 1) {
		t.Fatal("borrowed from a non-lending class")
	}
	// Borrowing never goes up the priority order: class 2 cannot take
	// class 0's tokens even when marked Borrow.
	a, err := NewAdmission([]ClassPolicy{
		{RatePerSec: 1, Burst: 10, Lend: true},
		{RatePerSec: 1, Burst: 1},
		{RatePerSec: 1, Burst: 1, Borrow: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Admit(0, 2, 1)
	if a.Admit(0, 2, 1) {
		t.Fatal("low-priority class borrowed from a higher-priority one")
	}
}

func TestAdmissionOpen(t *testing.T) {
	a, err := NewAdmission(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !a.Admit(0, 0, 1) {
			t.Fatal("open admission rejected")
		}
	}
}

func TestRetryBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BaseBackoffSec: 2, BackoffFactor: 3}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	for n, want := range map[int]float64{1: 2, 2: 6, 3: 18} {
		if got := p.backoff(n, rng); math.Abs(got-want) > 1e-9 {
			t.Errorf("backoff(%d) = %v, want %v", n, got, want)
		}
	}
	// Jitter stays within ±JitterFrac and actually varies.
	p.JitterFrac = 0.5
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 200; i++ {
		d := p.backoff(1, rng)
		if d < 1 || d > 3 {
			t.Fatalf("jittered backoff %v outside [1, 3]", d)
		}
		lo, hi = math.Min(lo, d), math.Max(hi, d)
	}
	if hi-lo < 0.5 {
		t.Errorf("jitter spread %v suspiciously tight", hi-lo)
	}
	if (RetryPolicy{}).enabled() || (RetryPolicy{MaxAttempts: 1}).enabled() {
		t.Error("≤1 attempts should disable retry")
	}
	if !(RetryPolicy{MaxAttempts: 2}).enabled() {
		t.Error("2 attempts should enable retry")
	}
}

func TestDegrader(t *testing.T) {
	d := NewDegrader(0)
	if s := d.Scale(); s != 1 {
		t.Fatalf("initial scale %v, want 1", s)
	}
	d.Observe(obs.Event{Name: "resilience.governor.derate", Kind: "transition", Value: 0.5})
	if s := d.Scale(); s != 0.5 {
		t.Fatalf("post-derate scale %v, want 0.5", s)
	}
	d.Observe(obs.Event{Name: "resilience.governor.shed", Kind: "transition", Value: 0.4})
	if s := d.Scale(); math.Abs(s-0.2) > 1e-12 {
		t.Fatalf("combined scale %v, want 0.2", s)
	}
	// Recovery events restore the factors independently.
	d.Observe(obs.Event{Name: "resilience.governor.derate", Kind: "transition", Value: 1})
	if s := d.Scale(); s != 0.4 {
		t.Fatalf("post-recovery scale %v, want 0.4", s)
	}
	// Unrelated events and non-transition kinds are ignored.
	d.Observe(obs.Event{Name: "sched.batch", Kind: "span", Value: 0})
	d.Observe(obs.Event{Name: "resilience.governor.shed", Kind: "sample", Value: 0})
	if s := d.Scale(); s != 0.4 {
		t.Fatalf("ignored events moved the scale to %v", s)
	}
	// The floor bounds how hard admission can be strangled.
	d.Observe(obs.Event{Name: "resilience.governor.shed", Kind: "transition", Value: 0})
	if s := d.Scale(); s != 0.05 {
		t.Fatalf("floored scale %v, want 0.05", s)
	}
}

func TestPresetPolicies(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PresetPolicy(name, 100)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("%s: name %q", name, p.Name)
		}
		if name == PolicyOpen {
			if len(p.Admission) != 0 || p.DeadlineShed || p.Retry.enabled() {
				t.Errorf("open policy has mechanisms enabled: %+v", p)
			}
			continue
		}
		a, err := NewAdmission(p.Admission)
		if err != nil {
			t.Fatalf("%s admission: %v", name, err)
		}
		if got := a.TotalRatePerSec(); math.Abs(got-100) > 1e-9 {
			t.Errorf("%s: aggregate admission %v, want 100", name, got)
		}
	}
	if _, err := PresetPolicy("bogus", 100); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := PresetPolicy(PolicyOpen, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestPresetCampaigns(t *testing.T) {
	for _, name := range CampaignNames() {
		c, err := PresetCampaign(name, 100, 50)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == CampaignNone {
			if len(c) != 0 {
				t.Errorf("none campaign has %d faults", len(c))
			}
			continue
		}
		if len(c) == 0 {
			t.Errorf("%s: empty campaign", name)
		}
		for _, f := range c {
			if err := f.validate(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
			if f.StartSec != 100 || f.EndSec != 150 {
				t.Errorf("%s: window [%v, %v), want [100, 150)", name, f.StartSec, f.EndSec)
			}
		}
	}
	if _, err := PresetCampaign("bogus", 0, 10); err == nil {
		t.Error("unknown campaign accepted")
	}
	if _, err := PresetCampaign(CampaignCombined, 0, 0); err == nil {
		t.Error("empty window accepted")
	}
}
