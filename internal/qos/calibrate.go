package qos

import (
	"fmt"

	"spacedc/internal/netsim"
)

// CalibrateNetwork measures a NetworkConfig from the flow-level simulator
// so the engine's fluid network stage reproduces netsim's operating
// points: one lightly-loaded run (10% of the scenario's offered load)
// yields the uncongested base latency, and one saturating run (4×) yields
// the deliverable capacity at the bottleneck. Both runs are deterministic,
// so a calibration is as reproducible as the runs it feeds.
func CalibrateNetwork(base netsim.Scenario) (NetworkConfig, error) {
	light := base
	light.Name = base.Name + "-calibrate-light"
	light.PerSat = base.PerSat / 10
	lr, err := netsim.Run(light)
	if err != nil {
		return NetworkConfig{}, fmt.Errorf("qos: light calibration run: %w", err)
	}

	sat := base
	sat.Name = base.Name + "-calibrate-saturated"
	sat.PerSat = base.PerSat * 4
	sr, err := netsim.Run(sat)
	if err != nil {
		return NetworkConfig{}, fmt.Errorf("qos: saturated calibration run: %w", err)
	}

	cfg := NetworkConfig{
		CapacityBps:    float64(sr.DeliveredRate),
		BaseLatencySec: lr.LatencySec.Mean,
	}
	if cfg.CapacityBps <= 0 {
		return NetworkConfig{}, fmt.Errorf("qos: saturated run delivered nothing (%v)", sr.DeliveredRate)
	}
	return cfg.withDefaults(), nil
}

// Preset policy names accepted by PresetPolicy (and the sudcsimd workload
// spec's "policy" field).
const (
	PolicyOpen          = "open"
	PolicyPriority      = "priority"
	PolicyPriorityRetry = "priority-retry"
)

// PolicyNames lists the preset policies in study order.
func PolicyNames() []string {
	return []string{PolicyOpen, PolicyPriority, PolicyPriorityRetry}
}

// PresetPolicy builds one of the named study policies sized for an
// aggregate sustained admission capacity of admitPerSec requests/s across
// the default three-class mix:
//
//   - "open": no admission control, no shedding, no retry — the baseline
//     that demonstrates collapse under overload.
//   - "priority": per-class token buckets (urgent oversized and borrowing
//     from the best-effort lender, best-effort taking the residual) plus
//     deadline-aware shedding.
//   - "priority-retry": "priority" plus bounded exponential-backoff retry
//     with jitter.
func PresetPolicy(name string, admitPerSec float64) (Policy, error) {
	if admitPerSec <= 0 {
		return Policy{}, fmt.Errorf("qos: non-positive admission capacity %v", admitPerSec)
	}
	// Shares follow workload.DefaultClasses (0.15/0.35/0.50), with urgent
	// oversized 2× so its own bucket absorbs surges before borrowing.
	urgent := 0.30 * admitPerSec
	standard := 0.35 * admitPerSec
	bestEffort := admitPerSec - urgent - standard
	admission := []ClassPolicy{
		{RatePerSec: urgent, Burst: 4 * urgent, Borrow: true},
		{RatePerSec: standard, Burst: 2 * standard},
		{RatePerSec: bestEffort, Burst: bestEffort, Lend: true},
	}
	switch name {
	case PolicyOpen:
		// The baseline is genuinely QoS-free: no admission, no shedding, no
		// retry, and a class-blind FIFO through both stages.
		return Policy{Name: PolicyOpen, ClassBlind: true}, nil
	case PolicyPriority:
		return Policy{Name: PolicyPriority, Admission: admission, DeadlineShed: true}, nil
	case PolicyPriorityRetry:
		return Policy{
			Name:         PolicyPriorityRetry,
			Admission:    admission,
			DeadlineShed: true,
			Retry: RetryPolicy{
				MaxAttempts:    4,
				BaseBackoffSec: 2,
				BackoffFactor:  2,
				JitterFrac:     0.5,
			},
		}, nil
	}
	return Policy{}, fmt.Errorf("qos: unknown policy preset %q (have %v)", name, PolicyNames())
}

// Preset campaign names accepted by PresetCampaign.
const (
	CampaignNone           = "none"
	CampaignGroundOutage   = "ground-outage"
	CampaignSEUBurst       = "seu-burst"
	CampaignRadiatorDerate = "radiator-derate"
	CampaignCombined       = "combined"
)

// CampaignNames lists the preset fault campaigns.
func CampaignNames() []string {
	return []string{CampaignNone, CampaignGroundOutage, CampaignSEUBurst, CampaignRadiatorDerate, CampaignCombined}
}

// PresetCampaign builds one of the named fault campaigns over the window
// [startSec, startSec+durSec) — scheduled mid-surge by the callers so the
// faults land while demand is elevated.
func PresetCampaign(name string, startSec, durSec float64) ([]Fault, error) {
	if durSec <= 0 || startSec < 0 {
		return nil, fmt.Errorf("qos: invalid campaign window start %v dur %v", startSec, durSec)
	}
	end := startSec + durSec
	outage := Fault{Kind: GroundOutage, StartSec: startSec, EndSec: end, Factor: 0.25}
	seu := Fault{Kind: SEUBurst, StartSec: startSec, EndSec: end, HazardPerSec: 0.05}
	derate := Fault{Kind: RadiatorDerate, StartSec: startSec, EndSec: end, Factor: 0.5}
	switch name {
	case CampaignNone:
		return nil, nil
	case CampaignGroundOutage:
		return []Fault{outage}, nil
	case CampaignSEUBurst:
		return []Fault{seu}, nil
	case CampaignRadiatorDerate:
		return []Fault{derate}, nil
	case CampaignCombined:
		return []Fault{outage, seu, derate}, nil
	}
	return nil, fmt.Errorf("qos: unknown campaign preset %q (have %v)", name, CampaignNames())
}
