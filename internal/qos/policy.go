// Package qos is the traffic-and-QoS layer between the workload generator
// and the simulators: priority-class admission control (token buckets with
// weighted borrowing), deadline-aware load shedding, bounded retry with
// exponential backoff and jitter, and a degradation controller that
// consumes the resilience governor's derate/shed transition events to
// tighten admission when thermal or radiation pressure rises.
//
// The engine in engine.go composes these policies into a time-stepped
// service pipeline — a network stage calibrated from netsim runs feeding a
// compute stage built on the sched batch executor — and reports per-class
// SLO attainment under overload and fault campaigns. Everything is
// deterministic given a Scenario: one seeded rand.Rand drives retry jitter
// and fault sampling, and the degradation loop runs on an internal
// registry drained synchronously each step, so runs are bit-identical at
// any worker count and with observability on or off.
package qos

import (
	"fmt"
	"math"
	"math/rand"

	"spacedc/internal/obs"
)

// ClassPolicy is one priority class's token-bucket admission contract.
// Index order is priority order: class 0 is the most important.
type ClassPolicy struct {
	// RatePerSec is the sustained admission rate (token refill rate).
	RatePerSec float64
	// Burst is the bucket depth in tokens (instantaneous headroom above
	// the sustained rate). Zero means RatePerSec (one second of burst).
	Burst float64
	// Borrow lets this class draw from lower-priority lenders when its own
	// bucket runs dry — how urgent tasking rides through its own burst
	// without inflating steady-state capacity.
	Borrow bool
	// Lend offers this class's spare tokens to higher-priority borrowers.
	Lend bool
	// Weight biases donor choice when several lenders have spare tokens
	// (the fullest weighted bucket donates). Zero means 1.
	Weight float64
}

// Admission is a set of per-class token buckets with weighted borrowing.
// Build with NewAdmission; not safe for concurrent use (the engine owns
// it).
type Admission struct {
	pol    []ClassPolicy
	tokens []float64
	last   float64
}

// NewAdmission builds an admission gate. An empty policy set admits
// everything (the "open" baseline).
func NewAdmission(pol []ClassPolicy) (*Admission, error) {
	a := &Admission{pol: append([]ClassPolicy(nil), pol...), tokens: make([]float64, len(pol))}
	for i := range a.pol {
		p := &a.pol[i]
		if p.RatePerSec < 0 || math.IsNaN(p.RatePerSec) || math.IsInf(p.RatePerSec, 0) {
			return nil, fmt.Errorf("qos: class %d negative admission rate %v", i, p.RatePerSec)
		}
		if p.Burst < 0 || math.IsNaN(p.Burst) {
			return nil, fmt.Errorf("qos: class %d negative burst %v", i, p.Burst)
		}
		if p.Burst == 0 {
			p.Burst = p.RatePerSec
		}
		if p.Weight == 0 {
			p.Weight = 1
		}
		if p.Weight < 0 || math.IsNaN(p.Weight) {
			return nil, fmt.Errorf("qos: class %d negative weight %v", i, p.Weight)
		}
		a.tokens[i] = p.Burst // start full so t=0 arrivals see the burst headroom
	}
	return a, nil
}

// refill tops the buckets up for the elapsed time, with refill rates
// scaled by the degradation controller's current factor. Time never runs
// backward (retries re-entering within a step may present slightly older
// stamps; those simply skip the refill).
func (a *Admission) refill(t, scale float64) {
	dt := t - a.last
	if dt <= 0 {
		return
	}
	a.last = t
	for i := range a.tokens {
		a.tokens[i] += a.pol[i].RatePerSec * scale * dt
		if a.tokens[i] > a.pol[i].Burst {
			a.tokens[i] = a.pol[i].Burst
		}
	}
}

// Admit decides one request at time t. scale in (0, 1] throttles the
// refill rates (degradation). A class whose bucket is dry may borrow one
// token from the fullest weighted lower-priority lender. An Admission with
// no classes admits everything.
func (a *Admission) Admit(t float64, class int, scale float64) bool {
	if len(a.pol) == 0 {
		return true
	}
	a.refill(t, scale)
	if a.tokens[class] >= 1 {
		a.tokens[class]--
		return true
	}
	if !a.pol[class].Borrow {
		return false
	}
	donor, best := -1, 0.0
	for j := class + 1; j < len(a.pol); j++ {
		if !a.pol[j].Lend || a.tokens[j] < 1 {
			continue
		}
		if w := a.tokens[j] * a.pol[j].Weight; w > best {
			donor, best = j, w
		}
	}
	if donor < 0 {
		return false
	}
	a.tokens[donor]--
	return true
}

// TotalRatePerSec is the aggregate sustained admission capacity.
func (a *Admission) TotalRatePerSec() float64 {
	sum := 0.0
	for _, p := range a.pol {
		sum += p.RatePerSec
	}
	return sum
}

// RetryPolicy bounds re-submission of shed or failed requests:
// exponential backoff with jitter, a total-attempts cap, and a bounded
// pending queue so retries cannot themselves become an overload amplifier.
type RetryPolicy struct {
	// MaxAttempts is the total number of delivery attempts including the
	// first; values ≤ 1 disable retry.
	MaxAttempts int
	// BaseBackoffSec is the delay before the first retry. Zero means 1 s.
	BaseBackoffSec float64
	// BackoffFactor multiplies the delay per attempt. Zero means 2.
	BackoffFactor float64
	// JitterFrac spreads each delay uniformly by ±JitterFrac of itself
	// (decorrelating retry storms); 0 disables jitter.
	JitterFrac float64
	// QueueLimit caps pending retries; overflow is a permanent shed. Zero
	// means 4096.
	QueueLimit int
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseBackoffSec == 0 {
		p.BaseBackoffSec = 1
	}
	if p.BackoffFactor == 0 {
		p.BackoffFactor = 2
	}
	if p.QueueLimit == 0 {
		p.QueueLimit = 4096
	}
	return p
}

// validate checks the (defaulted) policy.
func (p RetryPolicy) validate() error {
	if p.BaseBackoffSec < 0 || math.IsNaN(p.BaseBackoffSec) {
		return fmt.Errorf("qos: negative retry backoff %v", p.BaseBackoffSec)
	}
	if p.BackoffFactor < 1 {
		return fmt.Errorf("qos: retry backoff factor %v below 1", p.BackoffFactor)
	}
	if p.JitterFrac < 0 || p.JitterFrac > 1 {
		return fmt.Errorf("qos: retry jitter %v outside [0, 1]", p.JitterFrac)
	}
	return nil
}

// enabled reports whether the policy retries at all.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// backoff returns the delay before retry number n (1-based), drawing
// jitter from rng. No randomness is consumed when jitter is disabled.
func (p RetryPolicy) backoff(n int, rng *rand.Rand) float64 {
	d := p.BaseBackoffSec * math.Pow(p.BackoffFactor, float64(n-1))
	if p.JitterFrac > 0 {
		d *= 1 + p.JitterFrac*(2*rng.Float64()-1)
	}
	return d
}

// Degrader is the degradation controller: it watches the resilience
// governor's "resilience.governor.derate" / "resilience.governor.shed"
// transition events (value = the factor entering the new regime, 1 on
// recovery) and folds them into a single admission scale. The engine
// drains its internal event stream into Observe synchronously each step,
// so the control loop is deterministic.
type Degrader struct {
	derate, keep, floor float64
}

// NewDegrader builds a controller. floor bounds how far admission can be
// throttled (≤ 0 means 0.05: never below 5% of configured rates).
func NewDegrader(floor float64) *Degrader {
	if floor <= 0 {
		floor = 0.05
	}
	return &Degrader{derate: 1, keep: 1, floor: floor}
}

// Observe folds one governor transition event into the controller state.
// Events it does not recognize are ignored, so the engine can feed it the
// whole internal stream.
func (d *Degrader) Observe(e obs.Event) {
	if e.Kind != "transition" {
		return
	}
	v := e.Value
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	switch e.Name {
	case "resilience.governor.derate":
		d.derate = v
	case "resilience.governor.shed":
		d.keep = v
	}
}

// Scale returns the current admission-rate multiplier in [floor, 1]: the
// product of the governor's capacity factor and its shed keep factor.
func (d *Degrader) Scale() float64 {
	s := d.derate * d.keep
	if s < d.floor {
		s = d.floor
	}
	if s > 1 {
		s = 1
	}
	return s
}
