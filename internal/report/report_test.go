package report

import (
	"strings"
	"testing"
)

func sample() Table {
	t := Table{
		ID:      "fig9",
		Title:   "SµDCs needed",
		Note:    "RTX 3090, 4 kW",
		Columns: []string{"app", "3 m", "1 m"},
	}
	t.AddRow("FD", 1, 3)
	t.AddRow("TM", 1.0, 2.5)
	t.AddRow("big", 1.23e9, 0.0001)
	return t
}

func TestRenderContainsAllCells(t *testing.T) {
	out := sample().String()
	for _, want := range []string{"fig9", "SµDCs needed", "app", "FD", "TM", "2.5", "note: RTX 3090"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		2.5:    "2.5",
		1.23e9: "1.230e+09",
		0.0001: "1.000e-04",
		64:     "64",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	if err := sample().CSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want header + 3 rows", len(lines))
	}
	if lines[0] != "app,3 m,1 m" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "FD,1,3") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestEmptyTable(t *testing.T) {
	empty := Table{ID: "x"}
	if out := empty.String(); out == "" {
		t.Error("even empty tables render a frame")
	}
	var sb strings.Builder
	if err := empty.CSV(&sb); err != nil {
		t.Errorf("empty CSV errored: %v", err)
	}
}
