// Package report renders experiment results as aligned text tables and
// CSV, the output format of the sudcsim experiment runner and the
// EXPERIMENTS.md record.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a titled grid of results.
type Table struct {
	ID      string // experiment id, e.g. "fig9"
	Title   string
	Note    string // assumptions, substitutions, caveats
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders floats compactly: integers without decimals, small
// values with 4 significant digits, large ones in scientific notation.
func formatFloat(v float64) string {
	if v != 0 && (v >= 1e7 || v <= -1e7 || (v < 1e-3 && v > -1e-3)) {
		return fmt.Sprintf("%.3e", v)
	}
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// Render writes the table as aligned text.
func (t Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Columns) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
		underline := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			underline[i] = strings.Repeat("-", len(c))
		}
		fmt.Fprintln(tw, strings.Join(underline, "\t"))
	}
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "note: %s\n", t.Note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as comma-separated values with a header row.
func (t Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Columns) > 0 {
		if err := cw.Write(t.Columns); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table to a string (for tests and logs).
func (t Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}
