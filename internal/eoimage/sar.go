package eoimage

import (
	"fmt"
	"image"
	"math"
	"math/rand"
)

// SARConfig describes a synthetic synthetic-aperture-radar scene in the
// statistical regime of the xView3 maritime dataset: a large, quiet ocean
// background at the sensor noise floor, multiplicative speckle, and a few
// bright point targets (ships). Scenes like this compress spectacularly
// with dictionary coders — the paper's Table 4 reports Zip ratios in the
// thousands for SAR — because most samples repeat.
type SARConfig struct {
	Width, Height int
	Seed          int64
	// ShipCount is the number of bright point targets.
	ShipCount int
	// NoDataBorder adds a flat zero-valued border of this many pixels on
	// every side, mimicking the ungeocoded swath edges of real products.
	NoDataBorder int
	// SpeckleLooks controls speckle severity: multi-look averaging of L
	// looks reduces speckle variance by 1/L. 1 = raw single-look.
	SpeckleLooks int
	// QuantStep quantizes ocean amplitudes to multiples of this value
	// (default 1 = full radiometry). Real distribution products are
	// coarsely quantized in dB, which is what makes maritime SAR so
	// compressible; the Table 4 experiment uses a coarse step.
	QuantStep int
}

// Validate checks the config.
func (c SARConfig) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("eoimage: non-positive SAR dimensions %dx%d", c.Width, c.Height)
	}
	if c.NoDataBorder < 0 || 2*c.NoDataBorder >= c.Width || 2*c.NoDataBorder >= c.Height {
		return fmt.Errorf("eoimage: no-data border %d too large", c.NoDataBorder)
	}
	if c.ShipCount < 0 {
		return fmt.Errorf("eoimage: negative ship count %d", c.ShipCount)
	}
	if c.SpeckleLooks < 0 {
		return fmt.Errorf("eoimage: negative speckle looks %d", c.SpeckleLooks)
	}
	if c.QuantStep < 0 {
		return fmt.Errorf("eoimage: negative quantization step %d", c.QuantStep)
	}
	return nil
}

// SARScene is a generated single-band radar backscatter image.
type SARScene struct {
	Width, Height int
	// Amplitude is the row-major backscatter amplitude, quantized to
	// 16-bit like real SAR products.
	Amplitude []uint16
	// ShipMask marks target pixels.
	ShipMask []bool
}

// Pixels returns Width × Height.
func (s *SARScene) Pixels() int { return s.Width * s.Height }

// Bytes returns the raw little-endian sample stream the codecs compress.
func (s *SARScene) Bytes() []byte {
	out := make([]byte, 0, 2*len(s.Amplitude))
	for _, v := range s.Amplitude {
		out = append(out, byte(v), byte(v>>8))
	}
	return out
}

// Image renders the scene as a 16-bit grayscale image.
func (s *SARScene) Image() *image.Gray16 {
	img := image.NewGray16(image.Rect(0, 0, s.Width, s.Height))
	for i, v := range s.Amplitude {
		x, y := i%s.Width, i/s.Width
		off := img.PixOffset(x, y)
		img.Pix[off] = byte(v >> 8)
		img.Pix[off+1] = byte(v)
	}
	return img
}

// GenerateSAR builds a synthetic SAR scene.
func GenerateSAR(cfg SARConfig) (*SARScene, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w, h := cfg.Width, cfg.Height
	s := &SARScene{
		Width: w, Height: h,
		Amplitude: make([]uint16, w*h),
		ShipMask:  make([]bool, w*h),
	}
	looks := cfg.SpeckleLooks
	if looks == 0 {
		looks = 4
	}
	quant := cfg.QuantStep
	if quant == 0 {
		quant = 1
	}

	// Quiet ocean background: low backscatter with multiplicative
	// gamma-distributed speckle, quantized coarsely enough that most
	// samples collide (the key statistic for dictionary coders).
	const floor = 40.0 // noise floor in quantizer units
	inner := cfg.NoDataBorder
	for y := inner; y < h-inner; y++ {
		for x := inner; x < w-inner; x++ {
			speckle := gammaLooks(rng, looks)
			v := floor * speckle
			if v > math.MaxUint16 {
				v = math.MaxUint16
			}
			q := (uint16(v) / uint16(quant)) * uint16(quant)
			s.Amplitude[y*w+x] = q
		}
	}

	// Ships: small clusters of saturated returns with sidelobe glints.
	for i := 0; i < cfg.ShipCount; i++ {
		cx := inner + rng.Intn(max(1, w-2*inner))
		cy := inner + rng.Intn(max(1, h-2*inner))
		span := 2 + rng.Intn(4)
		for dy := -span; dy <= span; dy++ {
			for dx := -span; dx <= span; dx++ {
				x, y := cx+dx, cy+dy
				if x < 0 || x >= w || y < 0 || y >= h {
					continue
				}
				d := math.Hypot(float64(dx), float64(dy))
				if d > float64(span) {
					continue
				}
				idx := y*w + x
				val := 60000.0 * math.Exp(-d/1.5)
				if uint16(val) > s.Amplitude[idx] {
					s.Amplitude[idx] = uint16(val)
					s.ShipMask[idx] = true
				}
			}
		}
	}
	return s, nil
}

// gammaLooks draws a unit-mean gamma variate with shape L (sum of L unit
// exponentials scaled by 1/L) — the standard multi-look speckle model.
func gammaLooks(rng *rand.Rand, looks int) float64 {
	sum := 0.0
	for i := 0; i < looks; i++ {
		sum += rng.ExpFloat64()
	}
	return sum / float64(looks)
}
