package eoimage

import (
	"fmt"
	"math"
	"math/rand"
)

// HyperspectralConfig describes a synthetic hyperspectral cube. Bands are
// highly correlated with their spectral neighbors — the property that makes
// CCSDS-123-style predictors effective on real sensor data.
type HyperspectralConfig struct {
	Width, Height int
	Bands         int
	Seed          int64
	// BandCorrelation in [0,1) is the AR(1) coefficient between adjacent
	// bands. Real sensors sit around 0.95+.
	BandCorrelation float64
}

// Validate checks the config.
func (c HyperspectralConfig) Validate() error {
	if c.Width <= 0 || c.Height <= 0 || c.Bands <= 0 {
		return fmt.Errorf("eoimage: non-positive cube dimensions %dx%dx%d", c.Width, c.Height, c.Bands)
	}
	if c.BandCorrelation < 0 || c.BandCorrelation >= 1 {
		return fmt.Errorf("eoimage: band correlation %v outside [0,1)", c.BandCorrelation)
	}
	return nil
}

// Cube is a hyperspectral data cube in band-sequential order.
type Cube struct {
	Width, Height, Bands int
	// Samples holds Bands planes of Width×Height values each, 12-bit
	// radiometry stored in uint16 like real instruments.
	Samples []uint16
}

// Band returns the b-th plane.
func (c *Cube) Band(b int) []uint16 {
	n := c.Width * c.Height
	return c.Samples[b*n : (b+1)*n]
}

// Bytes returns the little-endian sample stream.
func (c *Cube) Bytes() []byte {
	out := make([]byte, 0, 2*len(c.Samples))
	for _, v := range c.Samples {
		out = append(out, byte(v), byte(v>>8))
	}
	return out
}

// GenerateHyperspectral builds a synthetic cube: a shared spatial scene
// modulated per-band by a slowly varying spectral response plus AR(1)
// band-to-band innovation.
func GenerateHyperspectral(cfg HyperspectralConfig) (*Cube, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w, h, nb := cfg.Width, cfg.Height, cfg.Bands
	n := w * h

	spatial := smoothField(rng, w, h, 3, 5)
	cube := &Cube{Width: w, Height: h, Bands: nb, Samples: make([]uint16, n*nb)}

	rho := cfg.BandCorrelation
	innovation := make([]float64, n)
	prev := make([]float64, n)
	for i := range prev {
		prev[i] = spatial[i]
	}
	for b := 0; b < nb; b++ {
		// Spectral envelope: smooth variation of mean radiance per band.
		envelope := 0.4 + 0.4*smoothScalar(b, nb)
		plane := cube.Band(b)
		for i := 0; i < n; i++ {
			if b > 0 {
				innovation[i] = rho*prev[i] + (1-rho)*(spatial[i]*0.7+0.3*rng.Float64())
				prev[i] = innovation[i]
			} else {
				innovation[i] = prev[i]
			}
			v := envelope * innovation[i] * 4095 // 12-bit range
			if v < 0 {
				v = 0
			}
			if v > 4095 {
				v = 4095
			}
			plane[i] = uint16(v)
		}
	}
	return cube, nil
}

// smoothScalar maps band index to a smooth 0..1 spectral envelope.
func smoothScalar(b, total int) float64 {
	x := float64(b) / float64(total)
	return 0.5 + 0.5*(2*x-1)*(2*x-1) // parabola: bright ends, dim middle
}

// BandCorrelationCoefficient measures the empirical Pearson correlation
// between adjacent bands averaged over the cube — a check that generated
// cubes have the statistics predictive coders rely on.
func (c *Cube) BandCorrelationCoefficient() float64 {
	if c.Bands < 2 {
		return 1
	}
	total := 0.0
	for b := 1; b < c.Bands; b++ {
		total += pearson(c.Band(b-1), c.Band(b))
	}
	return total / float64(c.Bands-1)
}

// pearson computes the correlation coefficient of two equal-length series.
func pearson(a, b []uint16) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += float64(a[i])
		sb += float64(b[i])
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := float64(a[i])-ma, float64(b[i])-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / (math.Sqrt(va) * math.Sqrt(vb))
}
