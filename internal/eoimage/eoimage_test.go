package eoimage

import (
	"math"
	"testing"
)

func mustScene(t *testing.T, cfg Config) *Scene {
	t.Helper()
	s, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate(%+v): %v", cfg, err)
	}
	return s
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Width: 64, Height: 64, Seed: 7, Kind: Urban, CloudFraction: 0.3}
	a := mustScene(t, cfg)
	b := mustScene(t, cfg)
	for i := range a.R {
		if a.R[i] != b.R[i] || a.G[i] != b.G[i] || a.B[i] != b.B[i] {
			t.Fatalf("same seed produced different pixels at %d", i)
		}
	}
	c := mustScene(t, Config{Width: 64, Height: 64, Seed: 8, Kind: Urban, CloudFraction: 0.3})
	same := true
	for i := range a.R {
		if a.R[i] != c.R[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical imagery")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 10, Kind: Ocean},
		{Width: 10, Height: -1, Kind: Ocean},
		{Width: 10, Height: 10, Kind: Ocean, CloudFraction: 1.5},
		{Width: 10, Height: 10, Kind: SceneKind(9)},
	}
	for _, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config accepted: %+v", cfg)
		}
	}
}

func TestOceanSceneIsBlueAndWet(t *testing.T) {
	s := mustScene(t, Config{Width: 128, Height: 128, Seed: 1, Kind: Ocean})
	if got := s.WaterFraction(); got != 1 {
		t.Errorf("ocean water fraction = %v, want 1", got)
	}
	var rSum, bSum int
	for i := range s.R {
		rSum += int(s.R[i])
		bSum += int(s.B[i])
	}
	if bSum <= rSum {
		t.Error("ocean should be bluer than red")
	}
}

func TestUrbanSceneHasStructure(t *testing.T) {
	s := mustScene(t, Config{Width: 256, Height: 256, Seed: 2, Kind: Urban})
	bu := s.BuiltUpFraction()
	if bu < 0.1 || bu > 0.95 {
		t.Errorf("urban built-up fraction = %v, want substantial", bu)
	}
	r := mustScene(t, Config{Width: 256, Height: 256, Seed: 2, Kind: Rural})
	if r.BuiltUpFraction() >= bu {
		t.Error("rural should have less built-up area than urban")
	}
}

func TestCloudFractionControl(t *testing.T) {
	for _, want := range []float64{0, 0.3, 0.67, 1} {
		s := mustScene(t, Config{Width: 200, Height: 200, Seed: 3, Kind: Rural, CloudFraction: want})
		got := s.CloudFraction()
		if math.Abs(got-want) > 0.08 {
			t.Errorf("requested %v cloud, got %v", want, got)
		}
	}
}

func TestCloudsAreBright(t *testing.T) {
	s := mustScene(t, Config{Width: 128, Height: 128, Seed: 4, Kind: Ocean, CloudFraction: 0.5})
	var cloudLum, clearLum float64
	var nc, nl int
	for i := range s.R {
		lum := float64(s.R[i]) + float64(s.G[i]) + float64(s.B[i])
		if s.Cloud[i] {
			cloudLum += lum
			nc++
		} else {
			clearLum += lum
			nl++
		}
	}
	if nc == 0 || nl == 0 {
		t.Fatal("expected both cloudy and clear pixels")
	}
	if cloudLum/float64(nc) <= clearLum/float64(nl) {
		t.Error("clouds should be brighter than the surface")
	}
}

func TestNightSceneIsDark(t *testing.T) {
	day := mustScene(t, Config{Width: 128, Height: 128, Seed: 5, Kind: Urban})
	night := mustScene(t, Config{Width: 128, Height: 128, Seed: 5, Kind: Urban, Night: true})
	lum := func(s *Scene) float64 {
		total := 0.0
		for i := range s.R {
			total += float64(s.R[i]) + float64(s.G[i]) + float64(s.B[i])
		}
		return total / float64(s.Pixels())
	}
	if lum(night) > 0.4*lum(day) {
		t.Errorf("night scene not dark: %v vs day %v", lum(night), lum(day))
	}
	if !night.Night {
		t.Error("night flag not set")
	}
	// But there must be some lights.
	bright := 0
	for i := range night.R {
		if night.R[i] > 200 {
			bright++
		}
	}
	if bright == 0 {
		t.Error("urban night scene should have artificial lights")
	}
}

func TestImageRendering(t *testing.T) {
	s := mustScene(t, Config{Width: 32, Height: 16, Seed: 6, Kind: Rural})
	img := s.Image()
	if img.Bounds().Dx() != 32 || img.Bounds().Dy() != 16 {
		t.Errorf("image bounds %v", img.Bounds())
	}
	r, g, b, a := img.At(5, 5).RGBA()
	i := 5*32 + 5
	if uint8(r>>8) != s.R[i] || uint8(g>>8) != s.G[i] || uint8(b>>8) != s.B[i] || a != 0xffff {
		t.Error("rendered pixel mismatch")
	}
	if got := len(s.Interleaved()); got != 3*32*16 {
		t.Errorf("interleaved length %d", got)
	}
}

func TestSmoothFieldIsCorrelated(t *testing.T) {
	// Spatial correlation: neighboring pixels of the smooth field must be
	// far more similar than random pairs.
	s := mustScene(t, Config{Width: 256, Height: 256, Seed: 7, Kind: Rural})
	var neighborDiff, randomDiff float64
	n := 0
	for y := 0; y < 256; y++ {
		for x := 0; x+1 < 256; x++ {
			i := y*256 + x
			neighborDiff += math.Abs(float64(s.G[i]) - float64(s.G[i+1]))
			j := ((y*7919 + x*104729) % (256 * 256))
			randomDiff += math.Abs(float64(s.G[i]) - float64(s.G[j]))
			n++
		}
	}
	if neighborDiff/float64(n) > 0.6*randomDiff/float64(n) {
		t.Errorf("scene lacks spatial correlation: neighbor %v vs random %v",
			neighborDiff/float64(n), randomDiff/float64(n))
	}
}

func TestGenerateSARBasics(t *testing.T) {
	s, err := GenerateSAR(SARConfig{Width: 256, Height: 256, Seed: 1, ShipCount: 5, NoDataBorder: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Border must be exactly zero.
	for x := 0; x < 256; x++ {
		if s.Amplitude[x] != 0 || s.Amplitude[255*256+x] != 0 {
			t.Fatal("no-data border not zero")
		}
	}
	// Ships are saturated relative to ocean.
	var shipMax, oceanMax uint16
	for i, v := range s.Amplitude {
		if s.ShipMask[i] {
			if v > shipMax {
				shipMax = v
			}
		} else if v > oceanMax {
			oceanMax = v
		}
	}
	if shipMax < 30000 {
		t.Errorf("ship peak %d too dim", shipMax)
	}
	if oceanMax >= shipMax {
		t.Errorf("ocean (%d) should be darker than ships (%d)", oceanMax, shipMax)
	}
	if img := s.Image(); img.Bounds().Dx() != 256 {
		t.Error("SAR image bounds wrong")
	}
	if got := len(s.Bytes()); got != 2*256*256 {
		t.Errorf("byte stream length %d", got)
	}
}

func TestGenerateSARValidation(t *testing.T) {
	bad := []SARConfig{
		{Width: 0, Height: 10},
		{Width: 10, Height: 10, NoDataBorder: 5},
		{Width: 10, Height: 10, ShipCount: -1},
		{Width: 10, Height: 10, SpeckleLooks: -1},
	}
	for _, cfg := range bad {
		if _, err := GenerateSAR(cfg); err == nil {
			t.Errorf("bad SAR config accepted: %+v", cfg)
		}
	}
}

func TestSARSpeckleLooksReduceVariance(t *testing.T) {
	variance := func(looks int) float64 {
		s, err := GenerateSAR(SARConfig{Width: 128, Height: 128, Seed: 2, SpeckleLooks: looks})
		if err != nil {
			t.Fatal(err)
		}
		var sum, sumSq float64
		n := 0
		for _, v := range s.Amplitude {
			sum += float64(v)
			sumSq += float64(v) * float64(v)
			n++
		}
		mean := sum / float64(n)
		return sumSq/float64(n) - mean*mean
	}
	if v1, v16 := variance(1), variance(16); v16 >= v1 {
		t.Errorf("16-look speckle variance %v should be below single-look %v", v16, v1)
	}
}

func TestGenerateHyperspectral(t *testing.T) {
	cube, err := GenerateHyperspectral(HyperspectralConfig{
		Width: 64, Height: 64, Bands: 32, Seed: 1, BandCorrelation: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Samples) != 64*64*32 {
		t.Fatalf("cube size %d", len(cube.Samples))
	}
	// 12-bit radiometry.
	for _, v := range cube.Samples {
		if v > 4095 {
			t.Fatalf("sample %d exceeds 12-bit range", v)
		}
	}
	// Adjacent bands strongly correlated.
	if r := cube.BandCorrelationCoefficient(); r < 0.8 {
		t.Errorf("band correlation %v, want > 0.8", r)
	}
	if got := len(cube.Bytes()); got != 2*64*64*32 {
		t.Errorf("byte stream length %d", got)
	}
}

func TestHyperspectralValidation(t *testing.T) {
	bad := []HyperspectralConfig{
		{Width: 0, Height: 4, Bands: 4},
		{Width: 4, Height: 4, Bands: 0},
		{Width: 4, Height: 4, Bands: 4, BandCorrelation: 1.0},
		{Width: 4, Height: 4, Bands: 4, BandCorrelation: -0.1},
	}
	for _, cfg := range bad {
		if _, err := GenerateHyperspectral(cfg); err == nil {
			t.Errorf("bad cube config accepted: %+v", cfg)
		}
	}
}

func TestSceneKindString(t *testing.T) {
	if Ocean.String() != "ocean" || Rural.String() != "rural" || Urban.String() != "urban" {
		t.Error("scene kind names wrong")
	}
	if SceneKind(42).String() != "unknown" {
		t.Error("unknown kind")
	}
}
